(* The experiments of Section 6: one function per table/figure.  Each
   prints the paper's numbers next to ours; EXPERIMENTS.md records the
   comparison. *)

module C = Shasta.Cluster
module R = Shasta.Runtime
module K = Osim.Kernel
module W = Minidb.Workload
open Support

(* ------------------------------------------------------------------ *)
(* Table 1: lock acquire latencies (microseconds)                      *)
(* ------------------------------------------------------------------ *)

type lock_kind = Mp | Sm | Sm_prefetch

(* Measure the average acquire latency for a lock that is cached
   locally: a single process acquires and releases repeatedly. *)
let lock_cached kind =
  let cl = cluster ~nodes:1 ~cpus:1 () in
  let addr = C.alloc cl 64 in
  let acq = ref 0.0 in
  let iters = 200 in
  let _ =
    C.spawn cl ~cpu:0 "locker" (fun h ->
        for _ = 1 to iters do
          let t0 = C.now cl in
          (match kind with
          | Mp -> R.lock h 0
          | Sm -> R.sm_lock h addr
          | Sm_prefetch -> R.sm_lock ~prefetch:true h addr);
          R.flush h;
          acq := !acq +. (C.now cl -. t0);
          match kind with Mp -> R.unlock h 0 | Sm | Sm_prefetch -> R.sm_unlock h addr
        done)
  in
  ignore (C.run cl);
  !acq /. float_of_int iters

(* Uncontended miss: two processes on different nodes alternate through
   the lock (so every acquire finds it free but remote); the lock's home
   and MP manager sit on a third node. *)
let lock_uncontended kind =
  let cl = cluster ~nodes:3 ~cpus:2 () in
  let addr = C.alloc cl 64 in
  let acq = ref 0.0 and acquires = ref 0 in
  let rounds = 100 in
  (* A serving process on the home node; spawned first so it is also the
     MP lock manager (pid 0). *)
  let _server = C.spawn cl ~cpu:4 "home" (fun _ -> ()) in
  for side = 0 to 1 do
    ignore
      (C.spawn cl ~cpu:(side * 2) "locker" (fun h ->
           for round = 1 to rounds do
             (* Alternate via an MP barrier (not measured). *)
             R.barrier h ~id:77 ~parties:2;
             if round land 1 = side then begin
               let t0 = C.now cl in
               (match kind with
               | Mp -> R.lock h 0
               | Sm -> R.sm_lock h addr
               | Sm_prefetch -> R.sm_lock ~prefetch:true h addr);
               R.flush h;
               acq := !acq +. (C.now cl -. t0);
               incr acquires;
               match kind with Mp -> R.unlock h 0 | Sm | Sm_prefetch -> R.sm_unlock h addr
             end
           done))
  done;
  C.init ~homes:[ 2 ] cl;
  ignore (C.run cl);
  !acq /. float_of_int !acquires

(* Contention: eight processes hammer one lock. *)
let lock_contended kind =
  let cl = cluster ~nodes:3 ~cpus:4 () in
  let addr = C.alloc cl 64 in
  let acq = ref 0.0 and acquires = ref 0 in
  let _server = C.spawn cl ~cpu:8 "home" (fun _ -> ()) in
  for p = 0 to 7 do
    ignore
      (C.spawn cl ~cpu:p "locker" (fun h ->
           for _ = 1 to 40 do
             let t0 = C.now cl in
             (match kind with
             | Mp -> R.lock h 0
             | Sm -> R.sm_lock h addr
             | Sm_prefetch -> R.sm_lock ~prefetch:true h addr);
             R.flush h;
             acq := !acq +. (C.now cl -. t0);
             incr acquires;
             R.work_cycles h 300;
             (match kind with Mp -> R.unlock h 0 | Sm | Sm_prefetch -> R.sm_unlock h addr);
             R.work_cycles h 600
           done))
  done;
  C.init ~homes:[ 2 ] cl;
  ignore (C.run cl);
  !acq /. float_of_int !acquires

let table1 () =
  print_header "Table 1: lock acquire latencies (us)   [paper: MP / SM / SM+pf]";
  let row name f (p_mp, p_sm, p_pf) =
    let mp = f Mp and sm = f Sm and pf = f Sm_prefetch in
    [
      name;
      us mp; us sm; us pf;
      Printf.sprintf "%.2f" p_mp; Printf.sprintf "%.2f" p_sm; Printf.sprintf "%.2f" p_pf;
    ]
  in
  print_table
    ~headers:[ "case"; "MP"; "SM"; "SM+pf"; "paper MP"; "paper SM"; "paper SM+pf" ]
    [
      row "cached" lock_cached (1.11, 1.88, 1.91);
      row "uncontended miss" lock_uncontended (15.63, 44.12, 25.70);
      row "contended miss" lock_contended (81.02, 136.48, 137.90);
    ]

(* ------------------------------------------------------------------ *)
(* Table 2: system call times (microseconds)                           *)
(* ------------------------------------------------------------------ *)

let syscall_times ~variant ~checks =
  let cl = cluster ~nodes:2 ~cpus:2 ~variant ~checks () in
  let k = K.boot cl ~slot_cpus:[ 0; 2 ] () in
  let results = ref [] in
  let _ =
    K.start k ~cpu_hint:0 (fun ctx ->
        let seg = K.shmget ctx (128 * 1024) in
        let buf = K.shmat ctx seg in
        (* Touch the buffer so its lines are resident (Table 2 is for
           recently-used files and warm state). *)
        for i = 0 to (80 * 1024 / 64) - 1 do
          R.store_int ctx.K.h (buf + (i * 64)) 0
        done;
        let fd0 = K.open_file ctx "bench.dat" in
        Bytes.fill ctx.K.h.R.private_mem 0 65536 'x';
        ignore (K.write ctx fd0 ~buf:0 ~len:65536);
        K.close ctx fd0;
        let time f =
          let iters = 50 in
          let t0 = C.now cl in
          for _ = 1 to iters do
            f ()
          done;
          R.flush ctx.K.h;
          (C.now cl -. t0) /. float_of_int iters
        in
        let t_open =
          time (fun () ->
              let fd = K.open_file ctx "bench.dat" in
              K.close ctx fd)
        in
        let read_n n =
          time (fun () ->
              let fd = K.open_file ctx "bench.dat" in
              ignore (K.read ctx fd ~buf ~len:n);
              K.close ctx fd)
          -. t_open
        in
        results := [ t_open; read_n 4; read_n 8192; read_n 65536 ])
  in
  ignore (C.run cl);
  !results

let table2 () =
  print_header "Table 2: system call times (us)   [standard / Base-Shasta / SMP-Shasta]";
  let std = syscall_times ~variant:Protocol.Config.Base ~checks:false in
  let base = syscall_times ~variant:Protocol.Config.Base ~checks:true in
  let smp = syscall_times ~variant:Protocol.Config.Smp ~checks:true in
  let names = [ "open"; "read 4 B"; "read 8192 B"; "read 65536 B" ] in
  let paper = [ (58., 66., 79.); (12., 16., 20.); (51., 70., 126.); (370., 576., 845.) ] in
  let rows =
    List.mapi
      (fun i name ->
        let p1, p2, p3 = List.nth paper i in
        [
          name;
          us (List.nth std i); us (List.nth base i); us (List.nth smp i);
          Printf.sprintf "%.0f" p1; Printf.sprintf "%.0f" p2; Printf.sprintf "%.0f" p3;
        ])
      names
  in
  print_table
    ~headers:[ "call"; "std"; "Base"; "SMP"; "paper std"; "paper Base"; "paper SMP" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 3: sequential times, checking overheads, code growth          *)
(* ------------------------------------------------------------------ *)

(* A representative instruction-stream skeleton per application family,
   used to compute the static code-size increase the way ATOM-based
   Shasta would (the API-mode kernels have no machine code of their
   own).  The scientific mix resembles a SPLASH inner loop; the database
   mix is integer pointer-chasing with a higher shared-access density. *)
let skeleton ~procedures ~mix =
  let shared_loads, shared_stores, private_accesses, alu, n_fp = mix in
  let body i =
    let open Alpha.Asm in
    let shared_base = Rewrite.Instrument.default_options.Rewrite.Instrument.shared_base in
    List.concat
      [
        [ li t8 (Int64.of_int (shared_base + (i * 4096))); li t9 64L ];
        [ label "loop" ];
        List.init shared_loads (fun k -> ldq (1 + (k mod 6)) (8 * k) t8);
        List.concat (List.init n_fp (fun k -> [ fadd (k mod 8) ((k + 1) mod 8) ((k + 2) mod 8) ]));
        List.init shared_stores (fun k -> stq (1 + (k mod 6)) (8 * (k + shared_loads)) t8);
        List.init private_accesses (fun k ->
            if k land 1 = 0 then ldq (1 + (k mod 6)) (8 * k) sp else stq (1 + (k mod 6)) (8 * k) sp);
        List.init alu (fun k -> addi (1 + (k mod 6)) k (1 + ((k + 1) mod 6)));
        [ subi t9 1 t9; bgt t9 "loop"; ret ];
      ]
  in
  Alpha.Asm.program
    (List.init procedures (fun i -> Alpha.Asm.proc (Printf.sprintf "proc%d" i) (body i)))

let sci_mix = (6, 3, 6, 10, 6)
let db_mix = (10, 5, 5, 10, 0)

let code_growth_of ~procedures ~mix =
  let prog = skeleton ~procedures ~mix in
  let _, stats = Rewrite.Instrument.instrument prog in
  Rewrite.Instrument.code_growth stats

let app_overhead spec =
  let seq =
    let cl = cluster ~nodes:1 ~cpus:1 ~checks:false () in
    fst (Apps.Harness.run_spec cl spec ~nprocs:1 ~sync:Apps.Harness.Mp ())
  in
  let checked =
    let cl = cluster ~nodes:1 ~cpus:1 ~checks:true () in
    fst (Apps.Harness.run_spec cl spec ~nprocs:1 ~sync:Apps.Harness.Mp ())
  in
  (seq, checked)

let oracle_overhead query =
  let run checks =
    let cfg = W.cluster_config ~nodes:1 ~checks () in
    let p = { W.root_cpu = 0; daemon_cpu = 0; server_cpus = [ 1 ] } in
    match query with
    | `Oltp -> (W.run_oltp ~cfg ~placement:p ~clients:1 ~txns:600 ()).W.elapsed
    | `Dss q -> (W.run_dss ~cfg ~placement:p ~query:q ()).W.elapsed
  in
  (run false, run true)

let table3 () =
  print_header
    "Table 3: sequential time, checking overhead, code growth   [paper overhead / growth]";
  let rows = ref [] in
  List.iter
    (fun spec ->
      let seq, checked = app_overhead spec in
      let growth = code_growth_of ~procedures:12 ~mix:sci_mix in
      rows :=
        [
          spec.Apps.Harness.name;
          ms seq ^ " ms"; ms checked ^ " ms";
          pct ((checked -. seq) /. seq);
          pct growth;
          pct spec.Apps.Harness.paper_overhead;
          pct spec.Apps.Harness.paper_growth;
        ]
        :: !rows)
    Apps.Registry.all;
  let oracle name query (p_ovh, p_growth) =
    let seq, checked = oracle_overhead query in
    let growth = code_growth_of ~procedures:40 ~mix:db_mix in
    rows :=
      [
        name;
        ms seq ^ " ms"; ms checked ^ " ms";
        pct ((checked -. seq) /. seq);
        pct growth;
        pct p_ovh;
        pct p_growth;
      ]
      :: !rows
  in
  oracle "Oracle OLTP" `Oltp (0.192, 0.96);
  oracle "Oracle DSS-1" (`Dss W.Dss1) (0.681, 0.96);
  oracle "Oracle DSS-2" (`Dss W.Dss2) (0.372, 0.96);
  print_table
    ~headers:
      [ "application"; "sequential"; "with checks"; "overhead"; "growth"; "paper ovh"; "paper growth" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Figure 3: SPLASH-2 speedups, MP vs transparent Alpha sync           *)
(* ------------------------------------------------------------------ *)

let fig3_procs = [ 1; 2; 4; 8; 16 ]

let speedup_row spec ~sync ~seq =
  List.map
    (fun nprocs ->
      let cl = cluster () in
      let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs ~sync () in
      if not ok then "FAIL" else Printf.sprintf "%.2f" (seq /. elapsed))
    fig3_procs

let figure3 () =
  print_header "Figure 3 (left): speedups with message-passing synchronization";
  let seq_of spec =
    let cl = cluster ~nodes:1 ~cpus:1 ~checks:false () in
    fst (Apps.Harness.run_spec cl spec ~nprocs:1 ~sync:Apps.Harness.Mp ())
  in
  let seqs = List.map (fun s -> (s, seq_of s)) Apps.Registry.all in
  print_table
    ~headers:("application" :: List.map string_of_int fig3_procs)
    (List.map
       (fun (spec, seq) -> spec.Apps.Harness.name :: speedup_row spec ~sync:Apps.Harness.Mp ~seq)
       seqs);
  print_header "Figure 3 (right): speedups with transparent Alpha (LL/SC + MB) synchronization";
  print_table
    ~headers:("application" :: List.map string_of_int fig3_procs)
    (List.map
       (fun (spec, seq) -> spec.Apps.Harness.name :: speedup_row spec ~sync:Apps.Harness.Sm ~seq)
       seqs)

(* ------------------------------------------------------------------ *)
(* Figure 4: blocking (SC) vs non-blocking (RC) stores, 16 processors  *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  print_header
    "Figure 4: 16-processor Base-Shasta, sequential consistency (SC) vs relaxed (RC)";
  let rows =
    List.map
      (fun spec ->
        let run model =
          let cl = cluster ~variant:Protocol.Config.Base ~model () in
          let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs:16 ~sync:Apps.Harness.Mp () in
          (elapsed, ok, C.total_breakdown cl)
        in
        let rc, ok1, _brc = run Protocol.Config.Rc in
        let sc, ok2, bsc = run Protocol.Config.Sc in
        let b = Shasta.Breakdown.normalize ~against:bsc bsc in
        [
          spec.Apps.Harness.name;
          ms rc; ms sc;
          (if ok1 && ok2 then Printf.sprintf "%+.1f%%" (100.0 *. ((sc /. rc) -. 1.0)) else "FAIL");
          Printf.sprintf "%.0f/%.0f/%.0f/%.0f" b.Shasta.Breakdown.task
            (b.Shasta.Breakdown.read +. b.Shasta.Breakdown.write)
            (b.Shasta.Breakdown.sync +. b.Shasta.Breakdown.mb)
            b.Shasta.Breakdown.msg;
        ])
      Apps.Registry.all
  in
  print_table
    ~headers:[ "application"; "RC ms"; "SC ms"; "SC slowdown"; "SC task/stall/sync/msg %" ]
    rows;
  Printf.printf "(paper: SC loses at most ~10%% across SPLASH-2 — fine-grain coherence\n";
  Printf.printf " does not depend on the relaxed model, unlike page-based systems)\n"

(* ------------------------------------------------------------------ *)
(* Table 4 and Figure 5: Oracle DSS-1 scaling and breakdowns           *)
(* ------------------------------------------------------------------ *)

let dss1_run ~servers ~config =
  match config with
  | `Smp ->
      (* Standard Oracle on one AlphaServer: no Shasta checks, processes
         share memory through the node's hardware. *)
      let cfg = W.cluster_config ~nodes:1 ~checks:false () in
      let placement =
        { W.root_cpu = 0; daemon_cpu = 0; server_cpus = List.init servers (fun i -> 1 + i) }
      in
      W.run_dss ~cfg ~placement ~query:W.Dss1 ()
  | `Extra -> W.run_dss ~cfg:(W.cluster_config ()) ~placement:(W.placement_extra_proc ~servers) ~query:W.Dss1 ()
  | `Equal -> W.run_dss ~cfg:(W.cluster_config ()) ~placement:(W.placement_equal ~servers) ~query:W.Dss1 ()

let table4 () =
  print_header "Table 4: DSS-1 run times (ms simulated)   [paper seconds in brackets]";
  let paper = function
    | 1, `Smp -> 8.83 | 2, `Smp -> 4.77 | 3, `Smp -> 3.06
    | 1, `Extra -> 15.51 | 2, `Extra -> 12.57 | 3, `Extra -> 8.11
    | 1, `Equal -> 15.40 | 2, `Equal -> 19.29 | 3, `Equal -> 11.11
    | _ -> nan
  in
  let rows =
    List.map
      (fun servers ->
        let cell config =
          let o = dss1_run ~servers ~config in
          Printf.sprintf "%s%s [%.2f]" (ms o.W.elapsed) (if o.W.ok then "" else "!") (paper (servers, config))
        in
        [
          Printf.sprintf "%d server%s" servers (if servers > 1 then "s" else "");
          cell `Smp; cell `Extra; cell `Equal;
        ])
      [ 1; 2; 3 ]
  in
  print_table ~headers:[ ""; "Oracle on SMP"; "Shasta extra proc"; "Shasta 1 proc/server" ] rows

let figure5 () =
  print_header "Figure 5: DSS-1 time breakdowns, extra-processor (EX) vs equal (EQ)";
  List.iter
    (fun servers ->
      let ex = dss1_run ~servers ~config:`Extra in
      let eq = dss1_run ~servers ~config:`Equal in
      let sum os =
        List.fold_left Shasta.Breakdown.add (Shasta.Breakdown.empty ()) os.W.server_breakdowns
      in
      let bex = sum ex and beq = sum eq in
      let n = Shasta.Breakdown.normalize ~against:bex in
      Printf.printf "%d servers:\n" servers;
      Format.printf "  EX (100%%): %a@." Shasta.Breakdown.pp (n bex);
      Format.printf "  EQ (%3.0f%%): %a@." (Shasta.Breakdown.total (n beq)) Shasta.Breakdown.pp (n beq))
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Section 6.2: memory-barrier cost; 6.3: code modification time       *)
(* ------------------------------------------------------------------ *)

let mb_cost ~variant ~checks =
  let cl = cluster ~nodes:1 ~cpus:1 ~variant ~checks () in
  measure_on ~cl ~cpu:0 ~iters:500 ~setup:(fun _ -> ()) (fun h -> R.mb h)

let mb_bench () =
  print_header "Memory barrier cost (us)  [paper: standard 0.03, Base 0.32, SMP 1.68]";
  print_table ~headers:[ "configuration"; "measured"; "paper" ]
    [
      [ "standard SMP application"; us (mb_cost ~variant:Protocol.Config.Smp ~checks:false); "0.03" ];
      [ "Base-Shasta"; us (mb_cost ~variant:Protocol.Config.Base ~checks:true); "0.32" ];
      [ "SMP-Shasta"; us (mb_cost ~variant:Protocol.Config.Smp ~checks:true); "1.68" ];
    ]

let rewrite_time () =
  print_header "Code modification time   [paper: SPLASH-2 4.0-7.3 s, Oracle 202 s]";
  let time_real f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let splash_prog = skeleton ~procedures:370 ~mix:sci_mix in
  let (_, s_stats), s_real = time_real (fun () -> Rewrite.Instrument.instrument splash_prog) in
  let oracle_prog = skeleton ~procedures:12000 ~mix:db_mix in
  let (_, o_stats), o_real = time_real (fun () -> Rewrite.Instrument.instrument oracle_prog) in
  print_table
    ~headers:[ "binary"; "procedures"; "slots"; "modelled time"; "our rewriter (real s)" ]
    [
      [
        "SPLASH-2-sized"; "370";
        string_of_int s_stats.Rewrite.Instrument.orig_slots;
        Printf.sprintf "%.1f s"
          (Rewrite.Instrument.modification_time_model ~procedures:370
             ~slots:s_stats.Rewrite.Instrument.orig_slots);
        Printf.sprintf "%.2f" s_real;
      ];
      [
        "Oracle-sized"; "12000";
        string_of_int o_stats.Rewrite.Instrument.orig_slots;
        Printf.sprintf "%.1f s"
          (Rewrite.Instrument.modification_time_model ~procedures:12000
             ~slots:o_stats.Rewrite.Instrument.orig_slots);
        Printf.sprintf "%.2f" o_real;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                 *)
(* ------------------------------------------------------------------ *)

let lock_counter_program =
  Alpha.Asm.(
    program
      [
        proc "main"
          [
            label "outer";
            label "try_again";
            ll W32 t0 0 a0;
            bne t0 "try_again";
            li t0 1L;
            sc W32 t0 0 a0;
            beq t0 "try_again";
            mb;
            ldq t1 0 a1;
            addi t1 1 t1;
            stq t1 0 a1;
            mb;
            stl zero 0 a0;
            subi a2 1 a2;
            bgt a2 "outer";
            halt;
          ];
      ])

let ir_lock_run ~options =
  let instrumented, _ = Rewrite.Instrument.instrument ~options lock_counter_program in
  let cl = cluster ~nodes:2 ~cpus:2 () in
  let lockw = C.alloc cl 64 in
  let counter = C.alloc cl 64 in
  for c = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:c "cpu" (fun h ->
           ignore
             (R.run_program h instrumented ~entry:"main"
                ~args:[ Int64.of_int lockw; Int64.of_int counter; Int64.of_int 20 ]
                ())))
  done;
  C.run cl

(* A streaming-read kernel over locally valid data: the configuration
   where the flag technique shines (3-slot inline check vs a protocol
   entry per load). *)
let ir_stream_run ~options =
  let prog =
    Alpha.Asm.(
      program
        [
          proc "main"
            [
              label "outer";
              mov a0 t8;
              li t9 64L;
              label "loop";
              ldq t0 0 t8;
              ldq t1 8 t8;
              ldq t2 16 t8;
              add t0 t1 t3;
              add t3 t2 t3;
              addi t8 64 t8;
              subi t9 1 t9;
              bgt t9 "loop";
              subi a2 1 a2;
              bgt a2 "outer";
              halt;
            ];
        ])
  in
  let instrumented, _ = Rewrite.Instrument.instrument ~options prog in
  let cl = cluster ~nodes:1 ~cpus:1 () in
  let buf = C.alloc cl 8192 in
  let elapsed = ref 0.0 in
  let _ =
    C.spawn cl ~cpu:0 "cpu" (fun h ->
        (* Make the region locally valid first. *)
        for i = 0 to 127 do
          R.store_int h (buf + (i * 64)) i
        done;
        let t0 = C.now cl in
        ignore
          (R.run_program h instrumented ~entry:"main"
             ~args:[ Int64.of_int buf; 0L; 200L ] ());
        R.flush h;
        elapsed := C.now cl -. t0)
  in
  ignore (C.run cl);
  !elapsed

let ablation () =
  print_header "Ablations";
  let base_opts = Rewrite.Instrument.default_options in
  let no_flag = { base_opts with Rewrite.Instrument.flag_loads = false } in
  let no_batch = { base_opts with Rewrite.Instrument.batching = false } in
  let no_flag_no_batch = { no_flag with Rewrite.Instrument.batching = false } in
  (* With batching disabled, every load keeps its individual check: the
     flag technique's 3-slot inline check vs a per-load protocol entry. *)
  Printf.printf
    "streaming reads (12.8k loads, locally valid):\n\
    \  flag+batch %.3f ms   flag only %.3f ms   state-table checks %.3f ms\n"
    (1000.0 *. ir_stream_run ~options:base_opts)
    (1000.0 *. ir_stream_run ~options:no_batch)
    (1000.0 *. ir_stream_run ~options:no_flag_no_batch);
  Printf.printf "IR lock kernel, 4 procs:  flag %.3f ms   no-flag %.3f ms\n"
    (1000.0 *. ir_lock_run ~options:base_opts)
    (1000.0 *. ir_lock_run ~options:no_flag);
  let growth o =
    let prog = skeleton ~procedures:24 ~mix:sci_mix in
    let _, st = Rewrite.Instrument.instrument ~options:o prog in
    Rewrite.Instrument.code_growth st
  in
  Printf.printf "code growth:              default %s   no-batch %s   no-flag-no-batch %s\n"
    (pct (growth base_opts))
    (pct (growth no_batch))
    (pct (growth no_flag_no_batch));
  (* Batching: a 17-line remote row fetched batched vs serial. *)
  let batch_vs_serial batched =
    let cl = cluster ~nodes:2 ~cpus:2 () in
    let t = Apps.Harness.create cl ~sync:Apps.Harness.Mp ~nprocs:2 in
    let arr = Apps.Harness.alloc_farray t 256 in
    let dt = ref 0.0 in
    let _w = C.spawn cl ~cpu:0 "w" (fun h ->
        for i = 0 to 135 do Apps.Harness.fset h arr i 1.0 done;
        R.barrier h ~id:1 ~parties:2)
    in
    let _r = C.spawn cl ~cpu:2 "r" (fun h ->
        R.barrier h ~id:1 ~parties:2;
        let t0 = C.now cl in
        if batched then Apps.Harness.batch_read h arr 0 136
        else
          for i = 0 to 135 do
            ignore (Apps.Harness.fget h arr i)
          done;
        R.flush h;
        dt := C.now cl -. t0)
    in
    C.init ~homes:[ 0 ] cl;
    ignore (C.run cl);
    !dt
  in
  Printf.printf "17-line remote fetch:     batched %.1f us   serial %.1f us\n"
    (Sim.Units.to_us (batch_vs_serial true))
    (Sim.Units.to_us (batch_vs_serial false));
  (* Direct downgrade: the paper could not even measure the runs without
     it; we can. *)
  let dd on =
    let cfg = W.cluster_config ~direct_downgrade:on () in
    (W.run_dss ~cfg ~placement:(W.placement_extra_proc ~servers:2) ~query:W.Dss1 ()).W.elapsed
  in
  let show_dd t =
    (* A negative elapsed means the timed region never completed before
       the 600-simulated-second cutoff. *)
    if t <= 0.0 then "never completes (cut off at 600 s; the paper could not measure these runs either)"
    else Printf.sprintf "%.2f ms" (1000.0 *. t)
  in
  Printf.printf "direct downgrade (DSS-1, 2 servers):  on %s   off %s\n" (show_dd (dd true))
    (show_dd (dd false));
  (* Home placement (Ocean homes each processor's rows at its domain, so
     a neighbour's boundary fetch is a two-hop miss at the owner instead
     of a recall through a third-party home). *)
  let place app on =
    let cl = cluster () in
    fst (Apps.Harness.run_spec ~home_placement:on cl app ~nprocs:8 ~sync:Apps.Harness.Mp ())
  in
  Printf.printf "home placement (Ocean, 8 procs):  on %.2f ms   off %.2f ms\n"
    (1000.0 *. place Apps.Ocean.spec true) (1000.0 *. place Apps.Ocean.spec false);
  Printf.printf "home placement (FMM, 8 procs):    on %.2f ms   off %.2f ms\n"
    (1000.0 *. place Apps.Fmm.spec true) (1000.0 *. place Apps.Fmm.spec false);
  (* Coherence granularity: one application across line sizes. *)
  let line_sweep line =
    let cl = cluster ~shared:(8 * 1024 * 1024) () in
    ignore cl;
    let cl =
      C.create
        {
          Shasta.Config.default with
          Shasta.Config.net = { Mchan.Net.default_config with Mchan.Net.nodes = 4; cpus_per_node = 4 };
          protocol =
            { Protocol.Config.default with Protocol.Config.line_size = line; shared_size = 8 * 1024 * 1024 };
        }
    in
    fst (Apps.Harness.run_spec cl Apps.Ocean.spec ~nprocs:8 ~sync:Apps.Harness.Mp ())
  in
  Printf.printf "line size (Ocean, 8 procs):  32 B %.2f ms   64 B %.2f ms   128 B %.2f ms   256 B %.2f ms\n"
    (1000.0 *. line_sweep 32) (1000.0 *. line_sweep 64) (1000.0 *. line_sweep 128)
    (1000.0 *. line_sweep 256);
  (* SC vs RC and Base vs SMP on one kernel. *)
  let variant_run ~variant ~model =
    let cl = cluster ~variant ~model () in
    fst (Apps.Harness.run_spec cl Apps.Lu.spec ~nprocs:8 ~sync:Apps.Harness.Mp ())
  in
  Printf.printf "LU, 8 procs:  SMP/RC %.2f ms   SMP/SC %.2f ms   Base/RC %.2f ms\n"
    (1000.0 *. variant_run ~variant:Protocol.Config.Smp ~model:Protocol.Config.Rc)
    (1000.0 *. variant_run ~variant:Protocol.Config.Smp ~model:Protocol.Config.Sc)
    (1000.0 *. variant_run ~variant:Protocol.Config.Base ~model:Protocol.Config.Rc)
