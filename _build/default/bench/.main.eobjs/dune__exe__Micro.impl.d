bench/micro.ml: Alpha Analyze Bechamel Benchmark Experiments Hashtbl Instance Int64 List Measure Printf Protocol Rewrite Sim Staged Test Time Toolkit
