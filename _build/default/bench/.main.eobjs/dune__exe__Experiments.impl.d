bench/experiments.ml: Alpha Apps Bytes Format Int64 List Mchan Minidb Osim Printf Protocol Rewrite Shasta Sim Support Sys
