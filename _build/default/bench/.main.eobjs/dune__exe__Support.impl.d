bench/support.ml: Array List Mchan Printf Protocol Shasta Sim String
