bench/main.mli:
