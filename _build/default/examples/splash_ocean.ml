(* A SPLASH-2-style scientific workload on the cluster: the Ocean
   red-black relaxation kernel, run with both synchronisation flavours
   of Figure 3 (message-passing vs transparent LL/SC).

   Run with:  dune exec examples/splash_ocean.exe *)

let run ~sync ~nprocs =
  let cfg =
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
      protocol = { Protocol.Config.default with Protocol.Config.shared_size = 4 * 1024 * 1024 };
    }
  in
  let cl = Shasta.Cluster.create cfg in
  let elapsed, ok = Apps.Harness.run_spec cl Apps.Ocean.spec ~nprocs ~sync ~size:130 () in
  (elapsed, ok, Shasta.Cluster.total_breakdown cl)

let () =
  Printf.printf "Ocean (130x130 grid, 8 iterations)\n\n";
  let t1, ok1, _ = run ~sync:Apps.Harness.Mp ~nprocs:1 in
  Printf.printf "1 processor:                %.2f ms  (validated: %b)\n" (1000.0 *. t1) ok1;
  let tmp, okm, bmp = run ~sync:Apps.Harness.Mp ~nprocs:4 in
  Printf.printf "4 procs, MP barriers:       %.2f ms  (speedup %.2f, validated: %b)\n"
    (1000.0 *. tmp) (t1 /. tmp) okm;
  let tsm, oks, bsm = run ~sync:Apps.Harness.Sm ~nprocs:4 in
  Printf.printf "4 procs, LL/SC barriers:    %.2f ms  (speedup %.2f, validated: %b)\n"
    (1000.0 *. tsm) (t1 /. tsm) oks;
  Printf.printf "\nThe transparent (LL/SC) barriers cost more because every barrier\n";
  Printf.printf "atomically increments a shared counter through the protocol:\n";
  Format.printf "  MP    %a@." Shasta.Breakdown.pp (Shasta.Breakdown.normalize ~against:bmp bmp);
  Format.printf "  LL/SC %a@." Shasta.Breakdown.pp (Shasta.Breakdown.normalize ~against:bsm bsm)
