examples/quickstart.mli:
