examples/splash_ocean.ml: Apps Format Mchan Printf Protocol Shasta
