examples/transparent_binary.mli:
