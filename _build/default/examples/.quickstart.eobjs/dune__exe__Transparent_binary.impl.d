examples/transparent_binary.ml: Alpha Array Format Int64 List Mchan Printf Protocol Rewrite Shasta Sim
