examples/database.mli:
