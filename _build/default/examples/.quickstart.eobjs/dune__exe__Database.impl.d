examples/database.ml: Format List Minidb Printf Shasta
