examples/quickstart.ml: List Mchan Printf Protocol Shasta
