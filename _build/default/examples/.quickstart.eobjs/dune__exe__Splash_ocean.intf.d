examples/splash_ocean.mli:
