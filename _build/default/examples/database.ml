(* The full OS-transparency stack: a multi-process database (the paper's
   Oracle stand-in) running across the cluster — fork/wait across nodes,
   shared-memory segments, daemons blocking in pid_block, syscalls with
   validated shared-memory buffers.

   Run with:  dune exec examples/database.exe *)

module W = Minidb.Workload

let show name (o : W.outcome) =
  Printf.printf "%-28s %8.2f ms   validated: %b   daemon wakeups: %d\n" name
    (1000.0 *. o.W.elapsed) o.W.ok o.W.daemon_wakeups

let () =
  Printf.printf "Decision-support query (DSS-1) on a 2-node cluster\n\n";
  let one =
    W.run_dss ~cfg:(W.cluster_config ()) ~placement:(W.placement_extra_proc ~servers:1)
      ~query:W.Dss1 ()
  in
  show "1 server" one;
  let three =
    W.run_dss ~cfg:(W.cluster_config ()) ~placement:(W.placement_extra_proc ~servers:3)
      ~query:W.Dss1 ()
  in
  show "3 servers (one remote node)" three;
  Printf.printf "\nper-server time breakdowns (3-server run):\n";
  List.iteri
    (fun i b ->
      Format.printf "  server %d: %a@." i Shasta.Breakdown.pp
        (Shasta.Breakdown.normalize ~against:b b))
    three.W.server_breakdowns;
  Printf.printf "\nOLTP (TPC-B-style) on one node, 2 clients x 50 transactions\n\n";
  let oltp =
    W.run_oltp ~cfg:(W.cluster_config ~nodes:1 ())
      ~placement:{ W.root_cpu = 0; daemon_cpu = 0; server_cpus = [ 1; 2 ] }
      ~clients:2 ~txns:50 ()
  in
  show "OLTP" oltp
