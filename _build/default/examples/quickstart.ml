(* Quickstart: share memory across a simulated cluster through Shasta.

   Four processes on two 2-processor nodes increment a shared counter
   under a lock, exchange per-process results, and print the protocol
   statistics.  Run with:  dune exec examples/quickstart.exe *)

module C = Shasta.Cluster
module R = Shasta.Runtime

let () =
  (* A cluster: 2 nodes x 2 processors, SMP-Shasta, relaxed consistency. *)
  let cfg =
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
      protocol = { Protocol.Config.default with Protocol.Config.shared_size = 1024 * 1024 };
    }
  in
  let cl = C.create cfg in

  (* Shared data lives at addresses returned by the cluster allocator. *)
  let counter = C.alloc cl 64 in
  let slots = C.alloc cl (4 * 64) in

  for p = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:p (Printf.sprintf "worker%d" p) (fun h ->
           for _ = 1 to 25 do
             (* A queue-based message-passing lock (Shasta's own), plus
                ordinary loads/stores through the inline-check machinery. *)
             R.lock h 0;
             R.store_int h counter (R.load_int h counter + 1);
             R.unlock h 0;
             (* Some private computation between critical sections. *)
             R.work_cycles h 500
           done;
           (* Publish a per-process result and wait for everyone. *)
           R.store_int h (slots + (p * 64)) (R.pid h + 100);
           R.barrier h ~id:1 ~parties:4;
           if p = 0 then begin
             Printf.printf "peers:";
             for q = 0 to 3 do
               Printf.printf " %d" (R.load_int h (slots + (q * 64)))
             done;
             Printf.printf "\ncounter = %d (expected 100)\n" (R.load_int h counter)
           end))
  done;

  let elapsed = C.run cl in
  Printf.printf "simulated time: %.3f ms\n" (1000.0 *. elapsed);
  List.iter
    (fun h ->
      let s = Protocol.Engine.stats h.R.pcb in
      Printf.printf
        "pid %d: read misses %d, store misses %d, intra-node hits %d, messages handled %d\n"
        (R.pid h) s.Protocol.Engine.read_misses s.Protocol.Engine.store_misses
        s.Protocol.Engine.intra_hits s.Protocol.Engine.messages_handled)
    (C.runtimes cl);
  Printf.printf "remote messages: %d, local messages: %d\n"
    (Mchan.Net.remote_messages cl.C.net)
    (Mchan.Net.local_messages cl.C.net)
