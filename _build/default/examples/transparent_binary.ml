(* Transparent execution of an unmodified "hardware" binary.

   This is the paper's headline capability in miniature: a binary written
   for an Alpha multiprocessor — spin lock via LL/SC (Figure 1), memory
   barriers, plain loads/stores — is instrumented by the rewriter and run
   unchanged across the simulated cluster.

   Run with:  dune exec examples/transparent_binary.exe *)

module C = Shasta.Cluster
module R = Shasta.Runtime

(* The "application binary": each process acquires the lock, transfers
   money between two shared accounts, and releases.  Written exactly as a
   multiprocessor binary would be — no Shasta constructs at all. *)
let bank_program =
  Alpha.Asm.(
    program
      [
        proc "main"
          [
            (* a0 = lock, a1 = account A, a2 = account B, a3 = rounds *)
            label "round";
            label "try_again";
            ll W32 t0 0 a0;
            bne t0 "try_again";
            li t0 1L;
            sc W32 t0 0 a0;
            beq t0 "try_again";
            mb;
            (* transfer 1 from A to B *)
            ldq t1 0 a1;
            subi t1 1 t1;
            stq t1 0 a1;
            ldq t2 0 a2;
            addi t2 1 t2;
            stq t2 0 a2;
            (* release *)
            mb;
            stl zero 0 a0;
            subi a3 1 a3;
            bgt a3 "round";
            halt;
          ];
      ])

let () =
  (* Step 1: the rewriter inserts the inline checks (the "extra step in
     building an application" of Section 5). *)
  let instrumented, stats = Rewrite.Instrument.instrument bank_program in
  Printf.printf "rewriter: %d load checks, %d store checks, %d LL/SC pairs, %d polls\n"
    stats.Rewrite.Instrument.loads_checked stats.Rewrite.Instrument.stores_checked
    stats.Rewrite.Instrument.llsc_pairs stats.Rewrite.Instrument.polls_inserted;
  Printf.printf "code size: %d -> %d slots (+%.0f%%)\n" stats.Rewrite.Instrument.orig_slots
    stats.Rewrite.Instrument.new_slots
    (100.0 *. Rewrite.Instrument.code_growth stats);
  Printf.printf "\ninstrumented code:\n";
  Array.iteri
    (fun i insn -> Format.printf "  %2d: %a@." i Alpha.Insn.pp insn)
    (Alpha.Program.find instrumented "main").Alpha.Program.code;

  (* Step 2: run it on 4 processors across 2 nodes. *)
  let cfg =
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
      protocol = { Protocol.Config.default with Protocol.Config.shared_size = 1024 * 1024 };
    }
  in
  let cl = C.create cfg in
  let lock = C.alloc cl 64 in
  let acct_a = C.alloc cl 64 in
  let acct_b = C.alloc cl 64 in
  let rounds = 20 in
  let _init =
    C.spawn cl ~cpu:0 "init" (fun h ->
        R.store_int h acct_a 1000;
        R.store_int h acct_b 0;
        R.mb h)
  in
  for p = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:p (Printf.sprintf "cpu%d" p) (fun h ->
           Sim.Proc.sleep 0.0001 (* let init finish *);
           ignore
             (R.run_program h instrumented ~entry:"main"
                ~args:
                  [ Int64.of_int lock; Int64.of_int acct_a; Int64.of_int acct_b;
                    Int64.of_int rounds ]
                ())))
  done;
  let elapsed = C.run cl in
  let h = List.hd (C.runtimes cl) in
  let a = R.load_int h acct_a and b = R.load_int h acct_b in
  Printf.printf "\nafter %d transfers on 4 processors: A=%d B=%d (sum %d, expected 1000)\n"
    (4 * rounds) a b (a + b);
  Printf.printf "simulated time: %.3f ms\n" (1000.0 *. elapsed)
