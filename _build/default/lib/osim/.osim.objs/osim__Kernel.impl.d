lib/osim/kernel.ml: Alpha Array Bytes Format Hashtbl List Mchan Printexc Printf Protocol Shasta Sim Vfs
