lib/osim/vfs.ml: Bytes Hashtbl Printf
