(** A common file system across the cluster, approximated the way the
    paper does (Section 4.2): the same file system is mounted on every
    node "via NFS", so accesses from different nodes are {e not} kept
    strictly coherent — each node has an attribute/data cache with a
    staleness window.  This is sufficient for decision-support workloads
    (mostly reads) and is exactly why transaction-processing runs are
    limited to one node, as in the paper.

    Cost model calibrated to Table 2's "standard application" column:
    an [open] costs ~58 us, a [read] ~12 us plus ~5.5 ns/byte. *)

type file = {
  name : string;
  mutable data : Bytes.t;
  mutable size : int;
  mutable version : int;
}

type cached = { mutable c_version : int; mutable fetched_at : float }

type t = {
  files : (string, file) Hashtbl.t;
  caches : (int * string, cached) Hashtbl.t;  (** (node, file) -> cache state *)
  staleness_window : float;  (** how long a node may serve stale data *)
  open_cost : float;
  read_base_cost : float;
  per_byte_cost : float;
  disk_cost : float;  (** extra cost when data is not in any cache (cold) *)
  mutable remote_fetches : int;
}

let create ?(staleness_window = 1.0) () =
  {
    files = Hashtbl.create 64;
    caches = Hashtbl.create 256;
    staleness_window;
    open_cost = 58.0e-6;
    read_base_cost = 12.0e-6;
    per_byte_cost = 5.5e-9;
    disk_cost = 0.0;
    remote_fetches = 0;
  }

let find t name = Hashtbl.find_opt t.files name

let create_file t name =
  match find t name with
  | Some f -> f
  | None ->
      let f = { name; data = Bytes.create 0; size = 0; version = 0 } in
      Hashtbl.replace t.files name f;
      f

let ensure_capacity f n =
  if Bytes.length f.data < n then begin
    let d = Bytes.make (max n (2 * Bytes.length f.data)) '\000' in
    Bytes.blit f.data 0 d 0 f.size;
    f.data <- d
  end

(** [touch_cache t ~node ~now f] — refresh the node's cache entry if its
    staleness window expired; returns [true] when the access had to go to
    the server (the cache was cold or stale). *)
let touch_cache t ~node ~now f =
  let key = (node, f.name) in
  match Hashtbl.find_opt t.caches key with
  | Some c when now -. c.fetched_at < t.staleness_window && c.c_version = f.version -> false
  | Some c ->
      c.c_version <- f.version;
      c.fetched_at <- now;
      t.remote_fetches <- t.remote_fetches + 1;
      true
  | None ->
      Hashtbl.replace t.caches key { c_version = f.version; fetched_at = now };
      t.remote_fetches <- t.remote_fetches + 1;
      true

(** [coherent_at t ~node ~now f] — does the node currently see [f]'s
    latest version?  (The paper's OLTP restriction: not guaranteed.) *)
let coherent_at t ~node ~now f =
  let key = (node, f.name) in
  match Hashtbl.find_opt t.caches key with
  | Some c -> c.c_version = f.version || now -. c.fetched_at >= t.staleness_window
  | None -> true

let read_cost t n = t.read_base_cost +. (float_of_int n *. t.per_byte_cost)
let write_cost t n = t.read_base_cost +. (float_of_int n *. t.per_byte_cost)

(** [pread f ~pos ~len buf off] — copy file bytes into [buf]. *)
let pread f ~pos ~len buf off =
  let n = max 0 (min len (f.size - pos)) in
  if n > 0 then begin
    (try Bytes.blit f.data pos buf off n
     with Invalid_argument _ ->
       invalid_arg
         (Printf.sprintf "Vfs.pread %s: pos=%d len=%d size=%d cap=%d off=%d buflen=%d" f.name
            pos len f.size (Bytes.length f.data) off (Bytes.length buf)))
  end;
  n

(** [pwrite t f ~pos src off len] — write into the file, bumping its
    version (invalidating other nodes' caches after their window). *)
let pwrite t f ~pos src off len =
  ensure_capacity f (pos + len);
  Bytes.blit src off f.data pos len;
  if pos + len > f.size then f.size <- pos + len;
  f.version <- f.version + 1;
  ignore t

let size f = f.size
