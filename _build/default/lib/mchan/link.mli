(** A node's transmit link into the Memory Channel: fixed bandwidth,
    FIFO occupancy.  All processors of one node share their link, which
    shapes the scaling curves when a whole node communicates at once. *)

type t

val create : bandwidth:float -> t

(** [transmit t ~now ~size] reserves the link for a [size]-byte message
    injected at [now]; returns the time the last byte leaves. *)
val transmit : t -> now:float -> size:int -> float

val messages : t -> int
val bytes : t -> int

(** [occupancy t] is the total time the link has been busy. *)
val occupancy : t -> float
