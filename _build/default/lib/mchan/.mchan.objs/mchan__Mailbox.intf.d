lib/mchan/mailbox.mli:
