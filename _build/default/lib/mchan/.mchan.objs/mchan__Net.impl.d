lib/mchan/net.ml: Array Link Sim
