lib/mchan/link.mli:
