lib/mchan/mailbox.ml: Queue
