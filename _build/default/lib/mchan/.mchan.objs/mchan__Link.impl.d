lib/mchan/link.ml: Float
