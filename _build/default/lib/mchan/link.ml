(** A node's transmit link into the Memory Channel.

    Each AlphaServer in the prototype cluster is connected through a
    single link, so all processors of one node share its bandwidth.  The
    link serialises outgoing messages: a message of [size] bytes occupies
    the link for [size / bandwidth] seconds, and later sends queue behind
    it.  This occupancy model, combined with the fixed one-way latency in
    {!Net}, is what bends the Figure-3 speedup curves when four processors
    per node all communicate at once. *)

type t = {
  bandwidth : float;  (** bytes per second *)
  mutable busy_until : float;
  mutable messages : int;
  mutable bytes : int;
  mutable occupancy : float;  (** total seconds the link has been busy *)
}

let create ~bandwidth = { bandwidth; busy_until = 0.0; messages = 0; bytes = 0; occupancy = 0.0 }

(** [transmit t ~now ~size] reserves the link for a [size]-byte message
    injected at [now]; returns the time the last byte leaves the link. *)
let transmit t ~now ~size =
  let start = Float.max now t.busy_until in
  let xfer = float_of_int size /. t.bandwidth in
  t.busy_until <- start +. xfer;
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + size;
  t.occupancy <- t.occupancy +. xfer;
  t.busy_until

let messages t = t.messages
let bytes t = t.bytes
let occupancy t = t.occupancy
