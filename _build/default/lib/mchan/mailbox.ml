(** Per-process receive queues.

    The Memory Channel delivers messages into a region that the receiver
    polls; we model that as a FIFO mailbox per process.  In SMP-Shasta all
    processes assigned to the same node (or processor) can drain each
    other's mailboxes — see [Net.poll_node] — which is the paper's "shared
    message queues" mechanism (Section 4.3.2). *)

type 'a t = {
  owner : int;  (** global process id of the owner *)
  queue : 'a Queue.t;
}

let create ~owner = { owner; queue = Queue.create () }

let owner t = t.owner
let push t m = Queue.push m t.queue
let pop t = Queue.take_opt t.queue
let is_empty t = Queue.is_empty t.queue
let length t = Queue.length t.queue
