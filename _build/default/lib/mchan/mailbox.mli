(** Per-process FIFO receive queues (the Memory Channel delivery region a
    process polls).  In SMP-Shasta, processes of one node may drain each
    other's queues — the "shared message queues" of Section 4.3.2. *)

type 'a t

val create : owner:int -> 'a t

(** [owner t] is the global process id the mailbox belongs to ([-1] for a
    domain-shared mailbox). *)
val owner : 'a t -> int

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val is_empty : 'a t -> bool
val length : 'a t -> int
