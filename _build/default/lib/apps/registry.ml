(** The nine SPLASH-2-style applications of Table 3 / Figures 3-4. *)

let all : Harness.spec list =
  [
    Barnes.spec;
    Fmm.spec;
    Lu.spec;
    Lu.spec_contig;
    Ocean.spec;
    Raytrace.spec;
    Volrend.spec;
    Water.spec_nsq;
    Water.spec_spatial;
  ]

let find name =
  match List.find_opt (fun s -> String.lowercase_ascii s.Harness.name = String.lowercase_ascii name) all with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown application %S (known: %s)" name
           (String.concat ", " (List.map (fun s -> s.Harness.name) all)))
