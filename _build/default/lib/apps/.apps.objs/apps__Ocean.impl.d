lib/apps/ocean.ml: Array Float Harness Int64 List R
