lib/apps/raytrace.ml: Array Float Harness Int64 List R Shasta
