lib/apps/lu.ml: Alpha Array Float Harness Int64 List R
