lib/apps/fmm.ml: Array Float Harness Int64 List R
