lib/apps/volrend.ml: Array Float Harness Int64 List R Shasta
