lib/apps/barnes.ml: Array Float Harness Int64 List R
