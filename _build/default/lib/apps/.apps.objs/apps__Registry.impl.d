lib/apps/registry.ml: Barnes Fmm Harness List Lu Ocean Printf Raytrace String Volrend Water
