lib/apps/water.ml: Array Float Harness Int64 List R
