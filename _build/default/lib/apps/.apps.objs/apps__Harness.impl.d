lib/apps/harness.ml: Alpha Float Int64 List Mchan Option Printf Protocol Shasta
