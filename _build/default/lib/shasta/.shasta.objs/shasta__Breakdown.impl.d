lib/shasta/breakdown.ml: Format Sim
