lib/shasta/runtime.ml: Alpha Breakdown Bytes Config Float Int64 List Mchan Protocol Sim Sync
