lib/shasta/sync.ml: Array Hashtbl List Mchan Option Protocol Queue Sim
