lib/shasta/config.ml: Alpha Int64 Mchan Protocol Sim
