lib/shasta/cluster.ml: Breakdown Config List Mchan Option Protocol Runtime Sim Sync
