(** A small assembler DSL for writing test programs and microbenchmarks.

    Example (the paper's Figure 1 — spin lock via LL/SC):
    {[
      Asm.(proc "acquire" [
        label "try_again";
        ll W32 v0 0 a0;
        bne v0 "try_again";
        li t0 1L;
        sc W32 t0 0 a0;
        beq t0 "try_again";
        mb;
        ret;
      ])
    ]} *)

open Insn

(* Register names (Alpha calling standard). *)
let v0 = 0
let t0 = 1
let t1 = 2
let t2 = 3
let t3 = 4
let t4 = 5
let t5 = 6
let t6 = 7
let t7 = 8
let s0 = 9
let s1 = 10
let s2 = 11
let s3 = 12
let s4 = 13
let s5 = 14
let fp = 15
let a0 = 16
let a1 = 17
let a2 = 18
let a3 = 19
let a4 = 20
let a5 = 21
let t8 = 22
let t9 = 23
let t10 = 24
let t11 = 25
let ra = 26
let t12 = 27
let at = 28
let gp = 29
let sp = 30
let zero = 31

let label l = Label l
let li r v = Li (r, v)
let lif f v = Lif (f, v)
let mov src dst = Binop (Add, src, Imm 0, dst)
let add a b d = Binop (Add, a, Reg b, d)
let addi a i d = Binop (Add, a, Imm i, d)
let sub a b d = Binop (Sub, a, Reg b, d)
let subi a i d = Binop (Sub, a, Imm i, d)
let mul a b d = Binop (Mul, a, Reg b, d)
let muli a i d = Binop (Mul, a, Imm i, d)
let and_ a b d = Binop (And, a, Reg b, d)
let andi a i d = Binop (And, a, Imm i, d)
let or_ a b d = Binop (Or, a, Reg b, d)
let xor a b d = Binop (Xor, a, Reg b, d)
let slli a i d = Binop (Sll, a, Imm i, d)
let srli a i d = Binop (Srl, a, Imm i, d)
let cmpeq a b d = Binop (Cmpeq, a, Reg b, d)
let cmplt a b d = Binop (Cmplt, a, Reg b, d)
let cmplti a i d = Binop (Cmplt, a, Imm i, d)
let cmple a b d = Binop (Cmple, a, Reg b, d)
let ld w d off b = Ld (w, d, off, b)
let ldl d off b = Ld (W32, d, off, b)
let ldq d off b = Ld (W64, d, off, b)
let st w s off b = St (w, s, off, b)
let stl s off b = St (W32, s, off, b)
let stq s off b = St (W64, s, off, b)
let ldt d off b = Ldf (d, off, b)
let stt s off b = Stf (s, off, b)
let fadd a b d = Fbinop (Fadd, a, b, d)
let fsub a b d = Fbinop (Fsub, a, b, d)
let fmul a b d = Fbinop (Fmul, a, b, d)
let fdiv a b d = Fbinop (Fdiv, a, b, d)
let fcmp c a b d = Fcmp (c, a, b, d)
let cvt_if r f = Cvt_if (r, f)
let cvt_fi f r = Cvt_fi (f, r)
let fmov a d = Fmov (a, d)
let ll w d off b = Ll (w, d, off, b)
let sc w s off b = Sc (w, s, off, b)
let mb = Mb
let br l = Br l
let beq r l = Bcond (Eq, r, l)
let bne r l = Bcond (Ne, r, l)
let blt r l = Bcond (Lt, r, l)
let ble r l = Bcond (Le, r, l)
let bgt r l = Bcond (Gt, r, l)
let bge r l = Bcond (Ge, r, l)
let call p = Call p
let ret = Ret
let halt = Halt

(** [proc name insns] assembles one procedure. *)
let proc name insns = (name, insns)

(** [program procs] assembles a whole program. *)
let program procs =
  let t = Program.create () in
  List.iter (fun (name, insns) -> ignore (Program.add_procedure t ~name insns)) procs;
  t
