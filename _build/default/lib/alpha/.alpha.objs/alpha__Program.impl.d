lib/alpha/program.ml: Array Hashtbl Insn List Option
