lib/alpha/cost.ml: Insn List
