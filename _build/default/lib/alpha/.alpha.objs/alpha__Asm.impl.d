lib/alpha/asm.ml: Insn List Program
