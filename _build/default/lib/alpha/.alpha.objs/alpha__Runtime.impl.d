lib/alpha/runtime.ml: Bytes Insn Int64 Sim
