lib/alpha/insn.ml: Format List
