lib/alpha/interp.ml: Array Cost Format Insn Int64 List Program Runtime
