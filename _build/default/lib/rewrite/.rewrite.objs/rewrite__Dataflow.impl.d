lib/rewrite/dataflow.ml: Alpha Array Cfg Int64 List Queue
