lib/rewrite/cfg.ml: Alpha Array List
