lib/rewrite/instrument.ml: Alpha Array Cfg Dataflow Hashtbl List Option
