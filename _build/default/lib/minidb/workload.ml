(** Database workload drivers: the OLTP (TPC-B-like) and DSS
    (TPC-D-like) runs of Tables 3-4 and Figure 5. *)

module R = Shasta.Runtime
module K = Osim.Kernel
module C = Shasta.Cluster

type query = Dss1 | Dss2

(** Where the database processes run (Table 4's three configurations
    differ only here). *)
type placement = {
  root_cpu : int;  (** the root/client process *)
  daemon_cpu : int;  (** daemons (and short-lived startup processes) *)
  server_cpus : int list;  (** one entry per query server *)
}

type outcome = {
  elapsed : float;  (** warm-cache query/transaction time *)
  ok : bool;  (** result validated *)
  server_breakdowns : Shasta.Breakdown.t list;
  daemon_wakeups : int;
}

let default_pages = 96
let default_rows_per_page = 32

let cluster_config ?(nodes = 2) ?(cpus_per_node = 4) ?(checks = true)
    ?(variant = Protocol.Config.Smp) ?(direct_downgrade = true) () =
  {
    Shasta.Config.default with
    Shasta.Config.net =
      { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node };
    checks_enabled = checks;
    (* Remote forks copy the parent's writable private data; keep the
       database processes' private area modest so the copy cost stays in
       proportion, as it is at the paper's scale. *)
    private_mem_size = 128 * 1024;
    protocol =
      {
        Protocol.Config.default with
        Protocol.Config.variant;
        direct_downgrade;
        shared_size = 4 * 1024 * 1024;
      };
  }

let breakdown_delta b0 b1 =
  {
    Shasta.Breakdown.task = b1.Shasta.Breakdown.task -. b0.Shasta.Breakdown.task;
    read = b1.Shasta.Breakdown.read -. b0.Shasta.Breakdown.read;
    write = b1.Shasta.Breakdown.write -. b0.Shasta.Breakdown.write;
    mb = b1.Shasta.Breakdown.mb -. b0.Shasta.Breakdown.mb;
    sync = b1.Shasta.Breakdown.sync -. b0.Shasta.Breakdown.sync;
    blocked = b1.Shasta.Breakdown.blocked -. b0.Shasta.Breakdown.blocked;
    msg = b1.Shasta.Breakdown.msg -. b0.Shasta.Breakdown.msg;
  }

(** [run_dss ~cfg ~placement ~query ()] — boot a cluster + kernel, start
    the database, run the decision-support query with
    [List.length placement.server_cpus] parallel servers, and report the
    warm-cache elapsed time plus per-server breakdowns. *)
let run_dss ?(pages = default_pages) ?(rows_per_page = default_rows_per_page) ~cfg ~placement
    ~query () =
  let servers = List.length placement.server_cpus in
  let cl = C.create cfg in
  let slot_cpus =
    (* root + daemons (two slots so LGWR and DBWR coexist) + one slot per
       server + one spare for the transient startup processes *)
    [ placement.root_cpu; placement.daemon_cpu; placement.daemon_cpu; placement.daemon_cpu ]
    @ placement.server_cpus
  in
  let k = K.boot cl ~slot_cpus () in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  let ok = ref false in
  let wakeups = ref 0 in
  let breakdowns = ref [] in
  (* DSS-1: access-dominated rows (highest checking overhead in Table 3);
     DSS-2: a longer query with relatively more compute per access. *)
  let passes, meta_loads, row_compute =
    match query with Dss1 -> (1, 1600, 2) | Dss2 -> (6, 1000, 7)
  in
  let _root =
    K.start k ~cpu_hint:placement.root_cpu (fun ctx ->
        let db = Db.create ctx ~pages ~rows_per_page ~nframes:pages in
        Db.start_daemons ctx db ~cpu_hint:(Some placement.daemon_cpu);
        Buffer.warm ctx db.Db.buf ~pages;
        let results = db.Db.sga + 2048 in
        (* Fork the query servers first (they park in pid_block, like
           long-lived parallel-query slaves), then time only the query. *)
        let kids =
          List.mapi
            (fun i cpu ->
              K.fork ctx ~cpu_hint:cpu (fun sctx ->
                  ignore (K.pid_block sctx);
                  let b0 = R.breakdown sctx.K.h in
                  let per = (pages + servers - 1) / servers in
                  let lo = i * per and hi = min pages ((i + 1) * per) in
                  let sum = ref 0 in
                  for _ = 1 to passes do
                    sum := Db.scan sctx db ~lo_page:lo ~hi_page:hi ~meta_loads ~row_compute
                  done;
                  R.store_int sctx.K.h (results + (64 * i)) !sum;
                  R.flush sctx.K.h;
                  breakdowns := breakdown_delta b0 (R.breakdown sctx.K.h) :: !breakdowns))
            placement.server_cpus
        in
        t0 := C.now cl;
        List.iter (fun kid -> K.pid_unblock ctx kid) kids;
        for _ = 1 to servers do
          ignore (K.wait ctx)
        done;
        t1 := C.now cl;
        let total = ref 0 in
        for i = 0 to servers - 1 do
          total := !total + R.load_int ctx.K.h (results + (64 * i))
        done;
        ok := !total = Db.expected_sum db ~lo_page:0 ~hi_page:pages;
        if not !ok then
          Format.eprintf "DSS mismatch: total=%d expected=%d servers=%d@." !total
            (Db.expected_sum db ~lo_page:0 ~hi_page:pages) servers;
        wakeups := db.Db.daemon_wakeups;
        Db.stop_daemons ctx db)
  in
  (try ignore (C.run ~until:600.0 cl)
   with C.Worker_failed (name, e) ->
     failwith (Printf.sprintf "minidb worker %s failed: %s" name (Printexc.to_string e)));
  {
    elapsed = !t1 -. !t0;
    ok = !ok;
    server_breakdowns = List.rev !breakdowns;
    daemon_wakeups = !wakeups;
  }

(** [run_oltp ~cfg ~placement ~clients ~txns ()] — TPC-B-style account
    updates; validated by a final full scan. *)
let run_oltp ?(pages = default_pages) ?(rows_per_page = default_rows_per_page) ~cfg ~placement
    ~clients ~txns () =
  let cl = C.create cfg in
  let slot_cpus =
    [ placement.root_cpu; placement.daemon_cpu; placement.daemon_cpu; placement.daemon_cpu ]
    @ List.filteri (fun i _ -> i < clients) placement.server_cpus
  in
  let k = K.boot cl ~slot_cpus () in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  let ok = ref false in
  let _root =
    K.start k ~cpu_hint:placement.root_cpu (fun ctx ->
        let db = Db.create ctx ~pages ~rows_per_page ~nframes:pages in
        Db.start_daemons ctx db ~cpu_hint:(Some placement.daemon_cpu);
        Buffer.warm ctx db.Db.buf ~pages;
        let accounts = pages * rows_per_page in
        t0 := C.now cl;
        let cpus = List.filteri (fun i _ -> i < clients) placement.server_cpus in
        List.iteri
          (fun c cpu ->
            ignore
              (K.fork ctx ~cpu_hint:cpu (fun sctx ->
                   let rng = Sim.Rng.create (4242 + c) in
                   for _ = 1 to txns do
                     Db.account_update sctx db ~account:(Sim.Rng.int rng accounts) ~delta:1
                   done)))
          cpus;
        for _ = 1 to clients do
          ignore (K.wait ctx)
        done;
        t1 := C.now cl;
        (* Validation: total balance grew by exactly one per transaction. *)
        let total = Db.scan ctx db ~lo_page:0 ~hi_page:pages ~meta_loads:0 ~row_compute:0 in
        ok := total = Db.expected_sum db ~lo_page:0 ~hi_page:pages + (clients * txns);
        Db.stop_daemons ctx db)
  in
  (try ignore (C.run ~until:600.0 cl)
   with C.Worker_failed (name, e) ->
     failwith (Printf.sprintf "minidb worker %s failed: %s" name (Printexc.to_string e)));
  { elapsed = !t1 -. !t0; ok = !ok; server_breakdowns = []; daemon_wakeups = 0 }

(* Placements for the Table 4 columns, on 2 nodes x 4 processors. *)

(** Daemons get their own processor on node 0 ("EX" runs). *)
let placement_extra_proc ~servers =
  {
    root_cpu = 0;
    daemon_cpu = 0;
    server_cpus = List.init servers (fun i -> if i = 0 then 1 else 3 + i);
  }

(** Exactly one processor per server: daemons share with server 1
    ("EQ" runs). *)
let placement_equal ~servers =
  {
    root_cpu = 0;
    daemon_cpu = 0;
    server_cpus = List.init servers (fun i -> if i = 0 then 0 else 3 + i);
  }
