lib/minidb/buffer.ml: Osim Shasta
