lib/minidb/db.ml: Buffer Bytes Int64 Osim Shasta
