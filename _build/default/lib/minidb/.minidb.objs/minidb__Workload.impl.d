lib/minidb/workload.ml: Buffer Db Format List Mchan Osim Printexc Printf Protocol Shasta Sim
