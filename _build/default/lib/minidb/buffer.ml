(** The database buffer cache, living in a shared-memory segment (the
    SGA).  Page frames and their headers are ordinary Shasta shared
    memory: every lookup goes through the inline-check machinery, every
    replacement does a [read] system call whose destination buffer is
    validated by the OS layer (Section 4.1).

    The cache is direct-mapped by page number with one latch (an MP lock)
    per frame — enough structure to produce the latching and sharing
    behaviour of the paper's Oracle runs without reimplementing LRU. *)

module R = Shasta.Runtime

type t = {
  base : int;  (** headers region: one 64-byte header per frame *)
  frames : int;  (** frame region base *)
  nframes : int;
  page_bytes : int;
  latch0 : int;  (** first of [nframes] MP lock ids *)
  file : string;
  mutable lookups : int;
  mutable misses : int;
}

let header_bytes = 64

(** [layout_size ~nframes ~page_bytes] — bytes of SGA space needed. *)
let layout_size ~nframes ~page_bytes = (nframes * header_bytes) + (nframes * page_bytes)

let create ~sga_base ~nframes ~page_bytes ~latch0 ~file =
  {
    base = sga_base;
    frames = sga_base + (nframes * header_bytes);
    nframes;
    page_bytes;
    latch0;
    file;
    lookups = 0;
    misses = 0;
  }

let header t i = t.base + (i * header_bytes)
let frame t i = t.frames + (i * t.page_bytes)

(** [pin ctx t ~page f] — run [f frame_addr] with [page] resident and its
    latch held.  A miss replaces the frame's current page with a file
    read into the (shared, validated) frame. *)
let pin (ctx : Osim.Kernel.ctx) t ~page f =
  let h = ctx.Osim.Kernel.h in
  t.lookups <- t.lookups + 1;
  let i = page mod t.nframes in
  R.lock h (t.latch0 + i);
  let tag = R.load_int h (header t i) in
  if tag <> page + 1 then begin
    t.misses <- t.misses + 1;
    (* Replacement: fetch the page from the file into the frame. *)
    let fd = Osim.Kernel.open_file ctx t.file in
    Osim.Kernel.lseek ctx fd (page * t.page_bytes);
    let n = Osim.Kernel.read ctx fd ~buf:(frame t i) ~len:t.page_bytes in
    Osim.Kernel.close ctx fd;
    if n <> t.page_bytes then failwith "Buffer.pin: short read";
    R.store_int h (header t i) (page + 1)
  end;
  let result = f (frame t i) in
  R.unlock h (t.latch0 + i);
  result

(** [warm ctx t ~pages] — prefault pages 0..pages-1 (Table 4's runs are
    against "tables that are already cached in memory"). *)
let warm ctx t ~pages =
  for p = 0 to min pages t.nframes - 1 do
    pin ctx t ~page:p (fun _ -> ())
  done

let hit_rate t =
  if t.lookups = 0 then 1.0
  else 1.0 -. (float_of_int t.misses /. float_of_int t.lookups)
