(** Time units and the cycle/time conversions used throughout the simulator.

    All simulated time is expressed in seconds (float).  The prototype
    cluster in the paper uses 300 MHz Alpha 21164 processors, so one cycle
    is 1/300e6 s; helpers below convert between instruction counts and
    seconds at that clock rate unless a different frequency is given. *)

type seconds = float

let ns = 1e-9
let us = 1e-6
let ms = 1e-3

(** Default processor frequency of the prototype cluster (Hz). *)
let default_cpu_hz = 300.0e6

(** [cycles ?hz n] is the duration of [n] cycles at frequency [hz]. *)
let cycles ?(hz = default_cpu_hz) n = float_of_int n /. hz

(** [cycles_f ?hz n] is the duration of a fractional cycle count. *)
let cycles_f ?(hz = default_cpu_hz) n = n /. hz

(** [to_us t] converts seconds to microseconds (for reporting). *)
let to_us t = t /. us

(** [to_ms t] converts seconds to milliseconds (for reporting). *)
let to_ms t = t /. ms

(** [pp_time ppf t] prints a duration with an adaptive unit. *)
let pp_time ppf t =
  if Float.abs t >= 1.0 then Format.fprintf ppf "%.3fs" t
  else if Float.abs t >= ms then Format.fprintf ppf "%.2fms" (to_ms t)
  else if Float.abs t >= us then Format.fprintf ppf "%.2fus" (to_us t)
  else Format.fprintf ppf "%.1fns" (t /. ns)
