(** Online statistics: counters, mean/variance accumulators, histograms.

    Used by the protocol and the benchmark harness to report message
    counts, miss latencies and time breakdowns. *)

type counter = { mutable count : int }

let counter () = { count = 0 }
let incr_counter c = c.count <- c.count + 1
let add_counter c n = c.count <- c.count + n
let counter_value c = c.count

(** Welford's online mean/variance, plus min/max. *)
type summary = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let summary () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let observe s x =
  s.n <- s.n + 1;
  let delta = x -. s.mean in
  s.mean <- s.mean +. (delta /. float_of_int s.n);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean));
  if x < s.min then s.min <- x;
  if x > s.max then s.max <- x

let count s = s.n
let mean s = if s.n = 0 then 0.0 else s.mean
let variance s = if s.n < 2 then 0.0 else s.m2 /. float_of_int (s.n - 1)
let stddev s = sqrt (variance s)
let minimum s = s.min
let maximum s = s.max
let total s = s.mean *. float_of_int s.n

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%g sd=%g min=%g max=%g" s.n (mean s) (stddev s)
    s.min s.max

(** Fixed-bucket histogram over [\[lo, hi)] with [buckets] equal bins plus
    underflow/overflow bins. *)
type histogram = {
  lo : float;
  hi : float;
  bins : int array;
  mutable under : int;
  mutable over : int;
  mutable observations : int;
}

let histogram ~lo ~hi ~buckets =
  if buckets <= 0 || hi <= lo then invalid_arg "Stats.histogram";
  { lo; hi; bins = Array.make buckets 0; under = 0; over = 0; observations = 0 }

let record h x =
  h.observations <- h.observations + 1;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    let width = (h.hi -. h.lo) /. float_of_int (Array.length h.bins) in
    let i = int_of_float ((x -. h.lo) /. width) in
    let i = if i >= Array.length h.bins then Array.length h.bins - 1 else i in
    h.bins.(i) <- h.bins.(i) + 1
  end

let observations h = h.observations

(** [percentile h p] approximates the [p]-th percentile (0-100) from the
    bucket midpoints.  Under/overflow observations clamp to the bounds. *)
let percentile h p =
  if h.observations = 0 then 0.0
  else begin
    let target = int_of_float (ceil (float_of_int h.observations *. p /. 100.0)) in
    let target = if target < 1 then 1 else target in
    let width = (h.hi -. h.lo) /. float_of_int (Array.length h.bins) in
    let acc = ref h.under in
    if !acc >= target then h.lo
    else begin
      let result = ref h.hi in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= target then begin
               result := h.lo +. ((float_of_int i +. 0.5) *. width);
               raise Exit
             end)
           h.bins
       with Exit -> ());
      !result
    end
  end
