(** Array-based binary min-heap keyed by [(time, sequence)]; ties break
    in FIFO order so simulations are deterministic. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~time ~seq v] inserts [v]; [seq] orders same-time entries. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

val peek : 'a t -> 'a entry option
val pop : 'a t -> 'a entry option
