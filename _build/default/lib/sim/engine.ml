(** Discrete-event simulation core: a virtual clock and an event heap.

    Events are thunks fired in [(time, insertion-order)] order, so the
    whole simulation is deterministic.  Everything above this module
    (CPUs, processes, the network, the coherence protocol) is expressed
    as events. *)

type t = {
  mutable now : float;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  mutable fired : int;
}

let create () = { now = 0.0; seq = 0; events = Heap.create (); fired = 0 }

let now t = t.now

let events_fired t = t.fired

let pending t = Heap.length t.events

(** [at t time f] schedules [f] to fire at absolute [time].
    Requires [time >= now t]. *)
let at t time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.at: time %.9g is in the past (now %.9g)" time t.now);
  Heap.push t.events ~time ~seq:t.seq f;
  t.seq <- t.seq + 1

(** [after t dt f] schedules [f] to fire [dt] seconds from now. *)
let after t dt f = at t (t.now +. dt) f

(** [step t] fires the earliest pending event.  Returns [false] when the
    event heap is empty. *)
let step t =
  match Heap.pop t.events with
  | None -> false
  | Some e ->
      t.now <- e.Heap.time;
      t.fired <- t.fired + 1;
      e.Heap.value ();
      true

(** [run ?until ?max_events t] fires events until the heap is empty, the
    clock passes [until], or [max_events] have fired.  Returns the reason
    the run stopped. *)
type stop_reason = Quiescent | Deadline | Event_budget

let run ?until ?max_events t =
  let deadline_hit () =
    match until with
    | None -> false
    | Some d -> (
        match Heap.peek t.events with
        | None -> false
        | Some e -> e.Heap.time > d)
  in
  let budget_hit fired0 =
    match max_events with None -> false | Some m -> t.fired - fired0 >= m
  in
  let fired0 = t.fired in
  let rec loop () =
    if deadline_hit () then begin
      (match until with Some d -> t.now <- max t.now d | None -> ());
      Deadline
    end
    else if budget_hit fired0 then Event_budget
    else if step t then loop ()
    else Quiescent
  in
  loop ()
