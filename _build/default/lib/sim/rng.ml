(** Deterministic splittable pseudo-random numbers (splitmix64).

    The simulator never uses [Random] from the standard library so that
    every run is reproducible from a single seed, and independent streams
    (one per simulated process, workload, etc.) can be split off without
    coupling their sequences. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] is a new generator whose stream is independent of [t]'s. *)
let split t = { state = next_int64 t }

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  (* Mask to OCaml's 63-bit non-negative range: a logical shift of the
     int64 still leaves bit 62 set sometimes, which is the native sign
     bit after [to_int]. *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

(** [float t bound] is uniform in [\[0, bound)]. *)
let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [exponential t ~mean] samples an exponential inter-arrival time. *)
let exponential t ~mean =
  let u = ref (float t 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
