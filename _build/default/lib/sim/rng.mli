(** Deterministic splittable pseudo-random numbers (splitmix64).  The
    simulator never uses [Stdlib.Random]: every run is reproducible from
    its seeds. *)

type t

val create : int -> t

(** [split t] is a new generator statistically independent of [t]. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound).  Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

val bool : t -> bool

(** [exponential t ~mean] samples an exponential inter-arrival time. *)
val exponential : t -> mean:float -> float

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
