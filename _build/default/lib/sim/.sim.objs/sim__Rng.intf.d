lib/sim/rng.mli:
