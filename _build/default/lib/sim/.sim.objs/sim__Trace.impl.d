lib/sim/trace.ml: Engine Logs Units
