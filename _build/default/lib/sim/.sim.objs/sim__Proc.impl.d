lib/sim/proc.ml: Array Effect Engine Float Format List Queue Signal Sys
