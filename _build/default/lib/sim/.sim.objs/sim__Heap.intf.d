lib/sim/heap.mli:
