(** Array-based binary min-heap keyed by [(time, sequence)] pairs.

    The sequence number breaks ties so that events scheduled for the same
    instant fire in FIFO order, which keeps the simulation deterministic. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let cap' = if cap = 0 then 16 else cap * 2 in
  (* The dummy cell is only used to extend the array; it is overwritten
     before it can ever be observed because [size] bounds all reads. *)
  let dummy = h.data.(0) in
  let data' = Array.make cap' dummy in
  Array.blit h.data 0 data' 0 h.size;
  h.data <- data'

let push h ~time ~seq value =
  let e = { time; seq; value } in
  if h.size = Array.length h.data then
    if h.size = 0 then h.data <- Array.make 16 e else grow h;
  let data = h.data in
  let i = ref h.size in
  h.size <- h.size + 1;
  data.(!i) <- e;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt data.(!i) data.(parent) then begin
      let tmp = data.(parent) in
      data.(parent) <- data.(!i);
      data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let data = h.data in
    let top = data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      data.(0) <- data.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt data.(l) data.(!smallest) then smallest := l;
        if r < h.size && lt data.(r) data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = data.(!smallest) in
          data.(!smallest) <- data.(!i);
          data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end
