(** A coherence domain's copy of the shared address space, with the
    hardware LL/SC monitor.

    In Base-Shasta each process has an image; in SMP-Shasta the processes
    of a node share one, so plain loads and stores between them behave
    like hardware shared memory.  The image also implements the lock-flag
    semantics of the Alpha LL/SC pair (Section 3.1.1): a store by any
    {e other} process to a monitored line clears that monitor, as does an
    invalidation's flag write. *)

type monitor = { mon_pid : int; mon_line : int }

type t = {
  base : int;
  data : Bytes.t;
  line_size : int;
  mutable monitors : monitor list;
}

let create ~base ~size ~line_size = { base; data = Bytes.make size '\000'; line_size; monitors = [] }

(* Word-level write tracing: set SHASTA_DEBUG_ADDR=<hex or dec address>. *)
let debug_addr =
  match Sys.getenv_opt "SHASTA_DEBUG_ADDR" with Some a -> int_of_string a | None -> -1

let dbg_write t addr what v =
  if debug_addr >= 0 && addr <= debug_addr && debug_addr < addr + 8 then
    Format.eprintf "  [img %x] %s 0x%x <- %Ld@." (Hashtbl.hash t) what addr v

let line_of t addr = (addr - t.base) / t.line_size

let in_range t addr width =
  let off = addr - t.base in
  off >= 0 && off + width <= Bytes.length t.data

let check t addr width =
  if not (in_range t addr width) then
    invalid_arg (Printf.sprintf "Memimg: access at 0x%x outside the image" addr)

let read t addr (w : Alpha.Insn.width) =
  check t addr (Alpha.Insn.bytes_of_width w);
  let off = addr - t.base in
  match w with
  | Alpha.Insn.W32 -> Int64.of_int32 (Bytes.get_int32_le t.data off)
  | Alpha.Insn.W64 -> Bytes.get_int64_le t.data off

(* Clear other processes' monitors on the stored-to line. *)
let break_monitors t ~line ~pid =
  match t.monitors with
  | [] -> ()
  | ms -> t.monitors <- List.filter (fun m -> m.mon_line <> line || m.mon_pid = pid) ms

let write ?(pid = -1) t addr (w : Alpha.Insn.width) v =
  check t addr (Alpha.Insn.bytes_of_width w);
  dbg_write t addr (Printf.sprintf "write(pid%d)" pid) v;
  let off = addr - t.base in
  break_monitors t ~line:(line_of t addr) ~pid;
  match w with
  | Alpha.Insn.W32 -> Bytes.set_int32_le t.data off (Int64.to_int32 v)
  | Alpha.Insn.W64 -> Bytes.set_int64_le t.data off v

(** [ll t ~pid addr w] performs a load-locked: reads and arms [pid]'s
    monitor on the line. *)
let ll t ~pid addr w =
  let line = line_of t addr in
  t.monitors <- { mon_pid = pid; mon_line = line } :: List.filter (fun m -> m.mon_pid <> pid) t.monitors;
  read t addr w

(** [monitor_armed t ~pid addr] — is [pid]'s LL monitor still armed on
    [addr]'s line?  Consulted when a protocol-path store-conditional is
    granted by the home: if an intervening data write or invalidation
    broke the monitor, the SC fails spuriously (which the Alpha
    architecture permits) rather than complete against stale data. *)
let monitor_armed t ~pid addr =
  let line = line_of t addr in
  List.exists (fun m -> m.mon_pid = pid && m.mon_line = line) t.monitors

(** [sc t ~pid addr w v] performs a store-conditional: succeeds iff
    [pid]'s monitor on the line is still armed.  Always disarms. *)
let sc t ~pid addr w v =
  let line = line_of t addr in
  let armed = List.exists (fun m -> m.mon_pid = pid && m.mon_line = line) t.monitors in
  t.monitors <- List.filter (fun m -> m.mon_pid <> pid) t.monitors;
  if armed then write ~pid t addr w v;
  armed

(** [write_flags t ~flag32 ~line] stores the invalid-flag value into
    every 4-byte word of [line] (Section 2.2).  Breaks monitors. *)
let write_flags t ~flag32 ~line =
  (if debug_addr >= 0 then
     let off = debug_addr - t.base in
     if off >= line * t.line_size && off < (line + 1) * t.line_size then
       dbg_write t debug_addr "write_flags" 0L);
  let off = line * t.line_size in
  for w = 0 to (t.line_size / 4) - 1 do
    Bytes.set_int32_le t.data (off + (4 * w)) flag32
  done;
  break_monitors t ~line ~pid:(-1)

(** [read_block t ~line ~lines] copies the [lines]-line block starting at
    [line] out of the image. *)
let read_block t ~line ~lines =
  let len = lines * t.line_size in
  Bytes.sub t.data (line * t.line_size) len

(** [write_block t ~line data] copies block data into the image (a fetch
    reply or a writeback).  Monitors are broken only on lines whose
    content actually changes: a cache fill that brings back identical
    data does not clear a hardware lock flag, and breaking monitors on
    every fill livelocks contended LL/SC loops (every contender's fetch
    would spuriously fail every sibling's SC). *)
let write_block t ~line data =
  (if debug_addr >= 0 then
     let off = debug_addr - t.base in
     if off >= line * t.line_size && off < (line * t.line_size) + Bytes.length data then
       dbg_write t debug_addr "write_block" (Bytes.get_int64_le data (off - (line * t.line_size))));
  let lines = Bytes.length data / t.line_size in
  for l = 0 to lines - 1 do
    let dst_off = (line + l) * t.line_size in
    let changed =
      not (Bytes.equal (Bytes.sub data (l * t.line_size) t.line_size)
             (Bytes.sub t.data dst_off t.line_size))
    in
    Bytes.blit data (l * t.line_size) t.data dst_off t.line_size;
    if changed then break_monitors t ~line:(line + l) ~pid:(-1)
  done

(** [word_is_flag t ~flag32 addr] tests whether the aligned 4-byte word
    at [addr] currently holds the flag value. *)
let word_is_flag t ~flag32 addr =
  let off = addr - t.base in
  Bytes.get_int32_le t.data (off land lnot 3) = flag32

(** [blit_out t ~addr ~len buf off] — copy raw image bytes out (used by
    the OS layer for syscall buffers after validation). *)
let blit_out t ~addr ~len buf off =
  check t addr len;
  Bytes.blit t.data (addr - t.base) buf off len

(** [blit_in t ~addr buf off len] — copy bytes into the image, breaking
    LL monitors on every touched line. *)
let blit_in t ~addr buf off len =
  check t addr len;
  Bytes.blit buf off t.data (addr - t.base) len;
  for l = line_of t addr to line_of t (addr + len - 1) do
    break_monitors t ~line:l ~pid:(-1)
  done
