lib/protocol/directory.ml: Bytes Hashtbl List Option Ptypes Queue
