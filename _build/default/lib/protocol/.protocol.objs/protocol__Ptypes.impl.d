lib/protocol/ptypes.ml: Bytes Format
