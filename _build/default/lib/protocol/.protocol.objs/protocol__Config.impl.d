lib/protocol/config.ml: Printf
