lib/protocol/memimg.ml: Alpha Bytes Format Hashtbl Int64 List Printf Sys
