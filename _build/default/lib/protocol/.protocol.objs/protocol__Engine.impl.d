lib/protocol/engine.ml: Alpha Array Bytes Config Directory Format Hashtbl Int64 List Mchan Memimg Option Printf Ptypes Queue Sim String Sys
