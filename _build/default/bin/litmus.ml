(* Memory-model litmus tests, including the paper's Figure 2 example,
   executed through the full protocol.

     dune exec bin/litmus.exe
*)

module C = Shasta.Cluster
module R = Shasta.Runtime

let cluster () =
  C.create
    {
      Shasta.Config.default with
      Shasta.Config.net = { Mchan.Net.default_config with Mchan.Net.nodes = 4; cpus_per_node = 1 };
      protocol = { Protocol.Config.default with Protocol.Config.shared_size = 1024 * 1024 };
    }

let spin h addr =
  let rec go () =
    if R.load_int h addr <> 1 then begin
      R.work_cycles h 30;
      R.flush h;
      Sim.Proc.work 1e-7;
      go ()
    end
  in
  go ()

(* Figure 2: P1 and P2 write A and publish via flags; P3 and P4 read A
   after acquiring both flags.  Under the Alpha memory model the only
   allowed outcomes are (r1,r2) = (1,1) or (2,2): writes to A must be
   serialised and eventually propagated. *)
let figure2 round =
  let cl = cluster () in
  let a = C.alloc cl 64 in
  let f1 = C.alloc cl 64 and f2 = C.alloc cl 64 in
  let f3 = C.alloc cl 64 and f4 = C.alloc cl 64 in
  let r1 = ref 0 and r2 = ref 0 in
  let stagger p h = Sim.Proc.work (float_of_int ((p * 13) + round) *. 1e-7); ignore h in
  let _ =
    C.spawn cl ~cpu:0 "P1" (fun h ->
        stagger 0 h;
        R.store_int h a 1;
        R.mb h;
        R.store_int h f1 1;
        R.mb h;
        R.store_int h f2 1)
  in
  let _ =
    C.spawn cl ~cpu:1 "P2" (fun h ->
        stagger 1 h;
        R.store_int h a 2;
        R.mb h;
        R.store_int h f3 1;
        R.mb h;
        R.store_int h f4 1)
  in
  let _ =
    C.spawn cl ~cpu:2 "P3" (fun h ->
        spin h f1;
        spin h f3;
        r1 := R.load_int h a)
  in
  let _ =
    C.spawn cl ~cpu:3 "P4" (fun h ->
        spin h f2;
        spin h f4;
        r2 := R.load_int h a)
  in
  ignore (C.run cl);
  (!r1, !r2)

(* Message passing: the classic MP litmus — data must be visible when the
   flag is. *)
let message_passing round =
  let cl = cluster () in
  let data = C.alloc cl 64 and flag = C.alloc cl 64 in
  let seen = ref (-1) in
  let _ =
    C.spawn cl ~cpu:0 "writer" (fun h ->
        Sim.Proc.work (float_of_int round *. 1e-7);
        R.store_int h data 42;
        R.mb h;
        R.store_int h flag 1)
  in
  let _ =
    C.spawn cl ~cpu:2 "reader" (fun h ->
        spin h flag;
        (* An MB on the acquire side orders the flag read before the data
           read under the Alpha model. *)
        R.mb h;
        seen := R.load_int h data)
  in
  ignore (C.run cl);
  !seen

(* Store atomicity via LL/SC: concurrent fetch-and-adds never lose an
   update. *)
let atomic_increment () =
  let cl = cluster () in
  let counter = C.alloc cl 64 in
  for p = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:p "inc" (fun h ->
           for _ = 1 to 25 do
             ignore (R.atomic_add h counter 1)
           done))
  done;
  ignore (C.run cl);
  Apps.Harness.read_valid cl counter

let () =
  let failures = ref 0 in
  Printf.printf "Figure 2 (write serialisation + eventual propagation):\n";
  for round = 1 to 10 do
    let r1, r2 = figure2 round in
    let ok = (r1 = 1 && r2 = 1) || (r1 = 2 && r2 = 2) in
    if not ok then incr failures;
    Printf.printf "  round %2d: (r1,r2) = (%d,%d)  %s\n" round r1 r2 (if ok then "ok" else "VIOLATION")
  done;
  Printf.printf "\nMessage passing (data visible with flag):\n";
  for round = 1 to 10 do
    let seen = message_passing round in
    if seen <> 42 then incr failures;
    Printf.printf "  round %2d: read %d  %s\n" round seen (if seen = 42 then "ok" else "VIOLATION")
  done;
  Printf.printf "\nAtomic increments (4 procs x 25):\n";
  (match atomic_increment () with
  | Some v when Int64.to_int v = 100 -> Printf.printf "  counter = 100  ok\n"
  | Some v ->
      incr failures;
      Printf.printf "  counter = %Ld  VIOLATION\n" v
  | None ->
      incr failures;
      Printf.printf "  no agreed value  VIOLATION\n");
  if !failures = 0 then Printf.printf "\nall litmus tests passed\n"
  else begin
    Printf.printf "\n%d violations\n" !failures;
    exit 1
  end
