(* CLI: run the binary rewriter over a demo program and show the result.

     dune exec bin/shasta_instrument.exe -- --program lock --no-batch
*)

let demo_programs =
  [
    ( "lock",
      "the paper's Figure 1: LL/SC lock acquire around a critical section",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                label "outer";
                label "try_again";
                ll W32 t0 0 a0;
                bne t0 "try_again";
                li t0 1L;
                sc W32 t0 0 a0;
                beq t0 "try_again";
                mb;
                ldq t1 0 a1;
                addi t1 1 t1;
                stq t1 0 a1;
                mb;
                stl zero 0 a0;
                subi a2 1 a2;
                bgt a2 "outer";
                halt;
              ];
          ]) );
    ( "stream",
      "a streaming loop: batched loads and stores over consecutive lines",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                li t9 100L;
                label "loop";
                ldq t0 0 a0;
                ldq t1 8 a0;
                ldq t2 16 a0;
                add t0 t1 t3;
                add t3 t2 t3;
                stq t3 24 a0;
                stq t3 32 a0;
                addi a0 64 a0;
                subi t9 1 t9;
                bgt t9 "loop";
                halt;
              ];
          ]) );
    ( "mixed",
      "mixed private (stack) and shared accesses: the dataflow analysis\n\
      \   proves the stack accesses private and skips their checks",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                li t9 10L;
                label "loop";
                ldq t0 0 a0;
                stq t0 0 sp;
                ldq t1 8 sp;
                stq t1 8 a0;
                mb;
                subi t9 1 t9;
                bgt t9 "loop";
                ret;
              ];
          ]) );
  ]

let () =
  let name = ref "lock" in
  let batching = ref true in
  let flag_loads = ref true in
  let polls = ref true in
  let prefetch = ref true in
  let args =
    [
      ( "--program",
        Arg.Set_string name,
        Printf.sprintf " demo program (%s)" (String.concat ", " (List.map (fun (n, _, _) -> n) demo_programs)) );
      ("--no-batch", Arg.Clear batching, " disable batching");
      ("--no-flag", Arg.Clear flag_loads, " state-table checks instead of the flag technique");
      ("--no-polls", Arg.Clear polls, " no loop-backedge polls");
      ("--no-prefetch", Arg.Clear prefetch, " no prefetch-exclusive before LL/SC loops");
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "shasta_instrument [options]";
  let _, descr, prog =
    match List.find_opt (fun (n, _, _) -> n = !name) demo_programs with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown program %S\n" !name;
        exit 1
  in
  let options =
    {
      Rewrite.Instrument.default_options with
      Rewrite.Instrument.batching = !batching;
      flag_loads = !flag_loads;
      polls = !polls;
      prefetch_ll_sc = !prefetch;
    }
  in
  Printf.printf "program %S: %s\n\noriginal:\n" !name descr;
  List.iter
    (fun p ->
      Printf.printf "%s:\n" p.Alpha.Program.name;
      Array.iteri (fun i insn -> Format.printf "  %3d: %a@." i Alpha.Insn.pp insn) p.Alpha.Program.code)
    (Alpha.Program.procedures prog);
  let instrumented, stats = Rewrite.Instrument.instrument ~options prog in
  Printf.printf "\ninstrumented:\n";
  List.iter
    (fun p ->
      Printf.printf "%s:\n" p.Alpha.Program.name;
      Array.iteri (fun i insn -> Format.printf "  %3d: %a@." i Alpha.Insn.pp insn) p.Alpha.Program.code)
    (Alpha.Program.procedures instrumented);
  Printf.printf
    "\nstatic statistics:\n\
    \  code size: %d -> %d slots (+%.0f%%)\n\
    \  load checks %d (flag technique), store checks %d, state-table checks via batch\n\
    \  batches %d covering %d accesses, polls %d, LL/SC pairs %d, prefetches %d, MB checks %d\n\
    \  accesses proved private (no check): %d\n"
    stats.Rewrite.Instrument.orig_slots stats.Rewrite.Instrument.new_slots
    (100.0 *. Rewrite.Instrument.code_growth stats)
    stats.Rewrite.Instrument.loads_checked stats.Rewrite.Instrument.stores_checked
    stats.Rewrite.Instrument.batches stats.Rewrite.Instrument.batched_accesses
    stats.Rewrite.Instrument.polls_inserted stats.Rewrite.Instrument.llsc_pairs
    stats.Rewrite.Instrument.prefetches stats.Rewrite.Instrument.mb_checks_inserted
    stats.Rewrite.Instrument.accesses_private
