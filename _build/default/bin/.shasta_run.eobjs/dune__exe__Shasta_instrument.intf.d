bin/shasta_instrument.mli:
