bin/shasta_instrument.ml: Alpha Arg Array Format List Printf Rewrite String
