bin/litmus.mli:
