bin/litmus.ml: Apps Int64 Mchan Printf Protocol Shasta Sim
