bin/shasta_run.ml: Apps Arg Format List Mchan Printf Protocol Shasta String
