bin/shasta_run.mli:
