(* Tests for the cluster OS layer: process management, shared-memory
   segments, file system calls with argument validation. *)

module C = Shasta.Cluster
module R = Shasta.Runtime
module K = Osim.Kernel
module Cfg = Shasta.Config

let make_kernel ?(nodes = 2) ?(cpus = 2) ?(slot_cpus = [ 0; 1; 2; 3 ]) () =
  let cl =
    C.create
      {
        Cfg.default with
        Cfg.net = { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node = cpus };
        protocol = { Protocol.Config.default with Protocol.Config.shared_size = 1024 * 1024 };
      }
  in
  (cl, K.boot cl ~slot_cpus ())

let run cl = try ignore (C.run ~until:60.0 cl) with C.Worker_failed (n, e) ->
  Alcotest.failf "worker %s: %s" n (Printexc.to_string e)

let test_fork_wait () =
  let cl, k = make_kernel () in
  let child_ran = ref false in
  let reaped = ref (-1, -1) in
  let _ =
    K.start k (fun ctx ->
        let pid = K.fork ctx (fun cctx ->
            child_ran := true;
            K.exit_process cctx 7)
        in
        let rp, status = K.wait ctx in
        Alcotest.(check int) "reaped the forked child" pid rp;
        reaped := (rp, status))
  in
  run cl;
  Alcotest.(check bool) "child ran" true !child_ran;
  Alcotest.(check int) "exit status" 7 (snd !reaped)

let test_fork_remote_node () =
  (* Fork onto the second node; child sees the parent's private data. *)
  let cl, k = make_kernel () in
  let child_node = ref (-1) in
  let child_saw = ref 0 in
  let _ =
    K.start k ~cpu_hint:0 (fun ctx ->
        Bytes.set_int64_le ctx.K.h.R.private_mem 128 12345L;
        ignore
          (K.fork ctx ~cpu_hint:2 (fun cctx ->
               child_node := R.node cctx.K.h;
               child_saw := Int64.to_int (Bytes.get_int64_le cctx.K.h.R.private_mem 128)));
        ignore (K.wait ctx))
  in
  run cl;
  Alcotest.(check int) "child on node 1" 1 !child_node;
  Alcotest.(check int) "private data copied across" 12345 !child_saw

let test_getpid_unique () =
  let cl, k = make_kernel () in
  let pids = ref [] in
  let _ =
    K.start k (fun ctx ->
        pids := K.getpid ctx :: !pids;
        for _ = 1 to 2 do
          ignore (K.fork ctx (fun cctx -> pids := K.getpid cctx :: !pids))
        done;
        ignore (K.wait ctx);
        ignore (K.wait ctx))
  in
  run cl;
  let sorted = List.sort_uniq compare !pids in
  Alcotest.(check int) "three distinct global pids" 3 (List.length sorted)

let test_pid_block_unblock () =
  let cl, k = make_kernel () in
  let woke_at = ref 0.0 in
  let _ =
    K.start k (fun ctx ->
        let child =
          K.fork ctx (fun cctx ->
              ignore (K.pid_block cctx);
              woke_at := C.now cl)
        in
        R.work ctx.K.h 0.005;
        K.pid_unblock ctx child;
        ignore (K.wait ctx))
  in
  run cl;
  Alcotest.(check bool) "woken after ~5ms" true (!woke_at >= 0.005 && !woke_at < 0.02)

let test_pid_unblock_pending () =
  (* An unblock delivered before the block must not be lost. *)
  let cl, k = make_kernel () in
  let finished = ref false in
  let _ =
    K.start k (fun ctx ->
        let child =
          K.fork ctx (fun cctx ->
              (* Give the parent time to send the unblock first. *)
              R.work cctx.K.h 0.003;
              ignore (K.pid_block cctx);
              finished := true)
        in
        K.pid_unblock ctx child;
        ignore (K.wait ctx))
  in
  run cl;
  Alcotest.(check bool) "pending unblock consumed" true !finished

let test_kill_wakes_blocked () =
  let cl, k = make_kernel () in
  let killed_flag = ref false in
  let _ =
    K.start k (fun ctx ->
        let child = K.fork ctx (fun cctx -> killed_flag := K.pid_block cctx) in
        R.work ctx.K.h 0.002;
        K.kill ctx child;
        ignore (K.wait ctx))
  in
  run cl;
  Alcotest.(check bool) "kill reported by pid_block" true !killed_flag

let test_slot_reuse () =
  (* More forks than slots, sequentially: slots are reused. *)
  let cl, k = make_kernel ~slot_cpus:[ 0; 1 ] () in
  let count = ref 0 in
  let _ =
    K.start k (fun ctx ->
        for _ = 1 to 5 do
          ignore (K.fork ctx (fun _ -> incr count));
          ignore (K.wait ctx)
        done)
  in
  run cl;
  Alcotest.(check int) "five children ran through one spare slot" 5 !count

let test_shm () =
  let cl, k = make_kernel () in
  let got = ref 0 in
  let _ =
    K.start k (fun ctx ->
        let seg = K.shmget ctx 4096 in
        let addr = K.shmat ctx seg in
        R.store_int ctx.K.h addr 99;
        ignore
          (K.fork ctx ~cpu_hint:2 (fun cctx ->
               let addr' = K.shmat cctx seg in
               got := R.load_int cctx.K.h addr'));
        ignore (K.wait ctx))
  in
  run cl;
  Alcotest.(check int) "segment shared across nodes" 99 !got

let test_file_roundtrip_private_buffer () =
  let cl, k = make_kernel () in
  let got = ref 0L in
  let _ =
    K.start k (fun ctx ->
        let fd = K.open_file ctx "data" in
        Bytes.set_int64_le ctx.K.h.R.private_mem 0 777L;
        ignore (K.write ctx fd ~buf:0 ~len:8);
        K.lseek ctx fd 0;
        ignore (K.read ctx fd ~buf:64 ~len:8);
        got := Bytes.get_int64_le ctx.K.h.R.private_mem 64;
        K.close ctx fd)
  in
  run cl;
  Alcotest.(check int64) "file roundtrip" 777L !got

let test_read_into_shared_buffer_validated () =
  (* The read buffer lives in shared memory and is exclusively held by a
     process on another node; the syscall must validate (fetch) it and
     the data must land coherently. *)
  let cl, k = make_kernel () in
  let got = ref 0 in
  let seg_addr = ref 0 in
  let _ =
    K.start k ~cpu_hint:0 (fun ctx ->
        let seg = K.shmget ctx 4096 in
        let addr = K.shmat ctx seg in
        seg_addr := addr;
        (* A remote child takes the buffer lines exclusive. *)
        ignore
          (K.fork ctx ~cpu_hint:2 (fun cctx ->
               for i = 0 to 3 do
                 R.store_int cctx.K.h (addr + (i * 64)) (-1)
               done));
        ignore (K.wait ctx);
        (* Now read file data into that shared buffer. *)
        let fd = K.open_file ctx "shared_read" in
        Bytes.set_int64_le ctx.K.h.R.private_mem 0 31337L;
        ignore (K.write ctx fd ~buf:0 ~len:8);
        K.lseek ctx fd 0;
        ignore (K.read ctx fd ~buf:addr ~len:8);
        got := R.load_int ctx.K.h addr)
  in
  run cl;
  Alcotest.(check int) "validated shared-buffer read" 31337 !got

let test_vfs_staleness_window () =
  let vfs = Osim.Vfs.create ~staleness_window:1.0 () in
  let f = Osim.Vfs.create_file vfs "x" in
  Osim.Vfs.pwrite vfs f ~pos:0 (Bytes.make 8 'a') 0 8;
  (* Node 1 caches at t=0. *)
  ignore (Osim.Vfs.touch_cache vfs ~node:1 ~now:0.0 f);
  Osim.Vfs.pwrite vfs f ~pos:0 (Bytes.make 8 'b') 0 8;
  Alcotest.(check bool) "node 1 may be stale inside the window" false
    (Osim.Vfs.coherent_at vfs ~node:1 ~now:0.5 f);
  Alcotest.(check bool) "window expiry restores coherence" true
    (Osim.Vfs.coherent_at vfs ~node:1 ~now:1.5 f)

let test_protocol_processes_serve () =
  (* With protocol processes installed, a request to a node whose only
     application process sleeps is still served promptly (Section 4.3.2). *)
  let serve_latency ~protoprocs =
    let cl =
      C.create
        {
          Cfg.default with
          Cfg.net = { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
          protocol = { Protocol.Config.default with Protocol.Config.shared_size = 1024 * 1024 };
        }
    in
    let k = K.boot cl ~protocol_processes:protoprocs ~slot_cpus:[ 0; 2 ] () in
    let read_done = ref infinity in
    let a = C.alloc cl 64 in
    let _ =
      K.start k ~cpu_hint:0 (fun ctx ->
          R.store_int ctx.K.h a 5;
          ignore
            (K.fork ctx ~cpu_hint:2 (fun cctx ->
                 Sim.Proc.sleep 0.001;
                 ignore (R.load_int cctx.K.h a);
                 read_done := C.now cl));
          (* The only process on node 0 blocks (as in a syscall): without
             protocol processes nothing there can serve the remote read
             until it wakes and polls. *)
          R.block_for ctx.K.h 0.050;
          R.work ctx.K.h 0.002;
          ignore (K.wait ctx))
    in
    C.init ~homes:[ 0 ] cl;
    run cl;
    !read_done
  in
  let with_pp = serve_latency ~protoprocs:true in
  let without = serve_latency ~protoprocs:false in
  Alcotest.(check bool)
    (Printf.sprintf "protocol processes serve promptly (%.4fs vs %.4fs)" with_pp without)
    true
    (* the fork itself ships ~1 MB of private data (~17 ms on the link),
       so "promptly" means well before the 50 ms block expires *)
    (with_pp < 0.025 && without > 0.045)

let suite =
  [
    Alcotest.test_case "fork/wait" `Quick test_fork_wait;
    Alcotest.test_case "remote fork copies private data" `Quick test_fork_remote_node;
    Alcotest.test_case "global pids unique" `Quick test_getpid_unique;
    Alcotest.test_case "pid_block/unblock" `Quick test_pid_block_unblock;
    Alcotest.test_case "pid_unblock pending" `Quick test_pid_unblock_pending;
    Alcotest.test_case "kill wakes blocked" `Quick test_kill_wakes_blocked;
    Alcotest.test_case "slot reuse" `Quick test_slot_reuse;
    Alcotest.test_case "shm segments" `Quick test_shm;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip_private_buffer;
    Alcotest.test_case "shared-buffer read validated" `Quick
      test_read_into_shared_buffer_validated;
    Alcotest.test_case "vfs staleness window" `Quick test_vfs_staleness_window;
    Alcotest.test_case "protocol processes serve" `Quick test_protocol_processes_serve;
  ]
