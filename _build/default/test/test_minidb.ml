(* Tests for the mini database engine (the Oracle stand-in). *)

module W = Minidb.Workload

let small_dss ~servers ~placement ?(checks = true) ?(direct_downgrade = true) () =
  let cfg = W.cluster_config ~checks ~direct_downgrade () in
  W.run_dss ~pages:48 ~rows_per_page:16 ~cfg ~placement:(placement ~servers) ~query:W.Dss1 ()

let test_dss1_single_server () =
  let o = small_dss ~servers:1 ~placement:W.placement_extra_proc () in
  Alcotest.(check bool) "aggregate validated" true o.W.ok;
  Alcotest.(check bool) "elapsed positive" true (o.W.elapsed > 0.0);
  Alcotest.(check bool) "daemon was exercised" true (o.W.daemon_wakeups > 0)

let test_dss1_parallel_servers () =
  let o1 = small_dss ~servers:1 ~placement:W.placement_extra_proc () in
  let o3 = small_dss ~servers:3 ~placement:W.placement_extra_proc () in
  Alcotest.(check bool) "3-server result validated" true o3.W.ok;
  Alcotest.(check bool)
    (Printf.sprintf "3 servers faster than 1 (%.2fms vs %.2fms)"
       (1000.0 *. o3.W.elapsed) (1000.0 *. o1.W.elapsed))
    true
    (o3.W.elapsed < o1.W.elapsed);
  Alcotest.(check int) "one breakdown per server" 3 (List.length o3.W.server_breakdowns)

let test_dss2_longer_than_dss1 () =
  let cfg = W.cluster_config () in
  let p = W.placement_extra_proc ~servers:1 in
  let d1 = W.run_dss ~pages:32 ~rows_per_page:16 ~cfg ~placement:p ~query:W.Dss1 () in
  let cfg2 = W.cluster_config () in
  ignore cfg2;
  let d2 = W.run_dss ~pages:32 ~rows_per_page:16 ~cfg:(W.cluster_config ()) ~placement:p ~query:W.Dss2 () in
  Alcotest.(check bool) "both validated" true (d1.W.ok && d2.W.ok);
  Alcotest.(check bool)
    (Printf.sprintf "DSS-2 much longer (%.2fms vs %.2fms)" (1000.0 *. d2.W.elapsed)
       (1000.0 *. d1.W.elapsed))
    true
    (d2.W.elapsed > 3.0 *. d1.W.elapsed)

let test_extra_proc_beats_equal () =
  (* Table 4 / Figure 5: with 2 servers, the extra-processor placement
     beats one-processor-per-server (daemons contend with server 1). *)
  let ex = small_dss ~servers:2 ~placement:W.placement_extra_proc () in
  let eq = small_dss ~servers:2 ~placement:W.placement_equal () in
  Alcotest.(check bool) "both validated" true (ex.W.ok && eq.W.ok);
  Alcotest.(check bool)
    (Printf.sprintf "EX (%.2fms) faster than EQ (%.2fms)" (1000.0 *. ex.W.elapsed)
       (1000.0 *. eq.W.elapsed))
    true
    (ex.W.elapsed < eq.W.elapsed)

let test_oltp_validates () =
  let cfg = W.cluster_config ~nodes:1 () in
  let p = { W.root_cpu = 0; daemon_cpu = 0; server_cpus = [ 1; 2 ] } in
  let o = W.run_oltp ~pages:24 ~rows_per_page:16 ~cfg ~placement:p ~clients:2 ~txns:40 () in
  Alcotest.(check bool) "balances add up" true o.W.ok

let test_checking_overhead_oltp () =
  (* Table 3's OLTP row: single-processor run, checks on vs off. *)
  let run checks =
    let cfg = W.cluster_config ~nodes:1 ~checks () in
    let p = { W.root_cpu = 0; daemon_cpu = 0; server_cpus = [ 1 ] } in
    (W.run_oltp ~pages:24 ~rows_per_page:16 ~cfg ~placement:p ~clients:1 ~txns:60 ()).W.elapsed
  in
  let base = run false in
  let checked = run true in
  let overhead = (checked -. base) /. base in
  Alcotest.(check bool)
    (Printf.sprintf "OLTP checking overhead %.1f%% plausible" (100.0 *. overhead))
    true
    (overhead > 0.02 && overhead < 1.5)

let suite =
  [
    Alcotest.test_case "DSS-1 single server" `Quick test_dss1_single_server;
    Alcotest.test_case "DSS-1 parallel servers" `Quick test_dss1_parallel_servers;
    Alcotest.test_case "DSS-2 longer" `Quick test_dss2_longer_than_dss1;
    Alcotest.test_case "EX beats EQ" `Quick test_extra_proc_beats_equal;
    Alcotest.test_case "OLTP validates" `Quick test_oltp_validates;
    Alcotest.test_case "OLTP checking overhead" `Quick test_checking_overhead_oltp;
  ]
