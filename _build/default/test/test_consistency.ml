(* Memory-consistency tests: Dekker under SC, message-passing under RC
   with MBs, rewriter-option variants run end-to-end, and a full-stack
   equivalence property (instrumented binary on the cluster vs the same
   binary on a flat uniprocessor). *)

module C = Shasta.Cluster
module R = Shasta.Runtime

let cluster ?(nodes = 2) ?(cpus = 2) ?(model = Protocol.Config.Rc) () =
  C.create
    {
      Shasta.Config.default with
      Shasta.Config.net = { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node = cpus };
      protocol =
        { Protocol.Config.default with Protocol.Config.model; shared_size = 512 * 1024 };
    }

(* Dekker: under sequential consistency, (r1, r2) = (0, 0) is forbidden. *)
let dekker ~model ~stagger =
  let cl = cluster ~model () in
  let x = C.alloc cl 64 and y = C.alloc cl 64 in
  let r1 = ref (-1) and r2 = ref (-1) in
  let _ =
    C.spawn cl ~cpu:0 "P0" (fun h ->
        Sim.Proc.work (stagger *. 1e-7);
        R.store_int h x 1;
        r1 := R.load_int h y)
  in
  let _ =
    C.spawn cl ~cpu:2 "P1" (fun h ->
        R.store_int h y 1;
        r2 := R.load_int h x)
  in
  ignore (C.run cl);
  (!r1, !r2)

let test_dekker_sc () =
  for round = 0 to 9 do
    let r1, r2 = dekker ~model:Protocol.Config.Sc ~stagger:(float_of_int round) in
    Alcotest.(check bool)
      (Printf.sprintf "SC forbids (0,0); got (%d,%d) at stagger %d" r1 r2 round)
      false
      (r1 = 0 && r2 = 0)
  done

let test_mb_orders_rc () =
  (* Under RC, data published before an MB is visible once the flag is. *)
  for round = 0 to 9 do
    let cl = cluster () in
    let data = C.alloc cl 64 and flag = C.alloc cl 64 in
    let seen = ref (-1) in
    let _ =
      C.spawn cl ~cpu:0 "w" (fun h ->
          Sim.Proc.work (float_of_int round *. 1e-7);
          R.store_int h data 7;
          R.mb h;
          R.store_int h flag 1)
    in
    let _ =
      C.spawn cl ~cpu:2 "r" (fun h ->
          let rec spin () =
            if R.load_int h flag <> 1 then begin
              R.work_cycles h 30;
              R.flush h;
              Sim.Proc.work 1e-7;
              spin ()
            end
          in
          spin ();
          R.mb h;
          seen := R.load_int h data)
    in
    ignore (C.run cl);
    Alcotest.(check int) (Printf.sprintf "round %d" round) 7 !seen
  done

(* The bank-transfer binary from the examples, reused as an end-to-end
   fixture for rewriter option variants. *)
let bank_program =
  Alpha.Asm.(
    program
      [
        proc "main"
          [
            label "round";
            label "try_again";
            ll W32 t0 0 a0;
            bne t0 "try_again";
            li t0 1L;
            sc W32 t0 0 a0;
            beq t0 "try_again";
            mb;
            ldq t1 0 a1;
            subi t1 1 t1;
            stq t1 0 a1;
            ldq t2 0 a2;
            addi t2 1 t2;
            stq t2 0 a2;
            mb;
            stl zero 0 a0;
            subi a3 1 a3;
            bgt a3 "round";
            halt;
          ];
      ])

let run_bank ~options =
  let instrumented, _ = Rewrite.Instrument.instrument ~options bank_program in
  let cl = cluster () in
  let lock = C.alloc cl 64 in
  let a = C.alloc cl 64 in
  let b = C.alloc cl 64 in
  let _ =
    C.spawn cl ~cpu:0 "init" (fun h ->
        R.store_int h a 500;
        R.mb h)
  in
  for p = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:p "cpu" (fun h ->
           Sim.Proc.sleep 1e-4;
           ignore
             (R.run_program h instrumented ~entry:"main"
                ~args:[ Int64.of_int lock; Int64.of_int a; Int64.of_int b; Int64.of_int 10 ]
                ())))
  done;
  ignore (C.run cl);
  let va = Apps.Harness.read_valid cl a and vb = Apps.Harness.read_valid cl b in
  match (va, vb) with
  | Some va, Some vb -> Int64.to_int va + Int64.to_int vb = 500 && Int64.to_int vb = 40
  | _ -> false

let opt_variant name f =
  Alcotest.test_case name `Quick (fun () ->
      let options = f Rewrite.Instrument.default_options in
      Alcotest.(check bool) "bank transfers intact" true (run_bank ~options))

(* Full-stack equivalence: a random straight-line binary over shared and
   private memory computes the same result instrumented-on-cluster as it
   does uninstrumented on a flat machine. *)
let qcheck_cluster_matches_flat =
  let shared_base = Protocol.Config.default.Protocol.Config.shared_base in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 25)
        (oneof
           [
             map2 (fun r v -> Alpha.Asm.li (1 + (r mod 8)) (Int64.of_int v)) (int_range 0 7) (int_range 0 1000);
             map3
               (fun a b d -> Alpha.Asm.add (1 + (a mod 8)) (1 + (b mod 8)) (1 + (d mod 8)))
               (int_range 0 7) (int_range 0 7) (int_range 0 7);
             map2
               (fun off r -> Alpha.Asm.stq (1 + (r mod 8)) (8 * (off mod 32)) Alpha.Asm.t8)
               (int_range 0 31) (int_range 0 7);
             map2
               (fun off d -> Alpha.Asm.ldq (1 + (d mod 8)) (8 * (off mod 32)) Alpha.Asm.t8)
               (int_range 0 31) (int_range 0 7);
             map2
               (fun off r -> Alpha.Asm.stq (1 + (r mod 8)) (8 * (off mod 32)) Alpha.Asm.sp)
               (int_range 0 31) (int_range 0 7);
           ]))
  in
  QCheck.Test.make ~name:"instrumented-on-cluster equals flat uniprocessor" ~count:40
    (QCheck.make gen)
    (fun body ->
      let prologue = Alpha.Asm.[ li t8 (Int64.of_int (shared_base + 4096)); li sp 0x4000L ] in
      let epilogue =
        Alpha.Asm.(
          [ li v0 0L ]
          @ List.concat_map (fun r -> [ add v0 r v0 ]) [ t0; t1; t2; t3; t4; t5; t6; t7 ]
          @ [ halt ])
      in
      let prog = Alpha.Asm.(program [ proc "main" (prologue @ body @ epilogue) ]) in
      let flat_rt = Alpha.Runtime.flat ~size:(1 lsl 20) () in
      (* The flat machine's "shared" addresses exceed its memory; remap by
         running with t8 pointing at a low address instead. *)
      let prologue_flat = Alpha.Asm.[ li t8 0x8000L; li sp 0x4000L ] in
      let prog_flat = Alpha.Asm.(program [ proc "main" (prologue_flat @ body @ epilogue) ]) in
      let expected = (Alpha.Interp.run prog_flat flat_rt ~entry:"main" ()).Alpha.Interp.r0 in
      let instrumented, _ = Rewrite.Instrument.instrument prog in
      let cl = cluster () in
      let got = ref Int64.min_int in
      (* A serving process on the home node (the data is remote to the
         executing processor). *)
      let _server = C.spawn cl ~cpu:0 "server" (fun _ -> ()) in
      let _ =
        C.spawn cl ~cpu:2 "cpu" (fun h ->
            got := (R.run_program h instrumented ~entry:"main" ()).Alpha.Interp.r0)
      in
      C.init ~homes:[ 0 ] cl;
      ignore (C.run cl);
      !got = expected)

let suite =
  [
    Alcotest.test_case "Dekker forbidden under SC" `Quick test_dekker_sc;
    Alcotest.test_case "MB ordering under RC" `Quick test_mb_orders_rc;
    opt_variant "bank: default options" (fun o -> o);
    opt_variant "bank: no flag technique" (fun o -> { o with Rewrite.Instrument.flag_loads = false });
    opt_variant "bank: no batching" (fun o -> { o with Rewrite.Instrument.batching = false });
    opt_variant "bank: no prefetch" (fun o -> { o with Rewrite.Instrument.prefetch_ll_sc = false });
    QCheck_alcotest.to_alcotest qcheck_cluster_matches_flat;
  ]
