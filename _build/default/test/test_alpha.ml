(* Tests for the Alpha-like ISA: assembler, interpreter, LL/SC, floats. *)

open Alpha

let flat () = Runtime.flat ~size:65536 ()

let run ?args prog entry =
  let rt = flat () in
  Interp.run prog rt ~entry ?args ()

let check_r0 msg expected outcome = Alcotest.(check int64) msg expected outcome.Interp.r0

let test_arith () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 6L;
              li t1 7L;
              mul t0 t1 v0;
              addi v0 100 v0;
              subi v0 2 v0;
              halt;
            ];
        ])
  in
  check_r0 "6*7+100-2" 140L (run prog "main")

let test_branches_loop () =
  (* Sum 1..10 with a loop. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 10L;
              li v0 0L;
              label "loop";
              add v0 t0 v0;
              subi t0 1 t0;
              bgt t0 "loop";
              halt;
            ];
        ])
  in
  check_r0 "sum 1..10" 55L (run prog "main")

let test_memory_roundtrip () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 0x1000L;
              li t1 0x1122334455667788L;
              stq t1 0 t0;
              ldq v0 0 t0;
              halt;
            ];
        ])
  in
  check_r0 "store/load q" 0x1122334455667788L (run prog "main")

let test_word_access () =
  (* 32-bit store followed by 32-bit load; check truncation. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 0x2000L;
              li t1 0xDEADBEEFL;
              stl t1 0 t0;
              ldl v0 0 t0;
              halt;
            ];
        ])
  in
  (* 0xDEADBEEF as a signed 32-bit value is negative. *)
  check_r0 "32-bit sign" 0xFFFFFFFFDEADBEEFL (run prog "main")

let test_calls () =
  let prog =
    Asm.(
      program
        [
          proc "double" [ add a0 a0 v0; ret ];
          proc "main" [ li a0 21L; call "double"; halt ];
        ])
  in
  check_r0 "call/ret" 42L (run prog "main")

let test_args () =
  let prog = Asm.(program [ proc "main" [ add a0 a1 v0; halt ] ]) in
  check_r0 "arguments land in a0/a1" 30L (run ~args:[ 10L; 20L ] prog "main")

let test_float_ops () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              lif 0 1.5;
              lif 1 2.5;
              fadd 0 1 2;
              fmul 2 2 3;
              cvt_fi 3 v0;
              halt;
            ];
        ])
  in
  check_r0 "(1.5+2.5)^2" 16L (run prog "main")

let test_float_memory () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 0x3000L;
              lif 0 3.25;
              stt 0 0 t0;
              ldt 1 0 t0;
              fadd 1 1 2;
              cvt_fi 2 v0;
              halt;
            ];
        ])
  in
  check_r0 "float store/load" 6L (run prog "main")

let test_zero_register () =
  let prog =
    Asm.(
      program
        [ proc "main" [ li zero 99L; mov zero v0; halt ] ])
  in
  check_r0 "r31 ignores writes" 0L (run prog "main")

let test_llsc_success () =
  (* Figure 1 of the paper: acquire a free lock with LL/SC. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li a0 0x100L;
              label "try_again";
              ll W32 t0 0 a0;
              bne t0 "got_or_fail";
              li t0 1L;
              sc W32 t0 0 a0;
              beq t0 "try_again";
              mb;
              ldl v0 0 a0;
              halt;
              label "got_or_fail";
              li v0 (-1L);
              halt;
            ];
        ])
  in
  check_r0 "lock acquired" 1L (run prog "main")

let test_llsc_fail_when_taken () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li a0 0x100L;
              li t0 1L;
              stl t0 0 a0;
              (* lock already taken: LL sees 1 *)
              ll W32 t1 0 a0;
              mov t1 v0;
              halt;
            ];
        ])
  in
  check_r0 "LL observes taken lock" 1L (run prog "main")

let test_unaligned_traps () =
  let prog =
    Asm.(program [ proc "main" [ li t0 0x1001L; ldq v0 0 t0; halt ] ])
  in
  Alcotest.check_raises "unaligned" (Interp.Trap "unaligned 8-byte access at 0x1001")
    (fun () -> ignore (run prog "main"))

let test_step_budget () =
  let prog = Asm.(program [ proc "main" [ label "spin"; br "spin" ] ]) in
  let rt = flat () in
  (try
     ignore (Interp.run ~max_steps:1000 prog rt ~entry:"main" ());
     Alcotest.fail "expected trap"
   with Interp.Trap m ->
     Alcotest.(check bool) "budget message" true
       (String.length m > 0 && String.sub m 0 4 = "step"))

let test_unknown_label_rejected () =
  (try
     ignore Asm.(program [ proc "main" [ br "nowhere" ] ]);
     Alcotest.fail "expected Unknown_label"
   with Program.Unknown_label (p, l) ->
     Alcotest.(check (pair string string)) "label" ("main", "nowhere") (p, l))

let test_duplicate_label_rejected () =
  (try
     ignore Asm.(program [ proc "main" [ label "x"; label "x"; halt ] ]);
     Alcotest.fail "expected Duplicate_label"
   with Program.Duplicate_label (p, l) ->
     Alcotest.(check (pair string string)) "label" ("main", "x") (p, l))

let test_program_size () =
  let prog =
    Asm.(program [ proc "main" [ li t0 1L; addi t0 1 t0; halt ] ])
  in
  (* li = 2 slots, addi = 1, halt = 1 *)
  Alcotest.(check int) "slots" 4 (Program.size_in_slots prog)

let test_charge_accounting () =
  (* The runtime must see exactly the cycles of the executed stream. *)
  let charged = ref 0 in
  let rt = Runtime.flat ~size:4096 ~charge:(fun n -> charged := !charged + n) () in
  let prog =
    Asm.(
      program
        [ proc "main" [ li t0 5L; addi t0 3 t0; mul t0 t0 v0; halt ] ])
  in
  let outcome = Interp.run prog rt ~entry:"main" () in
  Alcotest.(check int64) "result" 64L outcome.Interp.r0;
  (* li 1 + addi 1 + mul 4 + halt 1 *)
  Alcotest.(check int) "cycles" 7 !charged

let test_insn_roundtrip_labels () =
  let p =
    Program.assemble_procedure ~name:"p"
      Asm.[ label "top"; addi t0 1 t0; bne t0 "top"; ret ]
  in
  let insns = Program.to_insn_list p in
  let p2 = Program.assemble_procedure ~name:"p" insns in
  Alcotest.(check int) "same code length" (Array.length p.Program.code)
    (Array.length p2.Program.code);
  Alcotest.(check int) "label index preserved" (Program.label_index p "top")
    (Program.label_index p2 "top")

let qcheck_alu_add =
  QCheck.Test.make ~name:"interpreter add matches Int64.add" ~count:200
    QCheck.(pair int64 int64)
    (fun (x, y) ->
      let prog = Asm.(program [ proc "main" [ li t0 x; li t1 y; add t0 t1 v0; halt ] ]) in
      (run prog "main").Interp.r0 = Int64.add x y)

let qcheck_memory_roundtrip =
  QCheck.Test.make ~name:"64-bit memory roundtrip" ~count:200 QCheck.int64 (fun v ->
      let prog =
        Asm.(
          program
            [ proc "main" [ li t0 0x800L; li t1 v; stq t1 0 t0; ldq v0 0 t0; halt ] ])
      in
      (run prog "main").Interp.r0 = v)

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "branch loop" `Quick test_branches_loop;
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "32-bit sign extension" `Quick test_word_access;
    Alcotest.test_case "call/ret" `Quick test_calls;
    Alcotest.test_case "arguments" `Quick test_args;
    Alcotest.test_case "float ops" `Quick test_float_ops;
    Alcotest.test_case "float memory" `Quick test_float_memory;
    Alcotest.test_case "zero register" `Quick test_zero_register;
    Alcotest.test_case "LL/SC acquire" `Quick test_llsc_success;
    Alcotest.test_case "LL sees taken lock" `Quick test_llsc_fail_when_taken;
    Alcotest.test_case "unaligned traps" `Quick test_unaligned_traps;
    Alcotest.test_case "step budget traps" `Quick test_step_budget;
    Alcotest.test_case "unknown label rejected" `Quick test_unknown_label_rejected;
    Alcotest.test_case "duplicate label rejected" `Quick test_duplicate_label_rejected;
    Alcotest.test_case "program size in slots" `Quick test_program_size;
    Alcotest.test_case "cycle accounting" `Quick test_charge_accounting;
    Alcotest.test_case "label roundtrip" `Quick test_insn_roundtrip_labels;
    QCheck_alcotest.to_alcotest qcheck_alu_add;
    QCheck_alcotest.to_alcotest qcheck_memory_roundtrip;
  ]
