(* Application kernels: every workload must validate against its pure
   reference implementation when run through the full DSM, under both
   synchronisation flavours. *)

module Cfg = Shasta.Config
open Apps

let cluster ?(nodes = 2) ?(cpus = 2) ?(line = 64) () =
  Shasta.Cluster.create
    {
      Cfg.default with
      Cfg.net = { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node = cpus };
      protocol =
        {
          Protocol.Config.default with
          Protocol.Config.shared_size = 4 * 1024 * 1024;
          line_size = line;
        };
    }

let run ?(nprocs = 4) ?(sync = Harness.Mp) spec ~size =
  let cl = cluster () in
  let elapsed, ok = Harness.run_spec cl spec ~nprocs ~sync ~size () in
  Alcotest.(check bool)
    (Printf.sprintf "%s validates (n=%d, p=%d, %.2fms simulated)" spec.Harness.name size nprocs
       (1000.0 *. elapsed))
    true ok;
  elapsed

let test_app ?nprocs ?sync spec ~size () = ignore (run ?nprocs ?sync spec ~size)

let test_speedup_positive () =
  (* 4 processors must beat 1 on a compute-heavy kernel. *)
  let t1 = run ~nprocs:1 Barnes.spec ~size:160 in
  let t4 = run ~nprocs:4 Barnes.spec ~size:160 in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f > 1.5" (t1 /. t4))
    true
    (t1 /. t4 > 1.5)

let test_determinism () =
  let t_a = run ~nprocs:4 Ocean.spec ~size:18 in
  let t_b = run ~nprocs:4 Ocean.spec ~size:18 in
  Alcotest.(check (float 0.0)) "simulation is deterministic" t_a t_b

let test_lu_layouts_differ () =
  (* LU-Contig should communicate less than row-major LU.  The layouts
     diverge when a coherence line spans two neighbouring blocks, so run
     this comparison with 128-byte lines (the paper uses 64-256). *)
  let messages layout_spec =
    let cl = cluster ~line:128 () in
    let _, ok = Harness.run_spec cl layout_spec ~nprocs:4 ~sync:Harness.Mp ~size:32 () in
    Alcotest.(check bool) "valid" true ok;
    Mchan.Net.remote_messages cl.Shasta.Cluster.net
  in
  let plain = messages Lu.spec in
  let contig = messages Lu.spec_contig in
  Alcotest.(check bool)
    (Printf.sprintf "contiguous layout sends fewer messages (%d < %d)" contig plain)
    true (contig < plain)

let suite =
  [
    Alcotest.test_case "LU validates" `Quick (test_app Lu.spec ~size:32);
    Alcotest.test_case "LU-Contig validates" `Quick (test_app Lu.spec_contig ~size:32);
    Alcotest.test_case "Ocean validates" `Quick (test_app Ocean.spec ~size:18);
    Alcotest.test_case "Barnes validates" `Quick (test_app Barnes.spec ~size:64);
    Alcotest.test_case "FMM validates" `Quick (test_app Fmm.spec ~size:128);
    Alcotest.test_case "Water-Nsq validates" `Quick (test_app Water.spec_nsq ~size:48);
    Alcotest.test_case "Water-Sp validates" `Quick (test_app Water.spec_spatial ~size:48);
    Alcotest.test_case "Raytrace validates" `Quick (test_app Raytrace.spec ~size:64);
    Alcotest.test_case "Volrend validates" `Quick (test_app Volrend.spec ~size:64);
    Alcotest.test_case "LU validates with SM sync" `Quick
      (test_app ~sync:Harness.Sm Lu.spec ~size:32);
    Alcotest.test_case "Ocean validates with SM sync" `Quick
      (test_app ~sync:Harness.Sm Ocean.spec ~size:18);
    Alcotest.test_case "Raytrace validates with SM sync" `Quick
      (test_app ~sync:Harness.Sm Raytrace.spec ~size:48);
    Alcotest.test_case "Water-Nsq validates with SM sync" `Quick
      (test_app ~sync:Harness.Sm Water.spec_nsq ~size:40);
    Alcotest.test_case "single-processor runs validate" `Quick
      (test_app ~nprocs:1 Fmm.spec ~size:96);
    Alcotest.test_case "two-processor runs validate" `Quick
      (test_app ~nprocs:2 Volrend.spec ~size:48);
    Alcotest.test_case "speedup positive" `Quick test_speedup_positive;
    Alcotest.test_case "deterministic" `Quick test_determinism;
    Alcotest.test_case "LU layouts differ" `Quick test_lu_layouts_differ;
  ]
