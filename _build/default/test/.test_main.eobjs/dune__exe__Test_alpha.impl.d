test/test_alpha.ml: Alcotest Alpha Array Asm Int64 Interp Program QCheck QCheck_alcotest Runtime String
