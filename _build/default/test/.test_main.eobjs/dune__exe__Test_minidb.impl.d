test/test_minidb.ml: Alcotest List Minidb Printf
