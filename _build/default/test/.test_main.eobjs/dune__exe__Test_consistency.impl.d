test/test_consistency.ml: Alcotest Alpha Apps Int64 List Mchan Printf Protocol QCheck QCheck_alcotest Rewrite Shasta Sim
