test/test_shasta.ml: Alcotest Alpha Fun Int64 List Mchan Printf Protocol Rewrite Shasta Sim
