test/test_osim.ml: Alcotest Bytes Int64 List Mchan Osim Printexc Printf Protocol Shasta Sim
