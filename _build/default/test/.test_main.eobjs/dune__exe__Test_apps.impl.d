test/test_apps.ml: Alcotest Apps Barnes Fmm Harness Lu Mchan Ocean Printf Protocol Raytrace Shasta Volrend Water
