test/test_protocol.ml: Alcotest Alpha Int64 List Mchan Option Printexc Printf Protocol Sim
