test/test_rewrite.ml: Alcotest Alpha Array Asm Insn Int64 Interp List Program QCheck QCheck_alcotest Rewrite Runtime
