test/test_ir_kernel.ml: Alcotest Alpha Apps Array Int64 Mchan Printf Protocol Rewrite Shasta Sim
