test/test_sim.ml: Alcotest Array Engine Gen Heap List Proc QCheck QCheck_alcotest Rng Signal Sim Stats
