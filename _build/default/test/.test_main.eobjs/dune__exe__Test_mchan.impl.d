test/test_mchan.ml: Alcotest Engine Gen List Mchan Proc QCheck QCheck_alcotest Signal Sim
