(* A complete parallel kernel as an unmodified "multiprocessor binary":
   red-black integer stencil over a shared array, synchronised by a
   barrier implemented with LL/SC and MB instructions — no Shasta
   constructs anywhere.  The rewriter instruments it; four processors on
   two nodes execute it; the result must equal a pure reference.

   This exercises, end to end: dataflow-guided check insertion, the flag
   technique, batching, LL/SC transformation with poll-free success
   paths, loop-head polls, MB protocol calls, and the coherence
   protocol under real sharing. *)

module C = Shasta.Cluster
module R = Shasta.Runtime

(* barrier(a4 = [count; gen], a5 = parties): sense-reversing central
   barrier; uses t9-t12 only. *)
let barrier_proc =
  Alpha.Asm.(
    proc "barrier"
      [
        ldq t9 8 a4 (* my_gen *);
        label "retry";
        ll W64 t10 0 a4;
        addi t10 1 t10;
        mov t10 t12;
        sc W64 t10 0 a4;
        beq t10 "retry";
        sub t12 a5 t11;
        bne t11 "wait";
        (* Last arriver: reset the count, publish the next generation. *)
        stq zero 0 a4;
        mb;
        ldq t10 8 a4;
        addi t10 1 t10;
        stq t10 8 a4;
        mb;
        br "done";
        label "wait";
        label "spin";
        ldq t10 8 a4;
        sub t10 t9 t11;
        beq t11 "spin";
        label "done";
        ret;
      ])

(* main(a0 = array, a1 = lo, a2 = hi, a3 = iterations, a4 = barrier,
   a5 = parties): for each iteration and color, update cells of that
   parity in [lo, hi) as a[i] <- (a[i-1] + a[i+1]) / 2. *)
let stencil_program =
  Alpha.Asm.(
    program
      [
        barrier_proc;
        proc "main"
          [
            label "iter";
            li s3 0L (* color *);
            label "color_phase";
            mov a1 s0 (* i = lo *);
            label "row";
            (* skip cells of the wrong parity *)
            andi s0 1 t0;
            sub t0 s3 t0;
            bne t0 "next";
            (* t1 = a[i-1], t2 = a[i+1]; a[i] = (t1 + t2) / 2 *)
            slli s0 3 t3;
            add a0 t3 t3;
            ldq t1 (-8) t3;
            ldq t2 8 t3;
            add t1 t2 t1;
            srli t1 1 t1;
            stq t1 0 t3;
            label "next";
            addi s0 1 s0;
            sub s0 a2 t0;
            blt t0 "row";
            call "barrier";
            addi s3 1 s3;
            cmplti s3 2 t0;
            bne t0 "color_phase";
            subi a3 1 a3;
            bgt a3 "iter";
            halt;
          ];
      ])

let reference ~n ~iters init =
  let a = Array.init n init in
  for _ = 1 to iters do
    for color = 0 to 1 do
      for i = 1 to n - 2 do
        if i land 1 = color then a.(i) <- (a.(i - 1) + a.(i + 1)) / 2
      done
    done
  done;
  a

let init_cell i = (i * 37) mod 1000

let run_stencil ~nprocs ~n ~iters =
  let instrumented, stats = Rewrite.Instrument.instrument stencil_program in
  Alcotest.(check bool) "LL/SC pair recognised in the barrier" true
    (stats.Rewrite.Instrument.llsc_pairs >= 1);
  let cl =
    C.create
      {
        Shasta.Config.default with
        Shasta.Config.net =
          { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
        protocol = { Protocol.Config.default with Protocol.Config.shared_size = 1024 * 1024 };
      }
  in
  let arr = C.alloc cl (8 * n) in
  let bar = C.alloc cl 64 in
  let _init =
    C.spawn cl ~cpu:0 "init" (fun h ->
        for i = 0 to n - 1 do
          R.store_int h (arr + (8 * i)) (init_cell i)
        done;
        R.mb h)
  in
  let per = (n - 2 + nprocs - 1) / nprocs in
  for p = 0 to nprocs - 1 do
    let lo = 1 + (p * per) in
    let hi = min (n - 1) (lo + per) in
    ignore
      (C.spawn cl ~cpu:p (Printf.sprintf "cpu%d" p) (fun h ->
           Sim.Proc.sleep 2e-4 (* let init finish *);
           ignore
             (R.run_program h instrumented ~entry:"main"
                ~args:
                  [ Int64.of_int arr; Int64.of_int lo; Int64.of_int hi; Int64.of_int iters;
                    Int64.of_int bar; Int64.of_int nprocs ]
                ())))
  done;
  ignore (C.run cl);
  let r = reference ~n ~iters init_cell in
  let ok = ref true in
  for i = 0 to n - 1 do
    match Apps.Harness.read_valid cl (arr + (8 * i)) with
    | Some v when Int64.to_int v = r.(i) -> ()
    | Some v ->
        ok := false;
        if i < 3 then
          Printf.printf "cell %d: got %Ld expected %d\n" i v r.(i)
    | None -> ok := false
  done;
  !ok

let test_ir_stencil_4p () =
  Alcotest.(check bool) "4-processor IR stencil matches reference" true
    (run_stencil ~nprocs:4 ~n:96 ~iters:4)

let test_ir_stencil_2p () =
  Alcotest.(check bool) "2-processor IR stencil matches reference" true
    (run_stencil ~nprocs:2 ~n:64 ~iters:3)

let test_ir_stencil_1p () =
  Alcotest.(check bool) "uniprocessor IR stencil matches reference" true
    (run_stencil ~nprocs:1 ~n:48 ~iters:2)

let suite =
  [
    Alcotest.test_case "IR stencil 1 proc" `Quick test_ir_stencil_1p;
    Alcotest.test_case "IR stencil 2 procs" `Quick test_ir_stencil_2p;
    Alcotest.test_case "IR stencil 4 procs" `Quick test_ir_stencil_4p;
  ]
