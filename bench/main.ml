(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- one experiment

   Experiments: table1 table2 table3 figure3 figure4 table4 figure5 mb
   rewrite_time ablation micro faults checker granularity
   granularity_smoke rce serve serve_smoke scale scale_smoke speed
   speed_smoke *)

let experiments =
  [
    ("table1", Experiments.table1);
    ("table2", Experiments.table2);
    ("table3", Experiments.table3);
    ("figure3", Experiments.figure3);
    ("figure4", Experiments.figure4);
    ("table4", Experiments.table4);
    ("figure5", Experiments.figure5);
    ("mb", Experiments.mb_bench);
    ("rewrite_time", Experiments.rewrite_time);
    ("ablation", Experiments.ablation);
    ("micro", Micro.run_micro);
    ("faults", Faults.run_faults);
    ("checker", Checker.run_checker);
    ("granularity", Granularity.run_granularity);
    ("granularity_smoke", Granularity.run_granularity_smoke);
    ("rce", Rce.run_rce);
    ("serve", Serve.run_serve);
    ("serve_smoke", Serve.run_serve_smoke);
    ("scale", Scale.run_scale);
    ("scale_smoke", Scale.run_scale_smoke);
    ("speed", Speed.run_speed);
    ("speed_smoke", Speed.run_speed_smoke);
    ("lint", Lint.run_lint);
    ("lint_smoke", Lint.run_lint_smoke);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> List.filter (fun a -> a <> "--") rest
    | [] -> []
  in
  let to_run =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s\n" n
                  (String.concat " " (List.map fst experiments));
                exit 1)
          names
  in
  Printf.printf "Shasta reproduction benchmarks (simulated 4x4-processor Memory Channel cluster)\n";
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s: %.1f s host time]\n" name (Unix.gettimeofday () -. t0))
    to_run
