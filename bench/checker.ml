(* Cost of the coherence checking layers: host-time overhead of the
   per-message invariant checker on a SPLASH run (the simulated time
   must not move at all — the checker is pure observation), and the
   throughput of the schedule explorer over the litmus suite. *)

let cluster ~check_invariants =
  Shasta.Cluster.create
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
      protocol =
        {
          Protocol.Config.default with
          Protocol.Config.shared_size = 4 * 1024 * 1024;
          check_invariants;
        };
    }

let measure ~check_invariants spec ~size =
  let cl = cluster ~check_invariants in
  let t0 = Unix.gettimeofday () in
  let elapsed, ok =
    Apps.Harness.run_spec cl spec ~nprocs:4 ~sync:Apps.Harness.Mp ~size ()
  in
  let host = Unix.gettimeofday () -. t0 in
  if not ok then failwith (spec.Apps.Harness.name ^ " failed to validate");
  (elapsed, host, Protocol.Engine.invariant_checks (Shasta.Cluster.protocol_engine cl))

let run_checker () =
  Printf.printf "\n== Invariant checker: host-time cost (4 procs, 2 nodes) ==\n";
  Printf.printf "%-12s %14s %14s %12s %10s %9s\n" "app" "sim time off" "sim time on"
    "host off" "host on" "checks";
  List.iter
    (fun (spec, size) ->
      let sim_off, host_off, _ = measure ~check_invariants:false spec ~size in
      let sim_on, host_on, checks = measure ~check_invariants:true spec ~size in
      if sim_off <> sim_on then
        failwith (spec.Apps.Harness.name ^ ": checker perturbed the simulation");
      Printf.printf "%-12s %12.6fs %12.6fs %10.2fms %8.2fms %9d\n"
        spec.Apps.Harness.name sim_off sim_on (host_off *. 1e3) (host_on *. 1e3)
        checks)
    [ (Apps.Lu.spec, 32); (Apps.Ocean.spec, 26) ];
  Printf.printf "\n== Schedule explorer: litmus throughput (fully checked runs) ==\n";
  List.iter
    (fun (sc : Check.Litmus.scenario) ->
      let n = 32 in
      let t0 = Unix.gettimeofday () in
      let fails = Check.Litmus.sweep ~seeds:(n - 1) [ sc ] in
      let host = Unix.gettimeofday () -. t0 in
      Printf.printf "%-18s %4d runs in %6.2fms (%6.0f runs/s), %d failures\n"
        sc.Check.Litmus.name n (host *. 1e3)
        (float_of_int n /. host)
        (List.length fails))
    Check.Litmus.all
