(* Slowdown versus injected message-drop rate: what the reliable
   transport costs the directory protocol as the simulated Memory
   Channel degrades.  Runs LU and Ocean on a 2x2 cluster at increasing
   drop rates and reports simulated time, slowdown over the fault-free
   channel, and the transport's repair work. *)

module Plan = Fault.Plan

let cluster plan =
  Shasta.Cluster.create
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
      fault_plan = plan;
      protocol =
        { Protocol.Config.default with Protocol.Config.shared_size = 4 * 1024 * 1024 };
    }

let measure spec ~size plan =
  let cl = cluster plan in
  let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs:4 ~sync:Apps.Harness.Mp ~size () in
  if not ok then failwith (spec.Apps.Harness.name ^ " failed to validate");
  let tot =
    match Shasta.Cluster.reliable cl with
    | None ->
        {
          Mchan.Reliable.data_sent = Mchan.Net.remote_messages cl.Shasta.Cluster.net;
          retransmits = 0;
          acks_sent = 0;
          inj_dropped = 0;
          inj_duplicated = 0;
          inj_corrupted = 0;
          inj_delayed = 0;
          dup_suppressed = 0;
          outage_dropped = 0;
        }
    | Some r -> Mchan.Reliable.totals r
  in
  (elapsed, tot)

let drop_rates = [ 0.01; 0.02; 0.05; 0.10; 0.20 ]

let run_faults () =
  Printf.printf "\n== Reliable transport: slowdown vs injected drop rate (4 procs, 2 nodes) ==\n";
  List.iter
    (fun (spec, size) ->
      let base, base_tot = measure spec ~size Plan.empty in
      Printf.printf "%s (size %d):\n" spec.Apps.Harness.name size;
      Printf.printf
        "  drop  0.0%%: %8.3f ms   slowdown 1.00x   msgs %6d   retx      0   acks      0\n"
        (1000.0 *. base) base_tot.Mchan.Reliable.data_sent;
      List.iter
        (fun drop ->
          let plan =
            Plan.create ~seed:11
              ~default:{ Plan.no_faults with Plan.drop }
              ()
          in
          let t, tot = measure spec ~size plan in
          Printf.printf
            "  drop %4.1f%%: %8.3f ms   slowdown %.2fx   msgs %6d   retx %6d   acks %6d\n"
            (100.0 *. drop) (1000.0 *. t) (t /. base) tot.Mchan.Reliable.data_sent
            tot.Mchan.Reliable.retransmits tot.Mchan.Reliable.acks_sent)
        drop_rates)
    [ (Apps.Lu.spec, 32); (Apps.Ocean.spec, 18) ]
