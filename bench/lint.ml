(* Static affinity hints vs dynamic per-region counters (DESIGN §17).

   The affinity lint claims it can predict, before any run, which
   regions false-share and which data is migratory.  This bench holds
   it to that:

   - fs-twin (the granularity micro's IR twin): the static report under
     a coarse 512B hot region says "false sharing, use 64B"; the kernel
     then runs under both layouts on a 4-node cluster, and the hot
     region's invalidation counter must collapse under the suggested
     blocks — the dynamic verdict the static one is checked against.

   - mdb-sync (the migratory app): the static report says "Migratory
     homing"; the kernel then runs under Static and Migratory homing,
     and the migratory run must actually engage (home transfers > 0),
     confirming the record really is handed around the cluster.

   Both comparisons, with the agreement verdicts, land in
   BENCH_lint.json via the shared envelope. *)

module I = Apps.Ircorpus
module L = Protocol.Layout

let instrument prog = fst (Rewrite.Instrument.instrument prog)

(* Two-region layouts covering the runner's 1 MiB shared segment: the
   hot region under test plus a coarse bulk region for the rest,
   distinct block sizes so the runner's granularity hints keep hot and
   bulk allocations (and so their counters) apart. *)
let shared = 1 lsl 20

let layout ~hot_block =
  [
    { L.rs_name = "hot"; rs_size = 64 * 1024; rs_block = hot_block };
    { L.rs_name = "bulk"; rs_size = shared - (64 * 1024); rs_block = 1024 };
  ]

let region_stat (r : I.spmd_result) name =
  try List.assoc name r.I.s_regions
  with Not_found -> failwith ("lint bench: no region " ^ name)

let static_hints ~nprocs ~hot_block (e : I.entry) =
  let r = Rewrite.Races.analyze ~nprocs ~name:e.I.e_name e.I.e_program in
  Rewrite.Affinity.report
    ~bindings:
      [
        { Rewrite.Affinity.bd_arg = 0; bd_region = "hot"; bd_block = hot_block; bd_size = 64 * 1024 };
        { Rewrite.Affinity.bd_arg = 1; bd_region = "bulk"; bd_block = 1024; bd_size = 64 * 1024 };
      ]
    r

let hot_hint hints = List.find (fun h -> h.Rewrite.Affinity.h_region = "hot") hints

let run_lint_with ~iters ~out_file () =
  let nodes = 4 and cpus_per_node = 2 in
  let nprocs = nodes * cpus_per_node in

  (* --- fs-twin: false sharing --- *)
  let fs = I.find_sync "fs-twin" in
  let hint = hot_hint (static_hints ~nprocs ~hot_block:512 fs) in
  let static_fs = hint.Rewrite.Affinity.h_kind = Rewrite.Affinity.False_sharing in
  let suggested = hint.Rewrite.Affinity.h_suggest in
  let prog = instrument fs.I.e_program in
  let coarse = I.run_spmd ~nodes ~cpus_per_node ~nprocs ~iters ~regions:(layout ~hot_block:512) prog fs in
  let fine =
    I.run_spmd ~nodes ~cpus_per_node ~nprocs ~iters ~regions:(layout ~hot_block:suggested) prog fs
  in
  let inv_coarse = (region_stat coarse "hot").Protocol.Engine.r_invals in
  let inv_fine = (region_stat fine "hot").Protocol.Engine.r_invals in
  let st_coarse = (region_stat coarse "hot").Protocol.Engine.r_store_misses in
  let st_fine = (region_stat fine "hot").Protocol.Engine.r_store_misses in
  (* The dynamic verdict: under coarse blocks every writer's private
     slot shares an ownership unit with its neighbours, so exclusive
     ownership ping-pongs and the hot region's store misses explode;
     the suggested blocks must kill most of them. *)
  let dynamic_fs = st_coarse > 2 * st_fine in
  let fs_agree = static_fs && dynamic_fs in
  Support.print_header "Affinity lint: fs-twin false-sharing cross-check";
  Support.print_table
    ~headers:[ "hot block"; "time ms"; "hot invals"; "hot rd-miss"; "hot st-miss" ]
    (List.map
       (fun (label, (r : I.spmd_result)) ->
         let st = region_stat r "hot" in
         [
           label;
           Printf.sprintf "%.2f" (1000.0 *. r.I.s_elapsed);
           string_of_int st.Protocol.Engine.r_invals;
           string_of_int st.Protocol.Engine.r_read_misses;
           string_of_int st.Protocol.Engine.r_store_misses;
         ])
       [ ("512", coarse); (string_of_int suggested, fine) ]);
  Printf.printf "static: %s (suggest %dB)   dynamic: %s (%d -> %d store misses)   %s\n"
    (Rewrite.Affinity.kind_name hint.Rewrite.Affinity.h_kind)
    suggested
    (if dynamic_fs then "false sharing confirmed" else "no false sharing seen")
    st_coarse st_fine
    (if fs_agree then "AGREE" else "DISAGREE");

  (* --- mdb-sync: migratory homing --- *)
  let mdb = I.find_sync "mdb-sync" in
  let mhint = hot_hint (static_hints ~nprocs ~hot_block:64 mdb) in
  let static_mig = mhint.Rewrite.Affinity.h_homing = Some Protocol.Config.Migratory in
  let mprog = instrument mdb.I.e_program in
  (* Threshold 1 = "home follows the current exclusive owner".  The
     lock hands the record to a different domain every critical
     section, so no domain ever issues two consecutive exclusive
     requests and any streak threshold above 1 is structurally unable
     to fire on genuinely migratory data. *)
  let run_homing homing =
    I.run_spmd ~nodes ~cpus_per_node ~nprocs ~iters ~regions:(layout ~hot_block:64) ~homing
      ~migration_threshold:1 mprog mdb
  in
  let hstatic = run_homing Protocol.Config.Static in
  let hmig = run_homing Protocol.Config.Migratory in
  let dynamic_mig = hmig.I.s_migrations > 0 in
  let mdb_agree = static_mig && dynamic_mig in
  Support.print_header "Affinity lint: mdb-sync migratory cross-check";
  Support.print_table
    ~headers:[ "homing"; "time ms"; "migrations"; "hot invals" ]
    (List.map
       (fun (label, (r : I.spmd_result)) ->
         [
           label;
           Printf.sprintf "%.2f" (1000.0 *. r.I.s_elapsed);
           string_of_int r.I.s_migrations;
           string_of_int (region_stat r "hot").Protocol.Engine.r_invals;
         ])
       [ ("static", hstatic); ("migratory", hmig) ]);
  Printf.printf "static: %s   dynamic: %d migrations, %.2f -> %.2f ms   %s\n"
    (match mhint.Rewrite.Affinity.h_homing with
    | Some h -> "homing=" ^ Rewrite.Affinity.homing_name h
    | None -> "no homing hint")
    hmig.I.s_migrations (1000.0 *. hstatic.I.s_elapsed) (1000.0 *. hmig.I.s_elapsed)
    (if mdb_agree then "AGREE" else "DISAGREE");

  Support.emit_json ~file:out_file ~bench:"lint"
    ~meta:[ ("nodes", Load.Json.Int nodes); ("nprocs", Load.Json.Int nprocs); ("iters", Load.Json.Int iters) ]
    [
      ( "fs_twin",
        Load.Json.Obj
          [
            ("static_kind", Load.Json.Str (Rewrite.Affinity.kind_name hint.Rewrite.Affinity.h_kind));
            ("static_suggest", Load.Json.Int suggested);
            ("store_misses_coarse", Load.Json.Int st_coarse);
            ("store_misses_fine", Load.Json.Int st_fine);
            ("invals_coarse", Load.Json.Int inv_coarse);
            ("invals_fine", Load.Json.Int inv_fine);
            ("elapsed_coarse_ms", Load.Json.Float (1000.0 *. coarse.I.s_elapsed));
            ("elapsed_fine_ms", Load.Json.Float (1000.0 *. fine.I.s_elapsed));
            ("agree", Load.Json.Bool fs_agree);
          ] );
      ( "mdb_sync",
        Load.Json.Obj
          [
            ( "static_homing",
              match mhint.Rewrite.Affinity.h_homing with
              | None -> Load.Json.Null
              | Some h -> Load.Json.Str (Rewrite.Affinity.homing_name h) );
            ("migrations_static", Load.Json.Int hstatic.I.s_migrations);
            ("migrations_migratory", Load.Json.Int hmig.I.s_migrations);
            ("elapsed_static_ms", Load.Json.Float (1000.0 *. hstatic.I.s_elapsed));
            ("elapsed_migratory_ms", Load.Json.Float (1000.0 *. hmig.I.s_elapsed));
            ("agree", Load.Json.Bool mdb_agree);
          ] );
    ];
  if not (fs_agree && mdb_agree) then failwith "lint bench: static and dynamic verdicts disagree"

let run_lint () = run_lint_with ~iters:200 ~out_file:"BENCH_lint.json" ()
let run_lint_smoke () = run_lint_with ~iters:25 ~out_file:"BENCH_lint_smoke.json" ()
