(* Open-loop serving saturation sweep (lib/load over minidb).

   [run_serve] is the full calibrated sweep behind BENCH_serve.json:
   offered load from well under capacity to ~4.5x capacity, recording
   goodput and p50/p99/p999 per point.  The curve must show the
   open-loop signature: goodput plateaus at the service capacity while
   offered load (and therefore p99) keeps growing.

   [run_serve_smoke] is the short fixed-seed variant CI runs on every
   push: two points, with a hard floor on goodput at the low-load point
   so a serving regression fails the build instead of shifting a curve
   nobody looks at. *)

module S = Load.Serve
module J = Load.Json

let sweep_rates = [ 4_000.0; 8_000.0; 16_000.0; 32_000.0; 64_000.0; 96_000.0 ]
let sweep_duration = 0.06

(* The low-load goodput floor for CI (req/s, in-window completions at
   4000 req/s offered over 0.02 s).  Measured 3936 req/s at the current
   seed; the floor leaves ~8% headroom for benign scheduling shifts
   while still catching anything that costs real capacity. *)
let smoke_floor = 3_600.0

let check_points points =
  List.iter
    (fun (p : S.sweep_point) ->
      if not (p.S.sp_outcome.S.ok && p.S.sp_outcome.S.drained) then
        failwith
          (Printf.sprintf "serve: point at %.0f req/s failed validation or drain" p.S.sp_rate))
    points

let run_serve () =
  Support.print_header "serve: open-loop saturation sweep (minidb, 2 nodes x 4 cpus, 6 servers)";
  let cfg = { S.default_config with S.duration = sweep_duration } in
  let points = S.sweep ~cfg sweep_rates in
  Format.printf "%a" S.pp_sweep points;
  check_points points;
  Support.emit_json ~file:"BENCH_serve.json" ~bench:"serve" (S.sweep_fields ~cfg points)

let run_serve_smoke () =
  Support.print_header "serve_smoke: short fixed-seed serving check";
  let cfg = { S.default_config with S.duration = 0.02 } in
  let points = S.sweep ~cfg [ 4_000.0; 48_000.0 ] in
  Format.printf "%a" S.pp_sweep points;
  check_points points;
  let low = List.hd points in
  let g = Load.Recorder.goodput low.S.sp_outcome.S.recorder in
  Printf.printf "low-load goodput %.0f req/s (floor %.0f)\n" g smoke_floor;
  Support.emit_json ~file:"BENCH_serve_smoke.json" ~bench:"serve_smoke"
    (("goodput_floor", J.Float smoke_floor) :: S.sweep_fields ~cfg points);
  if g < smoke_floor then
    failwith
      (Printf.sprintf "serve_smoke: low-load goodput %.0f req/s below floor %.0f" g smoke_floor)
