(* Figure 3 extended past the paper's 16 processors: speedups at 64+
   processors on the sharded directory, throughput (simulated events per
   host second) per point, a migrating-data microbenchmark comparing
   static first-home placement against migratory home reassignment, and
   a 64-node invariant-checked smoke run (with and without faults).

   Results land in BENCH_scale.json so the scaling trajectory is
   tracked in-tree. *)

module C = Shasta.Cluster
module R = Shasta.Runtime
module J = Load.Json

(* Node-major placement as in the paper: up to 4 processors share one
   SMP node, beyond that the node count grows. *)
let shape nprocs = if nprocs <= 4 then (1, nprocs) else ((nprocs + 3) / 4, 4)

type point = {
  p_app : string;
  p_procs : int;
  p_nodes : int;
  p_elapsed : float;  (** simulated seconds *)
  p_speedup : float;
  p_events : int;
  p_wall : float;  (** host seconds *)
  p_ok : bool;
}

let run_point spec ~seq nprocs =
  let nodes, cpus = shape nprocs in
  let cl = Support.cluster ~nodes ~cpus () in
  let t0 = Unix.gettimeofday () in
  let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs ~sync:Apps.Harness.Mp () in
  let wall = Unix.gettimeofday () -. t0 in
  {
    p_app = spec.Apps.Harness.name;
    p_procs = nprocs;
    p_nodes = nodes;
    p_elapsed = elapsed;
    p_speedup = seq /. elapsed;
    p_events = Sim.Engine.events_fired (C.sim cl);
    p_wall = wall;
    p_ok = ok;
  }

let point_json p =
  J.Obj
    [
      ("app", J.Str p.p_app);
      ("procs", J.Int p.p_procs);
      ("nodes", J.Int p.p_nodes);
      ("elapsed_ms", J.Float (1000.0 *. p.p_elapsed));
      ("speedup", J.Float p.p_speedup);
      ("events", J.Int p.p_events);
      ("events_per_sec", J.Float (float_of_int p.p_events /. Float.max 1e-9 p.p_wall));
      ("wall_s", J.Float p.p_wall);
      ("validated", J.Bool p.p_ok);
    ]

(* --- migrating-data microbenchmark ---------------------------------- *)

(* Parallel producer/consumer pairs over disjoint slices of a shared
   array, with the roles inside each pair swapping every lap.  The
   static homes are spread round-robin over all the nodes, so nearly
   every consumer read is a three-hop request -> home -> owner chain and
   every producer upgrade runs through a remote third-party home.  The
   migratory policy (threshold 1) moves each block's home to its current
   producer on the lap's first write: for the rest of the lap the
   producer's upgrades are home-local and the consumer's reads two-hop —
   and when the roles swap, the homes follow.  Pairs keep the migrated
   homes spread across the cluster instead of piling them on one node. *)
let migratory_micro ~pairs ~blocks_per_pair ~laps ~inner ~homing =
  let nodes = 2 * pairs in
  let cl =
    Support.cluster ~nodes ~cpus:1 ~homing ~migration_threshold:1 ~invariants:true ()
  in
  let line = 64 in
  let blocks = pairs * blocks_per_pair in
  let arr = C.alloc cl (blocks * line) in
  let flags = C.alloc cl (pairs * laps * inner * 2 * line) in
  let flag k l i producer =
    flags + ((((((k * laps) + l) * inner) + i) * 2 + (if producer then 0 else 1)) * line)
  in
  let await h addr =
    while R.load_int h addr <> 1 do
      R.work_cycles h 30;
      R.flush h;
      Sim.Proc.work 1e-7
    done
  in
  for p = 0 to (2 * pairs) - 1 do
    let k = p / 2 in
    let lo = k * blocks_per_pair and hi = ((k + 1) * blocks_per_pair) - 1 in
    ignore
      (C.spawn cl ~cpu:p (Printf.sprintf "pc%d" p) (fun h ->
           for l = 0 to laps - 1 do
             let producing = l mod 2 = p mod 2 in
             for i = 0 to inner - 1 do
               if producing then begin
                 for b = lo to hi do
                   R.store_int h (arr + (b * line)) ((((l * inner) + i) * blocks) + b)
                 done;
                 R.mb h;
                 R.store_int h (flag k l i true) 1;
                 await h (flag k l i false)
               end
               else begin
                 await h (flag k l i true);
                 R.mb h;
                 let sum = ref 0 in
                 for b = lo to hi do
                   sum := !sum + R.load_int h (arr + (b * line))
                 done;
                 ignore !sum;
                 R.mb h;
                 R.store_int h (flag k l i false) 1
               end
             done
           done))
  done;
  let t0 = Unix.gettimeofday () in
  let elapsed = C.run cl in
  let wall = Unix.gettimeofday () -. t0 in
  let quiet = Protocol.Engine.check_quiescent (C.protocol_engine cl) in
  let migrations, bounces, in_flight = C.migration_stats cl in
  (elapsed, wall, migrations, bounces, in_flight, quiet)

(* --- 64-node invariant smoke ---------------------------------------- *)

let smoke_apps = [ "LU"; "Water-Nsq" ]

let smoke_run ~plan_spec spec =
  let plan = if plan_spec = "" then Fault.Plan.empty else Fault.Plan.of_spec plan_spec in
  let cl = Support.cluster ~nodes:64 ~cpus:1 ~invariants:true ~plan () in
  let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs:64 ~sync:Apps.Harness.Mp () in
  let quiet = Protocol.Engine.check_quiescent (C.protocol_engine cl) in
  (elapsed, ok, quiet)

(* --- drivers -------------------------------------------------------- *)

let scale_apps = [ "LU"; "Water-Nsq" ]

let run_scale_at ~procs_list ~laps ~file () =
  Support.print_header
    (Printf.sprintf "Figure 3 extended: speedups to %d processors (sharded directory)"
       (List.fold_left max 1 procs_list));
  let specs = List.map Apps.Registry.find scale_apps in
  let seqs =
    List.map
      (fun spec ->
        let cl = Support.cluster ~nodes:1 ~cpus:1 ~checks:false () in
        (spec, fst (Apps.Harness.run_spec cl spec ~nprocs:1 ~sync:Apps.Harness.Mp ())))
      specs
  in
  let points =
    List.concat_map
      (fun (spec, seq) -> List.map (run_point spec ~seq) procs_list)
      seqs
  in
  Support.print_table
    ~headers:[ "application"; "procs"; "nodes"; "sim ms"; "speedup"; "Mev/s"; "ok" ]
    (List.map
       (fun p ->
         [
           p.p_app;
           string_of_int p.p_procs;
           string_of_int p.p_nodes;
           Support.ms p.p_elapsed;
           Printf.sprintf "%.2f" p.p_speedup;
           Printf.sprintf "%.2f" (float_of_int p.p_events /. Float.max 1e-9 p.p_wall /. 1e6);
           (if p.p_ok then "yes" else "NO");
         ])
       points);
  let failures = ref [] in
  let note fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter (fun p -> if not p.p_ok then note "%s@%d failed validation" p.p_app p.p_procs) points;

  Support.print_header "Migrating-data microbenchmark: static vs migratory homes (16 nodes)";
  let micro ~homing =
    migratory_micro ~pairs:8 ~blocks_per_pair:8 ~laps ~inner:8 ~homing
  in
  let s_el, s_wall, s_mig, s_bnc, s_fly, s_quiet = micro ~homing:Protocol.Config.Static in
  let m_el, m_wall, m_mig, m_bnc, m_fly, m_quiet = micro ~homing:Protocol.Config.Migratory in
  ignore (s_wall, m_wall);
  Support.print_table
    ~headers:[ "homes"; "sim ms"; "migrations"; "bounces"; "in flight"; "violations" ]
    [
      [ "static"; Support.ms s_el; string_of_int s_mig; string_of_int s_bnc;
        string_of_int s_fly; string_of_int (List.length s_quiet) ];
      [ "migratory"; Support.ms m_el; string_of_int m_mig; string_of_int m_bnc;
        string_of_int m_fly; string_of_int (List.length m_quiet) ];
    ];
  Printf.printf "migratory vs static: %+.1f%%\n" (100.0 *. ((m_el /. s_el) -. 1.0));
  List.iter (fun v -> note "micro static: %s" v) s_quiet;
  List.iter (fun v -> note "micro migratory: %s" v) m_quiet;
  if s_mig <> 0 then note "static homing performed %d migrations" s_mig;
  if m_mig = 0 then note "migratory homing performed no migrations";
  if m_fly <> 0 then note "micro: %d transfers still in flight" m_fly;
  if m_el >= s_el then note "migratory (%.3f ms) did not beat static (%.3f ms)"
      (1000.0 *. m_el) (1000.0 *. s_el);

  Support.print_header "64-node smoke: invariants on, with and without faults";
  let fault_spec = "seed=7,drop=0.02,delay=0.05:2e-5" in
  let smoke_rows =
    List.concat_map
      (fun name ->
        let spec = Apps.Registry.find name in
        List.map
          (fun plan_spec ->
            let elapsed, ok, quiet = smoke_run ~plan_spec spec in
            if not ok then note "smoke %s (faults=%S) failed validation" name plan_spec;
            List.iter (fun v -> note "smoke %s: %s" name v) quiet;
            [
              name;
              (if plan_spec = "" then "none" else plan_spec);
              Support.ms elapsed;
              string_of_int (List.length quiet);
              (if ok then "yes" else "NO");
            ])
          [ ""; fault_spec ])
      smoke_apps
  in
  Support.print_table
    ~headers:[ "application"; "faults"; "sim ms"; "violations"; "ok" ]
    smoke_rows;

  Support.emit_json ~file ~bench:"scale"
    ~meta:[ ("procs", J.List (List.map (fun p -> J.Int p) procs_list)) ]
    [
      ("points", J.List (List.map point_json points));
      ( "micro",
        J.Obj
          [
            ("static_ms", J.Float (1000.0 *. s_el));
            ("migratory_ms", J.Float (1000.0 *. m_el));
            ("migrations", J.Int m_mig);
            ("bounces", J.Int m_bnc);
          ] );
      ("failures", J.List (List.map (fun s -> J.Str s) (List.rev !failures)));
    ];
  if !failures <> [] then begin
    List.iter (fun s -> Printf.printf "FAIL %s\n" s) (List.rev !failures);
    exit 1
  end

let run_scale () =
  run_scale_at ~procs_list:[ 1; 4; 16; 64; 128 ] ~laps:4 ~file:"BENCH_scale.json" ()

(* CI variant: the 64-processor ceiling and fewer token laps. *)
let run_scale_smoke () =
  run_scale_at ~procs_list:[ 4; 64 ] ~laps:2 ~file:"BENCH_scale_smoke.json" ()
