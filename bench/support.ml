(* Shared plumbing for the benchmark harness: cluster builders,
   latency measurement inside the simulation, and table printing. *)

module C = Shasta.Cluster
module R = Shasta.Runtime

let cluster ?(nodes = 4) ?(cpus = 4) ?(variant = Protocol.Config.Smp)
    ?(model = Protocol.Config.Rc) ?(checks = true) ?(direct_downgrade = true)
    ?(shared = 8 * 1024 * 1024) ?(homing = Protocol.Config.Static)
    ?(migration_threshold = Protocol.Config.default.Protocol.Config.migration_threshold)
    ?(invariants = false) ?coalescing ?(plan = Fault.Plan.empty) ?(parallel = 1) () =
  C.create
    {
      Shasta.Config.default with
      Shasta.Config.net =
        {
          Mchan.Net.default_config with
          Mchan.Net.nodes;
          cpus_per_node = cpus;
          coalescing;
        };
      checks_enabled = checks;
      fault_plan = plan;
      parallel;
      protocol =
        {
          Protocol.Config.default with
          Protocol.Config.variant;
          model;
          direct_downgrade;
          shared_size = shared;
          homing;
          migration_threshold;
          check_invariants = invariants;
        };
    }

(* --- table printing --- *)

let rule width = String.make width '-'

let print_header title =
  Printf.printf "\n%s\n%s\n" title (rule (String.length title))

(** [print_table ~headers rows] — fixed-width aligned text table. *)
let print_table ~headers rows =
  let cols = List.length headers in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i = 0 then Printf.printf "%-*s" widths.(i) cell
        else Printf.printf "  %*s" widths.(i) cell)
      row;
    print_newline ()
  in
  print_row headers;
  Printf.printf "%s\n" (rule (Array.fold_left ( + ) (2 * (cols - 1)) widths));
  List.iter print_row rows

(* --- machine-readable output --- *)

(** [emit_json ~file ~bench ?meta fields] — write a benchmark result as
    a deterministic JSON document, tagged with the bench name so
    trajectory files are self-describing.  The envelope itself lives in
    {!Load.Json.emit} so non-bench producers (the lint CLI) share it. *)
let emit_json ~file ~bench ?meta fields = Load.Json.emit ~file ~bench ?meta fields

let us t = Printf.sprintf "%.2f" (Sim.Units.to_us t)
let ms t = Printf.sprintf "%.2f" (1000.0 *. t)
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

(** Simulated-time measurement of a repeated fiber operation: runs
    [iters] rounds of [f] in process [cpu] after [setup], returning the
    mean simulated duration of [f].  Extra participant processes can be
    provided to serve or contend. *)
let measure_on ?(others = []) ~cl ~cpu ?(iters = 200) ~setup f =
  let total = ref 0.0 in
  let _ =
    C.spawn cl ~cpu "measured" (fun h ->
        setup h;
        (* Warm one round, then measure. *)
        f h;
        let t0 = C.now cl in
        for _ = 1 to iters do
          f h
        done;
        R.flush h;
        total := C.now cl -. t0)
  in
  List.iter (fun (cpu, body) -> ignore (C.spawn cl ~cpu "other" body)) others;
  ignore (C.run cl);
  !total /. float_of_int iters
