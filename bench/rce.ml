(* Redundant-check elimination: instrument every IR-corpus kernel with
   and without [redundant_elim], run both deterministically, and report
   the static and dynamic checking-overhead deltas.  The two runs must
   be bit-identical over [r0] and the final shared image — the optimizer
   may only remove work, never change results. *)

let run_rce () =
  Support.print_header "redundant-check elimination (IR corpus, 1 processor)";
  let base_opts = Rewrite.Instrument.default_options in
  let opt_opts = { base_opts with Rewrite.Instrument.redundant_elim = true } in
  let rows =
    List.map
      (fun (e : Apps.Ircorpus.entry) ->
        let prog_b, st_b = Rewrite.Instrument.instrument ~options:base_opts e.Apps.Ircorpus.e_program in
        let prog_o, st_o = Rewrite.Instrument.instrument ~options:opt_opts e.Apps.Ircorpus.e_program in
        let rb = Apps.Ircorpus.run prog_b e in
        let ro = Apps.Ircorpus.run prog_o e in
        let identical =
          rb.Apps.Ircorpus.r0 = ro.Apps.Ircorpus.r0 && rb.Apps.Ircorpus.image = ro.Apps.Ircorpus.image
        in
        if not identical then
          failwith (e.Apps.Ircorpus.e_name ^ ": optimized run diverged from the baseline");
        let slots_b = rb.Apps.Ircorpus.check_slots and slots_o = ro.Apps.Ircorpus.check_slots in
        let delta =
          if slots_b = 0 then 0.0 else float_of_int (slots_b - slots_o) /. float_of_int slots_b
        in
        [
          e.Apps.Ircorpus.e_name;
          string_of_int st_b.Rewrite.Instrument.new_slots;
          string_of_int st_o.Rewrite.Instrument.new_slots;
          string_of_int st_o.Rewrite.Instrument.checks_eliminated;
          string_of_int st_o.Rewrite.Instrument.checks_hoisted;
          string_of_int slots_b;
          string_of_int slots_o;
          Support.pct delta;
          Support.us rb.Apps.Ircorpus.elapsed;
          Support.us ro.Apps.Ircorpus.elapsed;
          (if identical then "yes" else "NO");
        ])
      Apps.Ircorpus.all
  in
  Support.print_table
    ~headers:
      [
        "kernel"; "slots"; "slots(opt)"; "elim"; "hoist"; "chk-slots"; "chk-slots(opt)";
        "saved"; "us"; "us(opt)"; "identical";
      ]
    rows;
  Printf.printf
    "\nstatic slots shrink with redundant_elim; executed check slots drop on every\n\
     kernel with an eliminated check, and results stay bit-identical.\n"
