(* Simulator throughput trajectory (ROADMAP "raw speed"): events per
   host second on fixed-configuration runs of the scale apps, the same
   measurement as BENCH_scale.json's points (wall clock around
   [Apps.Harness.run_spec], so the two files are directly comparable),
   plus interpreter steps/sec over the IR corpus and the conservative
   parallel mode at 2 and 4 domains on a 16-node run.

   Results land in BENCH_speed.json; [run_speed_smoke] is the CI
   regression gate — it fails the build if single-threaded events/sec on
   the LU and Water-Nsq smokes drops below a floor derived from the
   committed baseline. *)

module C = Shasta.Cluster
module E = Protocol.Engine
module J = Load.Json

(* Node-major placement, as in bench/scale.ml. *)
let shape nprocs = if nprocs <= 4 then (1, nprocs) else ((nprocs + 3) / 4, 4)

type point = {
  s_name : string;
  s_procs : int;
  s_nodes : int;
  s_domains : int;
  s_elapsed : float;  (** simulated seconds *)
  s_events : int;
  s_wall : float;  (** host seconds around run_spec *)
  s_ok : bool;
  s_gc : Sim.Stats.gc_delta;
}

let events_per_sec p = float_of_int p.s_events /. Float.max 1e-9 p.s_wall

let point_json p =
  J.Obj
    [
      ("name", J.Str p.s_name);
      ("procs", J.Int p.s_procs);
      ("nodes", J.Int p.s_nodes);
      ("domains", J.Int p.s_domains);
      ("elapsed_ms", J.Float (1000.0 *. p.s_elapsed));
      ("events", J.Int p.s_events);
      ("events_per_sec", J.Float (events_per_sec p));
      ("wall_s", J.Float p.s_wall);
      ("validated", J.Bool p.s_ok);
      ("gc_minor_words", J.Float p.s_gc.Sim.Stats.gc_minor_words);
      ("gc_major_words", J.Float p.s_gc.Sim.Stats.gc_major_words);
      ("gc_minor_collections", J.Int p.s_gc.Sim.Stats.gc_minor_collections);
      ("gc_major_collections", J.Int p.s_gc.Sim.Stats.gc_major_collections);
      ("gc_compactions", J.Int p.s_gc.Sim.Stats.gc_compactions);
    ]

(* One timed application run.  Parallel points run on one-cpu nodes (one
   event lane per node) and are swept for coherence after the run: the
   parallel mode must leave a quiescent, violation-free protocol state. *)
let run_app ?(name = "") ?(domains = 1) spec ~nprocs ~nodes ~cpus =
  let cl = Support.cluster ~nodes ~cpus ~parallel:domains () in
  let gc0 = Sim.Stats.gc_mark () in
  let t0 = Unix.gettimeofday () in
  let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs ~sync:Apps.Harness.Mp () in
  let wall = Unix.gettimeofday () -. t0 in
  let gc = Sim.Stats.gc_delta gc0 in
  let ok =
    ok
    &&
    if domains > 1 then (
      match E.check_quiescent (C.protocol_engine cl) with
      | [] -> true
      | errs ->
          List.iter (fun e -> Printf.eprintf "invariant: %s\n" e) errs;
          false)
    else true
  in
  {
    s_name =
      (if name <> "" then name
       else Printf.sprintf "%s@%d" spec.Apps.Harness.name nprocs);
    s_procs = nprocs;
    s_nodes = nodes;
    s_domains = domains;
    s_elapsed = elapsed;
    s_events = Sim.Engine.events_fired (C.sim cl);
    s_wall = wall;
    s_ok = ok;
    s_gc = gc;
  }

(* Interpreter throughput: every IR-corpus kernel instrumented with the
   default options and executed; the point's "events" are interpreter
   steps, so events_per_sec is steps/sec. *)
let run_interp () =
  let gc0 = Sim.Stats.gc_mark () in
  let t0 = Unix.gettimeofday () in
  let steps =
    List.fold_left
      (fun acc (e : Apps.Ircorpus.entry) ->
        let prog, _ =
          Rewrite.Instrument.instrument ~options:Rewrite.Instrument.default_options
            e.Apps.Ircorpus.e_program
        in
        let r = Apps.Ircorpus.run prog e in
        acc + r.Apps.Ircorpus.steps)
      0 Apps.Ircorpus.all
  in
  let wall = Unix.gettimeofday () -. t0 in
  {
    s_name = "ircorpus-interp";
    s_procs = 1;
    s_nodes = 1;
    s_domains = 1;
    s_elapsed = 0.0;
    s_events = steps;
    s_wall = wall;
    s_ok = true;
    s_gc = Sim.Stats.gc_delta gc0;
  }

let print_points points =
  Support.print_table
    ~headers:
      [ "bench"; "procs"; "nodes"; "dom"; "events"; "ev/s (M)"; "wall s"; "minor Mw"; "ok" ]
    (List.map
       (fun p ->
         [
           p.s_name;
           string_of_int p.s_procs;
           string_of_int p.s_nodes;
           string_of_int p.s_domains;
           string_of_int p.s_events;
           Printf.sprintf "%.3f" (events_per_sec p /. 1e6);
           Printf.sprintf "%.2f" p.s_wall;
           Printf.sprintf "%.1f" (p.s_gc.Sim.Stats.gc_minor_words /. 1e6);
           (if p.s_ok then "yes" else "NO");
         ])
       points)

let emit ~file ~bench points =
  Support.emit_json ~file ~bench
    ~meta:[ ("host_domains", J.Int (Domain.recommended_domain_count ())) ]
    [ ("points", J.List (List.map point_json points)) ]

let find name points = List.find (fun p -> p.s_name = name) points

let run_speed () =
  Support.print_header "simulator throughput (events per host second)";
  let lu = Apps.Registry.find "LU" in
  let wnsq = Apps.Registry.find "Water-Nsq" in
  let seq_points =
    List.concat_map
      (fun spec ->
        List.map
          (fun nprocs ->
            let nodes, cpus = shape nprocs in
            run_app spec ~nprocs ~nodes ~cpus)
          [ 1; 16 ])
      [ lu; wnsq ]
  in
  (* The parallel sweep: 16 one-cpu nodes = 16 event lanes, driven by 1,
     2 and 4 real domains.  On a multicore host the 2- and 4-domain
     points show the wall-clock win; on a single-core host (CI included)
     they bound the coordination overhead instead — either way the
     simulated results must validate and sweep clean. *)
  let par_points =
    List.map
      (fun domains ->
        run_app lu
          ~name:(Printf.sprintf "LU@16n-par%d" domains)
          ~domains ~nprocs:16 ~nodes:16 ~cpus:1)
      [ 1; 2; 4 ]
  in
  let interp = run_interp () in
  let points = seq_points @ par_points @ [ interp ] in
  print_points points;
  (let p1 = find "LU@16n-par1" points
   and p4 = find "LU@16n-par4" points in
   Printf.printf "parallel 4-domain wall vs sequential: %.2fx (%d host cores)\n"
     (p1.s_wall /. Float.max 1e-9 p4.s_wall)
     (Domain.recommended_domain_count ()));
  List.iter
    (fun p ->
      if not p.s_ok then failwith ("speed: " ^ p.s_name ^ " failed validation"))
    points;
  emit ~file:"BENCH_speed.json" ~bench:"speed" points

(* CI regression floors: the committed BENCH_speed.json baseline
   (recorded on the 1-core container this repo grows in) measured the
   smoke shapes at ~0.9M (LU@4) and ~1.6M (Water-Nsq@4) events/sec
   after the flat-heap rewrite, roughly 2x the pre-rewrite engine.
   The floor is baseline/3 to absorb slower CI hosts; a regression that
   undoes the rewrite's win (a ~2x drop to pre-rewrite speed on the
   same host) still lands well under it. *)
let smoke_floor = [ ("LU@4", 300_000.0); ("Water-Nsq@4", 530_000.0) ]

let run_speed_smoke () =
  Support.print_header "simulator throughput smoke (CI regression gate)";
  let points =
    List.map
      (fun app ->
        let spec = Apps.Registry.find app in
        let nodes, cpus = shape 4 in
        run_app spec ~nprocs:4 ~nodes ~cpus)
      [ "LU"; "Water-Nsq" ]
  in
  let interp = run_interp () in
  let points = points @ [ interp ] in
  print_points points;
  emit ~file:"BENCH_speed_smoke.json" ~bench:"speed_smoke" points;
  let failed = ref false in
  List.iter
    (fun (name, floor) ->
      let p = find name points in
      let eps = events_per_sec p in
      if (not p.s_ok) || eps < floor then begin
        Printf.eprintf "speed regression: %s at %.0f events/sec (floor %.0f, ok=%b)\n"
          name eps floor p.s_ok;
        failed := true
      end)
    smoke_floor;
  if !failed then exit 1
