(* Bechamel micro-benchmarks of the real (host) hot paths: the
   simulator's event queue, the memory image, the state tables, the
   interpreter, and the rewriter.  These measure OCaml execution cost,
   complementing the simulated-time experiments. *)

open Bechamel
open Toolkit

let heap_push_pop =
  Test.make ~name:"event heap push+pop x64"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create () in
         for i = 0 to 63 do
           Sim.Heap.push h ~time:(float_of_int ((i * 37) mod 64)) ~seq:i i
         done;
         let rec drain () = match Sim.Heap.pop h with None -> () | Some _ -> drain () in
         drain ()))

let bench_layout = Protocol.Layout.uniform ~base:0 ~size:65536 ~block:64 ()

let memimg_ops =
  let img = Protocol.Memimg.create ~layout:bench_layout in
  Test.make ~name:"memory image read+write x64"
    (Staged.stage (fun () ->
         for i = 0 to 63 do
           Protocol.Memimg.write ~pid:1 img (i * 64) Alpha.Insn.W64 (Int64.of_int i);
           ignore (Protocol.Memimg.read img (i * 64) Alpha.Insn.W64)
         done))

let flag_fill =
  let img = Protocol.Memimg.create ~layout:bench_layout in
  Test.make ~name:"invalid-flag fill x64 blocks"
    (Staged.stage (fun () ->
         for b = 0 to 63 do
           Protocol.Memimg.write_flags img ~flag32:0xDEADBEEFl ~block:b
         done))

let layout_lookup =
  let mixed =
    Protocol.Layout.create ~base:0 ~size:65536
      [
        { Protocol.Layout.rs_name = "fine"; rs_size = 32768; rs_block = 64 };
        { Protocol.Layout.rs_name = "bulk"; rs_size = 32768; rs_block = 512 };
      ]
  in
  Test.make ~name:"layout: block_of_addr x64"
    (Staged.stage (fun () ->
         for i = 0 to 63 do
           ignore (Protocol.Layout.block_of_addr mixed (i * 1021))
         done))

let interp_loop =
  let prog =
    Alpha.Asm.(
      program
        [
          proc "main"
            [ li t0 1000L; label "loop"; addi t1 1 t1; subi t0 1 t0; bgt t0 "loop"; halt ];
        ])
  in
  let rt = Alpha.Runtime.flat ~size:4096 () in
  Test.make ~name:"interpreter: 1000-iteration loop"
    (Staged.stage (fun () -> ignore (Alpha.Interp.run prog rt ~entry:"main" ())))

let rewriter =
  let prog = Experiments.skeleton ~procedures:8 ~mix:Experiments.sci_mix in
  Test.make ~name:"rewriter: instrument 8 procedures"
    (Staged.stage (fun () -> ignore (Rewrite.Instrument.instrument prog)))

let rng_stream =
  let rng = Sim.Rng.create 7 in
  Test.make ~name:"rng: 64 draws" (Staged.stage (fun () ->
      for _ = 1 to 64 do
        ignore (Sim.Rng.int rng 1000)
      done))

let run_micro () =
  let tests =
    [ heap_push_pop; memimg_ops; flag_fill; layout_lookup; interp_loop; rewriter; rng_stream ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  Printf.printf "\nBechamel micro-benchmarks (host execution time)\n";
  Printf.printf "------------------------------------------------\n";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" [ test ]) in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (t :: _) -> Printf.printf "%-44s %12.1f ns/run\n" name t
          | Some [] | None -> Printf.printf "%-44s (no estimate)\n" name)
        results)
    tests
