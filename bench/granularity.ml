(* Variable coherence granularity (Section 2.1): what block size buys.

   Two experiments:

   - a microbenchmark with the two access patterns granularity trades
     off: per-processor hot words (fine blocks avoid false sharing) and
     a bulk array streamed by every processor (coarse blocks amortise
     misses) — run under uniform layouts and under a mixed layout that
     places each structure in the region that suits it;

   - one SPLASH-2 kernel (Ocean) swept across uniform block sizes and
     the mixed layout, with the per-region miss/invalidation report.

   [run_granularity_smoke] is the CI-sized variant: tiny inputs, the
   coherence invariant checker enabled, so a layout bug fails the run
   rather than skewing a number. *)

module C = Shasta.Cluster
module R = Shasta.Runtime
module E = Protocol.Engine

let cluster ?(check_invariants = false) ?(shared = 2 * 1024 * 1024) ~regions () =
  C.create
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes = 4; cpus_per_node = 2 };
      protocol =
        {
          Protocol.Config.default with
          Protocol.Config.regions;
          shared_size = shared;
          check_invariants;
        };
    }

(* Layouts under test.  The mixed layout mirrors what an annotated
   application asks for: a small fine region for contended words, the
   rest coarse for bulk data. *)
let uniform block ~shared =
  [ { Protocol.Layout.rs_name = Printf.sprintf "u%d" block; rs_size = shared; rs_block = block } ]

let mixed ~shared =
  [
    { Protocol.Layout.rs_name = "fine"; rs_size = 64 * 1024; rs_block = 64 };
    { Protocol.Layout.rs_name = "bulk"; rs_size = shared - (64 * 1024); rs_block = 512 };
  ]

(* --- false-sharing + streaming micro --- *)

type micro_result = {
  mr_elapsed : float;
  mr_read_misses : int;
  mr_store_misses : int;
  mr_invals : int;
  mr_data_bytes : int;
}

(* Each processor read-modify-writes its own word (spaced 64 B apart:
   distinct blocks under a fine layout, one ping-ponging block under a
   coarse one — every neighbour's store invalidates this copy, so the
   next load misses again), then streams a read of the whole bulk array
   (few misses under a coarse layout, one per 64 B under a fine one). *)
let run_micro ?check_invariants ~regions ~shared ~nprocs ~iters ~bulk_words () =
  let cl = cluster ?check_invariants ~shared ~regions () in
  let hot = C.alloc ~granularity:64 cl (64 * nprocs) in
  let bulk = C.alloc ~granularity:512 cl (8 * bulk_words) in
  let barrier_parties = nprocs in
  for p = 0 to nprocs - 1 do
    ignore
      (C.spawn cl ~cpu:p (Printf.sprintf "micro%d" p) (fun h ->
           (* Fill the bulk array once from processor 0. *)
           if p = 0 then
             for i = 0 to bulk_words - 1 do
               R.store_int h (bulk + (8 * i)) i
             done;
           R.barrier h ~id:7000 ~parties:barrier_parties;
           (* Barrier per round so every processor touches its word in
              every inter-steal window — without it a holder drains all
              its iterations in one ownership tenure and the ping-pong
              disappears. *)
           for _ = 1 to iters do
             let v = R.load_int h (hot + (64 * p)) in
             R.store_int h (hot + (64 * p)) (v + 1);
             R.barrier h ~id:7001 ~parties:barrier_parties
           done;
           let sum = ref 0 in
           for i = 0 to bulk_words - 1 do
             sum := !sum + R.load_int h (bulk + (8 * i))
           done;
           if !sum < 0 then failwith "unreachable"))
  done;
  let elapsed = C.run cl in
  let totals = E.region_stats (C.protocol_engine cl) in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 totals in
  {
    mr_elapsed = elapsed;
    mr_read_misses = sum (fun r -> r.E.r_read_misses);
    mr_store_misses = sum (fun r -> r.E.r_store_misses);
    mr_invals = sum (fun r -> r.E.r_invals);
    mr_data_bytes = sum (fun r -> r.E.r_data_bytes);
  }

let micro_table ?check_invariants ~shared ~nprocs ~iters ~bulk_words () =
  let layouts =
    [
      ("uniform 64", uniform 64 ~shared);
      ("uniform 128", uniform 128 ~shared);
      ("uniform 512", uniform 512 ~shared);
      ("mixed 64/512", mixed ~shared);
    ]
  in
  Support.print_table
    ~headers:[ "layout"; "time ms"; "read-miss"; "store-miss"; "invals"; "data KB" ]
    (List.map
       (fun (name, regions) ->
         let r = run_micro ?check_invariants ~regions ~shared ~nprocs ~iters ~bulk_words () in
         [
           name;
           Printf.sprintf "%.2f" (1000.0 *. r.mr_elapsed);
           string_of_int r.mr_read_misses;
           string_of_int r.mr_store_misses;
           string_of_int r.mr_invals;
           string_of_int (r.mr_data_bytes / 1024);
         ])
       layouts)

(* --- SPLASH kernel sweep --- *)

(* Shared-memory sync, so the lock and barrier words land in the fine
   region and the grid in the coarse one — under Mp sync Ocean never
   touches fine blocks and a mixed layout has nothing to show. *)
let ocean_run ?check_invariants ?size ~regions ~shared () =
  let cl = cluster ?check_invariants ~shared ~regions () in
  let elapsed, ok =
    Apps.Harness.run_spec cl Apps.Ocean.spec ~nprocs:8 ~sync:Apps.Harness.Sm ?size ()
  in
  if not ok then failwith "granularity: Ocean failed validation";
  (elapsed, cl)

let ocean_sweep ?check_invariants ?size ~shared () =
  let layouts =
    [
      ("uniform 64", uniform 64 ~shared);
      ("uniform 128", uniform 128 ~shared);
      ("uniform 256", uniform 256 ~shared);
      ("uniform 512", uniform 512 ~shared);
      ("mixed 64/512", mixed ~shared);
    ]
  in
  let results =
    List.map
      (fun (name, regions) ->
        let elapsed, cl = ocean_run ?check_invariants ?size ~regions ~shared () in
        (name, elapsed, cl))
      layouts
  in
  Support.print_table
    ~headers:[ "layout"; "time ms"; "read-miss"; "store-miss"; "invals"; "data KB" ]
    (List.map
       (fun (name, elapsed, cl) ->
         let totals = E.region_stats (C.protocol_engine cl) in
         let sum f = Array.fold_left (fun acc r -> acc + f r) 0 totals in
         [
           name;
           Printf.sprintf "%.2f" (1000.0 *. elapsed);
           string_of_int (sum (fun r -> r.E.r_read_misses));
           string_of_int (sum (fun r -> r.E.r_store_misses));
           string_of_int (sum (fun r -> r.E.r_invals));
           string_of_int (sum (fun r -> r.E.r_data_bytes) / 1024);
         ])
       results);
  (* The per-region breakdown for the mixed run: the point of the
     exercise is that the fine region absorbs the invalidations while
     the bulk region carries the data. *)
  match List.rev results with
  | (_, _, cl) :: _ ->
      Printf.printf "\nmixed layout, per region:\n";
      Format.printf "%a" C.pp_layout_report cl
  | [] -> ()

(* --- code-size cost of the table lookup (Section 2.1) --- *)

let code_growth_delta () =
  let prog = Experiments.skeleton ~procedures:32 ~mix:Experiments.sci_mix in
  let _, s_uniform = Rewrite.Instrument.instrument prog in
  let options =
    { Rewrite.Instrument.default_options with Rewrite.Instrument.granularity_table = true }
  in
  let _, s_table = Rewrite.Instrument.instrument ~options prog in
  Printf.printf
    "code growth: uniform layout %.1f%%   with block-number table %.1f%% (%d lookups)\n"
    (100.0 *. Rewrite.Instrument.code_growth s_uniform)
    (100.0 *. Rewrite.Instrument.code_growth s_table)
    s_table.Rewrite.Instrument.gran_lookups

let run_granularity () =
  Support.print_header "Variable granularity: false sharing vs bulk transfer (8 procs)";
  micro_table ~shared:(2 * 1024 * 1024) ~nprocs:8 ~iters:200 ~bulk_words:8192 ();
  Support.print_header "Variable granularity: Ocean across layouts (8 procs)";
  ocean_sweep ~shared:(2 * 1024 * 1024) ();
  print_newline ();
  code_growth_delta ()

(** CI smoke: small inputs, invariant checker on — a layout bug aborts
    the run with a [Coherence_violation] rather than a skewed number. *)
let run_granularity_smoke () =
  Support.print_header "Granularity smoke (checked)";
  micro_table ~check_invariants:true ~shared:(256 * 1024) ~nprocs:8 ~iters:50 ~bulk_words:1024 ();
  Support.print_header "Ocean smoke (checked, uniform 64 + mixed)";
  let shared = 256 * 1024 in
  List.iter
    (fun (name, regions) ->
      let elapsed, cl = ocean_run ~check_invariants:true ~size:18 ~regions ~shared () in
      let violations = E.check_quiescent (C.protocol_engine cl) in
      if violations <> [] then
        failwith (Printf.sprintf "%s: %s" name (String.concat "; " violations));
      Printf.printf "%-14s %.2f ms  (invariants + quiescence clean)\n" name (1000.0 *. elapsed))
    [ ("uniform 64", uniform 64 ~shared); ("mixed 64/512", mixed ~shared) ]
