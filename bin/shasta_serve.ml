(* CLI: open-loop load generation against minidb on the simulated
   cluster — offered arrivals, admission control, tail-latency report.

     dune exec bin/shasta_serve.exe -- --arrival poisson:40000 --clients 512 \
       --duration 0.05 --admission queue:256:0.02
     dune exec bin/shasta_serve.exe -- --sweep 10000,20000,40000,80000,160000

   Same seed => bit-identical latency histograms (the --json report can
   be diffed byte for byte). *)

module S = Load.Serve
module A = Load.Arrival

let () =
  let arrival = ref "poisson:20000" in
  let clients = ref 256 in
  let window = ref 4 in
  let duration = ref 0.05 in
  let admission = ref "queue:256:0.02" in
  let scan_share = ref 0.1 in
  let seed = ref 42 in
  let nodes = ref 2 in
  let cpus = ref 4 in
  let servers = ref 6 in
  let faults = ref "" in
  let sweep = ref "" in
  let json_out = ref "" in
  let breakdown = ref false in
  let args =
    [
      ("--arrival", Arg.Set_string arrival, " arrival process: " ^ A.spec_help);
      ("--clients", Arg.Set_int clients, " simulated client sessions");
      ("--window", Arg.Set_int window, " per-client in-flight window");
      ("--duration", Arg.Set_float duration, " seconds of offered load (simulated)");
      ("--admission", Arg.Set_string admission, " admission policy: " ^ Load.Admission.spec_help);
      ("--scan-share", Arg.Set_float scan_share, " fraction of requests that are scans");
      ("--seed", Arg.Set_int seed, " RNG seed (arrivals, mix, placement)");
      ("--nodes", Arg.Set_int nodes, " cluster nodes");
      ("--cpus", Arg.Set_int cpus, " processors per node");
      ("--servers", Arg.Set_int servers, " server worker processes");
      ( "--faults",
        Arg.Set_string faults,
        " fault plan, e.g. \"seed=42,drop=0.05\" (composes with the multiplexer)" );
      ( "--sweep",
        Arg.Set_string sweep,
        " comma-separated offered rates; runs a saturation sweep instead of one point" );
      ("--json", Arg.Set_string json_out, " write the machine-readable report to this file");
      ("--node-breakdown", Arg.Set breakdown, " print per-node time breakdowns");
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "shasta_serve [options]";
  let plan = if !faults = "" then Fault.Plan.empty else Fault.Plan.of_spec !faults in
  let cluster_cfg =
    S.cluster_config ~nodes:!nodes ~cpus_per_node:!cpus ~fault_plan:plan ()
  in
  let total_cpus = !nodes * !cpus in
  if !servers < 1 || !servers > total_cpus - 1 then begin
    Printf.eprintf "--servers must be in [1, %d]\n" (total_cpus - 1);
    exit 2
  end;
  let cfg =
    {
      S.default_config with
      S.seed = !seed;
      arrival = A.of_spec !arrival;
      clients = !clients;
      window = !window;
      duration = !duration;
      scan_share = !scan_share;
      admission = Load.Admission.of_spec !admission;
      server_cpus = List.init !servers (fun i -> 1 + i);
    }
  in
  let report_outcome (o : S.outcome) =
    Format.printf "%a" Load.Recorder.pp o.S.recorder;
    Format.printf "validated: %b  drained: %b  (%.1f ms simulated)@." o.S.ok o.S.drained
      (1000.0 *. o.S.elapsed);
    Format.printf "%a" Shasta.Cluster.pp_fault_report o.S.cluster;
    if !breakdown then Format.printf "%a" Shasta.Cluster.pp_node_report o.S.cluster;
    o.S.ok && o.S.drained
  in
  if !sweep = "" then begin
    let o = S.run ~cluster_cfg cfg in
    let ok = report_outcome o in
    if !json_out <> "" then begin
      Load.Json.write_file !json_out
        (S.sweep_json ~cfg [ { S.sp_rate = A.mean_rate cfg.S.arrival; sp_outcome = o } ]);
      Printf.printf "wrote %s\n" !json_out
    end;
    if not ok then exit 1
  end
  else begin
    let rates =
      try List.map float_of_string (String.split_on_char ',' !sweep)
      with _ ->
        Printf.eprintf "--sweep expects comma-separated rates\n";
        exit 2
    in
    let points = S.sweep ~cluster_cfg ~cfg rates in
    Format.printf "%a" S.pp_sweep points;
    let all_ok = List.for_all (fun p -> p.S.sp_outcome.S.ok && p.S.sp_outcome.S.drained) points in
    Format.printf "all points validated and drained: %b@." all_ok;
    if !breakdown then
      List.iter
        (fun p ->
          Format.printf "-- %.0f req/s --@." p.S.sp_rate;
          Format.printf "%a" Shasta.Cluster.pp_node_report p.S.sp_outcome.S.cluster)
        points;
    if !json_out <> "" then begin
      Load.Json.write_file !json_out (S.sweep_json ~cfg points);
      Printf.printf "wrote %s\n" !json_out
    end;
    if not all_ok then exit 1
  end
