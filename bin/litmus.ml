(* Memory-model litmus tests (Figure 2 of the paper, message passing,
   Dekker under Sc, LL/SC atomicity) run through the schedule explorer
   and coherence-checking layers of lib/check.

     dune exec bin/litmus.exe -- [--seeds N] [--jitter] [--explore]
                                 [--dpor] [--preemption-bound K]
                                 [--mutate] [--only NAME] [--out FILE]

   Every run executes with the per-message invariant checker on, a
   quiescence sweep, the scenario's outcome check and the SC trace
   oracle.  Exit status is 1 when any violation is found (or, under
   --mutate, when a seeded protocol bug goes undetected); failing
   schedules are appended to --out so CI can upload them as artifacts.
   Under --dpor every scenario (litmus kernels plus the minidb
   two-transaction scenario) is explored to a partial-order-reduction
   fixed point, optionally under --preemption-bound; per-scenario
   run/class statistics are appended to --out as JSON lines.  To
   reproduce a reported seed locally:

     dune exec bin/litmus.exe -- --seeds N       # covers seeds 1..N *)

let () =
  let seeds = ref 16 in
  let jitter = ref false in
  let explore = ref false in
  let dpor = ref false in
  let pbound = ref (-1) in
  let mutate = ref false in
  let only = ref "" in
  let out = ref "" in
  let spec =
    [
      ("--seeds", Arg.Set_int seeds, "N  seeded schedules per scenario (default 16)");
      ("--jitter", Arg.Set jitter, " also run delay-injection schedules");
      ("--explore", Arg.Set explore, " bounded exhaustive tie-set exploration");
      ("--dpor", Arg.Set dpor, " partial-order-reduced exploration to a fixed point");
      ( "--preemption-bound",
        Arg.Set_int pbound,
        "K  bound preemptions per run under --dpor (default unbounded)" );
      ("--mutate", Arg.Set mutate, " mutation harness: seeded protocol bugs must be caught");
      ( "--only",
        Arg.Set_string only,
        "NAME  restrict to the named scenario (skips the DPOR mutation pass)" );
      ("--out", Arg.Set_string out, "FILE  append failing schedules + stats JSON for CI");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "litmus [options]";
  let pick scenarios =
    match !only with
    | "" -> scenarios
    | name -> (
        match
          List.filter (fun (sc : Check.Litmus.scenario) -> sc.Check.Litmus.name = name)
            scenarios
        with
        | [] ->
            prerr_endline ("litmus: no scenario named " ^ name);
            exit 2
        | picked -> picked)
  in
  let artifact = Buffer.create 256 in
  let failed = ref false in
  let record fmt =
    Printf.ksprintf
      (fun s ->
        failed := true;
        Buffer.add_string artifact (s ^ "\n");
        print_endline ("  FAIL " ^ s))
      fmt
  in
  let stats_line ~driver ~scenario (st : Check.Explore.stats) =
    Buffer.add_string artifact
      (Printf.sprintf
         "{\"driver\":%S,\"scenario\":%S,\"runs\":%d,\"classes\":%d,\"choice_points\":%d,\"complete\":%b,\"truncated\":%b%s}\n"
         driver scenario st.Check.Explore.s_runs st.Check.Explore.s_classes
         st.Check.Explore.s_choice_points st.Check.Explore.s_complete
         st.Check.Explore.s_truncated
         (if !pbound >= 0 then Printf.sprintf ",\"preemption_bound\":%d" !pbound
          else ""))
  in

  (* Seed sweep: FIFO default plus N seeded tie-break schedules. *)
  Printf.printf "== litmus: FIFO + %d seeded schedules per scenario ==\n%!" !seeds;
  List.iter
    (fun (sc : Check.Litmus.scenario) ->
      let fails = Check.Litmus.sweep ~seeds:!seeds [ sc ] in
      if fails = [] then
        Printf.printf "  ok   %-18s (%d runs clean)\n%!" sc.Check.Litmus.name (!seeds + 1)
      else
        List.iter
          (fun (name, seed, violations) ->
            List.iter
              (fun v -> record "scenario=%s seed=%d %s" name seed v)
              violations)
          fails)
    (pick Check.Litmus.all);

  if !jitter then begin
    Printf.printf "== litmus: %d jittered (delay-injection) schedules ==\n%!" !seeds;
    List.iter
      (fun (sc : Check.Litmus.scenario) ->
        let r = Check.Explore.jittered ~n:!seeds (Check.Litmus.as_scenario sc) in
        let fails = r.Check.Explore.failures in
        if fails = [] then
          Printf.printf "  ok   %-18s\n%!" sc.Check.Litmus.name
        else
          List.iter
            (fun (f : Check.Explore.failure) ->
              List.iter
                (fun v ->
                  record "scenario=%s schedule=%S %s" sc.Check.Litmus.name
                    f.Check.Explore.f_schedule v)
                f.Check.Explore.f_violations)
            fails)
      (pick Check.Litmus.all)
  end;

  if !explore then begin
    Printf.printf "== litmus: bounded exhaustive tie-set exploration ==\n%!";
    List.iter
      (fun (sc : Check.Litmus.scenario) ->
        let r =
          Check.Explore.exhaustive ~max_runs:100 ~max_depth:6
            (Check.Litmus.as_scenario sc)
        in
        let fails = r.Check.Explore.failures in
        let st = r.Check.Explore.stats in
        stats_line ~driver:"exhaustive" ~scenario:sc.Check.Litmus.name st;
        if fails = [] then
          Printf.printf "  ok   %-18s (%d runs, %d classes%s)\n%!"
            sc.Check.Litmus.name st.Check.Explore.s_runs
            st.Check.Explore.s_classes
            (if st.Check.Explore.s_complete then ", complete"
             else if st.Check.Explore.s_truncated then ", truncated"
             else ", budget-limited")
        else
          List.iter
            (fun (f : Check.Explore.failure) ->
              List.iter
                (fun v ->
                  record "scenario=%s schedule=%S %s" sc.Check.Litmus.name
                    f.Check.Explore.f_schedule v)
                f.Check.Explore.f_violations)
            fails)
      (pick Check.Litmus.all)
  end;

  if !dpor then begin
    let bound = if !pbound >= 0 then Some !pbound else None in
    Printf.printf "== litmus: DPOR exploration%s ==\n%!"
      (match bound with
      | Some b -> Printf.sprintf " (preemption bound %d)" b
      | None -> "");
    List.iter
      (fun (sc : Check.Litmus.scenario) ->
        let r =
          Check.Dpor.explore ?preemption_bound:bound
            (Check.Litmus.as_scenario sc)
        in
        let st = r.Check.Explore.stats in
        stats_line ~driver:"dpor" ~scenario:sc.Check.Litmus.name st;
        if r.Check.Explore.failures = [] then begin
          Printf.printf "  ok   %-18s (%d runs, %d classes%s)\n%!"
            sc.Check.Litmus.name st.Check.Explore.s_runs
            st.Check.Explore.s_classes
            (if st.Check.Explore.s_complete then
               if st.Check.Explore.s_truncated then ", bounded fixed point"
               else ", complete"
             else ", budget-limited");
          if not st.Check.Explore.s_complete then
            record "scenario=%s dpor did not reach a fixed point in %d runs"
              sc.Check.Litmus.name st.Check.Explore.s_runs
        end
        else
          List.iter
            (fun (f : Check.Explore.failure) ->
              List.iter
                (fun v ->
                  record "scenario=%s schedule=%S %s" sc.Check.Litmus.name
                    f.Check.Explore.f_schedule v)
                f.Check.Explore.f_violations)
            r.Check.Explore.failures)
      (pick (Check.Litmus.all @ [ Check.Txn.scenario ]));

    if !only = "" then begin
      Printf.printf "== litmus: mutation conviction under DPOR ==\n%!";
      let reports = Check.Mutation.hunt_dpor () in
      List.iter
        (fun (r : Check.Mutation.report) ->
          Format.printf "  %a@." Check.Mutation.pp_report r;
          if r.Check.Mutation.m_caught = None then
            record "mutation=%s missed under dpor after %d runs"
              r.Check.Mutation.m_label r.Check.Mutation.m_runs)
        reports
    end
  end;

  if !mutate then begin
    Printf.printf "== litmus: mutation harness (%d seeds per bug) ==\n%!" !seeds;
    let reports = Check.Mutation.hunt ~seeds:!seeds () in
    List.iter
      (fun (r : Check.Mutation.report) ->
        Format.printf "  %a@." Check.Mutation.pp_report r;
        if r.Check.Mutation.m_caught = None then
          record "mutation=%s missed after %d runs" r.Check.Mutation.m_label
            r.Check.Mutation.m_runs)
      reports
  end;

  if !out <> "" && Buffer.length artifact > 0 then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 !out in
    Buffer.output_buffer oc artifact;
    close_out oc
  end;
  if !failed then begin
    print_endline "LITMUS: FAILED";
    exit 1
  end
  else print_endline "LITMUS: all checks passed"
