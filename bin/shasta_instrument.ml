(* CLI: run the binary rewriter, the translation validator, the
   redundant-check optimizer, and the whole-program static analyzer
   (race detector, batch-safety validator, affinity lint).

     dune exec bin/shasta_instrument.exe -- --program lock --no-batch
     dune exec bin/shasta_instrument.exe -- --verify --lint-report lint.json
     dune exec bin/shasta_instrument.exe -- --optimize
     dune exec bin/shasta_instrument.exe -- --mutants
     dune exec bin/shasta_instrument.exe -- --races --batch-verify --affinity

   [--lint-report FILE] writes the machine-readable results of every
   selected mode as one JSON document in the shared BENCH_*.json
   envelope ({!Load.Json.emit}), so CI artifacts from the lint job have
   the same shape as the bench/serve trajectory files. *)

let demo_programs =
  [
    ( "lock",
      "the paper's Figure 1: LL/SC lock acquire around a critical section",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                label "outer";
                label "try_again";
                ll W32 t0 0 a0;
                bne t0 "try_again";
                li t0 1L;
                sc W32 t0 0 a0;
                beq t0 "try_again";
                mb;
                ldq t1 0 a1;
                addi t1 1 t1;
                stq t1 0 a1;
                mb;
                stl zero 0 a0;
                subi a2 1 a2;
                bgt a2 "outer";
                halt;
              ];
          ]) );
    ( "stream",
      "a streaming loop: batched loads and stores over consecutive lines",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                li t9 100L;
                label "loop";
                ldq t0 0 a0;
                ldq t1 8 a0;
                ldq t2 16 a0;
                add t0 t1 t3;
                add t3 t2 t3;
                stq t3 24 a0;
                stq t3 32 a0;
                addi a0 64 a0;
                subi t9 1 t9;
                bgt t9 "loop";
                halt;
              ];
          ]) );
    ( "mixed",
      "mixed private (stack) and shared accesses: the dataflow analysis\n\
      \   proves the stack accesses private and skips their checks",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                li t9 10L;
                label "loop";
                ldq t0 0 a0;
                stq t0 0 sp;
                ldq t1 8 sp;
                stq t1 8 a0;
                mb;
                subi t9 1 t9;
                bgt t9 "loop";
                ret;
              ];
          ]) );
  ]

(* Everything the lint job sweeps: the IR corpus (one kernel per
   registry app + minidb) plus the demos above. *)
let lint_targets () =
  List.map
    (fun (e : Apps.Ircorpus.entry) -> (e.Apps.Ircorpus.e_name, e.Apps.Ircorpus.e_program))
    Apps.Ircorpus.all
  @ List.map (fun (n, _, p) -> (n, p)) demo_programs

(* Accumulate report text (what was printed) and structured results
   (what --lint-report emits inside the shared JSON envelope). *)
let report_buf = Buffer.create 1024
let json_fields : (string * Load.Json.t) list ref = ref []
let add_json key v = json_fields := (key, v) :: !json_fields

let out fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string report_buf s;
      print_string s)
    fmt

let verify_mode ~options () =
  let mode = if options.Rewrite.Instrument.redundant_elim then "optimized" else "default" in
  out "translation validation (%s options)\n\n" mode;
  let failures = ref 0 in
  let rows = ref [] in
  List.iter
    (fun (name, prog) ->
      let instrumented, stats = Rewrite.Instrument.instrument ~options prog in
      let reports = Rewrite.Verify.verify instrumented in
      let accesses = List.fold_left (fun a r -> a + r.Rewrite.Verify.r_accesses) 0 reports in
      let ds = Rewrite.Verify.diags reports in
      rows :=
        Load.Json.Obj
          [
            ("target", Load.Json.Str name);
            ("ok", Load.Json.Bool (ds = []));
            ("accesses", Load.Json.Int accesses);
            ("eliminated", Load.Json.Int stats.Rewrite.Instrument.checks_eliminated);
            ("hoisted", Load.Json.Int stats.Rewrite.Instrument.checks_hoisted);
            ( "diags",
              Load.Json.List
                (List.map (fun d -> Load.Json.Str (Format.asprintf "%a" Rewrite.Verify.pp_diag d)) ds) );
          ]
        :: !rows;
      match ds with
      | [] ->
          out "%-12s OK    %3d shared accesses covered" name accesses;
          if options.Rewrite.Instrument.redundant_elim then
            out "  (%d checks eliminated, %d hoisted)" stats.Rewrite.Instrument.checks_eliminated
              stats.Rewrite.Instrument.checks_hoisted;
          out "\n"
      | ds ->
          incr failures;
          out "%-12s FAIL  %d uncovered of %d accesses\n" name (List.length ds) accesses;
          List.iter (fun d -> out "    %s\n" (Format.asprintf "%a" Rewrite.Verify.pp_diag d)) ds)
    (lint_targets ());
  add_json ("verify_" ^ mode) (Load.Json.List (List.rev !rows));
  !failures

let mutants_mode () =
  out "instrumenter-mutation sweep (validator must convict each family)\n\n";
  let reports = Check.Mutation.hunt_instrumenter () in
  List.iter (fun r -> out "%s\n" (Format.asprintf "%a" Check.Mutation.pp_ireport r)) reports;
  add_json "imutants"
    (Load.Json.List
       (List.map
          (fun (r : Check.Mutation.ireport) ->
            Load.Json.Obj
              [
                ("mutation", Load.Json.Str r.Check.Mutation.i_label);
                ("caught", Load.Json.Bool (r.Check.Mutation.i_caught <> None));
                ("sites", Load.Json.Int r.Check.Mutation.i_sites);
              ])
          reports));
  if Check.Mutation.all_icaught reports then begin
    out "\nall %d instrumenter mutations caught\n" (List.length reports);
    0
  end
  else begin
    out "\nsome instrumenter mutations were MISSED\n";
    1
  end

(* --- whole-program static analysis modes (PR 10) --- *)

(* Exoneration sweep + seeded-mutation conviction: the sync corpus must
   be race-free at [nprocs] threads, the single-process corpus at its
   deployment concurrency of one, and every seeded sync mutation must
   draw a race report. *)
let races_mode ~nprocs () =
  out "static race detection (%d threads on the sync corpus)\n\n" nprocs;
  let failures = ref 0 in
  let rows = ref [] in
  let scan name ~nprocs prog =
    let r = Rewrite.Races.analyze ~nprocs ~name prog in
    let nraces = List.length r.Rewrite.Races.rep_races in
    rows :=
      Load.Json.Obj
        [
          ("kernel", Load.Json.Str name);
          ("nprocs", Load.Json.Int nprocs);
          ("atoms", Load.Json.Int (List.length r.Rewrite.Races.rep_atoms));
          ("unresolved", Load.Json.Int r.Rewrite.Races.rep_unresolved);
          ( "races",
            Load.Json.List
              (List.map
                 (fun rc -> Load.Json.Str (Format.asprintf "%a" Rewrite.Races.pp_race rc))
                 r.Rewrite.Races.rep_races) );
        ]
      :: !rows;
    if nraces > 0 then begin
      incr failures;
      out "%-14s FAIL  %d race pair(s) at %d threads\n" name nraces nprocs;
      List.iter
        (fun rc -> out "    %s\n" (Format.asprintf "%a" Rewrite.Races.pp_race rc))
        r.Rewrite.Races.rep_races
    end
    else
      out "%-14s OK    %3d atoms, %d unresolved, 0 races at %d threads\n" name
        (List.length r.Rewrite.Races.rep_atoms)
        r.Rewrite.Races.rep_unresolved nprocs
  in
  List.iter
    (fun (e : Apps.Ircorpus.entry) -> scan e.Apps.Ircorpus.e_name ~nprocs e.Apps.Ircorpus.e_program)
    Apps.Ircorpus.sync;
  List.iter
    (fun (e : Apps.Ircorpus.entry) -> scan e.Apps.Ircorpus.e_name ~nprocs:1 e.Apps.Ircorpus.e_program)
    Apps.Ircorpus.all;
  add_json "races" (Load.Json.List (List.rev !rows));
  out "\nsync-mutation sweep (race detector must convict each family)\n\n";
  let reports = Check.Mutation.hunt_sync ~nprocs () in
  List.iter (fun r -> out "%s\n" (Format.asprintf "%a" Check.Mutation.pp_sreport r)) reports;
  add_json "smutants"
    (Load.Json.List
       (List.map
          (fun (r : Check.Mutation.sreport) ->
            Load.Json.Obj
              [
                ("mutation", Load.Json.Str r.Check.Mutation.s_label);
                ("caught", Load.Json.Bool (r.Check.Mutation.s_caught <> None));
                ("sites", Load.Json.Int r.Check.Mutation.s_sites);
              ])
          reports));
  if Check.Mutation.all_scaught reports then
    out "\nall %d sync mutations caught\n" (List.length reports)
  else begin
    incr failures;
    out "\nsome sync mutations were MISSED\n"
  end;
  !failures

(* Validate every dispatch-metadata table the interpreter would build —
   raw, instrumented, and instrumented+optimized — then prove the
   validator still has teeth by seeding one batch-boundary corruption. *)
let batch_mode ~options () =
  out "batch-safety validation (raw / instrumented / optimized metadata)\n\n";
  let failures = ref 0 in
  let rows = ref [] in
  let optimized prog =
    fst
      (Rewrite.Instrument.instrument
         ~options:{ options with Rewrite.Instrument.redundant_elim = true }
         prog)
  in
  let targets =
    List.concat_map
      (fun (name, prog) ->
        [
          (name ^ ".raw", prog);
          (name ^ ".inst", fst (Rewrite.Instrument.instrument ~options prog));
          (name ^ ".opt", optimized prog);
        ])
      (lint_targets ()
      @ List.map
          (fun (e : Apps.Ircorpus.entry) -> (e.Apps.Ircorpus.e_name, e.Apps.Ircorpus.e_program))
          Apps.Ircorpus.sync)
  in
  List.iter
    (fun (name, prog) ->
      let vs = Rewrite.Batch.validate_program prog in
      rows :=
        Load.Json.Obj
          [
            ("target", Load.Json.Str name);
            ( "violations",
              Load.Json.List
                (List.map (fun v -> Load.Json.Str (Format.asprintf "%a" Rewrite.Batch.pp_violation v)) vs) );
          ]
        :: !rows;
      if vs <> [] then begin
        incr failures;
        out "%-16s FAIL  %d violation(s)\n" name (List.length vs);
        List.iter (fun v -> out "    %s\n" (Format.asprintf "%a" Rewrite.Batch.pp_violation v)) vs
      end)
    targets;
  out "%d metadata tables validated, %d with violations\n" (List.length targets) !failures;
  (* Seeded batch-boundary mutation: lengthen one pure run and demand a
     conviction — a validator that cannot convict proves nothing. *)
  let convicted =
    List.exists
      (fun (_, prog) ->
        List.exists
          (fun (p : Alpha.Program.procedure) ->
            match Check.Mutation.swallow_dispatch p with
            | Some (_, meta) -> Rewrite.Batch.validate_meta p meta <> []
            | None -> false)
          (Alpha.Program.procedures prog))
      targets
  in
  if convicted then out "seeded batch-boundary mutation convicted\n"
  else begin
    incr failures;
    out "seeded batch-boundary mutation NOT convicted\n"
  end;
  add_json "batch"
    (Load.Json.Obj
       [
         ("tables", Load.Json.Int (List.length targets));
         ("mutant_convicted", Load.Json.Bool convicted);
         ("targets", Load.Json.List (List.rev !rows));
       ]);
  !failures

(* Static affinity/false-sharing report over the sync corpus, under the
   coarse 512B reference layout the granularity bench starts from. *)
let affinity_mode ~nprocs () =
  out "static affinity hints (sync corpus, reference block 512B)\n\n";
  let bindings =
    [
      { Rewrite.Affinity.bd_arg = 0; bd_region = "hot"; bd_block = 512; bd_size = 64 * 1024 };
      { Rewrite.Affinity.bd_arg = 1; bd_region = "bulk"; bd_block = 512; bd_size = 64 * 1024 };
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (e : Apps.Ircorpus.entry) ->
      let name = e.Apps.Ircorpus.e_name in
      let r = Rewrite.Races.analyze ~nprocs ~name e.Apps.Ircorpus.e_program in
      let hints = Rewrite.Affinity.report ~bindings r in
      out "%s:\n" name;
      List.iter (fun h -> out "  %s\n" (Format.asprintf "%a" Rewrite.Affinity.pp_hint h)) hints;
      rows :=
        Load.Json.Obj
          [
            ("kernel", Load.Json.Str name);
            ( "hints",
              Load.Json.List
                (List.map
                   (fun h ->
                     Load.Json.Obj
                       [
                         ("region", Load.Json.Str h.Rewrite.Affinity.h_region);
                         ("arg", Load.Json.Int h.Rewrite.Affinity.h_arg);
                         ("kind", Load.Json.Str (Rewrite.Affinity.kind_name h.Rewrite.Affinity.h_kind));
                         ("block", Load.Json.Int h.Rewrite.Affinity.h_block);
                         ("suggest", Load.Json.Int h.Rewrite.Affinity.h_suggest);
                         ( "homing",
                           match h.Rewrite.Affinity.h_homing with
                           | None -> Load.Json.Null
                           | Some hm -> Load.Json.Str (Rewrite.Affinity.homing_name hm) );
                         ("reads", Load.Json.Int h.Rewrite.Affinity.h_reads);
                         ("writes", Load.Json.Int h.Rewrite.Affinity.h_writes);
                         ("stride", Load.Json.Int h.Rewrite.Affinity.h_stride);
                         ("locked_writes", Load.Json.Int h.Rewrite.Affinity.h_locked_writes);
                       ])
                   hints) );
          ]
        :: !rows)
    Apps.Ircorpus.sync;
  add_json "affinity" (Load.Json.List (List.rev !rows));
  0

let () =
  let name = ref "lock" in
  let batching = ref true in
  let flag_loads = ref true in
  let polls = ref true in
  let prefetch = ref true in
  let redundant_elim = ref false in
  let verify = ref false in
  let optimize = ref false in
  let mutants = ref false in
  let races = ref false in
  let batch_verify = ref false in
  let affinity = ref false in
  let nprocs = ref 4 in
  let lint_report = ref "" in
  let args =
    [
      ( "--program",
        Arg.Set_string name,
        Printf.sprintf " demo program (%s)" (String.concat ", " (List.map (fun (n, _, _) -> n) demo_programs)) );
      ("--no-batch", Arg.Clear batching, " disable batching");
      ("--no-flag", Arg.Clear flag_loads, " state-table checks instead of the flag technique");
      ("--no-polls", Arg.Clear polls, " no loop-backedge polls");
      ("--no-prefetch", Arg.Clear prefetch, " no prefetch-exclusive before LL/SC loops");
      ("--redundant-elim", Arg.Set redundant_elim, " inter-block redundant-check elimination + hoisting");
      ("--verify", Arg.Set verify, " validate check coverage over the IR corpus + demos");
      ("--optimize", Arg.Set optimize, " like --verify, with redundant_elim on (reports eliminated/hoisted)");
      ("--mutants", Arg.Set mutants, " sweep seeded instrumenter mutations; the validator must catch all");
      ("--races", Arg.Set races, " static race detection over the corpus + seeded sync mutations");
      ("--batch-verify", Arg.Set batch_verify, " validate the interpreter's batch-dispatch metadata");
      ("--affinity", Arg.Set affinity, " static affinity/false-sharing hints for the sync corpus");
      ("--nprocs", Arg.Set_int nprocs, "N SPMD thread count for --races/--affinity (default 4)");
      ("--lint-report", Arg.Set_string lint_report, "FILE write a JSON report (shared BENCH envelope) to FILE");
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "shasta_instrument [options]";
  let options =
    {
      Rewrite.Instrument.default_options with
      Rewrite.Instrument.batching = !batching;
      flag_loads = !flag_loads;
      polls = !polls;
      prefetch_ll_sc = !prefetch;
      redundant_elim = !redundant_elim;
    }
  in
  let save_report ~failures =
    if !lint_report <> "" then
      Load.Json.emit ~file:!lint_report ~bench:"lint"
        ~meta:[ ("nprocs", Load.Json.Int !nprocs); ("failures", Load.Json.Int failures) ]
        (List.rev !json_fields)
  in
  if !verify || !optimize || !mutants || !races || !batch_verify || !affinity then begin
    let failures = ref 0 in
    let sep = ref false in
    let mode f =
      if !sep then out "\n";
      sep := true;
      failures := !failures + f ()
    in
    if !verify then mode (verify_mode ~options);
    if !optimize then
      mode (verify_mode ~options:{ options with Rewrite.Instrument.redundant_elim = true });
    if !mutants then mode mutants_mode;
    if !races then mode (races_mode ~nprocs:!nprocs);
    if !batch_verify then mode (batch_mode ~options);
    if !affinity then mode (affinity_mode ~nprocs:!nprocs);
    save_report ~failures:!failures;
    exit (if !failures > 0 then 1 else 0)
  end;
  let _, descr, prog =
    match List.find_opt (fun (n, _, _) -> n = !name) demo_programs with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown program %S\n" !name;
        exit 1
  in
  Printf.printf "program %S: %s\n\noriginal:\n" !name descr;
  List.iter
    (fun p ->
      Printf.printf "%s:\n" p.Alpha.Program.name;
      Array.iteri (fun i insn -> Format.printf "  %3d: %a@." i Alpha.Insn.pp insn) p.Alpha.Program.code)
    (Alpha.Program.procedures prog);
  let instrumented, stats = Rewrite.Instrument.instrument ~options prog in
  Printf.printf "\ninstrumented:\n";
  List.iter
    (fun p ->
      Printf.printf "%s:\n" p.Alpha.Program.name;
      Array.iteri (fun i insn -> Format.printf "  %3d: %a@." i Alpha.Insn.pp insn) p.Alpha.Program.code)
    (Alpha.Program.procedures instrumented);
  Format.printf "\nper-pass statistics:@\n%a@." Rewrite.Instrument.pp_stats stats
