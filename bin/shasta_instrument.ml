(* CLI: run the binary rewriter, the translation validator and the
   redundant-check optimizer.

     dune exec bin/shasta_instrument.exe -- --program lock --no-batch
     dune exec bin/shasta_instrument.exe -- --verify --lint-report lint.txt
     dune exec bin/shasta_instrument.exe -- --optimize
     dune exec bin/shasta_instrument.exe -- --mutants
*)

let demo_programs =
  [
    ( "lock",
      "the paper's Figure 1: LL/SC lock acquire around a critical section",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                label "outer";
                label "try_again";
                ll W32 t0 0 a0;
                bne t0 "try_again";
                li t0 1L;
                sc W32 t0 0 a0;
                beq t0 "try_again";
                mb;
                ldq t1 0 a1;
                addi t1 1 t1;
                stq t1 0 a1;
                mb;
                stl zero 0 a0;
                subi a2 1 a2;
                bgt a2 "outer";
                halt;
              ];
          ]) );
    ( "stream",
      "a streaming loop: batched loads and stores over consecutive lines",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                li t9 100L;
                label "loop";
                ldq t0 0 a0;
                ldq t1 8 a0;
                ldq t2 16 a0;
                add t0 t1 t3;
                add t3 t2 t3;
                stq t3 24 a0;
                stq t3 32 a0;
                addi a0 64 a0;
                subi t9 1 t9;
                bgt t9 "loop";
                halt;
              ];
          ]) );
    ( "mixed",
      "mixed private (stack) and shared accesses: the dataflow analysis\n\
      \   proves the stack accesses private and skips their checks",
      Alpha.Asm.(
        program
          [
            proc "main"
              [
                li t9 10L;
                label "loop";
                ldq t0 0 a0;
                stq t0 0 sp;
                ldq t1 8 sp;
                stq t1 8 a0;
                mb;
                subi t9 1 t9;
                bgt t9 "loop";
                ret;
              ];
          ]) );
  ]

(* Everything the lint job sweeps: the IR corpus (one kernel per
   registry app + minidb) plus the demos above. *)
let lint_targets () =
  List.map
    (fun (e : Apps.Ircorpus.entry) -> (e.Apps.Ircorpus.e_name, e.Apps.Ircorpus.e_program))
    Apps.Ircorpus.all
  @ List.map (fun (n, _, p) -> (n, p)) demo_programs

(* Accumulate report text so --lint-report can save what was printed. *)
let report_buf = Buffer.create 1024

let out fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string report_buf s;
      print_string s)
    fmt

let verify_mode ~options () =
  out "translation validation (%s)\n\n" (if options.Rewrite.Instrument.redundant_elim then "optimized" else "default options");
  let failures = ref 0 in
  List.iter
    (fun (name, prog) ->
      let instrumented, stats = Rewrite.Instrument.instrument ~options prog in
      let reports = Rewrite.Verify.verify instrumented in
      let accesses = List.fold_left (fun a r -> a + r.Rewrite.Verify.r_accesses) 0 reports in
      match Rewrite.Verify.diags reports with
      | [] ->
          out "%-12s OK    %3d shared accesses covered" name accesses;
          if options.Rewrite.Instrument.redundant_elim then
            out "  (%d checks eliminated, %d hoisted)" stats.Rewrite.Instrument.checks_eliminated
              stats.Rewrite.Instrument.checks_hoisted;
          out "\n"
      | ds ->
          incr failures;
          out "%-12s FAIL  %d uncovered of %d accesses\n" name (List.length ds) accesses;
          List.iter (fun d -> out "    %s\n" (Format.asprintf "%a" Rewrite.Verify.pp_diag d)) ds)
    (lint_targets ());
  !failures

let mutants_mode () =
  out "instrumenter-mutation sweep (validator must convict each family)\n\n";
  let reports = Check.Mutation.hunt_instrumenter () in
  List.iter (fun r -> out "%s\n" (Format.asprintf "%a" Check.Mutation.pp_ireport r)) reports;
  if Check.Mutation.all_icaught reports then begin
    out "\nall %d instrumenter mutations caught\n" (List.length reports);
    0
  end
  else begin
    out "\nsome instrumenter mutations were MISSED\n";
    1
  end

let () =
  let name = ref "lock" in
  let batching = ref true in
  let flag_loads = ref true in
  let polls = ref true in
  let prefetch = ref true in
  let redundant_elim = ref false in
  let verify = ref false in
  let optimize = ref false in
  let mutants = ref false in
  let lint_report = ref "" in
  let args =
    [
      ( "--program",
        Arg.Set_string name,
        Printf.sprintf " demo program (%s)" (String.concat ", " (List.map (fun (n, _, _) -> n) demo_programs)) );
      ("--no-batch", Arg.Clear batching, " disable batching");
      ("--no-flag", Arg.Clear flag_loads, " state-table checks instead of the flag technique");
      ("--no-polls", Arg.Clear polls, " no loop-backedge polls");
      ("--no-prefetch", Arg.Clear prefetch, " no prefetch-exclusive before LL/SC loops");
      ("--redundant-elim", Arg.Set redundant_elim, " inter-block redundant-check elimination + hoisting");
      ("--verify", Arg.Set verify, " validate check coverage over the IR corpus + demos");
      ("--optimize", Arg.Set optimize, " like --verify, with redundant_elim on (reports eliminated/hoisted)");
      ("--mutants", Arg.Set mutants, " sweep seeded instrumenter mutations; the validator must catch all");
      ("--lint-report", Arg.Set_string lint_report, "FILE also write the report to FILE");
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "shasta_instrument [options]";
  let options =
    {
      Rewrite.Instrument.default_options with
      Rewrite.Instrument.batching = !batching;
      flag_loads = !flag_loads;
      polls = !polls;
      prefetch_ll_sc = !prefetch;
      redundant_elim = !redundant_elim;
    }
  in
  let save_report () =
    if !lint_report <> "" then begin
      let oc = open_out !lint_report in
      output_string oc (Buffer.contents report_buf);
      close_out oc
    end
  in
  if !verify || !optimize || !mutants then begin
    let failures = ref 0 in
    if !verify then failures := !failures + verify_mode ~options ();
    if !optimize then begin
      if !verify then out "\n";
      failures :=
        !failures
        + verify_mode ~options:{ options with Rewrite.Instrument.redundant_elim = true } ()
    end;
    if !mutants then begin
      if !verify || !optimize then out "\n";
      failures := !failures + mutants_mode ()
    end;
    save_report ();
    exit (if !failures > 0 then 1 else 0)
  end;
  let _, descr, prog =
    match List.find_opt (fun (n, _, _) -> n = !name) demo_programs with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown program %S\n" !name;
        exit 1
  in
  Printf.printf "program %S: %s\n\noriginal:\n" !name descr;
  List.iter
    (fun p ->
      Printf.printf "%s:\n" p.Alpha.Program.name;
      Array.iteri (fun i insn -> Format.printf "  %3d: %a@." i Alpha.Insn.pp insn) p.Alpha.Program.code)
    (Alpha.Program.procedures prog);
  let instrumented, stats = Rewrite.Instrument.instrument ~options prog in
  Printf.printf "\ninstrumented:\n";
  List.iter
    (fun p ->
      Printf.printf "%s:\n" p.Alpha.Program.name;
      Array.iteri (fun i insn -> Format.printf "  %3d: %a@." i Alpha.Insn.pp insn) p.Alpha.Program.code)
    (Alpha.Program.procedures instrumented);
  Format.printf "\nper-pass statistics:@\n%a@." Rewrite.Instrument.pp_stats stats
