(* CLI: run a SPLASH-2-style workload on a configurable simulated
   cluster.

     dune exec bin/shasta_run.exe -- --app LU --procs 8 --sync sm
*)

let () =
  let app = ref "LU" in
  let procs = ref 4 in
  let sync = ref "mp" in
  let size = ref 0 in
  let nodes = ref 4 in
  let cpus = ref 4 in
  let variant = ref "smp" in
  let model = ref "rc" in
  let checks = ref true in
  let line = ref 64 in
  let stats = ref false in
  let faults = ref "" in
  let granularity = ref "" in
  let migration = ref "static" in
  let migration_threshold = ref Protocol.Config.default.Protocol.Config.migration_threshold in
  let coalesce = ref false in
  let parallel = ref 1 in
  let gc_stats = ref false in
  let spec_list =
    String.concat ", " (List.map (fun s -> s.Apps.Harness.name) Apps.Registry.all)
  in
  let args =
    [
      ("--app", Arg.Set_string app, Printf.sprintf " application (%s)" spec_list);
      ("--procs", Arg.Set_int procs, " number of processors (node-major placement)");
      ("--sync", Arg.Set_string sync, " synchronisation: mp (message passing) | sm (LL/SC)");
      ("--size", Arg.Set_int size, " problem size (0 = application default)");
      ("--nodes", Arg.Set_int nodes, " cluster nodes");
      ("--cpus", Arg.Set_int cpus, " processors per node");
      ("--variant", Arg.Set_string variant, " protocol variant: smp | base");
      ("--model", Arg.Set_string model, " consistency: rc | sc");
      ("--no-checks", Arg.Clear checks, " run as the original binary (no inline checks)");
      ("--line", Arg.Set_int line, " coherence line size in bytes");
      ("--stats", Arg.Set stats, " print per-process protocol statistics");
      ( "--faults",
        Arg.Set_string faults,
        " fault plan, e.g. \"seed=42,drop=0.05,delay=0.1:2e-5,stall=1@0.001:0.0005\"" );
      ( "--granularity",
        Arg.Set_string granularity,
        " coherence granularity: " ^ Protocol.Layout.spec_help );
      ( "--migration",
        Arg.Set_string migration,
        " home placement: static | first-touch | migratory" );
      ( "--migration-threshold",
        Arg.Set_int migration_threshold,
        " consecutive remote exclusive requests before a migratory move" );
      ("--coalesce", Arg.Set coalesce, " batch protocol messages per network link");
      ( "--parallel",
        Arg.Set_int parallel,
        " event-loop domains (conservative parallel mode; 1 = sequential)" );
      ("--gc-stats", Arg.Set gc_stats, " report host GC allocation for the run");
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "shasta_run [options]";
  let spec = Apps.Registry.find !app in
  let plan = if !faults = "" then Fault.Plan.empty else Fault.Plan.of_spec !faults in
  let shared_size = 8 * 1024 * 1024 in
  let regions =
    if !granularity = "" then []
    else Protocol.Layout.specs_of_spec ~size:shared_size !granularity
  in
  let cfg =
    {
      Shasta.Config.default with
      Shasta.Config.fault_plan = plan;
      Shasta.Config.net =
        {
          Mchan.Net.default_config with
          Mchan.Net.nodes = !nodes;
          cpus_per_node = !cpus;
          coalescing = (if !coalesce then Some Mchan.Net.default_coalesce else None);
        };
      checks_enabled = !checks;
      protocol =
        {
          Protocol.Config.default with
          Protocol.Config.variant =
            (match !variant with "base" -> Protocol.Config.Base | _ -> Protocol.Config.Smp);
          model = (match !model with "sc" -> Protocol.Config.Sc | _ -> Protocol.Config.Rc);
          line_size = !line;
          regions;
          shared_size;
          homing =
            (match !migration with
            | "first-touch" -> Protocol.Config.First_touch
            | "migratory" -> Protocol.Config.Migratory
            | "static" -> Protocol.Config.Static
            | m -> raise (Arg.Bad ("unknown --migration policy " ^ m)));
          migration_threshold = !migration_threshold;
        };
      parallel = !parallel;
    }
  in
  let cl = Shasta.Cluster.create cfg in
  let sync = match !sync with "sm" -> Apps.Harness.Sm | _ -> Apps.Harness.Mp in
  let size = if !size = 0 then None else Some !size in
  let gc_mark = Sim.Stats.gc_mark () in
  let host_t0 = Unix.gettimeofday () in
  let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs:!procs ~sync ?size () in
  let host_wall = Unix.gettimeofday () -. host_t0 in
  Printf.printf "%s: %d procs, %s sync: %.3f ms simulated, validated: %b\n"
    spec.Apps.Harness.name !procs
    (match sync with Apps.Harness.Sm -> "LL/SC" | Apps.Harness.Mp -> "MP")
    (1000.0 *. elapsed) ok;
  Format.printf "breakdown: %a@." Shasta.Breakdown.pp
    (let b = Shasta.Cluster.total_breakdown cl in
     Shasta.Breakdown.normalize ~against:b b);
  Format.printf "%a" Shasta.Cluster.pp_fault_report cl;
  (let migrations, bounces, in_flight = Shasta.Cluster.migration_stats cl in
   if migrations + bounces + in_flight > 0 then begin
     Printf.printf "migration: %d home transfers, %d bounced requests, %d in flight\n"
       migrations bounces in_flight;
     Format.printf "%a" Shasta.Cluster.pp_node_report cl
   end);
  (let net = Shasta.Cluster.protocol_engine cl |> Protocol.Engine.net in
   let batches = Mchan.Net.batches net in
   if batches > 0 then
     Printf.printf "coalescing: %d messages in %d frames (%.2f msgs/frame)\n"
       (Mchan.Net.batched_messages net) batches
       (float_of_int (Mchan.Net.batched_messages net) /. float_of_int batches));
  if !parallel > 1 || !gc_stats then begin
    let fired = Sim.Engine.events_fired (Shasta.Cluster.sim cl) in
    Printf.printf "events: %d fired, %.0f events/sec host (%.2f s host wall, %d domains)\n"
      fired
      (float_of_int fired /. Float.max host_wall 1e-9)
      host_wall !parallel
  end;
  if !gc_stats then Format.printf "gc: %a@." Sim.Stats.pp_gc_delta (Sim.Stats.gc_delta gc_mark);
  if !stats || !granularity <> "" then
    Format.printf "%a" Shasta.Cluster.pp_layout_report cl;
  if !stats then
    List.iter
      (fun h ->
        let s = Protocol.Engine.stats h.Shasta.Runtime.pcb in
        Printf.printf
          "pid %2d: read misses %6d  store misses %6d  sc %4d  intra %6d  false %3d  msgs %7d  downgrades %d/%d\n"
          (Shasta.Runtime.pid h) s.Protocol.Engine.read_misses s.Protocol.Engine.store_misses
          s.Protocol.Engine.sc_misses s.Protocol.Engine.intra_hits s.Protocol.Engine.false_misses
          s.Protocol.Engine.messages_handled s.Protocol.Engine.downgrades_direct
          s.Protocol.Engine.downgrades_msg)
      (Shasta.Cluster.runtimes cl);
  if not ok then exit 1
