(** Top-level Shasta configuration: the cluster geometry, the protocol
    parameters, and the inline-check cost model used in API mode. *)

type check_costs = {
  load_check_cycles : int;  (** flag-technique check after a load (~3 slots) *)
  store_check_cycles : int;  (** state-table check before a store (~7 slots) *)
  poll_cycles : int;  (** loop-backedge poll (3 instructions) *)
  access_cycles : int;  (** the load/store instruction itself *)
}

let default_check_costs =
  { load_check_cycles = 3; store_check_cycles = 7; poll_cycles = 3; access_cycles = 2 }

type t = {
  net : Mchan.Net.config;
  protocol : Protocol.Config.t;
  checks : check_costs;
  checks_enabled : bool;
      (** charge inline-check overhead in API mode (off = original binary
          on hardware, the baseline of Table 3) *)
  cpu_hz : float;
  private_mem_size : int;  (** per-process stack/static area, bytes *)
  fault_plan : Fault.Plan.t;
      (** injected network/node faults; the empty plan keeps the raw
          perfectly-reliable channel *)
  schedule : Sim.Engine.schedule;
      (** event tie-break policy; [Fifo] is the deterministic default,
          the others drive the schedule explorer of [lib/check] *)
  parallel : int;
      (** event-loop domains for the conservative parallel mode; 1 (the
          default) is the exact sequential engine.  > 1 requires the
          [Fifo] schedule, an empty fault plan, no coalescing, static
          homing and per-message invariant checks off *)
}

let default =
  {
    net = Mchan.Net.default_config;
    protocol = Protocol.Config.default;
    checks = default_check_costs;
    checks_enabled = true;
    cpu_hz = Sim.Units.default_cpu_hz;
    private_mem_size = 1 lsl 20;
    fault_plan = Fault.Plan.empty;
    schedule = Sim.Engine.Fifo;
    parallel = 1;
  }

(** [uniprocessor] — one processor, checks off: the "standard
    application" baseline. *)
let uniprocessor =
  {
    default with
    net = { Mchan.Net.default_config with Mchan.Net.nodes = 1; cpus_per_node = 1 };
    checks_enabled = false;
  }

let cycles t n = float_of_int n /. t.cpu_hz

let shared_base t = t.protocol.Protocol.Config.shared_base
let flag32 t = t.protocol.Protocol.Config.flag32

let flag64 t =
  let f = Int64.of_int32 (flag32 t) in
  let lo = Int64.logand f 0xFFFFFFFFL in
  Int64.logor (Int64.shift_left lo 32) lo

let flag_value t (w : Alpha.Insn.width) =
  match w with
  | Alpha.Insn.W32 -> Int64.of_int32 (flag32 t) (* sign-extended, as a 32-bit load returns *)
  | Alpha.Insn.W64 -> flag64 t
