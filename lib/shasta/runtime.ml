(** The per-process Shasta runtime.

    Ties together a simulated process, its protocol control block, its
    synchronisation endpoint and its private memory, and exposes:

    - the {e API mode}: [load]/[store]/[work]/[lock]/[barrier]/... used by
      the larger workloads (SPLASH kernels, the database).  Each access
      runs the same inline-check state machine the rewriter would insert,
      with its cycle cost charged (batched and flushed like the inline
      code's instruction stream);
    - the {e IR mode}: [alpha_runtime] builds the {!Alpha.Runtime.t}
      record that lets the interpreter execute rewriter-instrumented
      binaries against this process. *)

module E = Protocol.Engine

(** One traced shared-memory access, as observed by the application:
    loads carry the value returned, stores the value written.  Reported
    through [on_access] for the trace oracle in [lib/check]. *)
type access = {
  acc_pid : int;
  acc_time : float;
  acc_addr : int;
  acc_width : Alpha.Insn.width;
  acc_store : bool;
  acc_value : int64;
}

type t = {
  proc : Sim.Proc.t;
  pcb : E.pcb;
  ep : Sync.endpoint;
  cfg : Config.t;
  sync : Sync.t;
  peng : E.t;
  private_mem : Bytes.t;
  flag_w32 : int64;  (** [Config.flag_value cfg W32], precomputed *)
  flag_w64 : int64;  (** [Config.flag_value cfg W64], precomputed *)
  img : Protocol.Memimg.t;  (** this process's domain image, cached *)
  shared_lo : int;  (** shared-range bounds, cached as immediates *)
  shared_hi : int;
  c_load : int;  (** cycles charged per checked load, precomputed *)
  c_store : int;  (** cycles charged per checked store *)
  c_batched : int;  (** cycles charged per batch-covered access *)
  mutable acc_cycles : int;
  mutable blocked_time : float;
  mutable accesses : int;  (** shared loads+stores issued in API mode *)
  mutable on_access : (access -> unit) option;
      (** trace hook over API-mode shared accesses (incl. LL/SC);
          [None] (the default) costs nothing *)
}

let flush_threshold = 2048

let flush h =
  if h.acc_cycles > 0 then begin
    Sim.Proc.work (Config.cycles h.cfg h.acc_cycles);
    h.acc_cycles <- 0
  end

let charge_cycles h n =
  h.acc_cycles <- h.acc_cycles + n;
  if h.acc_cycles >= flush_threshold then flush h

(* Protocol routines and system calls set the per-process flag used by
   the direct-downgrade optimisation (Section 4.3.4). *)
let in_protocol h f =
  flush h;
  h.pcb.E.in_app := false;
  let finally () = h.pcb.E.in_app := true in
  (try
     let r = f () in
     finally ();
     r
   with e ->
     finally ();
     raise e)

let create ~cfg ~peng ~sync (proc : Sim.Proc.t) =
  let pcb = E.attach peng proc in
  let ep = Sync.register sync ~pid:proc.Sim.Proc.pid ~node:proc.Sim.Proc.cpu.Sim.Proc.node_id in
  let h =
    {
      proc;
      pcb;
      ep;
      cfg;
      sync;
      peng;
      private_mem = Bytes.make cfg.Config.private_mem_size '\000';
      flag_w32 = Config.flag_value cfg Alpha.Insn.W32;
      flag_w64 = Config.flag_value cfg Alpha.Insn.W64;
      img = pcb.E.dom.E.img;
      shared_lo = cfg.Config.protocol.Protocol.Config.shared_base;
      shared_hi =
        cfg.Config.protocol.Protocol.Config.shared_base
        + cfg.Config.protocol.Protocol.Config.shared_size;
      c_load =
        (if cfg.Config.checks_enabled then
           cfg.Config.checks.Config.access_cycles + cfg.Config.checks.Config.load_check_cycles
         else cfg.Config.checks.Config.access_cycles);
      c_store =
        (if cfg.Config.checks_enabled then
           cfg.Config.checks.Config.access_cycles + cfg.Config.checks.Config.store_check_cycles
         else cfg.Config.checks.Config.access_cycles);
      c_batched =
        cfg.Config.checks.Config.access_cycles + (if cfg.Config.checks_enabled then 1 else 0);
      acc_cycles = 0;
      blocked_time = 0.0;
      accesses = 0;
      on_access = None;
    }
  in
  let node = proc.Sim.Proc.cpu.Sim.Proc.node_id in
  proc.Sim.Proc.on_poll <- (fun _ -> E.service pcb +. Sync.service sync ~node);
  h

let pid h = h.proc.Sim.Proc.pid
let node h = h.proc.Sim.Proc.cpu.Sim.Proc.node_id

let trace_access h ~store addr w v =
  match h.on_access with
  | None -> ()
  | Some f ->
      f
        {
          acc_pid = pid h;
          acc_time = Sim.Engine.now (Mchan.Net.engine (E.net h.peng));
          acc_addr = addr;
          acc_width = w;
          acc_store = store;
          acc_value = v;
        }
let is_shared h addr = addr >= h.shared_lo && addr < h.shared_hi

(* The miss-flag bit pattern for a width, without recomputing the 64-bit
   replication per access. *)
let flag h (w : Alpha.Insn.width) =
  match w with Alpha.Insn.W32 -> h.flag_w32 | Alpha.Insn.W64 -> h.flag_w64

(** [layout h] — the region layout of the shared address space (block
    extents vary by region; consumers must not assume a fixed line). *)
let layout h = E.layout h.peng

(* --- private memory --- *)

let private_read h addr (w : Alpha.Insn.width) =
  match w with
  | Alpha.Insn.W32 -> Int64.of_int32 (Bytes.get_int32_le h.private_mem addr)
  | Alpha.Insn.W64 -> Bytes.get_int64_le h.private_mem addr

let private_write h addr (w : Alpha.Insn.width) v =
  match w with
  | Alpha.Insn.W32 -> Bytes.set_int32_le h.private_mem addr (Int64.to_int32 v)
  | Alpha.Insn.W64 -> Bytes.set_int64_le h.private_mem addr v

(* --- API mode: the inline-check state machine, in function form --- *)

(** [load h addr w] — a checked shared load: raw access, flag comparison,
    protocol slow path on a (possibly false) miss. *)
let load h addr w =
  h.accesses <- h.accesses + 1;
  if not (is_shared h addr) then begin
    charge_cycles h h.cfg.Config.checks.Config.access_cycles;
    private_read h addr w
  end
  else begin
    if h.cfg.Config.checks_enabled then
      charge_cycles h
        (h.cfg.Config.checks.Config.access_cycles + h.cfg.Config.checks.Config.load_check_cycles)
    else charge_cycles h h.cfg.Config.checks.Config.access_cycles;
    let v0 = E.raw_read h.pcb addr w in
    let v =
      if v0 = flag h w then
        in_protocol h (fun () -> E.load_miss h.pcb addr w)
      else v0
    in
    trace_access h ~store:false addr w v;
    v
  end

(** [store h addr w v] — a checked shared store. *)
let store h addr w v =
  h.accesses <- h.accesses + 1;
  if not (is_shared h addr) then begin
    charge_cycles h h.cfg.Config.checks.Config.access_cycles;
    private_write h addr w v
  end
  else begin
    if h.cfg.Config.checks_enabled then
      charge_cycles h
        (h.cfg.Config.checks.Config.access_cycles + h.cfg.Config.checks.Config.store_check_cycles)
    else charge_cycles h h.cfg.Config.checks.Config.access_cycles;
    (match E.private_state h.pcb addr with
    | Protocol.Ptypes.Exclusive -> ()
    | Protocol.Ptypes.Invalid | Protocol.Ptypes.Shared | Protocol.Ptypes.Pending ->
        in_protocol h (fun () -> E.store_miss h.pcb addr));
    E.raw_write h.pcb addr w v;
    trace_access h ~store:true addr w v
  end

(** [load_batched h addr w] — a load whose check was covered by a
    preceding batched check (Section 2.2): the amortised inline cost is
    about one cycle, but the flag comparison is still performed so a
    line invalidated after the batch is refetched rather than misread. *)
let load_batched h addr w =
  h.accesses <- h.accesses + 1;
  charge_cycles h (h.cfg.Config.checks.Config.access_cycles + if h.cfg.Config.checks_enabled then 1 else 0);
  if not (is_shared h addr) then private_read h addr w
  else begin
    let v0 = E.raw_read h.pcb addr w in
    let v =
      if v0 = flag h w then
        in_protocol h (fun () -> E.load_miss h.pcb addr w)
      else v0
    in
    trace_access h ~store:false addr w v;
    v
  end

(** [store_batched h addr w v] — a store whose check was covered by a
    preceding batched check; same coherence actions, amortised cost. *)
let store_batched h addr w v =
  h.accesses <- h.accesses + 1;
  charge_cycles h (h.cfg.Config.checks.Config.access_cycles + if h.cfg.Config.checks_enabled then 1 else 0);
  if not (is_shared h addr) then private_write h addr w v
  else begin
    (match E.private_state h.pcb addr with
    | Protocol.Ptypes.Exclusive -> ()
    | Protocol.Ptypes.Invalid | Protocol.Ptypes.Shared | Protocol.Ptypes.Pending ->
        in_protocol h (fun () -> E.store_miss h.pcb addr));
    E.raw_write h.pcb addr w v;
    trace_access h ~store:true addr w v
  end

(* --- width-specialised 64-bit paths ---

   Behaviourally identical to the generic functions at [W64]; they skip
   the width dispatch, read/write the image without the boxed-width
   detour, and avoid the block lookup on the raw store.  The array-based
   workloads do almost all their shared traffic through these. *)

let load64 h addr =
  h.accesses <- h.accesses + 1;
  if not (is_shared h addr) then begin
    charge_cycles h h.cfg.Config.checks.Config.access_cycles;
    Bytes.get_int64_le h.private_mem addr
  end
  else begin
    charge_cycles h h.c_load;
    let v0 = Protocol.Memimg.read64 h.img addr in
    let v =
      if v0 = h.flag_w64 then in_protocol h (fun () -> E.load_miss h.pcb addr Alpha.Insn.W64)
      else v0
    in
    trace_access h ~store:false addr Alpha.Insn.W64 v;
    v
  end

let store64 h addr v =
  h.accesses <- h.accesses + 1;
  if not (is_shared h addr) then begin
    charge_cycles h h.cfg.Config.checks.Config.access_cycles;
    Bytes.set_int64_le h.private_mem addr v
  end
  else begin
    charge_cycles h h.c_store;
    (match E.private_state h.pcb addr with
    | Protocol.Ptypes.Exclusive -> ()
    | Protocol.Ptypes.Invalid | Protocol.Ptypes.Shared | Protocol.Ptypes.Pending ->
        in_protocol h (fun () -> E.store_miss h.pcb addr));
    E.raw_write64 h.pcb addr v;
    trace_access h ~store:true addr Alpha.Insn.W64 v
  end

let load64_batched h addr =
  h.accesses <- h.accesses + 1;
  charge_cycles h h.c_batched;
  if not (is_shared h addr) then Bytes.get_int64_le h.private_mem addr
  else begin
    let v0 = Protocol.Memimg.read64 h.img addr in
    let v =
      if v0 = h.flag_w64 then in_protocol h (fun () -> E.load_miss h.pcb addr Alpha.Insn.W64)
      else v0
    in
    trace_access h ~store:false addr Alpha.Insn.W64 v;
    v
  end

let store64_batched h addr v =
  h.accesses <- h.accesses + 1;
  charge_cycles h h.c_batched;
  if not (is_shared h addr) then Bytes.set_int64_le h.private_mem addr v
  else begin
    (match E.private_state h.pcb addr with
    | Protocol.Ptypes.Exclusive -> ()
    | Protocol.Ptypes.Invalid | Protocol.Ptypes.Shared | Protocol.Ptypes.Pending ->
        in_protocol h (fun () -> E.store_miss h.pcb addr));
    E.raw_write64 h.pcb addr v;
    trace_access h ~store:true addr Alpha.Insn.W64 v
  end

let load_int h addr = Int64.to_int (load64 h addr)
let store_int h addr v = store64 h addr (Int64.of_int v)
let load_float h addr = Int64.float_of_bits (load64 h addr)
let store_float h addr v = store64 h addr (Int64.bits_of_float v)

(** [work h seconds] — application compute time (polls run inside). *)
let work h seconds =
  flush h;
  if h.cfg.Config.checks_enabled then
    (* Residual checking overhead on private data and polls, folded into
       compute time as a small multiplier; the dominant overheads are the
       per-shared-access charges above. *)
    Sim.Proc.work (seconds *. 1.02)
  else Sim.Proc.work seconds

let work_cycles h n = charge_cycles h n

(** [mb h] — memory barrier: the hardware cost (~0.03 us on the 21164)
    plus, when running under Shasta, the inserted protocol fence. *)
let mb h =
  charge_cycles h 9;
  if h.cfg.Config.checks_enabled then in_protocol h (fun () -> E.mb h.pcb)
  else if h.pcb.E.n_outstanding_stores > 0 then in_protocol h (fun () -> E.mb h.pcb)

(* The inline part of a batched check: all lines already in the needed
   state in the private table.  Runs without suspension, so the decision
   cannot go stale before the batched code that follows. *)
let batch_fast_path h accesses =
  List.for_all
    (fun (addr, _w, kind) ->
      match E.private_state h.pcb addr with
      | Protocol.Ptypes.Exclusive -> true
      | Protocol.Ptypes.Shared -> kind = Alpha.Insn.Load_acc
      | Protocol.Ptypes.Invalid | Protocol.Ptypes.Pending -> false)
    accesses

(** [batch h accesses] — the combined check for a run of accesses, then
    the accesses themselves.  Like the inserted inline code, the check
    itself is cheap and the protocol is entered only when some line is
    not in the needed state (Section 2.2). *)
let batch h accesses =
  if h.cfg.Config.checks_enabled then
    charge_cycles h (2 + (2 * List.length accesses));
  let shared = List.filter (fun (addr, _, _) -> is_shared h addr) accesses in
  if shared <> [] && not (batch_fast_path h shared) then
    in_protocol h (fun () -> E.batch h.pcb shared)

(* --- MP synchronisation --- *)

let lock h id = in_protocol h (fun () -> Sync.acquire h.sync h.ep id)

(* Release semantics: a lock release or barrier arrival must make every
   outstanding (non-blocking) store globally performed first, exactly as
   the MB in an LL/SC unlock sequence would. *)
let unlock h id =
  in_protocol h (fun () ->
      E.mb h.pcb;
      Sync.release h.sync h.ep id)

let barrier h ~id ~parties =
  in_protocol h (fun () ->
      E.mb h.pcb;
      Sync.barrier h.sync h.ep ~id ~parties)

(* --- transparent (shared-memory) synchronisation via LL/SC --- *)

(* Reclassify protocol stalls incurred inside [f] as synchronisation
   time, the way the paper accounts lock/barrier cost. *)
let as_sync h f =
  let st = E.stats h.pcb in
  let r0 = st.E.read_stall and w0 = st.E.write_stall in
  let r = f () in
  let dr = st.E.read_stall -. r0 and dw = st.E.write_stall -. w0 in
  st.E.read_stall <- r0;
  st.E.write_stall <- w0;
  h.ep.Sync.sync_stall <- h.ep.Sync.sync_stall +. dr +. dw;
  r

(** [atomic_add h addr delta] — LL/SC fetch-and-add through the full
    transparent path (inline checks, prefetch-free).  Returns the old
    value. *)
let atomic_add h addr delta =
  let rec attempt () =
    charge_cycles h (3 + 2) (* ll_check + ll *);
    in_protocol h (fun () -> E.ll_ensure h.pcb addr);
    let v = E.raw_ll h.pcb addr Alpha.Insn.W64 in
    trace_access h ~store:false addr Alpha.Insn.W64 v;
    let v' = Int64.add v (Int64.of_int delta) in
    charge_cycles h (4 + 2) (* sc_check + sc *);
    let ok =
      match in_protocol h (fun () -> E.sc_check h.pcb addr Alpha.Insn.W64 v') with
      | Alpha.Runtime.Run_in_hardware -> E.raw_sc h.pcb addr Alpha.Insn.W64 v'
      | Alpha.Runtime.Handled ok -> ok
    in
    if ok then begin
      trace_access h ~store:true addr Alpha.Insn.W64 v';
      Int64.to_int v
    end
    else attempt ()
  in
  attempt ()

(** [sm_lock h addr] — acquire a spin lock at shared address [addr] with
    LL/SC, exactly the Figure 1 loop (with the optional prefetch-
    exclusive of Section 3.1.2 controlled by [prefetch]).  Ends with the
    MB of a lock acquire. *)
let sm_lock ?(prefetch = false) h addr =
  as_sync h (fun () ->
      if prefetch then begin
        charge_cycles h 2;
        in_protocol h (fun () -> E.prefetch_excl h.pcb addr)
      end;
      let pause = ref 2.0e-7 in
      let rec try_again () =
        charge_cycles h (3 + 2);
        in_protocol h (fun () -> E.ll_ensure h.pcb addr);
        let v = E.raw_ll h.pcb addr Alpha.Insn.W32 in
        trace_access h ~store:false addr Alpha.Insn.W32 v;
        if v <> 0L then begin
          (* Lock taken: spin, polling (the loop's inserted poll).  The
             pause backs off to bound the simulator's event rate; the
             added wake latency is well under the protocol round trip. *)
          charge_cycles h h.cfg.Config.checks.Config.poll_cycles;
          flush h;
          Sim.Proc.work !pause;
          pause := Float.min (2.0 *. !pause) 2.0e-6;
          try_again ()
        end
        else begin
          charge_cycles h (4 + 2);
          let ok =
            match in_protocol h (fun () -> E.sc_check h.pcb addr Alpha.Insn.W32 1L) with
            | Alpha.Runtime.Run_in_hardware -> E.raw_sc h.pcb addr Alpha.Insn.W32 1L
            | Alpha.Runtime.Handled ok -> ok
          in
          if ok then trace_access h ~store:true addr Alpha.Insn.W32 1L
          else try_again ()
        end
      in
      try_again ();
      mb h)

(** [sm_unlock h addr] — release: MB then an ordinary store of zero. *)
let sm_unlock h addr =
  mb h;
  store h addr Alpha.Insn.W32 0L

(** [sm_barrier h ~addr ~parties] — transparent barrier: an atomically
    incremented count (this is what makes Ocean's frequent barriers
    contended in Figure 3) and a generation word spun upon. *)
let sm_barrier h ~addr ~parties =
  as_sync h (fun () ->
      let gen_addr = addr + 8 in
      let my_gen = load h gen_addr Alpha.Insn.W64 in
      let c = atomic_add h addr 1 in
      if c + 1 = parties then begin
        store h addr Alpha.Insn.W64 0L;
        mb h;
        store h gen_addr Alpha.Insn.W64 (Int64.add my_gen 1L);
        mb h
      end
      else begin
        let pause = ref 3.0e-7 in
        let rec spin () =
          if load h gen_addr Alpha.Insn.W64 = my_gen then begin
            charge_cycles h h.cfg.Config.checks.Config.poll_cycles;
            flush h;
            Sim.Proc.work !pause;
            pause := Float.min (2.0 *. !pause) 2.0e-6;
            spin ()
          end
        in
        spin ()
      end)

(* --- blocking (for the OS layer) --- *)

(** [block_for h dt] — the process is blocked (in a syscall or on I/O)
    for [dt] seconds; counted in the "blocked" breakdown category. *)
let block_for h dt =
  flush h;
  h.blocked_time <- h.blocked_time +. dt;
  in_protocol h (fun () -> Sim.Proc.sleep dt)

(** [block_until h pred] — block until [pred] holds (checked when the
    process is explicitly woken). *)
let wakeup h = Sim.Proc.wakeup h.proc

let block h =
  let eng = Mchan.Net.engine (E.net h.peng) in
  let t0 = Sim.Engine.now eng in
  flush h;
  in_protocol h (fun () -> Sim.Proc.block ());
  h.blocked_time <- h.blocked_time +. (Sim.Engine.now eng -. t0)

(* --- measurement --- *)

let breakdown h =
  let st = E.stats h.pcb in
  {
    Breakdown.task = h.proc.Sim.Proc.work_time;
    read = st.E.read_stall;
    write = st.E.write_stall;
    mb = st.E.mb_stall;
    sync = h.ep.Sync.sync_stall;
    blocked = h.blocked_time;
    msg = h.proc.Sim.Proc.msg_time;
  }

let pstats h = E.stats h.pcb

(** Shared loads+stores this process issued in API mode. *)
let accesses h = h.accesses

(** [home_of h addr] — the current home domain of the block covering
    [addr]: the static placement until a migration policy moves it. *)
let home_of h addr =
  E.home_domain_of_block h.peng (Protocol.Layout.block_of_addr (E.layout h.peng) addr)

(** Requests this process re-issued after a bounce off a stale home. *)
let bounces h = (E.stats h.pcb).E.bounces

(* --- IR mode --- *)

(** [alpha_runtime h] — the machine interface for interpreter execution:
    raw accesses hit the node image (or private memory); the pseudo-
    instruction callbacks enter the protocol. *)
let alpha_runtime h =
  let dispatch_read addr w =
    if is_shared h addr then E.raw_read h.pcb addr w else private_read h addr w
  in
  let dispatch_write addr w v =
    if is_shared h addr then E.raw_write h.pcb addr w v else private_write h addr w v
  in
  {
    Alpha.Runtime.hz = h.cfg.Config.cpu_hz;
    load = dispatch_read;
    store = dispatch_write;
    load_check =
      (fun value addr w ->
        if is_shared h addr && value = flag h w then
          in_protocol h (fun () -> E.load_miss h.pcb addr w)
        else value);
    store_check =
      (fun addr _w ->
        if is_shared h addr then
          match E.private_state h.pcb addr with
          | Protocol.Ptypes.Exclusive -> ()
          | Protocol.Ptypes.Invalid | Protocol.Ptypes.Shared | Protocol.Ptypes.Pending ->
              in_protocol h (fun () -> E.store_miss h.pcb addr));
    batch_check =
      (fun accesses ->
        let shared = List.filter (fun (a, _, _) -> is_shared h a) accesses in
        if shared <> [] && not (batch_fast_path h shared) then
          in_protocol h (fun () -> E.batch h.pcb shared));
    ll =
      (fun addr w ->
        if is_shared h addr then E.raw_ll h.pcb addr w else private_read h addr w);
    sc =
      (fun addr w v ->
        if is_shared h addr then E.raw_sc h.pcb addr w v
        else begin
          private_write h addr w v;
          true
        end);
    ll_check =
      (fun addr -> if is_shared h addr then in_protocol h (fun () -> E.ll_ensure h.pcb addr));
    sc_check =
      (fun addr w v ->
        if is_shared h addr then in_protocol h (fun () -> E.sc_check h.pcb addr w v)
        else Alpha.Runtime.Run_in_hardware);
    mb = (fun () -> ());
    mb_check = (fun () -> in_protocol h (fun () -> E.mb h.pcb));
    poll = (fun () -> in_protocol h (fun () -> E.poll h.pcb));
    prefetch_excl =
      (fun addr -> if is_shared h addr then in_protocol h (fun () -> E.prefetch_excl h.pcb addr));
    charge = (fun n -> charge_cycles h n);
    (* MP synchronisation system calls (lock id in a0; barrier id in
       a0, parties in a1) — the IR-mode twin of [lock]/[unlock]/
       [barrier] above, sharing their release/fence semantics. *)
    syscall =
      (fun name regs ->
        let a0 = Int64.to_int regs.(16) and a1 = Int64.to_int regs.(17) in
        if name = Alpha.Runtime.sync_lock_proc then begin
          lock h a0;
          true
        end
        else if name = Alpha.Runtime.sync_unlock_proc then begin
          unlock h a0;
          true
        end
        else if name = Alpha.Runtime.sync_barrier_proc then begin
          barrier h ~id:a0 ~parties:a1;
          true
        end
        else false);
  }

(** [run_program h program ~entry ?args ()] — execute an (instrumented)
    program on this process. *)
let run_program ?max_steps h program ~entry ?args () =
  let rt = alpha_runtime h in
  let outcome = Alpha.Interp.run ?max_steps program rt ~entry ?args () in
  flush h;
  outcome
