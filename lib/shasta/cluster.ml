(** Cluster setup and run control.

    [create] builds the network, the protocol engine and the sync layer;
    [spawn] starts Shasta processes on chosen processors; [init]
    finalises memory layout; [run] drives the simulation to completion.

    Spawned processes keep serving protocol requests after their
    application code finishes, until every spawned process is done —
    exactly the behaviour of Section 4.3.3, where a terminated Shasta
    process "remains alive and continues to serve requests for its
    protocol and application data". *)

(* One bump cursor per layout region, with fragmentation accounting:
   [ra_used] counts cursor advance (data + alignment padding), so
   [ra_used - ra_requested] is the padding lost to block alignment. *)
type region_alloc = {
  mutable ra_next : int;
  mutable ra_requested : int;
  mutable ra_used : int;
  mutable ra_allocs : int;
}

type t = {
  cfg : Config.t;
  net : Mchan.Net.t;
  peng : Protocol.Engine.t;
  sync : Sync.t;
  mutable procs : (Sim.Proc.t * Runtime.t * bool) list;  (* proc, runtime, serve *)
  mutable n_app : int;
  done_count : int Atomic.t;  (** bumped from any lane in parallel mode *)
  allocs : region_alloc array;
  mutable initialized : bool;
  mutable started_at : float;
}

let create cfg =
  let net =
    Mchan.Net.create ~plan:cfg.Config.fault_plan ~schedule:cfg.Config.schedule
      cfg.Config.net
  in
  let peng = Protocol.Engine.create ~cfg:cfg.Config.protocol ~net in
  let sync = Sync.create ~net ~costs:cfg.Config.protocol.Protocol.Config.costs in
  let layout = Protocol.Engine.layout peng in
  {
    cfg;
    net;
    peng;
    sync;
    procs = [];
    n_app = 0;
    done_count = Atomic.make 0;
    allocs =
      Array.init (Protocol.Layout.n_regions layout) (fun ri ->
          let r = Protocol.Layout.region layout ri in
          { ra_next = r.Protocol.Layout.r_base; ra_requested = 0; ra_used = 0; ra_allocs = 0 });
    initialized = false;
    started_at = 0.0;
  }

let sim t = Mchan.Net.engine t.net
let now t = Sim.Engine.now (sim t)
let protocol_engine t = t.peng

exception Out_of_shared of { requested : int; region : string }

let () =
  Printexc.register_printer (function
    | Out_of_shared { requested; region } ->
        Some
          (Printf.sprintf "Shasta.Cluster.Out_of_shared (%d bytes in region %S)" requested
             region)
    | _ -> None)

(** [alloc t ?align ?granularity bytes] — bump allocator over the shared
    address space, one cursor per layout region.

    [granularity] is a hint in bytes: the allocation is placed in the
    region whose coherence block size is closest to it (exact match
    preferred), so callers ask for fine blocks for locks and task queues
    and coarse blocks for bulk arrays without knowing the layout.
    Without a hint the first region is used.  The default alignment is
    the chosen region's block size, so no allocation straddles a
    coherence block it doesn't fully occupy.  Raises {!Out_of_shared}
    when the region's remaining space cannot hold the request. *)
let alloc ?align ?granularity t bytes =
  let layout = Protocol.Engine.layout t.peng in
  let ri =
    match granularity with
    | None -> 0
    | Some g -> Protocol.Layout.region_matching layout ~block:g
  in
  let r = Protocol.Layout.region layout ri in
  let ra = t.allocs.(ri) in
  let align = match align with Some a -> a | None -> r.Protocol.Layout.r_block in
  let a = (ra.ra_next + align - 1) / align * align in
  if a + bytes > r.Protocol.Layout.r_base + r.Protocol.Layout.r_size then
    raise (Out_of_shared { requested = bytes; region = r.Protocol.Layout.r_name });
  ra.ra_requested <- ra.ra_requested + bytes;
  ra.ra_used <- ra.ra_used + (a + bytes - ra.ra_next);
  ra.ra_allocs <- ra.ra_allocs + 1;
  ra.ra_next <- a + bytes;
  a

let pulse_all t =
  for n = 0 to t.cfg.Config.net.Mchan.Net.nodes - 1 do
    Sim.Signal.pulse (Mchan.Net.node_signal t.net n)
  done

(** [spawn t ~cpu name body] — start a Shasta process on global processor
    [cpu].  [serve] (default true) keeps the process alive serving
    protocol traffic after [body] returns, until all spawned processes
    are done. *)
let spawn ?(serve = true) ?(priority = 0) t ~cpu name body =
  let cpu_t = Mchan.Net.nth_cpu t.net cpu in
  let handle = ref None in
  if serve then t.n_app <- t.n_app + 1;
  let proc =
    Sim.Proc.spawn ~priority ~name cpu_t (fun () ->
        let h = Option.get !handle in
        body h;
        Runtime.flush h;
        (* Outstanding non-blocking stores must be globally performed
           before this process counts as done, or the cluster could
           quiesce with a miss still in flight. *)
        Runtime.mb h;
        if serve then begin
          Atomic.incr t.done_count;
          pulse_all t;
          (* The post-exit serve loop is idle work: cede the CPU to any
             still-running application process. *)
          (Sim.Proc.self ()).Sim.Proc.yield_waiting <- true;
          Sim.Proc.stall (fun () -> Atomic.get t.done_count >= t.n_app)
        end)
  in
  let h = Runtime.create ~cfg:t.cfg ~peng:t.peng ~sync:t.sync proc in
  handle := Some h;
  t.procs <- (proc, h, serve) :: t.procs;
  h

let init ?homes t =
  if not t.initialized then begin
    t.initialized <- true;
    Protocol.Engine.init ?homes t.peng;
    t.started_at <- now t
  end

exception Worker_failed of string * exn

(* The conservative parallel mode only covers the exact, perfectly
   reliable, statically homed configuration — every excluded feature
   either shares mutable state across nodes (coalescing batches,
   per-message invariant sweeps, migrating directory entries) or has no
   meaning once the global tie-set is split across lanes (non-Fifo
   schedules, fault plans with their retransmit timers). *)
let check_parallel_config cfg =
  let bad what = invalid_arg ("Shasta.Cluster.run: parallel mode excludes " ^ what) in
  (match cfg.Config.schedule with Sim.Engine.Fifo -> () | _ -> bad "non-Fifo schedules");
  if not (Fault.Plan.is_empty cfg.Config.fault_plan) then bad "fault plans";
  if cfg.Config.net.Mchan.Net.coalescing <> None then bad "message coalescing";
  if cfg.Config.protocol.Protocol.Config.homing <> Protocol.Config.Static then
    bad "home migration";
  if cfg.Config.protocol.Protocol.Config.check_invariants then
    bad "per-message invariant checks (use check_quiescent after the run)"

(** [run t] — run the simulation until quiescence (or [until]); re-raises
    the first worker failure.  Returns elapsed virtual time since
    [init].  With [cfg.parallel > 1] the run uses the conservative
    parallel engine: per-node event lanes on real domains with the
    Memory Channel one-way latency as the lookahead window. *)
let run ?(until = 3600.0) t =
  init t;
  let domains = t.cfg.Config.parallel in
  if domains > 1 then begin
    check_parallel_config t.cfg;
    ignore
      (Sim.Par.run ~until ~domains
         ~lookahead:t.cfg.Config.net.Mchan.Net.one_way_latency (sim t)
         ~nodes:t.cfg.Config.net.Mchan.Net.nodes)
  end
  else ignore (Sim.Engine.run ~until (sim t));
  List.iter
    (fun ((p : Sim.Proc.t), _, _) ->
      match p.Sim.Proc.failure with
      | Some e -> raise (Worker_failed (p.Sim.Proc.name, e))
      | None -> ())
    t.procs;
  now t -. t.started_at

(** [reliable t] — the fault-tolerant transport, when a fault plan is
    active ([None] on a perfectly-reliable channel). *)
let reliable t = Mchan.Net.reliable t.net

(** [pp_fault_report ppf t] — end-of-run per-link fault and retransmit
    counters; prints nothing without an active fault plan. *)
let pp_fault_report ppf t =
  match reliable t with
  | None -> ()
  | Some r -> Format.fprintf ppf "%a@." Mchan.Reliable.pp_report r

(** [pp_layout_report ppf t] — per-region coherence counters (misses,
    invalidations, recalls, data traffic) followed by the shared-heap
    allocator's fragmentation figures ([frag%] is alignment padding as a
    share of the bytes consumed). *)
let pp_layout_report ppf t =
  Protocol.Engine.pp_layout_report ppf t.peng;
  let layout = Protocol.Engine.layout t.peng in
  Format.fprintf ppf "  %-10s %8s %10s %10s %6s@." "region" "allocs" "requested" "used"
    "frag%";
  for ri = 0 to Protocol.Layout.n_regions layout - 1 do
    let r = Protocol.Layout.region layout ri in
    let ra = t.allocs.(ri) in
    let frag =
      if ra.ra_used = 0 then 0.0
      else 100.0 *. float_of_int (ra.ra_used - ra.ra_requested) /. float_of_int ra.ra_used
    in
    Format.fprintf ppf "  %-10s %8d %10d %10d %5.1f%%@." r.Protocol.Layout.r_name ra.ra_allocs
      ra.ra_requested ra.ra_used frag
  done

let runtimes t = List.rev_map (fun (_, h, _) -> h) t.procs

(** [app_runtimes t] — runtimes of application processes only ([spawn]
    with [serve] left true), excluding daemon-style processes spawned
    [~serve:false] (kernel slots, protocol pollers) that by design never
    finish — a deadlock sweep must not flag those. *)
let app_runtimes t =
  List.rev (List.filter_map (fun (_, h, serve) -> if serve then Some h else None) t.procs)

(** [total_breakdown t] — sum of all per-process breakdowns. *)
let total_breakdown t =
  List.fold_left
    (fun acc h -> Breakdown.add acc (Runtime.breakdown h))
    (Breakdown.empty ()) (runtimes t)

(** [per_node_breakdowns t] — breakdown sums grouped by node, so a
    serving run can show where each node's time went (a node hosting
    only clients idles; a node hosting the daemons pays in messages). *)
let per_node_breakdowns t =
  let acc =
    Array.init t.cfg.Config.net.Mchan.Net.nodes (fun _ -> Breakdown.empty ())
  in
  List.iter
    (fun h ->
      let n = Runtime.node h in
      acc.(n) <- Breakdown.add acc.(n) (Runtime.breakdown h))
    (runtimes t);
  acc

(** [migration_stats t] — cluster-wide (migrations installed, requests
    bounced, transfers still in flight); all zero under static homing. *)
let migration_stats t = Protocol.Engine.migration_stats t.peng

(** [migration_by_node t] — per-node home-migration counters. *)
let migration_by_node t =
  Array.map
    (fun (mig_in, mig_out, mig_bounces) -> { Breakdown.mig_in; mig_out; mig_bounces })
    (Protocol.Engine.migration_by_node t.peng)

(** [pp_node_report ppf t] — one line of busy/stall/message time per
    node; under an active migration policy each line also carries that
    node's home-migration counters (omitted when all zero, so static
    runs print exactly as before). *)
let pp_node_report ppf t =
  let migs = migration_by_node t in
  let show_migs = Breakdown.migration_active migs in
  Array.iteri
    (fun n b ->
      Format.fprintf ppf "  node %d: task %.3fms read %.3fms write %.3fms sync %.3fms blocked %.3fms msg %.3fms"
        n (1e3 *. b.Breakdown.task) (1e3 *. b.Breakdown.read) (1e3 *. b.Breakdown.write)
        (1e3 *. b.Breakdown.sync) (1e3 *. b.Breakdown.blocked) (1e3 *. b.Breakdown.msg);
      if show_migs then Format.fprintf ppf " %a" Breakdown.pp_migration migs.(n);
      Format.fprintf ppf "@.")
    (per_node_breakdowns t)
