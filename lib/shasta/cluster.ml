(** Cluster setup and run control.

    [create] builds the network, the protocol engine and the sync layer;
    [spawn] starts Shasta processes on chosen processors; [init]
    finalises memory layout; [run] drives the simulation to completion.

    Spawned processes keep serving protocol requests after their
    application code finishes, until every spawned process is done —
    exactly the behaviour of Section 4.3.3, where a terminated Shasta
    process "remains alive and continues to serve requests for its
    protocol and application data". *)

type t = {
  cfg : Config.t;
  net : Mchan.Net.t;
  peng : Protocol.Engine.t;
  sync : Sync.t;
  mutable procs : (Sim.Proc.t * Runtime.t) list;
  mutable n_app : int;
  done_count : int ref;
  mutable alloc_next : int;
  mutable initialized : bool;
  mutable started_at : float;
}

let create cfg =
  let net =
    Mchan.Net.create ~plan:cfg.Config.fault_plan ~schedule:cfg.Config.schedule
      cfg.Config.net
  in
  let peng = Protocol.Engine.create ~cfg:cfg.Config.protocol ~net in
  let sync = Sync.create ~net ~costs:cfg.Config.protocol.Protocol.Config.costs in
  {
    cfg;
    net;
    peng;
    sync;
    procs = [];
    n_app = 0;
    done_count = ref 0;
    alloc_next = cfg.Config.protocol.Protocol.Config.shared_base;
    initialized = false;
    started_at = 0.0;
  }

let sim t = Mchan.Net.engine t.net
let now t = Sim.Engine.now (sim t)
let protocol_engine t = t.peng

(** [alloc t ?align bytes] — bump allocator over the shared region (the
    equivalent of the application's shared heap). *)
let alloc ?(align = 64) t bytes =
  let a = (t.alloc_next + align - 1) / align * align in
  let limit =
    t.cfg.Config.protocol.Protocol.Config.shared_base
    + t.cfg.Config.protocol.Protocol.Config.shared_size
  in
  if a + bytes > limit then failwith "Cluster.alloc: shared region exhausted";
  t.alloc_next <- a + bytes;
  a

let pulse_all t =
  for n = 0 to t.cfg.Config.net.Mchan.Net.nodes - 1 do
    Sim.Signal.pulse (Mchan.Net.node_signal t.net n)
  done

(** [spawn t ~cpu name body] — start a Shasta process on global processor
    [cpu].  [serve] (default true) keeps the process alive serving
    protocol traffic after [body] returns, until all spawned processes
    are done. *)
let spawn ?(serve = true) ?(priority = 0) t ~cpu name body =
  let cpu_t = Mchan.Net.nth_cpu t.net cpu in
  let handle = ref None in
  if serve then t.n_app <- t.n_app + 1;
  let proc =
    Sim.Proc.spawn ~priority ~name cpu_t (fun () ->
        let h = Option.get !handle in
        body h;
        Runtime.flush h;
        (* Outstanding non-blocking stores must be globally performed
           before this process counts as done, or the cluster could
           quiesce with a miss still in flight. *)
        Runtime.mb h;
        if serve then begin
          incr t.done_count;
          pulse_all t;
          (* The post-exit serve loop is idle work: cede the CPU to any
             still-running application process. *)
          (Sim.Proc.self ()).Sim.Proc.yield_waiting <- true;
          Sim.Proc.stall (fun () -> !(t.done_count) >= t.n_app)
        end)
  in
  let h = Runtime.create ~cfg:t.cfg ~peng:t.peng ~sync:t.sync proc in
  handle := Some h;
  t.procs <- (proc, h) :: t.procs;
  h

let init ?homes t =
  if not t.initialized then begin
    t.initialized <- true;
    Protocol.Engine.init ?homes t.peng;
    t.started_at <- now t
  end

exception Worker_failed of string * exn

(** [run t] — run the simulation until quiescence (or [until]); re-raises
    the first worker failure.  Returns elapsed virtual time since
    [init]. *)
let run ?(until = 3600.0) t =
  init t;
  ignore (Sim.Engine.run ~until (sim t));
  List.iter
    (fun ((p : Sim.Proc.t), _) ->
      match p.Sim.Proc.failure with
      | Some e -> raise (Worker_failed (p.Sim.Proc.name, e))
      | None -> ())
    t.procs;
  now t -. t.started_at

(** [reliable t] — the fault-tolerant transport, when a fault plan is
    active ([None] on a perfectly-reliable channel). *)
let reliable t = Mchan.Net.reliable t.net

(** [pp_fault_report ppf t] — end-of-run per-link fault and retransmit
    counters; prints nothing without an active fault plan. *)
let pp_fault_report ppf t =
  match reliable t with
  | None -> ()
  | Some r -> Format.fprintf ppf "%a@." Mchan.Reliable.pp_report r

let runtimes t = List.rev_map snd t.procs

(** [total_breakdown t] — sum of all per-process breakdowns. *)
let total_breakdown t =
  List.fold_left
    (fun acc h -> Breakdown.add acc (Runtime.breakdown h))
    (Breakdown.empty ()) (runtimes t)
