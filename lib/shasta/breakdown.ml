(** Per-process execution-time breakdowns (Figures 4 and 5).

    Categories follow the paper: time executing the application ("task"),
    time stalled for reads, for writes, waiting at memory barriers,
    synchronisation stalls (locks/barriers), time explicitly blocked
    (e.g. [pid_block] or I/O), and time handling messages while not
    stalled. *)

type t = {
  mutable task : float;
  mutable read : float;
  mutable write : float;
  mutable mb : float;
  mutable sync : float;
  mutable blocked : float;
  mutable msg : float;
}

let empty () =
  { task = 0.0; read = 0.0; write = 0.0; mb = 0.0; sync = 0.0; blocked = 0.0; msg = 0.0 }

let total b = b.task +. b.read +. b.write +. b.mb +. b.sync +. b.blocked +. b.msg

let add a b =
  {
    task = a.task +. b.task;
    read = a.read +. b.read;
    write = a.write +. b.write;
    mb = a.mb +. b.mb;
    sync = a.sync +. b.sync;
    blocked = a.blocked +. b.blocked;
    msg = a.msg +. b.msg;
  }

let scale k b =
  {
    task = k *. b.task;
    read = k *. b.read;
    write = k *. b.write;
    mb = k *. b.mb;
    sync = k *. b.sync;
    blocked = k *. b.blocked;
    msg = k *. b.msg;
  }

(** [normalize ~against b] expresses [b] as percentages of [against]'s
    total (the Figure 4/5 presentation, where one bar is 100%). *)
let normalize ~against b = scale (100.0 /. total against) b

let pp ppf b =
  Format.fprintf ppf
    "task=%.1f%% read=%.1f%% write=%.1f%% mb=%.1f%% sync=%.1f%% blocked=%.1f%% msg=%.1f%%" b.task
    b.read b.write b.mb b.sync b.blocked b.msg

let pp_seconds ppf b =
  Format.fprintf ppf
    "task=%a read=%a write=%a mb=%a sync=%a blocked=%a msg=%a (total %a)" Sim.Units.pp_time
    b.task Sim.Units.pp_time b.read Sim.Units.pp_time b.write Sim.Units.pp_time b.mb
    Sim.Units.pp_time b.sync Sim.Units.pp_time b.blocked Sim.Units.pp_time b.msg
    Sim.Units.pp_time (total b)

(* --- home-migration counters (sharded directory) --- *)

(** Per-node directory-migration activity: entries this node's domains
    received, entries they gave away, and requests its processes had
    bounced off a stale home.  All zero under static homing. *)
type migration = { mig_in : int; mig_out : int; mig_bounces : int }

let no_migration = { mig_in = 0; mig_out = 0; mig_bounces = 0 }

let migration_active ms =
  Array.exists (fun m -> m.mig_in + m.mig_out + m.mig_bounces > 0) ms

let pp_migration ppf m =
  Format.fprintf ppf "homes +%d/-%d bounces %d" m.mig_in m.mig_out m.mig_bounces
