(** Message-passing synchronisation (the "MP" locks and barriers of
    Section 6.2).

    These are the high-level primitives Shasta offers alongside the
    transparent LL/SC path: locks are queue-based — the manager hands the
    lock directly to the next waiter on release, which is why MP locks
    beat the shared-memory LL/SC locks under contention (Table 1) — and
    barriers are centralised with a broadcast release.

    Lock and barrier managers are distributed over the registered
    processes round-robin by id.  Messages travel over the same Memory
    Channel model as the coherence protocol and are serviced from a
    per-node mailbox by whichever local process polls first. *)

type msg =
  | Acquire of { lock : int; from : int }
  | Release of { lock : int }
  | Grant of { lock : int; to_pid : int }
  | Arrive of { barrier : int; from : int; parties : int }
  | Proceed of { barrier : int; to_pid : int; gen : int }

type lock_state = { mutable taken : bool; waiters : int Queue.t }

type barrier_state = { mutable gen : int; mutable arrived : int list }

type endpoint = {
  ep_pid : int;
  ep_node : int;
  granted : (int, unit) Hashtbl.t;
  reached_gen : (int, int) Hashtbl.t;  (** barrier -> last generation passed *)
  mutable next_gen : (int, int) Hashtbl.t;
  mutable sync_stall : float;  (** accumulated synchronisation stall time *)
}

type t = {
  net : Mchan.Net.t;
  costs : Protocol.Config.costs;
  node_box : msg Mchan.Mailbox.t array;
  mutable order : int list;  (** registration order (most recent first) *)
  mutable pids : int array;  (** [order] reversed, rebuilt on register *)
  eps : (int, endpoint) Hashtbl.t;
  (* Lock and barrier state tables are sharded by the manager's node:
     a given id's state lives in its manager node's table, so in
     parallel mode each table is only ever grown and mutated by that
     node's lane. *)
  locks : (int, lock_state) Hashtbl.t array;
  barriers : (int, barrier_state) Hashtbl.t array;
  messages_by_node : int array;  (** per sending node; accessor sums *)
}

let create ~net ~costs =
  let nodes = (Mchan.Net.config net).Mchan.Net.nodes in
  {
    net;
    costs;
    node_box = Array.init nodes (fun _ -> Mchan.Mailbox.create ~owner:(-1));
    order = [];
    pids = [||];
    eps = Hashtbl.create 32;
    locks = Array.init nodes (fun _ -> Hashtbl.create 16);
    barriers = Array.init nodes (fun _ -> Hashtbl.create 8);
    messages_by_node = Array.make nodes 0;
  }

let register t ~pid ~node =
  let ep =
    {
      ep_pid = pid;
      ep_node = node;
      granted = Hashtbl.create 8;
      reached_gen = Hashtbl.create 8;
      next_gen = Hashtbl.create 8;
      sync_stall = 0.0;
    }
  in
  Hashtbl.replace t.eps pid ep;
  t.order <- pid :: t.order;
  t.pids <- Array.of_list (List.rev t.order);
  ep

let endpoint t pid = Hashtbl.find t.eps pid

(** Managers are assigned round-robin over registration order. *)
let manager_of t id = t.pids.(id mod Array.length t.pids)

(* [node] must be the manager's node — the shard all of this id's state
   lives in (callers are either the servicing handler at that node or
   the manager's own fast path). *)
let lock_state t ~node l =
  let tbl = t.locks.(node) in
  match Hashtbl.find_opt tbl l with
  | Some s -> s
  | None ->
      let s = { taken = false; waiters = Queue.create () } in
      Hashtbl.replace tbl l s;
      s

let barrier_state t ~node b =
  let tbl = t.barriers.(node) in
  match Hashtbl.find_opt tbl b with
  | Some s -> s
  | None ->
      let s = { gen = 0; arrived = [] } in
      Hashtbl.replace tbl b s;
      s

let send t ~cur ~from_node msg ~to_node =
  t.messages_by_node.(from_node) <- t.messages_by_node.(from_node) + 1;
  Mchan.Net.send t.net ~at:!cur ~src_node:from_node ~dst_node:to_node ~size:32 (fun () ->
      Mchan.Mailbox.push t.node_box.(to_node) msg)

(* Message handlers run in poll (scheduler) context with a time cursor. *)
let handle t ~cur ~node msg =
  let c = t.costs.Protocol.Config.lock_acquire_queue in
  cur := !cur +. c;
  match msg with
  | Acquire { lock; from } ->
      let s = lock_state t ~node lock in
      if s.taken then Queue.push from s.waiters
      else begin
        s.taken <- true;
        let ep = endpoint t from in
        send t ~cur ~from_node:node (Grant { lock; to_pid = from }) ~to_node:ep.ep_node
      end
  | Release { lock } ->
      let s = lock_state t ~node lock in
      (match Queue.take_opt s.waiters with
      | Some next ->
          (* Queue-based handoff: the lock passes directly to the next
             waiter without going free. *)
          let ep = endpoint t next in
          send t ~cur ~from_node:node (Grant { lock; to_pid = next }) ~to_node:ep.ep_node
      | None -> s.taken <- false)
  | Grant { lock; to_pid } -> Hashtbl.replace (endpoint t to_pid).granted lock ()
  | Arrive { barrier; from; parties } ->
      let s = barrier_state t ~node barrier in
      s.arrived <- from :: s.arrived;
      if List.length s.arrived >= parties then begin
        s.gen <- s.gen + 1;
        let gen = s.gen in
        List.iter
          (fun pid ->
            let ep = endpoint t pid in
            send t ~cur ~from_node:node (Proceed { barrier; to_pid = pid; gen }) ~to_node:ep.ep_node)
          s.arrived;
        s.arrived <- []
      end
  | Proceed { barrier; to_pid; gen } ->
      Hashtbl.replace (endpoint t to_pid).reached_gen barrier gen

(** [service t ~node] drains the node's sync mailbox; returns CPU seconds
    consumed.  Called from the poll hook. *)
let service_slow t ~node =
  let start = Sim.Engine.now (Mchan.Net.engine t.net) in
  let cur = ref start in
  let rec drain () =
    match Mchan.Mailbox.pop t.node_box.(node) with
    | None -> ()
    | Some msg ->
        handle t ~cur ~node msg;
        drain ()
  in
  drain ();
  !cur -. start

(* Idle polls must not pay the drain's closure and ref allocations. *)
let service t ~node =
  if Mchan.Mailbox.is_empty t.node_box.(node) then 0.0 else service_slow t ~node

let stall_sync ep net pred =
  let eng = Mchan.Net.engine net in
  let t0 = Sim.Engine.now eng in
  Sim.Proc.stall pred;
  ep.sync_stall <- ep.sync_stall +. (Sim.Engine.now eng -. t0)

(* Fiber-side operations. *)

(** [acquire t ep lock] — acquire a queue-based MP lock.  The fast path
    (this process manages the lock and it is free) costs about one
    microsecond and no messages. *)
let acquire t ep lock =
  let mgr = manager_of t lock in
  if mgr = ep.ep_pid && not (lock_state t ~node:ep.ep_node lock).taken then begin
    (lock_state t ~node:ep.ep_node lock).taken <- true;
    Sim.Proc.work t.costs.Protocol.Config.lock_acquire_queue
  end
  else begin
    let cur = ref (Sim.Engine.now (Mchan.Net.engine t.net)) in
    send t ~cur ~from_node:ep.ep_node
      (Acquire { lock; from = ep.ep_pid })
      ~to_node:(endpoint t mgr).ep_node;
    Sim.Proc.work t.costs.Protocol.Config.send;
    stall_sync ep t.net (fun () -> Hashtbl.mem ep.granted lock);
    Hashtbl.remove ep.granted lock
  end

let release t ep lock =
  let mgr = manager_of t lock in
  if mgr = ep.ep_pid && Queue.is_empty (lock_state t ~node:ep.ep_node lock).waiters then begin
    (lock_state t ~node:ep.ep_node lock).taken <- false;
    Sim.Proc.work (t.costs.Protocol.Config.lock_acquire_queue /. 2.0)
  end
  else begin
    let cur = ref (Sim.Engine.now (Mchan.Net.engine t.net)) in
    send t ~cur ~from_node:ep.ep_node (Release { lock }) ~to_node:(endpoint t mgr).ep_node;
    Sim.Proc.work t.costs.Protocol.Config.send
  end

(** [barrier t ep ~id ~parties] — centralised sense-reversing barrier. *)
let barrier t ep ~id ~parties =
  let gen = Option.value (Hashtbl.find_opt ep.next_gen id) ~default:1 in
  Hashtbl.replace ep.next_gen id (gen + 1);
  let mgr = manager_of t id in
  let cur = ref (Sim.Engine.now (Mchan.Net.engine t.net)) in
  send t ~cur ~from_node:ep.ep_node
    (Arrive { barrier = id; from = ep.ep_pid; parties })
    ~to_node:(endpoint t mgr).ep_node;
  Sim.Proc.work t.costs.Protocol.Config.send;
  stall_sync ep t.net (fun () ->
      Option.value (Hashtbl.find_opt ep.reached_gen id) ~default:0 >= gen)

let messages t = Array.fold_left ( + ) 0 t.messages_by_node
