(** Discrete-event simulation core: a virtual clock and an event heap.

    Events are thunks fired in [(time, insertion-order)] order, so the
    whole simulation is deterministic.  Everything above this module
    (CPUs, processes, the network, the coherence protocol) is expressed
    as events.

    The event store is a flat structure-of-arrays binary heap: an
    unboxed [float array] of times, an [int array] of sequence numbers,
    and parallel payload arrays for labels and run thunks.  Firing an
    event under the default [Fifo] schedule allocates nothing; the other
    schedules reuse one array-based tie buffer across fires instead of
    building a list per tie-set.  Because [(time, seq)] keys are unique,
    the pop order is independent of the heap's internal layout, so this
    representation is bit-identical to the boxed heap it replaced.

    The [schedule] policy chosen at [create] controls how same-time ties
    are broken.  [Fifo] (the default) fires ties in insertion order and
    is bit-identical to the historical behaviour; the other policies
    exist for the model checker in [lib/check], which reruns scenarios
    under many legal schedules.

    Every event optionally carries a {!label} — who the event belongs to
    (a node), which coherence block it touches, and what kind of thing
    it is.  The labels change nothing about sequential execution; they
    exist so that a {!Guided} scheduler (the DPOR explorer) can see the
    dependency footprint of each runnable event, and so that the
    conservative parallel mode ({!Par}) can route each event to its
    node's lane.

    Parallel mode: {!par_install} splits the event store into per-node
    {e lanes}; while a lane is being driven (on a real domain, under
    {!Par.run}) the clock and [at]/[after] are lane-local, and an event
    scheduled onto a different node's lane is buffered and merged at the
    next lookahead-window barrier.  With [par = None] (the default)
    every code path below is exactly the sequential one. *)

(** What an event may touch, conservatively.  [-1] means "unknown /
    all": an unlabeled event must be treated as dependent with every
    other event. *)
type label = {
  lbl_node : int;  (** node whose local state the event mutates; -1 = unknown *)
  lbl_block : int;  (** coherence block the event touches; -1 = none *)
  lbl_kind : kind;
}

and kind =
  | Generic  (** unclassified (the conservative default) *)
  | Proc_step  (** a CPU scheduler step: dispatch, work slice, preempt timer *)
  | Message  (** a network message delivery at its destination node *)
  | Wakeup  (** a signal waiter waking a stalled process *)
  | Timer  (** a transport retransmit or other timeout *)

let no_label = { lbl_node = -1; lbl_block = -1; lbl_kind = Generic }

let kind_to_string = function
  | Generic -> "generic"
  | Proc_step -> "proc"
  | Message -> "msg"
  | Wakeup -> "wakeup"
  | Timer -> "timer"

let pp_label ppf l =
  Format.fprintf ppf "%s@n%d" (kind_to_string l.lbl_kind) l.lbl_node;
  if l.lbl_block >= 0 then Format.fprintf ppf "/b%d" l.lbl_block

(** [dependent a b] — may the firing order of two {e same-time} events
    affect the simulation?  Conservative: unknown labels conflict with
    everything; otherwise events conflict when they share a node (both
    mutate that node's scheduler/mailbox state) or a block (both touch
    that block's coherence state, possibly at different nodes).  Two
    events on different nodes touching no common block commute: each
    only mutates its own node's state and appends to the global event
    heap, and heap insertion order within a tie-set is itself a
    scheduling decision re-exposed at the next choice point. *)
let dependent a b =
  let unknown l = l.lbl_node < 0 && l.lbl_block < 0 in
  if unknown a || unknown b then true
  else
    (a.lbl_node >= 0 && a.lbl_node = b.lbl_node)
    || (a.lbl_block >= 0 && a.lbl_block = b.lbl_block)

(** A runnable event as presented to a {!Guided} scheduler: its
    footprint plus a stable identity ([ch_seq] is the insertion sequence
    number, unchanged when a deferred event is pushed back for the next
    choice point — so an explorer can track one event across the
    successive choice points of a tie group). *)
type choice = { ch_label : label; ch_seq : int }

type schedule =
  | Fifo  (** insertion order; the historical deterministic default *)
  | Seeded of int
      (** every same-time tie-set is permuted by a splitmix64 stream
          derived from the seed; a given seed is fully reproducible *)
  | Jittered of { seed : int; prob : float; max_delay : float }
      (** like [Seeded], plus each [at] independently delays the event
          by a uniform amount in [0, max_delay] with probability [prob]
          (delays only — events never fire earlier than requested) *)
  | Choose of (int -> int)
      (** [f n] picks which of the [n] currently-tied events fires next
          (entries are presented in insertion order); used for
          exhaustive exploration of small tie-sets.  Out-of-range
          answers fall back to index 0. *)
  | Guided of (choice array -> int)
      (** like [Choose], but the callback sees each candidate's identity
          and dependency footprint, and is consulted on {e every} fire —
          including singleton tie-sets — so an explorer can follow the
          full fired-event trace.  Out-of-range answers fall back to
          index 0. *)
  | Guided_jittered of {
      seed : int;
      prob : float;
      max_delay : float;
      choose : choice array -> int;
    }
      (** [Guided] plus [Jittered]-style seeded delay injection: lets a
          guided explorer search tie-break orders of runs whose message
          timing is itself perturbed (some races only open under a
          delay).  The delay stream is drawn per [at] call, so replaying
          the same choice prefix reproduces the same delays. *)

type sched_state =
  | S_fifo
  | S_seeded of Rng.t
  | S_jittered of { ties : Rng.t; delays : Rng.t; prob : float; max_delay : float }
  | S_choose of (int -> int)
  | S_guided of {
      choose : choice array -> int;
      delays : (Rng.t * float * float) option;  (* rng, prob, max_delay *)
    }

(* --- the flat event store --- *)

(* A structure-of-arrays binary min-heap over (time, seq) with label and
   run-thunk payload arrays.  Same layout and sift moves as {!Heap}, but
   monomorphic and with the entry record split across four arrays so
   that push/drop never allocate. *)
type eheap = {
  mutable q_time : float array;
  mutable q_seq : int array;
  mutable q_label : label array;
  mutable q_run : (unit -> unit) array;
  mutable q_size : int;
}

let nop () = ()

let q_create () =
  { q_time = [||]; q_seq = [||]; q_label = [||]; q_run = [||]; q_size = 0 }

let q_grow h =
  let cap = Array.length h.q_time in
  let cap' = if cap = 0 then 64 else cap * 2 in
  let time' = Array.make cap' 0.0 in
  let seq' = Array.make cap' 0 in
  let label' = Array.make cap' no_label in
  let run' = Array.make cap' nop in
  Array.blit h.q_time 0 time' 0 h.q_size;
  Array.blit h.q_seq 0 seq' 0 h.q_size;
  Array.blit h.q_label 0 label' 0 h.q_size;
  Array.blit h.q_run 0 run' 0 h.q_size;
  h.q_time <- time';
  h.q_seq <- seq';
  h.q_label <- label';
  h.q_run <- run'

let q_push h ~time ~seq ~label run =
  if h.q_size = Array.length h.q_time then q_grow h;
  let times = h.q_time and seqs = h.q_seq and labels = h.q_label and runs = h.q_run in
  (* Sift up by moving the hole; the new entry is written exactly once. *)
  let i = ref h.q_size in
  h.q_size <- h.q_size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < times.(p) || (time = times.(p) && seq < seqs.(p)) then begin
      times.(!i) <- times.(p);
      seqs.(!i) <- seqs.(p);
      labels.(!i) <- labels.(p);
      runs.(!i) <- runs.(p);
      i := p
    end
    else continue := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  labels.(!i) <- label;
  runs.(!i) <- run

(* Remove the minimum entry; callers read the root first.  The freed
   slot's run thunk is cleared so popped closures do not outlive their
   firing. *)
let q_drop h =
  h.q_size <- h.q_size - 1;
  let n = h.q_size in
  let times = h.q_time and seqs = h.q_seq and labels = h.q_label and runs = h.q_run in
  if n > 0 then begin
    let time = times.(n) and seq = seqs.(n) in
    let label = labels.(n) and run = runs.(n) in
    runs.(n) <- nop;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (times.(r) < times.(l) || (times.(r) = times.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        if times.(c) < time || (times.(c) = time && seqs.(c) < seq) then begin
          times.(!i) <- times.(c);
          seqs.(!i) <- seqs.(c);
          labels.(!i) <- labels.(c);
          runs.(!i) <- runs.(c);
          i := c
        end
        else continue := false
      end
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    labels.(!i) <- label;
    runs.(!i) <- run
  end
  else runs.(0) <- nop

(* --- per-node lanes for the conservative parallel mode --- *)

(* An event scheduled from one lane onto another; buffered on the source
   lane and merged (in deterministic (time, src, src_seq) order) at the
   next window barrier.  [x_src_seq] is drawn from the source lane's own
   insertion counter, so the merge order is a pure function of each
   lane's deterministic execution. *)
type cross = {
  x_dst : int;
  x_time : float;
  x_src : int;
  x_src_seq : int;
  x_label : label;
  x_run : unit -> unit;
}

type lane = {
  l_id : int;  (** the node this lane belongs to *)
  l_heap : eheap;
  mutable l_now : float;
  mutable l_seq : int;
  mutable l_fired : int;
  mutable l_out : cross list;  (** cross-lane pushes made by this lane, newest first *)
  mutable l_out_pulses : (int * (unit -> unit)) list;
      (** deferred foreign-lane signal pulses (dst node, pulse thunk),
          newest first; executed at the barrier in the target lane's
          context *)
}

type par = {
  p_lanes : lane array;  (** one per node *)
  mutable p_window_end : float;
      (** events with [time < p_window_end] may fire in the current
          window; a cross-lane push below it is a causality violation *)
}

type t = {
  mutable now : float;
  mutable seq : int;
  heap : eheap;
  mutable fired : int;
  sched : sched_state;
  (* The tie buffer, reused across fires: same-time entries are popped
     into these parallel arrays instead of a freshly-allocated list. *)
  mutable tb_seq : int array;
  mutable tb_label : label array;
  mutable tb_run : (unit -> unit) array;
  mutable par : par option;  (** [None] = sequential (the default) *)
}

(* The lane currently being driven by this domain (set by {!Par.run}
   around each window, and by the barrier while applying deferred
   pulses).  Sequential code never consults it: every fast path is
   guarded by [t.par == None] first. *)
let dls_lane : lane option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_lane () = !(Domain.DLS.get dls_lane)
let set_current_lane l = Domain.DLS.get dls_lane := l

(** Raised by [at] when asked to schedule an event before [now].  The
    payload records where the simulation stood so the offending call
    site can be located from a log alone. *)
exception
  Past_event of { requested : float; now : float; fired : int; pending : int }

(** Raised in parallel mode when an event is scheduled onto another
    node's lane {e inside} the current lookahead window — i.e. the
    declared lookahead (the minimum cross-node latency) was violated.
    A conservative run must never see this. *)
exception Cross_window of { dst : int; time : float; window_end : float }

let () =
  Printexc.register_printer (function
    | Past_event { requested; now; fired; pending } ->
        Some
          (Printf.sprintf
             "Sim.Engine.Past_event { requested = %.9g; now = %.9g; fired = \
              %d; pending = %d }"
             requested now fired pending)
    | Cross_window { dst; time; window_end } ->
        Some
          (Printf.sprintf
             "Sim.Engine.Cross_window { dst = %d; time = %.9g; window_end = \
              %.9g }"
             dst time window_end)
    | _ -> None)

let create ?(schedule = Fifo) () =
  let sched =
    match schedule with
    | Fifo -> S_fifo
    | Seeded seed -> S_seeded (Rng.create seed)
    | Jittered { seed; prob; max_delay } ->
        let ties = Rng.create seed in
        S_jittered { ties; delays = Rng.split ties; prob; max_delay }
    | Choose f -> S_choose f
    | Guided f -> S_guided { choose = f; delays = None }
    | Guided_jittered { seed; prob; max_delay; choose } ->
        S_guided { choose; delays = Some (Rng.create seed, prob, max_delay) }
  in
  {
    now = 0.0;
    seq = 0;
    heap = q_create ();
    fired = 0;
    sched;
    tb_seq = [||];
    tb_label = [||];
    tb_run = [||];
    par = None;
  }

let now t =
  match t.par with
  | None -> t.now
  | Some _ -> ( match current_lane () with Some l -> l.l_now | None -> t.now)

let events_fired t =
  match t.par with
  | None -> t.fired
  | Some p -> Array.fold_left (fun acc l -> acc + l.l_fired) t.fired p.p_lanes

let pending t =
  match t.par with
  | None -> t.heap.q_size
  | Some p -> Array.fold_left (fun acc l -> acc + l.l_heap.q_size) t.heap.q_size p.p_lanes

(** [at t ?label time f] schedules [f] to fire at absolute [time].
    Requires [time >= now t].  [label] (default: unknown) declares the
    event's dependency footprint for {!Guided} exploration and names the
    owning lane in parallel mode. *)
let at_seq t label time f =
  if time < t.now then
    raise
      (Past_event
         { requested = time; now = t.now; fired = t.fired; pending = t.heap.q_size });
  let time =
    match t.sched with
    | S_jittered { delays; prob; max_delay; _ }
    | S_guided { delays = Some (delays, prob, max_delay); _ }
      when prob > 0.0 && Rng.float delays 1.0 < prob ->
        time +. Rng.float delays max_delay
    | _ -> time
  in
  q_push t.heap ~time ~seq:t.seq ~label f;
  t.seq <- t.seq + 1

(* Lane-side scheduling: an event for this lane's own node goes straight
   into the lane heap; one for another node is buffered for the barrier
   merge (and must land at or beyond the window end — the lookahead
   guarantee).  Unlabeled events stay on the scheduling lane.  Parallel
   mode is Fifo-only, so there is no jitter path here. *)
let at_lane p l label time f =
  if time < l.l_now then
    raise
      (Past_event
         { requested = time; now = l.l_now; fired = l.l_fired; pending = l.l_heap.q_size });
  let dst =
    if label.lbl_node >= 0 && label.lbl_node < Array.length p.p_lanes then
      label.lbl_node
    else l.l_id
  in
  if dst = l.l_id then begin
    q_push l.l_heap ~time ~seq:l.l_seq ~label f;
    l.l_seq <- l.l_seq + 1
  end
  else begin
    if time < p.p_window_end then
      raise (Cross_window { dst; time; window_end = p.p_window_end });
    l.l_out <-
      { x_dst = dst; x_time = time; x_src = l.l_id; x_src_seq = l.l_seq; x_label = label; x_run = f }
      :: l.l_out;
    l.l_seq <- l.l_seq + 1
  end

let at t ?(label = no_label) time f =
  match t.par with
  | None -> at_seq t label time f
  | Some p -> (
      match current_lane () with
      | Some l -> at_lane p l label time f
      | None -> at_seq t label time f)

(** [after t ?label dt f] schedules [f] to fire [dt] seconds from now
    (the lane clock in parallel mode). *)
let after t ?label dt f = at t ?label (now t +. dt) f

(* --- tie-set machinery (non-Fifo schedules) --- *)

let tb_ensure t n =
  if Array.length t.tb_seq < n then begin
    let cap = max 16 (2 * n) in
    let seq' = Array.make cap 0 in
    let label' = Array.make cap no_label in
    let run' = Array.make cap nop in
    Array.blit t.tb_seq 0 seq' 0 (Array.length t.tb_seq);
    Array.blit t.tb_label 0 label' 0 (Array.length t.tb_label);
    Array.blit t.tb_run 0 run' 0 (Array.length t.tb_run);
    t.tb_seq <- seq';
    t.tb_label <- label';
    t.tb_run <- run'
  end

(* Pop every entry scheduled for exactly the root's time into the tie
   buffer; the buffer is in insertion order because the heap pops ties
   FIFO.  Returns (time, count). *)
let pop_ties t =
  let h = t.heap in
  let time = h.q_time.(0) in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    tb_ensure t (!n + 1);
    t.tb_seq.(!n) <- h.q_seq.(0);
    t.tb_label.(!n) <- h.q_label.(0);
    t.tb_run.(!n) <- h.q_run.(0);
    q_drop h;
    incr n;
    if h.q_size = 0 || h.q_time.(0) <> time then continue := false
  done;
  (time, !n)

(* Fire tie [i], pushing the others back with their original [seq] so a
   later pop sees them in unchanged relative order. *)
let fire_choice t time n i =
  for j = 0 to n - 1 do
    if j <> i then q_push t.heap ~time ~seq:t.tb_seq.(j) ~label:t.tb_label.(j) t.tb_run.(j)
  done;
  t.now <- time;
  t.fired <- t.fired + 1;
  let run = t.tb_run.(i) in
  run ()

(** [step t] fires one pending event — the earliest, with same-time ties
    broken by the schedule policy.  Returns [false] when the event heap
    is empty. *)
let step t =
  let h = t.heap in
  if h.q_size = 0 then false
  else begin
    (match t.sched with
    | S_fifo ->
        t.now <- h.q_time.(0);
        t.fired <- t.fired + 1;
        let run = h.q_run.(0) in
        q_drop h;
        run ()
    | S_seeded rng | S_jittered { ties = rng; _ } ->
        let time, n = pop_ties t in
        if n = 1 then fire_choice t time 1 0
        else fire_choice t time n (Rng.int rng n)
    | S_choose f ->
        let time, n = pop_ties t in
        if n = 1 then fire_choice t time 1 0
        else
          let i = f n in
          fire_choice t time n (if i < 0 || i >= n then 0 else i)
    | S_guided { choose = f; _ } ->
        let time, n = pop_ties t in
        let cands =
          Array.init n (fun j -> { ch_label = t.tb_label.(j); ch_seq = t.tb_seq.(j) })
        in
        let i = f cands in
        fire_choice t time n (if i < 0 || i >= n then 0 else i));
    true
  end

(** [run ?until ?max_events t] fires events until the heap is empty, the
    clock passes [until], or [max_events] have fired.  Returns the reason
    the run stopped. *)
type stop_reason = Quiescent | Deadline | Event_budget

let run ?until ?max_events t =
  let fired0 = t.fired in
  let until_v = match until with None -> Float.infinity | Some d -> d in
  let budget = match max_events with None -> max_int | Some m -> m in
  let h = t.heap in
  let reason = ref Quiescent in
  let continue = ref true in
  (match t.sched with
  | S_fifo ->
      (* The hot loop: no allocation per event — the deadline check reads
         the root time directly and firing pops in place. *)
      while !continue do
        if h.q_size > 0 && h.q_time.(0) > until_v then begin
          t.now <- Float.max t.now until_v;
          reason := Deadline;
          continue := false
        end
        else if t.fired - fired0 >= budget then begin
          reason := Event_budget;
          continue := false
        end
        else if h.q_size = 0 then begin
          reason := Quiescent;
          continue := false
        end
        else begin
          t.now <- h.q_time.(0);
          t.fired <- t.fired + 1;
          let run = h.q_run.(0) in
          q_drop h;
          run ()
        end
      done
  | _ ->
      while !continue do
        if h.q_size > 0 && h.q_time.(0) > until_v then begin
          t.now <- Float.max t.now until_v;
          reason := Deadline;
          continue := false
        end
        else if t.fired - fired0 >= budget then begin
          reason := Event_budget;
          continue := false
        end
        else if not (step t) then begin
          reason := Quiescent;
          continue := false
        end
      done);
  !reason

(* --- parallel-mode plumbing (driven by {!Par}) --- *)

(** [par_install t ~nodes] splits the event store into [nodes] per-node
    lanes, routing every pending event to its label's lane (unlabeled
    events go to lane 0).  Requires the [Fifo] schedule: the other
    policies permute same-time ties globally, which has no meaning once
    the tie-set is split across lanes. *)
let par_install t ~nodes =
  (match t.par with Some _ -> invalid_arg "Engine.par_install: already parallel" | None -> ());
  (match t.sched with
  | S_fifo -> ()
  | _ -> invalid_arg "Engine.par_install: parallel mode requires the Fifo schedule");
  let lanes =
    Array.init nodes (fun i ->
        {
          l_id = i;
          l_heap = q_create ();
          l_now = t.now;
          l_seq = 0;
          l_fired = 0;
          l_out = [];
          l_out_pulses = [];
        })
  in
  let h = t.heap in
  while h.q_size > 0 do
    let time = h.q_time.(0) and label = h.q_label.(0) and run = h.q_run.(0) in
    q_drop h;
    let dst = if label.lbl_node >= 0 && label.lbl_node < nodes then label.lbl_node else 0 in
    let l = lanes.(dst) in
    q_push l.l_heap ~time ~seq:l.l_seq ~label run;
    l.l_seq <- l.l_seq + 1
  done;
  let p = { p_lanes = lanes; p_window_end = t.now } in
  t.par <- Some p;
  p

(** [par_remove t] folds the lanes back into the sequential store: fired
    counts are added up and leftover events (a deadline stop leaves some
    pending) are re-inserted in deterministic (time, lane, lane-seq)
    order with fresh global sequence numbers. *)
let par_remove t =
  match t.par with
  | None -> ()
  | Some p ->
      t.par <- None;
      let leftovers = ref [] in
      Array.iter
        (fun l ->
          t.fired <- t.fired + l.l_fired;
          t.now <- Float.max t.now l.l_now;
          let h = l.l_heap in
          while h.q_size > 0 do
            leftovers :=
              (h.q_time.(0), l.l_id, h.q_seq.(0), h.q_label.(0), h.q_run.(0)) :: !leftovers;
            q_drop h
          done)
        p.p_lanes;
      List.iter
        (fun (time, _, _, label, run) ->
          q_push t.heap ~time ~seq:t.seq ~label run;
          t.seq <- t.seq + 1)
        (List.sort
           (fun (ta, la, sa, _, _) (tb, lb, sb, _, _) ->
             match Float.compare ta tb with
             | 0 -> ( match compare la lb with 0 -> compare sa sb | c -> c)
             | c -> c)
           !leftovers)

(** [par_foreign t label] — are we inside a parallel lane while [label]
    names a different node's lane?  Used by {!Signal.pulse} to decide
    whether a pulse must be deferred to the window barrier instead of
    mutating another lane's waiter list. *)
let par_foreign t label =
  match t.par with
  | None -> false
  | Some _ -> (
      match current_lane () with
      | None -> false
      | Some l -> label.lbl_node >= 0 && label.lbl_node <> l.l_id)

(** [par_defer_pulse t label thunk] — buffer a foreign-lane pulse on the
    current lane; the barrier replays it in the target lane's context at
    the window boundary. *)
let par_defer_pulse _t label thunk =
  match current_lane () with
  | Some l -> l.l_out_pulses <- (label.lbl_node, thunk) :: l.l_out_pulses
  | None -> thunk ()
