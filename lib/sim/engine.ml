(** Discrete-event simulation core: a virtual clock and an event heap.

    Events are thunks fired in [(time, insertion-order)] order, so the
    whole simulation is deterministic.  Everything above this module
    (CPUs, processes, the network, the coherence protocol) is expressed
    as events.

    The [schedule] policy chosen at [create] controls how same-time ties
    are broken.  [Fifo] (the default) fires ties in insertion order and
    is bit-identical to the historical behaviour; the other policies
    exist for the model checker in [lib/check], which reruns scenarios
    under many legal schedules.

    Every event optionally carries a {!label} — who the event belongs to
    (a node), which coherence block it touches, and what kind of thing
    it is.  The labels change nothing about execution; they exist so
    that a {!Guided} scheduler (the DPOR explorer) can see the
    dependency footprint of each runnable event and prune interleavings
    of commuting pairs instead of brute-forcing them. *)

(** What an event may touch, conservatively.  [-1] means "unknown /
    all": an unlabeled event must be treated as dependent with every
    other event. *)
type label = {
  lbl_node : int;  (** node whose local state the event mutates; -1 = unknown *)
  lbl_block : int;  (** coherence block the event touches; -1 = none *)
  lbl_kind : kind;
}

and kind =
  | Generic  (** unclassified (the conservative default) *)
  | Proc_step  (** a CPU scheduler step: dispatch, work slice, preempt timer *)
  | Message  (** a network message delivery at its destination node *)
  | Wakeup  (** a signal waiter waking a stalled process *)
  | Timer  (** a transport retransmit or other timeout *)

let no_label = { lbl_node = -1; lbl_block = -1; lbl_kind = Generic }

let kind_to_string = function
  | Generic -> "generic"
  | Proc_step -> "proc"
  | Message -> "msg"
  | Wakeup -> "wakeup"
  | Timer -> "timer"

let pp_label ppf l =
  Format.fprintf ppf "%s@n%d" (kind_to_string l.lbl_kind) l.lbl_node;
  if l.lbl_block >= 0 then Format.fprintf ppf "/b%d" l.lbl_block

(** [dependent a b] — may the firing order of two {e same-time} events
    affect the simulation?  Conservative: unknown labels conflict with
    everything; otherwise events conflict when they share a node (both
    mutate that node's scheduler/mailbox state) or a block (both touch
    that block's coherence state, possibly at different nodes).  Two
    events on different nodes touching no common block commute: each
    only mutates its own node's state and appends to the global event
    heap, and heap insertion order within a tie-set is itself a
    scheduling decision re-exposed at the next choice point. *)
let dependent a b =
  let unknown l = l.lbl_node < 0 && l.lbl_block < 0 in
  if unknown a || unknown b then true
  else
    (a.lbl_node >= 0 && a.lbl_node = b.lbl_node)
    || (a.lbl_block >= 0 && a.lbl_block = b.lbl_block)

(** A runnable event as presented to a {!Guided} scheduler: its
    footprint plus a stable identity ([ch_seq] is the insertion sequence
    number, unchanged when a deferred event is pushed back for the next
    choice point — so an explorer can track one event across the
    successive choice points of a tie group). *)
type choice = { ch_label : label; ch_seq : int }

type schedule =
  | Fifo  (** insertion order; the historical deterministic default *)
  | Seeded of int
      (** every same-time tie-set is permuted by a splitmix64 stream
          derived from the seed; a given seed is fully reproducible *)
  | Jittered of { seed : int; prob : float; max_delay : float }
      (** like [Seeded], plus each [at] independently delays the event
          by a uniform amount in [0, max_delay] with probability [prob]
          (delays only — events never fire earlier than requested) *)
  | Choose of (int -> int)
      (** [f n] picks which of the [n] currently-tied events fires next
          (entries are presented in insertion order); used for
          exhaustive exploration of small tie-sets.  Out-of-range
          answers fall back to index 0. *)
  | Guided of (choice array -> int)
      (** like [Choose], but the callback sees each candidate's identity
          and dependency footprint, and is consulted on {e every} fire —
          including singleton tie-sets — so an explorer can follow the
          full fired-event trace.  Out-of-range answers fall back to
          index 0. *)
  | Guided_jittered of {
      seed : int;
      prob : float;
      max_delay : float;
      choose : choice array -> int;
    }
      (** [Guided] plus [Jittered]-style seeded delay injection: lets a
          guided explorer search tie-break orders of runs whose message
          timing is itself perturbed (some races only open under a
          delay).  The delay stream is drawn per [at] call, so replaying
          the same choice prefix reproduces the same delays. *)

type sched_state =
  | S_fifo
  | S_seeded of Rng.t
  | S_jittered of { ties : Rng.t; delays : Rng.t; prob : float; max_delay : float }
  | S_choose of (int -> int)
  | S_guided of {
      choose : choice array -> int;
      delays : (Rng.t * float * float) option;  (* rng, prob, max_delay *)
    }

type ev = { ev_label : label; ev_run : unit -> unit }

type t = {
  mutable now : float;
  mutable seq : int;
  events : ev Heap.t;
  mutable fired : int;
  sched : sched_state;
}

(** Raised by [at] when asked to schedule an event before [now].  The
    payload records where the simulation stood so the offending call
    site can be located from a log alone. *)
exception
  Past_event of { requested : float; now : float; fired : int; pending : int }

let () =
  Printexc.register_printer (function
    | Past_event { requested; now; fired; pending } ->
        Some
          (Printf.sprintf
             "Sim.Engine.Past_event { requested = %.9g; now = %.9g; fired = \
              %d; pending = %d }"
             requested now fired pending)
    | _ -> None)

let create ?(schedule = Fifo) () =
  let sched =
    match schedule with
    | Fifo -> S_fifo
    | Seeded seed -> S_seeded (Rng.create seed)
    | Jittered { seed; prob; max_delay } ->
        let ties = Rng.create seed in
        S_jittered { ties; delays = Rng.split ties; prob; max_delay }
    | Choose f -> S_choose f
    | Guided f -> S_guided { choose = f; delays = None }
    | Guided_jittered { seed; prob; max_delay; choose } ->
        S_guided { choose; delays = Some (Rng.create seed, prob, max_delay) }
  in
  { now = 0.0; seq = 0; events = Heap.create (); fired = 0; sched }

let now t = t.now

let events_fired t = t.fired

let pending t = Heap.length t.events

(** [at t ?label time f] schedules [f] to fire at absolute [time].
    Requires [time >= now t].  [label] (default: unknown) declares the
    event's dependency footprint for {!Guided} exploration. *)
let at t ?(label = no_label) time f =
  if time < t.now then
    raise
      (Past_event
         {
           requested = time;
           now = t.now;
           fired = t.fired;
           pending = Heap.length t.events;
         });
  let time =
    match t.sched with
    | S_jittered { delays; prob; max_delay; _ }
    | S_guided { delays = Some (delays, prob, max_delay); _ }
      when prob > 0.0 && Rng.float delays 1.0 < prob ->
        time +. Rng.float delays max_delay
    | _ -> time
  in
  Heap.push t.events ~time ~seq:t.seq { ev_label = label; ev_run = f };
  t.seq <- t.seq + 1

(** [after t ?label dt f] schedules [f] to fire [dt] seconds from now. *)
let after t ?label dt f = at t ?label (t.now +. dt) f

let fire t (e : ev Heap.entry) =
  t.now <- e.Heap.time;
  t.fired <- t.fired + 1;
  e.Heap.value.ev_run ()

(* Pop every further entry scheduled for exactly [first]'s time; the
   result (including [first]) is in insertion order because the heap
   pops ties FIFO. *)
let pop_tie_set t (first : ev Heap.entry) =
  let rec go acc =
    match Heap.peek t.events with
    | Some e when e.Heap.time = first.Heap.time ->
        ignore (Heap.pop t.events);
        go (e :: acc)
    | _ -> List.rev acc
  in
  go [ first ]

(* Fire tie [i], pushing the others back with their original [seq] so a
   later pop sees them in unchanged relative order. *)
let fire_choice t ties i =
  let chosen = List.nth ties i in
  List.iteri
    (fun j (e : ev Heap.entry) ->
      if j <> i then Heap.push t.events ~time:e.Heap.time ~seq:e.Heap.seq e.Heap.value)
    ties;
  fire t chosen

(** [step t] fires one pending event — the earliest, with same-time ties
    broken by the schedule policy.  Returns [false] when the event heap
    is empty. *)
let step t =
  match Heap.pop t.events with
  | None -> false
  | Some e ->
      (match t.sched with
      | S_fifo -> fire t e
      | S_seeded rng | S_jittered { ties = rng; _ } -> (
          match pop_tie_set t e with
          | [ only ] -> fire t only
          | ties -> fire_choice t ties (Rng.int rng (List.length ties)))
      | S_choose f -> (
          match pop_tie_set t e with
          | [ only ] -> fire t only
          | ties ->
              let n = List.length ties in
              let i = f n in
              fire_choice t ties (if i < 0 || i >= n then 0 else i))
      | S_guided { choose = f; _ } ->
          let ties = pop_tie_set t e in
          let cands =
            Array.of_list
              (List.map
                 (fun (e : ev Heap.entry) ->
                   { ch_label = e.Heap.value.ev_label; ch_seq = e.Heap.seq })
                 ties)
          in
          let n = Array.length cands in
          let i = f cands in
          fire_choice t ties (if i < 0 || i >= n then 0 else i));
      true

(** [run ?until ?max_events t] fires events until the heap is empty, the
    clock passes [until], or [max_events] have fired.  Returns the reason
    the run stopped. *)
type stop_reason = Quiescent | Deadline | Event_budget

let run ?until ?max_events t =
  let deadline_hit () =
    match until with
    | None -> false
    | Some d -> (
        match Heap.peek t.events with
        | None -> false
        | Some e -> e.Heap.time > d)
  in
  let budget_hit fired0 =
    match max_events with None -> false | Some m -> t.fired - fired0 >= m
  in
  let fired0 = t.fired in
  let rec loop () =
    if deadline_hit () then begin
      (match until with Some d -> t.now <- max t.now d | None -> ());
      Deadline
    end
    else if budget_hit fired0 then Event_budget
    else if step t then loop ()
    else Quiescent
  in
  loop ()
