(** Broadcast wake-up signals.

    A [Signal.t] carries no data; it wakes everything currently waiting on
    it.  Simulated processes stalled on a shared-miss reply wait on their
    node's message-arrival signal so that simulated time jumps straight to
    the next arrival instead of busy-polling in zero-length steps. *)

type t = {
  engine : Engine.t;
  label : Engine.label;
      (** footprint stamped on waiter wake-up events (a per-node signal
          passes its node so a Guided explorer can classify the wake) *)
  mutable waiters : (unit -> unit) list;
  mutable pulses : int;
}

let create ?(label = Engine.no_label) engine = { engine; label; waiters = []; pulses = 0 }

let pulses t = t.pulses

(** [wait t f] registers [f] to be called (as an event at the pulse time)
    on the next pulse. *)
let wait t f = t.waiters <- f :: t.waiters

(** [pulse t] wakes every waiter registered so far.  Waiters registered
    during the pulse (e.g. a woken process immediately waiting again) are
    kept for the next pulse. *)
let pulse_here t =
  t.pulses <- t.pulses + 1;
  match t.waiters with
  | [] -> ()
  | ws ->
      t.waiters <- [];
      (* Fire in registration order for determinism. *)
      List.iter (fun f -> Engine.after t.engine ~label:t.label 0.0 f) (List.rev ws)

let pulse t =
  (* In parallel mode a pulse of another node's signal must not touch
     that lane's waiter list from here: defer the whole pulse to the
     window barrier, which replays it in the target lane's context. *)
  if Engine.par_foreign t.engine t.label then
    Engine.par_defer_pulse t.engine t.label (fun () -> pulse_here t)
  else pulse_here t
