(** Conservative parallel discrete-event driver (Chandy–Misra style).

    The only public entry point: everything else in the implementation
    (lane assignment, the window barrier, the cross-event merge) is an
    internal detail of the engine's parallel mode, pinned here so the
    surface cannot silently grow (the [Net] precedent).

    [run ?until ?lookahead ~domains eng ~nodes] drives [eng] to
    quiescence (or [until]) with per-node event lanes spread over
    [domains] real OCaml domains.  The engine must use the [Fifo]
    schedule; [lookahead] is the minimum cross-node latency (the 4 µs
    Memory Channel one-way latency by default).  On return — normal or
    exceptional — the engine is folded back to sequential form, so
    [Engine.run]/[Engine.step] can be used afterwards.  Results are
    bit-identical across worker counts. *)
val run :
  ?until:float ->
  ?lookahead:float ->
  domains:int ->
  Engine.t ->
  nodes:int ->
  Engine.stop_reason
