(** Conservative parallel discrete-event driver (Chandy–Misra style).

    The event store is split into one lane per simulated node
    ({!Engine.par_install}) and the lanes are driven on real OCaml 5
    domains.  The lookahead is the minimum cross-node latency — for the
    simulated Memory Channel, the 4 µs one-way network latency: an event
    fired at time [T] on one node can affect another node no earlier
    than [T + lookahead], because every cross-node interaction travels
    through [Mchan.Link], whose delivery time adds at least the one-way
    latency.  So all events in the window [W, W + lookahead), where [W]
    is the minimum pending event time across lanes, are causally
    independent {e across} lanes and may run concurrently; within a lane
    they run in exact [(time, seq)] order.

    Each window is a barrier round:

    + the coordinator computes [W] and publishes the window end;
    + every worker drives its lanes up to (strictly before) the window
      end, buffering cross-lane [at] calls and foreign signal pulses on
      the scheduling lane;
    + at the barrier the coordinator merges the buffered cross events
      into their destination lanes in deterministic
      [(time, src lane, src seq)] order, advances all lane clocks to the
      window end, and replays deferred pulses in each target lane's
      context.

    A cross-lane event inside the window would mean the lookahead was
    violated; {!Engine.Cross_window} escapes the run in that case (a
    conservative configuration must never raise it).

    Only the [Fifo] schedule is supported: the exploration schedules
    permute global same-time tie-sets, which have no meaning once the
    tie-set is split across concurrently-executing lanes.  Within each
    lane, firing order is identical to the sequential engine's; across
    lanes, same-time events on different nodes may interleave
    differently than sequentially — by the lookahead argument those
    events are independent, so simulated results must agree up to
    permutations of causally-concurrent ties (merged cross events carry
    fresh sequence numbers, so a same-time local/cross pair may resolve
    in either order — the class of reorderings a [Seeded] schedule
    explores).  The merge order is deterministic and independent of the
    worker count, so any two parallel runs of the same configuration
    agree bit-for-bit; the test suite cross-validates both properties
    against sequential runs. *)

type shared = {
  m : Mutex.t;
  cv : Condition.t;
  mutable generation : int;  (** bumped by the coordinator to release workers *)
  mutable running : bool;  (** false tells workers to exit *)
  mutable done_count : int;  (** workers finished with the current window *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
      (** first exception raised inside a lane, re-raised by the coordinator *)
}

(* Drive every lane owned by [worker] (lanes are dealt round-robin) up to
   the published window end.  Exceptions are parked in [sh.failure]; the
   coordinator re-raises after the barrier so domains always rejoin. *)
let process_lanes sh (p : Engine.par) ~worker ~workers ~until =
  let we = p.Engine.p_window_end in
  Array.iter
    (fun (l : Engine.lane) ->
      if l.Engine.l_id mod workers = worker && sh.failure = None then begin
        Engine.set_current_lane (Some l);
        (try
           let h = l.Engine.l_heap in
           let continue = ref true in
           while !continue do
             if h.Engine.q_size = 0 then continue := false
             else
               let t0 = h.Engine.q_time.(0) in
               if t0 >= we || t0 > until then continue := false
               else begin
                 l.Engine.l_now <- t0;
                 l.Engine.l_fired <- l.Engine.l_fired + 1;
                 let run = h.Engine.q_run.(0) in
                 Engine.q_drop h;
                 run ()
               end
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock sh.m;
           if sh.failure = None then sh.failure <- Some (e, bt);
           Mutex.unlock sh.m);
        Engine.set_current_lane None
      end)
    p.Engine.p_lanes

let worker_loop sh p ~worker ~workers ~until =
  let my_gen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock sh.m;
    while sh.running && sh.generation = !my_gen do
      Condition.wait sh.cv sh.m
    done;
    let running = sh.running in
    my_gen := sh.generation;
    Mutex.unlock sh.m;
    if not running then continue := false
    else begin
      process_lanes sh p ~worker ~workers ~until;
      Mutex.lock sh.m;
      sh.done_count <- sh.done_count + 1;
      Condition.broadcast sh.cv;
      Mutex.unlock sh.m
    end
  done

(* The barrier's sequential tail: move buffered cross events into their
   destination lanes (deterministic (time, src, src-seq) order, fresh
   destination sequence numbers), advance every lane clock to the window
   end (clamped to the deadline), then replay deferred foreign pulses in
   their target lane's context so waiter wake-ups land on the right
   lane. *)
let merge (p : Engine.par) ~until ~we =
  let crosses = ref [] in
  Array.iter
    (fun (l : Engine.lane) ->
      match l.Engine.l_out with
      | [] -> ()
      | out ->
          crosses := List.rev_append out !crosses;
          l.Engine.l_out <- [])
    p.Engine.p_lanes;
  let crosses =
    List.sort
      (fun (a : Engine.cross) (b : Engine.cross) ->
        match Float.compare a.Engine.x_time b.Engine.x_time with
        | 0 -> (
            match compare a.Engine.x_src b.Engine.x_src with
            | 0 -> compare a.Engine.x_src_seq b.Engine.x_src_seq
            | c -> c)
        | c -> c)
      !crosses
  in
  List.iter
    (fun (x : Engine.cross) ->
      let l = p.Engine.p_lanes.(x.Engine.x_dst) in
      Engine.q_push l.Engine.l_heap ~time:x.Engine.x_time ~seq:l.Engine.l_seq
        ~label:x.Engine.x_label x.Engine.x_run;
      l.Engine.l_seq <- l.Engine.l_seq + 1)
    crosses;
  let t_adv = Float.min we until in
  Array.iter
    (fun (l : Engine.lane) -> if t_adv > l.Engine.l_now then l.Engine.l_now <- t_adv)
    p.Engine.p_lanes;
  Array.iter
    (fun (l : Engine.lane) ->
      match l.Engine.l_out_pulses with
      | [] -> ()
      | ps ->
          l.Engine.l_out_pulses <- [];
          List.iter
            (fun (dst, thunk) ->
              let dl =
                if dst >= 0 && dst < Array.length p.Engine.p_lanes then
                  p.Engine.p_lanes.(dst)
                else l
              in
              Engine.set_current_lane (Some dl);
              thunk ())
            (List.rev ps);
          Engine.set_current_lane None)
    p.Engine.p_lanes

(** [run ?until ?lookahead ~domains eng ~nodes] drives [eng] to
    quiescence (or [until]) with per-node lanes spread over [domains]
    real domains.  The engine must use the [Fifo] schedule.  On return —
    normal or exceptional — the engine is folded back to sequential
    form, so [run]/[step] can be used afterwards. *)
let run ?(until = Float.infinity) ?(lookahead = 4.0e-6) ~domains eng ~nodes =
  if domains < 1 then invalid_arg "Sim.Par.run: domains must be >= 1";
  if nodes < 1 then invalid_arg "Sim.Par.run: nodes must be >= 1";
  if not (lookahead > 0.0) then invalid_arg "Sim.Par.run: lookahead must be > 0";
  let p = Engine.par_install eng ~nodes in
  let workers = max 1 (min domains nodes) in
  let sh =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      generation = 0;
      running = true;
      done_count = 0;
      failure = None;
    }
  in
  let spawned =
    List.init (workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop sh p ~worker:(i + 1) ~workers ~until))
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock sh.m;
      sh.running <- false;
      Condition.broadcast sh.cv;
      Mutex.unlock sh.m;
      List.iter Domain.join spawned;
      Engine.par_remove eng)
    (fun () ->
      let reason = ref Engine.Quiescent in
      let finished = ref false in
      while not !finished do
        let w =
          Array.fold_left
            (fun acc (l : Engine.lane) ->
              let h = l.Engine.l_heap in
              if h.Engine.q_size > 0 then Float.min acc h.Engine.q_time.(0) else acc)
            Float.infinity p.Engine.p_lanes
        in
        if w = Float.infinity then begin
          reason := Engine.Quiescent;
          finished := true
        end
        else if w > until then begin
          Array.iter
            (fun (l : Engine.lane) ->
              if until > l.Engine.l_now then l.Engine.l_now <- until)
            p.Engine.p_lanes;
          reason := Engine.Deadline;
          finished := true
        end
        else begin
          let we = w +. lookahead in
          p.Engine.p_window_end <- we;
          Mutex.lock sh.m;
          sh.done_count <- 0;
          sh.generation <- sh.generation + 1;
          Condition.broadcast sh.cv;
          Mutex.unlock sh.m;
          process_lanes sh p ~worker:0 ~workers ~until;
          Mutex.lock sh.m;
          while sh.done_count < workers - 1 do
            Condition.wait sh.cv sh.m
          done;
          Mutex.unlock sh.m;
          (match sh.failure with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ());
          merge p ~until ~we
        end
      done;
      !reason)
