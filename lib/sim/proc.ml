(** Simulated processes and CPUs.

    A process is an OCaml function run as an effect-handled fiber; it
    consumes simulated CPU time by performing the effects below.  Each CPU
    schedules its processes round-robin with a time quantum and a context
    switch cost, which is what produces the multi-millisecond message
    latencies of Section 4.3 of the paper when a request targets a process
    that is not currently scheduled.

    Effects available to process bodies:
    - [work dt]: consume [dt] seconds of CPU, polling for incoming
      messages every [poll_interval] (the inserted loop-backedge polls);
    - [stall pred]: spin, servicing incoming messages, until [pred ()]
      holds (a shared-miss wait).  The CPU is held, but the quantum still
      expires, allowing other runnable processes to take over;
    - [block ()]: release the CPU until [wakeup] (a blocking syscall);
    - [sleep dt]: release the CPU for [dt] seconds;
    - [yield ()]: requeue behind other runnable processes.

    Scheduling priorities: a lower [priority] number is more urgent.
    Application processes run at priority 0; "protocol processes"
    (Section 4.3.2) run at priority 1 so that they execute only when no
    application process is runnable, and are preempted immediately when
    one becomes runnable. *)

type pstate = Ready | Running | Blocked | Waiting | Finished

type activity =
  | Thunk of (unit -> unit)
  | Work_left of float * (unit -> unit)
  | Stalling of (unit -> bool) * (unit -> unit)

type t = {
  pid : int;
  name : string;
  priority : int;
  cpu : cpu;
  mutable state : pstate;
  mutable activity : activity;
  mutable version : int;
  mutable on_poll : t -> float;
      (** Service pending incoming messages; returns CPU seconds consumed. *)
  mutable stall_signal : Signal.t option;
      (** Pulsed when a message arrives for this process's node. *)
  mutable poll_interval : float;
  mutable yield_waiting : bool;
      (** while signal-waiting in a stall, cede the CPU immediately to any
          runnable process instead of spinning out the quantum (idle
          server/protocol processes back off, Section 4.3.3) *)
  mutable work_time : float;
  mutable msg_time : float;
  mutable finished_at : float;
  mutable n_steps : int;  (** scheduler steps, for diagnostics *)
  mutable on_exit : (unit -> unit) list;
  mutable failure : exn option;
}

and cpu = {
  cpu_global_id : int;
  node_id : int;
  label : Engine.label;
      (** footprint of this CPU's scheduler events: node-local, no block *)
  engine : Engine.t;
  quantum : float;
  switch_cost : float;
  ready : t Queue.t array;  (** one queue per priority level *)
  mutable current : t option;
  mutable quantum_deadline : float;
  mutable switches : int;
  mutable next_pid : int ref;
}

let priority_levels = 2

let make_cpu ~engine ~node_id ~cpu_global_id ~quantum ~switch_cost next_pid =
  {
    cpu_global_id;
    node_id;
    label =
      { Engine.lbl_node = node_id; lbl_block = -1; lbl_kind = Engine.Proc_step };
    engine;
    quantum;
    switch_cost;
    ready = Array.init priority_levels (fun _ -> Queue.create ());
    current = None;
    quantum_deadline = 0.0;
    switches = 0;
    next_pid;
  }

let now p = Engine.now p.cpu.engine

let pick_ready cpu =
  let rec go i =
    if i >= priority_levels then None
    else if Queue.is_empty cpu.ready.(i) then go (i + 1)
    else Some (Queue.pop cpu.ready.(i))
  in
  go 0

let exists_ready ?(below = priority_levels) cpu =
  let rec go i = i < below && (not (Queue.is_empty cpu.ready.(i)) || go (i + 1)) in
  go 0

let debug_sched = Sys.getenv_opt "SHASTA_DEBUG_SCHED" <> None

let rec dispatch cpu =
  match cpu.current with
  | Some _ -> ()
  | None -> (
      match pick_ready cpu with
      | None -> ()
      | Some p ->
          if debug_sched then
            Format.eprintf "[%.9f] dispatch cpu%d -> %s(pid%d)@." (Engine.now cpu.engine)
              cpu.cpu_global_id p.name p.pid;
          cpu.current <- Some p;
          p.state <- Running;
          cpu.switches <- cpu.switches + 1;
          cpu.quantum_deadline <- Engine.now cpu.engine +. cpu.quantum;
          p.version <- p.version + 1;
          let v = p.version in
          Engine.after cpu.engine ~label:cpu.label cpu.switch_cost (fun () ->
              if p.version = v then step p))

and enqueue_ready p =
  let cpu = p.cpu in
  p.state <- Ready;
  Queue.push p cpu.ready.(p.priority);
  match cpu.current with
  | None -> dispatch cpu
  | Some c ->
      if c.priority > p.priority then preempt c
      else if c.state = Waiting then
        if c.yield_waiting then preempt c
        else begin
          (* The current process is idly waiting on a signal; it keeps the
             CPU only until its quantum expires. *)
          let eng = cpu.engine in
          let fire_at = max (Engine.now eng) cpu.quantum_deadline in
          let v = c.version in
          Engine.at eng ~label:cpu.label fire_at (fun () ->
              if c.version = v && c.state = Waiting then preempt c)
        end

and preempt p =
  let cpu = p.cpu in
  (match cpu.current with
  | Some c when c == p -> ()
  | Some _ | None -> invalid_arg "Proc.preempt: not the current process");
  p.version <- p.version + 1;
  p.state <- Ready;
  Queue.push p cpu.ready.(p.priority);
  cpu.current <- None;
  dispatch cpu

and step p =
  p.n_steps <- p.n_steps + 1;
  match p.activity with
  | Thunk f -> f ()
  | Work_left (rem, cont) -> work_step p rem cont
  | Stalling (pred, cont) -> stall_step p pred cont

and work_step p rem cont =
  let cpu = p.cpu in
  let eng = cpu.engine in
  if rem <= 1e-15 then begin
    p.activity <- Thunk cont;
    cont ()
  end
  else begin
    let until_quantum = cpu.quantum_deadline -. Engine.now eng in
    if until_quantum <= 0.0 && exists_ready cpu then begin
      p.activity <- Work_left (rem, cont);
      preempt p
    end
    else begin
      (* When the quantum has expired but nothing else is runnable, keep
         working in normal poll-sized slices. *)
      let quantum_cap = if until_quantum > 0.0 then until_quantum else p.poll_interval in
      let slice = Float.min rem (Float.min p.poll_interval quantum_cap) in
      let v = p.version in
      Engine.after eng ~label:cpu.label slice (fun () ->
          if p.version = v then begin
            p.work_time <- p.work_time +. slice;
            p.activity <- Work_left (rem -. slice, cont);
            let service = p.on_poll p in
            if service > 0.0 then begin
              p.msg_time <- p.msg_time +. service;
              Engine.after eng ~label:cpu.label service (fun () -> if p.version = v then step p)
            end
            else step p
          end)
    end
  end

and stall_step p pred cont =
  let cpu = p.cpu in
  let eng = cpu.engine in
  if p.state = Waiting then begin
    p.state <- Running;
    p.version <- p.version + 1
  end;
  if pred () then begin
    p.activity <- Thunk cont;
    cont ()
  end
  else begin
    let service = p.on_poll p in
    if service > 0.0 then begin
      p.msg_time <- p.msg_time +. service;
      let v = p.version in
      Engine.after eng ~label:cpu.label service (fun () -> if p.version = v then step p)
    end
    else if p.yield_waiting && exists_ready cpu then begin
      (* An idle server/protocol process with competition for the CPU:
         release it entirely and come back through the ready queue when a
         message arrives.  With no competitor it keeps spinning below, so
         it reacts to arrivals without paying a context switch. *)
      p.activity <- Stalling (pred, cont);
      p.state <- Waiting;
      let v = p.version in
      (match cpu.current with Some c when c == p -> cpu.current <- None | Some _ | None -> ());
      (match p.stall_signal with
      | Some s ->
          Signal.wait s (fun () -> if p.version = v && p.state = Waiting then enqueue_ready p)
      | None -> ());
      dispatch cpu
    end
    else if (not p.yield_waiting) && exists_ready cpu && Engine.now eng >= cpu.quantum_deadline
    then begin
      p.activity <- Stalling (pred, cont);
      preempt p
    end
    else begin
      (* Nothing to service: spin-wait for the next message arrival.  If
         another process is runnable, also give up the CPU when the
         quantum ends. *)
      p.activity <- Stalling (pred, cont);
      p.state <- Waiting;
      let v = p.version in
      (match p.stall_signal with
      | Some s -> Signal.wait s (fun () -> if p.version = v && p.state = Waiting then step p)
      | None -> ());
      if exists_ready cpu then
        Engine.at eng ~label:cpu.label
          (max (Engine.now eng) cpu.quantum_deadline)
          (fun () -> if p.version = v && p.state = Waiting then preempt p)
    end
  end

(* Effects performed by process bodies. *)

type _ Effect.t +=
  | Work : float -> unit Effect.t
  | Stall : (unit -> bool) -> unit Effect.t
  | Block : unit Effect.t
  | Yield : unit Effect.t
  | Self : t Effect.t

let work dt = if dt > 0.0 then Effect.perform (Work dt)
let stall pred = Effect.perform (Stall pred)
let block () = Effect.perform Block
let yield () = Effect.perform Yield
let self () = Effect.perform Self

let wakeup p =
  match p.state with
  | Blocked -> enqueue_ready p
  | Ready | Running | Waiting | Finished -> ()

let sleep dt =
  let p = self () in
  Engine.after p.cpu.engine ~label:p.cpu.label dt (fun () -> wakeup p);
  block ()

let finish p =
  let cpu = p.cpu in
  p.state <- Finished;
  p.finished_at <- Engine.now cpu.engine;
  p.version <- p.version + 1;
  (match cpu.current with Some c when c == p -> cpu.current <- None | Some _ | None -> ());
  let callbacks = List.rev p.on_exit in
  p.on_exit <- [];
  List.iter (fun f -> f ()) callbacks;
  dispatch cpu

let schedule_step p =
  let v = p.version in
  Engine.after p.cpu.engine ~label:p.cpu.label 0.0 (fun () -> if p.version = v then step p)

let run_fiber p body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> finish p);
      exnc = (fun e -> p.failure <- Some e; finish p);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Work d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.activity <- Work_left (d, fun () -> continue k ());
                  schedule_step p)
          | Stall pred ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.activity <- Stalling (pred, fun () -> continue k ());
                  schedule_step p)
          | Block ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.activity <- Thunk (fun () -> continue k ());
                  p.version <- p.version + 1;
                  p.state <- Blocked;
                  let cpu = p.cpu in
                  (match cpu.current with
                  | Some c when c == p -> cpu.current <- None
                  | Some _ | None -> ());
                  dispatch cpu)
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.activity <- Thunk (fun () -> continue k ());
                  preempt p)
          | Self -> Some (fun (k : (a, unit) continuation) -> continue k p)
          | _ -> None);
    }

let default_poll_interval = 2e-6

let spawn ?(priority = 0) ?(name = "proc") ?(poll_interval = default_poll_interval) cpu body =
  if priority < 0 || priority >= priority_levels then invalid_arg "Proc.spawn: priority";
  let pid = !(cpu.next_pid) in
  incr cpu.next_pid;
  let rec p =
    {
      pid;
      name;
      priority;
      cpu;
      state = Blocked;
      activity = Thunk (fun () -> run_fiber p body);
      version = 0;
      on_poll = (fun _ -> 0.0);
      stall_signal = None;
      poll_interval;
      yield_waiting = false;
      work_time = 0.0;
      msg_time = 0.0;
      finished_at = Float.nan;
      n_steps = 0;
      on_exit = [];
      failure = None;
    }
  in
  enqueue_ready p;
  p

(** [join target] blocks the calling process until [target] finishes.
    Re-raises [target]'s failure, if any, in the caller. *)
let join target =
  let caller = self () in
  if target.state <> Finished then begin
    target.on_exit <- (fun () -> wakeup caller) :: target.on_exit;
    block ()
  end;
  match target.failure with None -> () | Some e -> raise e

let finished p = p.state = Finished
