(** Structure-of-arrays binary min-heap keyed by [(time, sequence)] pairs.

    The sequence number breaks ties so that events scheduled for the same
    instant fire in FIFO order, which keeps the simulation deterministic.

    The keys live in parallel flat arrays — an unboxed [float array] for
    the times and an [int array] for the sequence numbers — so sifting
    touches no boxed values and pushing allocates nothing beyond the
    occasional capacity doubling.  Because every [(time, seq)] key is
    unique (sequence numbers never repeat), the pop order is a total
    order independent of the internal array layout: this representation
    pops bit-identically to the boxed-entry heap it replaced. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h value =
  let cap = Array.length h.times in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let times' = Array.make cap' 0.0 in
  let seqs' = Array.make cap' 0 in
  (* The dummy cell only extends the array; it is overwritten before it
     can ever be observed because [size] bounds all reads. *)
  let values' = Array.make cap' value in
  Array.blit h.times 0 times' 0 h.size;
  Array.blit h.seqs 0 seqs' 0 h.size;
  Array.blit h.values 0 values' 0 h.size;
  h.times <- times';
  h.seqs <- seqs';
  h.values <- values'

let push h ~time ~seq value =
  if h.size = Array.length h.times then grow h value;
  let times = h.times and seqs = h.seqs and values = h.values in
  (* Sift up by moving the hole: each step copies one entry down instead
     of swapping, and the new element is written exactly once. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < times.(p) || (time = times.(p) && seq < seqs.(p)) then begin
      times.(!i) <- times.(p);
      seqs.(!i) <- seqs.(p);
      values.(!i) <- values.(p);
      i := p
    end
    else continue := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  values.(!i) <- value

(* Non-allocating root access: callers must check [is_empty] first. *)

let top_time h = h.times.(0)
let top_seq h = h.seqs.(0)
let top_value h = h.values.(0)

(** [drop h] removes the minimum entry without allocating.  Undefined on
    an empty heap (callers check [is_empty]/[top_time] first). *)
let drop h =
  h.size <- h.size - 1;
  let n = h.size in
  if n > 0 then begin
    let times = h.times and seqs = h.seqs and values = h.values in
    let time = times.(n) and seq = seqs.(n) and v = values.(n) in
    (* Sift the hole down from the root, then drop the last entry in. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (times.(r) < times.(l) || (times.(r) = times.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        if times.(c) < time || (times.(c) = time && seqs.(c) < seq) then begin
          times.(!i) <- times.(c);
          seqs.(!i) <- seqs.(c);
          values.(!i) <- values.(c);
          i := c
        end
        else continue := false
      end
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    values.(!i) <- v
  end

let peek h =
  if h.size = 0 then None
  else Some { time = h.times.(0); seq = h.seqs.(0); value = h.values.(0) }

let pop h =
  if h.size = 0 then None
  else begin
    let top = { time = h.times.(0); seq = h.seqs.(0); value = h.values.(0) } in
    drop h;
    Some top
  end
