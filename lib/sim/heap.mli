(** Structure-of-arrays binary min-heap keyed by [(time, sequence)]; ties
    break in FIFO order so simulations are deterministic.  Times live in
    an unboxed [float array] and sequence numbers in an [int array], so
    push/drop allocate nothing beyond occasional capacity doublings. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~time ~seq v] inserts [v]; [seq] orders same-time entries.
    Allocation-free except when the backing arrays grow. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** Non-allocating access to the minimum entry.  Undefined on an empty
    heap — callers must check {!is_empty} first. *)
val top_time : 'a t -> float

val top_seq : 'a t -> int
val top_value : 'a t -> 'a

(** [drop h] removes the minimum entry without allocating.  Undefined on
    an empty heap. *)
val drop : 'a t -> unit

(** Allocating compatibility interface. *)

val peek : 'a t -> 'a entry option
val pop : 'a t -> 'a entry option
