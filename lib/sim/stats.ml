(** Online statistics: counters, mean/variance accumulators, histograms.

    Used by the protocol and the benchmark harness to report message
    counts, miss latencies and time breakdowns. *)

type counter = { mutable count : int }

let counter () = { count = 0 }
let incr_counter c = c.count <- c.count + 1
let add_counter c n = c.count <- c.count + n
let counter_value c = c.count

(** Welford's online mean/variance, plus min/max. *)
type summary = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let summary () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let observe s x =
  s.n <- s.n + 1;
  let delta = x -. s.mean in
  s.mean <- s.mean +. (delta /. float_of_int s.n);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean));
  if x < s.min then s.min <- x;
  if x > s.max then s.max <- x

let count s = s.n
let mean s = if s.n = 0 then 0.0 else s.mean
let variance s = if s.n < 2 then 0.0 else s.m2 /. float_of_int (s.n - 1)
let stddev s = sqrt (variance s)
let minimum s = s.min
let maximum s = s.max
let total s = s.mean *. float_of_int s.n

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%g sd=%g min=%g max=%g" s.n (mean s) (stddev s)
    s.min s.max

(** Fixed-bucket histogram over [\[lo, hi)] with [buckets] equal bins plus
    underflow/overflow bins. *)
type histogram = {
  lo : float;
  hi : float;
  bins : int array;
  mutable under : int;
  mutable over : int;
  mutable observations : int;
}

let histogram ~lo ~hi ~buckets =
  if buckets <= 0 || hi <= lo then invalid_arg "Stats.histogram";
  { lo; hi; bins = Array.make buckets 0; under = 0; over = 0; observations = 0 }

let record h x =
  h.observations <- h.observations + 1;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    let width = (h.hi -. h.lo) /. float_of_int (Array.length h.bins) in
    let i = int_of_float ((x -. h.lo) /. width) in
    let i = if i >= Array.length h.bins then Array.length h.bins - 1 else i in
    h.bins.(i) <- h.bins.(i) + 1
  end

let observations h = h.observations

(** [percentile h p] approximates the [p]-th percentile (0-100) from the
    bucket midpoints.  Under/overflow observations clamp to the bounds.

    Linear buckets cannot resolve tail quantiles (p999) of long-tailed
    distributions: past the knee everything lands in the overflow bin.
    Use {!log_histogram}/{!log_percentile} wherever tail percentiles are
    reported. *)
let percentile h p =
  if h.observations = 0 then 0.0
  else begin
    let target = int_of_float (ceil (float_of_int h.observations *. p /. 100.0)) in
    let target = if target < 1 then 1 else target in
    let width = (h.hi -. h.lo) /. float_of_int (Array.length h.bins) in
    let acc = ref h.under in
    if !acc >= target then h.lo
    else begin
      let result = ref h.hi in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= target then begin
               result := h.lo +. ((float_of_int i +. 0.5) *. width);
               raise Exit
             end)
           h.bins
       with Exit -> ());
      !result
    end
  end

(** Log-spaced (HDR-style) histogram: bucket boundaries grow
    geometrically, so relative resolution is constant across the whole
    range and tail quantiles (p99, p999) stay accurate where a linear
    histogram would lump everything into its overflow bin.

    [per_decade] buckets cover each factor of ten, so the relative width
    of one bucket is [10^(1/per_decade) - 1] (about 4.7% at the default
    50/decade).  Exact minimum and maximum are tracked so the extreme
    quantiles (p0, p100) are exact and every estimate is clamped into
    the observed range. *)
type log_histogram = {
  l_lo : float;  (** smallest resolvable value; smaller ones count in [l_under] *)
  l_per_decade : float;
  l_bins : int array;
  mutable l_under : int;
  mutable l_over : int;
  mutable l_count : int;
  mutable l_sum : float;
  mutable l_min : float;
  mutable l_max : float;
}

let log_histogram ?(per_decade = 50) ~lo ~hi () =
  if lo <= 0.0 || hi <= lo || per_decade <= 0 then invalid_arg "Stats.log_histogram";
  let nbins = int_of_float (ceil (log10 (hi /. lo) *. float_of_int per_decade)) in
  {
    l_lo = lo;
    l_per_decade = float_of_int per_decade;
    l_bins = Array.make (max nbins 1) 0;
    l_under = 0;
    l_over = 0;
    l_count = 0;
    l_sum = 0.0;
    l_min = infinity;
    l_max = neg_infinity;
  }

let log_index h x = int_of_float (Float.log10 (x /. h.l_lo) *. h.l_per_decade)

let log_record h x =
  h.l_count <- h.l_count + 1;
  h.l_sum <- h.l_sum +. x;
  if x < h.l_min then h.l_min <- x;
  if x > h.l_max then h.l_max <- x;
  if x < h.l_lo then h.l_under <- h.l_under + 1
  else
    let i = log_index h x in
    if i >= Array.length h.l_bins then h.l_over <- h.l_over + 1
    else h.l_bins.(i) <- h.l_bins.(i) + 1

let log_observations h = h.l_count
let log_mean h = if h.l_count = 0 then 0.0 else h.l_sum /. float_of_int h.l_count
let log_min h = h.l_min
let log_max h = h.l_max

(* Geometric midpoint of bucket [i]: sqrt(lower * upper) in log space. *)
let log_bucket_mid h i = h.l_lo *. (10.0 ** ((float_of_int i +. 0.5) /. h.l_per_decade))

(** [log_percentile h p] — the [p]-th percentile (0-100).  Estimates are
    bucket midpoints clamped to the exact observed [min, max], so p0 and
    p100 are exact and every estimate is within one bucket's relative
    width of the true sample quantile. *)
let log_percentile h p =
  if h.l_count = 0 then 0.0
  else if p <= 0.0 then h.l_min
  else if p >= 100.0 then h.l_max
  else begin
    let clamp v = Float.min h.l_max (Float.max h.l_min v) in
    let target = int_of_float (ceil (float_of_int h.l_count *. p /. 100.0)) in
    let target = if target < 1 then 1 else target in
    let acc = ref h.l_under in
    if !acc >= target then h.l_min
    else begin
      let result = ref h.l_max in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= target then begin
               result := clamp (log_bucket_mid h i);
               raise Exit
             end)
           h.l_bins
       with Exit -> ());
      !result
    end
  end

(** [log_merge dst src] — add [src]'s counts into [dst]; both must have
    been created with the same [lo]/[hi]/[per_decade]. *)
let log_merge dst src =
  if
    dst.l_lo <> src.l_lo
    || dst.l_per_decade <> src.l_per_decade
    || Array.length dst.l_bins <> Array.length src.l_bins
  then invalid_arg "Stats.log_merge: shape mismatch";
  Array.iteri (fun i n -> dst.l_bins.(i) <- dst.l_bins.(i) + n) src.l_bins;
  dst.l_under <- dst.l_under + src.l_under;
  dst.l_over <- dst.l_over + src.l_over;
  dst.l_count <- dst.l_count + src.l_count;
  dst.l_sum <- dst.l_sum +. src.l_sum;
  if src.l_min < dst.l_min then dst.l_min <- src.l_min;
  if src.l_max > dst.l_max then dst.l_max <- src.l_max

(** [log_nonzero h] — the sparse bucket contents as [(index, count)]
    pairs (index -1 is the underflow bin, [Array.length] the overflow
    bin), for serialisation and bit-identical comparison of runs. *)
let log_nonzero h =
  let acc = ref [] in
  if h.l_over > 0 then acc := (Array.length h.l_bins, h.l_over) :: !acc;
  for i = Array.length h.l_bins - 1 downto 0 do
    if h.l_bins.(i) > 0 then acc := (i, h.l_bins.(i)) :: !acc
  done;
  if h.l_under > 0 then acc := (-1, h.l_under) :: !acc;
  !acc

(* --- host GC accounting (for the speed benches and --gc-stats) --- *)

(** Host-side allocation between two marks: how much real memory churn a
    simulation run cost, reported alongside events/sec so allocation
    regressions in the event core are visible. *)
type gc_delta = {
  gc_minor_words : float;
  gc_major_words : float;
  gc_promoted_words : float;
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_compactions : int;
}

let gc_mark () = Gc.quick_stat ()

let gc_delta (a : Gc.stat) =
  let b = Gc.quick_stat () in
  {
    gc_minor_words = b.Gc.minor_words -. a.Gc.minor_words;
    gc_major_words = b.Gc.major_words -. a.Gc.major_words;
    gc_promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
    gc_minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
    gc_major_collections = b.Gc.major_collections - a.Gc.major_collections;
    gc_compactions = b.Gc.compactions - a.Gc.compactions;
  }

let pp_gc_delta ppf d =
  Format.fprintf ppf
    "minor %.1f Mw, major %.1f Mw, promoted %.1f Mw, collections %d minor / %d major, %d compactions"
    (d.gc_minor_words /. 1e6) (d.gc_major_words /. 1e6) (d.gc_promoted_words /. 1e6)
    d.gc_minor_collections d.gc_major_collections d.gc_compactions
