(** Lightweight debug tracing for the simulator, built on [Logs].

    Tracing is off by default; tests and the CLI enable it with
    [Trace.enable ()].  Trace lines carry the virtual timestamp so that
    protocol races can be replayed from the output. *)

let src = Logs.Src.create "shasta.sim" ~doc:"Shasta simulator tracing"

module Log = (val Logs.src_log src : Logs.LOG)

let enable ?(level = Logs.Debug) () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src (Some level)

let disable () = Logs.Src.set_level src None

(* SHASTA_TRACE=debug|info enables tracing at load time, so a CLI run
   can be traced without a code change or a flag. *)
let () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "SHASTA_TRACE") with
  | Some "debug" -> enable ~level:Logs.Debug ()
  | Some "info" -> enable ~level:Logs.Info ()
  | Some _ | None -> ()

(** [f engine fmt ...] logs a debug line prefixed with the virtual time. *)
let f engine fmt =
  Format.kasprintf
    (fun s -> Log.debug (fun m -> m "[%a] %s" Units.pp_time (Engine.now engine) s))
    fmt
