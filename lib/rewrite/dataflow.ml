(** Pointer-class dataflow analysis.

    ATOM-style analysis deciding, for each load/store, whether its base
    register provably points into private memory (stack or static data) —
    in which case no miss check is inserted (Section 2.2: "Since the
    static and stack data areas are not shared, Shasta does not insert
    checks for any loads or stores that are clearly to these areas").

    Lattice per register:
    {v  Private  <  Shared  <  Top  v}
    with a pointer-arithmetic-aware join: adding a private integer offset
    to a shared pointer stays shared; any uncertainty goes to [Top], which
    (like [Shared]) receives checks.

    Float registers are tracked with the same lattice: an address can
    round-trip through the float file ([Cvt_if]/[Fmov]/[Cvt_fi]), so a
    [Cvt_fi] destination takes the class of its float source rather than
    a blanket [Private] — otherwise a shared pointer laundered through a
    float register would silently lose its check. *)

type cls = Private | Shared | Top

let join a b =
  match (a, b) with
  | Private, Private -> Private
  | Shared, Shared -> Shared
  | Private, Shared | Shared, Private -> Top
  | Top, _ | _, Top -> Top

(* Address arithmetic: base + offset.  A shared base plus a private
   (plain integer) offset is still a shared address. *)
let add_cls a b =
  match (a, b) with
  | Private, Private -> Private
  | Shared, Private | Private, Shared -> Shared
  | Shared, Shared -> Top (* adding two pointers is not address arithmetic *)
  | Top, _ | _, Top -> Top

type state = { ints : cls array; floats : cls array }
(** one class per integer and per float register *)

let sp = 30
let gp = 29
let zero = 31

let entry_state () =
  let ints = Array.make 32 Top in
  ints.(sp) <- Private;
  ints.(gp) <- Private;
  ints.(zero) <- Private;
  let floats = Array.make 32 Top in
  floats.(zero) <- Private (* f31 reads as 0.0 *);
  { ints; floats }

let bottom () = { ints = Array.make 32 Private; floats = Array.make 32 Private }
let copy s = { ints = Array.copy s.ints; floats = Array.copy s.floats }

let join_state (a : state) (b : state) =
  let changed = ref false in
  let merge xa xb =
    for i = 0 to 31 do
      let j = join xa.(i) xb.(i) in
      if j <> xa.(i) then begin
        xa.(i) <- j;
        changed := true
      end
    done
  in
  merge a.ints b.ints;
  merge a.floats b.floats;
  !changed

(** Transfer function for one instruction, given [shared_base]: an [Li]
    of an absolute address classifies by which region it falls in. *)
let transfer ~shared_base (s : state) (insn : Alpha.Insn.t) =
  let set r c = if r <> zero then s.ints.(r) <- c in
  let fset f c = if f <> zero then s.floats.(f) <- c in
  match insn with
  | Alpha.Insn.Li (r, v) ->
      set r (if Int64.compare v (Int64.of_int shared_base) >= 0 then Shared else Private)
  | Alpha.Insn.Lif (f, v) ->
      (* A float literal can still encode an address-sized value. *)
      fset f (if v >= float_of_int shared_base then Shared else Private)
  | Alpha.Insn.Binop (op, a, b, d) -> (
      let cb = match b with Alpha.Insn.Reg r -> s.ints.(r) | Alpha.Insn.Imm _ -> Private in
      match op with
      | Alpha.Insn.Add | Alpha.Insn.Sub -> set d (add_cls s.ints.(a) cb)
      | Alpha.Insn.Mul | Alpha.Insn.And | Alpha.Insn.Or | Alpha.Insn.Xor | Alpha.Insn.Sll
      | Alpha.Insn.Srl | Alpha.Insn.Sra ->
          set d (match (s.ints.(a), cb) with Private, Private -> Private | _ -> Top)
      | Alpha.Insn.Cmpeq | Alpha.Insn.Cmplt | Alpha.Insn.Cmple | Alpha.Insn.Cmpult ->
          set d Private (* booleans are plain integers *))
  | Alpha.Insn.Ld (_, d, _, _) -> set d Top (* pointer loaded from memory: unknown *)
  | Alpha.Insn.Ll (_, d, _, _) -> set d Top
  | Alpha.Insn.Sc (_, r, _, _) -> set r Private (* success flag *)
  | Alpha.Insn.Ldf (d, _, _) -> fset d Top
  | Alpha.Insn.Fmov (a, d) -> fset d s.floats.(a)
  | Alpha.Insn.Cvt_if (r, f) -> fset f s.ints.(r)
  | Alpha.Insn.Cvt_fi (f, r) -> set r s.floats.(f) (* a laundered pointer keeps its class *)
  | Alpha.Insn.Fbinop (op, a, b, d) -> (
      match op with
      | Alpha.Insn.Fadd | Alpha.Insn.Fsub -> fset d (add_cls s.floats.(a) s.floats.(b))
      | Alpha.Insn.Fmul | Alpha.Insn.Fdiv ->
          fset d (match (s.floats.(a), s.floats.(b)) with Private, Private -> Private | _ -> Top))
  | Alpha.Insn.Fcmp (_, _, _, r) -> set r Private
  | Alpha.Insn.Call _ ->
      (* Callee may clobber any register except sp/gp by convention; the
         float file has no preserved pointer registers at all. *)
      for i = 0 to 31 do
        if i <> sp && i <> gp && i <> zero then s.ints.(i) <- Top;
        if i <> zero then s.floats.(i) <- Top
      done
  | Alpha.Insn.Stf _ | Alpha.Insn.St _ | Alpha.Insn.Mb
  | Alpha.Insn.Br _ | Alpha.Insn.Bcond _ | Alpha.Insn.Ret | Alpha.Insn.Halt
  | Alpha.Insn.Load_check _ | Alpha.Insn.Store_check _ | Alpha.Insn.Batch_check _
  | Alpha.Insn.Ll_check _ | Alpha.Insn.Sc_check _ | Alpha.Insn.Gran_lookup _
  | Alpha.Insn.Mb_check | Alpha.Insn.Poll | Alpha.Insn.Prefetch_excl _ | Alpha.Insn.Label _ ->
      ()

(** [analyze ~shared_base cfg] computes, for every instruction index, the
    register-class state {e before} that instruction. *)
let analyze ~shared_base (cfg : Cfg.t) =
  let code = cfg.Cfg.proc.Alpha.Program.code in
  let n = Array.length code in
  let nb = Cfg.n_blocks cfg in
  let block_in = Array.init nb (fun i -> if i = 0 then entry_state () else bottom ()) in
  (* Unvisited blocks start at bottom (all Private) so the first join
     copies the incoming state; track visited to seed correctly. *)
  let visited = Array.make nb false in
  visited.(0) <- true;
  let worklist = Queue.create () in
  Queue.push 0 worklist;
  while not (Queue.is_empty worklist) do
    let b = Queue.pop worklist in
    let blk = Cfg.block cfg b in
    let s = copy block_in.(b) in
    for i = blk.Cfg.first to blk.Cfg.last do
      transfer ~shared_base s code.(i)
    done;
    List.iter
      (fun succ ->
        if not visited.(succ) then begin
          visited.(succ) <- true;
          Array.blit s.ints 0 block_in.(succ).ints 0 32;
          Array.blit s.floats 0 block_in.(succ).floats 0 32;
          Queue.push succ worklist
        end
        else if join_state block_in.(succ) s then Queue.push succ worklist)
      blk.Cfg.succs
  done;
  (* Expand to per-instruction "before" states. *)
  let before = Array.make n (entry_state ()) in
  for b = 0 to nb - 1 do
    let blk = Cfg.block cfg b in
    let s = copy block_in.(b) in
    for i = blk.Cfg.first to blk.Cfg.last do
      before.(i) <- copy s;
      transfer ~shared_base s code.(i)
    done
  done;
  before
