(** Static Eraser-style race detector over an {!Alpha.Program}.

    SPMD model: [nprocs] threads all run [entry] with the convention
    [main(a0..a2 = shared/config args, a3 = thread id, a4 = nprocs)].
    Synchronisation is visible in the instruction stream in two forms —
    the {!Alpha.Runtime} system calls ([sync_lock]/[sync_unlock] with
    the lock id in [a0], [sync_barrier]) and the paper's Figure-1 LL/SC
    spin-lock idiom (acquire = successful [Sc] to a lock word, release
    = store of zero to the same word).

    For every shared access the analysis derives:

    - an {e affine address} [arg_base + tc*tid + [lo,hi]] — a symbolic
      base (one of the entry arguments), a thread-id coefficient, and
      an offset interval (loop-variant offsets widen to an interval);
    - the {e must-lockset} at the access (Eraser's discipline:
      intersection at joins, so a lock only counts if held on every
      path), with constant-id locks and LL/SC lock-word addresses as
      lock identities;
    - the {e barrier phase} as an interval plus a congruence
      [counter = r (mod m)] — two accesses whose phases cannot coincide
      (disjoint intervals, or incompatible congruences) are ordered by
      a barrier and cannot race;
    - a {e thread-id constraint} ([tid = n] / [tid <> n]) recovered
      edge-sensitively from branches on [a3], so "if (tid == 0) init"
      patterns exonerate without annotations.

    Two accesses race when at least one writes, no common lock
    instance protects both, their barrier phases may coincide, and
    there exist distinct threads [t <> t'] (consistent with the tid
    constraints) whose concrete address ranges overlap.  All analysis
    is whole-program: the interpreter has a single global register
    file, so callee entry state = join over call sites and caller
    after-call state = callee exit state, which carries locksets and
    phases into helper procedures. *)

(* ------------------------------------------------------------------ *)
(* Affine values with interval offsets.                                *)

type abase =
  | Bzero  (** plain integer, no symbolic base *)
  | Barg of int  (** entry value of argument register [a0+i] *)
  | Bpriv  (** private pointer (sp/gp): never shared, never reported *)

type aval =
  | Unknown
  | Aff of { b : abase; tc : int; lo : int; hi : int }
      (** [b + tc*tid + [lo,hi]]; [hi = max_int] / [lo = min_int] act
          as infinities after interval widening *)

let inf = max_int
let ninf = min_int
let big = 1 lsl 45 (* finite-arithmetic guard: beyond this, saturate *)
let clamp x = if x >= big then inf else if x <= -big then ninf else x

let sat_add a b =
  if a = inf || b = inf then inf
  else if a = ninf || b = ninf then ninf
  else clamp (a + b)

let konst k = Aff { b = Bzero; tc = 0; lo = k; hi = k }

let aadd x y =
  match (x, y) with
  | Aff a, Aff b -> (
      let base =
        match (a.b, b.b) with
        | Bzero, c | c, Bzero -> Some c
        | _ -> None (* adding two pointers is not address arithmetic *)
      in
      match base with
      | Some b' ->
          Aff { b = b'; tc = a.tc + b.tc; lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
      | None -> Unknown)
  | _ -> Unknown

let asub x y =
  match (x, y) with
  | Aff a, Aff b when b.b = Bzero ->
      Aff { b = a.b; tc = a.tc - b.tc; lo = sat_add a.lo (-b.hi); hi = sat_add a.hi (-b.lo) }
  | Aff a, Aff b when a.b = b.b ->
      Aff { b = Bzero; tc = a.tc - b.tc; lo = sat_add a.lo (-b.hi); hi = sat_add a.hi (-b.lo) }
  | _ -> Unknown

let ascale x s =
  match x with
  | _ when s = 0 -> konst 0
  | Aff a when a.b = Bzero ->
      let m v =
        if v = inf then if s > 0 then inf else ninf
        else if v = ninf then if s > 0 then ninf else inf
        else clamp (v * s)
      in
      let l = m a.lo and h = m a.hi in
      Aff { b = Bzero; tc = a.tc * s; lo = min l h; hi = max l h }
  | _ -> Unknown

let amul x y =
  match (x, y) with
  | _, Aff { b = Bzero; tc = 0; lo; hi } when lo = hi -> ascale x lo
  | Aff { b = Bzero; tc = 0; lo; hi }, _ when lo = hi -> ascale y lo
  | _ -> Unknown

let exact_const = function
  | Aff { b = Bzero; tc = 0; lo; hi } when lo = hi -> Some lo
  | _ -> None

(* Widening join: an offset bound that grows at a join point goes
   straight to infinity, so loop inductions converge in one round. *)
let ajoin_widen old nu =
  match (old, nu) with
  | Unknown, _ -> (Unknown, false)
  | _, Unknown -> (Unknown, true)
  | Aff a, Aff b ->
      if a.b = b.b && a.tc = b.tc then begin
        let lo = if b.lo < a.lo then ninf else a.lo in
        let hi = if b.hi > a.hi then inf else a.hi in
        if lo = a.lo && hi = a.hi then (old, false) else (Aff { a with lo; hi }, true)
      end
      else (Unknown, true)

(* ------------------------------------------------------------------ *)
(* Locks, barrier phases, thread-id constraints.                       *)

type lock =
  | Lconst of int  (** [sync_lock] with a constant id *)
  | Lsym of abase * int * int  (** LL/SC lock word at [base + tc*tid + off] *)

let lock_of_addr = function
  | Aff { b; tc; lo; hi } when lo = hi -> Some (Lsym (b, tc, lo))
  | _ -> None

(* A lock instance is shared between two threads only if its identity
   does not depend on the thread id. *)
let lock_cross_thread = function Lconst _ -> true | Lsym (_, tc, _) -> tc = 0

type phase = { p_lo : int; p_hi : int; p_m : int; p_r : int }
(** barrier-epoch counter: interval [[p_lo,p_hi]] (p_hi = max_int once
    widened) and congruence [counter = p_r (mod p_m)]; [p_m = 0] means
    the counter is exactly [p_r]. *)

let phase0 = { p_lo = 0; p_hi = 0; p_m = 0; p_r = 0 }
let phase_cap = 64

let phase_bump p =
  {
    p_lo = min (p.p_lo + 1) phase_cap;
    p_hi = (if p.p_hi >= phase_cap then inf else p.p_hi + 1);
    p_m = p.p_m;
    p_r = (if p.p_m = 0 then p.p_r + 1 else (p.p_r + 1) mod p.p_m);
  }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let phase_join a b =
  let m = gcd (gcd a.p_m b.p_m) (abs (a.p_r - b.p_r)) in
  let r = if m = 0 then a.p_r else ((a.p_r mod m) + m) mod m in
  let hi =
    if a.p_hi = inf || b.p_hi = inf then inf
    else if max a.p_hi b.p_hi >= phase_cap then inf
    else max a.p_hi b.p_hi
  in
  { p_lo = min a.p_lo b.p_lo; p_hi = hi; p_m = m; p_r = r }

(** Can the two barrier-epoch counters take the same value?  If not,
    a barrier separates every pair of executions of the two points. *)
let phases_may_coincide a b =
  let overlap = a.p_hi >= b.p_lo && b.p_hi >= a.p_lo in
  let g = gcd a.p_m b.p_m in
  let cong = if g = 0 then a.p_r = b.p_r else abs (a.p_r - b.p_r) mod g = 0 in
  overlap && cong

type tidc = Tany | Teq of int | Tne of int

let tid_join a b = if a = b then a else Tany
let tid_ok c t = match c with Tany -> true | Teq n -> t = n | Tne n -> t <> n

(* Refine a constraint with a new branch fact; [None] = edge dead. *)
let tid_meet c fact =
  match (c, fact) with
  | Tany, f -> Some f
  | _, Tany -> Some c
  | Teq m, Teq n -> if m = n then Some c else None
  | Teq m, Tne n -> if m = n then None else Some c
  | Tne m, Teq n -> if m = n then None else Some (Teq n)
  | Tne _, Tne _ -> Some c (* keeping either fact is sound *)

(* ------------------------------------------------------------------ *)
(* Per-point analysis state.                                           *)

type rstate = {
  vals : aval array;  (** 32 integer registers *)
  mutable locks : lock list;  (** must-held, sorted *)
  mutable ph : phase;
  mutable tid : tidc;
}

let arg_reg i = 16 + i
let tid_arg = 3

let entry_rstate () =
  let vals = Array.make 32 Unknown in
  vals.(31) <- konst 0;
  for i = 0 to 5 do
    vals.(arg_reg i) <-
      (if i = tid_arg then Aff { b = Bzero; tc = 1; lo = 0; hi = 0 }
       else Aff { b = Barg i; tc = 0; lo = 0; hi = 0 })
  done;
  vals.(Dataflow.sp) <- Aff { b = Bpriv; tc = 0; lo = 0; hi = 0 };
  vals.(Dataflow.gp) <- Aff { b = Bpriv; tc = 0; lo = 0; hi = 0 };
  { vals; locks = []; ph = phase0; tid = Tany }

let copy_rstate s = { s with vals = Array.copy s.vals }

let add_lock s l =
  if not (List.mem l s.locks) then s.locks <- List.sort compare (l :: s.locks)

let del_lock s l = s.locks <- List.filter (fun x -> x <> l) s.locks

let join_rstate dst src =
  let changed = ref false in
  for r = 0 to 31 do
    let v, c = ajoin_widen dst.vals.(r) src.vals.(r) in
    if c then begin
      dst.vals.(r) <- v;
      changed := true
    end
  done;
  let inter = List.filter (fun l -> List.mem l src.locks) dst.locks in
  if List.length inter <> List.length dst.locks then begin
    dst.locks <- inter;
    changed := true
  end;
  let p = phase_join dst.ph src.ph in
  if p <> dst.ph then begin
    dst.ph <- p;
    changed := true
  end;
  let t = tid_join dst.tid src.tid in
  if t <> dst.tid then begin
    dst.tid <- t;
    changed := true
  end;
  !changed

(* ------------------------------------------------------------------ *)
(* Accesses, atoms, races.                                             *)

type access = { ac_arg : int; ac_tc : int; ac_lo : int; ac_hi : int; ac_width : int }

type atom = {
  at_proc : string;
  at_idx : int;
  at_write : bool;
  at_acc : access;
  at_locks : lock list;
  at_phase : phase;
  at_tid : tidc;
  at_desc : string;
}

type race = {
  r_a : atom;
  r_b : atom;
  r_t : int;  (** witness thread executing [r_a] *)
  r_t' : int;  (** witness thread executing [r_b] *)
  r_why : string;
}

type report = {
  rep_name : string;
  rep_nprocs : int;
  rep_atoms : atom list;
  rep_unresolved : int;  (** memory accesses whose address did not resolve *)
  rep_races : race list;
}

let pp_lock ppf = function
  | Lconst id -> Format.fprintf ppf "lock(%d)" id
  | Lsym (b, tc, off) ->
      let base =
        match b with Barg i -> Printf.sprintf "a%d" i | Bzero -> "0" | Bpriv -> "sp"
      in
      if tc = 0 then Format.fprintf ppf "llsc(%s+%d)" base off
      else Format.fprintf ppf "llsc(%s+%d*tid+%d)" base tc off

let pp_phase ppf p =
  let hi = if p.p_hi = inf then "inf" else string_of_int p.p_hi in
  if p.p_m = 0 then Format.fprintf ppf "[%d,%s]=%d" p.p_lo hi p.p_r
  else Format.fprintf ppf "[%d,%s]=%d(mod %d)" p.p_lo hi p.p_r p.p_m

let pp_tid ppf = function
  | Tany -> Format.fprintf ppf "any"
  | Teq n -> Format.fprintf ppf "tid=%d" n
  | Tne n -> Format.fprintf ppf "tid<>%d" n

let pp_atom ppf a =
  let hi = if a.at_acc.ac_hi = inf then "inf" else string_of_int a.at_acc.ac_hi in
  let lo = if a.at_acc.ac_lo = ninf then "-inf" else string_of_int a.at_acc.ac_lo in
  Format.fprintf ppf "%s@%d %s a%d%s+[%s,%s] w%d locks{%a} phase %a (%a)" a.at_proc
    a.at_idx
    (if a.at_write then "write" else "read")
    a.at_acc.ac_arg
    (if a.at_acc.ac_tc = 0 then "" else Printf.sprintf "+%d*tid" a.at_acc.ac_tc)
    lo hi a.at_acc.ac_width
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_lock)
    a.at_locks pp_phase a.at_phase pp_tid a.at_tid

(* ------------------------------------------------------------------ *)
(* The whole-program fixed point.                                      *)

type ctx = {
  program : Alpha.Program.t;
  shared_args : int list;
  entry_states : (string, rstate) Hashtbl.t;
  exit_states : (string, rstate) Hashtbl.t;
  sync_addrs : (abase * int * int, unit) Hashtbl.t;
      (** addresses of LL/SC lock words: accesses to them are
          synchronisation traffic, not data atoms *)
  mutable atoms : atom list;
  mutable unresolved : int;
  mutable collect : bool;  (** final pass: record atoms *)
  mutable dirty : bool;  (** an entry or exit state grew this sweep *)
}

let dest_int_reg = function
  | Alpha.Insn.Binop (_, _, _, d)
  | Alpha.Insn.Li (d, _)
  | Alpha.Insn.Ld (_, d, _, _)
  | Alpha.Insn.Ll (_, d, _, _)
  | Alpha.Insn.Sc (_, d, _, _)
  | Alpha.Insn.Fcmp (_, _, _, d)
  | Alpha.Insn.Cvt_fi (_, d)
  | Alpha.Insn.Load_check (_, d, _, _) ->
      Some d
  | _ -> None

let rget s r = if r = 31 then konst 0 else s.vals.(r)
let rset s r v = if r <> 31 then s.vals.(r) <- v
let addr_of s off base = aadd (rget s base) (konst off)

let key_of_addr = function
  | Aff { b; tc; lo; hi } when lo = hi -> Some (b, tc, lo)
  | _ -> None

let note_sync_addr ctx addr =
  match key_of_addr addr with
  | Some k -> if not (Hashtbl.mem ctx.sync_addrs k) then Hashtbl.replace ctx.sync_addrs k ()
  | None -> ()

let is_sync_addr ctx addr =
  match key_of_addr addr with Some k -> Hashtbl.mem ctx.sync_addrs k | None -> false

let emit_atom ctx s ~proc ~idx ~write ~width ~insn addr =
  if ctx.collect then
    match addr with
    | Aff { b = Barg i; tc; lo; hi } when List.mem i ctx.shared_args ->
        let acc = { ac_arg = i; ac_tc = tc; ac_lo = lo; ac_hi = hi; ac_width = width } in
        ctx.atoms <-
          {
            at_proc = proc;
            at_idx = idx;
            at_write = write;
            at_acc = acc;
            at_locks = s.locks;
            at_phase = s.ph;
            at_tid = s.tid;
            at_desc = Format.asprintf "%a" Alpha.Insn.pp insn;
          }
          :: ctx.atoms
    | Aff _ -> () (* non-shared base: private, absolute, or unshared arg *)
    | Unknown -> ctx.unresolved <- ctx.unresolved + 1

(* Transfer one instruction.  Returns [false] when the continuation is
   not (yet) reachable: a call into a procedure with no known exit. *)
let transfer ctx ~proc s idx (insn : Alpha.Insn.t) =
  let module I = Alpha.Insn in
  match insn with
  | I.Binop (op, a, b, d) ->
      let va = rget s a in
      let vb = match b with I.Reg r -> rget s r | I.Imm i -> konst i in
      let v =
        match op with
        | I.Add -> aadd va vb
        | I.Sub -> asub va vb
        | I.Mul -> amul va vb
        | I.Sll -> (
            match exact_const vb with
            | Some k when k >= 0 && k < 32 -> ascale va (1 lsl k)
            | _ -> Unknown)
        | _ -> Unknown
      in
      rset s d v;
      true
  | I.Li (r, v) ->
      rset s r (konst (Int64.to_int v));
      true
  | I.Ld (w, d, off, b) ->
      let addr = addr_of s off b in
      if not (is_sync_addr ctx addr) then
        emit_atom ctx s ~proc ~idx ~write:false ~width:(I.bytes_of_width w) ~insn addr;
      rset s d Unknown;
      true
  | I.Ldf (_, off, b) ->
      let addr = addr_of s off b in
      if not (is_sync_addr ctx addr) then
        emit_atom ctx s ~proc ~idx ~write:false ~width:8 ~insn addr;
      true
  | I.St (w, src, off, b) ->
      let addr = addr_of s off b in
      let stores_zero =
        src = 31 || match exact_const (rget s src) with Some 0 -> true | _ -> false
      in
      let release =
        stores_zero
        &&
        match lock_of_addr addr with
        | Some l when List.mem l s.locks ->
            del_lock s l;
            true
        | _ -> is_sync_addr ctx addr
      in
      if (not release) && not (is_sync_addr ctx addr) then
        emit_atom ctx s ~proc ~idx ~write:true ~width:(I.bytes_of_width w) ~insn addr;
      true
  | I.Stf (_, off, b) ->
      let addr = addr_of s off b in
      if not (is_sync_addr ctx addr) then
        emit_atom ctx s ~proc ~idx ~write:true ~width:8 ~insn addr;
      true
  | I.Ll (_, d, off, b) ->
      note_sync_addr ctx (addr_of s off b);
      rset s d Unknown;
      true
  | I.Sc (_, d, off, b) ->
      (* The success-flag edge is handled by the block walker. *)
      note_sync_addr ctx (addr_of s off b);
      rset s d Unknown;
      true
  | I.Fcmp (_, _, _, d) | I.Cvt_fi (_, d) | I.Load_check (_, d, _, _) ->
      rset s d Unknown;
      true
  | I.Call name -> (
      match Alpha.Program.find_opt ctx.program name with
      | Some _ -> (
          (* Whole-program: feed the callee's entry, resume from its
             exit (single global register file, no save/restore). *)
          (match Hashtbl.find_opt ctx.entry_states name with
          | Some e -> if join_rstate e s then ctx.dirty <- true
          | None ->
              Hashtbl.replace ctx.entry_states name (copy_rstate s);
              ctx.dirty <- true);
          match Hashtbl.find_opt ctx.exit_states name with
          | Some ex ->
              Array.blit ex.vals 0 s.vals 0 32;
              s.locks <- ex.locks;
              s.ph <- ex.ph;
              s.tid <- ex.tid;
              true
          | None -> false)
      | None ->
          if name = Alpha.Runtime.sync_lock_proc then begin
            (match exact_const (rget s (arg_reg 0)) with
            | Some id -> add_lock s (Lconst id)
            | None -> () (* unknown id: cannot credit the lock *));
            true
          end
          else if name = Alpha.Runtime.sync_unlock_proc then begin
            (match exact_const (rget s (arg_reg 0)) with
            | Some id -> del_lock s (Lconst id)
            | None -> s.locks <- [] (* unknown id: drop everything *));
            true
          end
          else if name = Alpha.Runtime.sync_barrier_proc then begin
            s.ph <- phase_bump s.ph;
            true
          end
          else begin
            (* Unknown external call: clobber the register values. *)
            for r = 0 to 30 do
              s.vals.(r) <- Unknown
            done;
            true
          end)
  | I.Lif _ | I.Fbinop _ | I.Cvt_if _ | I.Fmov _ | I.Mb | I.Br _ | I.Bcond _ | I.Ret
  | I.Halt | I.Store_check _ | I.Batch_check _ | I.Ll_check _ | I.Sc_check _
  | I.Gran_lookup _ | I.Mb_check | I.Poll | I.Prefetch_excl _ | I.Label _ ->
      true

(* Walk one block from [sin].  Returns the successor edges (with
   per-edge refinements at a conditional terminator) and, when the walk
   reached the end of the block alive, its out-state. *)
let walk_block ctx (cfg : Cfg.t) blk sin =
  let code = cfg.Cfg.proc.Alpha.Program.code in
  let proc = cfg.Cfg.proc.Alpha.Program.name in
  let s = copy_rstate sin in
  let sc_flag = ref None in
  let live = ref true in
  for i = blk.Cfg.first to blk.Cfg.last do
    if !live then begin
      let insn = code.(i) in
      (match insn with
      | Alpha.Insn.Sc (_, d, off, b) -> (
          match lock_of_addr (addr_of s off b) with
          | Some l -> sc_flag := Some (d, l)
          | None -> sc_flag := None)
      | _ -> (
          (* Any other redefinition of the flag register forgets it. *)
          match (!sc_flag, dest_int_reg insn) with
          | Some (fr, _), Some d when d = fr -> sc_flag := None
          | _ -> ()));
      if not (transfer ctx ~proc s i insn) then live := false
    end
  done;
  if not !live then ([], None)
  else
    let edges =
      match code.(blk.Cfg.last) with
      | Alpha.Insn.Bcond (c, r, _) when List.length blk.Cfg.succs = 2 -> (
          let taken_b = List.nth blk.Cfg.succs 0 in
          let fall_b = List.nth blk.Cfg.succs 1 in
          (* Constant condition: prune the dead edge. *)
          match exact_const (rget s r) with
          | Some k ->
              let holds =
                match c with
                | Alpha.Insn.Eq -> k = 0
                | Alpha.Insn.Ne -> k <> 0
                | Alpha.Insn.Lt -> k < 0
                | Alpha.Insn.Le -> k <= 0
                | Alpha.Insn.Gt -> k > 0
                | Alpha.Insn.Ge -> k >= 0
              in
              [ ((if holds then taken_b else fall_b), s) ]
          | None ->
              let refine edge_taken =
                let s' = copy_rstate s in
                (* SC success: the branch tests the store-conditional
                   flag; the success edge acquires the lock. *)
                (match (!sc_flag, c) with
                | Some (fr, l), Alpha.Insn.Eq when fr = r && not edge_taken ->
                    add_lock s' l
                | Some (fr, l), Alpha.Insn.Ne when fr = r && edge_taken -> add_lock s' l
                | _ -> ());
                (* Thread-id branch: r = tid + k, tested against zero. *)
                let fact =
                  match rget s r with
                  | Aff { b = Bzero; tc = 1; lo; hi } when lo = hi -> (
                      let n = -lo in
                      match (c, edge_taken) with
                      | Alpha.Insn.Eq, true | Alpha.Insn.Ne, false -> Some (Teq n)
                      | Alpha.Insn.Ne, true | Alpha.Insn.Eq, false -> Some (Tne n)
                      | _ -> None)
                  | _ -> None
                in
                match fact with
                | None -> Some s'
                | Some f -> (
                    match tid_meet s'.tid f with
                    | Some t ->
                        s'.tid <- t;
                        Some s'
                    | None -> None (* edge is dead for every thread *))
              in
              List.concat
                [
                  (match refine true with Some s' -> [ (taken_b, s') ] | None -> []);
                  (match refine false with Some s' -> [ (fall_b, s') ] | None -> []);
                ])
      | _ -> List.map (fun succ -> (succ, s)) blk.Cfg.succs
    in
    (edges, Some s)

let is_exit_block (cfg : Cfg.t) (blk : Cfg.block) =
  blk.Cfg.succs = []
  &&
  match cfg.Cfg.proc.Alpha.Program.code.(blk.Cfg.last) with
  | Alpha.Insn.Ret -> true
  | Alpha.Insn.Halt -> false (* halting never returns to a caller *)
  | Alpha.Insn.Br _ | Alpha.Insn.Bcond _ -> false
  | _ -> true (* falling off the end returns *)

(* One intra-procedural pass from the procedure's current entry state.
   Entry/exit growth is recorded in [ctx.dirty].  When [record] is set,
   the converged block-in states are walked once more with atom
   collection on — each block exactly once, so no duplicates. *)
let analyze_proc ctx cfgs ~record name =
  match Hashtbl.find_opt ctx.entry_states name with
  | None -> ()
  | Some e ->
      let cfg : Cfg.t = List.assoc name cfgs in
      let nb = Cfg.n_blocks cfg in
      if nb > 0 then begin
        let block_in : rstate option array = Array.make nb None in
        block_in.(0) <- Some (copy_rstate e);
        let work = Queue.create () in
        Queue.push 0 work;
        while not (Queue.is_empty work) do
          let b = Queue.pop work in
          match block_in.(b) with
          | None -> ()
          | Some sin ->
              let blk = Cfg.block cfg b in
              let edges, out = walk_block ctx cfg blk sin in
              (match out with
              | Some s when is_exit_block cfg blk -> (
                  match Hashtbl.find_opt ctx.exit_states name with
                  | Some ex -> if join_rstate ex s then ctx.dirty <- true
                  | None ->
                      Hashtbl.replace ctx.exit_states name (copy_rstate s);
                      ctx.dirty <- true)
              | _ -> ());
              List.iter
                (fun (succ, s) ->
                  match block_in.(succ) with
                  | None ->
                      block_in.(succ) <- Some (copy_rstate s);
                      Queue.push succ work
                  | Some dst -> if join_rstate dst s then Queue.push succ work)
                edges
        done;
        if record then begin
          ctx.collect <- true;
          Array.iteri
            (fun b sin ->
              match sin with
              | Some sin -> ignore (walk_block ctx cfg (Cfg.block cfg b) sin)
              | None -> ())
            block_in;
          ctx.collect <- false
        end
      end

let analyze ?(shared_args = [ 0; 1 ]) ?(entry = "main") ~nprocs ~name
    (program : Alpha.Program.t) =
  let cfgs =
    List.map
      (fun (p : Alpha.Program.procedure) -> (p.Alpha.Program.name, Cfg.build p))
      (Alpha.Program.procedures program)
  in
  let ctx =
    {
      program;
      shared_args;
      entry_states = Hashtbl.create 8;
      exit_states = Hashtbl.create 8;
      sync_addrs = Hashtbl.create 8;
      atoms = [];
      unresolved = 0;
      collect = false;
      dirty = false;
    }
  in
  Hashtbl.replace ctx.entry_states entry (entry_rstate ());
  (* Joins only widen, and every per-register/lock/phase component sits
     in a finite-height lattice, so this converges; the round cap is a
     pure safety net. *)
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 64 do
    incr rounds;
    ctx.dirty <- false;
    List.iter (fun (n, _) -> analyze_proc ctx cfgs ~record:false n) cfgs;
    continue_ := ctx.dirty
  done;
  (* Final pass over the converged states, recording atoms. *)
  List.iter (fun (n, _) -> analyze_proc ctx cfgs ~record:true n) cfgs;
  let atoms = List.rev ctx.atoms in
  (* Race enumeration, including an atom against itself on two threads. *)
  let arr = Array.of_list atoms in
  let witness a b =
    let result = ref None in
    for t = 0 to nprocs - 1 do
      for t' = 0 to nprocs - 1 do
        if !result = None && t <> t' && tid_ok a.at_tid t && tid_ok b.at_tid t' then begin
          let ra_lo = sat_add (a.at_acc.ac_tc * t) a.at_acc.ac_lo in
          let ra_hi =
            sat_add (sat_add (a.at_acc.ac_tc * t) a.at_acc.ac_hi) (a.at_acc.ac_width - 1)
          in
          let rb_lo = sat_add (b.at_acc.ac_tc * t') b.at_acc.ac_lo in
          let rb_hi =
            sat_add (sat_add (b.at_acc.ac_tc * t') b.at_acc.ac_hi) (b.at_acc.ac_width - 1)
          in
          if ra_lo <= rb_hi && rb_lo <= ra_hi then result := Some (t, t')
        end
      done
    done;
    !result
  in
  let locks_in_common a b =
    List.exists (fun l -> lock_cross_thread l && List.mem l b.at_locks) a.at_locks
  in
  let races = ref [] in
  for i = 0 to Array.length arr - 1 do
    for j = i to Array.length arr - 1 do
      let a = arr.(i) and b = arr.(j) in
      if
        (a.at_write || b.at_write)
        && a.at_acc.ac_arg = b.at_acc.ac_arg
        && (not (locks_in_common a b))
        && phases_may_coincide a.at_phase b.at_phase
      then
        match witness a b with
        | Some (t, t') ->
            let why =
              Format.asprintf "no common lock; phases %a and %a may coincide" pp_phase
                a.at_phase pp_phase b.at_phase
            in
            races := { r_a = a; r_b = b; r_t = t; r_t' = t'; r_why = why } :: !races
        | None -> ()
    done
  done;
  {
    rep_name = name;
    rep_nprocs = nprocs;
    rep_atoms = atoms;
    rep_unresolved = ctx.unresolved;
    rep_races = List.rev !races;
  }

let pp_race ppf r =
  Format.fprintf ppf "RACE threads %d/%d:@,  %a@,  %a@,  %s" r.r_t r.r_t' pp_atom r.r_a
    pp_atom r.r_b r.r_why
