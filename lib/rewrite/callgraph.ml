(** Whole-program call graph and interprocedural sharedness/escape
    analysis over an {!Alpha.Program}.

    {!Dataflow} classifies registers per procedure and must clobber
    everything at a [Call]; here the register-class lattice
    (Private/Shared/Top, including the float-laundering rules) is
    propagated {e across} call edges instead, context-insensitively:

    - the interpreter has one global register file and no save/restore
      convention, so a callee's entry state is the join of the caller
      states at its call sites, and the caller's state {e after} a call
      is exactly the callee's exit state;
    - calls to names the program does not define are runtime system
      calls ({!Alpha.Runtime.is_sync_proc}), which by convention leave
      every register unchanged; any other unknown callee clobbers to
      [Top] like the intra-procedural analysis.

    The escape report lists every store whose {e stored value} is
    classed [Shared] or [Top] — a shared pointer written into memory
    (e.g. barnes' [arr[8] = &arr]), the sites where the points-to
    story leaves the register file.  Everything here is a reporting /
    analysis layer: instrumentation itself keeps using the
    conservative per-procedure {!Dataflow}. *)

type site = {
  cs_caller : string;
  cs_index : int;  (** instruction index of the [Call] in the caller *)
  cs_callee : string;
  cs_external : bool;  (** callee not defined by the program *)
}

type t = {
  program : Alpha.Program.t;
  cfgs : (string * Cfg.t) list;  (** per procedure, in program order *)
  sites : site list;  (** every call site, in program order *)
  roots : string list;  (** procedures never called (entry points) *)
}

let cfg_of t name = List.assoc name t.cfgs

let sites_of t name = List.filter (fun s -> s.cs_callee = name) t.sites

let callees_of t name =
  List.filter_map
    (fun s -> if s.cs_caller = name then Some s.cs_callee else None)
    t.sites

let build (program : Alpha.Program.t) =
  let procs = Alpha.Program.procedures program in
  let cfgs = List.map (fun p -> (p.Alpha.Program.name, Cfg.build p)) procs in
  let sites =
    List.concat_map
      (fun (p : Alpha.Program.procedure) ->
        let out = ref [] in
        Array.iteri
          (fun i insn ->
            match insn with
            | Alpha.Insn.Call callee ->
                out :=
                  {
                    cs_caller = p.Alpha.Program.name;
                    cs_index = i;
                    cs_callee = callee;
                    cs_external = Alpha.Program.find_opt program callee = None;
                  }
                  :: !out
            | _ -> ())
          p.Alpha.Program.code;
        List.rev !out)
      procs
  in
  let called = List.map (fun s -> s.cs_callee) sites in
  let roots =
    List.filter_map
      (fun (p : Alpha.Program.procedure) ->
        if List.mem p.Alpha.Program.name called then None else Some p.Alpha.Program.name)
      procs
  in
  (* Every program needs an entry: a fully cyclic program (no uncalled
     procedure) is rooted at its first procedure. *)
  let roots =
    match (roots, procs) with [], p :: _ -> [ p.Alpha.Program.name ] | _ -> roots
  in
  { program; cfgs; sites; roots }

(* ------------------------------------------------------------------ *)
(* Interprocedural register classes.                                   *)

type classes = {
  cg : t;
  entry : (string, Dataflow.state) Hashtbl.t;  (** classes at procedure entry *)
  exit_ : (string, Dataflow.state) Hashtbl.t;
      (** classes at [Ret]/fall-off exit; absent while no exit is reachable *)
  before : (string, Dataflow.state array) Hashtbl.t;
      (** per-instruction classes before each instruction *)
  writes : (string, bool array * bool array) Hashtbl.t;
      (** int/float registers a procedure (or its callees) may write *)
}

(* May-write summaries, transitively closed over the call graph; system
   calls write nothing. *)
let compute_writes (cg : t) =
  let writes : (string, bool array * bool array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, _) -> Hashtbl.replace writes name (Array.make 32 false, Array.make 32 false))
    cg.cfgs;
  let dest_regs insn =
    match insn with
    | Alpha.Insn.Binop (_, _, _, d)
    | Alpha.Insn.Li (d, _)
    | Alpha.Insn.Ld (_, d, _, _)
    | Alpha.Insn.Ll (_, d, _, _)
    | Alpha.Insn.Sc (_, d, _, _)
    | Alpha.Insn.Fcmp (_, _, _, d)
    | Alpha.Insn.Cvt_fi (_, d)
    | Alpha.Insn.Load_check (_, d, _, _) ->
        ([ d ], [])
    | Alpha.Insn.Lif (f, _) | Alpha.Insn.Ldf (f, _, _) | Alpha.Insn.Cvt_if (_, f)
    | Alpha.Insn.Fmov (_, f) | Alpha.Insn.Fbinop (_, _, _, f) ->
        ([], [ f ])
    | _ -> ([], [])
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Alpha.Program.procedure) ->
        let wi, wf = Hashtbl.find writes p.Alpha.Program.name in
        let mark a r =
          if r <> Dataflow.zero && not a.(r) then begin
            a.(r) <- true;
            changed := true
          end
        in
        Array.iter
          (fun insn ->
            let di, df = dest_regs insn in
            List.iter (mark wi) di;
            List.iter (mark wf) df;
            match insn with
            | Alpha.Insn.Call callee -> (
                match Hashtbl.find_opt writes callee with
                | Some (ci, cf) ->
                    Array.iteri (fun r w -> if w then mark wi r) ci;
                    Array.iteri (fun r w -> if w then mark wf r) cf
                | None -> () (* external: a system call writes nothing *))
            | _ -> ())
          p.Alpha.Program.code)
      (Alpha.Program.procedures cg.program)
  done;
  writes

(** [analyze_classes ?shared_base program] — the whole-program fixed
    point: procedure entry states joined over call sites, caller
    after-call states taken from callee exit states. *)
let analyze_classes ?(shared_base = 0x4000_0000) (program : Alpha.Program.t) =
  let cg = build program in
  let entry : (string, Dataflow.state) Hashtbl.t = Hashtbl.create 8 in
  let exit_ : (string, Dataflow.state) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace entry r (Dataflow.entry_state ())) cg.roots;
  (* One instruction's transfer under the interprocedural call rule.
     Returns [false] when the continuation after the instruction is not
     yet reachable (a call whose callee has no known exit). *)
  let transfer_ip (s : Dataflow.state) insn =
    match insn with
    | Alpha.Insn.Call callee -> (
        match Alpha.Program.find_opt program callee with
        | Some _ -> (
            (* Feed the callee's entry; resume from its exit. *)
            let changed =
              match Hashtbl.find_opt entry callee with
              | Some e -> Dataflow.join_state e s
              | None ->
                  Hashtbl.replace entry callee (Dataflow.copy s);
                  true
            in
            match Hashtbl.find_opt exit_ callee with
            | Some ex ->
                Array.blit ex.Dataflow.ints 0 s.Dataflow.ints 0 32;
                Array.blit ex.Dataflow.floats 0 s.Dataflow.floats 0 32;
                (true, changed)
            | None -> (false, changed))
        | None ->
            if Alpha.Runtime.is_sync_proc callee then (true, false)
              (* sync system calls preserve the register file *)
            else begin
              Dataflow.transfer ~shared_base s insn;
              (true, false)
            end)
    | _ ->
        Dataflow.transfer ~shared_base s insn;
        (true, false)
  in
  let is_exit_block (cfg : Cfg.t) (blk : Cfg.block) =
    blk.Cfg.succs = []
    &&
    match cfg.Cfg.proc.Alpha.Program.code.(blk.Cfg.last) with
    | Alpha.Insn.Ret -> true
    | Alpha.Insn.Halt -> false (* halting never returns to a caller *)
    | Alpha.Insn.Br _ | Alpha.Insn.Bcond _ -> false
    | _ -> true (* falling off the end returns *)
  in
  (* Intra pass for one procedure from its current entry state; returns
     whether any callee entry or this procedure's exit state grew. *)
  let analyze_proc name =
    match Hashtbl.find_opt entry name with
    | None -> false
    | Some e ->
        let cfg = cfg_of cg name in
        let code = cfg.Cfg.proc.Alpha.Program.code in
        let nb = Cfg.n_blocks cfg in
        let outside = ref false in
        let block_in : Dataflow.state option array = Array.make nb None in
        block_in.(0) <- Some (Dataflow.copy e);
        let work = Queue.create () in
        Queue.push 0 work;
        while not (Queue.is_empty work) do
          let b = Queue.pop work in
          match block_in.(b) with
          | None -> ()
          | Some sin ->
              let s = Dataflow.copy sin in
              let blk = Cfg.block cfg b in
              let live = ref true in
              for i = blk.Cfg.first to blk.Cfg.last do
                if !live then begin
                  let cont, fed = transfer_ip s code.(i) in
                  if fed then outside := true;
                  if not cont then live := false
                end
              done;
              if !live then begin
                if is_exit_block cfg blk then begin
                  match Hashtbl.find_opt exit_ name with
                  | Some ex -> if Dataflow.join_state ex s then outside := true
                  | None ->
                      Hashtbl.replace exit_ name (Dataflow.copy s);
                      outside := true
                end;
                List.iter
                  (fun succ ->
                    match block_in.(succ) with
                    | None ->
                        block_in.(succ) <- Some (Dataflow.copy s);
                        Queue.push succ work
                    | Some dst -> if Dataflow.join_state dst s then Queue.push succ work)
                  blk.Cfg.succs
              end
        done;
        !outside
  in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < 64 do
    incr rounds;
    changed := false;
    List.iter
      (fun (name, _) -> if analyze_proc name then changed := true)
      cg.cfgs
  done;
  (* Expand per-instruction before-states from the converged entry
     states (same intra pass, recording as it goes). *)
  let before : (string, Dataflow.state array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, cfg) ->
      let code = cfg.Cfg.proc.Alpha.Program.code in
      let n = Array.length code in
      let states = Array.init n (fun _ -> Dataflow.entry_state ()) in
      (match Hashtbl.find_opt entry name with
      | None -> () (* dead procedure: entry-state placeholders *)
      | Some e ->
          let nb = Cfg.n_blocks cfg in
          let block_in : Dataflow.state option array = Array.make nb None in
          block_in.(0) <- Some (Dataflow.copy e);
          let work = Queue.create () in
          Queue.push 0 work;
          while not (Queue.is_empty work) do
            let b = Queue.pop work in
            match block_in.(b) with
            | None -> ()
            | Some sin ->
                let s = Dataflow.copy sin in
                let blk = Cfg.block cfg b in
                let live = ref true in
                for i = blk.Cfg.first to blk.Cfg.last do
                  if !live then begin
                    states.(i) <- Dataflow.copy s;
                    let cont, _ = transfer_ip s code.(i) in
                    if not cont then live := false
                  end
                done;
                if !live then
                  List.iter
                    (fun succ ->
                      match block_in.(succ) with
                      | None ->
                          block_in.(succ) <- Some (Dataflow.copy s);
                          Queue.push succ work
                      | Some dst -> if Dataflow.join_state dst s then Queue.push succ work)
                    blk.Cfg.succs
          done);
      Hashtbl.replace before name states)
    cg.cfgs;
  { cg; entry; exit_; before; writes = compute_writes cg }

(* ------------------------------------------------------------------ *)
(* Escape report.                                                      *)

type escape = {
  esc_proc : string;
  esc_index : int;
  esc_insn : Alpha.Insn.t;
  esc_cls : Dataflow.cls;  (** class of the stored value *)
}

(** [escapes classes] — stores whose stored value may be a shared
    pointer: after such a store the pointer lives in memory, outside
    what the register-class analysis can see. *)
let escapes (c : classes) =
  List.concat_map
    (fun (name, cfg) ->
      let code = cfg.Cfg.proc.Alpha.Program.code in
      let states = Hashtbl.find c.before name in
      let out = ref [] in
      Array.iteri
        (fun i insn ->
          match insn with
          | Alpha.Insn.St (_, src, _, _) when src <> Dataflow.zero -> (
              match states.(i).Dataflow.ints.(src) with
              | Dataflow.Shared | Dataflow.Top ->
                  out := { esc_proc = name; esc_index = i; esc_insn = insn;
                           esc_cls = states.(i).Dataflow.ints.(src) } :: !out
              | Dataflow.Private -> ())
          | _ -> ())
        code;
      List.rev !out)
    c.cg.cfgs

(** Class of integer register [r] before instruction [idx] of [proc];
    [Top] for procedures the analysis never reached. *)
let class_before (c : classes) ~proc ~idx r =
  match Hashtbl.find_opt c.before proc with
  | Some states when idx < Array.length states -> states.(idx).Dataflow.ints.(r)
  | _ -> Dataflow.Top
