(** Dominator trees and dominance frontiers over {!Cfg} block graphs.

    The iterative algorithm of Cooper, Harvey and Kennedy ("A simple,
    fast dominance algorithm"): immediate dominators by repeated
    intersection in reverse postorder, then dominance frontiers by
    walking up from each join point's predecessors.  Small procedure
    CFGs make the quadratic worst case irrelevant.

    Used by {!Verify} to explain non-dominating checks and by
    {!Optimize} to find natural loops for check hoisting. *)

type t = {
  cfg : Cfg.t;
  preds : int list array;  (** predecessor block ids *)
  idom : int array;  (** immediate dominator per block; entry maps to itself, unreachable to -1 *)
  frontiers : int list array;  (** dominance frontier per block *)
  rpo : int array;  (** reverse-postorder number per block (-1 if unreachable) *)
}

let build (cfg : Cfg.t) =
  let nb = Cfg.n_blocks cfg in
  let preds = Cfg.preds cfg in
  (* Depth-first postorder from the entry block. *)
  let visited = Array.make nb false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Cfg.block cfg b).Cfg.succs;
      order := b :: !order
    end
  in
  if nb > 0 then dfs 0;
  let rpo_order = !order in
  let rpo = Array.make nb (-1) in
  List.iteri (fun i b -> rpo.(b) <- i) rpo_order;
  let idom = Array.make nb (-1) in
  if nb > 0 then idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo.(a) > rpo.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then
          match List.filter (fun p -> idom.(p) <> -1) preds.(b) with
          | [] -> ()
          | p0 :: rest ->
              let d = List.fold_left intersect p0 rest in
              if idom.(b) <> d then begin
                idom.(b) <- d;
                changed := true
              end)
      rpo_order
  done;
  let frontiers = Array.make nb [] in
  let add n v = if not (List.mem v frontiers.(n)) then frontiers.(n) <- v :: frontiers.(n) in
  for b = 0 to nb - 1 do
    if idom.(b) <> -1 && (b = 0 || List.length preds.(b) >= 2) then
      List.iter
        (fun p ->
          if idom.(p) <> -1 then
            if b = 0 then begin
              (* Nothing strictly dominates the entry, so a backedge
                 into it puts the whole dominator chain of [p] — entry
                 included — in the frontier; the usual walk would stop
                 at idom(entry) = entry and drop that last element. *)
              let runner = ref p in
              while !runner <> 0 do
                add !runner b;
                runner := idom.(!runner)
              done;
              add 0 b
            end
            else begin
              let runner = ref p in
              while !runner <> idom.(b) do
                add !runner b;
                runner := idom.(!runner)
              done
            end)
        preds.(b)
  done;
  { cfg; preds; idom; frontiers; rpo }

let reachable t b = t.idom.(b) <> -1
let idom t b = if b = 0 || t.idom.(b) = -1 then None else Some t.idom.(b)
let frontier t b = t.frontiers.(b)

(** [dominates t a b] — every path from entry to block [b] passes
    through block [a] (reflexive). *)
let dominates t a b =
  if t.idom.(b) = -1 then false
  else begin
    let rec up x = x = a || (x <> 0 && up t.idom.(x)) in
    up b
  end

(** [natural_loop t ~header ~latch] — the block set (as a bool array) of
    the natural loop of the backedge [latch -> header], or [None] when
    the header does not dominate the latch (an irreducible edge). *)
let natural_loop t ~header ~latch =
  if not (dominates t header latch) then None
  else begin
    let inloop = Array.make (Array.length t.idom) false in
    inloop.(header) <- true;
    (* Skip unreachable predecessors: dead code branching into the loop
       is not part of its body (and the header cannot dominate it). *)
    let rec add b =
      if t.idom.(b) <> -1 && not inloop.(b) then begin
        inloop.(b) <- true;
        List.iter add t.preds.(b)
      end
    in
    add latch;
    Some inloop
  end
