(** Translation validation of the rewriter's miss checks.

    Proves, by forward abstract interpretation over the {e instrumented}
    code, that every shared [Ld]/[St]/[Ldf]/[Stf]/[Ll]/[Sc] is covered
    by a check of the right kind, width and address on {e every} path —
    the property Shasta's safety rests on (Sections 2.2, 3.1).

    The abstract domain is a set of {e availability facts}:

    - [Line {store; width; off; base}] — a state-table or flag check for
      the line(s) touched by the access at [base + off] has completed;
      a store-kind fact subsumes a load-kind one, a 64-bit fact subsumes
      a 32-bit one at the same address.
    - [Ll_ok {off; base}] — an [Ll_check] for [base + off] has run.
    - [Sc_ok {width; value; off; base}] — an [Sc_check] has run with the
      same width and value register as the [Sc] it guards.

    The kill rule is the heart of the validator: {e every} protocol
    entry point — [Poll], [Call], [Mb], [Mb_check], [Prefetch_excl] and
    every check pseudo-instruction itself — kills {e all} facts, because
    entering the protocol can service a pending invalidation and
    downgrade any line (a pre-poll check proves nothing about a
    post-poll access).  A write to a register kills the facts whose
    address depends on it.  Paths meet by intersection, so a fact
    survives a join only when every incoming path establishes it.

    A flag-technique load needs no prior fact: its [Load_check] sits
    immediately {e after} the load and re-fetches the data on a flag
    hit, so adjacency is what the validator requires (and checks). *)

module I = Alpha.Insn

type fact =
  | Line of { l_store : bool; l_width : I.width; l_off : int; l_base : I.reg }
  | Ll_ok of { ll_off : int; ll_base : I.reg }
  | Sc_ok of { sc_width : I.width; sc_value : I.reg; sc_off : int; sc_base : I.reg }

module FS = Set.Make (struct
  type t = fact

  let compare = Stdlib.compare
end)

(* --- transfer function --- *)

(** Instructions that may enter the protocol and service an
    invalidation: all availability is lost across them. *)
let kills_all = function
  | I.Poll | I.Call _ | I.Mb | I.Mb_check | I.Prefetch_excl _ | I.Ll _ | I.Sc _
  | I.Load_check _ | I.Store_check _ | I.Batch_check _ | I.Ll_check _ | I.Sc_check _ ->
      true
  | _ -> false

let gens = function
  | I.Load_check (w, _, off, base) ->
      [ Line { l_store = false; l_width = w; l_off = off; l_base = base } ]
  | I.Store_check (w, off, base) ->
      [ Line { l_store = true; l_width = w; l_off = off; l_base = base } ]
  | I.Batch_check es ->
      List.map
        (fun (e : I.batch_entry) ->
          Line
            {
              l_store = e.I.b_kind = I.Store_acc;
              l_width = e.I.b_width;
              l_off = e.I.b_off;
              l_base = e.I.b_base;
            })
        es
  | I.Ll_check (off, base) -> [ Ll_ok { ll_off = off; ll_base = base } ]
  | I.Sc_check (w, r, off, base) ->
      [ Sc_ok { sc_width = w; sc_value = r; sc_off = off; sc_base = base } ]
  | _ -> []

(* Integer registers written by an instruction, including the
   [Load_check] destination (a flag hit re-fetches into it). *)
let written_regs = function
  | I.Binop (_, _, _, d)
  | I.Li (d, _)
  | I.Ld (_, d, _, _)
  | I.Ll (_, d, _, _)
  | I.Sc (_, d, _, _)
  | I.Cvt_fi (_, d)
  | I.Fcmp (_, _, _, d)
  | I.Load_check (_, d, _, _) ->
      [ d ]
  | _ -> []

let kill_reg fs r =
  FS.filter
    (function
      | Line { l_base; _ } -> l_base <> r
      | Ll_ok { ll_base; _ } -> ll_base <> r
      | Sc_ok { sc_base; sc_value; _ } -> sc_base <> r && sc_value <> r)
    fs

let transfer fs insn =
  let fs = if kills_all insn then FS.empty else fs in
  let fs =
    List.fold_left (fun acc r -> if r = 31 then acc else kill_reg acc r) fs (written_regs insn)
  in
  List.fold_left (fun acc g -> FS.add g acc) fs (gens insn)

(* --- availability dataflow (forward, all-paths / intersection) --- *)

(** [analyze_avail cfg] — for every instruction index, the fact set
    available {e before} it, plus per-instruction reachability. *)
let analyze_avail (cfg : Cfg.t) =
  let code = cfg.Cfg.proc.Alpha.Program.code in
  let n = Array.length code in
  let nb = Cfg.n_blocks cfg in
  let block_in : FS.t option array = Array.make nb None in
  (* [None] is top (unvisited): intersection with anything is identity. *)
  if nb > 0 then block_in.(0) <- Some FS.empty;
  let wl = Queue.create () in
  if nb > 0 then Queue.push 0 wl;
  while not (Queue.is_empty wl) do
    let b = Queue.pop wl in
    let blk = Cfg.block cfg b in
    let s = ref (Option.get block_in.(b)) in
    for i = blk.Cfg.first to blk.Cfg.last do
      s := transfer !s code.(i)
    done;
    List.iter
      (fun succ ->
        match block_in.(succ) with
        | None ->
            block_in.(succ) <- Some !s;
            Queue.push succ wl
        | Some cur ->
            let inter = FS.inter cur !s in
            if not (FS.equal inter cur) then begin
              block_in.(succ) <- Some inter;
              Queue.push succ wl
            end)
      blk.Cfg.succs
  done;
  let before = Array.make n FS.empty in
  let reach = Array.make n false in
  for b = 0 to nb - 1 do
    match block_in.(b) with
    | None -> ()
    | Some s0 ->
        let blk = Cfg.block cfg b in
        let s = ref s0 in
        for i = blk.Cfg.first to blk.Cfg.last do
          before.(i) <- !s;
          reach.(i) <- true;
          s := transfer !s code.(i)
        done
  done;
  (before, reach)

(* --- coverage predicates --- *)

let width_ge a b = match (a, b) with I.W64, _ -> true | I.W32, I.W32 -> true | I.W32, I.W64 -> false

(** A [Line] fact covers an access when address, kind and width all
    agree: same (base, off), store facts subsume load needs, wider facts
    subsume narrower ones. *)
let line_covered fs ~store ~width ~off ~base =
  FS.exists
    (function
      | Line l ->
          l.l_base = base && l.l_off = off && width_ge l.l_width width && (l.l_store || not store)
      | _ -> false)
    fs

(* --- diagnostics --- *)

type diag = {
  d_proc : string;
  d_index : int;  (** instruction index in the instrumented procedure *)
  d_insn : string;  (** pretty-printed uncovered access *)
  d_reason : string;
}

exception Uncovered_access of diag

let pp_diag ppf d = Format.fprintf ppf "%s[%d]: %s — %s" d.d_proc d.d_index d.d_insn d.d_reason

(* Classify why coverage failed: scan back for the nearest check that
   generates a fact for the right address ([loose]); if its fact is also
   of the right kind/width ([full]), name the kill that invalidated it,
   or conclude it does not dominate the access. *)
let explain (code : I.t array) i ~base ~loose ~full =
  let rec back j =
    if j < 0 then None else if List.exists loose (gens code.(j)) then Some j else back (j - 1)
  in
  match back (i - 1) with
  | None -> "no check establishes coverage for this address on any path"
  | Some j ->
      if not (List.exists full (gens code.(j))) then
        Format.asprintf "nearest check at index %d (%a) has the wrong kind or width" j I.pp
          code.(j)
      else begin
        let killer = ref None in
        let k = ref (j + 1) in
        while !killer = None && !k < i do
          if kills_all code.(!k) then killer := Some (!k, true)
          else if List.mem base (written_regs code.(!k)) then killer := Some (!k, false);
          incr k
        done;
        match !killer with
        | Some (k, true) ->
            Format.asprintf
              "check at index %d is killed at index %d (%a): a protocol entry there can service \
               an invalidation before the access"
              j k I.pp code.(k)
        | Some (k, false) ->
            Format.asprintf "check at index %d uses base r%d, redefined at index %d (%a)" j base k
              I.pp code.(k)
        | None -> Format.asprintf "check at index %d does not dominate the access" j
      end

(* --- the validator --- *)

type report = {
  r_name : string;
  r_accesses : int;  (** shared accesses the validator had to cover *)
  r_diags : diag list;
}

let verify_procedure ?(shared_base = 0x4000_0000) ?(require_llsc = true)
    (proc : Alpha.Program.procedure) =
  let code = proc.Alpha.Program.code in
  let n = Array.length code in
  let cfg = Cfg.build proc in
  let avail, reach = analyze_avail cfg in
  let classes = Dataflow.analyze ~shared_base cfg in
  let accesses = ref 0 in
  let diags = ref [] in
  let diag i reason =
    diags :=
      {
        d_proc = proc.Alpha.Program.name;
        d_index = i;
        d_insn = Format.asprintf "%a" I.pp code.(i);
        d_reason = reason;
      }
      :: !diags
  in
  let private_base i base = classes.(i).Dataflow.ints.(base) = Dataflow.Private in
  let need_line i ~store ~width ~off ~base =
    incr accesses;
    if not (line_covered avail.(i) ~store ~width ~off ~base) then
      let loose = function
        | Line l -> l.l_base = base && l.l_off = off
        | _ -> false
      and full = function
        | Line l ->
            l.l_base = base && l.l_off = off && width_ge l.l_width width && (l.l_store || not store)
        | _ -> false
      in
      diag i (explain code i ~base ~loose ~full)
  in
  for i = 0 to n - 1 do
    if reach.(i) then
      match code.(i) with
      | I.Ld (w, d, off, base) when not (private_base i base) ->
          (* Covered either by an available fact or by the adjacent
             flag-technique check right after the load. *)
          let flagged =
            i + 1 < n
            &&
            match code.(i + 1) with
            | I.Load_check (w', d', off', base') -> w' = w && d' = d && off' = off && base' = base
            | _ -> false
          in
          if flagged then incr accesses
          else need_line i ~store:false ~width:w ~off ~base
      | I.Ldf (_, off, base) when not (private_base i base) ->
          need_line i ~store:false ~width:I.W64 ~off ~base
      | I.St (w, _, off, base) when not (private_base i base) ->
          need_line i ~store:true ~width:w ~off ~base
      | I.Stf (_, off, base) when not (private_base i base) ->
          need_line i ~store:true ~width:I.W64 ~off ~base
      | I.Ll (_, _, off, base) when require_llsc ->
          incr accesses;
          if
            not
              (FS.exists
                 (function Ll_ok l -> l.ll_off = off && l.ll_base = base | _ -> false)
                 avail.(i))
          then
            let loose = function Ll_ok l -> l.ll_off = off && l.ll_base = base | _ -> false in
            diag i (explain code i ~base ~loose ~full:loose)
      | I.Sc (w, r, off, base) when require_llsc ->
          incr accesses;
          if
            not
              (FS.exists
                 (function
                   | Sc_ok s ->
                       s.sc_off = off && s.sc_base = base && s.sc_width = w && s.sc_value = r
                   | _ -> false)
                 avail.(i))
          then
            let loose = function Sc_ok s -> s.sc_off = off && s.sc_base = base | _ -> false
            and full = function
              | Sc_ok s -> s.sc_off = off && s.sc_base = base && s.sc_width = w && s.sc_value = r
              | _ -> false
            in
            diag i (explain code i ~base ~loose ~full)
      | _ -> ()
  done;
  { r_name = proc.Alpha.Program.name; r_accesses = !accesses; r_diags = List.rev !diags }

(** [verify ?shared_base ?require_llsc program] — one report per
    procedure.  [~require_llsc:false] accepts raw [Ll]/[Sc] without
    checks, for code instrumented with [transform_ll_sc] off. *)
let verify ?shared_base ?require_llsc (p : Alpha.Program.t) =
  List.map
    (fun proc -> verify_procedure ?shared_base ?require_llsc proc)
    (Alpha.Program.procedures p)

let diags reports = List.concat_map (fun r -> r.r_diags) reports
let ok reports = List.for_all (fun r -> r.r_diags = []) reports

(** [check_exn ?shared_base program] — raise {!Uncovered_access} on the
    first diagnostic (used by the optimizer's re-validation). *)
let check_exn ?shared_base p =
  match diags (verify ?shared_base p) with [] -> () | d :: _ -> raise (Uncovered_access d)
