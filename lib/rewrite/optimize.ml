(** Inter-block redundant-check elimination and loop-invariant check
    hoisting over instrumented code.

    Both transforms run on {!Verify}'s availability dataflow (same
    domain, same kill-set), so they can never assume more than the
    validator will accept:

    - {e elimination}: a single check ([Load_check], [Store_check] or a
      whole [Batch_check]) is dropped when every fact it establishes is
      already available on all paths into it.  Dropping such a check is
      sound for the validator (its facts flow through from the earlier
      checks once its own kill-all disappears) and semantics-preserving
      for execution (a valid line makes both the flag compare and the
      state-table test no-ops).  A [Batch_check] that stays is still
      deduplicated: entries for the same (offset, base) merge into one
      with the wider width / stronger kind, which only strengthens what
      the batch establishes.
    - {e hoisting}: a natural loop whose body contains {e no} protocol
      entry point (no poll, call, MB, LL/SC or residual check) and whose
      checked base registers are never written in the body has its
      checks replaced by one merged [Batch_check] in the preheader
      position — before the header label, so backedges skip it.  With
      backedge polls enabled every loop body contains a poll and nothing
      hoists; that is correct, not a missed optimization: the poll can
      service an invalidation, so per-iteration checks must stay.

    The caller re-validates the result with {!Verify}; the optimizer
    cannot ship an uncovered access. *)

module I = Alpha.Insn

type result = { insns : I.t list; eliminated : int; hoisted : int }

(* Merge batch entries at the same (offset, base): keep first position,
   widen the width, upgrade load-kind to store-kind. *)
let merge_entries entries =
  let out = ref [] in
  List.iter
    (fun (e : I.batch_entry) ->
      let merged = ref false in
      out :=
        List.map
          (fun (k : I.batch_entry) ->
            if (not !merged) && k.I.b_off = e.I.b_off && k.I.b_base = e.I.b_base then begin
              merged := true;
              {
                k with
                I.b_width = (if k.I.b_width = I.W64 || e.I.b_width = I.W64 then I.W64 else I.W32);
                b_kind =
                  (if k.I.b_kind = I.Store_acc || e.I.b_kind = I.Store_acc then I.Store_acc
                   else I.Load_acc);
              }
            end
            else k)
          !out;
      if not !merged then out := !out @ [ e ])
    entries;
  !out

let entry_covered avail ~(e : I.batch_entry) =
  Verify.line_covered avail ~store:(e.I.b_kind = I.Store_acc) ~width:e.I.b_width ~off:e.I.b_off
    ~base:e.I.b_base

(* Rebuild a label-bearing instruction list from an assembled procedure,
   dropping, replacing, and inserting.  [insert i] lands before the
   labels at index [i], so branches to those labels skip it — exactly
   the preheader position. *)
let rebuild (p : Alpha.Program.procedure) ~drop ~replace ~insert =
  let at = Hashtbl.create 16 in
  Hashtbl.iter
    (fun l i -> Hashtbl.replace at i (l :: Option.value (Hashtbl.find_opt at i) ~default:[]))
    p.Alpha.Program.labels;
  let out = ref [] in
  let emit x = out := x :: !out in
  let n = Array.length p.Alpha.Program.code in
  for i = 0 to n do
    List.iter emit (insert i);
    (match Hashtbl.find_opt at i with
    | Some ls -> List.iter (fun l -> emit (I.Label l)) (List.sort compare ls)
    | None -> ());
    if i < n && not drop.(i) then
      match replace i with Some x -> emit x | None -> emit p.Alpha.Program.code.(i)
  done;
  List.rev !out

(* Drop a cost-only [Gran_lookup] that immediately precedes a dropped
   check (it modelled that check's block-number table load). *)
let drop_gran code drop i =
  if i > 0 && (match code.(i - 1) with I.Gran_lookup _ -> true | _ -> false) then
    drop.(i - 1) <- true

(* --- phase 1: redundant-check elimination --- *)

let eliminate (p : Alpha.Program.procedure) =
  let code = p.Alpha.Program.code in
  let n = Array.length code in
  let cfg = Cfg.build p in
  let avail, reach = Verify.analyze_avail cfg in
  let drop = Array.make n false in
  let replace : (int, I.t) Hashtbl.t = Hashtbl.create 8 in
  let eliminated = ref 0 in
  for i = 0 to n - 1 do
    if reach.(i) then
      match code.(i) with
      | I.Load_check (w, _, off, base) ->
          (* The flag check guards the load right before it: if the line
             is proven valid at the load, the loaded value is already the
             true data and the flag compare is dead. *)
          if
            i > 0
            && (match code.(i - 1) with
               | I.Ld (w', _, off', base') -> w' = w && off' = off && base' = base
               | _ -> false)
            && Verify.line_covered avail.(i - 1) ~store:false ~width:w ~off ~base
          then begin
            drop.(i) <- true;
            incr eliminated
          end
      | I.Store_check (w, off, base) ->
          if Verify.line_covered avail.(i) ~store:true ~width:w ~off ~base then begin
            drop.(i) <- true;
            drop_gran code drop i;
            incr eliminated
          end
      | I.Batch_check entries ->
          let merged = merge_entries entries in
          let dups = List.length entries - List.length merged in
          if List.for_all (fun e -> entry_covered avail.(i) ~e) merged then begin
            (* Every line the batch would establish is already valid on
               all paths: the whole protocol entry disappears. *)
            drop.(i) <- true;
            drop_gran code drop i;
            eliminated := !eliminated + List.length merged + dups
          end
          else if dups > 0 then begin
            (* Partial drops by availability are unsound here (the batch
               still kills all facts, so dropped entries would not be
               re-established for later uses); only dedup, which keeps
               the generated facts at least as strong. *)
            Hashtbl.replace replace i (I.Batch_check merged);
            eliminated := !eliminated + dups
          end
      | _ -> ()
  done;
  (rebuild p ~drop ~replace:(Hashtbl.find_opt replace) ~insert:(fun _ -> []), !eliminated)

(* --- phase 2: loop-invariant check hoisting --- *)

let is_barrier = function
  | I.Poll | I.Call _ | I.Mb | I.Mb_check | I.Ll _ | I.Sc _ | I.Ll_check _ | I.Sc_check _
  | I.Prefetch_excl _ | I.Ret | I.Halt ->
      true
  | _ -> false

let hoist ~gran (p : Alpha.Program.procedure) =
  let code = p.Alpha.Program.code in
  let n = Array.length code in
  let cfg = Cfg.build p in
  let dt = Domtree.build cfg in
  (* Natural loops, grouped by header block. *)
  let by_header : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (br, tgt) ->
      let hb = cfg.Cfg.block_of.(tgt) and lb = cfg.Cfg.block_of.(br) in
      if (Cfg.block cfg hb).Cfg.first = tgt && Domtree.dominates dt hb lb then
        Hashtbl.replace by_header hb (lb :: Option.value (Hashtbl.find_opt by_header hb) ~default:[]))
    (Cfg.backedges cfg);
  let loops =
    Hashtbl.fold
      (fun hb latches acc ->
        let body = Array.make (Cfg.n_blocks cfg) false in
        List.iter
          (fun latch ->
            match Domtree.natural_loop dt ~header:hb ~latch with
            | Some bs -> Array.iteri (fun b v -> if v then body.(b) <- true) bs
            | None -> ())
          latches;
        let size = Array.fold_left (fun a v -> if v then a + 1 else a) 0 body in
        (hb, body, size) :: acc)
      by_header []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  in
  let drop = Array.make n false in
  let inserts : (int, I.t list) Hashtbl.t = Hashtbl.create 4 in
  let dirty = Array.make (Cfg.n_blocks cfg) false in
  let hoisted = ref 0 in
  List.iter
    (fun (hb, body, _) ->
      let in_body i = body.(cfg.Cfg.block_of.(i)) in
      let body_overlaps_done =
        Array.exists (fun b -> b) (Array.mapi (fun b v -> v && dirty.(b)) body)
      in
      if not body_overlaps_done then begin
        let body_insns = ref [] in
        for i = n - 1 downto 0 do
          if in_body i then body_insns := i :: !body_insns
        done;
        let body_insns = !body_insns in
        let has_barrier = List.exists (fun i -> is_barrier code.(i)) body_insns in
        let written = Hashtbl.create 8 in
        List.iter
          (fun i -> List.iter (fun r -> Hashtbl.replace written r ()) (Verify.written_regs code.(i)))
          body_insns;
        (* Candidates: every check left in the body, as batch entries. *)
        let candidates =
          List.filter_map
            (fun i ->
              match code.(i) with
              | I.Load_check (w, _, off, base) ->
                  Some
                    (i, [ { I.b_width = w; b_kind = I.Load_acc; b_off = off; b_base = base } ])
              | I.Store_check (w, off, base) ->
                  Some
                    (i, [ { I.b_width = w; b_kind = I.Store_acc; b_off = off; b_base = base } ])
              | I.Batch_check es -> Some (i, es)
              | _ -> None)
            body_insns
        in
        let bases_invariant =
          List.for_all
            (fun (_, es) ->
              List.for_all (fun (e : I.batch_entry) -> not (Hashtbl.mem written e.I.b_base)) es)
            candidates
        in
        let header_first = (Cfg.block cfg hb).Cfg.first in
        (* Preheader position requires that the only branches into the
           header are our backedges: any branch to it from outside the
           body would bypass the hoisted check. *)
        let no_side_entry =
          let ok = ref true in
          Array.iteri
            (fun j insn ->
              match insn with
              | I.Br l | I.Bcond (_, _, l) ->
                  if
                    Alpha.Program.label_index p l = header_first
                    && not (in_body j)
                  then ok := false
              | _ -> ())
            code;
          !ok
        in
        if candidates <> [] && (not has_barrier) && bases_invariant && no_side_entry then begin
          List.iter
            (fun (i, _) ->
              drop.(i) <- true;
              drop_gran code drop i)
            candidates;
          let entries = merge_entries (List.concat_map snd candidates) in
          let e0 = List.hd entries in
          let pre =
            (if gran then [ I.Gran_lookup (e0.I.b_off, e0.I.b_base) ] else [])
            @ [ I.Batch_check entries ]
          in
          Hashtbl.replace inserts header_first
            (Option.value (Hashtbl.find_opt inserts header_first) ~default:[] @ pre);
          hoisted := !hoisted + List.length candidates;
          Array.iteri (fun b v -> if v then dirty.(b) <- true) body
        end
      end)
    loops;
  let insns =
    rebuild p ~drop
      ~replace:(fun _ -> None)
      ~insert:(fun i -> Option.value (Hashtbl.find_opt inserts i) ~default:[])
  in
  (insns, !hoisted)

(** [run ~gran ~name insns] — eliminate, then hoist, over one
    instrumented (label-bearing) instruction list.  [gran] mirrors
    [Instrument.options.granularity_table]: hoisted state-table checks
    need the block-number lookup too. *)
let run ~gran ~name insns =
  let scratch = Alpha.Program.create () in
  let p = Alpha.Program.add_procedure scratch ~name insns in
  let insns, eliminated = eliminate p in
  let scratch = Alpha.Program.create () in
  let p = Alpha.Program.add_procedure scratch ~name insns in
  let insns, hoisted = hoist ~gran p in
  { insns; eliminated; hoisted }
