(** Static affinity / false-sharing report.

    Groups the shared accesses found by {!Races} by the memory region
    each entry argument points at, and classifies every region's
    sharing pattern the way Section 5's granularity discussion does —
    statically, before any run:

    - {b partitioned} writes (per-thread addresses, [tc <> 0]): threads
      own disjoint slots at stride [|tc|].  If the region's coherence
      block is larger than the stride, two threads' slots share a block
      and every write ping-pongs it — false sharing; the fix is a block
      no larger than the stride.
    - {b migratory} data ([tc = 0] writes by unconstrained threads
      under a cross-thread lock): one block bounces between lock
      holders; a {!Protocol.Config.Migratory} homing policy moves the
      home with the current owner instead of paying remote upgrades
      forever.
    - {b read-mostly} regions (writes only by one pinned thread, e.g.
      a [tid = 0] initialiser, or none at all): safe to keep coarse —
      bigger blocks amortise the fetch per miss, exactly the "bulk"
      region of the granularity micro.

    Every hint carries the evidence (access counts, write stride, lock
    coverage) and the suggested {!Protocol.Layout.region_spec}, so a
    caller can feed the suggestions straight back into a
    {!Shasta.Config} and measure the difference — the dynamic
    cross-check lives in the benches. *)

type binding = {
  bd_arg : int;  (** entry-argument index the kernel addresses this region through *)
  bd_region : string;  (** region name in the layout under test *)
  bd_block : int;  (** the region's current coherence block size *)
  bd_size : int;  (** region size in bytes *)
}

type kind =
  | Partitioned  (** per-thread slots, stride >= block: no false sharing *)
  | False_sharing  (** per-thread slots smaller than the block *)
  | Migratory  (** lock-protected same-address writes by many threads *)
  | Read_mostly  (** written by at most one pinned thread *)
  | Untouched  (** no shared accesses resolved to this region *)
  | Mixed  (** write pattern fits no single template *)

let kind_name = function
  | Partitioned -> "partitioned"
  | False_sharing -> "false-sharing"
  | Migratory -> "migratory"
  | Read_mostly -> "read-mostly"
  | Untouched -> "untouched"
  | Mixed -> "mixed"

type hint = {
  h_region : string;
  h_arg : int;
  h_block : int;  (** current block size *)
  h_size : int;
  h_kind : kind;
  h_suggest : int;  (** suggested block size *)
  h_homing : Protocol.Config.homing option;  (** homing policy hint, if any *)
  h_reads : int;
  h_writes : int;
  h_stride : int;  (** min per-thread write stride; 0 = same-address writes *)
  h_locked_writes : int;  (** writes holding a cross-thread lock *)
}

(* Largest power of two <= stride, clamped to the layout's legal block
   range: the finest block that still keeps each thread's slot whole. *)
let block_for_stride stride =
  let rec pow2 p = if p * 2 <= stride then pow2 (p * 2) else p in
  let p = if stride <= 0 then Protocol.Layout.min_block else pow2 1 in
  min Protocol.Layout.max_block (max Protocol.Layout.min_block p)

let classify ~(binding : binding) (atoms : Races.atom list) =
  let mine = List.filter (fun (a : Races.atom) -> a.Races.at_acc.Races.ac_arg = binding.bd_arg) atoms in
  let reads = List.filter (fun (a : Races.atom) -> not a.Races.at_write) mine in
  let writes = List.filter (fun (a : Races.atom) -> a.Races.at_write) mine in
  let cross_locked (a : Races.atom) = List.exists Races.lock_cross_thread a.Races.at_locks in
  let pinned (a : Races.atom) = match a.Races.at_tid with Races.Teq _ -> true | _ -> false in
  let strides =
    List.filter_map
      (fun (a : Races.atom) ->
        let tc = abs a.Races.at_acc.Races.ac_tc in
        if tc > 0 then Some tc else None)
      writes
  in
  let stride = List.fold_left min max_int (max_int :: strides) in
  let stride = if stride = max_int then 0 else stride in
  let locked_writes = List.length (List.filter cross_locked writes) in
  let kind, suggest, homing =
    if mine = [] then (Untouched, binding.bd_block, None)
    else if writes = [] || List.for_all pinned writes then
      (* Written by nobody, or only by one pinned thread (an
         initialiser): reads dominate steady state, keep it coarse. *)
      (Read_mostly, max binding.bd_block 512, None)
    else if List.for_all (fun (a : Races.atom) -> abs a.Races.at_acc.Races.ac_tc > 0) writes
    then
      let b = block_for_stride stride in
      if binding.bd_block > stride then (False_sharing, b, None)
      else (Partitioned, binding.bd_block, None)
    else if
      List.for_all
        (fun (a : Races.atom) ->
          a.Races.at_acc.Races.ac_tc = 0 && (cross_locked a || pinned a))
        writes
      && locked_writes > 0
    then (Migratory, binding.bd_block, Some Protocol.Config.Migratory)
    else (Mixed, binding.bd_block, None)
  in
  {
    h_region = binding.bd_region;
    h_arg = binding.bd_arg;
    h_block = binding.bd_block;
    h_size = binding.bd_size;
    h_kind = kind;
    h_suggest = suggest;
    h_homing = homing;
    h_reads = List.length reads;
    h_writes = List.length writes;
    h_stride = stride;
    h_locked_writes = locked_writes;
  }

(** [report ~bindings races_report] — one hint per binding, from the
    already-computed race-analysis atoms. *)
let report ~bindings (r : Races.report) =
  List.map (fun b -> classify ~binding:b r.Races.rep_atoms) bindings

(** Hints as layout specs, ready for {!Protocol.Config.regions}. *)
let suggested_specs hints =
  List.map
    (fun h ->
      {
        Protocol.Layout.rs_name = h.h_region;
        Protocol.Layout.rs_size = h.h_size;
        Protocol.Layout.rs_block = h.h_suggest;
      })
    hints

let homing_name = function
  | Protocol.Config.Static -> "static"
  | Protocol.Config.First_touch -> "first-touch"
  | Protocol.Config.Migratory -> "migratory"

let pp_hint ppf h =
  Format.fprintf ppf "%-10s a%d block %4d -> %4d  %-13s %dr/%dw stride %d%s%s" h.h_region
    h.h_arg h.h_block h.h_suggest (kind_name h.h_kind) h.h_reads h.h_writes h.h_stride
    (if h.h_locked_writes > 0 then Printf.sprintf " (%d locked)" h.h_locked_writes else "")
    (match h.h_homing with None -> "" | Some hm -> " homing=" ^ homing_name hm)
