(** Batch-safety validator for the interpreter's dispatch metadata.

    {!Alpha.Interp.build_meta} precomputes [m_pure.(pc)] — the length
    of the straight-line run of register-only instructions starting at
    [pc] — and the main loop executes such a run as one batch between
    two dispatch points.  That is only sound if nothing inside a run
    can observe simulated time or touch the runtime: a [Poll], [Mb],
    [Call], memory access, or check pseudo-instruction swallowed
    mid-batch would execute without its flush/dispatch, silently
    breaking the protocol's progress and ordering guarantees (the
    rewriter's whole point is that those instructions {e do} run).

    This module re-derives the batch boundaries independently — its own
    positive list of batchable instructions, written out rather than
    shared with the interpreter, so a bug in [is_pure] cannot hide
    itself — and convicts any [meta] whose runs swallow an unsafe
    instruction, overrun the procedure, or disagree with the maximal
    re-derivation.  The branch-target, check-slot, cost, and memoized
    call-target tables are cross-checked too: every entry the
    interpreter will trust is validated against the program text. *)

(* The independent positive list: instructions that touch only the
   register files.  Deliberately NOT a call into [Interp.is_pure] —
   keep the validator's ground truth separate from the code under
   validation.  Everything else (loads, stores, LL/SC, MB, control
   flow, calls, and every rewriter pseudo-instruction, each of which
   must reach its runtime callback) is a dispatch point. *)
let batch_safe = function
  | Alpha.Insn.Binop _ | Alpha.Insn.Li _ | Alpha.Insn.Lif _ | Alpha.Insn.Fbinop _
  | Alpha.Insn.Fcmp _ | Alpha.Insn.Cvt_if _ | Alpha.Insn.Cvt_fi _ | Alpha.Insn.Fmov _ ->
      true
  | Alpha.Insn.Ld _ | Alpha.Insn.St _ | Alpha.Insn.Ldf _ | Alpha.Insn.Stf _
  | Alpha.Insn.Ll _ | Alpha.Insn.Sc _ | Alpha.Insn.Mb | Alpha.Insn.Br _
  | Alpha.Insn.Bcond _ | Alpha.Insn.Call _ | Alpha.Insn.Ret | Alpha.Insn.Halt
  | Alpha.Insn.Load_check _ | Alpha.Insn.Store_check _ | Alpha.Insn.Batch_check _
  | Alpha.Insn.Ll_check _ | Alpha.Insn.Sc_check _ | Alpha.Insn.Gran_lookup _
  | Alpha.Insn.Mb_check | Alpha.Insn.Poll | Alpha.Insn.Prefetch_excl _
  | Alpha.Insn.Label _ ->
      false

type violation = {
  v_proc : string;
  v_index : int;
  v_kind : string;  (** machine-readable: "swallowed", "overrun", ... *)
  v_detail : string;
}

let violation proc index kind fmt =
  Format.kasprintf (fun detail -> { v_proc = proc; v_index = index; v_kind = kind; v_detail = detail }) fmt

(** [validate_meta proc meta] — every violation in [meta]'s tables
    against [proc]'s code.  Empty = the metadata is safe to dispatch. *)
let validate_meta (proc : Alpha.Program.procedure) (m : Alpha.Interp.meta) =
  let code = proc.Alpha.Program.code in
  let name = proc.Alpha.Program.name in
  let n = Array.length code in
  let out = ref [] in
  let push v = out := v :: !out in
  if Array.length m.Alpha.Interp.m_pure <> n then
    push (violation name 0 "shape" "m_pure has %d entries for %d instructions"
            (Array.length m.Alpha.Interp.m_pure) n);
  (* Independent re-derivation of the maximal safe run lengths. *)
  let expected = Array.make n 0 in
  for i = n - 1 downto 0 do
    if batch_safe code.(i) then
      expected.(i) <- 1 + (if i + 1 < n then expected.(i + 1) else 0)
  done;
  for pc = 0 to min n (Array.length m.Alpha.Interp.m_pure) - 1 do
    let run = m.Alpha.Interp.m_pure.(pc) in
    if run < 0 || pc + run > n then
      push (violation name pc "overrun" "batch of %d at %d overruns the %d-instruction procedure" run pc n)
    else begin
      (* The safety core: nothing unsafe inside the claimed run. *)
      for i = pc to pc + run - 1 do
        if not (batch_safe code.(i)) then
          push
            (violation name pc "swallowed" "batch of %d at %d swallows dispatch point %a at %d"
               run pc Alpha.Insn.pp code.(i) i)
      done;
      (* Exactness against the re-derivation: a short run is not a
         soundness bug but means the two derivations disagree, which is
         worth convicting at build time rather than wondering later. *)
      if run <> expected.(pc) then
        push
          (violation name pc "length" "batch length %d at %d disagrees with re-derived %d" run
             pc expected.(pc))
    end
  done;
  (* Branch targets: exactly the label indices, -1 elsewhere. *)
  Array.iteri
    (fun i insn ->
      let expect =
        match insn with
        | Alpha.Insn.Br l | Alpha.Insn.Bcond (_, _, l) -> Alpha.Program.label_index proc l
        | _ -> -1
      in
      if i < Array.length m.Alpha.Interp.m_target && m.Alpha.Interp.m_target.(i) <> expect
      then
        push
          (violation name i "target" "branch target %d at %d should be %d"
             m.Alpha.Interp.m_target.(i) i expect))
    code;
  (* Check-slot sizes: the executed-check accounting must bill exactly
     the check pseudo-instructions, nothing else. *)
  Array.iteri
    (fun i insn ->
      let expect =
        match insn with
        | Alpha.Insn.Load_check _ | Alpha.Insn.Store_check _ | Alpha.Insn.Batch_check _
        | Alpha.Insn.Ll_check _ | Alpha.Insn.Sc_check _ | Alpha.Insn.Gran_lookup _ ->
            Alpha.Insn.size_in_slots insn
        | _ -> 0
      in
      if i < Array.length m.Alpha.Interp.m_slots && m.Alpha.Interp.m_slots.(i) <> expect then
        push
          (violation name i "slots" "check-slot size %d at %d should be %d"
             m.Alpha.Interp.m_slots.(i) i expect))
    code;
  (* Cycle costs: the batched path sums [m_cost] without re-consulting
     the cost table, so a stale entry would silently skew timing. *)
  Array.iteri
    (fun i insn ->
      let expect = Alpha.Cost.cycles insn in
      if i < Array.length m.Alpha.Interp.m_cost && m.Alpha.Interp.m_cost.(i) <> expect then
        push
          (violation name i "cost" "cycle cost %d at %d should be %d"
             m.Alpha.Interp.m_cost.(i) i expect))
    code;
  List.rev !out

(** [validate_callees program proc meta] — any memoized call target
    must agree with the program's procedure table: a [Proc] entry for a
    name the program defines, [Sys] otherwise.  (Unmemoized [None]
    entries are always fine — they resolve on first dispatch.) *)
let validate_callees (program : Alpha.Program.t) (proc : Alpha.Program.procedure)
    (m : Alpha.Interp.meta) =
  let out = ref [] in
  Array.iteri
    (fun i insn ->
      match (insn, m.Alpha.Interp.m_callee.(i)) with
      | Alpha.Insn.Call callee, Some memo ->
          let defined = Alpha.Program.find_opt program callee <> None in
          let agrees =
            match memo with
            | Alpha.Interp.Proc p -> defined && p.Alpha.Program.name = callee
            | Alpha.Interp.Sys -> not defined
          in
          if not agrees then
            out :=
              violation proc.Alpha.Program.name i "callee"
                "memoized target of call to %s disagrees with the procedure table" callee
              :: !out
      | _, Some _ ->
          out :=
            violation proc.Alpha.Program.name i "callee"
              "memoized call target on a non-call instruction"
            :: !out
      | _, None -> ())
    proc.Alpha.Program.code;
  List.rev !out

(** [validate_program program] — build each procedure's metadata the
    way the interpreter will and validate all of it. *)
let validate_program (program : Alpha.Program.t) =
  List.concat_map
    (fun (p : Alpha.Program.procedure) ->
      let m = Alpha.Interp.build_meta p in
      validate_meta p m @ validate_callees program p m)
    (Alpha.Program.procedures program)

let pp_violation ppf v =
  Format.fprintf ppf "%s@%d [%s] %s" v.v_proc v.v_index v.v_kind v.v_detail
