(** Control-flow graphs over assembled procedures.

    Blocks are maximal straight-line runs; calls do not end blocks (they
    return to the fall-through).  Backedges — a branch whose target does
    not lie after it — identify loops; the rewriter inserts a poll before
    each backedge so that incoming protocol messages are serviced even in
    tight spin loops (Section 2.1). *)

type block = {
  id : int;
  first : int;  (** index of the first instruction *)
  last : int;  (** index of the last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
}

type t = {
  proc : Alpha.Program.procedure;
  blocks : block array;
  block_of : int array;  (** instruction index -> block id *)
}

let target_index proc l = Alpha.Program.label_index proc l

let is_terminator = function
  | Alpha.Insn.Br _ | Alpha.Insn.Bcond _ | Alpha.Insn.Ret | Alpha.Insn.Halt -> true
  | _ -> false

let build (proc : Alpha.Program.procedure) =
  let code = proc.Alpha.Program.code in
  let n = Array.length code in
  let leader = Array.make (n + 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun i insn ->
      match insn with
      | Alpha.Insn.Br l ->
          leader.(target_index proc l) <- true;
          if i + 1 <= n then leader.(min (i + 1) n) <- true
      | Alpha.Insn.Bcond (_, _, l) ->
          leader.(target_index proc l) <- true;
          if i + 1 <= n then leader.(min (i + 1) n) <- true
      | Alpha.Insn.Ret | Alpha.Insn.Halt -> if i + 1 <= n then leader.(min (i + 1) n) <- true
      | _ -> ())
    code;
  (* Collect block boundaries. *)
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let block_of = Array.make n (-1) in
  let blocks =
    Array.init nb (fun b ->
        let first = starts.(b) in
        let last = if b + 1 < nb then starts.(b + 1) - 1 else n - 1 in
        for i = first to last do
          block_of.(i) <- b
        done;
        { id = b; first; last; succs = [] })
  in
  (* Fill successors. *)
  let succ_of_index i = if i < n then Some block_of.(i) else None in
  let blocks =
    Array.map
      (fun blk ->
        let succs =
          match blocks.(blk.id) with
          | { last; _ } -> (
              match code.(last) with
              | Alpha.Insn.Br l -> [ block_of.(target_index proc l) ]
              | Alpha.Insn.Bcond (_, _, l) ->
                  let taken = block_of.(target_index proc l) in
                  let fall = succ_of_index (last + 1) in
                  taken :: (match fall with Some f when f <> taken -> [ f ] | Some _ | None -> [])
              | Alpha.Insn.Ret | Alpha.Insn.Halt -> []
              | _ -> ( match succ_of_index (last + 1) with Some f -> [ f ] | None -> []))
        in
        { blk with succs })
      blocks
  in
  { proc; blocks; block_of }

(** [backedges t] is the list of instruction indices of branches whose
    target is at or before the branch itself, with the target index:
    [(branch_index, target_index)]. *)
let backedges t =
  let code = t.proc.Alpha.Program.code in
  let out = ref [] in
  Array.iteri
    (fun i insn ->
      match insn with
      | Alpha.Insn.Br l | Alpha.Insn.Bcond (_, _, l) ->
          let tgt = target_index t.proc l in
          if tgt <= i then out := (i, tgt) :: !out
      | _ -> ())
    code;
  List.rev !out

let n_blocks t = Array.length t.blocks
let block t i = t.blocks.(i)

(** [preds t] — predecessor block ids per block, in increasing order. *)
let preds t =
  let p = Array.make (Array.length t.blocks) [] in
  Array.iter (fun blk -> List.iter (fun s -> p.(s) <- blk.id :: p.(s)) blk.succs) t.blocks;
  Array.map List.rev p
