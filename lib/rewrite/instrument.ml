(** The binary rewriter: inserts Shasta's inline code into a program.

    This is the ATOM-based phase of the paper (Sections 2.2, 3.1.2,
    3.2.3).  Passes, per procedure:

    + pointer-class dataflow ({!Dataflow}) to skip checks for accesses
      that are provably to private (stack/static) memory;
    + LL/SC sequence recognition: a store-conditional dominated by a
      unique load-locked to the same address with no intervening memory
      operations gets the efficient [Ll_check]/[Sc_check] treatment, a
      poll-free success path, and (optionally) a [Prefetch_excl] hoisted
      before the enclosing loop;
    + miss-check insertion: loads get the flag-technique [Load_check]
      after the load (3 slots); stores get a [Store_check] before (7
      slots); float loads and loads that overwrite their own base
      register use a state-table check instead;
    + batching: runs of nearby checked accesses within a basic block are
      covered by one [Batch_check];
    + polls before every loop backedge;
    + [Mb_check] after every memory barrier. *)

type options = {
  shared_base : int;
  flag_loads : bool;  (** use the invalid-flag technique for load checks *)
  batching : bool;
  polls : bool;
  transform_ll_sc : bool;
  prefetch_ll_sc : bool;
  mb_checks : bool;
  granularity_table : bool;
      (** layouts with mixed block sizes: state-table checks are
          preceded by a block-number table lookup (Section 2.1); flag
          loads are unaffected (the flag is read from the data itself) *)
  redundant_elim : bool;
      (** run {!Optimize} over the instrumented code: inter-block
          redundant-check elimination plus loop-invariant check
          hoisting, re-validated by {!Verify} *)
}

let default_options =
  {
    shared_base = 0x4000_0000;
    flag_loads = true;
    batching = true;
    polls = true;
    transform_ll_sc = true;
    prefetch_ll_sc = true;
    mb_checks = true;
    granularity_table = false;
    redundant_elim = false;
  }

type stats = {
  mutable procedures : int;
  mutable orig_slots : int;
  mutable new_slots : int;
  mutable loads_checked : int;
  mutable stores_checked : int;
  mutable accesses_private : int;
  mutable batches : int;
  mutable batched_accesses : int;
  mutable polls_inserted : int;
  mutable mb_checks_inserted : int;
  mutable llsc_pairs : int;
  mutable prefetches : int;
  mutable gran_lookups : int;
  mutable checks_eliminated : int;  (** redundant checks/entries removed by {!Optimize} *)
  mutable checks_hoisted : int;  (** loop-invariant checks moved to preheaders *)
}

let empty_stats () =
  {
    procedures = 0;
    orig_slots = 0;
    new_slots = 0;
    loads_checked = 0;
    stores_checked = 0;
    accesses_private = 0;
    batches = 0;
    batched_accesses = 0;
    polls_inserted = 0;
    mb_checks_inserted = 0;
    llsc_pairs = 0;
    prefetches = 0;
    gran_lookups = 0;
    checks_eliminated = 0;
    checks_hoisted = 0;
  }

(** [code_growth s] is the fractional static code-size increase,
    e.g. [0.58] for the ~58% growth Table 3 reports for SPLASH-2. *)
let code_growth s =
  if s.orig_slots = 0 then 0.0
  else float_of_int (s.new_slots - s.orig_slots) /. float_of_int s.orig_slots

(* A pending check attached to an instruction index. *)
type check =
  | After_load of Alpha.Insn.width * Alpha.Insn.reg * int * Alpha.Insn.reg
  | Before_state of Alpha.Insn.batch_entry  (* single-entry state-table check *)
  | Before_store of Alpha.Insn.width * int * Alpha.Insn.reg

let is_memory_insn = function
  | Alpha.Insn.Ld _ | Alpha.Insn.St _ | Alpha.Insn.Ldf _ | Alpha.Insn.Stf _ | Alpha.Insn.Ll _
  | Alpha.Insn.Sc _ ->
      true
  | _ -> false

let written_regs = function
  | Alpha.Insn.Binop (_, _, _, d) -> [ d ]
  | Alpha.Insn.Li (r, _) -> [ r ]
  | Alpha.Insn.Ld (_, d, _, _) | Alpha.Insn.Ll (_, d, _, _) -> [ d ]
  | Alpha.Insn.Sc (_, r, _, _) -> [ r ]
  | Alpha.Insn.Cvt_fi (_, r) -> [ r ]
  | Alpha.Insn.Fcmp (_, _, _, r) -> [ r ]
  | _ -> []

(* Recognize LL/SC sequences: for an LL at [i], find an SC at [j > i] to
   the same (offset, base) with no intervening memory operation, MB or
   call.  Conditional branches between are allowed (failure exits). *)
let find_llsc_pairs code =
  let n = Array.length code in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    match code.(i) with
    | Alpha.Insn.Ll (_, _, off, base) ->
        let rec scan j =
          if j >= n || j - i > 16 then None
          else
            match code.(j) with
            | Alpha.Insn.Sc (w, r, off', base') ->
                if off' = off && base' = base then Some (j, w, r) else None
            | insn ->
                if is_memory_insn insn then None
                else (
                  match insn with
                  | Alpha.Insn.Mb | Alpha.Insn.Call _ | Alpha.Insn.Ret | Alpha.Insn.Halt
                  | Alpha.Insn.Br _ ->
                      None
                  | _ -> scan (j + 1))
        in
        (match scan (i + 1) with
        | Some (j, w, r) -> pairs := (i, j, w, r, off, base) :: !pairs
        | None -> ())
    | _ -> ()
  done;
  List.rev !pairs

let instrument_procedure ~options ~stats (proc : Alpha.Program.procedure) =
  let code = proc.Alpha.Program.code in
  let n = Array.length code in
  let cfg = Cfg.build proc in
  let before = Dataflow.analyze ~shared_base:options.shared_base cfg in
  let pre_label = Array.make (n + 1) [] in
  let pre = Array.make n [] in
  let post = Array.make n [] in
  let pairs = if options.transform_ll_sc then find_llsc_pairs code else [] in
  let in_llsc_range i = List.exists (fun (a, b, _, _, _, _) -> i > a && i <= b) pairs in
  (* With mixed block sizes a state-table check must first look up the
     block number: [gran off base] is that table-load sequence (or
     nothing under a uniform layout, where a shift suffices). *)
  let gran off base =
    if options.granularity_table then begin
      stats.gran_lookups <- stats.gran_lookups + 1;
      [ Alpha.Insn.Gran_lookup (off, base) ]
    end
    else []
  in
  (* Pass 1: decide per-access checks. *)
  let checks : (int, check) Hashtbl.t = Hashtbl.create 16 in
  let cls_at i r = before.(i).Dataflow.ints.(r) in
  for i = 0 to n - 1 do
    match code.(i) with
    | Alpha.Insn.Ld (w, d, off, base) ->
        if cls_at i base = Dataflow.Private then stats.accesses_private <- stats.accesses_private + 1
        else begin
          stats.loads_checked <- stats.loads_checked + 1;
          if options.flag_loads && d <> base then
            Hashtbl.replace checks i (After_load (w, d, off, base))
          else
            Hashtbl.replace checks i
              (Before_state
                 { Alpha.Insn.b_width = w; b_kind = Alpha.Insn.Load_acc; b_off = off; b_base = base })
        end
    | Alpha.Insn.Ldf (_, off, base) ->
        if cls_at i base = Dataflow.Private then stats.accesses_private <- stats.accesses_private + 1
        else begin
          stats.loads_checked <- stats.loads_checked + 1;
          Hashtbl.replace checks i
            (Before_state
               {
                 Alpha.Insn.b_width = Alpha.Insn.W64;
                 b_kind = Alpha.Insn.Load_acc;
                 b_off = off;
                 b_base = base;
               })
        end
    | Alpha.Insn.St (w, _, off, base) ->
        if cls_at i base = Dataflow.Private then stats.accesses_private <- stats.accesses_private + 1
        else begin
          stats.stores_checked <- stats.stores_checked + 1;
          Hashtbl.replace checks i (Before_store (w, off, base))
        end
    | Alpha.Insn.Stf (_, off, base) ->
        if cls_at i base = Dataflow.Private then stats.accesses_private <- stats.accesses_private + 1
        else begin
          stats.stores_checked <- stats.stores_checked + 1;
          Hashtbl.replace checks i (Before_store (Alpha.Insn.W64, off, base))
        end
    | Alpha.Insn.Ll (_, _, off, base) ->
        (* LL always needs a readable line; the check also records the
           observed state for the following SC. *)
        pre.(i) <- pre.(i) @ gran off base @ [ Alpha.Insn.Ll_check (off, base) ]
    | Alpha.Insn.Sc (w, r, off, base) ->
        pre.(i) <- pre.(i) @ gran off base @ [ Alpha.Insn.Sc_check (w, r, off, base) ]
    | Alpha.Insn.Mb ->
        if options.mb_checks then begin
          post.(i) <- post.(i) @ [ Alpha.Insn.Mb_check ];
          stats.mb_checks_inserted <- stats.mb_checks_inserted + 1
        end
    | _ -> ()
  done;
  stats.llsc_pairs <- stats.llsc_pairs + List.length pairs;
  (* Pass 2: batching within basic blocks. *)
  if options.batching then
    Array.iter
      (fun blk ->
        let run : (int * Alpha.Insn.batch_entry) list ref = ref [] in
        let written = Hashtbl.create 8 in
        let flush_run () =
          (match !run with
          | [] | [ _ ] -> () (* batches need at least two accesses *)
          | members ->
              let members = List.rev members in
              let first_idx = fst (List.hd members) in
              let entries = List.map snd members in
              (* Drop the individual checks; install one batch check. *)
              List.iter (fun (idx, _) -> Hashtbl.remove checks idx) members;
              let e0 = List.hd entries in
              pre.(first_idx) <-
                pre.(first_idx)
                @ gran e0.Alpha.Insn.b_off e0.Alpha.Insn.b_base
                @ [ Alpha.Insn.Batch_check entries ];
              stats.batches <- stats.batches + 1;
              stats.batched_accesses <- stats.batched_accesses + List.length members);
          run := [];
          Hashtbl.reset written
        in
        for i = blk.Cfg.first to blk.Cfg.last do
          let insn = code.(i) in
          let entry_of_check = function
            | After_load (w, _, off, base) ->
                Some { Alpha.Insn.b_width = w; b_kind = Alpha.Insn.Load_acc; b_off = off; b_base = base }
            | Before_state e -> Some e
            | Before_store (w, off, base) ->
                Some { Alpha.Insn.b_width = w; b_kind = Alpha.Insn.Store_acc; b_off = off; b_base = base }
          in
          (match Hashtbl.find_opt checks i with
          | Some chk -> (
              match entry_of_check chk with
              | Some e ->
                  if Hashtbl.mem written e.Alpha.Insn.b_base then begin
                    (* Base register was clobbered since the run began:
                       the batch check could not compute this address. *)
                    flush_run ();
                    run := [ (i, e) ]
                  end
                  else run := (i, e) :: !run
              | None -> ())
          | None ->
              (* Non-checked instructions may sit inside a run unless they
                 are barriers for batching. *)
              (match insn with
              | Alpha.Insn.Call _ | Alpha.Insn.Mb | Alpha.Insn.Ll _ | Alpha.Insn.Sc _
              | Alpha.Insn.Ret | Alpha.Insn.Halt ->
                  flush_run ()
              | _ -> ()));
          List.iter (fun r -> Hashtbl.replace written r ()) (written_regs insn)
        done;
        flush_run ())
      cfg.Cfg.blocks;
  (* Materialise remaining individual checks. *)
  Hashtbl.iter
    (fun i chk ->
      match chk with
      | After_load (w, d, off, base) -> post.(i) <- Alpha.Insn.Load_check (w, d, off, base) :: post.(i)
      | Before_state e ->
          pre.(i) <-
            gran e.Alpha.Insn.b_off e.Alpha.Insn.b_base @ (Alpha.Insn.Batch_check [ e ] :: pre.(i))
      | Before_store (w, off, base) ->
          pre.(i) <- gran off base @ (Alpha.Insn.Store_check (w, off, base) :: pre.(i)))
    checks;
  (* Pass 3: polls at loop backedges.  A poll must not sit in the
     LL->SC success path (Section 3.1.2), so for backedges inside an
     LL/SC range the poll moves to the top of the loop body (before the
     LL), which still runs on every spin iteration. *)
  if options.polls then begin
    let polled_tops = Hashtbl.create 4 in
    List.iter
      (fun (i, tgt) ->
        if in_llsc_range i then begin
          if not (Hashtbl.mem polled_tops tgt) then begin
            Hashtbl.replace polled_tops tgt ();
            pre.(tgt) <- (Alpha.Insn.Poll :: pre.(tgt));
            stats.polls_inserted <- stats.polls_inserted + 1
          end
        end
        else begin
          (* The poll goes in front of any checks pending at the branch:
             a poll can service an invalidation, so a check that ran
             before it would prove nothing about the access it guards. *)
          pre.(i) <- Alpha.Insn.Poll :: pre.(i);
          stats.polls_inserted <- stats.polls_inserted + 1
        end)
      (Cfg.backedges cfg)
  end;
  (* Pass 4: hoist a prefetch-exclusive before loops containing LL/SC. *)
  if options.prefetch_ll_sc then
    List.iter
      (fun (ll_i, sc_j, _w, _r, off, base) ->
        let enclosing =
          List.filter (fun (br, tgt) -> br >= sc_j && tgt <= ll_i) (Cfg.backedges cfg)
        in
        (* innermost loop = largest target index *)
        let innermost =
          List.fold_left
            (fun acc (_, tgt) -> match acc with Some t when t >= tgt -> acc | _ -> Some tgt)
            None enclosing
        in
        match innermost with
        | None -> ()
        | Some header ->
            (* Only safe if the base register is not redefined inside the
               loop before the LL. *)
            let clobbered = ref false in
            for k = header to ll_i - 1 do
              if List.mem base (written_regs code.(k)) then clobbered := true
            done;
            if not !clobbered then begin
              pre_label.(header) <- pre_label.(header) @ [ Alpha.Insn.Prefetch_excl (off, base) ];
              stats.prefetches <- stats.prefetches + 1
            end)
      pairs;
  (* Reconstruct the instruction list with labels. *)
  let labels_at = Hashtbl.create 16 in
  Hashtbl.iter
    (fun l i ->
      let existing = Option.value (Hashtbl.find_opt labels_at i) ~default:[] in
      Hashtbl.replace labels_at i (l :: existing))
    proc.Alpha.Program.labels;
  let out = ref [] in
  let emit x = out := x :: !out in
  for i = 0 to n do
    List.iter emit pre_label.(i);
    (match Hashtbl.find_opt labels_at i with
    | Some ls -> List.iter (fun l -> emit (Alpha.Insn.Label l)) (List.sort compare ls)
    | None -> ());
    if i < n then begin
      List.iter emit pre.(i);
      emit code.(i);
      List.iter emit post.(i)
    end
  done;
  let out = List.rev !out in
  if not options.redundant_elim then out
  else begin
    let name = proc.Alpha.Program.name in
    let r = Optimize.run ~gran:options.granularity_table ~name out in
    stats.checks_eliminated <- stats.checks_eliminated + r.Optimize.eliminated;
    stats.checks_hoisted <- stats.checks_hoisted + r.Optimize.hoisted;
    (* The optimizer may never ship an uncovered access: re-validate. *)
    let scratch = Alpha.Program.create () in
    let p' = Alpha.Program.add_procedure scratch ~name r.Optimize.insns in
    let rep =
      Verify.verify_procedure ~shared_base:options.shared_base
        ~require_llsc:options.transform_ll_sc p'
    in
    (match rep.Verify.r_diags with
    | [] -> ()
    | d :: _ -> raise (Verify.Uncovered_access d));
    r.Optimize.insns
  end

(** [instrument ?options program] returns the instrumented program and
    the static statistics of the rewrite. *)
let instrument ?(options = default_options) (program : Alpha.Program.t) =
  let stats = empty_stats () in
  stats.orig_slots <- Alpha.Program.size_in_slots program;
  let program' =
    Alpha.Program.map_procedures program (fun proc ->
        stats.procedures <- stats.procedures + 1;
        instrument_procedure ~options ~stats proc)
  in
  stats.new_slots <- Alpha.Program.size_in_slots program';
  (program', stats)

(** Per-pass statistics in a stable, golden-testable layout. *)
let pp_stats ppf s =
  Format.fprintf ppf
    "procedures          %d@\n\
     code slots          %d -> %d (+%.0f%%)@\n\
     load checks         %d@\n\
     store checks        %d@\n\
     private accesses    %d (no check)@\n\
     batches             %d covering %d accesses@\n\
     polls               %d@\n\
     mb checks           %d@\n\
     ll/sc pairs         %d@\n\
     prefetches          %d@\n\
     gran lookups        %d@\n\
     checks eliminated   %d@\n\
     checks hoisted      %d"
    s.procedures s.orig_slots s.new_slots
    (100.0 *. code_growth s)
    s.loads_checked s.stores_checked s.accesses_private s.batches s.batched_accesses
    s.polls_inserted s.mb_checks_inserted s.llsc_pairs s.prefetches s.gran_lookups
    s.checks_eliminated s.checks_hoisted

(** Model of the code-modification time of Section 6.3: a fixed
    executable read/write cost plus per-procedure dataflow and insertion
    costs, calibrated so that ~370 procedures take ~5 s and Oracle's
    12000+ take ~200 s. *)
let modification_time_model ~procedures ~slots =
  let io = 3.0 +. (float_of_int slots *. 1.5e-6) in
  let dataflow = float_of_int procedures *. 8.6e-3 in
  let insertion = float_of_int procedures *. 6.0e-3 in
  io +. dataflow +. insertion
