(** Mutation harness: seed each deliberate protocol bug
    ({!Protocol.Config.mutation}) and prove the checking layers catch
    it.  A mutation counts as caught only when a run both {e fired} the
    bug (the mutated code path executed) and reported a violation —
    a violation in a run where the bug never triggered would be a false
    alarm, not a catch. *)

type report = {
  m_mutation : Protocol.Config.mutation;
  m_label : string;
  m_caught : (string * int) option;
      (** [(scenario, seed)] of the first catching run; seed 0 = FIFO *)
  m_fired : bool;  (** the mutated path executed at least once *)
  m_runs : int;  (** runs spent before the catch (or giving up) *)
}

let all_mutations =
  [
    (Protocol.Config.Skip_invalidate, "skip-invalidate");
    (Protocol.Config.Skip_inval_ack, "skip-inval-ack");
    (Protocol.Config.Keep_private_on_recall, "keep-private-on-recall");
    (Protocol.Config.Skip_one_invalidation, "skip-one-invalidation");
    (Protocol.Config.Wrong_block_extent, "wrong-block-extent");
  ]

(** [hunt ?seeds ?scenarios ()] — for each mutation, try the FIFO
    schedule then seeds [1..seeds] across all scenarios until a run
    catches it. *)
let hunt ?(seeds = 64) ?(scenarios = Litmus.all) () =
  List.map
    (fun (mutation, label) ->
      let caught = ref None in
      let fired = ref false in
      let runs = ref 0 in
      let schedules seed =
        if seed = 0 then Sim.Engine.Fifo else Sim.Engine.Seeded seed
      in
      (try
         for seed = 0 to seeds do
           List.iter
             (fun (sc : Litmus.scenario) ->
               incr runs;
               let o = Litmus.run ~mutation sc (schedules seed) in
               if o.Litmus.mutation_fired > 0 then begin
                 fired := true;
                 if o.Litmus.violations <> [] then begin
                   caught := Some (sc.Litmus.name, seed);
                   raise Exit
                 end
               end)
             scenarios
         done
       with Exit -> ());
      {
        m_mutation = mutation;
        m_label = label;
        m_caught = !caught;
        m_fired = !fired;
        m_runs = !runs;
      })
    all_mutations

let all_caught reports = List.for_all (fun r -> r.m_caught <> None) reports

(* Shared driver for the systematic hunts: [explore] runs one scenario
   function under a systematic driver; the wrapped scenario counts runs
   and raises [Exit] on the first convicting run (a run where the bug
   fired {e and} a checking layer reported a violation), which aborts
   the driver early — both drivers tolerate an exception from the
   scenario, so [m_runs] is exactly runs-to-conviction. *)
let hunt_systematic ~explore ?(scenarios = Litmus.all) () =
  List.map
    (fun (mutation, label) ->
      let caught = ref None in
      let fired = ref false in
      let runs = ref 0 in
      (try
         List.iter
           (fun (sc : Litmus.scenario) ->
             let scenario schedule =
               incr runs;
               let o = Litmus.run ~mutation sc schedule in
               if o.Litmus.mutation_fired > 0 then begin
                 fired := true;
                 if o.Litmus.violations <> [] then begin
                   caught := Some (sc.Litmus.name, 0);
                   raise Exit
                 end
               end;
               o.Litmus.violations
             in
             ignore (explore scenario))
           scenarios
       with Exit -> ());
      {
        m_mutation = mutation;
        m_label = label;
        m_caught = !caught;
        m_fired = !fired;
        m_runs = !runs;
      })
    all_mutations

(** [hunt_dpor ?max_runs ?scenarios ()] — convict every protocol
    mutation under the DPOR driver.  [m_runs] is the number of runs
    spent before the first conviction ([m_caught] reports the catching
    scenario, with 0 standing in for the seed). *)
let hunt_dpor ?(max_runs = 400) ?scenarios () =
  hunt_systematic ~explore:(fun s -> Dpor.explore ~max_runs s) ?scenarios ()

(** [hunt_exhaustive ?max_runs ?max_depth ?scenarios ()] — the same
    conviction sweep under the bounded-exhaustive driver, for run-count
    comparisons against {!hunt_dpor}. *)
let hunt_exhaustive ?(max_runs = 400) ?(max_depth = 8) ?scenarios () =
  hunt_systematic
    ~explore:(fun s -> Explore.exhaustive ~max_runs ~max_depth s)
    ?scenarios ()

(* --- instrumenter mutations ---

   The protocol mutations above seed bugs in the coherence engine; these
   seed bugs in the {e rewriter} output and ask the translation
   validator ({!Rewrite.Verify}) to convict them statically — no run
   needed.  Each mutation family has many possible sites per program;
   the site index plays the role of the seed, and a family counts as
   caught only when a site that actually changed the code (fired) draws
   a diagnostic. *)

type imutation =
  | Drop_check  (** delete one check pseudo-instruction *)
  | Wrong_width  (** narrow a 64-bit check guarding a 64-bit access to 32-bit *)
  | Check_after_poll  (** swap an adjacent [Poll; check] pair — the pre-fix pass-3 ordering bug *)
  | Wrong_batch_base  (** point one batch entry at the wrong base register *)

let all_imutations =
  [
    (Drop_check, "drop-check");
    (Wrong_width, "wrong-width");
    (Check_after_poll, "check-after-poll");
    (Wrong_batch_base, "wrong-batch-base");
  ]

let is_check = function
  | Alpha.Insn.Load_check _ | Alpha.Insn.Store_check _ | Alpha.Insn.Batch_check _
  | Alpha.Insn.Ll_check _ | Alpha.Insn.Sc_check _ ->
      true
  | _ -> false

(** [apply_imutation m ~site program] — rewrite the [site]-th applicable
    site of an {e instrumented} program.  Returns the mutated program,
    whether the mutation fired (a site matched), and the total number of
    applicable sites (so callers can sweep them all). *)
let apply_imutation m ~site (prog : Alpha.Program.t) =
  let counter = ref (-1) in
  let fired = ref false in
  let hit () =
    incr counter;
    if !counter = site then begin
      fired := true;
      true
    end
    else false
  in
  let module I = Alpha.Insn in
  let rec go insns =
    match insns with
    | [] -> []
    | x :: rest -> (
        match (m, x, rest) with
        | Drop_check, x, _ when is_check x -> if hit () then go rest else x :: go rest
        | Wrong_width, I.Load_check (I.W64, d, off, b), _ ->
            if hit () then I.Load_check (I.W32, d, off, b) :: go rest else x :: go rest
        | Wrong_width, I.Store_check (I.W64, off, b), _ ->
            if hit () then I.Store_check (I.W32, off, b) :: go rest else x :: go rest
        | Wrong_width, I.Sc_check (I.W64, r, off, b), _ ->
            if hit () then I.Sc_check (I.W32, r, off, b) :: go rest else x :: go rest
        | Wrong_width, I.Batch_check es, _
          when List.exists (fun e -> e.I.b_width = I.W64) es ->
            if hit () then begin
              let narrowed = ref false in
              let es' =
                List.map
                  (fun e ->
                    if (not !narrowed) && e.I.b_width = I.W64 then begin
                      narrowed := true;
                      { e with I.b_width = I.W32 }
                    end
                    else e)
                  es
              in
              I.Batch_check es' :: go rest
            end
            else x :: go rest
        | Check_after_poll, I.Poll, c :: r2 when is_check c ->
            if hit () then c :: I.Poll :: go r2 else x :: go rest
        | Wrong_batch_base, I.Batch_check (e :: es), _ ->
            if hit () then begin
              let wrong = if e.I.b_base <> 1 then 1 else 2 in
              I.Batch_check ({ e with I.b_base = wrong } :: es) :: go rest
            end
            else x :: go rest
        | _ -> x :: go rest)
  in
  let prog' =
    Alpha.Program.map_procedures prog (fun p -> go (Alpha.Program.to_insn_list p))
  in
  (prog', !fired, !counter + 1)

type ireport = {
  i_mutation : imutation;
  i_label : string;
  i_caught : (string * int) option;  (** [(kernel, site)] of the first conviction *)
  i_fired : bool;
  i_sites : int;  (** fired sites examined before the catch (or giving up) *)
}

(** [hunt_instrumenter ()] — for each instrumenter-mutation family,
    sweep every applicable site of every instrumented corpus kernel
    until the validator convicts one. *)
let hunt_instrumenter ?(options = Rewrite.Instrument.default_options) () =
  let corpus =
    List.map
      (fun (e : Apps.Ircorpus.entry) ->
        let instrumented, _ = Rewrite.Instrument.instrument ~options e.Apps.Ircorpus.e_program in
        (e.Apps.Ircorpus.e_name, instrumented))
      Apps.Ircorpus.all
  in
  List.map
    (fun (m, label) ->
      let caught = ref None in
      let fired = ref false in
      let examined = ref 0 in
      (try
         List.iter
           (fun (name, instrumented) ->
             let _, _, nsites = apply_imutation m ~site:(-1) instrumented in
             for site = 0 to nsites - 1 do
               let prog', f, _ = apply_imutation m ~site instrumented in
               if f then begin
                 fired := true;
                 incr examined;
                 if not (Rewrite.Verify.ok (Rewrite.Verify.verify prog')) then begin
                   caught := Some (name, site);
                   raise Exit
                 end
               end
             done)
           corpus
       with Exit -> ());
      { i_mutation = m; i_label = label; i_caught = !caught; i_fired = !fired; i_sites = !examined })
    all_imutations

let all_icaught reports = List.for_all (fun r -> r.i_caught <> None) reports

let pp_ireport ppf r =
  match r.i_caught with
  | Some (kernel, site) ->
      Format.fprintf ppf "%-18s caught by the validator in %s at site %d (%d site%s)" r.i_label
        kernel site r.i_sites
        (if r.i_sites = 1 then "" else "s")
  | None ->
      Format.fprintf ppf "%-18s MISSED after %d sites (mutation %s)" r.i_label r.i_sites
        (if r.i_fired then "fired but drew no diagnostic" else "never fired")

let pp_report ppf r =
  match r.m_caught with
  | Some (scenario, seed) ->
      Format.fprintf ppf "%-24s caught by %s at seed %d (%d run%s)" r.m_label
        scenario seed r.m_runs
        (if r.m_runs = 1 then "" else "s")
  | None ->
      Format.fprintf ppf "%-24s MISSED after %d runs (bug %s)" r.m_label r.m_runs
        (if r.m_fired then "fired but was never detected" else "never even fired")
