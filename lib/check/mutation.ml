(** Mutation harness: seed each deliberate protocol bug
    ({!Protocol.Config.mutation}) and prove the checking layers catch
    it.  A mutation counts as caught only when a run both {e fired} the
    bug (the mutated code path executed) and reported a violation —
    a violation in a run where the bug never triggered would be a false
    alarm, not a catch. *)

type report = {
  m_mutation : Protocol.Config.mutation;
  m_label : string;
  m_caught : (string * int) option;
      (** [(scenario, seed)] of the first catching run; seed 0 = FIFO *)
  m_fired : bool;  (** the mutated path executed at least once *)
  m_runs : int;  (** runs spent before the catch (or giving up) *)
}

let all_mutations =
  [
    (Protocol.Config.Skip_invalidate, "skip-invalidate");
    (Protocol.Config.Skip_inval_ack, "skip-inval-ack");
    (Protocol.Config.Keep_private_on_recall, "keep-private-on-recall");
    (Protocol.Config.Skip_one_invalidation, "skip-one-invalidation");
    (Protocol.Config.Wrong_block_extent, "wrong-block-extent");
  ]

(** [hunt ?seeds ?scenarios ()] — for each mutation, try the FIFO
    schedule then seeds [1..seeds] across all scenarios until a run
    catches it. *)
let hunt ?(seeds = 64) ?(scenarios = Litmus.all) () =
  List.map
    (fun (mutation, label) ->
      let caught = ref None in
      let fired = ref false in
      let runs = ref 0 in
      let schedules seed =
        if seed = 0 then Sim.Engine.Fifo else Sim.Engine.Seeded seed
      in
      (try
         for seed = 0 to seeds do
           List.iter
             (fun (sc : Litmus.scenario) ->
               incr runs;
               let o = Litmus.run ~mutation sc (schedules seed) in
               if o.Litmus.mutation_fired > 0 then begin
                 fired := true;
                 if o.Litmus.violations <> [] then begin
                   caught := Some (sc.Litmus.name, seed);
                   raise Exit
                 end
               end)
             scenarios
         done
       with Exit -> ());
      {
        m_mutation = mutation;
        m_label = label;
        m_caught = !caught;
        m_fired = !fired;
        m_runs = !runs;
      })
    all_mutations

let all_caught reports = List.for_all (fun r -> r.m_caught <> None) reports

(* Shared driver for the systematic hunts: [explore] runs one scenario
   function under a systematic driver; the wrapped scenario counts runs
   and raises [Exit] on the first convicting run (a run where the bug
   fired {e and} a checking layer reported a violation), which aborts
   the driver early — both drivers tolerate an exception from the
   scenario, so [m_runs] is exactly runs-to-conviction. *)
let hunt_systematic ~explore ?(scenarios = Litmus.all) () =
  List.map
    (fun (mutation, label) ->
      let caught = ref None in
      let fired = ref false in
      let runs = ref 0 in
      (try
         List.iter
           (fun (sc : Litmus.scenario) ->
             let scenario schedule =
               incr runs;
               let o = Litmus.run ~mutation sc schedule in
               if o.Litmus.mutation_fired > 0 then begin
                 fired := true;
                 if o.Litmus.violations <> [] then begin
                   caught := Some (sc.Litmus.name, 0);
                   raise Exit
                 end
               end;
               o.Litmus.violations
             in
             ignore (explore scenario))
           scenarios
       with Exit -> ());
      {
        m_mutation = mutation;
        m_label = label;
        m_caught = !caught;
        m_fired = !fired;
        m_runs = !runs;
      })
    all_mutations

(** [hunt_dpor ?max_runs ?scenarios ()] — convict every protocol
    mutation under the DPOR driver.  [m_runs] is the number of runs
    spent before the first conviction ([m_caught] reports the catching
    scenario, with 0 standing in for the seed). *)
let hunt_dpor ?(max_runs = 400) ?scenarios () =
  hunt_systematic ~explore:(fun s -> Dpor.explore ~max_runs s) ?scenarios ()

(** [hunt_exhaustive ?max_runs ?max_depth ?scenarios ()] — the same
    conviction sweep under the bounded-exhaustive driver, for run-count
    comparisons against {!hunt_dpor}. *)
let hunt_exhaustive ?(max_runs = 400) ?(max_depth = 8) ?scenarios () =
  hunt_systematic
    ~explore:(fun s -> Explore.exhaustive ~max_runs ~max_depth s)
    ?scenarios ()

(* --- instrumenter mutations ---

   The protocol mutations above seed bugs in the coherence engine; these
   seed bugs in the {e rewriter} output and ask the translation
   validator ({!Rewrite.Verify}) to convict them statically — no run
   needed.  Each mutation family has many possible sites per program;
   the site index plays the role of the seed, and a family counts as
   caught only when a site that actually changed the code (fired) draws
   a diagnostic. *)

type imutation =
  | Drop_check  (** delete one check pseudo-instruction *)
  | Wrong_width  (** narrow a 64-bit check guarding a 64-bit access to 32-bit *)
  | Check_after_poll  (** swap an adjacent [Poll; check] pair — the pre-fix pass-3 ordering bug *)
  | Wrong_batch_base  (** point one batch entry at the wrong base register *)

let all_imutations =
  [
    (Drop_check, "drop-check");
    (Wrong_width, "wrong-width");
    (Check_after_poll, "check-after-poll");
    (Wrong_batch_base, "wrong-batch-base");
  ]

let is_check = function
  | Alpha.Insn.Load_check _ | Alpha.Insn.Store_check _ | Alpha.Insn.Batch_check _
  | Alpha.Insn.Ll_check _ | Alpha.Insn.Sc_check _ ->
      true
  | _ -> false

(** [apply_imutation m ~site program] — rewrite the [site]-th applicable
    site of an {e instrumented} program.  Returns the mutated program,
    whether the mutation fired (a site matched), and the total number of
    applicable sites (so callers can sweep them all). *)
let apply_imutation m ~site (prog : Alpha.Program.t) =
  let counter = ref (-1) in
  let fired = ref false in
  let hit () =
    incr counter;
    if !counter = site then begin
      fired := true;
      true
    end
    else false
  in
  let module I = Alpha.Insn in
  let rec go insns =
    match insns with
    | [] -> []
    | x :: rest -> (
        match (m, x, rest) with
        | Drop_check, x, _ when is_check x -> if hit () then go rest else x :: go rest
        | Wrong_width, I.Load_check (I.W64, d, off, b), _ ->
            if hit () then I.Load_check (I.W32, d, off, b) :: go rest else x :: go rest
        | Wrong_width, I.Store_check (I.W64, off, b), _ ->
            if hit () then I.Store_check (I.W32, off, b) :: go rest else x :: go rest
        | Wrong_width, I.Sc_check (I.W64, r, off, b), _ ->
            if hit () then I.Sc_check (I.W32, r, off, b) :: go rest else x :: go rest
        | Wrong_width, I.Batch_check es, _
          when List.exists (fun e -> e.I.b_width = I.W64) es ->
            if hit () then begin
              let narrowed = ref false in
              let es' =
                List.map
                  (fun e ->
                    if (not !narrowed) && e.I.b_width = I.W64 then begin
                      narrowed := true;
                      { e with I.b_width = I.W32 }
                    end
                    else e)
                  es
              in
              I.Batch_check es' :: go rest
            end
            else x :: go rest
        | Check_after_poll, I.Poll, c :: r2 when is_check c ->
            if hit () then c :: I.Poll :: go r2 else x :: go rest
        | Wrong_batch_base, I.Batch_check (e :: es), _ ->
            if hit () then begin
              let wrong = if e.I.b_base <> 1 then 1 else 2 in
              I.Batch_check ({ e with I.b_base = wrong } :: es) :: go rest
            end
            else x :: go rest
        | _ -> x :: go rest)
  in
  let prog' =
    Alpha.Program.map_procedures prog (fun p -> go (Alpha.Program.to_insn_list p))
  in
  (prog', !fired, !counter + 1)

type ireport = {
  i_mutation : imutation;
  i_label : string;
  i_caught : (string * int) option;  (** [(kernel, site)] of the first conviction *)
  i_fired : bool;
  i_sites : int;  (** fired sites examined before the catch (or giving up) *)
}

(** [hunt_instrumenter ()] — for each instrumenter-mutation family,
    sweep every applicable site of every instrumented corpus kernel
    until the validator convicts one. *)
let hunt_instrumenter ?(options = Rewrite.Instrument.default_options) () =
  let corpus =
    List.map
      (fun (e : Apps.Ircorpus.entry) ->
        let instrumented, _ = Rewrite.Instrument.instrument ~options e.Apps.Ircorpus.e_program in
        (e.Apps.Ircorpus.e_name, instrumented))
      Apps.Ircorpus.all
  in
  List.map
    (fun (m, label) ->
      let caught = ref None in
      let fired = ref false in
      let examined = ref 0 in
      (try
         List.iter
           (fun (name, instrumented) ->
             let _, _, nsites = apply_imutation m ~site:(-1) instrumented in
             for site = 0 to nsites - 1 do
               let prog', f, _ = apply_imutation m ~site instrumented in
               if f then begin
                 fired := true;
                 incr examined;
                 if not (Rewrite.Verify.ok (Rewrite.Verify.verify prog')) then begin
                   caught := Some (name, site);
                   raise Exit
                 end
               end
             done)
           corpus
       with Exit -> ());
      { i_mutation = m; i_label = label; i_caught = !caught; i_fired = !fired; i_sites = !examined })
    all_imutations

let all_icaught reports = List.for_all (fun r -> r.i_caught <> None) reports

let pp_ireport ppf r =
  match r.i_caught with
  | Some (kernel, site) ->
      Format.fprintf ppf "%-18s caught by the validator in %s at site %d (%d site%s)" r.i_label
        kernel site r.i_sites
        (if r.i_sites = 1 then "" else "s")
  | None ->
      Format.fprintf ppf "%-18s MISSED after %d sites (mutation %s)" r.i_label r.i_sites
        (if r.i_fired then "fired but drew no diagnostic" else "never fired")

let pp_report ppf r =
  match r.m_caught with
  | Some (scenario, seed) ->
      Format.fprintf ppf "%-24s caught by %s at seed %d (%d run%s)" r.m_label
        scenario seed r.m_runs
        (if r.m_runs = 1 then "" else "s")
  | None ->
      Format.fprintf ppf "%-24s MISSED after %d runs (bug %s)" r.m_label r.m_runs
        (if r.m_fired then "fired but was never detected" else "never even fired")

(* --- sync (race) mutations ---

   The protocol and instrumenter mutations seed bugs under and around
   the application; these seed {e synchronisation} bugs in the
   application itself — the four classic ways properly-synchronised
   SPMD code goes wrong — and ask the static race detector
   ({!Rewrite.Races}) to convict them, again with the site index as the
   seed.  The substrate is the sync corpus ({!Apps.Ircorpus.sync}),
   whose kernels are race-free as written, so any conviction is
   attributable to the mutation. *)

type smutation =
  | Drop_lock  (** delete one [sync_lock] call: its critical section runs bare *)
  | Wrong_lock_id  (** acquire a different lock than the data's convention *)
  | Drop_barrier  (** elide one [sync_barrier] call: phases collapse *)
  | Publish_after_barrier
      (** move a store from before a barrier to after it — the publish
          lands in the readers' phase (a phase-skew, not a missing
          barrier) *)

let all_smutations =
  [
    (Drop_lock, "drop-lock");
    (Wrong_lock_id, "wrong-lock-id");
    (Drop_barrier, "barrier-elided");
    (Publish_after_barrier, "phase-skewed-publish");
  ]

(** [apply_smutation m ~site program] — rewrite the [site]-th applicable
    site, on the same (mutated program, fired, sites) contract as
    {!apply_imutation}.  Works on uninstrumented programs: the sync
    calls are in the source kernel, not inserted by the rewriter. *)
let apply_smutation m ~site (prog : Alpha.Program.t) =
  let counter = ref (-1) in
  let fired = ref false in
  let hit () =
    incr counter;
    if !counter = site then begin
      fired := true;
      true
    end
    else false
  in
  let module I = Alpha.Insn in
  (* Straight-line separators a publish may be carried across: constant
     loads, register moves/arithmetic, and labels (the store must stay
     on its own side of any branch, so control flow ends the search). *)
  let rec split_to_barrier acc = function
    | ((I.Li _ | I.Binop _ | I.Label _) as x) :: rest -> split_to_barrier (x :: acc) rest
    | I.Call n :: rest when n = Alpha.Runtime.sync_barrier_proc ->
        Some (List.rev acc, rest)
    | _ -> None
  in
  let rec go insns =
    match insns with
    | [] -> []
    | x :: rest -> (
        match (m, x, rest) with
        | Drop_lock, I.Call n, _ when n = Alpha.Runtime.sync_lock_proc ->
            if hit () then go rest else x :: go rest
        | Wrong_lock_id, I.Li (r, v), I.Call n :: _
          when r = 16 (* a0 *) && n = Alpha.Runtime.sync_lock_proc ->
            if hit () then I.Li (r, Int64.add v 1L) :: go rest else x :: go rest
        | Drop_barrier, I.Call n, _ when n = Alpha.Runtime.sync_barrier_proc ->
            if hit () then go rest else x :: go rest
        | Publish_after_barrier, (I.St _ as st), _ -> (
            match split_to_barrier [] rest with
            | Some (sep, tail) ->
                if hit () then
                  sep @ (I.Call Alpha.Runtime.sync_barrier_proc :: st :: go tail)
                else st :: go rest
            | None -> st :: go rest)
        | _ -> x :: go rest)
  in
  let prog' =
    Alpha.Program.map_procedures prog (fun p -> go (Alpha.Program.to_insn_list p))
  in
  (prog', !fired, !counter + 1)

type sreport = {
  s_mutation : smutation;
  s_label : string;
  s_caught : (string * int) option;  (** [(kernel, site)] of the first conviction *)
  s_fired : bool;
  s_sites : int;  (** fired sites examined before the catch (or giving up) *)
}

(** [hunt_sync ()] — for each sync-mutation family, sweep every
    applicable site of every sync-corpus kernel until the static race
    detector convicts one.  [nprocs] is the thread count the detector
    reasons about (any count >= 2 should convict). *)
let hunt_sync ?(nprocs = 4) () =
  let corpus =
    List.map (fun (e : Apps.Ircorpus.entry) -> (e.Apps.Ircorpus.e_name, e.Apps.Ircorpus.e_program)) Apps.Ircorpus.sync
  in
  List.map
    (fun (m, label) ->
      let caught = ref None in
      let fired = ref false in
      let examined = ref 0 in
      (try
         List.iter
           (fun (name, prog) ->
             let _, _, nsites = apply_smutation m ~site:(-1) prog in
             for site = 0 to nsites - 1 do
               let prog', f, _ = apply_smutation m ~site prog in
               if f then begin
                 fired := true;
                 incr examined;
                 let r = Rewrite.Races.analyze ~nprocs ~name prog' in
                 if r.Rewrite.Races.rep_races <> [] then begin
                   caught := Some (name, site);
                   raise Exit
                 end
               end
             done)
           corpus
       with Exit -> ());
      { s_mutation = m; s_label = label; s_caught = !caught; s_fired = !fired; s_sites = !examined })
    all_smutations

let all_scaught reports = List.for_all (fun r -> r.s_caught <> None) reports

let pp_sreport ppf r =
  match r.s_caught with
  | Some (kernel, site) ->
      Format.fprintf ppf "%-20s caught by the race detector in %s at site %d (%d site%s)"
        r.s_label kernel site r.s_sites
        (if r.s_sites = 1 then "" else "s")
  | None ->
      Format.fprintf ppf "%-20s MISSED after %d sites (mutation %s)" r.s_label r.s_sites
        (if r.s_fired then "fired but drew no race report" else "never fired")

(* --- batch-boundary mutation ---

   One seeded corruption of the interpreter's dispatch metadata: a pure
   run lengthened by one instruction, so the batched main loop would
   execute the dispatch point that follows it — a poll, a check, a
   memory access — as if it were register arithmetic.  The batch-safety
   validator ({!Rewrite.Batch}) must convict it. *)

(** [swallow_dispatch proc] — [proc]'s freshly built metadata with its
    first extensible pure run grown by one, or [None] when the
    procedure has no pure run followed by another instruction. *)
let swallow_dispatch (proc : Alpha.Program.procedure) =
  let m = Alpha.Interp.build_meta proc in
  let n = Array.length proc.Alpha.Program.code in
  let pure = Array.copy m.Alpha.Interp.m_pure in
  let site = ref None in
  (try
     for pc = 0 to n - 1 do
       if !site = None && pure.(pc) > 0 && pc + pure.(pc) < n then begin
         site := Some pc;
         pure.(pc) <- pure.(pc) + 1;
         raise Exit
       end
     done
   with Exit -> ());
  match !site with
  | None -> None
  | Some pc -> Some (pc, { m with Alpha.Interp.m_pure = pure })
