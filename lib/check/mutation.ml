(** Mutation harness: seed each deliberate protocol bug
    ({!Protocol.Config.mutation}) and prove the checking layers catch
    it.  A mutation counts as caught only when a run both {e fired} the
    bug (the mutated code path executed) and reported a violation —
    a violation in a run where the bug never triggered would be a false
    alarm, not a catch. *)

type report = {
  m_mutation : Protocol.Config.mutation;
  m_label : string;
  m_caught : (string * int) option;
      (** [(scenario, seed)] of the first catching run; seed 0 = FIFO *)
  m_fired : bool;  (** the mutated path executed at least once *)
  m_runs : int;  (** runs spent before the catch (or giving up) *)
}

let all_mutations =
  [
    (Protocol.Config.Skip_invalidate, "skip-invalidate");
    (Protocol.Config.Skip_inval_ack, "skip-inval-ack");
    (Protocol.Config.Keep_private_on_recall, "keep-private-on-recall");
    (Protocol.Config.Skip_one_invalidation, "skip-one-invalidation");
    (Protocol.Config.Wrong_block_extent, "wrong-block-extent");
  ]

(** [hunt ?seeds ?scenarios ()] — for each mutation, try the FIFO
    schedule then seeds [1..seeds] across all scenarios until a run
    catches it. *)
let hunt ?(seeds = 64) ?(scenarios = Litmus.all) () =
  List.map
    (fun (mutation, label) ->
      let caught = ref None in
      let fired = ref false in
      let runs = ref 0 in
      let schedules seed =
        if seed = 0 then Sim.Engine.Fifo else Sim.Engine.Seeded seed
      in
      (try
         for seed = 0 to seeds do
           List.iter
             (fun (sc : Litmus.scenario) ->
               incr runs;
               let o = Litmus.run ~mutation sc (schedules seed) in
               if o.Litmus.mutation_fired > 0 then begin
                 fired := true;
                 if o.Litmus.violations <> [] then begin
                   caught := Some (sc.Litmus.name, seed);
                   raise Exit
                 end
               end)
             scenarios
         done
       with Exit -> ());
      {
        m_mutation = mutation;
        m_label = label;
        m_caught = !caught;
        m_fired = !fired;
        m_runs = !runs;
      })
    all_mutations

let all_caught reports = List.for_all (fun r -> r.m_caught <> None) reports

let pp_report ppf r =
  match r.m_caught with
  | Some (scenario, seed) ->
      Format.fprintf ppf "%-24s caught by %s at seed %d (%d run%s)" r.m_label
        scenario seed r.m_runs
        (if r.m_runs = 1 then "" else "s")
  | None ->
      Format.fprintf ppf "%-24s MISSED after %d runs (bug %s)" r.m_label r.m_runs
        (if r.m_fired then "fired but was never detected" else "never even fired")
