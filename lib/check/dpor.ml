(** Dynamic partial-order reduction over tie-break schedules.

    The engine's only scheduling freedom is {e within} a same-time
    tie-set: time order between distinct timestamps is fixed by the
    simulation itself.  A non-chosen tied event is pushed back with its
    original sequence number, so it stays a candidate at every
    subsequent choice point of its instant — which gives the two
    structural facts the reduction is built on:

    - {b Persistent sets.}  At a choice point, partition the candidates
      into connected components of the dependence relation
      ({!Sim.Engine.dependent} over labels).  Events outside the
      component of the chosen event commute with everything fired from
      it, and remain candidates afterwards; any trace firing one of
      them first is Mazurkiewicz-equivalent to one reachable later in
      this subtree.  Exploring just the chosen component is therefore
      sufficient — it is a persistent (source) set.
    - {b Sleep sets.}  After the subtree below choice [c] is exhausted,
      [c] is put to sleep for the remaining choices: any run that fires
      [c] again before some event {e dependent} on [c] has fired is a
      reordering of an explored run, and is pruned mid-flight.  The
      engine's stable per-event sequence numbers are what let a sleeping
      event be tracked across choice points.

    Schedule bounding in the dejafu style is layered on top: a
    {e preemption} is any choice forcing a context switch the default
    scheduler would not take — scheduling away from the last node while
    it still has a tied event, or scheduling an event of a node ahead of
    that node's earlier-pending event.  Branches that would exceed
    [preemption_bound] are cut (and the result marked truncated, since
    bounded coverage is no longer full coverage).

    Exploration is replay-based depth-first search: each run replays the
    decision prefix on a fresh cluster (runs are deterministic given the
    decisions), extends it by default choices, then backtracks to the
    deepest choice point with unexplored candidates. *)

module E = Sim.Engine
module ISet = Set.Make (Int)

(** A choice point on the current DFS spine.  Candidates are identified
    by their stable engine sequence numbers, which survive tie push-back
    and replay. *)
type cp = {
  cands : E.choice array;
  mutable cur : int;  (** index (into [cands]) currently being explored *)
  mutable todo : ISet.t;  (** candidate seqs still awaiting exploration *)
  mutable explored : ISet.t;  (** candidate seqs with exhausted subtrees *)
}

(** Raised from inside the chooser to abandon a run whose remainder is
    provably equivalent to an explored run (it was forced to fire a
    sleeping event).  Propagates through {!Litmus.run}, which catches
    only coherence violations and worker failures. *)
exception Prune

(* A minimal growable stack (OCaml 5.1: no Dynarray). *)
module Vec = struct
  type 'a t = { mutable a : 'a option array; mutable n : int }

  let create () = { a = Array.make 64 None; n = 0 }

  let push v x =
    if v.n = Array.length v.a then
      v.a <- Array.append v.a (Array.make (Array.length v.a) None);
    v.a.(v.n) <- Some x;
    v.n <- v.n + 1

  let get v i = Option.get v.a.(i)
  let length v = v.n

  let truncate v k =
    for i = k to v.n - 1 do
      v.a.(i) <- None
    done;
    v.n <- k
end

(* Connected component of candidate [i0] under the dependence relation,
   as a list of candidate indices. *)
let component (cands : E.choice array) i0 =
  let n = Array.length cands in
  let inc = Array.make n false in
  inc.(i0) <- true;
  let frontier = ref [ i0 ] in
  while !frontier <> [] do
    let i = List.hd !frontier in
    frontier := List.tl !frontier;
    for j = 0 to n - 1 do
      if (not inc.(j)) && E.dependent cands.(i).E.ch_label cands.(j).E.ch_label
      then begin
        inc.(j) <- true;
        frontier := j :: !frontier
      end
    done
  done;
  List.filter (fun j -> inc.(j)) (List.init n (fun j -> j))

let index_of_seq (cands : E.choice array) s =
  let r = ref (-1) in
  Array.iteri (fun i c -> if c.E.ch_seq = s then r := i) cands;
  assert (!r >= 0);
  !r

(** [schedule_of_decisions ds] — a single-use {!Sim.Engine.Guided}
    schedule replaying decision vector [ds]: the [k]-th multi-candidate
    tie-set takes index [ds.(k)] (0 past the end, and on singletons).
    This is how a `Dpor [...]` failure from CI is replayed locally. *)
let schedule_of_decisions ds =
  let ds = Array.of_list ds in
  let k = ref 0 in
  E.Guided
    (fun cands ->
      if Array.length cands = 1 then 0
      else begin
        let i = if !k < Array.length ds then ds.(!k) else 0 in
        incr k;
        i
      end)

(** [explore ?max_runs ?preemption_bound ?jitter scenario] — run the
    reduction to a fixed point (or the run budget).  With no bound and a
    fixed point reached, [s_complete] certifies that every schedule of
    the tie-break tree is equivalent to an explored run.  With a bound,
    coverage is bounded-complete and [s_truncated] records whether the
    bound actually cut anything.

    [jitter = (seed, prob, max_delay)] composes the search with
    {!Sim.Engine.Guided_jittered} delay injection: some transients (a
    grant in flight while its owner's directory state is overwritten)
    only open when a message is delayed, and tie-break reordering alone
    cannot produce them.  Delays are drawn per scheduled event in
    creation order, so a replayed decision prefix reproduces its delays
    and the DFS stays deterministic. *)
let explore ?(max_runs = 5000) ?preemption_bound ?jitter scenario =
  let stack : cp Vec.t = Vec.create () in
  let failures = ref [] in
  let runs = ref 0 in
  let complete = ref false in
  let bounded = ref false in
  let pruned_runs = ref 0 in
  let deepest = ref 0 in
  let classes = Hashtbl.create 64 in
  (* per-run state *)
  let depth = ref 0 in
  let sleep = ref ([] : (int * E.label) list) in
  let preempts = ref 0 in
  let last_node = ref (-1) in
  let run_labels = ref ([] : E.label list) in
  (* A choice is a preemption (cost 1) when it forces a context switch
     that the default scheduler would not take: picking a node other
     than the last-scheduled one while that node still has a tied event
     (cross-node preemption), or picking an event of a node ahead of an
     earlier-pending event of the same node — the tie-set analogue of
     preempting the task that CPU would naturally run next.  Forced
     switches (the last node has nothing tied, and the event is its
     node's oldest) are free, so any schedule the unbounded default
     scheduler produces has cost 0. *)
  let preempt_cost (cands : E.choice array) i =
    let node = cands.(i).E.ch_label.E.lbl_node in
    if node < 0 then 0
    else begin
      let cross =
        !last_node >= 0 && node <> !last_node
        && Array.exists (fun c -> c.E.ch_label.E.lbl_node = !last_node) cands
      in
      let within =
        Array.exists
          (fun c ->
            c.E.ch_label.E.lbl_node = node && c.E.ch_seq < cands.(i).E.ch_seq)
          cands
      in
      if cross || within then 1 else 0
    end
  in
  let admissible cands i =
    match preemption_bound with
    | None -> true
    | Some b -> !preempts + preempt_cost cands i <= b
  in
  let chooser (cands : E.choice array) =
    let n = Array.length cands in
    let pick =
      if n = 1 then begin
        if List.mem_assoc cands.(0).E.ch_seq !sleep then begin
          incr pruned_runs;
          raise Prune
        end;
        0
      end
      else begin
        let d = !depth in
        incr depth;
        if !depth > !deepest then deepest := !depth;
        if d < Vec.length stack then begin
          (* replay *)
          let cp = Vec.get stack d in
          if
            Array.length cp.cands <> n
            || cp.cands.(cp.cur).E.ch_seq <> cands.(cp.cur).E.ch_seq
          then
            failwith
              "Dpor: replay divergence — scenario is not deterministic under \
               a fixed schedule";
          (* sleep-set inheritance: choices already exhausted at this
             point sleep in the current branch unless woken by a
             dependent event (the filter below) *)
          List.iter
            (fun i ->
              let c = cp.cands.(i) in
              if
                ISet.mem c.E.ch_seq cp.explored
                && not (List.mem_assoc c.E.ch_seq !sleep)
              then sleep := (c.E.ch_seq, c.E.ch_label) :: !sleep)
            (List.init n (fun i -> i));
          cp.cur
        end
        else begin
          (* fresh choice point *)
          let sleeping i = List.mem_assoc cands.(i).E.ch_seq !sleep in
          let explorable =
            List.filter (fun i -> not (sleeping i)) (List.init n (fun i -> i))
          in
          match explorable with
          | [] ->
              incr pruned_runs;
              raise Prune
          | _ :: _ -> (
              (* prefer a free (non-preempting) continuation *)
              let pick =
                match List.find_opt (fun i -> preempt_cost cands i = 0) explorable with
                | Some i -> i
                | None -> (
                    match List.find_opt (admissible cands) explorable with
                    | Some i -> i
                    | None -> -1)
              in
              if pick < 0 then begin
                bounded := true;
                incr pruned_runs;
                raise Prune
              end;
              let comp = component cands pick in
              let todo =
                List.fold_left
                  (fun acc i ->
                    if i = pick || sleeping i then acc
                    else if not (admissible cands i) then begin
                      bounded := true;
                      acc
                    end
                    else ISet.add cands.(i).E.ch_seq acc)
                  ISet.empty comp
              in
              Vec.push stack
                {
                  cands; cur = pick; todo; explored = ISet.empty };
              pick)
        end
      end
    in
    let c = cands.(pick) in
    preempts := !preempts + preempt_cost cands pick;
    if c.E.ch_label.E.lbl_node >= 0 then last_node := c.E.ch_label.E.lbl_node;
    run_labels := c.E.ch_label :: !run_labels;
    (* a fired event wakes every sleeping event dependent on it *)
    sleep := List.filter (fun (_, l) -> not (E.dependent l c.E.ch_label)) !sleep;
    pick
  in
  let decisions () =
    List.init !depth (fun d -> (Vec.get stack d).cur)
  in
  let run_once () =
    depth := 0;
    sleep := [];
    preempts := 0;
    last_node := -1;
    run_labels := [];
    incr runs;
    let schedule =
      match jitter with
      | None -> E.Guided chooser
      | Some (seed, prob, max_delay) ->
          E.Guided_jittered { seed; prob; max_delay; choose = chooser }
    in
    match scenario schedule with
    | [] -> Hashtbl.replace classes (Explore.sig_of_rev_labels !run_labels) ()
    | violations ->
        Hashtbl.replace classes (Explore.sig_of_rev_labels !run_labels) ();
        failures :=
          {
            Explore.f_schedule =
              Printf.sprintf "Dpor [%s]"
                (String.concat ";" (List.map string_of_int (decisions ())));
            f_seed = None;
            f_violations = violations;
          }
          :: !failures
    | exception Prune -> ()
  in
  (* DFS: after each run, advance the deepest choice point with work
     left; pop exhausted ones. *)
  let rec backtrack () =
    if Vec.length stack = 0 then false
    else begin
      let cp = Vec.get stack (Vec.length stack - 1) in
      cp.explored <- ISet.add cp.cands.(cp.cur).E.ch_seq cp.explored;
      match ISet.min_elt_opt cp.todo with
      | Some s ->
          cp.todo <- ISet.remove s cp.todo;
          cp.cur <- index_of_seq cp.cands s;
          true
      | None ->
          Vec.truncate stack (Vec.length stack - 1);
          backtrack ()
    end
  in
  let continue_ = ref true in
  while !continue_ && !runs < max_runs do
    run_once ();
    if not (backtrack ()) then begin
      continue_ := false;
      complete := true
    end
  done;
  {
    Explore.failures = List.rev !failures;
    stats =
      {
        Explore.s_runs = !runs;
        s_complete = !complete;
        s_truncated = !bounded;
        s_classes = Hashtbl.length classes;
        s_choice_points = !deepest;
      };
  }
