(** Trace oracle: record per-block load/store/value traces from
    {!Shasta.Runtime} and decide whether they are explainable by a
    sequentially-consistent interleaving.

    Two witness searches over the per-process program orders:

    - {e SC per location} (coherence): for every shared address in
      isolation there must be an interleaving of the per-process access
      sequences in which each load returns the most recent store's
      value (initially 0 — the shared region starts zeroed).  Required
      under both the [Sc] and [Rc] models: it is exactly the cache
      coherence the protocol promises.
    - {e full SC}: one interleaving over all addresses at once.  Only
      demanded of [Sc]-model runs; an [Rc] trace may legally have none.

    Both searches over-approximate in one deliberate direction — an
    extra interleaving can only mask a violation, never invent one — so
    a [No_witness] verdict is always a real violation, while running out
    of budget is reported as nothing at all. *)

type event = {
  ev_pid : int;
  ev_addr : int;
  ev_store : bool;
  ev_value : int64;
  ev_time : float;
}

type t = { mutable rev_events : event list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let length t = t.n

(** [attach t h] — route every traced shared access of [h] into [t]. *)
let attach t (h : Shasta.Runtime.t) =
  h.Shasta.Runtime.on_access <-
    Some
      (fun (a : Shasta.Runtime.access) ->
        t.n <- t.n + 1;
        t.rev_events <-
          {
            ev_pid = a.Shasta.Runtime.acc_pid;
            ev_addr = a.Shasta.Runtime.acc_addr;
            ev_store = a.Shasta.Runtime.acc_store;
            ev_value = a.Shasta.Runtime.acc_value;
            ev_time = a.Shasta.Runtime.acc_time;
          }
          :: t.rev_events)

let events t = List.rev t.rev_events

(* Stutter reduction: a run of identical adjacent loads (same pid, addr
   and value, nothing of that pid in between) is witness-equivalent to a
   single load — duplicates can always be replayed back-to-back.  This
   collapses the thousands of spin-loop reads a litmus trace carries
   into a handful of events, keeping the searches tractable. *)
let compress_pid_row evs =
  let rec go acc = function
    | [] -> List.rev acc
    | e :: rest -> (
        match acc with
        | prev :: _
          when (not e.ev_store) && (not prev.ev_store) && prev.ev_addr = e.ev_addr
               && prev.ev_value = e.ev_value ->
            go acc rest
        | _ -> go (e :: acc) rest)
  in
  go [] evs

(* Per-pid rows (program order), stutter-compressed, as arrays. *)
let rows evs =
  let pids = List.sort_uniq compare (List.map (fun e -> e.ev_pid) evs) in
  Array.of_list
    (List.map
       (fun p ->
         Array.of_list
           (compress_pid_row (List.filter (fun e -> e.ev_pid = p) evs)))
       pids)

type verdict = Witness | No_witness | Out_of_budget

(* DFS over index vectors for one location: [value] is the current
   content; loads must match it, stores replace it.  Memoised on
   (indices, value). *)
let explain_location ~max_states per =
  let n = Array.length per in
  let idx = Array.make n 0 in
  let visited = Hashtbl.create 997 in
  let states = ref 0 in
  let exception Found in
  let exception Budget in
  let rec go value =
    let key = (Array.to_list idx, value) in
    if not (Hashtbl.mem visited key) then begin
      incr states;
      if !states > max_states then raise Budget;
      Hashtbl.add visited key ();
      let all_done = ref true in
      for i = 0 to n - 1 do
        if idx.(i) < Array.length per.(i) then begin
          all_done := false;
          let e = per.(i).(idx.(i)) in
          idx.(i) <- idx.(i) + 1;
          (if e.ev_store then go e.ev_value
           else if e.ev_value = value then go value);
          idx.(i) <- idx.(i) - 1
        end
      done;
      if !all_done then raise Found
    end
  in
  try
    go 0L;
    No_witness
  with
  | Found -> Witness
  | Budget -> Out_of_budget

(* DFS over index vectors for the whole trace: the state carries a full
   memory valuation, hashed (order-independently) into the memo key. *)
let explain_full ~max_states per =
  let n = Array.length per in
  let idx = Array.make n 0 in
  let mem : (int, int64) Hashtbl.t = Hashtbl.create 64 in
  let visited = Hashtbl.create 997 in
  let states = ref 0 in
  let exception Found in
  let exception Budget in
  let mem_key () =
    Hashtbl.fold (fun a v acc -> acc lxor (Hashtbl.hash (a, v) * 0x9E3779B1)) mem 0
  in
  let rec go () =
    let key = (Array.to_list idx, mem_key ()) in
    if not (Hashtbl.mem visited key) then begin
      incr states;
      if !states > max_states then raise Budget;
      Hashtbl.add visited key ();
      let all_done = ref true in
      for i = 0 to n - 1 do
        if idx.(i) < Array.length per.(i) then begin
          all_done := false;
          let e = per.(i).(idx.(i)) in
          idx.(i) <- idx.(i) + 1;
          (if e.ev_store then begin
             let old = Hashtbl.find_opt mem e.ev_addr in
             Hashtbl.replace mem e.ev_addr e.ev_value;
             go ();
             match old with
             | Some v -> Hashtbl.replace mem e.ev_addr v
             | None -> Hashtbl.remove mem e.ev_addr
           end
           else
             let cur = Option.value (Hashtbl.find_opt mem e.ev_addr) ~default:0L in
             if cur = e.ev_value then go ());
          idx.(i) <- idx.(i) - 1
        end
      done;
      if !all_done then raise Found
    end
  in
  try
    go ();
    No_witness
  with
  | Found -> Witness
  | Budget -> Out_of_budget

(** [check ?full ?max_states t] — the violations the recorded trace
    proves (empty = explainable, or search budget exhausted, which never
    convicts).  [full] additionally demands one global SC witness; only
    ask that of [Sc]-model runs. *)
let check ?(full = false) ?(max_states = 200_000) t =
  let evs = events t in
  let violations = ref [] in
  let seen = Hashtbl.create 64 in
  let addrs =
    List.filter
      (fun a ->
        if Hashtbl.mem seen a then false
        else begin
          Hashtbl.add seen a ();
          true
        end)
      (List.map (fun e -> e.ev_addr) evs)
  in
  List.iter
    (fun addr ->
      let ops = List.filter (fun e -> e.ev_addr = addr) evs in
      match explain_location ~max_states (rows ops) with
      | Witness | Out_of_budget -> ()
      | No_witness ->
          violations :=
            Printf.sprintf "trace: addr 0x%x has no per-location SC witness (%d events)"
              addr (List.length ops)
            :: !violations)
    addrs;
  if full then begin
    match explain_full ~max_states:(2 * max_states) (rows evs) with
    | Witness | Out_of_budget -> ()
    | No_witness ->
        violations :=
          Printf.sprintf "trace: no global SC witness (%d events)" (List.length evs)
          :: !violations
  end;
  List.rev !violations
