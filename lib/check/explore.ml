(** Schedule-exploration drivers.

    A {e scenario} here is a function from a {!Sim.Engine.schedule} to
    the list of violations that run produced (empty = clean).  It must
    build a fresh cluster on every call, so runs are independent and —
    given the same schedule — bit-identical, which is what lets a
    violating seed from CI be replayed locally. *)

type failure = {
  f_schedule : string;  (** how to reproduce: the schedule, printably *)
  f_seed : int option;  (** the seed, for seeded/jittered schedules *)
  f_violations : string list;
}

(** [seeds ?base ~n scenario] — rerun under [Seeded base .. base+n-1]. *)
let seeds ?(base = 1) ~n scenario =
  List.concat_map
    (fun k ->
      let seed = base + k in
      match scenario (Sim.Engine.Seeded seed) with
      | [] -> []
      | violations ->
          [
            {
              f_schedule = Printf.sprintf "Seeded %d" seed;
              f_seed = Some seed;
              f_violations = violations;
            };
          ])
    (List.init n (fun i -> i))

(** [jittered ?base ?prob ?max_delay ~n scenario] — seeded tie breaking
    plus bounded random message/event delays. *)
let jittered ?(base = 1) ?(prob = 0.25) ?(max_delay = 2.0e-6) ~n scenario =
  List.concat_map
    (fun k ->
      let seed = base + k in
      match scenario (Sim.Engine.Jittered { seed; prob; max_delay }) with
      | [] -> []
      | violations ->
          [
            {
              f_schedule =
                Printf.sprintf "Jittered { seed = %d; prob = %g; max_delay = %g }"
                  seed prob max_delay;
              f_seed = Some seed;
              f_violations = violations;
            };
          ])
    (List.init n (fun i -> i))

(** [exhaustive ?max_runs ?max_depth scenario] — bounded DFS over
    tie-break decision vectors.  The first [max_depth] tie-sets of a run
    are choice points enumerated lexicographically (later ties take
    index 0), replayed from scratch each run; [(failures, runs,
    exhausted)] says whether the bounded tree was fully covered within
    [max_runs]. *)
let exhaustive ?(max_runs = 200) ?(max_depth = 8) scenario =
  let failures = ref [] in
  let runs = ref 0 in
  let prefix = ref (Some []) in
  while !prefix <> None && !runs < max_runs do
    let p = Option.get !prefix in
    incr runs;
    let sizes = Hashtbl.create 32 in
    let pos = ref 0 in
    let choose n =
      let i = !pos in
      incr pos;
      if i < max_depth then Hashtbl.replace sizes i n;
      match List.nth_opt p i with Some d -> min d (n - 1) | None -> 0
    in
    (match scenario (Sim.Engine.Choose choose) with
    | [] -> ()
    | violations ->
        failures :=
          {
            f_schedule =
              Printf.sprintf "Choose [%s]"
                (String.concat ";" (List.map string_of_int p));
            f_seed = None;
            f_violations = violations;
          }
          :: !failures);
    (* Lexicographic successor of the decision vector actually used. *)
    let depth = min !pos max_depth in
    let d_at i = Option.value (List.nth_opt p i) ~default:0 in
    let size_at i = Option.value (Hashtbl.find_opt sizes i) ~default:1 in
    let rec next i =
      if i < 0 then None
      else if d_at i + 1 < size_at i then
        Some (List.init (i + 1) (fun j -> if j = i then d_at j + 1 else d_at j))
      else next (i - 1)
    in
    prefix := next (depth - 1)
  done;
  (List.rev !failures, !runs, !prefix = None)

let pp_failure ppf f =
  Format.fprintf ppf "@[<v 2>%s:@ %a@]" f.f_schedule
    (Format.pp_print_list Format.pp_print_string)
    f.f_violations
