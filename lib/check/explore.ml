(** Schedule-exploration drivers.

    A {e scenario} here is a function from a {!Sim.Engine.schedule} to
    the list of violations that run produced (empty = clean).  It must
    build a fresh cluster on every call, so runs are independent and —
    given the same schedule — bit-identical, which is what lets a
    violating seed from CI be replayed locally.

    Every driver (seeded sampling, jitter sampling, bounded-exhaustive,
    and {!Dpor.explore}) returns the same {!result}: the failures plus
    {!stats} saying how many runs were spent, whether the search space
    was covered completely, and how many Mazurkiewicz equivalence
    classes ({!Vclock.class_signature}) the explored runs fell into —
    the ratio of runs to classes is the driver's redundancy. *)

type failure = {
  f_schedule : string;  (** how to reproduce: the schedule, printably *)
  f_seed : int option;  (** the seed, for seeded/jittered schedules *)
  f_violations : string list;
}

type stats = {
  s_runs : int;
  s_complete : bool;
      (** the whole (possibly bounded) search space was covered: every
          schedule not explored is equivalent to one that was.  Always
          false for the sampling drivers. *)
  s_truncated : bool;
      (** part of the space was silently cut: choice points past the
          exhaustive driver's [max_depth], or branches pruned by the
          DPOR preemption bound *)
  s_classes : int;
      (** distinct equivalence classes among completed runs (0 when the
          driver cannot observe the fired-event trace, e.g. jitter) *)
  s_choice_points : int;  (** deepest multi-candidate tie-set seen *)
}

type result = { failures : failure list; stats : stats }

let sig_of_rev_labels rev = Vclock.class_signature (Array.of_list (List.rev rev))

(** [seeds ?base ~n scenario] — rerun under [Seeded base .. base+n-1].
    Internally replays each seed through a {!Sim.Engine.Guided} chooser
    that reproduces [Seeded] bit-for-bit (the tie RNG is drawn only on
    multi-candidate sets) while also recording the fired-label trace,
    so class statistics come for free; failures still print as
    [Seeded k] and replay under the plain seeded schedule. *)
let seeds ?(base = 1) ~n scenario =
  let classes = Hashtbl.create 64 in
  let deepest = ref 0 in
  let failures =
    List.concat_map
      (fun k ->
        let seed = base + k in
        let rng = Sim.Rng.create seed in
        let labels = ref [] in
        let depth = ref 0 in
        let chooser (cands : Sim.Engine.choice array) =
          let m = Array.length cands in
          let i =
            if m = 1 then 0
            else begin
              incr depth;
              Sim.Rng.int rng m
            end
          in
          labels := cands.(i).Sim.Engine.ch_label :: !labels;
          i
        in
        let violations = scenario (Sim.Engine.Guided chooser) in
        Hashtbl.replace classes (sig_of_rev_labels !labels) ();
        if !depth > !deepest then deepest := !depth;
        match violations with
        | [] -> []
        | violations ->
            [
              {
                f_schedule = Printf.sprintf "Seeded %d" seed;
                f_seed = Some seed;
                f_violations = violations;
              };
            ])
      (List.init n (fun i -> i))
  in
  {
    failures;
    stats =
      {
        s_runs = n;
        s_complete = false;
        s_truncated = false;
        s_classes = Hashtbl.length classes;
        s_choice_points = !deepest;
      };
  }

(** [jittered ?base ?prob ?max_delay ~n scenario] — seeded tie breaking
    plus bounded random message/event delays.  The delay RNG lives
    inside the engine, so the fired-event trace is not observable here
    and [s_classes] is 0. *)
let jittered ?(base = 1) ?(prob = 0.25) ?(max_delay = 2.0e-6) ~n scenario =
  let failures =
    List.concat_map
      (fun k ->
        let seed = base + k in
        match scenario (Sim.Engine.Jittered { seed; prob; max_delay }) with
        | [] -> []
        | violations ->
            [
              {
                f_schedule =
                  Printf.sprintf "Jittered { seed = %d; prob = %g; max_delay = %g }"
                    seed prob max_delay;
                f_seed = Some seed;
                f_violations = violations;
              };
            ])
      (List.init n (fun i -> i))
  in
  {
    failures;
    stats =
      {
        s_runs = n;
        s_complete = false;
        s_truncated = false;
        s_classes = 0;
        s_choice_points = 0;
      };
  }

(** [exhaustive ?max_runs ?max_depth scenario] — bounded DFS over
    tie-break decision vectors.  The first [max_depth] multi-candidate
    tie-sets of a run are choice points enumerated lexicographically,
    replayed from scratch each run.  Choice points beyond [max_depth]
    collapse to index 0; when that happens the result carries
    [s_truncated = true] — covering the bounded tree ([s_runs] within
    [max_runs]) is then {e not} full coverage, and [s_complete] stays
    false. *)
let exhaustive ?(max_runs = 200) ?(max_depth = 8) scenario =
  let failures = ref [] in
  let runs = ref 0 in
  let truncated = ref false in
  let deepest = ref 0 in
  let classes = Hashtbl.create 64 in
  let prefix = ref (Some []) in
  while !prefix <> None && !runs < max_runs do
    let p = Option.get !prefix in
    incr runs;
    let sizes = Hashtbl.create 32 in
    let pos = ref 0 in
    let labels = ref [] in
    let chooser (cands : Sim.Engine.choice array) =
      let n = Array.length cands in
      let i =
        if n = 1 then 0
        else begin
          let i = !pos in
          incr pos;
          if i < max_depth then Hashtbl.replace sizes i n else truncated := true;
          match List.nth_opt p i with Some d -> min d (n - 1) | None -> 0
        end
      in
      labels := cands.(i).Sim.Engine.ch_label :: !labels;
      i
    in
    (match scenario (Sim.Engine.Guided chooser) with
    | [] -> ()
    | violations ->
        failures :=
          {
            f_schedule =
              Printf.sprintf "Choose [%s]"
                (String.concat ";" (List.map string_of_int p));
            f_seed = None;
            f_violations = violations;
          }
          :: !failures);
    Hashtbl.replace classes (sig_of_rev_labels !labels) ();
    if !pos > !deepest then deepest := !pos;
    (* Lexicographic successor of the decision vector actually used. *)
    let depth = min !pos max_depth in
    let d_at i = Option.value (List.nth_opt p i) ~default:0 in
    let size_at i = Option.value (Hashtbl.find_opt sizes i) ~default:1 in
    let rec next i =
      if i < 0 then None
      else if d_at i + 1 < size_at i then
        Some (List.init (i + 1) (fun j -> if j = i then d_at j + 1 else d_at j))
      else next (i - 1)
    in
    prefix := next (depth - 1)
  done;
  let exhausted = !prefix = None in
  {
    failures = List.rev !failures;
    stats =
      {
        s_runs = !runs;
        s_complete = exhausted && not !truncated;
        s_truncated = !truncated;
        s_classes = Hashtbl.length classes;
        s_choice_points = !deepest;
      };
  }

let pp_failure ppf f =
  Format.fprintf ppf "@[<v 2>%s:@ %a@]" f.f_schedule
    (Format.pp_print_list Format.pp_print_string)
    f.f_violations

let pp_stats ppf s =
  Format.fprintf ppf
    "%d runs, %d classes, depth %d%s%s" s.s_runs s.s_classes s.s_choice_points
    (if s.s_complete then ", complete" else "")
    (if s.s_truncated then ", truncated" else "")
