(** Vector clocks and happens-before over labeled event traces.

    The DPOR explorer ({!Dpor}) views a simulation run as the sequence
    of fired {!Sim.Engine.label}s.  Two same-time events may be
    reordered without changing the run exactly when they are
    {e independent} ({!Sim.Engine.dependent}); the happens-before
    relation of a trace is the transitive closure of trace order
    restricted to dependent pairs — the partial order whose
    linearisations form the trace's Mazurkiewicz equivalence class.

    This module computes that relation with vector clocks in O(n·d)
    (d = distinct actors) instead of the naive O(n²) closure, and
    derives from it the Foata normal form used to fingerprint
    equivalence classes: two runs with equal {!class_signature}s are
    (up to hashing) the same partial order, so an explorer reporting
    run and class counts can show how much of its work was spent
    revisiting known classes.

    Soundness of the clock construction rests on one structural fact:
    any two events sharing a dependency component (a node, a block, or
    "unknown") are pairwise dependent, hence totally ordered by
    happens-before.  Keeping only the {e latest} clock per component
    therefore loses nothing. *)

module E = Sim.Engine

type t = int array

let make n = Array.make n 0
let copy = Array.copy
let get (v : t) i = v.(i)
let dim (v : t) = Array.length v

(** Pointwise maximum (a fresh clock). *)
let join (a : t) (b : t) = Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let join_into (dst : t) (src : t) =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let leq (a : t) (b : t) =
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) > b.(i) then ok := false
  done;
  !ok

let tick (v : t) i = v.(i) <- v.(i) + 1

(* --- happens-before over a trace of labels --- *)

(** A dependency component: events sharing one are totally ordered. *)
type actor = Node of int | Block of int | Top

let unknown (l : E.label) = l.E.lbl_node < 0 && l.E.lbl_block < 0

(** The component an event {e ticks} (its own axis): the node if known,
    else the block, else the ⊤ actor shared by all unknown events. *)
let actor_of (l : E.label) =
  if l.E.lbl_node >= 0 then Node l.E.lbl_node
  else if l.E.lbl_block >= 0 then Block l.E.lbl_block
  else Top

(** All components the event touches (joins the latest clock of each). *)
let components_of (l : E.label) =
  if unknown l then [ Top ]
  else
    (if l.E.lbl_node >= 0 then [ Node l.E.lbl_node ] else [])
    @ if l.E.lbl_block >= 0 then [ Block l.E.lbl_block ] else []

type trace = {
  clocks : t array;  (** per-event clock, indexed by trace position *)
  axes : int array;  (** per-event own axis (interned actor) *)
}

(** [of_trace labels] — the vector clock of every event of the trace.
    Event [j]'s clock is the join of the clocks of its dependent
    predecessors plus one tick on its own axis, so
    [hb tr i j  ⇔  i ⟶* j] under the dependent-pairs closure. *)
let of_trace (labels : E.label array) =
  let intern = Hashtbl.create 16 in
  let next = ref 0 in
  let axis_of a =
    match Hashtbl.find_opt intern a with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add intern a i;
        i
  in
  Array.iter
    (fun l -> List.iter (fun a -> ignore (axis_of a)) (actor_of l :: components_of l))
    labels;
  let d = !next in
  let last = Hashtbl.create 16 in
  (* clock of the latest unknown (all-conflicting) event *)
  let barrier = ref (make d) in
  (* join of every event clock so far: what an unknown event inherits *)
  let all = make d in
  let clocks =
    Array.map
      (fun l ->
        let base =
          if unknown l then copy all
          else begin
            let v = copy !barrier in
            List.iter
              (fun c ->
                match Hashtbl.find_opt last c with
                | Some w -> join_into v w
                | None -> ())
              (components_of l);
            v
          end
        in
        tick base (axis_of (actor_of l));
        join_into all base;
        if unknown l then barrier := base;
        List.iter (fun c -> Hashtbl.replace last c base) (components_of l);
        base)
      labels
  in
  { clocks; axes = Array.map (fun l -> axis_of (actor_of l)) labels }

(** [hb tr i j] — does event [i] happen before event [j]?  (Strict:
    [hb tr i i = false].) *)
let hb tr i j = i < j && tr.clocks.(i).(tr.axes.(i)) <= tr.clocks.(j).(tr.axes.(i))

(* --- Foata normal form and class signatures --- *)

(** [foata_levels labels] — level of each event in the Foata normal form
    of the trace's equivalence class: [1 + max] over the levels of its
    dependent predecessors ([1] if none).  Events on one level are
    pairwise independent, and the sequence of level {e multisets} is a
    canonical form: equal across exactly the equivalent traces. *)
let foata_levels (labels : E.label array) =
  let last = Hashtbl.create 16 in
  let barrier = ref 0 and deepest = ref 0 in
  Array.map
    (fun l ->
      let lvl =
        if unknown l then !deepest + 1
        else
          1
          + List.fold_left
              (fun m c ->
                max m (Option.value (Hashtbl.find_opt last c) ~default:0))
              !barrier (components_of l)
      in
      if lvl > !deepest then deepest := lvl;
      if unknown l then barrier := lvl;
      List.iter (fun c -> Hashtbl.replace last c lvl) (components_of l);
      lvl)
    labels

(** [class_signature labels] — a hash of the Foata normal form: each
    level contributes a commutative combination (sum) of its labels'
    hashes, folded in level order.  Equivalent traces hash equal;
    distinct signatures certify distinct Mazurkiewicz classes (modulo
    hash collisions, which only under-count classes). *)
let class_signature (labels : E.label array) =
  let levels = foata_levels labels in
  let per_level = Hashtbl.create 32 in
  let deepest = ref 0 in
  Array.iteri
    (fun i l ->
      let lvl = levels.(i) in
      if lvl > !deepest then deepest := lvl;
      let h = Hashtbl.hash (l.E.lbl_node, l.E.lbl_block, l.E.lbl_kind) in
      let cur = Option.value (Hashtbl.find_opt per_level lvl) ~default:0 in
      Hashtbl.replace per_level lvl (cur + h))
    labels;
  let acc = ref 0 in
  for lvl = 1 to !deepest do
    let h = Option.value (Hashtbl.find_opt per_level lvl) ~default:0 in
    acc := (!acc * 1000003) lxor h
  done;
  !acc
