(** Litmus scenarios packaged for the schedule explorer.

    Each {!run} builds a fresh 4-node cluster under the given
    {!Sim.Engine.schedule} with the per-message invariant checker on and
    every shared access traced, runs the protocol to quiescence, and
    returns the violations found by {e any} layer:

    - the per-message coherence invariant checker
      ({!Protocol.Engine.check_msg} via [check_invariants]);
    - the quiescence sweep ({!Protocol.Engine.check_quiescent});
    - the scenario's own outcome check (e.g. Figure 2 legality);
    - the trace oracle ({!Trace.check}), with a full-SC witness demanded
      of [Sc]-model scenarios.

    A clean protocol must produce an empty list for every schedule; the
    mutation harness ({!Mutation}) relies on at least one layer firing
    when a bug is seeded. *)

module C = Shasta.Cluster
module R = Shasta.Runtime

type scenario = {
  name : string;
  model : Protocol.Config.model;
  full_sc : bool;  (** demand a global SC witness of the trace *)
  deadline : float;
      (** simulated-time bound on a run; a deadlocked run (e.g. under
          the skip-inval-ack mutation) spins until here and is then
          reported by the finished/quiescence checks.  App-sized
          scenarios ({!Txn}) need a larger bound than the kernels. *)
  tweak : Protocol.Config.t -> Protocol.Config.t;
      (** scenario-specific protocol knobs (e.g. a home-migration
          policy), applied on top of the litmus base config; the
          identity for plain memory-model kernels *)
  body : C.t -> Trace.t -> (unit -> string list);
      (** spawns the processes; the returned thunk is the outcome check,
          run after the cluster quiesces *)
}

let no_tweak (p : Protocol.Config.t) = p

let config ?mutation ?(tweak = no_tweak) ~model ~schedule () =
  {
    Shasta.Config.default with
    Shasta.Config.net =
      { Mchan.Net.default_config with Mchan.Net.nodes = 4; cpus_per_node = 1 };
    schedule;
    protocol =
      tweak
        {
          Protocol.Config.default with
          Protocol.Config.shared_size = 256 * 1024;
          model;
          check_invariants = true;
          mutation;
        };
  }

(* Litmus kernels quiesce in well under a simulated millisecond. *)
let default_deadline = 5.0e-3

let spin h addr =
  while R.load_int h addr <> 1 do
    R.work_cycles h 30;
    R.flush h;
    Sim.Proc.work 1e-7
  done

type outcome = {
  violations : string list;
  mutation_fired : int;  (** times the seeded bug actually triggered *)
  events : int;  (** traced shared accesses *)
  legal_transients : int;
      (** times the invariant checker observed (and exempted) the
          documented legal transient: an owner in S/I with its exclusive
          grant still in flight *)
}

(** [run ?mutation scenario schedule] — one fresh, fully-checked run. *)
let run ?mutation scenario schedule =
  let cl =
    C.create (config ?mutation ~tweak:scenario.tweak ~model:scenario.model ~schedule ())
  in
  let tr = Trace.create () in
  let outcome_check = scenario.body cl tr in
  let violations = ref [] in
  let note v = violations := !violations @ v in
  let completed = ref false in
  (try
     ignore (C.run ~until:scenario.deadline cl);
     completed := true
   with
  | Protocol.Engine.Coherence_violation { block; time; violations = v } ->
      note
        (List.map
           (fun s -> Printf.sprintf "invariant (block %d, t=%.9g): %s" block time s)
           v)
  | C.Worker_failed (name, e) ->
      note [ Printf.sprintf "worker %s failed: %s" name (Printexc.to_string e) ]);
  let peng = C.protocol_engine cl in
  if !completed then begin
    List.iter
      (fun (h : R.t) ->
        if not (Sim.Proc.finished h.R.proc) then
          note
            [
              Printf.sprintf "%s: pid %d still running at t=%g (deadlock?)"
                scenario.name (R.pid h) scenario.deadline;
            ])
      (C.app_runtimes cl);
    note (List.map (fun s -> "quiescence: " ^ s) (Protocol.Engine.check_quiescent peng));
    note (outcome_check ());
    note (Trace.check ~full:scenario.full_sc tr)
  end;
  {
    violations = !violations;
    mutation_fired = Protocol.Engine.mutation_fires peng;
    events = Trace.length tr;
    legal_transients = Protocol.Engine.legal_transients peng;
  }

(* --- the scenarios ------------------------------------------------- *)

let traced_spawn cl tr cpu name body =
  let h = C.spawn cl ~cpu name body in
  Trace.attach tr h

(** Figure 2 of the paper: two writers publish [a] behind double flags;
    both readers must agree on which writer they observed. *)
let figure2 =
  {
    name = "figure2";
    model = Protocol.Config.Rc;
    full_sc = false;
    deadline = default_deadline;
    tweak = no_tweak;
    body =
      (fun cl tr ->
        let a = C.alloc cl 64 in
        let f1 = C.alloc cl 64 and f2 = C.alloc cl 64 in
        let f3 = C.alloc cl 64 and f4 = C.alloc cl 64 in
        let r1 = ref (-1) and r2 = ref (-1) in
        traced_spawn cl tr 0 "P1" (fun h ->
            R.store_int h a 1;
            R.mb h;
            R.store_int h f1 1;
            R.mb h;
            R.store_int h f2 1);
        traced_spawn cl tr 1 "P2" (fun h ->
            R.store_int h a 2;
            R.mb h;
            R.store_int h f3 1;
            R.mb h;
            R.store_int h f4 1);
        traced_spawn cl tr 2 "P3" (fun h ->
            spin h f1;
            spin h f3;
            R.mb h;
            r1 := R.load_int h a);
        traced_spawn cl tr 3 "P4" (fun h ->
            spin h f2;
            spin h f4;
            R.mb h;
            r2 := R.load_int h a);
        fun () ->
          (* Both readers waited for both writers' flags, so each must
             see the final winner of the a-race — and agree on it. *)
          if (!r1 = 1 && !r2 = 1) || (!r1 = 2 && !r2 = 2) then []
          else
            [
              Printf.sprintf "figure2: outcome (r1,r2)=(%d,%d) not in {(1,1),(2,2)}"
                !r1 !r2;
            ]);
  }

(** Message passing: data published behind a flag with an MB on each
    side; the reader must see the payload. *)
let message_passing =
  {
    name = "message-passing";
    model = Protocol.Config.Rc;
    full_sc = false;
    deadline = default_deadline;
    tweak = no_tweak;
    body =
      (fun cl tr ->
        let data = C.alloc cl 64 and flag = C.alloc cl 64 in
        let seen = ref (-1) in
        traced_spawn cl tr 0 "writer" (fun h ->
            R.store_int h data 42;
            R.mb h;
            R.store_int h flag 1);
        traced_spawn cl tr 2 "reader" (fun h ->
            spin h flag;
            R.mb h;
            seen := R.load_int h data);
        fun () ->
          if !seen = 42 then []
          else [ Printf.sprintf "message-passing: reader saw %d, expected 42" !seen ]);
  }

(** Dekker under Sc: store-then-load on crossed locations; sequential
    consistency forbids both processes reading 0. *)
let dekker =
  {
    name = "dekker";
    model = Protocol.Config.Sc;
    full_sc = true;
    deadline = default_deadline;
    tweak = no_tweak;
    body =
      (fun cl tr ->
        let x = C.alloc cl 64 and y = C.alloc cl 64 in
        let r1 = ref (-1) and r2 = ref (-1) in
        traced_spawn cl tr 0 "P0" (fun h ->
            R.store_int h x 1;
            r1 := R.load_int h y);
        traced_spawn cl tr 2 "P1" (fun h ->
            R.store_int h y 1;
            r2 := R.load_int h x);
        fun () ->
          if !r1 = 0 && !r2 = 0 then
            [ "dekker: (r1,r2)=(0,0) is forbidden under sequential consistency" ]
          else []);
  }

(** LL/SC atomicity: 4 processes × 25 fetch-and-adds must sum exactly. *)
let atomic_increment =
  {
    name = "atomic-increment";
    model = Protocol.Config.Rc;
    full_sc = false;
    deadline = default_deadline;
    tweak = no_tweak;
    body =
      (fun cl tr ->
        let counter = C.alloc cl 64 in
        for p = 0 to 3 do
          traced_spawn cl tr p (Printf.sprintf "inc%d" p) (fun h ->
              for _ = 1 to 25 do
                ignore (R.atomic_add h counter 1);
                R.work_cycles h 50
              done)
        done;
        fun () ->
          match Apps.Harness.read_valid cl counter with
          | Some 100L -> []
          | Some v ->
              [ Printf.sprintf "atomic-increment: counter = %Ld, expected 100" v ]
          | None ->
              [ "atomic-increment: no domain holds a valid copy of the counter" ]);
  }

(** Home migration: sequenced bursts of exclusive updates from two
    different domains make the block's directory entry migrate twice
    under the migratory policy while a third process polls the same
    block, so its read misses race the {!Protocol.Ptypes.Home_transfer}
    messages and exercise the bounce/forwarding-hint path.  Wherever the
    block's static home lies, at least one of the bursts comes from a
    remote domain, so a clean run always performs a transfer. *)
let home_transfer =
  let per = 6 in
  {
    name = "home-transfer";
    model = Protocol.Config.Rc;
    full_sc = false;
    deadline = default_deadline;
    tweak =
      (fun p ->
        {
          p with
          Protocol.Config.homing = Protocol.Config.Migratory;
          (* Threshold 1: a burst issues one exclusive request and then
             owns the block, so a longer streak never forms here. *)
          migration_threshold = 1;
          migration_region_min = 0;
        });
    body =
      (fun cl tr ->
        let x = C.alloc cl 64 and flag = C.alloc cl 64 in
        traced_spawn cl tr 0 "burst0" (fun h ->
            for _ = 1 to per do
              ignore (R.atomic_add h x 1);
              R.work_cycles h 40
            done;
            R.mb h;
            R.store_int h flag 1);
        traced_spawn cl tr 1 "burst1" (fun h ->
            spin h flag;
            for _ = 1 to per do
              ignore (R.atomic_add h x 1);
              R.work_cycles h 40
            done);
        traced_spawn cl tr 3 "watcher" (fun h ->
            while R.load_int h x < 2 * per do
              R.work_cycles h 30;
              R.flush h;
              Sim.Proc.work 1e-7
            done);
        fun () ->
          let errs = ref [] in
          (match Apps.Harness.read_valid cl x with
          | Some v when v = Int64.of_int (2 * per) -> ()
          | Some v ->
              errs :=
                Printf.sprintf "home-transfer: x = %Ld, expected %d" v (2 * per)
                :: !errs
          | None -> errs := "home-transfer: no domain holds a valid copy of x" :: !errs);
          let migrations, _bounces, in_flight =
            Protocol.Engine.migration_stats (C.protocol_engine cl)
          in
          if migrations < 1 then
            errs := "home-transfer: migratory policy performed no home transfer" :: !errs;
          if in_flight <> 0 then
            errs :=
              Printf.sprintf "home-transfer: %d home transfer(s) still in flight"
                in_flight
              :: !errs;
          List.rev !errs);
  }

let all = [ figure2; message_passing; dekker; atomic_increment; home_transfer ]

(** [as_scenario s] — adapt to the {!Explore} driver signature. *)
let as_scenario s schedule = (run s schedule).violations

(** [sweep ?base ~seeds scenarios] — every scenario under the FIFO
    default (reported as seed 0) plus [seeds] seeded schedules; returns
    [(scenario, seed, violations)] per failing run. *)
let sweep ?(base = 1) ~seeds scenarios =
  List.concat_map
    (fun sc ->
      let try_one seed schedule =
        match (run sc schedule).violations with
        | [] -> None
        | v -> Some (sc.name, seed, v)
      in
      let fifo = Option.to_list (try_one 0 Sim.Engine.Fifo) in
      let seeded =
        List.filter_map
          (fun k -> try_one (base + k) (Sim.Engine.Seeded (base + k)))
          (List.init seeds (fun i -> i))
      in
      fifo @ seeded)
    scenarios
