(** An app-sized litmus scenario: two concurrent minidb transactions.

    This is the workload class the brute-force explorer cannot touch —
    booting the {!Osim.Kernel}, creating a (tiny) database, and running
    two TPC-B-style [account_update] transactions from forked server
    processes on different nodes produces thousands of events and far
    more tie-break choice points than [Explore.exhaustive]'s bounded
    tree can cover.  The transactions race on real shared state: the
    redo-log latch, the log head/buffer, and the buffer-cache metadata,
    while touching disjoint table pages.

    The outcome check is the database invariant: after both commits, a
    scan must sum to the initial balances plus both deltas, and both
    servers must have reported completion. *)

module C = Shasta.Cluster
module K = Osim.Kernel
module Db = Minidb.Db

let pages = 2
let rows_per_page = 4

let scenario =
  {
    Litmus.name = "minidb-txn2";
    model = Protocol.Config.Rc;
    full_sc = false;
    (* Boot + two transactions + verification scan stay well inside a
       simulated second; a wedged run parks in [pid_block]/stalls and
       quiesces early rather than spinning to the bound. *)
    deadline = 1.0;
    tweak = Litmus.no_tweak;
    body =
      (fun cl _tr ->
        let committed1 = ref false and committed2 = ref false in
        let scanned = ref min_int and expected = ref max_int in
        (* Three kernel slots: root on node 0, one server slot each on
           nodes 1 and 2 (litmus clusters are 4 nodes x 1 cpu). *)
        let k = K.boot cl ~slot_cpus:[ 0; 1; 2 ] () in
        let _root =
          K.start k ~cpu_hint:0 (fun ctx ->
              let db = Db.create ctx ~pages ~rows_per_page ~nframes:pages in
              let kid1 =
                K.fork ctx ~cpu_hint:1 (fun sctx ->
                    Db.account_update sctx db ~account:1 ~delta:5;
                    committed1 := true)
              in
              let kid2 =
                K.fork ctx ~cpu_hint:2 (fun sctx ->
                    Db.account_update sctx db ~account:5 ~delta:(-3);
                    committed2 := true)
              in
              ignore kid1;
              ignore kid2;
              ignore (K.wait ctx);
              ignore (K.wait ctx);
              scanned :=
                Db.scan ctx db ~lo_page:0 ~hi_page:pages ~meta_loads:1
                  ~row_compute:2;
              expected := Db.expected_sum db ~lo_page:0 ~hi_page:pages + 5 - 3)
        in
        fun () ->
          let errs = ref [] in
          if not (!committed1 && !committed2) then
            errs :=
              Printf.sprintf "minidb-txn2: commit flags (%b,%b), both expected"
                !committed1 !committed2
              :: !errs;
          if !scanned <> !expected then
            errs :=
              Printf.sprintf "minidb-txn2: scan total %d, expected %d" !scanned
                !expected
              :: !errs;
          List.rev !errs);
  }
