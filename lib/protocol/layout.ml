(** Region layout of the shared address space (Section 2.1).

    Shasta supports a different coherence granularity for different
    ranges of the shared address space: the region table below carves
    the shared segment into an ordered list of {e regions}, each with
    its own power-of-two block size, and compiles it into the paper's
    per-chunk block-number table — one entry per [chunk] bytes of
    shared space mapping an address to its [(block_id, block_base,
    block_len)] triple.  The inline miss check and every protocol
    entry therefore stay O(1) with no division, whatever the mix of
    granularities.

    Block ids are dense, 0 .. [n_blocks]-1, in address order; with a
    single uniform 64-byte region they coincide bit-for-bit with the
    historical fixed-line numbering [(addr - base) / 64]. *)

type region_spec = {
  rs_name : string;
  rs_size : int;  (** bytes; must be a multiple of [rs_block] *)
  rs_block : int;  (** power-of-two block size, 32..4096 (paper: 64-1024) *)
}

type region = {
  r_name : string;
  r_base : int;
  r_size : int;
  r_block : int;
  r_shift : int;  (** log2 [r_block] *)
  r_first_block : int;
  r_n_blocks : int;
}

type t = {
  base : int;
  size : int;
  chunk : int;  (** table granularity: the smallest block size present *)
  chunk_shift : int;
  regions : region array;
  chunk_block : int array;  (** per-chunk -> block id *)
  block_base : int array;  (** per-block -> first byte address *)
  block_len : int array;  (** per-block -> length in bytes *)
  block_region : int array;  (** per-block -> region index *)
}

let bad fmt = Printf.ksprintf invalid_arg fmt

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let min_block = 32
let max_block = 4096

let validate_spec i { rs_name; rs_size; rs_block } =
  if not (is_pow2 rs_block) then
    bad "Layout: region %d (%s): block size %d is not a power of two" i rs_name rs_block;
  if rs_block < min_block || rs_block > max_block then
    bad "Layout: region %d (%s): block size %d outside %d..%d" i rs_name rs_block min_block
      max_block;
  if rs_size <= 0 || rs_size mod rs_block <> 0 then
    bad "Layout: region %d (%s): size %d is not a positive multiple of block %d" i rs_name
      rs_size rs_block

(** [create ~base ~size specs] compiles an ordered region list into the
    lookup tables.  The regions must tile [base, base+size) exactly. *)
let create ~base ~size specs =
  if specs = [] then bad "Layout: empty region list";
  List.iteri validate_spec specs;
  let total = List.fold_left (fun a s -> a + s.rs_size) 0 specs in
  if total <> size then
    bad "Layout: regions cover %d bytes but the shared segment is %d" total size;
  let chunk = List.fold_left (fun a s -> min a s.rs_block) max_int specs in
  let chunk_shift = log2 chunk in
  let n_blocks = List.fold_left (fun a s -> a + (s.rs_size / s.rs_block)) 0 specs in
  let block_base = Array.make n_blocks 0 in
  let block_len = Array.make n_blocks 0 in
  let block_region = Array.make n_blocks 0 in
  let chunk_block = Array.make (size / chunk) 0 in
  let cur = ref base and blk = ref 0 in
  let regions =
    Array.of_list
      (List.map
         (fun s ->
           let r =
             {
               r_name = s.rs_name;
               r_base = !cur;
               r_size = s.rs_size;
               r_block = s.rs_block;
               r_shift = log2 s.rs_block;
               r_first_block = !blk;
               r_n_blocks = s.rs_size / s.rs_block;
             }
           in
           cur := !cur + s.rs_size;
           blk := !blk + r.r_n_blocks;
           r)
         specs)
  in
  Array.iteri
    (fun ri r ->
      for b = 0 to r.r_n_blocks - 1 do
        let id = r.r_first_block + b in
        block_base.(id) <- r.r_base + (b * r.r_block);
        block_len.(id) <- r.r_block;
        block_region.(id) <- ri;
        let c0 = (block_base.(id) - base) lsr chunk_shift in
        for c = c0 to c0 + (r.r_block lsr chunk_shift) - 1 do
          chunk_block.(c) <- id
        done
      done)
    regions;
  { base; size; chunk; chunk_shift; regions; chunk_block; block_base; block_len; block_region }

let uniform ?(name = "shared") ~base ~size ~block () =
  create ~base ~size [ { rs_name = name; rs_size = size; rs_block = block } ]

let base t = t.base
let size t = t.size
let chunk t = t.chunk
let n_blocks t = Array.length t.block_base
let n_regions t = Array.length t.regions
let contains t addr = addr >= t.base && addr < t.base + t.size

let block_of_addr t addr =
  let off = addr - t.base in
  if off < 0 || off >= t.size then
    bad "address 0x%x outside the shared region" addr;
  t.chunk_block.(off lsr t.chunk_shift)

let block_base t b = t.block_base.(b)
let block_len t b = t.block_len.(b)
let block_region t b = t.block_region.(b)
let valid_block t b = b >= 0 && b < Array.length t.block_base

let region t ri = t.regions.(ri)
let region_name t ri = t.regions.(ri).r_name
let region_block t ri = t.regions.(ri).r_block
let region_bounds t ri = (t.regions.(ri).r_base, t.regions.(ri).r_size)

(** [region_matching t ~block] is the index of the region whose block
    size best matches a [?granularity] allocation hint: an exact match
    if one exists, otherwise the region closest in log2 distance
    (ties broken towards the earlier region).  Always succeeds — with
    a uniform layout every hint degrades to region 0. *)
let region_matching t ~block =
  let want = log2 (max 1 block) in
  let best = ref 0 and best_d = ref max_int in
  Array.iteri
    (fun i r ->
      let d = abs (r.r_shift - want) in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    t.regions;
  !best

(** [iter_range t ~addr ~len f] applies [f] to every block id whose
    extent overlaps [addr, addr+len). *)
let iter_range t ~addr ~len f =
  if len > 0 then begin
    let b0 = block_of_addr t addr and b1 = block_of_addr t (addr + len - 1) in
    for b = b0 to b1 do
      f b
    done
  end

let blocks_of_range t ~addr ~len =
  let acc = ref [] in
  iter_range t ~addr ~len (fun b -> acc := b :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Spec parser, mirroring Fault.Plan.of_spec: either a bare block size
   ("256" = uniform), or comma-separated [NAME=]SIZE:BLOCK regions
   where SIZE accepts k/m suffixes and a final "*" takes the rest of
   the segment: "fine=1m:64,bulk=*:512". *)

let size_of s ~remaining =
  match String.lowercase_ascii (String.trim s) with
  | "*" -> remaining
  | t -> (
      let mult, digits =
        match t.[String.length t - 1] with
        | 'k' -> (1024, String.sub t 0 (String.length t - 1))
        | 'm' -> (1024 * 1024, String.sub t 0 (String.length t - 1))
        | _ -> (1, t)
      in
      match int_of_string_opt digits with
      | Some n -> n * mult
      | None -> bad "Layout.of_spec: bad size %S" s)

(** [specs_of_spec ~size spec] — parse a region-spec string into the
    list [Config.regions] wants; [size] resolves '*' and validates
    coverage only at {!create} time. *)
let specs_of_spec ~size spec =
  let spec = String.trim spec in
  if spec = "" then bad "Layout.of_spec: empty spec";
  match int_of_string_opt spec with
  | Some block -> [ { rs_name = "shared"; rs_size = size; rs_block = block } ]
  | None ->
      let parts = String.split_on_char ',' spec in
      let n = List.length parts in
      let used = ref 0 in
      let specs =
        List.mapi
          (fun i part ->
            let part = String.trim part in
            let name, body =
              match String.index_opt part '=' with
              | Some eq ->
                  ( String.sub part 0 eq,
                    String.sub part (eq + 1) (String.length part - eq - 1) )
              | None -> (Printf.sprintf "region%d" i, part)
            in
            match String.split_on_char ':' body with
            | [ sz; blk ] ->
                let remaining = size - !used in
                if sz = "*" && i <> n - 1 then
                  bad "Layout.of_spec: '*' size is only valid for the last region";
                let rs_size = size_of sz ~remaining in
                let rs_block =
                  match int_of_string_opt (String.trim blk) with
                  | Some b -> b
                  | None -> bad "Layout.of_spec: bad block size %S" blk
                in
                used := !used + rs_size;
                { rs_name = name; rs_size; rs_block }
            | _ -> bad "Layout.of_spec: expected [NAME=]SIZE:BLOCK, got %S" part)
          parts
      in
      specs

let of_spec ~base ~size spec = create ~base ~size (specs_of_spec ~size spec)

let spec_help =
  "BLOCK (uniform) or comma-separated [NAME=]SIZE:BLOCK regions; SIZE takes k/m \
   suffixes, '*' (last region) takes the remainder, e.g. 'fine=1m:64,bulk=*:512'"

let pp ppf t =
  Format.fprintf ppf "layout: %d region(s), %d blocks, chunk %dB@." (n_regions t) (n_blocks t)
    t.chunk;
  Array.iter
    (fun r ->
      Format.fprintf ppf "  %-10s base 0x%x size %7d block %4d (%d blocks)@." r.r_name r.r_base
        r.r_size r.r_block r.r_n_blocks)
    t.regions
