(** Protocol configuration: geometry, variant, consistency model, the
    invalid-flag value, and the software cost model. *)

(** Base-Shasta keeps a private copy of shared memory per process and
    exchanges messages even between processes of one node; SMP-Shasta
    (Section 2.3) lets processes of a node share memory through the
    hardware, with private state tables kept consistent by selective
    downgrade messages. *)
type variant = Base | Smp

(** Consistency model implemented by the protocol (Section 3.2.3):
    [Rc] — Alpha-style relaxed model, stores are non-blocking and MBs
    drain them; [Sc] — sequential consistency, every store miss stalls
    until all invalidation acknowledgements are in. *)
type model = Rc | Sc

(** Software protocol occupancy costs (seconds); the wire costs live in
    {!Mchan.Net.config}.  Defaults are calibrated so that the latency
    microbenchmarks land near Section 6.1/6.2: ~20 us to fetch a 64-byte
    block two hops away, 0.32/1.68 us for a Base/SMP memory barrier. *)
type costs = {
  miss_entry : float;  (** requester: enter protocol, allocate miss entry *)
  send : float;  (** build + inject one message (user-level) *)
  handler : float;  (** service one incoming request at the home *)
  reply_process : float;  (** requester: integrate a reply *)
  inval_apply : float;  (** write flag values, update tables *)
  downgrade_apply : float;  (** private-state-table downgrade *)
  intra_node_hit : float;  (** protocol entry resolved from the node's shared table *)
  mb_base : float;  (** memory-barrier protocol check, Base-Shasta *)
  mb_smp : float;  (** memory-barrier protocol check, SMP-Shasta *)
  lock_acquire_queue : float;  (** message-passing lock bookkeeping *)
}

let default_costs =
  {
    miss_entry = 1.5e-6;
    send = 0.5e-6;
    handler = 2.5e-6;
    reply_process = 1.5e-6;
    inval_apply = 0.8e-6;
    downgrade_apply = 0.8e-6;
    intra_node_hit = 0.9e-6;
    mb_base = 0.32e-6;
    mb_smp = 1.68e-6;
    lock_acquire_queue = 1.0e-6;
  }

(** Home-reassignment policy for the sharded directory.  [Static] keeps
    every block at the home chosen at [init] (the paper's protocol, and
    the bit-identical default).  [First_touch] moves a block's directory
    entry to the first remote domain that requests it; [Migratory] moves
    it to a domain that has issued [migration_threshold] consecutive
    exclusive requests — the owner-predicts-next pattern, so recalls for
    migrating data collapse from 4 network hops to an intra-domain
    round trip.  Both policies transfer an entry only while it is
    quiescent (no transaction in flight, no deferred requests); requests
    racing the move are bounced back with a forwarding hint. *)
type homing = Static | First_touch | Migratory

(** Deliberately seeded protocol bugs, consumed by the mutation harness
    in [lib/check] to prove the invariant checker actually fails.  Each
    one disables a step the protocol needs for coherence; [None] is the
    correct protocol. *)
type mutation =
  | Skip_invalidate  (** acknowledge an invalidation without applying it *)
  | Skip_inval_ack  (** apply an invalidation but never acknowledge it *)
  | Keep_private_on_recall
      (** leave members' private state tables untouched by a recall *)
  | Skip_one_invalidation
      (** the home forgets the first sharer when collecting invalidations *)
  | Wrong_block_extent
      (** an invalidation writes flag words one chunk past its block *)

type t = {
  variant : variant;
  model : model;
  line_size : int;  (** bytes; typically 64 or 128 (Section 2.1) *)
  regions : Layout.region_spec list;
      (** variable-granularity regions; [[]] = one uniform region of
          [line_size] blocks covering the whole shared segment *)
  shared_base : int;
  shared_size : int;
  flag32 : int32;  (** the per-4-byte-word invalid flag value (Section 2.2) *)
  costs : costs;
  direct_downgrade : bool;  (** Section 4.3.4 optimisation *)
  max_outstanding_stores : int;  (** RC store buffer depth before stalling *)
  check_invariants : bool;
      (** cross-check directory vs state tables after every message *)
  mutation : mutation option;  (** seeded protocol bug, [None] = correct *)
  homing : homing;  (** dynamic home-reassignment policy *)
  migration_threshold : int;
      (** [Migratory]: consecutive exclusive requests from one remote
          domain before the home follows it *)
  migration_region_min : int;
      (** gate: a block's region must have seen at least this many misses
          (its {!Layout} counters) before its blocks may migrate *)
}

let default =
  {
    variant = Smp;
    model = Rc;
    line_size = 64;
    regions = [];
    shared_base = 0x4000_0000;
    shared_size = 8 * 1024 * 1024;
    flag32 = 0xDEADBEEFl;
    costs = default_costs;
    direct_downgrade = true;
    max_outstanding_stores = 16;
    check_invariants = false;
    mutation = None;
    homing = Static;
    migration_threshold = 3;
    migration_region_min = 0;
  }

(** [layout t] compiles the region list into the per-chunk lookup
    table; an empty [regions] is one uniform region at [line_size]. *)
let layout t =
  match t.regions with
  | [] -> Layout.uniform ~base:t.shared_base ~size:t.shared_size ~block:t.line_size ()
  | specs -> Layout.create ~base:t.shared_base ~size:t.shared_size specs

let is_shared t addr = addr >= t.shared_base && addr < t.shared_base + t.shared_size

let mb_cost t =
  match t.variant with Base -> t.costs.mb_base | Smp -> t.costs.mb_smp
