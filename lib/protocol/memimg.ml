(** A coherence domain's copy of the shared address space, with the
    hardware LL/SC monitor.

    In Base-Shasta each process has an image; in SMP-Shasta the processes
    of a node share one, so plain loads and stores between them behave
    like hardware shared memory.  The image also implements the lock-flag
    semantics of the Alpha LL/SC pair (Section 3.1.1): a store by any
    {e other} process to a monitored block clears that monitor, as does an
    invalidation's flag write.

    All extents come from the {!Layout}: a monitor covers one coherence
    block, whose size depends on the region the address falls in. *)

type monitor = { mon_pid : int; mon_block : int }

type t = {
  layout : Layout.t;
  base : int;
  data : Bytes.t;
  mutable monitors : monitor list;
}

let create ~layout =
  {
    layout;
    base = Layout.base layout;
    data = Bytes.make (Layout.size layout) '\000';
    monitors = [];
  }

(* Word-level write tracing: set SHASTA_DEBUG_ADDR=<hex or dec address>. *)
let debug_addr =
  match Sys.getenv_opt "SHASTA_DEBUG_ADDR" with Some a -> int_of_string a | None -> -1

let dbg_write t addr what v =
  if debug_addr >= 0 && addr <= debug_addr && debug_addr < addr + 8 then
    Format.eprintf "  [img %x] %s 0x%x <- %Ld@." (Hashtbl.hash t) what addr v

let block_of t addr = Layout.block_of_addr t.layout addr

let in_range t addr width =
  let off = addr - t.base in
  off >= 0 && off + width <= Bytes.length t.data

let check t addr width =
  if not (in_range t addr width) then
    invalid_arg (Printf.sprintf "Memimg: access at 0x%x outside the image" addr)

let read t addr (w : Alpha.Insn.width) =
  check t addr (Alpha.Insn.bytes_of_width w);
  let off = addr - t.base in
  match w with
  | Alpha.Insn.W32 -> Int64.of_int32 (Bytes.get_int32_le t.data off)
  | Alpha.Insn.W64 -> Bytes.get_int64_le t.data off

(* Clear other processes' monitors on the stored-to block. *)
let break_monitors t ~block ~pid =
  match t.monitors with
  | [] -> ()
  | ms -> t.monitors <- List.filter (fun m -> m.mon_block <> block || m.mon_pid = pid) ms

let write ?(pid = -1) t addr (w : Alpha.Insn.width) v =
  check t addr (Alpha.Insn.bytes_of_width w);
  if debug_addr >= 0 then dbg_write t addr (Printf.sprintf "write(pid%d)" pid) v;
  let off = addr - t.base in
  (* [block_of] is only needed when a monitor could break. *)
  (match t.monitors with [] -> () | _ -> break_monitors t ~block:(block_of t addr) ~pid);
  match w with
  | Alpha.Insn.W32 -> Bytes.set_int32_le t.data off (Int64.to_int32 v)
  | Alpha.Insn.W64 -> Bytes.set_int64_le t.data off v

(** [read64 t addr] / [write64 t ~pid addr v] — the 8-byte access path
    without width dispatch, for the API-mode inline-check fast paths
    (64-bit is the only width the array-based workloads use). *)
let read64 t addr =
  check t addr 8;
  Bytes.get_int64_le t.data (addr - t.base)

let write64 t ~pid addr v =
  check t addr 8;
  if debug_addr >= 0 then dbg_write t addr (Printf.sprintf "write(pid%d)" pid) v;
  (match t.monitors with [] -> () | _ -> break_monitors t ~block:(block_of t addr) ~pid);
  Bytes.set_int64_le t.data (addr - t.base) v

(** [ll t ~pid addr w] performs a load-locked: reads and arms [pid]'s
    monitor on the block. *)
let ll t ~pid addr w =
  let block = block_of t addr in
  t.monitors <-
    { mon_pid = pid; mon_block = block } :: List.filter (fun m -> m.mon_pid <> pid) t.monitors;
  read t addr w

(** [monitor_armed t ~pid addr] — is [pid]'s LL monitor still armed on
    [addr]'s block?  Consulted when a protocol-path store-conditional is
    granted by the home: if an intervening data write or invalidation
    broke the monitor, the SC fails spuriously (which the Alpha
    architecture permits) rather than complete against stale data. *)
let monitor_armed t ~pid addr =
  let block = block_of t addr in
  List.exists (fun m -> m.mon_pid = pid && m.mon_block = block) t.monitors

(** [sc t ~pid addr w v] performs a store-conditional: succeeds iff
    [pid]'s monitor on the block is still armed.  Always disarms. *)
let sc t ~pid addr w v =
  let block = block_of t addr in
  let armed = List.exists (fun m -> m.mon_pid = pid && m.mon_block = block) t.monitors in
  t.monitors <- List.filter (fun m -> m.mon_pid <> pid) t.monitors;
  if armed then write ~pid t addr w v;
  armed

(** [write_flags_range t ~flag32 ~addr ~len] stores the invalid-flag
    value into every 4-byte word of [addr, addr+len), breaking monitors
    on every touched block.  The extent need not respect block
    boundaries — the [Wrong_block_extent] mutation relies on that. *)
let write_flags_range t ~flag32 ~addr ~len =
  (if debug_addr >= 0 then
     if debug_addr >= addr && debug_addr < addr + len then
       dbg_write t debug_addr "write_flags" 0L);
  check t addr len;
  let off = addr - t.base in
  for w = 0 to (len / 4) - 1 do
    Bytes.set_int32_le t.data (off + (4 * w)) flag32
  done;
  Layout.iter_range t.layout ~addr ~len (fun b -> break_monitors t ~block:b ~pid:(-1))

(** [write_flags t ~flag32 ~block] stores the invalid-flag value into
    every 4-byte word of [block] (Section 2.2).  Breaks monitors. *)
let write_flags t ~flag32 ~block =
  write_flags_range t ~flag32
    ~addr:(Layout.block_base t.layout block)
    ~len:(Layout.block_len t.layout block)

(** [read_block t ~block] copies [block]'s extent out of the image. *)
let read_block t ~block =
  Bytes.sub t.data (Layout.block_base t.layout block - t.base) (Layout.block_len t.layout block)

(** [write_block t ~block data] copies block data into the image (a fetch
    reply or a writeback).  The monitor is broken only when the content
    actually changes: a cache fill that brings back identical data does
    not clear a hardware lock flag, and breaking monitors on every fill
    livelocks contended LL/SC loops (every contender's fetch would
    spuriously fail every sibling's SC). *)
let write_block t ~block data =
  let len = Layout.block_len t.layout block in
  if Bytes.length data <> len then
    invalid_arg
      (Printf.sprintf "Memimg.write_block: %d bytes for a %d-byte block" (Bytes.length data) len);
  let dst_off = Layout.block_base t.layout block - t.base in
  (if debug_addr >= 0 then
     let off = debug_addr - t.base in
     if off >= dst_off && off < dst_off + len then
       dbg_write t debug_addr "write_block" (Bytes.get_int64_le data (off - dst_off)));
  let changed = not (Bytes.equal data (Bytes.sub t.data dst_off len)) in
  Bytes.blit data 0 t.data dst_off len;
  if changed then break_monitors t ~block ~pid:(-1)

(** [word_is_flag t ~flag32 addr] tests whether the aligned 4-byte word
    at [addr] currently holds the flag value. *)
let word_is_flag t ~flag32 addr =
  let off = addr - t.base in
  Bytes.get_int32_le t.data (off land lnot 3) = flag32

(** [blit_out t ~addr ~len buf off] — copy raw image bytes out (used by
    the OS layer for syscall buffers after validation). *)
let blit_out t ~addr ~len buf off =
  check t addr len;
  Bytes.blit t.data (addr - t.base) buf off len

(** [blit_in t ~addr buf off len] — copy bytes into the image, breaking
    LL monitors on every touched block. *)
let blit_in t ~addr buf off len =
  check t addr len;
  Bytes.blit buf off t.data (addr - t.base) len;
  Layout.iter_range t.layout ~addr ~len (fun b -> break_monitors t ~block:b ~pid:(-1))
