(** Core protocol types: line states, request kinds, messages.

    Shared data has three basic states at each coherence domain (process
    in Base-Shasta, SMP node in SMP-Shasta): invalid, shared, exclusive
    (Section 2.1); [Pending] marks lines with an outstanding miss. *)

type state = Invalid | Shared | Exclusive | Pending

let state_to_char = function Invalid -> 'I' | Shared -> 'S' | Exclusive -> 'E' | Pending -> 'P'

(** Request kinds (Section 2.1 plus the store-conditional upgrade of
    Section 3.1.2). *)
type req_kind =
  | Read
  | Read_ex
  | Upgrade  (** exclusive request when the requester already holds a shared copy *)
  | Sc_upgrade  (** upgrade for a store-conditional: fails rather than fetching *)

type domain_id = int
type line_id = int
type block_id = int

(** Protocol messages.  Requests, acknowledgements and writebacks are
    addressed to a {e domain} (any process of the domain may service
    them); replies and intra-node downgrades are addressed to a specific
    {e process}.

    Home-originated messages that change a domain's state for a block carry
    a per-[(block, destination domain)] sequence number [seq]; receivers
    apply them strictly in order, parking early arrivals.  This closes the
    race where a recall or invalidation is serviced by one process of a
    node before a sibling has applied the grant that logically precedes
    it. *)
type msg =
  | Request of { kind : req_kind; block : block_id; from_domain : domain_id; from_pid : int }
  | Data_reply of {
      block : block_id;
      data : Bytes.t;
      exclusive : bool;
      to_pid : int;
      seq : int;
    }
  | Ack_exclusive of { block : block_id; to_pid : int; seq : int }
      (** upgrade granted: no data needed, all invalidations done *)
  | Sc_result of { block : block_id; ok : bool; to_pid : int; seq : int }
  | Invalidate of { block : block_id; home_domain : domain_id; seq : int }
      (** home tells a sharer to drop its copy and ack back to the home *)
  | Recall of { block : block_id; to_shared : bool; home_domain : domain_id; seq : int }
      (** home tells the exclusive owner to downgrade (or drop) and write
          the dirty data back *)
  | Writeback of { block : block_id; data : Bytes.t; from_domain : domain_id }
  | Inval_ack of { block : block_id; from_domain : domain_id }
  | Downgrade of { block : block_id; to_state : state; to_pid : int; from_domain : domain_id }
      (** SMP-Shasta intra-node private-state-table downgrade (Section 2.3) *)
  | Downgrade_ack of { block : block_id; from_pid : int }
  | Home_transfer of {
      block : block_id;
      owner : domain_id option;
      sharers : domain_id list;  (** most-recently-added first, like the entry *)
      seqs : (domain_id * int) list;  (** per-destination next-sequence table *)
      data : Bytes.t option;
          (** the home copy, carried when there is no owner: the new home
              must be able to serve data replies from its own image *)
      from_domain : domain_id;
    }
      (** serialised directory entry moving to a new home domain; between
          send and receive the block's directory state lives in the
          transport.  Applied on arrival at the network interface
          (Memory-Channel remote-write semantics), never mailboxed. *)
  | Home_transfer_ack of { block : block_id; from_domain : domain_id }
      (** new home confirms installation back to the old home *)
  | Home_hint of { block : block_id; home : domain_id; to_pid : int }
      (** bounce: a request reached a domain that is not (or no longer)
          the block's home; the requester updates its shard-map hint and
          re-issues to [home] *)

let msg_size = function
  | Request _ -> 32
  | Data_reply { data; _ } -> 32 + Bytes.length data
  | Ack_exclusive _ -> 32
  | Sc_result _ -> 32
  | Invalidate _ -> 32
  | Recall _ -> 32
  | Writeback { data; _ } -> 32 + Bytes.length data
  | Inval_ack _ -> 32
  | Downgrade _ -> 32
  | Downgrade_ack _ -> 32
  | Home_transfer { sharers; seqs; data; _ } ->
      48
      + (8 * List.length sharers)
      + (16 * List.length seqs)
      + (match data with Some d -> Bytes.length d | None -> 0)
  | Home_transfer_ack _ -> 32
  | Home_hint _ -> 32

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Read -> "read" | Read_ex -> "read_ex" | Upgrade -> "upgrade" | Sc_upgrade -> "sc_upgrade")

let pp_msg ppf = function
  | Request { kind; block; from_domain; from_pid } ->
      Format.fprintf ppf "Request(%a, blk=%d, dom=%d, pid=%d)" pp_kind kind block from_domain
        from_pid
  | Data_reply { block; exclusive; to_pid; seq; _ } ->
      Format.fprintf ppf "Data(blk=%d, excl=%b, pid=%d, seq=%d)" block exclusive to_pid seq
  | Ack_exclusive { block; to_pid; seq } ->
      Format.fprintf ppf "AckEx(blk=%d, pid=%d, seq=%d)" block to_pid seq
  | Sc_result { block; ok; to_pid; seq } ->
      Format.fprintf ppf "ScResult(blk=%d, ok=%b, pid=%d, seq=%d)" block ok to_pid seq
  | Invalidate { block; home_domain; seq } ->
      Format.fprintf ppf "Inval(blk=%d, home=%d, seq=%d)" block home_domain seq
  | Recall { block; to_shared; home_domain; seq } ->
      Format.fprintf ppf "Recall(blk=%d, to_shared=%b, home=%d, seq=%d)" block to_shared home_domain seq
  | Writeback { block; from_domain; _ } ->
      Format.fprintf ppf "Writeback(blk=%d, dom=%d)" block from_domain
  | Inval_ack { block; from_domain } ->
      Format.fprintf ppf "InvalAck(blk=%d, dom=%d)" block from_domain
  | Downgrade { block; to_state; to_pid; _ } ->
      Format.fprintf ppf "Downgrade(blk=%d, to=%c, pid=%d)" block (state_to_char to_state) to_pid
  | Downgrade_ack { block; from_pid } ->
      Format.fprintf ppf "DowngradeAck(blk=%d, pid=%d)" block from_pid
  | Home_transfer { block; owner; sharers; from_domain; _ } ->
      Format.fprintf ppf "HomeTransfer(blk=%d, owner=%s, sharers=[%s], from=%d)" block
        (match owner with Some o -> string_of_int o | None -> "-")
        (String.concat "," (List.map string_of_int sharers))
        from_domain
  | Home_transfer_ack { block; from_domain } ->
      Format.fprintf ppf "HomeTransferAck(blk=%d, dom=%d)" block from_domain
  | Home_hint { block; home; to_pid } ->
      Format.fprintf ppf "HomeHint(blk=%d, home=%d, pid=%d)" block home to_pid
