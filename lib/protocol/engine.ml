(** The Shasta coherence protocol engine.

    One {!t} is the protocol instance for a whole cluster.  Processes are
    attached to it and grouped into {e coherence domains}: one per process
    in Base-Shasta, one per SMP node in SMP-Shasta.  The engine implements
    a home-serialised directory invalidation protocol:

    - all directory state changes for a block happen at its home domain,
      which defers conflicting requests while a transaction is in flight
      (this serialises writes to the same location);
    - invalidation acknowledgements are collected at the home before the
      grant is sent, so the [Sc] configuration gives sequential
      consistency by construction and [Rc] simply allows stores to be
      outstanding past the inline check;
    - dirty blocks are recalled through the home (a 4-hop transfer where
      the original Shasta forwards in 3; the constant is absorbed in the
      cost calibration and noted in DESIGN.md).

    Fiber-side entry points ([load_miss], [store_miss], [mb], [batch],
    [sc_protocol], ...) are called from inside simulated processes and may
    stall; [service] is the poll hook, called from scheduler context, and
    only mutates state and sends messages. *)

type miss_kind = MRead | MStore | MSc | MPrefetch

type miss = {
  m_block : int;
  m_kind : miss_kind;
  m_req : Ptypes.req_kind;
      (** the request kind on the wire, re-sent verbatim when a bounce
          (a [Home_hint]) reveals the request went to a stale home *)
  mutable m_done : bool;
  mutable m_sc_ok : bool;
  m_sc_store : (int * Alpha.Insn.width * int64) option;
  mutable m_stores : (int * Alpha.Insn.width * int64) list;
      (** stores recorded while the miss was outstanding, replayed over
          arriving data (non-blocking stores, Section 3.2.3) *)
}

type pstats = {
  mutable read_misses : int;
  mutable store_misses : int;
  mutable sc_misses : int;
  mutable intra_hits : int;
  mutable false_misses : int;
  mutable downgrades_direct : int;
  mutable downgrades_msg : int;
  mutable read_stall : float;
  mutable write_stall : float;
  mutable mb_stall : float;
  mutable messages_handled : int;
  mutable reissued_stores : int;
  mutable bounces : int;
      (** requests re-issued after a [Home_hint] (the home had moved) *)
}

let empty_pstats () =
  {
    read_misses = 0;
    store_misses = 0;
    sc_misses = 0;
    intra_hits = 0;
    false_misses = 0;
    downgrades_direct = 0;
    downgrades_msg = 0;
    read_stall = 0.0;
    write_stall = 0.0;
    mb_stall = 0.0;
    messages_handled = 0;
    reissued_stores = 0;
    bounces = 0;
  }

type pcb = {
  pid : int;
  proc : Sim.Proc.t;
  dom : domain;
  eng : t;
  private_tab : Bytes.t;
  mailbox : Ptypes.msg Mchan.Mailbox.t;
  outstanding : (int, miss) Hashtbl.t;
  mutable n_outstanding_stores : int;
  in_app : bool ref;  (** false while in protocol/syscalls: enables direct downgrade *)
  mutable in_batch : bool;
  mutable batch_blocks : int list;
  mutable deferred_flags : int list;  (** blocks whose flag writes are delayed (Section 4.1) *)
  mutable watch_blocks : int list;  (** post-batch store-reissue watch *)
  mutable reissue : (int * Alpha.Insn.width * int64) list;  (** (addr, w, v) to re-issue *)
  mutable last_ll : int option;  (** block of the last LL whose line was exclusive *)
  mutable parked : Ptypes.msg list;
      (** replies that arrived ahead of their per-block sequence order *)
  stats : pstats;
}

and domain = {
  dom_id : int;
  dom_node : int;
  img : Memimg.t;
  shared_tab : Bytes.t;  (** node-level state, one byte per block *)
  mutable members : pcb list;
  dom_mailbox : Ptypes.msg Mchan.Mailbox.t;
  dir : Directory.t;
  pending_local : (int, local_txn) Hashtbl.t;
      (** recalls waiting for intra-node private-table downgrades *)
  applied_seq : (int, int) Hashtbl.t;
      (** per block: how many home-originated ordered messages were applied *)
  mutable parked_dom : Ptypes.msg list;
      (** invalidations/recalls that arrived ahead of sequence order *)
  home_hint : (int, int) Hashtbl.t;
      (** this domain's (possibly stale) view of migrated homes: blocks
          absent from the table are assumed to live at their static home.
          Updated by [Home_hint] bounces and by the domain's own
          transfers; never consulted when [Config.homing = Static]. *)
  mutable homes_in : int;  (** directory entries this domain received *)
  mutable homes_out : int;  (** directory entries this domain gave away *)
  mutable dom_bounces : int;  (** hints received after requests hit a stale home *)
}

and local_txn = { mutable lt_awaiting : int; lt_to_shared : bool }

and rstat = {
  mutable r_read_misses : int;
  mutable r_store_misses : int;
  mutable r_invals : int;
  mutable r_recalls : int;
  mutable r_data_bytes : int;  (** payload bytes moved in data replies/writebacks *)
}

and transfer = { tr_from : int; tr_to : int }

and t = {
  cfg : Config.t;
  net : Mchan.Net.t;
  layout : Layout.t;  (** region layout; all state tables are per block *)
  mutable domains : domain list;  (** most-recent first; use [domain_by_id] *)
  domain_tbl : (int, domain) Hashtbl.t;
  pcbs : (int, pcb) Hashtbl.t;
  mutable home_domains : int array;
  home_override : int array;  (** per block: forced home domain, or -1 *)
  home : int array;
      (** authoritative per-block home — the sharded directory map.
          Filled at [init] from the static placement; updated the moment
          a transfer is initiated (the entry may still be in flight:
          [transfers] says so).  Domains route by their own hints, not by
          this array — only arrival-side checks may consult it. *)
  transfers : (int, transfer) Hashtbl.t;
      (** blocks whose directory entry currently lives in the transport *)
  rstats : rstat array array;
      (** per-region protocol traffic counters, sharded by the node that
          records the event ([rstats.(node).(region)]) so parallel lanes
          never share a counter; {!region_stats} sums the shards *)
  mutable migrations : int;  (** home transfers completed *)
  mutable transfer_acks : int;  (** transfer acks received by old homes *)
  mutable bounces : int;  (** requests bounced off a stale or in-flight home *)
  mutable initialized : bool;
  mutable mutation_fires : int;  (** times the seeded bug was exercised *)
  mutable invariant_checks : int;  (** per-message invariant sweeps run *)
  mutable legal_transients : int;
      (** times the checker observed (and exempted) the documented legal
          transient: a directory owner holding S/I while its exclusive
          grant is still in flight *)
}

(* --- state table helpers --- *)

let st_char = function
  | Ptypes.Invalid -> 'I'
  | Ptypes.Shared -> 'S'
  | Ptypes.Exclusive -> 'E'
  | Ptypes.Pending -> 'P'

let st_of_char = function
  | 'I' -> Ptypes.Invalid
  | 'S' -> Ptypes.Shared
  | 'E' -> Ptypes.Exclusive
  | 'P' -> Ptypes.Pending
  | c -> invalid_arg (Printf.sprintf "bad state char %c" c)

let tab_get tab block = st_of_char (Bytes.get tab block)
let tab_set tab block s = Bytes.set tab block (st_char s)

(* Block-level event tracing for protocol debugging: set
   SHASTA_DEBUG_BLOCK=<block id> to dump every transition of that block. *)
let debug_block =
  match Sys.getenv_opt "SHASTA_DEBUG_BLOCK" with Some s -> int_of_string s | None -> -1

(* Call sites guard with [if dbg_on then dbg ...]: [Format.ifprintf]
   still interprets the format string and the arguments are evaluated
   either way, which is far too expensive for per-access paths. *)
let dbg_on = debug_block >= 0

let dbg b fmt =
  if b = debug_block then Format.eprintf (fmt ^^ "@.") else Format.ifprintf Format.err_formatter fmt

(* Per-(block, domain) ordering of home-originated messages. *)
let msg_block_seq = function
  | Ptypes.Data_reply { block; seq; _ }
  | Ptypes.Ack_exclusive { block; seq; _ }
  | Ptypes.Sc_result { block; seq; _ }
  | Ptypes.Invalidate { block; seq; _ }
  | Ptypes.Recall { block; seq; _ } ->
      Some (block, seq)
  | Ptypes.Request _ | Ptypes.Writeback _ | Ptypes.Inval_ack _ | Ptypes.Downgrade _
  | Ptypes.Downgrade_ack _
  (* Transfer traffic is applied at the network interface, not through a
     domain's ordered mailbox; its own ordering is the transfer protocol. *)
  | Ptypes.Home_transfer _ | Ptypes.Home_transfer_ack _ | Ptypes.Home_hint _ ->
      None

let seq_expected d b = 1 + Option.value (Hashtbl.find_opt d.applied_seq b) ~default:0
let seq_mark d b = Hashtbl.replace d.applied_seq b (seq_expected d b)

let in_seq_order d msg =
  match msg_block_seq msg with None -> true | Some (b, seq) -> seq = seq_expected d b

let consume_seq d msg =
  match msg_block_seq msg with Some (b, _) -> seq_mark d b | None -> ()


let create ~cfg ~net =
  let layout = Config.layout cfg in
  let n_blocks = Layout.n_blocks layout in
  let t =
    {
      cfg;
      net;
      layout;
      domains = [];
      domain_tbl = Hashtbl.create 32;
      pcbs = Hashtbl.create 64;
      home_domains = [||];
      home_override = Array.make n_blocks (-1);
      home = Array.make n_blocks (-1);
      transfers = Hashtbl.create 16;
      migrations = 0;
      transfer_acks = 0;
      bounces = 0;
      rstats =
        Array.init (Mchan.Net.config net).Mchan.Net.nodes (fun _ ->
            Array.init (Layout.n_regions layout) (fun _ ->
                {
                  r_read_misses = 0;
                  r_store_misses = 0;
                  r_invals = 0;
                  r_recalls = 0;
                  r_data_bytes = 0;
                }));
      initialized = false;
      mutation_fires = 0;
      invariant_checks = 0;
      legal_transients = 0;
    }
  in
  (match cfg.Config.variant with
  | Config.Smp ->
      (* One domain per node, eagerly. *)
      for node = 0 to (Mchan.Net.config net).Mchan.Net.nodes - 1 do
        let d =
          {
            dom_id = node;
            dom_node = node;
            img = Memimg.create ~layout;
            shared_tab = Bytes.make n_blocks 'I';
            members = [];
            dom_mailbox = Mchan.Mailbox.create ~owner:(-1);
            dir = Directory.create ~home_domain:node;
            pending_local = Hashtbl.create 16;
            applied_seq = Hashtbl.create 64;
            parked_dom = [];
            home_hint = Hashtbl.create 16;
            homes_in = 0;
            homes_out = 0;
            dom_bounces = 0;
          }
        in
        t.domains <- d :: t.domains;
        Hashtbl.replace t.domain_tbl node d
      done
  | Config.Base -> ());
  t

let domain_by_id t id = Hashtbl.find t.domain_tbl id

let fresh_domain t ~node ~id =
  let d =
    {
      dom_id = id;
      dom_node = node;
      img = Memimg.create ~layout:t.layout;
      shared_tab = Bytes.make (Layout.n_blocks t.layout) 'I';
      members = [];
      dom_mailbox = Mchan.Mailbox.create ~owner:id;
      dir = Directory.create ~home_domain:id;
      pending_local = Hashtbl.create 16;
      applied_seq = Hashtbl.create 64;
      parked_dom = [];
      home_hint = Hashtbl.create 16;
      homes_in = 0;
      homes_out = 0;
      dom_bounces = 0;
    }
  in
  t.domains <- d :: t.domains;
  Hashtbl.replace t.domain_tbl id d;
  d

(** [attach t proc] registers a simulated process with the protocol and
    returns its control block.  In Base-Shasta this creates a new
    coherence domain for the process; in SMP-Shasta it joins its node's
    domain.  Also installs the poll hook and stall signal on [proc]. *)
let attach t (proc : Sim.Proc.t) =
  let node = proc.Sim.Proc.cpu.Sim.Proc.node_id in
  let pid = proc.Sim.Proc.pid in
  let dom =
    match t.cfg.Config.variant with
    | Config.Smp -> domain_by_id t node
    | Config.Base -> fresh_domain t ~node ~id:pid
  in
  let pcb =
    {
      pid;
      proc;
      dom;
      eng = t;
      private_tab = Bytes.make (Layout.n_blocks t.layout) 'I';
      mailbox = Mchan.Mailbox.create ~owner:pid;
      outstanding = Hashtbl.create 8;
      n_outstanding_stores = 0;
      in_app = ref true;
      in_batch = false;
      batch_blocks = [];
      deferred_flags = [];
      watch_blocks = [];
      reissue = [];
      last_ll = None;
      parked = [];
      stats = empty_pstats ();
    }
  in
  dom.members <- pcb :: dom.members;
  Hashtbl.replace t.pcbs pid pcb;
  proc.Sim.Proc.stall_signal <- Some (Mchan.Net.node_signal t.net node);
  pcb

(** [layout t] — the compiled region layout; variable granularity comes
    from [Config.regions] (Section 2.1), fixed before the engine exists. *)
let layout t = t.layout

let block_of_addr t addr = Layout.block_of_addr t.layout addr
let block_bytes t b = Layout.block_len t.layout b

(* The static placement chosen at [init]: override if any, else blocks
   striped round-robin over the home domains.  This is where every block
   starts; migration moves it in [t.home] afterwards. *)
let static_home t b =
  if t.home_override.(b) >= 0 then t.home_override.(b)
  else
    let n = Array.length t.home_domains in
    t.home_domains.(b mod n)

(** [home_domain_of_block t b] — the block's current home: where its
    directory entry lives, or (if a transfer is in flight) where it will
    land.  Authoritative — an omniscient view only arrival-side checks
    and the invariant checker may use; request routing goes through each
    domain's own {!hinted_home}. *)
let home_domain_of_block t b = t.home.(b)

(* A domain's own view of the home map: its sparse hint table over the
   static placement.  May be stale — a request routed here can bounce. *)
let hinted_home t d b =
  match Hashtbl.find_opt d.home_hint b with Some h -> h | None -> static_home t b

(** [set_home t ~addr ~len ~domain] — the "home placement optimisation"
    used for FMM, LU-Contiguous and Ocean (Section 6.4): blocks in
    [\[addr, addr+len)] are homed at [domain], typically the domain of
    the processor that predominantly writes them.  Must precede [init];
    later ranges overwrite earlier overlapping ones. *)
let set_home t ~addr ~len ~domain =
  if t.initialized then invalid_arg "set_home after init";
  if domain < 0 || domain >= Directory.max_domains then
    invalid_arg (Printf.sprintf "set_home: domain %d outside 0..%d" domain (Directory.max_domains - 1));
  Layout.iter_range t.layout ~addr ~len (fun b -> t.home_override.(b) <- domain)

(** [init t ?homes ()] finalises setup: picks the home domains (default:
    every domain), fills every image with the invalid-flag value, then
    gives each block's home domain a valid zeroed copy. *)
let init ?homes t =
  if t.initialized then invalid_arg "Engine.init: already initialized";
  t.initialized <- true;
  let domains = List.rev t.domains in
  t.home_domains <-
    (match homes with
    | Some hs -> Array.of_list hs
    | None ->
        (* Only domains with attached application processes can serve
           directory requests; protocol processes (scheduling priority 1)
           exist to service *other* domains' traffic and, in Base-Shasta,
           have no application process in their own domain at all. *)
        let app_domain d =
          List.exists (fun m -> m.proc.Sim.Proc.priority = 0) d.members
        in
        let inhabited = List.filter app_domain domains in
        let candidates =
          if inhabited <> [] then inhabited
          else List.filter (fun d -> d.members <> []) domains
        in
        let candidates = if candidates = [] then domains else candidates in
        Array.of_list (List.map (fun d -> d.dom_id) candidates));
  if Array.length t.home_domains = 0 then invalid_arg "Engine.init: no home domains";
  Array.iter
    (fun d ->
      if not (Hashtbl.mem t.domain_tbl d) then
        invalid_arg (Printf.sprintf "Engine.init: home domain %d does not exist" d))
    t.home_domains;
  let n_blocks = Layout.n_blocks t.layout in
  (* The shard map starts as the static placement; any home override
     naming a non-existent domain is caught here, before first use. *)
  for b = 0 to n_blocks - 1 do
    let h = static_home t b in
    if not (Hashtbl.mem t.domain_tbl h) then
      invalid_arg (Printf.sprintf "Engine.init: block %d homed at non-existent domain %d" b h);
    t.home.(b) <- h
  done;
  List.iter
    (fun d ->
      for b = 0 to n_blocks - 1 do
        Memimg.write_flags d.img ~flag32:t.cfg.Config.flag32 ~block:b
      done)
    domains;
  (* Home copies: zero data, Shared state. *)
  for b = 0 to n_blocks - 1 do
    let home = domain_by_id t (home_domain_of_block t b) in
    Memimg.write_block home.img ~block:b (Bytes.make (block_bytes t b) '\000');
    tab_set home.shared_tab b Ptypes.Shared
  done

(* --- message plumbing --- *)

(* Per-region traffic accounting: payload bytes of every data-carrying
   message, attributed to the block's region and recorded in the sending
   node's counter shard. *)
let count_data t ~node msg =
  match msg with
  | Ptypes.Data_reply { block; data; _ } | Ptypes.Writeback { block; data; _ } ->
      let r = t.rstats.(node).(Layout.block_region t.layout block) in
      r.r_data_bytes <- r.r_data_bytes + Bytes.length data
  | _ -> ()

let msg_block = function
  | Ptypes.Request { block; _ }
  | Ptypes.Data_reply { block; _ }
  | Ptypes.Ack_exclusive { block; _ }
  | Ptypes.Sc_result { block; _ }
  | Ptypes.Invalidate { block; _ }
  | Ptypes.Recall { block; _ }
  | Ptypes.Writeback { block; _ }
  | Ptypes.Inval_ack { block; _ }
  | Ptypes.Downgrade { block; _ }
  | Ptypes.Downgrade_ack { block; _ }
  | Ptypes.Home_transfer { block; _ }
  | Ptypes.Home_transfer_ack { block; _ }
  | Ptypes.Home_hint { block; _ } ->
      block

let send_to_domain t ~cur ~from_node dst_domain msg =
  count_data t ~node:from_node msg;
  let dst = domain_by_id t dst_domain in
  Mchan.Net.send t.net ~at:!cur ~block:(msg_block msg) ~src_node:from_node
    ~dst_node:dst.dom_node ~size:(Ptypes.msg_size msg) (fun () ->
      Mchan.Mailbox.push dst.dom_mailbox msg)

let send_to_pid t ~cur ~from_node dst_pid msg =
  count_data t ~node:from_node msg;
  let pcb = Hashtbl.find t.pcbs dst_pid in
  Mchan.Net.send t.net ~at:!cur ~block:(msg_block msg) ~src_node:from_node
    ~dst_node:pcb.dom.dom_node ~size:(Ptypes.msg_size msg) (fun () ->
      Mchan.Mailbox.push pcb.mailbox msg)

(* --- state transitions applied at a domain --- *)

let set_block_state_shared d t b s =
  ignore t;
  tab_set d.shared_tab b s

let set_block_state_private ?(why = "?") pcb t b s =
  if dbg_on then dbg b "[%.9f] PRIV pid%d blk=%d <- %c @ %s" (Sim.Engine.now (Mchan.Net.engine t.net)) pcb.pid b
    (Ptypes.state_to_char s) why;
  tab_set pcb.private_tab b s

let batch_contains pcb b = List.mem b pcb.batch_blocks

(* Replay every member's stores recorded against an outstanding miss on
   block [b].  Arriving block data (a fetch reply or writeback) reflects
   the home's version and would otherwise clobber locally-performed
   non-blocking stores that are still waiting for their own grant —
   the software analogue of merging dirty words on a cache fill. *)
let replay_recorded_stores t d b =
  ignore t;
  List.iter
    (fun m ->
      match Hashtbl.find_opt m.outstanding b with
      | Some miss ->
          List.iter
            (fun (addr, w, v) -> Memimg.write ~pid:m.pid d.img addr w v)
            (List.rev miss.m_stores)
      | None -> ())
    d.members

(** Write flag values into every word of a block, unless a member process
    is mid-batch over the block, in which case the flag writes are
    deferred until that process next enters the protocol (Section 4.1). *)
let invalidate_block_data t d b =
  let deferring =
    List.filter (fun m -> m.in_batch && batch_contains m b) d.members
  in
  if deferring = [] then begin
    Memimg.write_flags d.img ~flag32:t.cfg.Config.flag32 ~block:b;
    (* Seeded bug: the flag writes overrun the block's layout extent by
       one chunk, corrupting whatever the next block holds — exactly the
       failure the per-block-extent invariants must catch. *)
    if t.cfg.Config.mutation = Some Config.Wrong_block_extent then begin
      let spill_addr = Layout.block_base t.layout b + Layout.block_len t.layout b in
      if Layout.contains t.layout spill_addr then begin
        t.mutation_fires <- t.mutation_fires + 1;
        Memimg.write_flags_range d.img ~flag32:t.cfg.Config.flag32 ~addr:spill_addr
          ~len:(Layout.chunk t.layout)
      end
    end
  end
  else List.iter (fun m -> m.deferred_flags <- b :: m.deferred_flags) deferring

(* --- sharded-directory home transfers ---

   A directory entry moves homes through a [Home_transfer] /
   [Home_transfer_ack] exchange; a request that races the move is bounced
   back with a [Home_hint].  Between send and receive the entry lives in
   the transport (the IronFleet delegation idiom): [t.transfers] names
   such blocks and both the old and the new home bounce requests for
   them.  Transfer traffic is applied directly at the network interface
   on arrival — Memory-Channel remote-write semantics — never through a
   domain mailbox, so a transfer completes even after every process of
   the destination node has stopped polling. *)

(* Per-message invariant sweep for transfer arrivals; wired to the real
   checker (defined with the rest of the checking machinery, below) once
   it exists. *)
let transfer_check : (t -> Ptypes.msg -> unit) ref = ref (fun _ _ -> ())

let rec apply_transport t ~at msg =
  match msg with
  | Ptypes.Home_transfer { block = b; owner; sharers; seqs; data; from_domain } ->
      let tr =
        match Hashtbl.find_opt t.transfers b with
        | Some tr -> tr
        | None -> invalid_arg "Home_transfer for a block not in flight"
      in
      let d = domain_by_id t tr.tr_to in
      let e = Directory.install d.dir ~block:b ~owner ~sharers ~seqs in
      (match data with
      | Some bytes -> (
          (* The new home must be able to serve data replies from its own
             image.  If it already holds the block S/E the image is
             current; otherwise (I, or P with its own miss still in
             flight) the carried copy is installed and the domain joins
             the sharer set. *)
          match tab_get d.shared_tab b with
          | Ptypes.Shared | Ptypes.Exclusive -> ()
          | Ptypes.Invalid | Ptypes.Pending ->
              Memimg.write_block d.img ~block:b bytes;
              replay_recorded_stores t d b;
              tab_set d.shared_tab b Ptypes.Shared;
              if not (Directory.is_sharer e d.dom_id) then Directory.add_sharer e d.dom_id)
      | None -> ());
      Hashtbl.remove t.transfers b;
      Hashtbl.replace d.home_hint b d.dom_id;
      d.homes_in <- d.homes_in + 1;
      t.migrations <- t.migrations + 1;
      if dbg_on then dbg b "[%.9f] XFER install blk=%d at dom%d (from dom%d)" at b d.dom_id from_domain;
      let cur = ref (at +. t.cfg.Config.costs.Config.handler) in
      send_transport t ~cur ~from_node:d.dom_node from_domain
        (Ptypes.Home_transfer_ack { block = b; from_domain = d.dom_id });
      !transfer_check t msg
  | Ptypes.Home_transfer_ack { block = b; from_domain } ->
      if dbg_on then dbg b "[%.9f] XFER ack blk=%d from dom%d" at b from_domain;
      t.transfer_acks <- t.transfer_acks + 1
  | Ptypes.Home_hint { block = b; home = h; to_pid } -> (
      let pcb = Hashtbl.find t.pcbs to_pid in
      Hashtbl.replace pcb.dom.home_hint b h;
      pcb.dom.dom_bounces <- pcb.dom.dom_bounces + 1;
      pcb.stats.bounces <- pcb.stats.bounces + 1;
      if dbg_on then dbg b "[%.9f] BOUNCE pid%d blk=%d -> dom%d" at to_pid b h;
      match Hashtbl.find_opt pcb.outstanding b with
      | Some miss when not miss.m_done ->
          (* Re-issue the bounced request to the hinted home.  The hinted
             home may itself still see the entry in flight and bounce
             again; the chase terminates because the transfer's arrival
             is a fixed, already-scheduled event and every bounce costs a
             round trip. *)
          let cur = ref (at +. t.cfg.Config.costs.Config.send) in
          send_to_domain t ~cur ~from_node:pcb.dom.dom_node h
            (Ptypes.Request
               { kind = miss.m_req; block = b; from_domain = pcb.dom.dom_id; from_pid = pcb.pid })
      | _ -> ())
  | _ -> invalid_arg "apply_transport: not transfer traffic"

and send_transport t ~cur ~from_node dst_domain msg =
  count_data t ~node:from_node msg;
  let dst = domain_by_id t dst_domain in
  Mchan.Net.send t.net ~at:!cur ~block:(msg_block msg) ~src_node:from_node
    ~dst_node:dst.dom_node ~size:(Ptypes.msg_size msg) (fun () ->
      apply_transport t ~at:(Sim.Engine.now (Mchan.Net.engine t.net)) msg)

(* Invalidate (shared -> invalid) at a domain; acks back to the home.
   Two of the seeded mutations live here: [Skip_invalidate] acknowledges
   without touching any state (a stale copy survives), [Skip_inval_ack]
   invalidates but never acknowledges (the home's transaction hangs). *)
let apply_invalidate t d ~cur ~home_domain b =
  if dbg_on then dbg b "[%.9f] INVAL at dom%d blk=%d" !cur d.dom_id b;
  let skip_apply = t.cfg.Config.mutation = Some Config.Skip_invalidate in
  let skip_ack = t.cfg.Config.mutation = Some Config.Skip_inval_ack in
  if skip_apply || skip_ack then t.mutation_fires <- t.mutation_fires + 1;
  let r = t.rstats.(d.dom_node).(Layout.block_region t.layout b) in
  r.r_invals <- r.r_invals + 1;
  if not skip_apply then begin
    invalidate_block_data t d b;
    set_block_state_shared d t b Ptypes.Invalid;
    List.iter (fun m -> set_block_state_private ~why:"inval" m t b Ptypes.Invalid) d.members
  end;
  cur := !cur +. t.cfg.Config.costs.Config.inval_apply;
  if not skip_ack then
    send_to_domain t ~cur ~from_node:d.dom_node home_domain
      (Ptypes.Inval_ack { block = b; from_domain = d.dom_id })

(* Complete a recall once all private-table downgrades are done. *)
let complete_recall t d ~cur b ~to_shared ~home_domain =
  if dbg_on then dbg b "[%.9f] RECALL-DONE at dom%d blk=%d to_shared=%b" !cur d.dom_id b to_shared;
  let keep_private = t.cfg.Config.mutation = Some Config.Keep_private_on_recall in
  let data = Memimg.read_block d.img ~block:b in
  if to_shared then begin
    set_block_state_shared d t b Ptypes.Shared;
    if not keep_private then
      List.iter
        (fun m ->
          if tab_get m.private_tab b = Ptypes.Exclusive then tab_set m.private_tab b Ptypes.Shared)
        d.members
  end
  else begin
    invalidate_block_data t d b;
    set_block_state_shared d t b Ptypes.Invalid;
    if not keep_private then
      List.iter (fun m -> set_block_state_private ~why:"recall-inval" m t b Ptypes.Invalid) d.members
  end;
  send_to_domain t ~cur ~from_node:d.dom_node home_domain
    (Ptypes.Writeback { block = b; data; from_domain = d.dom_id })

(* Recall (exclusive -> shared/invalid) at the owning domain.  Private
   state tables holding the block exclusive must be downgraded first:
   directly when the holder is not in application code (Section 4.3.4),
   via an explicit message otherwise (Section 2.3). *)
let apply_recall t d ~cur ~servicer b ~to_shared ~home_domain =
  if dbg_on then dbg b "[%.9f] RECALL at dom%d blk=%d to_shared=%b" !cur d.dom_id b to_shared;
  let r = t.rstats.(d.dom_node).(Layout.block_region t.layout b) in
  r.r_recalls <- r.r_recalls + 1;
  (* Block intra-node exclusive grants while the recall is in flight. *)
  set_block_state_shared d t b Ptypes.Pending;
  if t.cfg.Config.mutation = Some Config.Keep_private_on_recall then begin
    (* Seeded bug: skip every private-state-table downgrade — the
       members' stale Exclusive/Shared entries survive the recall
       (complete_recall is gated on the same mutation). *)
    t.mutation_fires <- t.mutation_fires + 1;
    complete_recall t d ~cur b ~to_shared ~home_domain
  end
  else
  let needs_downgrade m = m.pid <> servicer && tab_get m.private_tab b = Ptypes.Exclusive in
  let pending = ref 0 in
  List.iter
    (fun m ->
      if m.pid = servicer then
        set_block_state_private ~why:"recall-self" m t b (if to_shared then Ptypes.Shared else Ptypes.Invalid)
      else if needs_downgrade m then begin
        if t.cfg.Config.direct_downgrade && not !(m.in_app) then begin
          set_block_state_private ~why:"direct-downgrade" m t b (if to_shared then Ptypes.Shared else Ptypes.Invalid);
          m.stats.downgrades_direct <- m.stats.downgrades_direct + 1;
          cur := !cur +. t.cfg.Config.costs.Config.downgrade_apply
        end
        else begin
          m.stats.downgrades_msg <- m.stats.downgrades_msg + 1;
          incr pending;
          send_to_pid t ~cur ~from_node:d.dom_node m.pid
            (Ptypes.Downgrade
               {
                 block = b;
                 to_state = (if to_shared then Ptypes.Shared else Ptypes.Invalid);
                 to_pid = m.pid;
                 from_domain = d.dom_id;
               })
        end
      end)
    d.members;
  if !pending = 0 then complete_recall t d ~cur b ~to_shared ~home_domain
  else
    Hashtbl.replace d.pending_local b { lt_awaiting = !pending; lt_to_shared = to_shared }

(* --- the home side --- *)

let rec handle_request t home ~cur msg =
  match msg with
  | Ptypes.Request { kind = _; block = b; from_domain = _; from_pid }
    when t.home.(b) <> home.dom_id || Hashtbl.mem t.transfers b ->
      (* Stale or in-flight home: bounce with a forwarding hint, before
         any directory lookup — allocating an entry here would duplicate
         state the real home holds.  Unreachable under [Static] homing:
         hints then always equal the static map and nothing is ever in
         flight. *)
      cur := !cur +. t.cfg.Config.costs.Config.handler;
      t.bounces <- t.bounces + 1;
      (* Hint the authoritative home, not this domain's own stale
         forwarding note: a block that has moved on several times since
         we gave it away would otherwise send the requester on a walk
         down the whole chain of past homes, one bounce per hop. *)
      let hint =
        match Hashtbl.find_opt t.transfers b with
        | Some tr -> tr.tr_to  (* in flight: point at where it will land *)
        | None -> t.home.(b)
      in
      if dbg_on then dbg b "[%.9f] HOME bounce blk=%d at dom%d -> dom%d" !cur b home.dom_id hint;
      let rdom = (Hashtbl.find t.pcbs from_pid).dom in
      send_transport t ~cur ~from_node:home.dom_node rdom.dom_id
        (Ptypes.Home_hint { block = b; home = hint; to_pid = from_pid })
  | Ptypes.Request { kind; block = b; from_domain; from_pid } -> (
      let entry = Directory.entry home.dir b in
      match entry.Directory.busy with
      | Some _ ->
          if dbg_on then dbg b "[%.9f] HOME defer blk=%d" !cur b;
          Queue.push msg entry.Directory.deferred
      | None -> (
          cur := !cur +. t.cfg.Config.costs.Config.handler;
          if dbg_on then dbg b "[%.9f] HOME req %s blk=%d from dom%d pid%d owner=%s sharers=[%s]" !cur
            (Format.asprintf "%a" Ptypes.pp_kind kind) b from_domain from_pid
            (match entry.Directory.owner with Some o -> string_of_int o | None -> "-")
            (String.concat "," (List.map string_of_int (Directory.sharers_list entry)));
          observe_request t home entry ~kind ~from_domain;
          let reply_data ~exclusive =
            let data = Memimg.read_block home.img ~block:b in
            send_to_pid t ~cur ~from_node:home.dom_node from_pid
              (Ptypes.Data_reply
                 {
                   block = b;
                   data;
                   exclusive;
                   to_pid = from_pid;
                   seq = Directory.stamp entry from_domain;
                 })
          in
          (match kind with
          | Ptypes.Read -> (
              match entry.Directory.owner with
              | Some o when o <> from_domain ->
                  entry.Directory.busy <-
                    Some
                      {
                        Directory.t_kind = Ptypes.Read;
                        t_requester_domain = from_domain;
                        t_requester_pid = from_pid;
                        t_awaiting = 1;
                        t_data = None;
                      };
                  send_to_domain t ~cur ~from_node:home.dom_node o
                    (Ptypes.Recall
                       {
                         block = b;
                         to_shared = true;
                         home_domain = home.dom_id;
                         seq = Directory.stamp entry o;
                       })
              | Some _ ->
                  (* The requester's domain already owns the block (a stale
                     request); grant exclusivity again. *)
                  send_to_pid t ~cur ~from_node:home.dom_node from_pid
                    (Ptypes.Ack_exclusive
                       { block = b; to_pid = from_pid; seq = Directory.stamp entry from_domain })
              | None ->
                  Directory.add_sharer entry from_domain;
                  reply_data ~exclusive:false)
          | Ptypes.Read_ex | Ptypes.Upgrade | Ptypes.Sc_upgrade -> (
              let still_sharer = Directory.is_sharer entry from_domain in
              if kind = Ptypes.Sc_upgrade && (entry.Directory.owner <> None || not still_sharer)
              then
                (* A failed SC must not send invalidations (livelock
                   avoidance, Section 3.1.1). *)
                send_to_pid t ~cur ~from_node:home.dom_node from_pid
                  (Ptypes.Sc_result
                     {
                       block = b;
                       ok = false;
                       to_pid = from_pid;
                       seq = Directory.stamp entry from_domain;
                     })
              else
                match entry.Directory.owner with
                | Some o when o <> from_domain ->
                    entry.Directory.busy <-
                      Some
                        {
                          Directory.t_kind = Ptypes.Read_ex;
                          t_requester_domain = from_domain;
                          t_requester_pid = from_pid;
                          t_awaiting = 1;
                          t_data = None;
                        };
                    send_to_domain t ~cur ~from_node:home.dom_node o
                      (Ptypes.Recall
                         {
                           block = b;
                           to_shared = false;
                           home_domain = home.dom_id;
                           seq = Directory.stamp entry o;
                         })
                | Some _ ->
                    send_to_pid t ~cur ~from_node:home.dom_node from_pid
                      (Ptypes.Ack_exclusive
                         { block = b; to_pid = from_pid; seq = Directory.stamp entry from_domain })
                | None ->
                    (* Upgrades from a domain that lost its copy are
                       promoted to full read-exclusives. *)
                    let kind =
                      if kind = Ptypes.Upgrade && not still_sharer then Ptypes.Read_ex else kind
                    in
                    (* Snapshot data before invalidating anyone (the home
                       itself may be a sharer). *)
                    let data =
                      if kind = Ptypes.Read_ex then Some (Memimg.read_block home.img ~block:b)
                      else None
                    in
                    let others =
                      List.filter (fun s -> s <> from_domain) (Directory.sharers_list entry)
                    in
                    let others =
                      (* Seeded bug: the home forgets one sharer, which
                         keeps a stale Shared copy past the grant. *)
                      match t.cfg.Config.mutation with
                      | Some Config.Skip_one_invalidation when others <> [] ->
                          t.mutation_fires <- t.mutation_fires + 1;
                          List.tl others
                      | _ -> others
                    in
                    let awaiting = ref 0 in
                    List.iter
                      (fun s ->
                        incr awaiting;
                        let msg =
                          Ptypes.Invalidate
                            { block = b; home_domain = home.dom_id; seq = Directory.stamp entry s }
                        in
                        if s = home.dom_id then
                          (* Self-invalidation goes through the ordered
                             local mailbox so that a pending reply to a
                             local process is applied first. *)
                          Mchan.Mailbox.push home.dom_mailbox msg
                        else send_to_domain t ~cur ~from_node:home.dom_node s msg)
                      others;
                    let txn =
                      {
                        Directory.t_kind = kind;
                        t_requester_domain = from_domain;
                        t_requester_pid = from_pid;
                        t_awaiting = !awaiting;
                        t_data = data;
                      }
                    in
                    if !awaiting = 0 then grant t home ~cur entry txn
                    else entry.Directory.busy <- Some txn));
          (* A request that completed without a transaction may leave the
             entry quiescent with a fresh policy verdict. *)
          maybe_migrate t home ~cur b))
  | _ -> invalid_arg "handle_request: not a request"

(* Grant the pending exclusive transaction: all invalidations are done. *)
and grant t home ~cur entry txn =
  let b = entry.Directory.block in
  let pid = txn.Directory.t_requester_pid in
  if dbg_on then dbg b "[%.9f] HOME grant blk=%d kind=%s to dom%d pid%d" !cur b
    (Format.asprintf "%a" Ptypes.pp_kind txn.Directory.t_kind)
    txn.Directory.t_requester_domain pid;
  let rdom = txn.Directory.t_requester_domain in
  (match txn.Directory.t_kind with
  | Ptypes.Read_ex ->
      let data =
        match txn.Directory.t_data with
        | Some d -> d
        | None -> Memimg.read_block home.img ~block:b
      in
      send_to_pid t ~cur ~from_node:home.dom_node pid
        (Ptypes.Data_reply
           { block = b; data; exclusive = true; to_pid = pid; seq = Directory.stamp entry rdom })
  | Ptypes.Upgrade ->
      send_to_pid t ~cur ~from_node:home.dom_node pid
        (Ptypes.Ack_exclusive { block = b; to_pid = pid; seq = Directory.stamp entry rdom })
  | Ptypes.Sc_upgrade ->
      send_to_pid t ~cur ~from_node:home.dom_node pid
        (Ptypes.Sc_result { block = b; ok = true; to_pid = pid; seq = Directory.stamp entry rdom })
  | Ptypes.Read -> invalid_arg "grant: read transactions complete via writeback");
  entry.Directory.owner <- Some txn.Directory.t_requester_domain;
  Directory.clear_sharers entry;
  finish_txn t home ~cur entry

and finish_txn t home ~cur entry =
  entry.Directory.busy <- None;
  (* Drain deferred requests until one starts a new transaction (which
     re-busies the entry) or the queue empties: a request that completes
     immediately must not strand those queued behind it. *)
  let rec drain () =
    if entry.Directory.busy = None then
      match Queue.take_opt entry.Directory.deferred with
      | None -> ()
      | Some msg ->
          handle_request t home ~cur msg;
          drain ()
  in
  drain ();
  maybe_migrate t home ~cur entry.Directory.block

(* Feed the home-reassignment policy one served request.  Pure
   observation: the verdict ([want_home]) is consumed by [maybe_migrate]
   the next time the entry is quiescent. *)
and observe_request t home entry ~kind ~from_domain =
  (match t.cfg.Config.homing with
  | Config.Static -> ()
  | Config.First_touch ->
      if (not entry.Directory.touched) && from_domain <> home.dom_id then
        entry.Directory.want_home <- Some from_domain
  | Config.Migratory -> (
      match kind with
      | Ptypes.Read -> ()
      | Ptypes.Read_ex | Ptypes.Upgrade | Ptypes.Sc_upgrade ->
          if from_domain = entry.Directory.last_excl then
            entry.Directory.excl_streak <- entry.Directory.excl_streak + 1
          else begin
            entry.Directory.last_excl <- from_domain;
            entry.Directory.excl_streak <- 1
          end;
          (* Gate on the block's region being hot enough, per the
             region-level miss counters — cold regions never migrate. *)
          let ri = Layout.block_region t.layout entry.Directory.block in
          let region_misses =
            Array.fold_left
              (fun acc per_node ->
                acc + per_node.(ri).r_read_misses + per_node.(ri).r_store_misses)
              0 t.rstats
          in
          if
            from_domain <> home.dom_id
            && entry.Directory.excl_streak >= t.cfg.Config.migration_threshold
            && region_misses >= t.cfg.Config.migration_region_min
          then entry.Directory.want_home <- Some from_domain));
  entry.Directory.touched <- true

(* Consume a policy verdict: start the transfer if the entry is
   quiescent.  A verdict set while a transaction or deferred work is
   pending simply waits for the next quiescent moment. *)
and maybe_migrate t home ~cur b =
  if t.cfg.Config.homing <> Config.Static then
    match Directory.find home.dir b with
    | None -> ()
    | Some e -> (
        match e.Directory.want_home with
        | Some dst when dst = home.dom_id -> e.Directory.want_home <- None
        | Some dst
          when e.Directory.busy = None
               && Queue.is_empty e.Directory.deferred
               && t.home.(b) = home.dom_id
               && not (Hashtbl.mem t.transfers b) ->
            e.Directory.want_home <- None;
            initiate_transfer t home ~cur b ~dst
        | _ -> ())

and initiate_transfer t home ~cur b ~dst =
  let e = Directory.entry home.dir b in
  let owner, sharers, seqs = Directory.export e in
  (* With no owner the home's copy is the authoritative data and must
     travel with the entry (the home is always a sharer then). *)
  let data = if owner = None then Some (Memimg.read_block home.img ~block:b) else None in
  Directory.remove home.dir b;
  Hashtbl.replace t.transfers b { tr_from = home.dom_id; tr_to = dst };
  t.home.(b) <- dst;
  (* Leave this domain's own routing hint pointing at itself: once the
     entry has moved on several times, "ask me and get bounced locally"
     is a cheaper start than chasing the one-hop-forward note a
     give-away could record here. *)
  home.homes_out <- home.homes_out + 1;
  if dbg_on then dbg b "[%.9f] XFER blk=%d dom%d -> dom%d owner=%s" !cur b home.dom_id dst
    (match owner with Some o -> string_of_int o | None -> "-");
  cur := !cur +. t.cfg.Config.costs.Config.send;
  send_transport t ~cur ~from_node:home.dom_node dst
    (Ptypes.Home_transfer { block = b; owner; sharers; seqs; data; from_domain = home.dom_id })

let handle_writeback t home ~cur b data ~from_domain =
  let entry = Directory.entry home.dir b in
  match entry.Directory.busy with
  | None -> invalid_arg "writeback with no transaction"
  | Some txn -> (
      cur := !cur +. t.cfg.Config.costs.Config.handler;
      if dbg_on then dbg b "[%.9f] HOME writeback blk=%d txn=%s from dom%d" !cur b
        (Format.asprintf "%a" Ptypes.pp_kind txn.Directory.t_kind) from_domain;
      match txn.Directory.t_kind with
      | Ptypes.Read ->
          (* Downgrade-to-shared recall: the home takes a valid copy.
             When the recalled owner *is* the home domain the data is
             already in this image — and possibly newer than the
             snapshot (a local store may have landed since), so writing
             the snapshot back would lose it. *)
          let data =
            if from_domain = home.dom_id then Memimg.read_block home.img ~block:b
            else begin
              Memimg.write_block home.img ~block:b data;
              replay_recorded_stores t home b;
              data
            end
          in
          set_block_state_shared home t b Ptypes.Shared;
          entry.Directory.owner <- None;
          Directory.clear_sharers entry;
          List.iter (Directory.add_sharer entry)
            [ from_domain; home.dom_id; txn.Directory.t_requester_domain ];
          send_to_pid t ~cur ~from_node:home.dom_node txn.Directory.t_requester_pid
            (Ptypes.Data_reply
               {
                 block = b;
                 data;
                 exclusive = false;
                 to_pid = txn.Directory.t_requester_pid;
                 seq = Directory.stamp entry txn.Directory.t_requester_domain;
               });
          finish_txn t home ~cur entry
      | Ptypes.Read_ex | Ptypes.Upgrade | Ptypes.Sc_upgrade ->
          (* Recall-invalidate: ownership moves; the home image stays
             invalid (flags already there or written by apply_recall at
             the old owner; the home was not a sharer). *)
          entry.Directory.owner <- Some txn.Directory.t_requester_domain;
          Directory.clear_sharers entry;
          (match txn.Directory.t_kind with
          | Ptypes.Sc_upgrade ->
              send_to_pid t ~cur ~from_node:home.dom_node txn.Directory.t_requester_pid
                (Ptypes.Sc_result
                   {
                     block = b;
                     ok = true;
                     to_pid = txn.Directory.t_requester_pid;
                     seq = Directory.stamp entry txn.Directory.t_requester_domain;
                   })
          | _ ->
              send_to_pid t ~cur ~from_node:home.dom_node txn.Directory.t_requester_pid
                (Ptypes.Data_reply
                   {
                     block = b;
                     data;
                     exclusive = true;
                     to_pid = txn.Directory.t_requester_pid;
                     seq = Directory.stamp entry txn.Directory.t_requester_domain;
                   }));
          finish_txn t home ~cur entry)

let handle_inval_ack t home ~cur b =
  let entry = Directory.entry home.dir b in
  match entry.Directory.busy with
  | None -> invalid_arg "inval ack with no transaction"
  | Some txn ->
      txn.Directory.t_awaiting <- txn.Directory.t_awaiting - 1;
      if txn.Directory.t_awaiting = 0 then grant t home ~cur entry txn

(* --- the requester side --- *)

let apply_reply t pcb ~cur msg =
  let d = pcb.dom in
  match msg with
  | Ptypes.Data_reply { block = b; data; exclusive; _ } ->
      cur := !cur +. t.cfg.Config.costs.Config.reply_process;
      if dbg_on then dbg b "[%.9f] REPLY data blk=%d excl=%b at pid%d dom%d (outstanding=%b)" !cur b exclusive
        pcb.pid d.dom_id (Hashtbl.mem pcb.outstanding b);
      Memimg.write_block d.img ~block:b data;
      replay_recorded_stores t d b;
      (match Hashtbl.find_opt pcb.outstanding b with
      | None -> () (* e.g. a prefetch raced with an invalidation *)
      | Some miss ->
          ignore miss.m_stores (* replayed above, together with siblings' *);
          let s = if exclusive then Ptypes.Exclusive else Ptypes.Shared in
          set_block_state_shared d t b s;
          set_block_state_private ~why:"data-reply" pcb t b s;
          miss.m_done <- true;
          Hashtbl.remove pcb.outstanding b;
          if miss.m_kind = MStore then pcb.n_outstanding_stores <- pcb.n_outstanding_stores - 1)
  | Ptypes.Ack_exclusive { block = b; _ } ->
      cur := !cur +. t.cfg.Config.costs.Config.reply_process;
      if dbg_on then dbg b "[%.9f] REPLY ack_excl blk=%d at pid%d dom%d" !cur b pcb.pid d.dom_id;
      (match Hashtbl.find_opt pcb.outstanding b with
      | None -> ()
      | Some miss ->
          (* A sibling's fetch may have overwritten our early-visible
             stores; put them back now that we own the block. *)
          replay_recorded_stores t d b;
          set_block_state_shared d t b Ptypes.Exclusive;
          set_block_state_private ~why:"ack-excl" pcb t b Ptypes.Exclusive;
          miss.m_done <- true;
          Hashtbl.remove pcb.outstanding b;
          if miss.m_kind = MStore then pcb.n_outstanding_stores <- pcb.n_outstanding_stores - 1)
  | Ptypes.Sc_result { block = b; ok; _ } ->
      cur := !cur +. t.cfg.Config.costs.Config.reply_process;
      (match Hashtbl.find_opt pcb.outstanding b with
      | None -> ()
      | Some miss ->
          let really_ok = ref ok in
          if dbg_on then dbg b "[%.9f] SC_RESULT pid%d ok=%b armed=%b" !cur pcb.pid ok
            (match miss.m_sc_store with
             | Some (a, _, _) -> Memimg.monitor_armed d.img ~pid:pcb.pid a
             | None -> false);
          if ok then begin
            (* The home granted exclusivity either way. *)
            set_block_state_shared d t b Ptypes.Exclusive;
            set_block_state_private ~why:"sc-ok" pcb t b Ptypes.Exclusive;
            match miss.m_sc_store with
            | Some (addr, w, v) ->
                (* The grant proves no *remote* write intervened, but a
                   sibling's store or a newly fetched copy of the block
                   since our LL shows as a broken hardware monitor: the
                   SC must then fail (spuriously, which Alpha allows)
                   rather than complete against a stale LL value. *)
                if Memimg.monitor_armed d.img ~pid:pcb.pid addr then
                  Memimg.write ~pid:pcb.pid d.img addr w v
                else really_ok := false
            | None -> ()
          end;
          miss.m_sc_ok <- !really_ok;
          miss.m_done <- true;
          Hashtbl.remove pcb.outstanding b)
  | Ptypes.Downgrade { block = b; to_state; from_domain; _ } ->
      cur := !cur +. t.cfg.Config.costs.Config.downgrade_apply;
      set_block_state_private ~why:"downgrade-msg" pcb t b to_state;
      send_to_domain t ~cur ~from_node:d.dom_node from_domain
        (Ptypes.Downgrade_ack { block = b; from_pid = pcb.pid })
  | _ -> invalid_arg "apply_reply: unexpected message"

let handle_domain_msg t d ~cur ~servicer msg =
  match msg with
  | Ptypes.Request _ -> handle_request t d ~cur msg
  | Ptypes.Invalidate { block = b; home_domain; seq = _ } ->
      apply_invalidate t d ~cur ~home_domain b
  | Ptypes.Recall { block = b; to_shared; home_domain; seq = _ } ->
      cur := !cur +. t.cfg.Config.costs.Config.handler;
      apply_recall t d ~cur ~servicer b ~to_shared ~home_domain
  | Ptypes.Writeback { block = b; data; from_domain } ->
      handle_writeback t d ~cur b data ~from_domain
  | Ptypes.Inval_ack { block = b; _ } ->
      cur := !cur +. t.cfg.Config.costs.Config.reply_process;
      handle_inval_ack t d ~cur b
  | Ptypes.Downgrade_ack { block = b; _ } -> (
      match Hashtbl.find_opt d.pending_local b with
      | None -> ()
      | Some lt ->
          lt.lt_awaiting <- lt.lt_awaiting - 1;
          if lt.lt_awaiting = 0 then begin
            Hashtbl.remove d.pending_local b;
            let home_domain = home_domain_of_block t b in
            complete_recall t d ~cur b ~to_shared:lt.lt_to_shared ~home_domain
          end)
  | Ptypes.Data_reply _ | Ptypes.Ack_exclusive _ | Ptypes.Sc_result _ | Ptypes.Downgrade _ ->
      invalid_arg "handle_domain_msg: process-addressed message in domain mailbox"
  | Ptypes.Home_transfer _ | Ptypes.Home_transfer_ack _ | Ptypes.Home_hint _ ->
      invalid_arg "handle_domain_msg: transfer traffic is applied at the network interface"

(* --- coherence invariant checker (the probe of lib/check) ---

   Four invariant families, cross-checking the directory against every
   domain's shared state table and every process's private state table:

   1. single writer — at most one domain holds a block Exclusive, and
      while one does every other domain is Invalid or Pending;
   2. directory agreement — only while the entry is not busy (a
      transaction in flight legally leaves transient disagreement): an
      owner implies an empty sharer set and an Exclusive/Pending holder,
      no owner means every Shared holder is in the sharer set, and a
      block with no entry is still in its pristine home-only state;
   3. table monotonicity — a private-table state never exceeds its
      domain's shared-table state (private E needs domain E/P, private S
      needs domain S/E/P);
   4. block-extent agreement — when a block is quiet (entry not busy, no
      outstanding miss, deferral or reissue anywhere), every domain
      holding it Shared carries byte-identical data over the block's
      layout extent.  A flag write that overruns its block (the
      [Wrong_block_extent] mutation) corrupts a neighbouring Shared
      replica and trips exactly this family; directory entries must also
      name layout-valid block ids.

   [check_block] is cheap (O(domains x members)) and is run after every
   protocol message, scoped to that message's block and its immediate
   neighbours (flag extents can only overrun into an adjacent block),
   when [Config.check_invariants] is set; [check_quiescent] sweeps the
   whole engine and is meant for the end of a run. *)

exception
  Coherence_violation of { block : int; time : float; violations : string list }

let () =
  Printexc.register_printer (function
    | Coherence_violation { block; time; violations } ->
        Some
          (Printf.sprintf "Protocol.Engine.Coherence_violation (block %d at %.9g: %s)"
             block time
             (String.concat "; " violations))
    | _ -> None)

(* A block is quiet when no transaction, miss, deferred flag write or
   post-batch reissue anywhere in the engine can still touch it: only
   then may family 4 compare Shared replicas byte-for-byte.  A block
   whose directory entry is mid-transfer is never quiet — the entry
   lives in the transport; the home lookup chases the current home. *)
let block_quiet t b =
  (not (Hashtbl.mem t.transfers b))
  && (let home = domain_by_id t (home_domain_of_block t b) in
     match Directory.find home.dir b with
     | Some e -> e.Directory.busy = None && Queue.is_empty e.Directory.deferred
     | None -> true)
  && List.for_all
       (fun d ->
         (not (Hashtbl.mem d.pending_local b))
         && List.for_all
              (fun m ->
                (not (Hashtbl.mem m.outstanding b))
                && (not (List.mem b m.deferred_flags))
                && (not (List.mem b m.watch_blocks))
                && not
                     (List.exists
                        (fun (a, _, _) -> Layout.block_of_addr t.layout a = b)
                        m.reissue))
              d.members)
       t.domains

let check_block t b =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let dom_state d = tab_get d.shared_tab b in
  let domains = t.domains in
  (* family 3: private vs shared monotonicity *)
  List.iter
    (fun d ->
      let ds = dom_state d in
      List.iter
        (fun m ->
          match (tab_get m.private_tab b, ds) with
          | Ptypes.Exclusive, (Ptypes.Invalid | Ptypes.Shared) ->
              err "pid%d private E but dom%d is %c" m.pid d.dom_id (st_char ds)
          | Ptypes.Shared, Ptypes.Invalid ->
              err "pid%d private S but dom%d is I" m.pid d.dom_id
          | _ -> ())
        d.members)
    domains;
  (* family 4: quiet Shared replicas agree over the block's layout extent *)
  (if block_quiet t b then
     let holders = List.filter (fun d -> dom_state d = Ptypes.Shared) domains in
     match holders with
     | [] | [ _ ] -> ()
     | d0 :: rest ->
         let ref_data = Memimg.read_block d0.img ~block:b in
         List.iter
           (fun d ->
             if not (Bytes.equal (Memimg.read_block d.img ~block:b) ref_data) then
               err "dom%d and dom%d disagree on Shared block %d (extent 0x%x+%d)" d0.dom_id
                 d.dom_id b
                 (Layout.block_base t.layout b)
                 (Layout.block_len t.layout b))
           rest);
  (* family 1: single writer *)
  let excl = List.filter (fun d -> dom_state d = Ptypes.Exclusive) domains in
  (match excl with
  | [] | [ _ ] -> ()
  | ds ->
      err "multiple Exclusive holders: [%s]"
        (String.concat "," (List.map (fun d -> string_of_int d.dom_id) ds)));
  (match excl with
  | [ e ] ->
      List.iter
        (fun d ->
          if d != e && dom_state d = Ptypes.Shared then
            err "dom%d Shared while dom%d Exclusive" d.dom_id e.dom_id)
        domains
  | _ -> ());
  (* family 2: directory agreement, only at a quiet entry whose home is
     not in flight — mid-transfer the entry lives in the transport and
     there is nothing at any home to cross-check against.  The lookup
     chases the block's current home, wherever migration put it. *)
  (if Hashtbl.mem t.transfers b then ()
   else
  let home = domain_by_id t (home_domain_of_block t b) in
  match Directory.find home.dir b with
  | None ->
      (* Untouched block: only the home may hold it (its initial copy).
         Pending is a legal transient — a requester marks the block
         Pending before the home has allocated the entry. *)
      List.iter
        (fun d ->
          match dom_state d with
          | Ptypes.Invalid | Ptypes.Pending -> ()
          | s when d.dom_id = home.dom_id ->
              if s <> Ptypes.Shared then
                err "no directory entry but home dom%d is %c" d.dom_id (st_char s)
          | s -> err "no directory entry but dom%d is %c" d.dom_id (st_char s))
        domains
  | Some entry -> (
      match entry.Directory.busy with
      | Some _ -> () (* transaction in flight: transients are legal *)
      | None -> (
          match entry.Directory.owner with
          | Some o ->
              if not (Directory.no_sharers entry) then
                err "owner dom%d with non-empty sharer set [%s]" o
                  (String.concat ","
                     (List.map string_of_int (Directory.sharers_list entry)));
              (match dom_state (domain_by_id t o) with
              | Ptypes.Exclusive | Ptypes.Pending -> ()
              | (Ptypes.Shared | Ptypes.Invalid)
                when List.exists
                       (fun m -> Hashtbl.mem m.outstanding b)
                       (domain_by_id t o).members ->
                  (* Legal transient: the grant is in flight (the owner's
                     miss on this block is still outstanding) while the
                     Pending the owner set at issue has been overwritten —
                     to S by a concurrent sharing writeback at the home, or
                     to I by an invalidation that beat the grant.  Applying
                     the granted reply moves the domain to E. *)
                  t.legal_transients <- t.legal_transients + 1
              | s -> err "directory owner dom%d holds %c" o (st_char s));
              List.iter
                (fun d ->
                  if d.dom_id <> o then
                    match dom_state d with
                    | Ptypes.Shared | Ptypes.Exclusive ->
                        err "dom%d holds %c but dom%d owns the block" d.dom_id
                          (st_char (dom_state d))
                          o
                    | _ -> ())
                domains
          | None ->
              List.iter
                (fun d ->
                  match dom_state d with
                  | Ptypes.Exclusive ->
                      err "dom%d Exclusive but the directory has no owner" d.dom_id
                  | Ptypes.Shared ->
                      if not (Directory.is_sharer entry d.dom_id) then
                        err "dom%d Shared but not in the sharer set [%s]" d.dom_id
                          (String.concat ","
                             (List.map string_of_int (Directory.sharers_list entry)))
                  | _ -> ())
                domains)));
  List.rev !errs


(* Run after a message is applied, scoped to that message's block and
   its immediate neighbours: a flag write overrunning the block's layout
   extent can only land in an adjacent block. *)
let check_msg t msg =
  t.invariant_checks <- t.invariant_checks + 1;
  let b = msg_block msg in
  let check b' =
    if Layout.valid_block t.layout b' then
      match check_block t b' with
      | [] -> ()
      | violations ->
          raise
            (Coherence_violation
               { block = b'; time = Sim.Engine.now (Mchan.Net.engine t.net); violations })
  in
  check b;
  check (b - 1);
  check (b + 1)

(** [check_quiescent t] — full-state sweep for an engine that should be
    at rest: no transaction, message, miss or Pending line may remain,
    and every block must satisfy [check_block].  Returns the violations
    (empty = coherent). *)
let check_quiescent t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  Hashtbl.iter
    (fun b tr ->
      err "block %d: home transfer dom%d -> dom%d still in flight" b tr.tr_from tr.tr_to)
    t.transfers;
  if t.transfer_acks <> t.migrations then
    err "%d home transfers installed but %d acknowledged" t.migrations t.transfer_acks;
  List.iter
    (fun d ->
      if not (Mchan.Mailbox.is_empty d.dom_mailbox) then
        err "dom%d: %d unserviced domain messages" d.dom_id
          (Mchan.Mailbox.length d.dom_mailbox);
      if d.parked_dom <> [] then
        err "dom%d: %d parked domain messages" d.dom_id (List.length d.parked_dom);
      if Hashtbl.length d.pending_local > 0 then
        err "dom%d: %d incomplete local recalls" d.dom_id (Hashtbl.length d.pending_local);
      Directory.iter_entries
        (fun e ->
          if not (Layout.valid_block t.layout e.Directory.block) then
            err "dom%d: directory entry for layout-invalid block %d" d.dom_id e.Directory.block
          else if home_domain_of_block t e.Directory.block <> d.dom_id then
            err "dom%d: directory entry for block %d, whose home is dom%d" d.dom_id
              e.Directory.block
              (home_domain_of_block t e.Directory.block);
          (match e.Directory.busy with
          | Some txn ->
              err "dom%d: block %d busy (%s, awaiting %d)" d.dom_id e.Directory.block
                (Format.asprintf "%a" Ptypes.pp_kind txn.Directory.t_kind)
                txn.Directory.t_awaiting
          | None -> ());
          if not (Queue.is_empty e.Directory.deferred) then
            err "dom%d: block %d has %d deferred requests" d.dom_id e.Directory.block
              (Queue.length e.Directory.deferred))
        d.dir;
      List.iter
        (fun m ->
          if not (Mchan.Mailbox.is_empty m.mailbox) then
            err "pid%d: %d unserviced replies" m.pid (Mchan.Mailbox.length m.mailbox);
          if m.parked <> [] then
            err "pid%d: %d parked replies" m.pid (List.length m.parked);
          Hashtbl.iter
            (fun b _ -> err "pid%d: outstanding miss on block %d" m.pid b)
            m.outstanding;
          if m.n_outstanding_stores <> 0 then
            err "pid%d: %d outstanding stores" m.pid m.n_outstanding_stores)
        d.members)
    t.domains;
  for b = 0 to Layout.n_blocks t.layout - 1 do
    List.iter
      (fun d ->
        if tab_get d.shared_tab b = Ptypes.Pending then
          err "dom%d: block %d stuck Pending" d.dom_id b;
        List.iter
          (fun m ->
            if tab_get m.private_tab b = Ptypes.Pending then
              err "pid%d: block %d stuck Pending (private)" m.pid b)
          d.members)
      t.domains;
    match check_block t b with [] -> () | es -> errs := List.rev_append es !errs
  done;
  List.rev !errs

(* Transfer application happens at the network interface, lexically
   before the checker exists; hand it the per-message sweep now. *)
let () =
  transfer_check := fun t msg -> if t.cfg.Config.check_invariants then check_msg t msg

(** [service pcb] is the poll hook: drains this process's own mailbox
    (replies may only be handled by the requester — the limitation noted
    in Section 6.5) and then the domain mailbox, which any local process
    may service.  Returns the CPU seconds consumed.  Never called from
    fiber context. *)
let service_slow pcb =
  let t = pcb.eng in
  let d = pcb.dom in
  let start = Sim.Engine.now (Mchan.Net.engine t.net) in
  let cur = ref start in
  let apply_own msg =
    pcb.stats.messages_handled <- pcb.stats.messages_handled + 1;
    consume_seq d msg;
    apply_reply t pcb ~cur msg;
    if t.cfg.Config.check_invariants then check_msg t msg
  in
  let apply_dom msg =
    pcb.stats.messages_handled <- pcb.stats.messages_handled + 1;
    consume_seq d msg;
    handle_domain_msg t d ~cur ~servicer:pcb.pid msg;
    if t.cfg.Config.check_invariants then check_msg t msg
  in
  let progress = ref true in
  while !progress do
    progress := false;
    (* 1. Parked replies of this process that are now in order. *)
    let ready, rest = List.partition (in_seq_order d) pcb.parked in
    if ready <> [] then begin
      pcb.parked <- rest;
      List.iter apply_own ready;
      progress := true
    end;
    (* 2. This process's own mailbox (only the requester may handle its
       replies, Section 6.5). *)
    (match Mchan.Mailbox.pop pcb.mailbox with
    | Some msg ->
        progress := true;
        if in_seq_order d msg then apply_own msg else pcb.parked <- pcb.parked @ [ msg ]
    | None -> ());
    (* 3. Parked domain-addressed messages now in order. *)
    let ready, rest = List.partition (in_seq_order d) d.parked_dom in
    if ready <> [] then begin
      d.parked_dom <- rest;
      List.iter apply_dom ready;
      progress := true
    end;
    (* 4. The shared domain mailbox (any local process may serve it). *)
    (match Mchan.Mailbox.pop d.dom_mailbox with
    | Some msg ->
        progress := true;
        if in_seq_order d msg then apply_dom msg else d.parked_dom <- d.parked_dom @ [ msg ]
    | None -> ())
  done;
  (* A sibling's parked reply may have become applicable through our
     domain-side work.  If that sibling is signal-waiting it will never
     look again on its own, so wake the node; a running or ready sibling
     polls soon anyway (and pulsing for it would ping-pong the waiters
     on this node forever). *)
  if
    List.exists
      (fun m ->
        m != pcb
        && m.proc.Sim.Proc.state = Sim.Proc.Waiting
        && List.exists (in_seq_order d) m.parked)
      d.members
  then Sim.Signal.pulse (Mchan.Net.node_signal t.net d.dom_node);
  !cur -. start

(* Idle fast path: polls vastly outnumber message arrivals, and the full
   drain above allocates (closures, [List.partition] pairs) even when
   every queue is empty.  The guard must also cover the end-of-drain
   sibling wake-up: a signal-waiting sibling with an in-order parked
   reply is owed a pulse even when {e this} process has nothing to do,
   so the fast path applies only when no member of the domain holds any
   parked message at all — then the sibling scan is vacuously false and
   skipping the drain is exact. *)
let rec no_parked = function
  | [] -> true
  | m :: rest -> m.parked == [] && no_parked rest

let service pcb =
  let d = pcb.dom in
  if
    d.parked_dom == []
    && Mchan.Mailbox.is_empty pcb.mailbox
    && Mchan.Mailbox.is_empty d.dom_mailbox
    && no_parked d.members
  then 0.0
  else service_slow pcb

(** In SMP-Shasta, processes on the same node can also serve each other's
    {e domain} traffic; this hook additionally drains the mailboxes of
    sibling processes' pending work when they are descheduled is not
    modelled — requests are domain-addressed so no forwarding is needed. *)

(* --- fiber-side entry points --- *)

let charge _pcb dt = if dt > 0.0 then Sim.Proc.work dt

let stall_until pcb ~bucket pred =
  let eng = Mchan.Net.engine pcb.eng.net in
  let t0 = Sim.Engine.now eng in
  Sim.Proc.stall pred;
  let dt = Sim.Engine.now eng -. t0 in
  (match bucket with
  | `Read -> pcb.stats.read_stall <- pcb.stats.read_stall +. dt
  | `Write -> pcb.stats.write_stall <- pcb.stats.write_stall +. dt
  | `Mb -> pcb.stats.mb_stall <- pcb.stats.mb_stall +. dt
  | `None -> ());
  dt

(** [block_state pcb addr] — the (private, domain-shared) state pair of
    the coherence block covering [addr]. *)
let block_state pcb addr =
  let b = Layout.block_of_addr pcb.eng.layout addr in
  (tab_get pcb.private_tab b, tab_get pcb.dom.shared_tab b)

(** [private_state pcb addr] — just the private-table state of the block
    covering [addr]; the allocation-free form of [fst (block_state ...)]
    for the inline-check fast paths. *)
let private_state pcb addr =
  tab_get pcb.private_tab (Layout.block_of_addr pcb.eng.layout addr)

(* Issue a request to the home; non-blocking (caller stalls if desired). *)
let issue pcb b kind mkind ?(sc_store = None) () =
  let t = pcb.eng in
  let miss =
    {
      m_block = b;
      m_kind = mkind;
      m_req = kind;
      m_done = false;
      m_sc_ok = false;
      m_sc_store = sc_store;
      m_stores = [];
    }
  in
  (match Hashtbl.find_opt pcb.outstanding b with
  | Some old ->
      Format.eprintf "ISSUE COLLISION pid%d blk=%d new=%s old=%s old_done=%b@." pcb.pid b
        (match mkind with MRead -> "read" | MStore -> "store" | MSc -> "sc" | MPrefetch -> "pf")
        (match old.m_kind with MRead -> "read" | MStore -> "store" | MSc -> "sc" | MPrefetch -> "pf")
        old.m_done
  | None -> ());
  Hashtbl.replace pcb.outstanding b miss;
  (let r = t.rstats.(pcb.dom.dom_node).(Layout.block_region t.layout b) in
   match mkind with
   | MRead -> r.r_read_misses <- r.r_read_misses + 1
   | MStore | MSc | MPrefetch -> r.r_store_misses <- r.r_store_misses + 1);
  if mkind = MStore then pcb.n_outstanding_stores <- pcb.n_outstanding_stores + 1;
  (match kind with
  | Ptypes.Read | Ptypes.Read_ex ->
      set_block_state_shared pcb.dom t b Ptypes.Pending;
      set_block_state_private ~why:"issue" pcb t b Ptypes.Pending
  | Ptypes.Upgrade | Ptypes.Sc_upgrade ->
      (* Keep the data readable while upgrading: only mark pending in the
         tables, the image still holds valid data. *)
      set_block_state_shared pcb.dom t b Ptypes.Pending;
      set_block_state_private ~why:"issue" pcb t b Ptypes.Pending);
  let cur = ref (Sim.Engine.now (Mchan.Net.engine t.net)) in
  if dbg_on then dbg b "[%.9f] ISSUE %s blk=%d by pid%d dom%d" !cur
    (Format.asprintf "%a" Ptypes.pp_kind kind) b pcb.pid pcb.dom.dom_id;
  (* Route by this domain's own (possibly stale) view of the home map;
     a wrong guess comes back as a bounce with a fresh hint. *)
  send_to_domain t ~cur ~from_node:pcb.dom.dom_node (hinted_home t pcb.dom b)
    (Ptypes.Request { kind; block = b; from_domain = pcb.dom.dom_id; from_pid = pcb.pid });
  charge pcb t.cfg.Config.costs.Config.send;
  miss

(* Reissue stores that executed after a batch while their line had been
   downgraded (Section 4.1), and apply deferred flag writes.  Runs at
   every protocol entry outside a batch. *)
let rec apply_deferred pcb =
  if not pcb.in_batch then begin
    let t = pcb.eng in
    (match pcb.deferred_flags with
    | [] -> ()
    | blocks ->
        pcb.deferred_flags <- [];
        List.iter
          (fun b ->
            (* Only flag blocks that are still invalid. *)
            if tab_get pcb.dom.shared_tab b = Ptypes.Invalid then
              Memimg.write_flags pcb.dom.img ~flag32:t.cfg.Config.flag32 ~block:b)
          blocks);
    pcb.watch_blocks <- [];
    match pcb.reissue with
    | [] -> ()
    | stores ->
        pcb.reissue <- [];
        List.iter
          (fun (addr, w, v) ->
            pcb.stats.reissued_stores <- pcb.stats.reissued_stores + 1;
            reissue_store pcb addr w v)
          (List.rev stores)
  end

and reissue_store pcb addr w v =
  let t = pcb.eng in
  let b = block_of_addr t addr in
  let _, shared = block_state pcb addr in
  match shared with
  | Ptypes.Exclusive ->
      set_block_state_private ~why:"reissue-E" pcb t b Ptypes.Exclusive;
      Memimg.write ~pid:pcb.pid pcb.dom.img addr w v
  | Ptypes.Shared | Ptypes.Invalid | Ptypes.Pending -> (
      match Hashtbl.find_opt pcb.outstanding b with
      | Some miss -> miss.m_stores <- (addr, w, v) :: miss.m_stores
      | None ->
          let kind = if shared = Ptypes.Shared then Ptypes.Upgrade else Ptypes.Read_ex in
          let miss = issue pcb b kind MStore () in
          miss.m_stores <- [ (addr, w, v) ])

(* Ensure the block is readable; blocking.

   The protocol-entry cost is paid up front: between the final state
   inspection and the caller's access there must be no suspension
   (Section 2.3's check/access atomicity — a [charge] yields to the
   scheduler, during which a recall could invalidate the line under us). *)
let ensure_read pcb addr =
  let t = pcb.eng in
  let b = block_of_addr t addr in
  charge pcb t.cfg.Config.costs.Config.intra_node_hit;
  let rec go () =
    match Hashtbl.find_opt pcb.outstanding b with
    | Some miss ->
        ignore (stall_until pcb ~bucket:`Read (fun () -> miss.m_done));
        go ()
    | None -> (
        let _, shared = block_state pcb addr in
        match shared with
        | Ptypes.Shared | Ptypes.Exclusive ->
            (* Intra-node resolution: another process of the domain holds
               the data; just refresh the private table. *)
            pcb.stats.intra_hits <- pcb.stats.intra_hits + 1;
            set_block_state_private ~why:"intra-read" pcb t b
              (if shared = Ptypes.Exclusive then Ptypes.Exclusive else Ptypes.Shared)
        | Ptypes.Invalid | Ptypes.Pending ->
            pcb.stats.read_misses <- pcb.stats.read_misses + 1;
            let miss = issue pcb b Ptypes.Read MRead () in
            ignore (stall_until pcb ~bucket:`Read (fun () -> miss.m_done));
            go ())
  in
  go ()

let flag_value t (w : Alpha.Insn.width) =
  let f32 = t.cfg.Config.flag32 in
  match w with
  | Alpha.Insn.W32 -> Int64.of_int32 f32
  | Alpha.Insn.W64 ->
      let lo = Int64.logand (Int64.of_int32 f32) 0xFFFFFFFFL in
      Int64.logor (Int64.shift_left lo 32) lo

(** [load_miss pcb value addr w] — the slow path of the inline load check:
    the loaded [value] equalled the flag.  Distinguishes false misses from
    real ones; returns the definitive value.  Loops like the re-executed
    inline check does: the line may be invalidated again in the very poll
    pass that completed the miss (reply and a later invalidation applied
    back-to-back, in order). *)
let rec load_miss pcb addr w =
  let t = pcb.eng in
  charge pcb t.cfg.Config.costs.Config.miss_entry;
  apply_deferred pcb;
  let _, shared = block_state pcb addr in
  match shared with
  | Ptypes.Shared | Ptypes.Exclusive ->
      (* False miss: the data genuinely contains the flag value. *)
      pcb.stats.false_misses <- pcb.stats.false_misses + 1;
      Memimg.read pcb.dom.img addr w
  | Ptypes.Invalid | Ptypes.Pending ->
      ensure_read pcb addr;
      let v = Memimg.read pcb.dom.img addr w in
      if v = flag_value t w then load_miss pcb addr w else v

(* Ensure the block is writable.  Like [ensure_read], all costs are
   charged before the final state inspection: the caller's store follows
   with no intervening suspension, so the exclusivity decision cannot go
   stale (the Section 2.3 race).  For blocking (SC) stores the loop
   re-inspects after every stall; for non-blocking stores an outstanding
   miss is enough — [raw_write] records the store for replay. *)
let ensure_write pcb addr ~blocking =
  let t = pcb.eng in
  let b = block_of_addr t addr in
  charge pcb t.cfg.Config.costs.Config.intra_node_hit;
  let rec go () =
    match Hashtbl.find_opt pcb.outstanding b with
    | Some miss ->
        if blocking then begin
          ignore (stall_until pcb ~bucket:`Write (fun () -> miss.m_done));
          go ()
        end
        (* Non-blocking: the store will be recorded against the
           outstanding miss by [raw_write]. *)
    | None -> (
        let _, shared = block_state pcb addr in
        match shared with
        | Ptypes.Exclusive ->
            pcb.stats.intra_hits <- pcb.stats.intra_hits + 1;
            set_block_state_private ~why:"intra-write" pcb t b Ptypes.Exclusive
        | Ptypes.Shared ->
            pcb.stats.store_misses <- pcb.stats.store_misses + 1;
            let miss = issue pcb b Ptypes.Upgrade MStore () in
            if blocking then begin
              ignore (stall_until pcb ~bucket:`Write (fun () -> miss.m_done));
              go ()
            end
        | Ptypes.Invalid ->
            pcb.stats.store_misses <- pcb.stats.store_misses + 1;
            let miss = issue pcb b Ptypes.Read_ex MStore () in
            if blocking then begin
              ignore (stall_until pcb ~bucket:`Write (fun () -> miss.m_done));
              go ()
            end
        | Ptypes.Pending ->
            (* A recall of our exclusive copy, or a sibling's miss, is in
               flight: go through the home. *)
            pcb.stats.store_misses <- pcb.stats.store_misses + 1;
            let miss = issue pcb b Ptypes.Read_ex MStore () in
            if blocking then begin
              ignore (stall_until pcb ~bucket:`Write (fun () -> miss.m_done));
              go ()
            end)
  in
  go ()

(** [store_miss pcb addr] — slow path of the inline store check.  Under
    [Sc] the store stalls until all invalidations are acknowledged; under
    [Rc] it is non-blocking, bounded by [max_outstanding_stores]. *)
let store_miss pcb addr =
  let t = pcb.eng in
  charge pcb t.cfg.Config.costs.Config.miss_entry;
  apply_deferred pcb;
  let blocking = t.cfg.Config.model = Config.Sc in
  if (not blocking) && pcb.n_outstanding_stores >= t.cfg.Config.max_outstanding_stores then
    ignore
      (stall_until pcb ~bucket:`Write (fun () ->
           pcb.n_outstanding_stores < t.cfg.Config.max_outstanding_stores));
  ensure_write pcb addr ~blocking

(** Raw memory access used by the runtime for the actual load/store
    instructions.  Stores are intercepted: while a miss is outstanding on
    the block, the store is recorded for replay over the arriving data;
    after a batch, stores to since-downgraded lines are recorded for
    reissue (Section 4.1). *)
let raw_read pcb addr w = Memimg.read pcb.dom.img addr w

(** [raw_read64 pcb addr] — width-free 8-byte read for the API-mode fast
    paths; behaviourally [raw_read pcb addr W64]. *)
let raw_read64 pcb addr = Memimg.read64 pcb.dom.img addr

(** Region copies for OS syscall buffers (post-validation DMA). *)
let raw_blit_out pcb ~addr ~len buf off = Memimg.blit_out pcb.dom.img ~addr ~len buf off

let raw_blit_in pcb ~addr buf off len = Memimg.blit_in pcb.dom.img ~addr buf off len

(** Raw hardware LL/SC against the node image (monitors per process). *)
let raw_ll pcb addr w = Memimg.ll pcb.dom.img ~pid:pcb.pid addr w

let raw_sc pcb addr w v = Memimg.sc pcb.dom.img ~pid:pcb.pid addr w v

let raw_write pcb addr w v =
  let t = pcb.eng in
  let b = block_of_addr t addr in
  if dbg_on then dbg b "[%.9f] WRITE 0x%x=%Ld pid%d dom%d (outstanding=%b st=%c/%c)"
    (Sim.Engine.now (Mchan.Net.engine t.net)) addr v pcb.pid pcb.dom.dom_id
    (Hashtbl.mem pcb.outstanding b)
    (Ptypes.state_to_char (tab_get pcb.private_tab b))
    (Ptypes.state_to_char (tab_get pcb.dom.shared_tab b));
  (* The dominant case — no miss outstanding, no watched blocks — must
     not hash or allocate. *)
  (if Hashtbl.length pcb.outstanding > 0 || pcb.watch_blocks <> [] then
     match Hashtbl.find_opt pcb.outstanding b with
     | Some miss -> miss.m_stores <- (addr, w, v) :: miss.m_stores
     | None ->
         if List.mem b pcb.watch_blocks then begin
           let _, shared = block_state pcb addr in
           match shared with
           | Ptypes.Exclusive -> ()
           | Ptypes.Shared | Ptypes.Invalid | Ptypes.Pending ->
               pcb.reissue <- (addr, w, v) :: pcb.reissue
         end);
  Memimg.write ~pid:pcb.pid pcb.dom.img addr w v

(** [raw_write64 pcb addr v] — 8-byte store fast path: behaviourally
    [raw_write pcb addr W64 v], skipping the block lookup and hashing
    when no miss is outstanding and nothing is watched or traced. *)
let raw_write64 pcb addr v =
  if dbg_on || Hashtbl.length pcb.outstanding > 0 || pcb.watch_blocks <> [] then
    raw_write pcb addr Alpha.Insn.W64 v
  else Memimg.write64 ~pid:pcb.pid pcb.dom.img addr v

(** [mb pcb] — the protocol part of a memory barrier: complete all
    outstanding (non-blocking) stores and service pending invalidations. *)
let mb pcb =
  let t = pcb.eng in
  charge pcb (Config.mb_cost t.cfg);
  apply_deferred pcb;
  if pcb.n_outstanding_stores > 0 then
    ignore (stall_until pcb ~bucket:`Mb (fun () -> pcb.n_outstanding_stores = 0))

(** [poll pcb] — fiber-side poll (the inline 3-instruction poll's cycle
    cost is charged by the interpreter); message servicing itself happens
    through the scheduler's poll hook, so nothing to do here beyond
    deferred work. *)
let poll pcb = apply_deferred pcb

(** [batch pcb accesses] — the batch miss handler (Sections 2.2, 4.1):
    bring every line of the batch into the needed state, issuing the
    fetches in parallel, then let the batched code run.  Lines that are
    invalidated or downgraded before the batched code executes are
    handled by deferred flag writes and store reissues. *)
let batch pcb accesses =
  let t = pcb.eng in
  charge pcb t.cfg.Config.costs.Config.miss_entry;
  apply_deferred pcb;
  let blocks_of (addr, w, _) =
    (* An access can straddle a block boundary only if misaligned, which
       the interpreter rejects; a single block per access suffices. *)
    ignore w;
    block_of_addr t addr
  in
  pcb.in_batch <- true;
  pcb.batch_blocks <- List.sort_uniq compare (List.map blocks_of accesses);
  let misses = ref [] in
  List.iter
    (fun (addr, _w, kind) ->
      let b = block_of_addr t addr in
      match Hashtbl.find_opt pcb.outstanding b with
      | Some miss -> misses := miss :: !misses
      | None -> (
          let _, shared = block_state pcb addr in
          match (kind, shared) with
          | _, Ptypes.Exclusive ->
              set_block_state_private pcb t b Ptypes.Exclusive
          | Alpha.Insn.Load_acc, Ptypes.Shared ->
              set_block_state_private pcb t b Ptypes.Shared
          | Alpha.Insn.Load_acc, (Ptypes.Invalid | Ptypes.Pending) ->
              pcb.stats.read_misses <- pcb.stats.read_misses + 1;
              misses := issue pcb b Ptypes.Read MRead () :: !misses
          | Alpha.Insn.Store_acc, Ptypes.Shared ->
              pcb.stats.store_misses <- pcb.stats.store_misses + 1;
              misses := issue pcb b Ptypes.Upgrade MStore () :: !misses
          | Alpha.Insn.Store_acc, (Ptypes.Invalid | Ptypes.Pending) ->
              pcb.stats.store_misses <- pcb.stats.store_misses + 1;
              misses := issue pcb b Ptypes.Read_ex MStore () :: !misses))
    accesses;
  (match !misses with
  | [] -> ()
  | ms -> ignore (stall_until pcb ~bucket:`Read (fun () -> List.for_all (fun m -> m.m_done) ms)));
  pcb.in_batch <- false;
  (* Watch the store targets until the next protocol entry. *)
  pcb.watch_blocks <-
    List.sort_uniq compare
      (List.filter_map
         (fun (addr, _w, kind) ->
           match kind with
           | Alpha.Insn.Store_acc -> Some (block_of_addr t addr)
           | Alpha.Insn.Load_acc -> None)
         accesses);
  pcb.batch_blocks <- []

(** [ll_ensure pcb addr] — inline code before a load-locked: fetch the
    line if needed and remember whether it was exclusive (deciding the
    hardware vs protocol path for the following SC, Section 3.1.2). *)
let rec ll_ensure pcb addr =
  let t = pcb.eng in
  apply_deferred pcb;
  match Hashtbl.find_opt pcb.outstanding (block_of_addr t addr) with
  | Some miss ->
      (* One of our own misses (e.g. a non-blocking store upgrade) is in
         flight on this block; wait for it before deciding the LL path. *)
      ignore (stall_until pcb ~bucket:`Read (fun () -> miss.m_done));
      ll_ensure pcb addr
  | None ->
  let private_s, shared = block_state pcb addr in
  (match shared with
  | Ptypes.Invalid | Ptypes.Pending ->
      charge pcb t.cfg.Config.costs.Config.miss_entry;
      ensure_read pcb addr
  | Ptypes.Shared | Ptypes.Exclusive -> (
      match private_s with
      | Ptypes.Invalid | Ptypes.Pending ->
          set_block_state_private ~why:"ll-fix" pcb t (block_of_addr t addr)
            (if shared = Ptypes.Exclusive then Ptypes.Exclusive else Ptypes.Shared)
      | Ptypes.Shared | Ptypes.Exclusive -> ()));
  let private_s, _ = block_state pcb addr in
  pcb.last_ll <-
    (if private_s = Ptypes.Exclusive then Some (block_of_addr t addr) else None)

(** [sc_check pcb addr w v] — inline code before a store-conditional. *)
let rec sc_check pcb addr w v =
  let t = pcb.eng in
  apply_deferred pcb;
  let b = block_of_addr t addr in
  match Hashtbl.find_opt pcb.outstanding b with
  | Some miss ->
      ignore (stall_until pcb ~bucket:`Write (fun () -> miss.m_done));
      sc_check pcb addr w v
  | None ->
  let private_s, shared = block_state pcb addr in
  if dbg_on then dbg b "[%.9f] SC_CHECK pid%d private=%c shared=%c last_ll=%b"
    (Sim.Engine.now (Mchan.Net.engine t.net)) pcb.pid (Ptypes.state_to_char private_s)
    (Ptypes.state_to_char shared) (pcb.last_ll = Some b);
  match (private_s, shared) with
  | Ptypes.Exclusive, _ when pcb.last_ll = Some b ->
      (* Fast path: run the SC in hardware; the memory-image monitor
         decides success. *)
      Alpha.Runtime.Run_in_hardware
  | _, Ptypes.Exclusive ->
      set_block_state_private ~why:"sc-intra" pcb t b Ptypes.Exclusive;
      Alpha.Runtime.Run_in_hardware
  | _, Ptypes.Shared ->
      pcb.stats.sc_misses <- pcb.stats.sc_misses + 1;
      charge pcb t.cfg.Config.costs.Config.miss_entry;
      let miss = issue pcb b Ptypes.Sc_upgrade MSc ~sc_store:(Some (addr, w, v)) () in
      ignore (stall_until pcb ~bucket:`Write (fun () -> miss.m_done));
      Alpha.Runtime.Handled miss.m_sc_ok
  | _, (Ptypes.Invalid | Ptypes.Pending) ->
      (* The line was lost since the LL: the SC fails without any
         protocol traffic. *)
      pcb.stats.sc_misses <- pcb.stats.sc_misses + 1;
      Alpha.Runtime.Handled false

(** [prefetch_excl pcb addr] — non-binding exclusive prefetch inserted
    before LL/SC loops (Section 3.1.2). *)
let prefetch_excl pcb addr =
  let t = pcb.eng in
  let b = block_of_addr t addr in
  if not (Hashtbl.mem pcb.outstanding b) then begin
    let _, shared = block_state pcb addr in
    match shared with
    | Ptypes.Exclusive | Ptypes.Pending -> ()
    | Ptypes.Shared -> ignore (issue pcb b Ptypes.Upgrade MPrefetch ())
    | Ptypes.Invalid -> ignore (issue pcb b Ptypes.Read_ex MPrefetch ())
  end

(** [word_is_flag pcb addr] — used by the API-mode runtime to emulate the
    inline value comparison. *)
let word_is_flag pcb addr = Memimg.word_is_flag pcb.dom.img ~flag32:pcb.eng.cfg.Config.flag32 addr

let stats pcb = pcb.stats
let config t = t.cfg
let net t = t.net

(** Times the seeded [Config.mutation] bug was exercised. *)
let mutation_fires t = t.mutation_fires

(** Per-message invariant sweeps run so far (0 unless [check_invariants]). *)
let invariant_checks t = t.invariant_checks

let legal_transients t = t.legal_transients

(** [(migrations, bounces, in_flight)] — completed home transfers,
    requests bounced off a stale or in-flight home, and transfers whose
    entry is still in the transport (0 at quiescence). *)
let migration_stats t = (t.migrations, t.bounces, Hashtbl.length t.transfers)

(** Per-node [(entries received, entries given away, bounces taken)],
    for the cluster's per-node report. *)
let migration_by_node t =
  let nodes = (Mchan.Net.config t.net).Mchan.Net.nodes in
  let a = Array.make nodes (0, 0, 0) in
  List.iter
    (fun d ->
      let i, o, bn = a.(d.dom_node) in
      a.(d.dom_node) <- (i + d.homes_in, o + d.homes_out, bn + d.dom_bounces))
    t.domains;
  a

(** Per-region protocol traffic counters, indexed like the layout's
    regions.  A fresh snapshot summing the per-node shards. *)
let region_stats t =
  Array.init (Layout.n_regions t.layout) (fun ri ->
      Array.fold_left
        (fun acc per_node ->
          let r = per_node.(ri) in
          {
            r_read_misses = acc.r_read_misses + r.r_read_misses;
            r_store_misses = acc.r_store_misses + r.r_store_misses;
            r_invals = acc.r_invals + r.r_invals;
            r_recalls = acc.r_recalls + r.r_recalls;
            r_data_bytes = acc.r_data_bytes + r.r_data_bytes;
          })
        { r_read_misses = 0; r_store_misses = 0; r_invals = 0; r_recalls = 0; r_data_bytes = 0 }
        t.rstats)

(** [pp_layout_report ppf t] — per-region protocol traffic table.  The
    cluster layer wraps this with allocator fragmentation columns. *)
let pp_layout_report ppf t =
  Format.fprintf ppf "%-10s %5s %7s %9s %9s %7s %7s %10s@." "region" "block" "blocks"
    "read-miss" "store-miss" "invals" "recalls" "data-bytes";
  Array.iteri
    (fun ri r ->
      let reg = Layout.region t.layout ri in
      Format.fprintf ppf "%-10s %5d %7d %9d %9d %7d %7d %10d@." reg.Layout.r_name
        reg.Layout.r_block reg.Layout.r_n_blocks r.r_read_misses r.r_store_misses r.r_invals
        r.r_recalls r.r_data_bytes)
    (region_stats t)
