(** Per-home directory state.

    A home domain keeps, for every block it is home to, the current owner
    (a domain holding the block exclusive), the sharer set, and — while a
    coherence transaction is in flight — a busy record.  Conflicting
    requests arriving while busy are deferred in FIFO order, which is what
    serialises writes to the same location (a requirement of all the
    commercial memory models of Section 3.2.2).

    With the sharded directory, entries are no longer pinned to the home
    chosen at [init]: {!export} serialises an entry for a [Home_transfer]
    message and {!install} rebuilds it at the new home, sequence-number
    table included so receivers' in-order delivery continues seamlessly
    across the move. *)

type txn = {
  t_kind : Ptypes.req_kind;
  t_requester_domain : Ptypes.domain_id;
  t_requester_pid : int;
  mutable t_awaiting : int;  (** outstanding invalidation acks / writeback *)
  t_data : Bytes.t option;  (** snapshot to forward, when taken at txn start *)
}

type entry = {
  block : Ptypes.block_id;
  mutable owner : Ptypes.domain_id option;
  mutable sharers : Bytes.t;  (** bitset, bit [d] set iff domain [d] shares the block *)
  mutable sharers_order : Ptypes.domain_id list;
      (** the same set, most-recently-added first — the order the home
          fans out invalidations in, kept identical to the historical
          list representation so simulated timing is unchanged *)
  mutable busy : txn option;
  deferred : Ptypes.msg Queue.t;
  next_seq : (Ptypes.domain_id, int) Hashtbl.t;
      (** next sequence number per destination domain (see {!Ptypes.msg}) *)
  (* Home-reassignment policy observations (Config.homing): *)
  mutable touched : bool;  (** a request has been served for this block *)
  mutable last_excl : Ptypes.domain_id;  (** last exclusive requester, -1 = none *)
  mutable excl_streak : int;  (** consecutive exclusive requests from [last_excl] *)
  mutable want_home : Ptypes.domain_id option;
      (** policy verdict, consumed when the entry next goes quiescent *)
}

type t = { entries : (Ptypes.block_id, entry) Hashtbl.t; home_domain : Ptypes.domain_id }

(* The sharer set is a growable bitset (one bit per domain), so the only
   cap on domain ids is a sanity bound — 64-node and larger clusters
   need more domains than an int-wide mask could hold. *)
let max_domains = 4096

let check_domain d =
  if d < 0 || d >= max_domains then
    invalid_arg (Printf.sprintf "Directory: domain id %d outside 0..%d" d (max_domains - 1))

let create ~home_domain =
  check_domain home_domain;
  { entries = Hashtbl.create 1024; home_domain }

(* --- sharer bitset --- *)

let bitset_of_list ds =
  let top = List.fold_left max 0 ds in
  let bs = Bytes.make ((top / 8) + 1) '\000' in
  List.iter
    (fun d ->
      let i = d / 8 in
      Bytes.set bs i (Char.chr (Char.code (Bytes.get bs i) lor (1 lsl (d mod 8)))))
    ds;
  bs

let bit_set bs d =
  let i = d / 8 in
  i < Bytes.length bs && Char.code (Bytes.get bs i) land (1 lsl (d mod 8)) <> 0

(** New entries are born with the home domain as the only sharer: the
    home's memory image is initialised with valid (zero) data. *)
let entry t block =
  match Hashtbl.find_opt t.entries block with
  | Some e -> e
  | None ->
      let e =
        {
          block;
          owner = None;
          sharers = bitset_of_list [ t.home_domain ];
          sharers_order = [ t.home_domain ];
          busy = None;
          deferred = Queue.create ();
          next_seq = Hashtbl.create 4;
          touched = false;
          last_excl = -1;
          excl_streak = 0;
          want_home = None;
        }
      in
      Hashtbl.replace t.entries block e;
      e

(** [find t block] is the entry for [block], without allocating one —
    the invariant checker must be able to look without perturbing. *)
let find t block = Hashtbl.find_opt t.entries block

(** [iter_entries f t] applies [f] to every allocated entry. *)
let iter_entries f t = Hashtbl.iter (fun _ e -> f e) t.entries

let is_sharer e d = bit_set e.sharers d

let add_sharer e d =
  check_domain d;
  if not (bit_set e.sharers d) then begin
    let i = d / 8 in
    if i >= Bytes.length e.sharers then begin
      let grown = Bytes.make (i + 1) '\000' in
      Bytes.blit e.sharers 0 grown 0 (Bytes.length e.sharers);
      e.sharers <- grown
    end;
    Bytes.set e.sharers i (Char.chr (Char.code (Bytes.get e.sharers i) lor (1 lsl (d mod 8))));
    e.sharers_order <- d :: e.sharers_order
  end

let remove_sharer e d =
  if bit_set e.sharers d then begin
    let i = d / 8 in
    Bytes.set e.sharers i
      (Char.chr (Char.code (Bytes.get e.sharers i) land lnot (1 lsl (d mod 8))));
    e.sharers_order <- List.filter (fun x -> x <> d) e.sharers_order
  end

let clear_sharers e =
  Bytes.fill e.sharers 0 (Bytes.length e.sharers) '\000';
  e.sharers_order <- []

let no_sharers e = e.sharers_order = []

(** [sharers_list e] — the sharer set as a domain-id list, most recently
    added first; compatibility accessor for fan-out, the invariant
    checker and the pretty-printing paths (membership tests use the mask
    directly). *)
let sharers_list e = e.sharers_order

(** [stamp e d] allocates the next sequence number for messages from this
    entry's home to domain [d]. *)
let stamp e d =
  let n = Option.value (Hashtbl.find_opt e.next_seq d) ~default:1 in
  Hashtbl.replace e.next_seq d (n + 1);
  n

(* --- entry transfer (sharded directory) --- *)

(** [export e] — the wire form of a quiescent entry: owner, sharer order
    and the per-destination sequence table.  The caller must ensure
    [e.busy = None] and an empty deferral queue; those cannot move. *)
let export e =
  if e.busy <> None || not (Queue.is_empty e.deferred) then
    invalid_arg "Directory.export: entry not quiescent";
  let seqs = Hashtbl.fold (fun d n acc -> (d, n) :: acc) e.next_seq [] in
  (e.owner, e.sharers_order, List.sort compare seqs)

(** [remove t block] — drop the entry after exporting it; the block's
    directory state now lives in the transport. *)
let remove t block = Hashtbl.remove t.entries block

(** [install t ~block ~owner ~sharers ~seqs] — rebuild a transferred
    entry at its new home.  [sharers] is most-recently-added first, as
    {!export} produced it; the sequence table continues where the old
    home stopped, so receivers' in-order apply logic never notices the
    move. *)
let install t ~block ~owner ~sharers ~seqs =
  if Hashtbl.mem t.entries block then
    invalid_arg (Printf.sprintf "Directory.install: entry for block %d already present" block);
  List.iter check_domain sharers;
  let e =
    {
      block;
      owner;
      sharers = (match sharers with [] -> Bytes.make 1 '\000' | ds -> bitset_of_list ds);
      sharers_order = sharers;
      busy = None;
      deferred = Queue.create ();
      next_seq = Hashtbl.create (max 4 (List.length seqs));
      touched = true;
      last_excl = -1;
      excl_streak = 0;
      want_home = None;
    }
  in
  List.iter (fun (d, n) -> Hashtbl.replace e.next_seq d n) seqs;
  Hashtbl.replace t.entries block e;
  e
