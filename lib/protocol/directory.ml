(** Per-home directory state.

    A home domain keeps, for every block it is home to, the current owner
    (a domain holding the block exclusive), the sharer set, and — while a
    coherence transaction is in flight — a busy record.  Conflicting
    requests arriving while busy are deferred in FIFO order, which is what
    serialises writes to the same location (a requirement of all the
    commercial memory models of Section 3.2.2). *)

type txn = {
  t_kind : Ptypes.req_kind;
  t_requester_domain : Ptypes.domain_id;
  t_requester_pid : int;
  mutable t_awaiting : int;  (** outstanding invalidation acks / writeback *)
  t_data : Bytes.t option;  (** snapshot to forward, when taken at txn start *)
}

type entry = {
  block : Ptypes.block_id;
  mutable owner : Ptypes.domain_id option;
  mutable sharers : int;  (** bitmask, bit [d] set iff domain [d] shares the block *)
  mutable sharers_order : Ptypes.domain_id list;
      (** the same set, most-recently-added first — the order the home
          fans out invalidations in, kept identical to the historical
          list representation so simulated timing is unchanged *)
  mutable busy : txn option;
  deferred : Ptypes.msg Queue.t;
  next_seq : (Ptypes.domain_id, int) Hashtbl.t;
      (** next sequence number per destination domain (see {!Ptypes.msg}) *)
}

type t = { entries : (Ptypes.block_id, entry) Hashtbl.t; home_domain : Ptypes.domain_id }

(* The sharer set is an int bitmask, so domain ids must fit in a word. *)
let max_domains = Sys.int_size - 1

let check_domain d =
  if d < 0 || d >= max_domains then
    invalid_arg (Printf.sprintf "Directory: domain id %d outside 0..%d" d (max_domains - 1))

let create ~home_domain =
  check_domain home_domain;
  { entries = Hashtbl.create 1024; home_domain }

(** New entries are born with the home domain as the only sharer: the
    home's memory image is initialised with valid (zero) data. *)
let entry t block =
  match Hashtbl.find_opt t.entries block with
  | Some e -> e
  | None ->
      let e =
        {
          block;
          owner = None;
          sharers = 1 lsl t.home_domain;
          sharers_order = [ t.home_domain ];
          busy = None;
          deferred = Queue.create ();
          next_seq = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.entries block e;
      e

(** [find t block] is the entry for [block], without allocating one —
    the invariant checker must be able to look without perturbing. *)
let find t block = Hashtbl.find_opt t.entries block

(** [iter_entries f t] applies [f] to every allocated entry. *)
let iter_entries f t = Hashtbl.iter (fun _ e -> f e) t.entries

let is_sharer e d = e.sharers land (1 lsl d) <> 0

let add_sharer e d =
  check_domain d;
  if e.sharers land (1 lsl d) = 0 then begin
    e.sharers <- e.sharers lor (1 lsl d);
    e.sharers_order <- d :: e.sharers_order
  end

let remove_sharer e d =
  if e.sharers land (1 lsl d) <> 0 then begin
    e.sharers <- e.sharers land lnot (1 lsl d);
    e.sharers_order <- List.filter (fun x -> x <> d) e.sharers_order
  end

let clear_sharers e =
  e.sharers <- 0;
  e.sharers_order <- []

let no_sharers e = e.sharers = 0

(** [sharers_list e] — the sharer set as a domain-id list, most recently
    added first; compatibility accessor for fan-out, the invariant
    checker and the pretty-printing paths (membership tests use the mask
    directly). *)
let sharers_list e = e.sharers_order

(** [stamp e d] allocates the next sequence number for messages from this
    entry's home to domain [d]. *)
let stamp e d =
  let n = Option.value (Hashtbl.find_opt e.next_seq d) ~default:1 in
  Hashtbl.replace e.next_seq d (n + 1);
  n
