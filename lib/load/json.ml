(** Minimal JSON values and a deterministic printer.

    The load subsystem, the serve CLI and the benchmark harness all emit
    machine-readable results (the [BENCH_*.json] trajectory files); this
    keeps them dependency-free and byte-reproducible: the same value
    always prints to the same string, so a fixed seed yields a
    bit-identical report. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.12g keeps latencies in microseconds exact to well below a cycle
   while printing identically across runs; non-finite floats have no
   JSON spelling and become null. *)
let float_str x =
  if Float.is_nan x || x = infinity || x = neg_infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float x -> Buffer.add_string b (float_str x)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b v;
  Buffer.contents b

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc

(** [emit ~file ~bench ?meta fields] — the shared report envelope: a
    deterministic JSON document tagged with the producing bench/tool
    name, so every machine-readable artifact (BENCH_*.json trajectory
    files, serve reports, lint reports) is self-describing and has the
    same top-level shape. *)
let emit ~file ~bench ?(meta = []) fields =
  write_file file (Obj (("bench", Str bench) :: (meta @ fields)));
  Printf.printf "wrote %s\n" file
