(** Open-loop arrival processes.

    A closed-loop script (each client waits for its previous request)
    can never drive the system past its knee: arrival rate collapses to
    service rate and tail latency stays flat.  The serving benchmarks
    instead draw arrival instants from a seeded stochastic process that
    keeps offering load no matter how slow the server gets.

    Two processes are provided:

    - [Poisson]: exponential inter-arrivals at a fixed rate λ — the
      standard open-loop model;
    - [Mmpp]: a two-state Markov-modulated Poisson process — dwell in a
      quiet state at [rate0] for an exponential time of mean [dwell0],
      then burst at [rate1] for mean [dwell1], and so on.  This is the
      bursty, asymmetric demand that closed-loop TPC scripts cannot
      express.

    All randomness comes from {!Sim.Rng}, so a given seed reproduces the
    identical arrival sequence bit for bit. *)

type process =
  | Poisson of { rate : float }
  | Mmpp of { rate0 : float; dwell0 : float; rate1 : float; dwell1 : float }

let validate = function
  | Poisson { rate } -> if rate <= 0.0 then invalid_arg "Arrival: rate must be positive"
  | Mmpp { rate0; dwell0; rate1; dwell1 } ->
      if rate0 <= 0.0 || rate1 <= 0.0 || dwell0 <= 0.0 || dwell1 <= 0.0 then
        invalid_arg "Arrival: MMPP rates and dwell times must be positive"

(** [mean_rate p] — the long-run arrival rate (requests/second). *)
let mean_rate = function
  | Poisson { rate } -> rate
  | Mmpp { rate0; dwell0; rate1; dwell1 } ->
      ((rate0 *. dwell0) +. (rate1 *. dwell1)) /. (dwell0 +. dwell1)

(** [scale_to p target] — [p] with every rate scaled so the long-run
    mean is [target]; preserves the burst shape, which is how one MMPP
    spec is swept across offered loads. *)
let scale_to p target =
  let f = target /. mean_rate p in
  match p with
  | Poisson { rate } -> Poisson { rate = rate *. f }
  | Mmpp m -> Mmpp { m with rate0 = m.rate0 *. f; rate1 = m.rate1 *. f }

type t = {
  rng : Sim.Rng.t;
  proc : process;
  mutable state : int;  (** MMPP: 0 = quiet, 1 = burst *)
  mutable dwell_left : float;
}

let create ~seed proc =
  validate proc;
  let rng = Sim.Rng.create seed in
  let dwell_left =
    match proc with
    | Poisson _ -> 0.0
    | Mmpp { dwell0; _ } -> Sim.Rng.exponential rng ~mean:dwell0
  in
  { rng; proc; state = 0; dwell_left }

(** [next t] — the next inter-arrival time, seconds. *)
let next t =
  match t.proc with
  | Poisson { rate } -> Sim.Rng.exponential t.rng ~mean:(1.0 /. rate)
  | Mmpp { rate0; dwell0; rate1; dwell1 } ->
      (* Draw at the current state's rate; if the candidate falls past
         the end of the dwell, move to the state boundary and redraw —
         exact by memorylessness of the exponential. *)
      let rec go acc =
        let rate = if t.state = 0 then rate0 else rate1 in
        let dt = Sim.Rng.exponential t.rng ~mean:(1.0 /. rate) in
        if dt <= t.dwell_left then begin
          t.dwell_left <- t.dwell_left -. dt;
          acc +. dt
        end
        else begin
          let acc = acc +. t.dwell_left in
          t.state <- 1 - t.state;
          t.dwell_left <-
            Sim.Rng.exponential t.rng ~mean:(if t.state = 0 then dwell0 else dwell1);
          go acc
        end
      in
      go 0.0

let spec_help =
  "poisson:RATE | mmpp:RATE0,DWELL0,RATE1,DWELL1 (rates in req/s, dwells in s)"

(** [of_spec s] — parse an arrival spec, e.g. ["poisson:50000"] or
    ["mmpp:10000,0.01,200000,0.002"]. *)
let of_spec s =
  let fail () = invalid_arg (Printf.sprintf "Arrival.of_spec %S; expected %s" s spec_help) in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let floats () =
        try List.map float_of_string (String.split_on_char ',' rest) with _ -> fail ()
      in
      match kind with
      | "poisson" -> (
          match floats () with
          | [ rate ] ->
              let p = Poisson { rate } in
              validate p;
              p
          | _ -> fail ())
      | "mmpp" -> (
          match floats () with
          | [ rate0; dwell0; rate1; dwell1 ] ->
              let p = Mmpp { rate0; dwell0; rate1; dwell1 } in
              validate p;
              p
          | _ -> fail ())
      | _ -> fail ())

let to_spec = function
  | Poisson { rate } -> Printf.sprintf "poisson:%g" rate
  | Mmpp { rate0; dwell0; rate1; dwell1 } ->
      Printf.sprintf "mmpp:%g,%g,%g,%g" rate0 dwell0 rate1 dwell1
