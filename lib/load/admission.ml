(** Admission control: the bounded accept queue in front of each server
    worker.

    Open-loop load keeps arriving past the knee, so without a bound the
    queue (and every latency percentile) grows without limit and the
    system "collapses" in the classic sense: work is still performed but
    all of it is too late to matter.  The accept queue bounds the damage
    with a per-worker capacity and one of three policies:

    - [drop:CAP] — a request arriving at a full queue is discarded
      silently; the client frees its window slot only after its own
      timeout (the worst policy for the client, the cheapest for the
      server);
    - [reject:CAP] — a full queue answers immediately with a cheap
      reject message (fail-fast; the client learns at one round trip);
    - [queue:CAP:TIMEOUT] — arrivals are queued up to CAP (rejecting
      beyond it), but a request that has waited longer than TIMEOUT by
      the time a worker picks it up is shed with a (late) reject instead
      of being served — work that would complete past its deadline is
      not worth doing. *)

type on_full = Drop_new | Reject_new

type policy = {
  cap : int;
  on_full : on_full;
  shed_timeout : float;  (** [infinity] = never shed at dequeue *)
}

let drop ~cap = { cap; on_full = Drop_new; shed_timeout = infinity }
let reject_fast ~cap = { cap; on_full = Reject_new; shed_timeout = infinity }
let queue ~cap ~timeout = { cap; on_full = Reject_new; shed_timeout = timeout }

let spec_help = "drop:CAP | reject:CAP | queue:CAP:TIMEOUT_S"

(** [of_spec s] — parse an admission spec, e.g. ["drop:64"],
    ["reject:64"] or ["queue:512:0.05"]. *)
let of_spec s =
  let fail () =
    invalid_arg (Printf.sprintf "Admission.of_spec %S; expected %s" s spec_help)
  in
  match String.split_on_char ':' s with
  | [ "drop"; cap ] -> (
      match int_of_string_opt cap with
      | Some cap when cap > 0 -> drop ~cap
      | _ -> fail ())
  | [ "reject"; cap ] -> (
      match int_of_string_opt cap with
      | Some cap when cap > 0 -> reject_fast ~cap
      | _ -> fail ())
  | [ "queue"; cap; timeout ] -> (
      match (int_of_string_opt cap, float_of_string_opt timeout) with
      | Some cap, Some timeout when cap > 0 && timeout > 0.0 -> queue ~cap ~timeout
      | _ -> fail ())
  | _ -> fail ()

let to_spec p =
  match (p.on_full, p.shed_timeout) with
  | Drop_new, _ -> Printf.sprintf "drop:%d" p.cap
  | Reject_new, t when t = infinity -> Printf.sprintf "reject:%d" p.cap
  | Reject_new, t -> Printf.sprintf "queue:%d:%g" p.cap t

(** The queue itself.  Entries carry their admission instant so dequeue
    can apply the shed timeout; counters feed the latency report. *)
type 'a t = {
  policy : policy;
  q : (float * 'a) Queue.t;
  mutable admitted : int;
  mutable dropped : int;  (** arrivals discarded silently at a full queue *)
  mutable rejected : int;  (** arrivals answered with a fast reject *)
  mutable shed : int;  (** admitted but timed out before a worker took them *)
  mutable max_depth : int;
}

let create policy = { policy; q = Queue.create (); admitted = 0; dropped = 0; rejected = 0; shed = 0; max_depth = 0 }

let depth t = Queue.length t.q
let is_empty t = Queue.is_empty t.q

(** [offer t ~now x] — apply the admission policy to an arriving
    request. *)
let offer t ~now x =
  if Queue.length t.q >= t.policy.cap then
    match t.policy.on_full with
    | Drop_new ->
        t.dropped <- t.dropped + 1;
        `Dropped
    | Reject_new ->
        t.rejected <- t.rejected + 1;
        `Rejected
  else begin
    Queue.push (now, x) t.q;
    t.admitted <- t.admitted + 1;
    if Queue.length t.q > t.max_depth then t.max_depth <- Queue.length t.q;
    `Admitted
  end

(** [take t ~now] — next request for a worker: [`Serve] if it is still
    within the shed timeout, [`Shed] if it waited too long. *)
let take t ~now =
  match Queue.take_opt t.q with
  | None -> None
  | Some (enq, x) ->
      if now -. enq > t.policy.shed_timeout then begin
        t.shed <- t.shed + 1;
        Some (x, `Shed)
      end
      else Some (x, `Serve)
