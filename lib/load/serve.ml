(** Open-loop serving of minidb: the connection/session multiplexer, the
    server worker loop, and the saturation-sweep driver.

    The paper drives minidb with closed-loop TPC scripts; here the same
    database is put behind an open-loop front end:

    - an {!Arrival} process generates request instants regardless of how
      the system is doing (the defining property of open-loop load);
    - each request belongs to one of [clients] simulated client
      sessions.  Clients are synthetic — they cost no simulated CPU and
      no fiber, so "millions of users" is a matter of an array index —
      but their {e traffic} is real: every request and response is a
      {!Mchan.Net} message between the client's home node and its
      server's node, paying link occupancy, Memory Channel latency and,
      under a fault plan, the reliable transport's retransmissions;
    - a per-client in-flight window bounds outstanding requests per
      session (arrivals beyond it queue client-side, still accruing
      latency — the partly-open model);
    - each server worker is a real {!Osim.Kernel} process executing
      TPC-B-style updates and short scans against the shared-memory
      database, fronted by an {!Admission} queue;
    - a {!Recorder} measures everything in simulated time, so a seed
      determines the full report bit for bit. *)

module K = Osim.Kernel
module R = Shasta.Runtime
module C = Shasta.Cluster
module Db = Minidb.Db

type op = Oltp | Scan

let op_index = function Oltp -> 0 | Scan -> 1

type config = {
  seed : int;
  arrival : Arrival.process;
  clients : int;
  window : int;  (** per-client in-flight cap, >= 1 *)
  duration : float;  (** seconds of offered load *)
  scan_share : float;  (** fraction of requests that are scans *)
  scan_pages : int;
  admission : Admission.policy;
  client_timeout : float;  (** drop policy: client frees its window slot after this *)
  request_bytes : int;
  response_bytes : int;
  root_cpu : int;
  daemon_cpu : int;
  server_cpus : int list;
  pages : int;
  rows_per_page : int;
  depth_sample_every : float;  (** 0 = no queue-depth series *)
  max_sim_time : float;
}

let default_config =
  {
    seed = 42;
    arrival = Arrival.Poisson { rate = 20_000.0 };
    clients = 256;
    window = 4;
    duration = 0.05;
    scan_share = 0.1;
    scan_pages = 2;
    admission = Admission.queue ~cap:256 ~timeout:0.02;
    client_timeout = 0.02;
    request_bytes = 128;
    response_bytes = 128;
    root_cpu = 0;
    daemon_cpu = 0;
    server_cpus = [ 1; 2; 3; 4; 5; 6 ];
    pages = 96;
    rows_per_page = 32;
    depth_sample_every = 1.0e-3;
    max_sim_time = 30.0;
  }

(** [cluster_config ?nodes ?cpus_per_node ?fault_plan ()] — the minidb
    cluster with an optional injected fault plan (the load generator
    must compose with {!Mchan.Reliable}). *)
let cluster_config ?(nodes = 2) ?(cpus_per_node = 4) ?(fault_plan = Fault.Plan.empty) () =
  { (Minidb.Workload.cluster_config ~nodes ~cpus_per_node ()) with Shasta.Config.fault_plan }

type request = {
  rq_client : int;
  rq_op : op;
  rq_worker : int;
  rq_key : int;  (** Oltp: account index; Scan: first page *)
  rq_arrival : float;  (** generation instant — latency is measured from here *)
}

type outcome = {
  recorder : Recorder.t;
  ok : bool;  (** final balance validation: no update lost or duplicated *)
  drained : bool;  (** every offered request was resolved *)
  elapsed : float;  (** simulated seconds for the whole run *)
  cluster : C.t;  (** for per-node breakdowns and fault reports *)
}

let validate_config cfg =
  if cfg.clients <= 0 then invalid_arg "Serve: clients must be positive";
  if cfg.window <= 0 then invalid_arg "Serve: window must be >= 1";
  if cfg.server_cpus = [] then invalid_arg "Serve: need at least one server cpu";
  if cfg.scan_share < 0.0 || cfg.scan_share > 1.0 then invalid_arg "Serve: scan_share";
  if cfg.scan_pages >= cfg.pages then invalid_arg "Serve: scan_pages >= pages"

(** [run ?cluster_cfg cfg] — one open-loop serving run at [cfg]'s
    offered load. *)
let run ?cluster_cfg cfg =
  validate_config cfg;
  let ccfg = match cluster_cfg with Some c -> c | None -> cluster_config () in
  let cl = C.create ccfg in
  let net = cl.C.net in
  let eng = C.sim cl in
  let nodes = ccfg.Shasta.Config.net.Mchan.Net.nodes in
  let cpus_per_node = ccfg.Shasta.Config.net.Mchan.Net.cpus_per_node in
  let workers = Array.of_list cfg.server_cpus in
  let nworkers = Array.length workers in
  let worker_node w = workers.(w) / cpus_per_node in
  let client_node c = c mod nodes in
  let slot_cpus =
    [ cfg.root_cpu; cfg.daemon_cpu; cfg.daemon_cpu; cfg.daemon_cpu ] @ cfg.server_cpus
  in
  let k = K.boot cl ~slot_cpus () in
  let recorder = Recorder.create ~ops:[ "oltp"; "scan" ] () in
  let arrivals = Arrival.create ~seed:cfg.seed cfg.arrival in
  let mix = Sim.Rng.create (cfg.seed lxor 0x5DEECE66) in
  (* Multiplexer state: per-session window accounting and client-side
     buffers.  Host memory only — sessions are synthetic. *)
  let outstanding = Array.make cfg.clients 0 in
  let pending = Array.init cfg.clients (fun _ -> Queue.create ()) in
  let queues = Array.init nworkers (fun _ -> Admission.create cfg.admission) in
  let accounts = cfg.pages * cfg.rows_per_page in
  let generating = ref true in
  let stopping = ref false in
  let completed_oltp = ref 0 in
  let t_start = ref 0.0 in
  let now () = Sim.Engine.now eng in
  (* Request resolution.  Every generated request ends in exactly one of
     these paths; when the last one lands after generation has stopped,
     the workers are released. *)
  let check_drain () =
    if
      (not !generating)
      && (not !stopping)
      && Recorder.resolved recorder = recorder.Recorder.offered
    then begin
      stopping := true;
      C.pulse_all cl
    end
  in
  let rec on_response r status =
    let c = r.rq_client in
    outstanding.(c) <- outstanding.(c) - 1;
    let t = now () in
    (match status with
    | `Ok ->
        if r.rq_op = Oltp then incr completed_oltp;
        Recorder.record_completion recorder ~op:(op_index r.rq_op) ~now:t
          ~latency:(t -. r.rq_arrival)
    | `Rejected -> Recorder.record_rejected recorder ~now:t
    | `Shed -> Recorder.record_shed recorder ~now:t
    | `Dropped -> Recorder.record_dropped recorder ~now:t);
    dispatch_pending c;
    check_drain ()
  and dispatch_pending c =
    if outstanding.(c) < cfg.window && not (Queue.is_empty pending.(c)) then begin
      dispatch_request (Queue.pop pending.(c));
      dispatch_pending c
    end
  and dispatch_request r =
    outstanding.(r.rq_client) <- outstanding.(r.rq_client) + 1;
    Mchan.Net.send net ~src_node:(client_node r.rq_client) ~dst_node:(worker_node r.rq_worker)
      ~size:cfg.request_bytes (fun () -> arrive_at_server r)
  and arrive_at_server r =
    (* Engine-callback context at the server's node: admission control
       runs here, before any worker is scheduled. *)
    match Admission.offer queues.(r.rq_worker) ~now:(now ()) r with
    | `Admitted -> ()  (* Net.send pulses the node; a stalled worker wakes *)
    | `Rejected ->
        Mchan.Net.send net ~src_node:(worker_node r.rq_worker)
          ~dst_node:(client_node r.rq_client) ~size:cfg.response_bytes (fun () ->
            on_response r `Rejected)
    | `Dropped ->
        (* Silent drop: the client only learns by its own timeout. *)
        Sim.Engine.after eng cfg.client_timeout (fun () -> on_response r `Dropped)
  in
  (* The arrival pump: one self-rescheduling event chain, independent of
     service progress — the load stays offered past the knee. *)
  let rec pump t =
    if t -. !t_start >= cfg.duration then begin
      generating := false;
      Recorder.stop_offering recorder ~now:t;
      check_drain ()
    end
    else begin
      let c = Sim.Rng.int mix cfg.clients in
      let op = if Sim.Rng.float mix 1.0 < cfg.scan_share then Scan else Oltp in
      let key =
        match op with
        | Oltp -> Sim.Rng.int mix accounts
        | Scan -> Sim.Rng.int mix (cfg.pages - cfg.scan_pages)
      in
      let r =
        {
          rq_client = c;
          rq_op = op;
          rq_worker = c mod nworkers;
          rq_key = key;
          rq_arrival = t;
        }
      in
      Recorder.record_offered recorder;
      if outstanding.(c) < cfg.window then dispatch_request r
      else begin
        Recorder.record_buffered recorder;
        Queue.push r pending.(c)
      end;
      let dt = Arrival.next arrivals in
      Sim.Engine.at eng (t +. dt) (fun () -> pump (t +. dt))
    end
  in
  let rec sample_depths t =
    if not !stopping then begin
      let total = Array.fold_left (fun acc q -> acc + Admission.depth q) 0 queues in
      Recorder.sample_depth recorder ~now:t total;
      let t' = t +. cfg.depth_sample_every in
      Sim.Engine.at eng t' (fun () -> sample_depths t')
    end
  in
  (* The server worker: a real kernel process.  Takes from its accept
     queue, executes against the shared-memory database, sends the
     response back over the network. *)
  let worker_loop w (sctx : K.ctx) db =
    let h = sctx.K.h in
    let q = queues.(w) in
    let respond r status =
      Mchan.Net.send net ~src_node:(worker_node w) ~dst_node:(client_node r.rq_client)
        ~size:cfg.response_bytes (fun () -> on_response r status)
    in
    let rec loop () =
      match Admission.take q ~now:(now ()) with
      | Some (r, `Shed) ->
          respond r `Shed;
          loop ()
      | Some (r, `Serve) ->
          (match r.rq_op with
          | Oltp -> Db.account_update sctx db ~account:r.rq_key ~delta:1
          | Scan ->
              ignore
                (Db.scan sctx db ~lo_page:r.rq_key ~hi_page:(r.rq_key + cfg.scan_pages)
                   ~meta_loads:2 ~row_compute:1));
          respond r `Ok;
          loop ()
      | None ->
          if not !stopping then begin
            h.R.proc.Sim.Proc.yield_waiting <- true;
            Sim.Proc.stall (fun () -> (not (Admission.is_empty q)) || !stopping);
            h.R.proc.Sim.Proc.yield_waiting <- false;
            loop ()
          end
    in
    loop ();
    R.flush h
  in
  let ok = ref false in
  let _root =
    K.start k ~cpu_hint:cfg.root_cpu (fun ctx ->
        let db = Db.create ctx ~pages:cfg.pages ~rows_per_page:cfg.rows_per_page ~nframes:cfg.pages in
        Db.start_daemons ctx db ~cpu_hint:(Some cfg.daemon_cpu);
        Minidb.Buffer.warm ctx db.Db.buf ~pages:cfg.pages;
        Array.iteri
          (fun w cpu -> ignore (K.fork ctx ~cpu_hint:cpu (fun sctx -> worker_loop w sctx db)))
          workers;
        t_start := C.now cl;
        Recorder.start recorder ~now:!t_start;
        let dt0 = Arrival.next arrivals in
        Sim.Engine.at eng (!t_start +. dt0) (fun () -> pump (!t_start +. dt0));
        if cfg.depth_sample_every > 0.0 then begin
          let t1 = !t_start +. cfg.depth_sample_every in
          Sim.Engine.at eng t1 (fun () -> sample_depths t1)
        end;
        for _ = 1 to nworkers do
          ignore (K.wait ctx)
        done;
        (* Every committed transaction must be visible exactly once: the
           full scan catches lost responses, lost updates and double
           application alike. *)
        let total = Db.scan ctx db ~lo_page:0 ~hi_page:cfg.pages ~meta_loads:0 ~row_compute:0 in
        ok := total = Db.expected_sum db ~lo_page:0 ~hi_page:cfg.pages + !completed_oltp;
        if not !ok then
          Format.eprintf "serve mismatch: scanned %d expected base+%d@." total !completed_oltp;
        Db.stop_daemons ctx db)
  in
  let elapsed =
    try C.run ~until:cfg.max_sim_time cl
    with C.Worker_failed (name, e) ->
      failwith (Printf.sprintf "serve worker %s failed: %s" name (Printexc.to_string e))
  in
  {
    recorder;
    ok = !ok;
    drained = Recorder.resolved recorder = recorder.Recorder.offered && not !generating;
    elapsed;
    cluster = cl;
  }

(* --- saturation sweeps --- *)

type sweep_point = { sp_rate : float; sp_outcome : outcome }

(** [sweep ?cluster_cfg ~cfg rates] — rerun [cfg] with its arrival
    process rescaled to each offered rate (burst shape preserved); a
    fresh cluster per point, all from the same seed. *)
let sweep ?cluster_cfg ~cfg rates =
  List.map
    (fun rate ->
      let cfg = { cfg with arrival = Arrival.scale_to cfg.arrival rate } in
      { sp_rate = rate; sp_outcome = run ?cluster_cfg cfg })
    rates

(** [knee points] — the first swept rate whose goodput falls below 90%
    of its offered rate ([None] if the sweep never saturates). *)
let knee points =
  List.find_opt
    (fun p ->
      Recorder.goodput p.sp_outcome.recorder < 0.9 *. Recorder.offered_rate p.sp_outcome.recorder)
    points
  |> Option.map (fun p -> p.sp_rate)

let pp_sweep ppf points =
  Format.fprintf ppf "%10s %10s %10s %9s %9s %9s %6s %6s %6s %6s@." "offered/s" "accepted/s"
    "goodput/s" "p50us" "p99us" "p999us" "rej" "drop" "shed" "depth";
  List.iter
    (fun { sp_rate = _; sp_outcome = o } ->
      let r = o.recorder in
      let w = Recorder.offered_window r in
      let per_s n = if w <= 0.0 then 0.0 else float_of_int n /. w in
      let us p = 1.0e6 *. Recorder.percentile r p in
      Format.fprintf ppf "%10.0f %10.0f %10.0f %9.1f %9.1f %9.1f %6d %6d %6d %6d@."
        (Recorder.offered_rate r)
        (per_s (r.Recorder.offered - r.Recorder.rejected - r.Recorder.dropped))
        (Recorder.goodput r) (us 50.0) (us 99.0) (us 99.9) r.Recorder.rejected
        r.Recorder.dropped r.Recorder.shed r.Recorder.depth_max)
    points;
  match knee points with
  | Some k -> Format.fprintf ppf "saturation knee at ~%.0f req/s offered@." k
  | None -> Format.fprintf ppf "no saturation knee within the swept range@."

(** [sweep_fields ~cfg points] — machine-readable sweep rows (the
    payload of [BENCH_serve.json]), as an association list so callers
    can prepend their own envelope fields. *)
let sweep_fields ~cfg points =
    [
      ("seed", Json.Int cfg.seed);
      ("arrival", Json.Str (Arrival.to_spec cfg.arrival));
      ("admission", Json.Str (Admission.to_spec cfg.admission));
      ("clients", Json.Int cfg.clients);
      ("window", Json.Int cfg.window);
      ("duration_s", Json.Float cfg.duration);
      ("servers", Json.Int (List.length cfg.server_cpus));
      ( "knee_offered_rate",
        match knee points with Some k -> Json.Float k | None -> Json.Null );
      ( "points",
        Json.List
          (List.map
             (fun { sp_rate; sp_outcome = o } ->
               match Recorder.to_json o.recorder with
               | Json.Obj fields ->
                   Json.Obj
                     (("rate", Json.Float sp_rate)
                     :: ("ok", Json.Bool o.ok)
                     :: ("drained", Json.Bool o.drained)
                     :: fields)
               | j -> j)
             points) );
    ]

let sweep_json ~cfg points = Json.Obj (sweep_fields ~cfg points)
