(** Deterministic fault plans for the simulated Memory Channel.

    A plan decides, per transmitted frame on a directed inter-node link,
    whether the frame is delivered intact, dropped, duplicated, delayed
    past its FIFO order, or corrupted in flight; it also schedules whole
    nodes to be unresponsive over windows of virtual time (a transient
    stall, or a crash that never recovers).

    Decisions are drawn from per-link {!Sim.Rng} streams derived purely
    from [(seed, src, dst)], so the same seed replays the same fault
    schedule against the same traffic — the determinism guarantee that
    makes faulty runs debuggable. *)

(** Per-link fault probabilities.  [drop], [dup], [corrupt] and [delay]
    are per-frame probabilities (their sum must be at most 1); a delayed
    frame arrives up to [delay_max] seconds after its FIFO arrival
    time, which reorders it past later traffic. *)
type link_faults = {
  drop : float;
  dup : float;
  corrupt : float;
  delay : float;
  delay_max : float;
}

val no_faults : link_faults

(** A node outage: the node neither transmits nor accepts frames for
    virtual times in [[from_t, until_t)]. *)
type outage = { node : int; from_t : float; until_t : float }

(** [stall ~node ~at ~duration] — a transient outage. *)
val stall : node:int -> at:float -> duration:float -> outage

(** [crash ~node ~at] — an outage that never recovers. *)
val crash : node:int -> at:float -> outage

(** The per-frame verdict of the plan. *)
type action = Deliver | Drop | Duplicate | Corrupt | Delay of float

type t

(** The plan that injects nothing; transports treat it as absent. *)
val empty : t

val is_empty : t -> bool

(** [create ?seed ?default ?links ?outages ()] — [default] applies to
    every directed link without an entry in [links] (keys are
    [(src_node, dst_node)]).  Raises [Invalid_argument] on probabilities
    outside [0, 1], sums above 1, or negative times. *)
val create :
  ?seed:int ->
  ?default:link_faults ->
  ?links:((int * int) * link_faults) list ->
  ?outages:outage list ->
  unit ->
  t

val seed : t -> int

(** [decide t ~src ~dst] draws the next verdict for a frame on the
    [src -> dst] link. *)
val decide : t -> src:int -> dst:int -> action

(** [node_down t ~node ~at] — is the node inside an outage window? *)
val node_down : t -> node:int -> at:float -> bool

(** Parse a command-line spec: comma-separated entries among
    [seed=N], [drop=P], [dup=P], [corrupt=P], [delay=P] or
    [delay=P:MAX_SECONDS], [stall=NODE\@AT:DURATION], [crash=NODE\@AT],
    and [link=SRC-DST:KEY=V;KEY=V...] for per-link overrides, e.g.
    ["seed=42,drop=0.05,delay=0.1:2e-5,stall=1\@0.001:0.0005"].
    Raises [Invalid_argument] on malformed input. *)
val of_spec : string -> t

val pp : Format.formatter -> t -> unit
