(** Deterministic fault plans for the simulated Memory Channel.

    See the interface for the model.  Each directed link owns a
    splitmix64 stream whose initial state is a pure function of
    [(seed, src, dst)], so the verdict sequence on a link depends only
    on the seed and on how many frames that link has carried — not on
    when other links first drew, which keeps whole-cluster runs
    reproducible from a single integer. *)

type link_faults = {
  drop : float;
  dup : float;
  corrupt : float;
  delay : float;
  delay_max : float;
}

let no_faults = { drop = 0.0; dup = 0.0; corrupt = 0.0; delay = 0.0; delay_max = 0.0 }

type outage = { node : int; from_t : float; until_t : float }

let stall ~node ~at ~duration =
  if at < 0.0 || duration < 0.0 then invalid_arg "Plan.stall: negative time";
  { node; from_t = at; until_t = at +. duration }

let crash ~node ~at =
  if at < 0.0 then invalid_arg "Plan.crash: negative time";
  { node; from_t = at; until_t = infinity }

type action = Deliver | Drop | Duplicate | Corrupt | Delay of float

type t = {
  seed : int;
  default : link_faults;
  links : ((int * int) * link_faults) list;
  outages : outage list;
  streams : (int * int, Sim.Rng.t) Hashtbl.t;
}

let check_faults lf =
  let p name x =
    if x < 0.0 || x > 1.0 then
      invalid_arg (Printf.sprintf "Plan.create: %s=%g outside [0,1]" name x)
  in
  p "drop" lf.drop;
  p "dup" lf.dup;
  p "corrupt" lf.corrupt;
  p "delay" lf.delay;
  if lf.drop +. lf.dup +. lf.corrupt +. lf.delay > 1.0 then
    invalid_arg "Plan.create: fault probabilities sum above 1";
  if lf.delay_max < 0.0 then invalid_arg "Plan.create: negative delay_max"

let create ?(seed = 0) ?(default = no_faults) ?(links = []) ?(outages = []) () =
  check_faults default;
  List.iter (fun (_, lf) -> check_faults lf) links;
  { seed; default; links; outages; streams = Hashtbl.create 16 }

let empty = create ()

let is_empty t =
  t.default = no_faults
  && List.for_all (fun (_, lf) -> lf = no_faults) t.links
  && t.outages = []

let seed t = t.seed

let faults_for t ~src ~dst =
  match List.assoc_opt (src, dst) t.links with Some lf -> lf | None -> t.default

(* The stream state mixes the link endpoints into the seed; splitmix64
   diffuses any distinct starting state into an independent-looking
   sequence, so simple integer mixing suffices here. *)
let stream t ~src ~dst =
  match Hashtbl.find_opt t.streams (src, dst) with
  | Some r -> r
  | None ->
      let state = (t.seed * 0x1000003) lxor ((src * 0x7F4A7C15) + dst + 1) in
      let r = Sim.Rng.create state in
      Hashtbl.replace t.streams (src, dst) r;
      r

let decide t ~src ~dst =
  let lf = faults_for t ~src ~dst in
  if lf = no_faults then Deliver
  else begin
    let r = stream t ~src ~dst in
    let x = Sim.Rng.float r 1.0 in
    if x < lf.drop then Drop
    else if x < lf.drop +. lf.dup then Duplicate
    else if x < lf.drop +. lf.dup +. lf.corrupt then Corrupt
    else if x < lf.drop +. lf.dup +. lf.corrupt +. lf.delay then
      Delay (Sim.Rng.float r lf.delay_max)
    else Deliver
  end

let node_down t ~node ~at =
  List.exists (fun o -> o.node = node && at >= o.from_t && at < o.until_t) t.outages

(* --- spec parsing --- *)

let bad fmt = Printf.ksprintf invalid_arg ("Plan.of_spec: " ^^ fmt)

let float_of s = match float_of_string_opt s with Some f -> f | None -> bad "bad number %S" s
let int_of s = match int_of_string_opt s with Some i -> i | None -> bad "bad integer %S" s

(* "NODE@AT" or "NODE@AT:DURATION" *)
let parse_at s =
  match String.split_on_char '@' s with
  | [ node; rest ] -> (int_of node, rest)
  | _ -> bad "expected NODE@TIME in %S" s

let default_delay_max = 20.0e-6

let apply_fault_key lf key value =
  match key with
  | "drop" -> { lf with drop = float_of value }
  | "dup" -> { lf with dup = float_of value }
  | "corrupt" -> { lf with corrupt = float_of value }
  | "delay" -> (
      match String.split_on_char ':' value with
      | [ p ] -> { lf with delay = float_of p; delay_max = default_delay_max }
      | [ p; mx ] -> { lf with delay = float_of p; delay_max = float_of mx }
      | _ -> bad "bad delay spec %S" value)
  | _ -> bad "unknown key %S" key

let of_spec spec =
  let seed = ref 0 in
  let default = ref no_faults in
  let links = ref [] in
  let outages = ref [] in
  let entry e =
    match String.index_opt e '=' with
    | None -> if e <> "" then bad "expected KEY=VALUE, got %S" e
    | Some i -> (
        let key = String.sub e 0 i in
        let value = String.sub e (i + 1) (String.length e - i - 1) in
        match key with
        | "seed" -> seed := int_of value
        | "drop" | "dup" | "corrupt" | "delay" -> default := apply_fault_key !default key value
        | "stall" ->
            let node, rest = parse_at value in
            (match String.split_on_char ':' rest with
            | [ at; dur ] -> outages := stall ~node ~at:(float_of at) ~duration:(float_of dur) :: !outages
            | _ -> bad "expected stall=NODE@AT:DURATION in %S" e)
        | "crash" ->
            let node, at = parse_at value in
            outages := crash ~node ~at:(float_of at) :: !outages
        | "link" -> (
            (* link=SRC-DST:KEY=V;KEY=V... *)
            match String.index_opt value ':' with
            | None -> bad "expected link=SRC-DST:KEY=V in %S" e
            | Some j ->
                let ends = String.sub value 0 j in
                let body = String.sub value (j + 1) (String.length value - j - 1) in
                let src, dst =
                  match String.split_on_char '-' ends with
                  | [ s; d ] -> (int_of s, int_of d)
                  | _ -> bad "expected SRC-DST in %S" ends
                in
                let lf =
                  List.fold_left
                    (fun lf kv ->
                      match String.index_opt kv '=' with
                      | Some i ->
                          apply_fault_key lf (String.sub kv 0 i)
                            (String.sub kv (i + 1) (String.length kv - i - 1))
                      | None -> bad "expected KEY=V in %S" kv)
                    no_faults (String.split_on_char ';' body)
                in
                links := ((src, dst), lf) :: !links)
        | _ -> bad "unknown key %S" key)
  in
  List.iter entry (String.split_on_char ',' spec);
  create ~seed:!seed ~default:!default ~links:(List.rev !links) ~outages:(List.rev !outages) ()

let pp_faults ppf lf =
  Format.fprintf ppf "drop=%g dup=%g corrupt=%g delay=%g(max %gs)" lf.drop lf.dup lf.corrupt
    lf.delay lf.delay_max

let pp ppf t =
  if is_empty t then Format.fprintf ppf "fault plan: none"
  else begin
    Format.fprintf ppf "fault plan (seed %d): %a" t.seed pp_faults t.default;
    List.iter
      (fun ((s, d), lf) -> Format.fprintf ppf "; link %d->%d: %a" s d pp_faults lf)
      t.links;
    List.iter
      (fun o ->
        if o.until_t = infinity then Format.fprintf ppf "; crash node %d @%gs" o.node o.from_t
        else Format.fprintf ppf "; stall node %d @%gs for %gs" o.node o.from_t (o.until_t -. o.from_t))
      t.outages
  end
