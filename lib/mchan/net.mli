(** The simulated cluster: nodes of SMP processors connected by a
    Memory-Channel-like network.

    The Memory Channel gives protected user-level access: a process
    transmits with a simple store to a mapped page (no OS involvement),
    and receivers detect arrival by polling a single cachable location.
    We model that as: constant [one_way_latency] + transmit occupancy on
    the sender's link ({!Link}), delivery into a {!Mailbox} by a
    callback, and a per-node {!Sim.Signal} pulsed on arrival so that
    stalled processes wake exactly at the arrival instant. *)

(** Per-link message batching: a remote message waits up to [co_window]
    for companions headed down the same (src, dst) link; the batch is
    flushed early at [co_max_msgs] messages or [co_max_bytes] payload
    bytes and travels as one frame (one link occupancy, one arrival
    event, one wakeup pulse), with the carried deliveries applied in
    FIFO order. *)
type coalesce = {
  co_window : float;  (** max time a message may wait for companions, seconds *)
  co_max_msgs : int;  (** flush early at this many queued messages *)
  co_max_bytes : int;  (** flush early at this many queued payload bytes *)
}

val default_coalesce : coalesce

type config = {
  nodes : int;
  cpus_per_node : int;
  one_way_latency : float;  (** user process to user process, seconds *)
  bandwidth : float;  (** per-link, bytes/second *)
  intra_node_latency : float;  (** shared-memory message between local processes *)
  quantum : float;  (** OS scheduling quantum *)
  switch_cost : float;  (** context switch cost *)
  coalescing : coalesce option;
      (** per-(src, dst)-link batching of remote messages; [None] (the
          default) is the exact legacy path — every message its own
          frame, bit-identical timing *)
}

(** Constants of the prototype cluster in Section 6.1: four AlphaServer
    4100s (4 x 300 MHz each), 4 us one-way latency, 60 MB/s per link. *)
val default_config : config

type t

val create :
  ?plan:Fault.Plan.t ->
  ?reliable_cfg:Reliable.config ->
  ?schedule:Sim.Engine.schedule ->
  config ->
  t

(** The reliable transport, installed only under a non-empty fault plan;
    [None] means the raw perfectly-reliable path is in use. *)
val reliable : t -> Reliable.t option

val engine : t -> Sim.Engine.t
val config : t -> config
val cpu : t -> node:int -> cpu:int -> Sim.Proc.cpu
val node_signal : t -> int -> Sim.Signal.t
val total_cpus : t -> int

(** [nth_cpu t i] is processor [i] in node-major order (processors 0..3
    are node 0, 4..7 node 1, ...), matching the paper's placement where
    2- and 4-processor runs use one node and 16-processor runs use four. *)
val nth_cpu : t -> int -> Sim.Proc.cpu

(** [send t ?at ?block ~src_node ~dst_node ~size deliver] transmits a
    message; [deliver] runs at the arrival time (it should enqueue into
    the right mailbox), after which the destination node's signal is
    pulsed.  [at] defaults to the current time; protocol handlers that
    service several messages back-to-back pass their time cursor.
    [block] declares the coherence block the message concerns (default
    none): the delivery event is labeled with it plus the destination
    node, so a {!Sim.Engine.Guided} explorer can tell which same-time
    deliveries commute.  With [config.coalescing] set, remote messages
    may be held briefly and delivered together; intra-node messages are
    never coalesced. *)
val send :
  t ->
  ?at:float ->
  ?block:int ->
  src_node:int ->
  dst_node:int ->
  size:int ->
  (unit -> unit) ->
  unit

val remote_messages : t -> int
val local_messages : t -> int

(** Coalesced frames put on the wire, and the messages they carried;
    both 0 when [config.coalescing] is [None]. *)
val batches : t -> int

val batched_messages : t -> int
