(** The simulated cluster: nodes of SMP processors connected by a
    Memory-Channel-like network.

    The Memory Channel gives protected user-level access: a process
    transmits with a simple store to a mapped page (no OS involvement),
    and receivers detect arrival by polling a single cachable location.
    We model that as: constant [one_way_latency] + transmit occupancy on
    the sender's link ({!Link}), delivery into a {!Mailbox} by a callback,
    and a per-node {!Sim.Signal} pulsed on arrival so that stalled
    processes wake exactly at the arrival instant. *)

type coalesce = {
  co_window : float;  (** max time a message may wait for companions, seconds *)
  co_max_msgs : int;  (** flush early at this many queued messages *)
  co_max_bytes : int;  (** flush early at this many queued payload bytes *)
}

(** A window of one one-way latency trades at most one hop of added
    delay for fewer, larger frames — at 64+ nodes the protocol drowns in
    singleton messages otherwise. *)
let default_coalesce = { co_window = 4.0e-6; co_max_msgs = 16; co_max_bytes = 8192 }

type config = {
  nodes : int;
  cpus_per_node : int;
  one_way_latency : float;  (** user process to user process, seconds *)
  bandwidth : float;  (** per-link, bytes/second *)
  intra_node_latency : float;  (** shared-memory message between local processes *)
  quantum : float;  (** OS scheduling quantum *)
  switch_cost : float;  (** context switch cost *)
  coalescing : coalesce option;
      (** per-(src, dst)-link batching of remote messages; [None] (the
          default) is the exact legacy path — every message its own
          frame, bit-identical timing *)
}

(** Constants of the prototype cluster in Section 6.1: four AlphaServer
    4100s (4 x 300 MHz each), 4 us one-way latency, 60 MB/s per link. *)
let default_config =
  {
    nodes = 4;
    cpus_per_node = 4;
    one_way_latency = 4.0e-6;
    bandwidth = 60.0e6;
    intra_node_latency = 1.0e-6;
    quantum = 10.0e-3;
    switch_cost = 25.0e-6;
    coalescing = None;
  }

(* One open batch per directed (src, dst) link: delivers queued newest
   first, flushed by a window timer or by size/count overflow.  The
   generation counter invalidates a timer whose batch was already
   flushed early (and whose slot may since hold a newer batch). *)
type pending = {
  mutable p_delivers : (unit -> unit) list;
  mutable p_count : int;
  mutable p_bytes : int;
  mutable p_deadline : float;
  mutable p_last_at : float;  (** latest sender cursor in the batch *)
  mutable p_gen : int;
  mutable p_open : bool;
}

type t = {
  engine : Sim.Engine.t;
  config : config;
  cpus : Sim.Proc.cpu array array;  (** indexed by node, then local cpu *)
  node_signal : Sim.Signal.t array;
  tx : Link.t array;
  next_pid : int ref;
  msg_label : Sim.Engine.label array;
      (** preallocated per-destination-node delivery label (block -1);
          messages about a specific block still build their own label *)
  pulse_dst : (unit -> unit) array;
      (** preallocated per-destination-node wakeup pulse thunks, so the
          delivery closure captures one value instead of rebuilding it *)
  (* Message counters are per {e source} node so that, in parallel mode,
     each lane only ever touches its own slot; accessors sum. *)
  remote_by_src : int array;
  local_by_src : int array;
  batches_by_src : int array;  (** coalesced frames put on the wire *)
  batched_by_src : int array;  (** messages those frames carried *)
  pending : (int * int, pending) Hashtbl.t;  (** open batches, by (src, dst) *)
  mutable reliable : Reliable.t option;
      (** installed only under a non-empty fault plan; [None] keeps the
          raw perfectly-reliable path with zero transport overhead *)
}

let create ?(plan = Fault.Plan.empty) ?(reliable_cfg = Reliable.default_config)
    ?(schedule = Sim.Engine.Fifo) config =
  if config.nodes <= 0 || config.cpus_per_node <= 0 then invalid_arg "Net.create";
  let engine = Sim.Engine.create ~schedule () in
  let next_pid = ref 0 in
  let cpus =
    Array.init config.nodes (fun node ->
        Array.init config.cpus_per_node (fun c ->
            Sim.Proc.make_cpu ~engine ~node_id:node
              ~cpu_global_id:((node * config.cpus_per_node) + c)
              ~quantum:config.quantum ~switch_cost:config.switch_cost next_pid))
  in
  let node_signal =
    Array.init config.nodes (fun n ->
        Sim.Signal.create
          ~label:{ Sim.Engine.lbl_node = n; lbl_block = -1; lbl_kind = Sim.Engine.Wakeup }
          engine)
  in
  let tx = Array.init config.nodes (fun _ -> Link.create ~bandwidth:config.bandwidth) in
  let t =
    {
      engine;
      config;
      cpus;
      node_signal;
      tx;
      next_pid;
      msg_label =
        Array.init config.nodes (fun n ->
            { Sim.Engine.lbl_node = n; lbl_block = -1; lbl_kind = Sim.Engine.Message });
      pulse_dst =
        Array.init config.nodes (fun n -> fun () -> Sim.Signal.pulse node_signal.(n));
      remote_by_src = Array.make config.nodes 0;
      local_by_src = Array.make config.nodes 0;
      batches_by_src = Array.make config.nodes 0;
      batched_by_src = Array.make config.nodes 0;
      pending = Hashtbl.create 64;
      reliable = None;
    }
  in
  if not (Fault.Plan.is_empty plan) then begin
    let phys ~at ~src_node ~dst_node ~size k =
      let arrival =
        if src_node = dst_node then at +. config.intra_node_latency
        else
          let leaves = Link.transmit t.tx.(src_node) ~now:at ~size in
          leaves +. config.one_way_latency
      in
      Sim.Engine.at engine ~label:t.msg_label.(dst_node) arrival (fun () -> k arrival)
    in
    let pulse node = Sim.Signal.pulse t.node_signal.(node) in
    t.reliable <- Some (Reliable.create ~engine ~plan ~cfg:reliable_cfg ~phys ~pulse)
  end;
  t

let reliable t = t.reliable

let engine t = t.engine
let config t = t.config
let cpu t ~node ~cpu = t.cpus.(node).(cpu)
let node_signal t node = t.node_signal.(node)
let total_cpus t = t.config.nodes * t.config.cpus_per_node

(** [nth_cpu t i] is processor [i] in node-major order (processors 0..3
    are node 0, 4..7 node 1, ...), matching the paper's placement where
    2- and 4-processor runs use one node and 16-processor runs use four. *)
let nth_cpu t i =
  let per = t.config.cpus_per_node in
  t.cpus.(i / per).(i mod per)

(** [send t ?at ?block ~src_node ~dst_node ~size deliver] transmits a
    message; [deliver] runs at the arrival time (it should enqueue into
    the right mailbox), after which the destination node's signal is
    pulsed.  [at] defaults to the current time; protocol handlers that
    service several messages back-to-back pass their time cursor.
    [block] declares the coherence block the message concerns (default
    none): the delivery event is labeled with it plus the destination
    node, so a {!Sim.Engine.Guided} explorer can tell which same-time
    deliveries commute. *)
(* Put one frame on the wire: through the reliable transport when a
   fault plan is active, raw link + latency otherwise. *)
let wire_send t ~at ~src_node ~dst_node ~size deliver =
  match t.reliable with
  | Some r -> Reliable.send r ~at ~src_node ~dst_node ~size deliver
  | None ->
      let leaves = Link.transmit t.tx.(src_node) ~now:at ~size in
      let arrival = leaves +. t.config.one_way_latency in
      let pulse = t.pulse_dst.(dst_node) in
      Sim.Engine.at t.engine ~label:t.msg_label.(dst_node) arrival (fun () ->
          deliver ();
          pulse ())

(* Close the batch and transmit it as a single frame; the carried
   delivers run back-to-back in FIFO order at the frame's arrival, with
   one pulse for the lot. *)
let flush_batch t ~src_node ~dst_node ~at p =
  p.p_open <- false;
  let delivers = List.rev p.p_delivers in
  p.p_delivers <- [];
  t.batches_by_src.(src_node) <- t.batches_by_src.(src_node) + 1;
  t.batched_by_src.(src_node) <- t.batched_by_src.(src_node) + p.p_count;
  wire_send t ~at ~src_node ~dst_node ~size:p.p_bytes (fun () ->
      List.iter (fun d -> d ()) delivers)

let coalesced_send t co ~now ~src_node ~dst_node ~size deliver =
  let key = (src_node, dst_node) in
  let p =
    match Hashtbl.find_opt t.pending key with
    | Some p -> p
    | None ->
        let p =
          {
            p_delivers = [];
            p_count = 0;
            p_bytes = 0;
            p_deadline = 0.0;
            p_last_at = 0.0;
            p_gen = 0;
            p_open = false;
          }
        in
        Hashtbl.replace t.pending key p;
        p
  in
  if not p.p_open then begin
    p.p_open <- true;
    p.p_delivers <- [ deliver ];
    p.p_count <- 1;
    p.p_bytes <- size;
    p.p_deadline <- now +. co.co_window;
    p.p_last_at <- now;
    p.p_gen <- p.p_gen + 1;
    let gen = p.p_gen in
    Sim.Engine.at t.engine ~label:t.msg_label.(dst_node) p.p_deadline (fun () ->
        (* A handler's time cursor may have carried a queued message past
           the window deadline; the frame cannot leave before its last
           message was sent. *)
        if p.p_open && p.p_gen = gen then
          flush_batch t ~src_node ~dst_node ~at:(Float.max p.p_deadline p.p_last_at) p)
  end
  else begin
    p.p_delivers <- deliver :: p.p_delivers;
    p.p_count <- p.p_count + 1;
    p.p_bytes <- p.p_bytes + size;
    p.p_last_at <- Float.max p.p_last_at now;
    if p.p_count >= co.co_max_msgs || p.p_bytes >= co.co_max_bytes then
      flush_batch t ~src_node ~dst_node ~at:p.p_last_at p
  end

(* Per-block labels carry the block for the Guided explorer; the common
   blockless case reuses the preallocated per-destination label. *)
let delivery_label t ~dst_node ~block =
  if block < 0 then t.msg_label.(dst_node)
  else { Sim.Engine.lbl_node = dst_node; lbl_block = block; lbl_kind = Sim.Engine.Message }

let send t ?at ?(block = -1) ~src_node ~dst_node ~size deliver =
  let now = match at with Some x -> x | None -> Sim.Engine.now t.engine in
  if src_node = dst_node then begin
    (* Intra-node messages move through shared memory, not the Memory
       Channel: the fault model never touches them. *)
    t.local_by_src.(src_node) <- t.local_by_src.(src_node) + 1;
    let label = delivery_label t ~dst_node ~block in
    let arrival = now +. t.config.intra_node_latency in
    let pulse = t.pulse_dst.(dst_node) in
    Sim.Engine.at t.engine ~label arrival (fun () ->
        deliver ();
        pulse ())
  end
  else begin
    t.remote_by_src.(src_node) <- t.remote_by_src.(src_node) + 1;
    match t.config.coalescing with
    | Some co -> coalesced_send t co ~now ~src_node ~dst_node ~size deliver
    | None -> (
        match t.reliable with
        | Some r -> Reliable.send r ~at:now ~src_node ~dst_node ~size deliver
        | None ->
            let label = delivery_label t ~dst_node ~block in
            let leaves = Link.transmit t.tx.(src_node) ~now ~size in
            let arrival = leaves +. t.config.one_way_latency in
            let pulse = t.pulse_dst.(dst_node) in
            Sim.Engine.at t.engine ~label arrival (fun () ->
                deliver ();
                pulse ()))
  end

let sum = Array.fold_left ( + ) 0
let remote_messages t = sum t.remote_by_src
let local_messages t = sum t.local_by_src
let batches t = sum t.batches_by_src
let batched_messages t = sum t.batched_by_src
