(** The simulated cluster: nodes of SMP processors connected by a
    Memory-Channel-like network.

    The Memory Channel gives protected user-level access: a process
    transmits with a simple store to a mapped page (no OS involvement),
    and receivers detect arrival by polling a single cachable location.
    We model that as: constant [one_way_latency] + transmit occupancy on
    the sender's link ({!Link}), delivery into a {!Mailbox} by a callback,
    and a per-node {!Sim.Signal} pulsed on arrival so that stalled
    processes wake exactly at the arrival instant. *)

type config = {
  nodes : int;
  cpus_per_node : int;
  one_way_latency : float;  (** user process to user process, seconds *)
  bandwidth : float;  (** per-link, bytes/second *)
  intra_node_latency : float;  (** shared-memory message between local processes *)
  quantum : float;  (** OS scheduling quantum *)
  switch_cost : float;  (** context switch cost *)
}

(** Constants of the prototype cluster in Section 6.1: four AlphaServer
    4100s (4 x 300 MHz each), 4 us one-way latency, 60 MB/s per link. *)
let default_config =
  {
    nodes = 4;
    cpus_per_node = 4;
    one_way_latency = 4.0e-6;
    bandwidth = 60.0e6;
    intra_node_latency = 1.0e-6;
    quantum = 10.0e-3;
    switch_cost = 25.0e-6;
  }

type t = {
  engine : Sim.Engine.t;
  config : config;
  cpus : Sim.Proc.cpu array array;  (** indexed by node, then local cpu *)
  node_signal : Sim.Signal.t array;
  tx : Link.t array;
  next_pid : int ref;
  mutable remote_messages : int;
  mutable local_messages : int;
  mutable reliable : Reliable.t option;
      (** installed only under a non-empty fault plan; [None] keeps the
          raw perfectly-reliable path with zero transport overhead *)
}

let create ?(plan = Fault.Plan.empty) ?(reliable_cfg = Reliable.default_config)
    ?(schedule = Sim.Engine.Fifo) config =
  if config.nodes <= 0 || config.cpus_per_node <= 0 then invalid_arg "Net.create";
  let engine = Sim.Engine.create ~schedule () in
  let next_pid = ref 0 in
  let cpus =
    Array.init config.nodes (fun node ->
        Array.init config.cpus_per_node (fun c ->
            Sim.Proc.make_cpu ~engine ~node_id:node
              ~cpu_global_id:((node * config.cpus_per_node) + c)
              ~quantum:config.quantum ~switch_cost:config.switch_cost next_pid))
  in
  let node_signal =
    Array.init config.nodes (fun n ->
        Sim.Signal.create
          ~label:{ Sim.Engine.lbl_node = n; lbl_block = -1; lbl_kind = Sim.Engine.Wakeup }
          engine)
  in
  let tx = Array.init config.nodes (fun _ -> Link.create ~bandwidth:config.bandwidth) in
  let t =
    {
      engine;
      config;
      cpus;
      node_signal;
      tx;
      next_pid;
      remote_messages = 0;
      local_messages = 0;
      reliable = None;
    }
  in
  if not (Fault.Plan.is_empty plan) then begin
    let phys ~at ~src_node ~dst_node ~size k =
      let arrival =
        if src_node = dst_node then at +. config.intra_node_latency
        else
          let leaves = Link.transmit t.tx.(src_node) ~now:at ~size in
          leaves +. config.one_way_latency
      in
      let label =
        { Sim.Engine.lbl_node = dst_node; lbl_block = -1; lbl_kind = Sim.Engine.Message }
      in
      Sim.Engine.at engine ~label arrival (fun () -> k arrival)
    in
    let pulse node = Sim.Signal.pulse t.node_signal.(node) in
    t.reliable <- Some (Reliable.create ~engine ~plan ~cfg:reliable_cfg ~phys ~pulse)
  end;
  t

let reliable t = t.reliable

let engine t = t.engine
let config t = t.config
let cpu t ~node ~cpu = t.cpus.(node).(cpu)
let node_signal t node = t.node_signal.(node)
let total_cpus t = t.config.nodes * t.config.cpus_per_node

(** [nth_cpu t i] is processor [i] in node-major order (processors 0..3
    are node 0, 4..7 node 1, ...), matching the paper's placement where
    2- and 4-processor runs use one node and 16-processor runs use four. *)
let nth_cpu t i =
  let per = t.config.cpus_per_node in
  t.cpus.(i / per).(i mod per)

(** [send t ?at ?block ~src_node ~dst_node ~size deliver] transmits a
    message; [deliver] runs at the arrival time (it should enqueue into
    the right mailbox), after which the destination node's signal is
    pulsed.  [at] defaults to the current time; protocol handlers that
    service several messages back-to-back pass their time cursor.
    [block] declares the coherence block the message concerns (default
    none): the delivery event is labeled with it plus the destination
    node, so a {!Sim.Engine.Guided} explorer can tell which same-time
    deliveries commute. *)
let send t ?at ?(block = -1) ~src_node ~dst_node ~size deliver =
  let now = match at with Some x -> x | None -> Sim.Engine.now t.engine in
  let label =
    { Sim.Engine.lbl_node = dst_node; lbl_block = block; lbl_kind = Sim.Engine.Message }
  in
  if src_node = dst_node then begin
    (* Intra-node messages move through shared memory, not the Memory
       Channel: the fault model never touches them. *)
    t.local_messages <- t.local_messages + 1;
    let arrival = now +. t.config.intra_node_latency in
    Sim.Engine.at t.engine ~label arrival (fun () ->
        deliver ();
        Sim.Signal.pulse t.node_signal.(dst_node))
  end
  else begin
    t.remote_messages <- t.remote_messages + 1;
    match t.reliable with
    | Some r -> Reliable.send r ~at:now ~src_node ~dst_node ~size deliver
    | None ->
        let leaves = Link.transmit t.tx.(src_node) ~now ~size in
        let arrival = leaves +. t.config.one_way_latency in
        Sim.Engine.at t.engine ~label arrival (fun () ->
            deliver ();
            Sim.Signal.pulse t.node_signal.(dst_node))
  end

let remote_messages t = t.remote_messages
let local_messages t = t.local_messages
