(** Sequence-numbered ack/retransmit transport over the raw links.

    Sender side, per directed channel: frames get consecutive sequence
    numbers and sit in an unacked table; a per-channel timer (period
    [timeout], armed only while unacked frames exist, so an idle channel
    schedules nothing) retransmits every frame whose backed-off RTO has
    expired.  Receiver side: every intact arrival at an up node is acked
    (selectively, by sequence number — a lost ack is repaired by the
    retransmission it provokes); frames already delivered or buffered
    are suppressed as duplicates; out-of-order frames wait in a
    reassembly buffer and are handed to the protocol strictly in
    sequence order.  Node outages from the fault plan silence an
    endpoint in both directions: its transmissions and its arrivals are
    discarded, and the retransmit machinery repairs the gap when the
    node recovers. *)

type config = {
  timeout : float;
  backoff : float;
  rto_cap : float;
  max_retries : int;
  ack_size : int;
  header_size : int;
}

(* The base timeout covers a Memory Channel round trip (2 x 4 us) plus
   transmit occupancy with ample slack; a premature retransmission is
   only duplicate traffic, never an error, so erring low is safe. *)
let default_config =
  {
    timeout = 60.0e-6;
    backoff = 2.0;
    rto_cap = 2.0e-3;
    max_retries = 30;
    ack_size = 16;
    header_size = 8;
  }

exception Link_failed of { src : int; dst : int; seq : int; attempts : int }

type link_stats = {
  s_data_sent : Sim.Stats.counter;
  s_retransmits : Sim.Stats.counter;
  s_acks_sent : Sim.Stats.counter;
  s_inj_dropped : Sim.Stats.counter;
  s_inj_duplicated : Sim.Stats.counter;
  s_inj_corrupted : Sim.Stats.counter;
  s_inj_delayed : Sim.Stats.counter;
  s_dup_suppressed : Sim.Stats.counter;
  s_outage_dropped : Sim.Stats.counter;
}

let fresh_stats () =
  {
    s_data_sent = Sim.Stats.counter ();
    s_retransmits = Sim.Stats.counter ();
    s_acks_sent = Sim.Stats.counter ();
    s_inj_dropped = Sim.Stats.counter ();
    s_inj_duplicated = Sim.Stats.counter ();
    s_inj_corrupted = Sim.Stats.counter ();
    s_inj_delayed = Sim.Stats.counter ();
    s_dup_suppressed = Sim.Stats.counter ();
    s_outage_dropped = Sim.Stats.counter ();
  }

type frame = {
  f_seq : int;
  f_size : int;
  f_deliver : unit -> unit;
  mutable f_attempts : int;
  mutable f_last_tx : float;
  mutable f_acked : bool;
}

type chan = {
  c_src : int;
  c_dst : int;
  mutable tx_next : int;
  unacked : (int, frame) Hashtbl.t;
  mutable timer_armed : bool;
  mutable rx_expected : int;
  rx_buffer : (int, frame) Hashtbl.t;
}

type t = {
  engine : Sim.Engine.t;
  plan : Fault.Plan.t;
  cfg : config;
  phys : at:float -> src_node:int -> dst_node:int -> size:int -> (float -> unit) -> unit;
  pulse : int -> unit;
  chans : (int * int, chan) Hashtbl.t;
  stats : (int * int, link_stats) Hashtbl.t;
}

let create ~engine ~plan ~cfg ~phys ~pulse =
  { engine; plan; cfg; phys; pulse; chans = Hashtbl.create 16; stats = Hashtbl.create 16 }

let chan t src dst =
  match Hashtbl.find_opt t.chans (src, dst) with
  | Some c -> c
  | None ->
      let c =
        {
          c_src = src;
          c_dst = dst;
          tx_next = 0;
          unacked = Hashtbl.create 16;
          timer_armed = false;
          rx_expected = 0;
          rx_buffer = Hashtbl.create 16;
        }
      in
      Hashtbl.replace t.chans (src, dst) c;
      c

let lstats t src dst =
  match Hashtbl.find_opt t.stats (src, dst) with
  | Some s -> s
  | None ->
      let s = fresh_stats () in
      Hashtbl.replace t.stats (src, dst) s;
      s

let rto t fr =
  Float.min (t.cfg.timeout *. (t.cfg.backoff ** float_of_int (fr.f_attempts - 1))) t.cfg.rto_cap

(* Put a frame (or one injected copy of it) on the raw channel and run
   [k] at its possibly-delayed arrival.  Faulted frames still occupy the
   sender's link: a frame lost downstream was transmitted all the same. *)
let faulted_phys t ~at ~src ~dst ~size st k =
  match Fault.Plan.decide t.plan ~src ~dst with
  | Fault.Plan.Drop ->
      Sim.Stats.incr_counter st.s_inj_dropped;
      Sim.Trace.f t.engine "fault %d->%d: drop (%d B)" src dst size;
      t.phys ~at ~src_node:src ~dst_node:dst ~size (fun _ -> ())
  | Fault.Plan.Corrupt ->
      (* The checksum in the frame header catches the damage at the
         receiver, which discards the frame; retransmission repairs it. *)
      Sim.Stats.incr_counter st.s_inj_corrupted;
      Sim.Trace.f t.engine "fault %d->%d: corrupt (%d B)" src dst size;
      t.phys ~at ~src_node:src ~dst_node:dst ~size (fun _ -> ())
  | Fault.Plan.Duplicate ->
      Sim.Stats.incr_counter st.s_inj_duplicated;
      Sim.Trace.f t.engine "fault %d->%d: duplicate (%d B)" src dst size;
      t.phys ~at ~src_node:src ~dst_node:dst ~size k;
      t.phys ~at ~src_node:src ~dst_node:dst ~size k
  | Fault.Plan.Delay extra ->
      Sim.Stats.incr_counter st.s_inj_delayed;
      Sim.Trace.f t.engine "fault %d->%d: delay +%.1e s (%d B)" src dst extra size;
      t.phys ~at ~src_node:src ~dst_node:dst ~size (fun arr ->
          let label =
            { Sim.Engine.lbl_node = dst; lbl_block = -1; lbl_kind = Sim.Engine.Message }
          in
          Sim.Engine.at t.engine ~label (arr +. extra) (fun () -> k (arr +. extra)))
  | Fault.Plan.Deliver -> t.phys ~at ~src_node:src ~dst_node:dst ~size k

let send_ack t ch seq ~at =
  (* Acks travel (and are faulted) on the reverse link. *)
  let st = lstats t ch.c_dst ch.c_src in
  Sim.Stats.incr_counter st.s_acks_sent;
  let deliver_ack arr =
    if Fault.Plan.node_down t.plan ~node:ch.c_src ~at:arr then
      Sim.Stats.incr_counter st.s_outage_dropped
    else
      match Hashtbl.find_opt ch.unacked seq with
      | Some fr ->
          fr.f_acked <- true;
          Hashtbl.remove ch.unacked seq
      | None -> () (* duplicate ack *)
  in
  faulted_phys t ~at ~src:ch.c_dst ~dst:ch.c_src ~size:t.cfg.ack_size st deliver_ack

let rec transmit t ch fr ~at =
  let st = lstats t ch.c_src ch.c_dst in
  if fr.f_attempts = 0 then Sim.Stats.incr_counter st.s_data_sent
  else begin
    Sim.Stats.incr_counter st.s_retransmits;
    Sim.Trace.f t.engine "reliable %d->%d: retransmit seq %d (attempt %d)" ch.c_src ch.c_dst
      fr.f_seq (fr.f_attempts + 1)
  end;
  fr.f_attempts <- fr.f_attempts + 1;
  fr.f_last_tx <- at;
  if Fault.Plan.node_down t.plan ~node:ch.c_src ~at then
    (* The sending node is stalled: the store to the transmit region
       never happens.  The retransmit timer recovers after the stall. *)
    Sim.Stats.incr_counter st.s_outage_dropped
  else
    faulted_phys t ~at ~src:ch.c_src ~dst:ch.c_dst ~size:(fr.f_size + t.cfg.header_size) st
      (fun arr -> rx t ch fr arr);
  arm_timer t ch ~at

and rx t ch fr arrival =
  let st = lstats t ch.c_src ch.c_dst in
  if Fault.Plan.node_down t.plan ~node:ch.c_dst ~at:arrival then
    Sim.Stats.incr_counter st.s_outage_dropped
  else begin
    send_ack t ch fr.f_seq ~at:arrival;
    if fr.f_seq < ch.rx_expected || Hashtbl.mem ch.rx_buffer fr.f_seq then begin
      Sim.Stats.incr_counter st.s_dup_suppressed;
      Sim.Trace.f t.engine "reliable %d->%d: duplicate seq %d suppressed" ch.c_src ch.c_dst
        fr.f_seq
    end
    else begin
      Hashtbl.replace ch.rx_buffer fr.f_seq fr;
      let delivered = ref false in
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt ch.rx_buffer ch.rx_expected with
        | Some f ->
            Hashtbl.remove ch.rx_buffer ch.rx_expected;
            ch.rx_expected <- ch.rx_expected + 1;
            f.f_deliver ();
            delivered := true
        | None -> continue := false
      done;
      if !delivered then t.pulse ch.c_dst
    end
  end

(* One check event per channel, armed only while frames are unacked, so
   a quiescent cluster has no pending transport events and the run's
   final virtual time is dragged out by at most one [timeout]. *)
and arm_timer t ch ~at =
  if not ch.timer_armed then begin
    ch.timer_armed <- true;
    let label =
      { Sim.Engine.lbl_node = ch.c_src; lbl_block = -1; lbl_kind = Sim.Engine.Timer }
    in
    Sim.Engine.at t.engine ~label (at +. t.cfg.timeout) (fun () ->
        ch.timer_armed <- false;
        if Hashtbl.length ch.unacked > 0 then begin
          let now = Sim.Engine.now t.engine in
          let due =
            Hashtbl.fold
              (fun _ fr acc -> if now -. fr.f_last_tx >= rto t fr then fr :: acc else acc)
              ch.unacked []
          in
          (* Hashtbl.fold order is unspecified; retransmit in sequence
             order so link occupancy (and rng draws) stay deterministic. *)
          let due = List.sort (fun a b -> compare a.f_seq b.f_seq) due in
          List.iter
            (fun fr ->
              if fr.f_attempts > t.cfg.max_retries then
                raise
                  (Link_failed
                     { src = ch.c_src; dst = ch.c_dst; seq = fr.f_seq; attempts = fr.f_attempts });
              transmit t ch fr ~at:now)
            due;
          arm_timer t ch ~at:now
        end)
  end

let send t ~at ~src_node ~dst_node ~size deliver =
  let ch = chan t src_node dst_node in
  let fr =
    {
      f_seq = ch.tx_next;
      f_size = size;
      f_deliver = deliver;
      f_attempts = 0;
      f_last_tx = at;
      f_acked = false;
    }
  in
  ch.tx_next <- ch.tx_next + 1;
  Hashtbl.replace ch.unacked fr.f_seq fr;
  transmit t ch fr ~at

(* --- reporting --- *)

type totals = {
  data_sent : int;
  retransmits : int;
  acks_sent : int;
  inj_dropped : int;
  inj_duplicated : int;
  inj_corrupted : int;
  inj_delayed : int;
  dup_suppressed : int;
  outage_dropped : int;
}

let totals_of st =
  let v = Sim.Stats.counter_value in
  {
    data_sent = v st.s_data_sent;
    retransmits = v st.s_retransmits;
    acks_sent = v st.s_acks_sent;
    inj_dropped = v st.s_inj_dropped;
    inj_duplicated = v st.s_inj_duplicated;
    inj_corrupted = v st.s_inj_corrupted;
    inj_delayed = v st.s_inj_delayed;
    dup_suppressed = v st.s_dup_suppressed;
    outage_dropped = v st.s_outage_dropped;
  }

let per_link t =
  Hashtbl.fold (fun link st acc -> (link, totals_of st) :: acc) t.stats []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let totals t =
  List.fold_left
    (fun acc (_, x) ->
      {
        data_sent = acc.data_sent + x.data_sent;
        retransmits = acc.retransmits + x.retransmits;
        acks_sent = acc.acks_sent + x.acks_sent;
        inj_dropped = acc.inj_dropped + x.inj_dropped;
        inj_duplicated = acc.inj_duplicated + x.inj_duplicated;
        inj_corrupted = acc.inj_corrupted + x.inj_corrupted;
        inj_delayed = acc.inj_delayed + x.inj_delayed;
        dup_suppressed = acc.dup_suppressed + x.dup_suppressed;
        outage_dropped = acc.outage_dropped + x.outage_dropped;
      })
    {
      data_sent = 0;
      retransmits = 0;
      acks_sent = 0;
      inj_dropped = 0;
      inj_duplicated = 0;
      inj_corrupted = 0;
      inj_delayed = 0;
      dup_suppressed = 0;
      outage_dropped = 0;
    }
    (per_link t)

let node_outage_drops t node =
  List.fold_left
    (fun acc ((src, dst), x) ->
      if src = node || dst = node then acc + x.outage_dropped else acc)
    0 (per_link t)

let pp_totals ppf x =
  Format.fprintf ppf
    "sent %d  retx %d  acks %d  injected drop/dup/corrupt/delay %d/%d/%d/%d  dup-suppressed %d  outage-drops %d"
    x.data_sent x.retransmits x.acks_sent x.inj_dropped x.inj_duplicated x.inj_corrupted
    x.inj_delayed x.dup_suppressed x.outage_dropped

let pp_report ppf t =
  Format.fprintf ppf "reliable transport (%a):@." Fault.Plan.pp t.plan;
  List.iter
    (fun ((src, dst), x) -> Format.fprintf ppf "  link %d->%d: %a@." src dst pp_totals x)
    (per_link t);
  Format.fprintf ppf "  total: %a" pp_totals (totals t)
