(** Sequence-numbered ack/retransmit transport over the raw Memory
    Channel links.

    The raw channel model ({!Link} occupancy + fixed latency) is
    perfectly reliable; when a {!Fault.Plan} injects loss, duplication,
    reordering or corruption, this layer restores exactly-once in-order
    delivery per directed node pair, so the coherence protocol above
    sees the same channel semantics it was built for.  {!Net} installs
    it only when the fault plan is non-empty: with no plan the raw path
    is used unchanged and the transport costs nothing. *)

type config = {
  timeout : float;  (** base retransmit timeout, seconds *)
  backoff : float;  (** per-attempt RTO multiplier *)
  rto_cap : float;  (** upper bound on the backed-off RTO *)
  max_retries : int;  (** transmissions before the link is declared dead *)
  ack_size : int;  (** wire size of an ack frame, bytes *)
  header_size : int;  (** seq + checksum bytes added to each data frame *)
}

val default_config : config

(** Raised when a frame exhausts [max_retries] (e.g. the destination
    node crashed and never recovered). *)
exception
  Link_failed of { src : int; dst : int; seq : int; attempts : int }

type t

(** [create ~engine ~plan ~cfg ~phys ~pulse] — [phys ~at ~src_node
    ~dst_node ~size k] must put a frame on the raw channel and run
    [k arrival_time] at its arrival instant; [pulse node] wakes the
    destination node after in-order deliveries. *)
val create :
  engine:Sim.Engine.t ->
  plan:Fault.Plan.t ->
  cfg:config ->
  phys:(at:float -> src_node:int -> dst_node:int -> size:int -> (float -> unit) -> unit) ->
  pulse:(int -> unit) ->
  t

(** [send t ~at ~src_node ~dst_node ~size deliver] — transmit a payload;
    [deliver] runs exactly once, at the instant the frame is delivered
    in sequence order at the destination. *)
val send :
  t -> at:float -> src_node:int -> dst_node:int -> size:int -> (unit -> unit) -> unit

(** Per-link counters (all cumulative).  [data_sent] counts first
    transmissions; injected faults are counted on the link that carried
    the faulted frame (acks travel on the reverse link). *)
type totals = {
  data_sent : int;
  retransmits : int;
  acks_sent : int;
  inj_dropped : int;
  inj_duplicated : int;
  inj_corrupted : int;
  inj_delayed : int;
  dup_suppressed : int;
  outage_dropped : int;  (** frames discarded because an endpoint node was down *)
}

(** [per_link t] — counters per directed link, sorted by (src, dst). *)
val per_link : t -> ((int * int) * totals) list

(** [totals t] — cluster-wide sums. *)
val totals : t -> totals

(** [node_outage_drops t node] — frames lost at [node] while it was down
    (either direction). *)
val node_outage_drops : t -> int -> int

val pp_report : Format.formatter -> t -> unit
