(** The cluster OS layer (Section 4).

    The kernel manages a fixed pool of Shasta processes created at
    startup ("the user specifies a fixed number of Shasta processes...
    the maximum number of processes that will ever be alive",
    Section 4.3.3).  Application processes created by [fork] are assigned
    to pool slots; when one exits, its Shasta process remains alive,
    keeps serving protocol requests for its application and directory
    data, and can be reused for a later fork.

    System calls whose arguments reference shared memory are validated
    first: the buffer is treated as a batch of loads/stores and brought
    into the right coherence state before the call proceeds
    (Section 4.1).  [fork] copies the parent's writable private data
    (stack + static) to the child's node over the network (Section 4.2).

    [pid_block]/[pid_unblock]/[kill] are implemented with messages; a
    blocked process is exactly the situation the direct-downgrade
    optimisation (Section 4.3.4) exists for. *)

exception Exit_process of int
exception No_children
exception No_free_slot
exception Bad_fd of int

type ostate = Embryo | Active | In_wait | Pid_blocked | Zombie | Reaped

type fd = { fd_file : Vfs.file; mutable pos : int }

type osproc = {
  ospid : int;
  parent : int;  (** -1 for the initial process *)
  mutable state : ostate;
  mutable exit_status : int;
  mutable children : int list;
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
  mutable slot : int;
  mutable killed : bool;
  mutable unblock_pending : bool;
      (** a [pid_unblock] arrived while the target was not blocked; the
          next [pid_block] consumes it instead of sleeping (condition-
          variable semantics, avoiding lost wakeups) *)
}

type job = { j_ospid : int; j_body : ctx -> unit; j_private : Bytes.t option }

and slot = {
  s_index : int;
  s_cpu : int;
  mutable s_runtime : Shasta.Runtime.t option;
  mutable s_pending : job option;
  mutable s_busy : bool;
}

and ctx = { k : t; os : osproc; h : Shasta.Runtime.t }

and t = {
  cluster : Shasta.Cluster.t;
  vfs : Vfs.t;
  slots : slot array;
  procs : (int, osproc) Hashtbl.t;
  mutable next_ospid : int;
  shm_segs : (int, int * int) Hashtbl.t;  (** segid -> (addr, bytes) *)
  mutable next_seg : int;
  mutable next_slot_rr : int;
  fork_cpu_cost : float;
  syscall_entry_cost : float;
  mutable forks : int;
  mutable syscalls : int;
}

let cfg k = k.cluster.Shasta.Cluster.cfg
let net k = k.cluster.Shasta.Cluster.net

let runtime_of_slot slot =
  match slot.s_runtime with
  | Some h -> h
  | None -> invalid_arg "Kernel: slot not booted"

let proc k ospid = Hashtbl.find k.procs ospid

let node_of_slot k slot = (Mchan.Net.nth_cpu (net k) slot.s_cpu).Sim.Proc.node_id

(* The slot loop: wait for an assignment, install the forked private
   image, run the process body, clean up, repeat.  While idle the Shasta
   process keeps servicing incoming messages (its stall polls). *)
let slot_loop k slot (h : Shasta.Runtime.t) =
  slot.s_runtime <- Some h;
  let rec loop () =
    h.Shasta.Runtime.proc.Sim.Proc.yield_waiting <- true;
    Sim.Proc.stall (fun () -> slot.s_pending <> None);
    h.Shasta.Runtime.proc.Sim.Proc.yield_waiting <- false;
    (match slot.s_pending with
    | None -> ()
    | Some job ->
        slot.s_pending <- None;
        slot.s_busy <- true;
        (match job.j_private with
        | Some img ->
            Bytes.blit img 0 h.Shasta.Runtime.private_mem 0
              (min (Bytes.length img) (Bytes.length h.Shasta.Runtime.private_mem))
        | None -> ());
        let os = proc k job.j_ospid in
        os.state <- Active;
        let ctx = { k; os; h } in
        let status =
          try
            job.j_body ctx;
            0
          with
          | Exit_process s -> s
          | e ->
              Format.eprintf "osproc %d died: %s@.%s@." os.ospid (Printexc.to_string e)
                (Printexc.get_backtrace ());
              (-1)
        in
        (* Process termination: close descriptors, become a zombie, wake
           a waiting parent.  The Shasta process itself stays alive. *)
        Hashtbl.reset os.fds;
        os.exit_status <- status;
        os.state <- Zombie;
        (match Hashtbl.find_opt k.procs os.parent with
        | Some p when p.state = In_wait ->
            Shasta.Runtime.wakeup (runtime_of_slot k.slots.(p.slot))
        | Some _ | None -> ());
        slot.s_busy <- false);
    loop ()
  in
  loop ()

(** [boot cluster ~slot_cpus ()] — create the kernel and its fixed pool
    of Shasta processes, one per entry of [slot_cpus] (a global processor
    index each; several slots may share a processor, which is how
    more-processes-than-processors configurations are built). *)
let spawn_protocol_process cluster ~cpu =
  ignore
    (Shasta.Cluster.spawn ~serve:false ~priority:1 cluster ~cpu
       (Printf.sprintf "protoproc%d" cpu)
       (fun h ->
         h.Shasta.Runtime.proc.Sim.Proc.yield_waiting <- true;
         Sim.Proc.stall (fun () -> false)))

let boot ?(fork_cpu_cost = 80.0e-6) ?(syscall_entry_cost = 4.0e-6)
    ?(protocol_processes = true) cluster ~slot_cpus () =
  let k =
    {
      cluster;
      vfs = Vfs.create ();
      slots =
        Array.of_list
          (List.mapi (fun i cpu -> { s_index = i; s_cpu = cpu; s_runtime = None; s_pending = None; s_busy = false }) slot_cpus);
      procs = Hashtbl.create 64;
      next_ospid = 1;
      shm_segs = Hashtbl.create 16;
      next_seg = 1;
      next_slot_rr = 0;
      fork_cpu_cost;
      syscall_entry_cost;
      forks = 0;
      syscalls = 0;
    }
  in
  Array.iter
    (fun slot ->
      ignore
        (Shasta.Cluster.spawn ~serve:false k.cluster ~cpu:slot.s_cpu
           (Printf.sprintf "slot%d" slot.s_index)
           (fun h -> slot_loop k slot h)))
    k.slots;
  (* One low-priority protocol process per processor (Section 4.3.2):
     always available to service incoming messages, preempted the moment
     an application process becomes runnable.  Without them, a node whose
     only application process is blocked cannot serve requests at all. *)
  if protocol_processes then
    for cpu = 0 to Mchan.Net.total_cpus (net k) - 1 do
      spawn_protocol_process cluster ~cpu
    done;
  k

let fresh_ospid k =
  let p = k.next_ospid in
  k.next_ospid <- p + 1;
  p

let make_osproc k ~parent ~slot =
  let ospid = fresh_ospid k in
  let os =
    {
      ospid;
      parent;
      state = Embryo;
      exit_status = 0;
      children = [];
      fds = Hashtbl.create 8;
      next_fd = 3;
      slot;
      killed = false;
      unblock_pending = false;
    }
  in
  Hashtbl.replace k.procs ospid os;
  (match Hashtbl.find_opt k.procs parent with
  | Some p -> p.children <- ospid :: p.children
  | None -> ());
  os

let pick_slot k ~cpu_hint =
  let n = Array.length k.slots in
  let free s = (not s.s_busy) && s.s_pending = None in
  let by_hint =
    match cpu_hint with
    | Some cpu -> Array.to_list k.slots |> List.find_opt (fun s -> s.s_cpu = cpu && free s)
    | None -> None
  in
  match by_hint with
  | Some s -> s
  | None ->
      let rec scan i tried =
        if tried >= n then raise No_free_slot
        else
          let s = k.slots.(i mod n) in
          if free s then begin
            k.next_slot_rr <- i + 1;
            s
          end
          else scan (i + 1) (tried + 1)
      in
      scan k.next_slot_rr 0

let assign k slot job =
  slot.s_pending <- Some job;
  (match slot.s_runtime with
  | Some h -> Sim.Signal.pulse (Mchan.Net.node_signal (net k) (Shasta.Runtime.node h))
  | None -> ())

(** [start k ?cpu_hint body] — launch a root process (no parent);
    usable before or during the run. *)
let start k ?cpu_hint body =
  let slot = pick_slot k ~cpu_hint in
  let os = make_osproc k ~parent:(-1) ~slot:slot.s_index in
  assign k slot { j_ospid = os.ospid; j_body = body; j_private = None };
  os.ospid

(* --- system calls (called from process bodies, fiber context) --- *)

let syscall_enter ctx =
  ctx.k.syscalls <- ctx.k.syscalls + 1;
  Shasta.Runtime.work ctx.h ctx.k.syscall_entry_cost

let getpid ctx = ctx.os.ospid

(** [fork ctx ?cpu_hint body] — create a child process running [body].
    The child may land on any node; the parent's writable private data
    is copied over the network (our remote fork does not duplicate open
    files or signal state — the same limitation the paper notes). *)
let fork ctx ?cpu_hint body =
  syscall_enter ctx;
  ctx.k.forks <- ctx.k.forks + 1;
  Shasta.Runtime.work ctx.h ctx.k.fork_cpu_cost;
  let slot = pick_slot ctx.k ~cpu_hint in
  let os = make_osproc ctx.k ~parent:ctx.os.ospid ~slot:slot.s_index in
  let image = Bytes.copy ctx.h.Shasta.Runtime.private_mem in
  let job = { j_ospid = os.ospid; j_body = body; j_private = Some image } in
  let src = Shasta.Runtime.node ctx.h in
  let dst = node_of_slot ctx.k slot in
  Mchan.Net.send (net ctx.k) ~src_node:src ~dst_node:dst ~size:(Bytes.length image) (fun () ->
      assign ctx.k slot job);
  os.ospid

let exit_process _ctx status = raise (Exit_process status)

(** [wait ctx] — wait for any child to exit; returns [(ospid, status)]. *)
let rec wait ctx =
  syscall_enter ctx;
  let zombie =
    List.find_opt
      (fun c ->
        match Hashtbl.find_opt ctx.k.procs c with
        | Some p -> p.state = Zombie
        | None -> false)
      ctx.os.children
  in
  match zombie with
  | Some c ->
      let p = proc ctx.k c in
      p.state <- Reaped;
      ctx.os.children <- List.filter (fun x -> x <> c) ctx.os.children;
      (c, p.exit_status)
  | None ->
      let live =
        List.exists
          (fun c ->
            match Hashtbl.find_opt ctx.k.procs c with
            | Some p -> p.state <> Reaped
            | None -> false)
          ctx.os.children
      in
      if not live then raise No_children;
      ctx.os.state <- In_wait;
      Shasta.Runtime.block ctx.h;
      ctx.os.state <- Active;
      wait ctx

(** [pid_block ctx] — block until another process issues [pid_unblock];
    the typical Oracle daemon wait.  Returns [true] if woken by a kill. *)
let pid_block ctx =
  syscall_enter ctx;
  if ctx.os.unblock_pending then ctx.os.unblock_pending <- false
  else begin
    ctx.os.state <- Pid_blocked;
    Shasta.Runtime.block ctx.h;
    ctx.os.state <- Active
  end;
  ctx.os.killed

(** [pid_unblock ctx target] — wake a pid-blocked process (a message to
    its node, as in Section 4.2). *)
let pid_unblock ctx target =
  syscall_enter ctx;
  match Hashtbl.find_opt ctx.k.procs target with
  | None -> ()
  | Some p ->
      let slot = ctx.k.slots.(p.slot) in
      let dst = node_of_slot ctx.k slot in
      Mchan.Net.send (net ctx.k) ~src_node:(Shasta.Runtime.node ctx.h) ~dst_node:dst ~size:32
        (fun () ->
          if p.state = Pid_blocked then Shasta.Runtime.wakeup (runtime_of_slot slot)
          else p.unblock_pending <- true)

(** [kill ctx target] — deliver a terminating signal: sets the target's
    killed flag and wakes it if blocked (cooperative termination). *)
let kill ctx target =
  syscall_enter ctx;
  match Hashtbl.find_opt ctx.k.procs target with
  | None -> ()
  | Some p ->
      let slot = ctx.k.slots.(p.slot) in
      let dst = node_of_slot ctx.k slot in
      Mchan.Net.send (net ctx.k) ~src_node:(Shasta.Runtime.node ctx.h) ~dst_node:dst ~size:32
        (fun () ->
          p.killed <- true;
          if p.state = Pid_blocked || p.state = In_wait then
            Shasta.Runtime.wakeup (runtime_of_slot slot))

(* --- shared memory segments (Section 4.2) --- *)

(** [shmget ctx ?granularity bytes] — create a segment in the Shasta
    shared region; [granularity] hints the coherence block size the
    segment wants (see {!Shasta.Cluster.alloc}). *)
let shmget ?granularity ctx bytes =
  syscall_enter ctx;
  let addr = Shasta.Cluster.alloc ?granularity ctx.k.cluster bytes in
  let id = ctx.k.next_seg in
  ctx.k.next_seg <- id + 1;
  Hashtbl.replace ctx.k.shm_segs id (addr, bytes);
  id

(** [shmat ctx segid] — attach: returns the segment's address.  Attaching
    at a caller-chosen address is unsupported, as in the paper. *)
let shmat ctx segid =
  syscall_enter ctx;
  match Hashtbl.find_opt ctx.k.shm_segs segid with
  | Some (addr, _) -> addr
  | None -> invalid_arg "shmat: unknown segment"

(* --- file system calls with argument validation (Section 4.1) --- *)

(* Treat the buffer as a batch of per-line accesses and bring every line
   into the needed state before the kernel touches it.  Validation is a
   protocol routine, not inline code: it walks the ranges in software,
   which is the measurable per-line overhead of Table 2 (about 0.15 us a
   line in Base-Shasta; more under SMP-Shasta, whose shared protocol
   structures need locking). *)
let validate_line_cost_base = 0.14e-6
let validate_line_cost_smp = 0.55e-6

let validate ctx ~addr ~len ~(kind : Alpha.Insn.access_kind) =
  if
    len > 0
    && (cfg ctx.k).Shasta.Config.checks_enabled
    && Shasta.Runtime.is_shared ctx.h addr
  then begin
    let pcfg = (cfg ctx.k).Shasta.Config.protocol in
    let layout = Shasta.Runtime.layout ctx.h in
    (* One check per coherence block the buffer overlaps: block extents
       vary by region, so walk the layout rather than a fixed stride. *)
    let es =
      List.map
        (fun b -> (Protocol.Layout.block_base layout b, Alpha.Insn.W32, kind))
        (Protocol.Layout.blocks_of_range layout ~addr ~len)
    in
    let per_line =
      match pcfg.Protocol.Config.variant with
      | Protocol.Config.Base -> validate_line_cost_base
      | Protocol.Config.Smp -> validate_line_cost_smp
    in
    Shasta.Runtime.work ctx.h (float_of_int (List.length es) *. per_line);
    Shasta.Runtime.batch ctx.h es
  end

let fresh_fd ctx file =
  let n = ctx.os.next_fd in
  ctx.os.next_fd <- n + 1;
  Hashtbl.replace ctx.os.fds n { fd_file = file; pos = 0 };
  n

let fd_state ctx fd =
  match Hashtbl.find_opt ctx.os.fds fd with Some s -> s | None -> raise (Bad_fd fd)

(** [open_file ctx path] — open (creating if needed). *)
let open_file ctx path =
  syscall_enter ctx;
  Shasta.Runtime.work ctx.h ctx.k.vfs.Vfs.open_cost;
  let f = Vfs.create_file ctx.k.vfs path in
  fresh_fd ctx f

(** [read ctx fd ~buf ~len] — read into simulated memory at [buf].  A
    shared-memory buffer is validated (fetched exclusive) first. *)
let read ctx fd ~buf ~len =
  syscall_enter ctx;
  let st = fd_state ctx fd in
  validate ctx ~addr:buf ~len ~kind:Alpha.Insn.Store_acc;
  let vfs = ctx.k.vfs in
  let cold =
    Vfs.touch_cache vfs ~node:(Shasta.Runtime.node ctx.h)
      ~now:(Shasta.Cluster.now ctx.k.cluster) st.fd_file
  in
  Shasta.Runtime.work ctx.h (Vfs.read_cost vfs len +. if cold then vfs.Vfs.disk_cost else 0.0);
  let tmp = Bytes.create len in
  let n = Vfs.pread st.fd_file ~pos:st.pos ~len tmp 0 in
  st.pos <- st.pos + n;
  if n > 0 then begin
    if Shasta.Runtime.is_shared ctx.h buf then
      Protocol.Engine.raw_blit_in ctx.h.Shasta.Runtime.pcb ~addr:buf tmp 0 n
    else Bytes.blit tmp 0 ctx.h.Shasta.Runtime.private_mem buf n
  end;
  n

(** [write ctx fd ~buf ~len] — write from simulated memory at [buf]. *)
let write ctx fd ~buf ~len =
  syscall_enter ctx;
  let st = fd_state ctx fd in
  validate ctx ~addr:buf ~len ~kind:Alpha.Insn.Load_acc;
  let vfs = ctx.k.vfs in
  Shasta.Runtime.work ctx.h (Vfs.write_cost vfs len);
  let tmp = Bytes.create len in
  if Shasta.Runtime.is_shared ctx.h buf then
    Protocol.Engine.raw_blit_out ctx.h.Shasta.Runtime.pcb ~addr:buf ~len tmp 0
  else Bytes.blit ctx.h.Shasta.Runtime.private_mem buf tmp 0 len;
  Vfs.pwrite vfs st.fd_file ~pos:st.pos tmp 0 len;
  st.pos <- st.pos + len;
  len

let lseek ctx fd pos =
  let st = fd_state ctx fd in
  st.pos <- pos

let close ctx fd =
  syscall_enter ctx;
  Hashtbl.remove ctx.os.fds fd

(* --- protocol processes (Section 4.3.2) --- *)

(** [spawn_protocol_processes k] — one low-priority process per
    processor (already done by [boot] unless [protocol_processes:false]). *)
let spawn_protocol_processes k =
  for cpu = 0 to Mchan.Net.total_cpus (net k) - 1 do
    spawn_protocol_process k.cluster ~cpu
  done
