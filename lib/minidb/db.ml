(** The miniature database engine (the Oracle 7.3 stand-in).

    Structure mirrors what the paper needed Oracle for:

    - an SGA shared-memory segment ([shmget]/[shmat]) holding the buffer
      cache, a redo log buffer, and a statistics page;
    - long-lived {e daemon} processes — a log writer and a stats/db
      writer — that sit in [pid_block] and are woken by servers with
      [pid_unblock] (so their exclusive cache lines can only be taken
      with downgrades, making the direct-downgrade optimisation of
      Section 4.3.4 matter);
    - {e server} processes created by [fork], possibly on other nodes,
      that execute transactions (OLTP, TPC-B-like) or scans (DSS,
      TPC-D-like) against pages fetched through [read] system calls with
      shared-memory buffers (validated, Section 4.1). *)

module R = Shasta.Runtime
module K = Osim.Kernel

type t = {
  k : K.t;
  file : string;
  pages : int;
  rows_per_page : int;
  page_bytes : int;
  buf : Buffer.t;
  sga : int;
  stats_addr : int;  (** counters + the daemon request/response words *)
  logctl : int;  (** log head (appended) and flushed positions *)
  logbuf : int;
  logbuf_bytes : int;
  log_latch : int;
  stats_latch : int;
  mutable lgwr : int;  (** ospid of the log-writer daemon *)
  mutable dbwr : int;  (** ospid of the stats/db-writer daemon *)
  mutable daemon_wakeups : int;
}

let row_bytes = 16

(* MP lock id map: 0 = log latch, 1 = stats latch, 100.. = frame latches. *)
let log_latch_id = 0
let stats_latch_id = 1
let frame_latch0 = 100

(* Offsets inside the stats page. *)
let off_req = 8 (* requesting ospid *)
let off_done = 16 (* completion sequence number *)
let off_seq = 24 (* request sequence number *)
let off_counter = 32 (* daemon-maintained statistics *)

let balance0 r = 1000 + (r mod 97)

(** [create ctx ~pages ~rows_per_page ~nframes] — build the database:
    allocate and initialise the SGA, populate the table file.  Run from
    the root database process. *)
let create (ctx : K.ctx) ~pages ~rows_per_page ~nframes =
  let page_bytes = rows_per_page * row_bytes in
  let logbuf_bytes = 16 * 1024 in
  let sga_bytes = 4096 + logbuf_bytes + Buffer.layout_size ~nframes ~page_bytes in
  (* The SGA is control-structure heavy (latches, stats words, log
     head): fine blocks keep the latch traffic off the buffer frames. *)
  let seg = K.shmget ~granularity:64 ctx sga_bytes in
  let sga = K.shmat ctx seg in
  let stats_addr = sga in
  let logctl = sga + 256 in
  let logbuf = sga + 4096 in
  let buf =
    Buffer.create ~sga_base:(sga + 4096 + logbuf_bytes) ~nframes ~page_bytes
      ~latch0:frame_latch0 ~file:"table.dat"
  in
  let db =
    {
      k = ctx.K.k;
      file = "table.dat";
      pages;
      rows_per_page;
      page_bytes;
      buf;
      sga;
      stats_addr;
      logctl;
      logbuf;
      logbuf_bytes;
      log_latch = log_latch_id;
      stats_latch = stats_latch_id;
      lgwr = 0;
      dbwr = 0;
      daemon_wakeups = 0;
    }
  in
  (* Populate the table file: rows are (id, balance) pairs, staged in
     private memory and written out page by page. *)
  let fd = K.open_file ctx db.file in
  let staging = 0 (* offset in private memory *) in
  for p = 0 to pages - 1 do
    for s = 0 to rows_per_page - 1 do
      let r = (p * rows_per_page) + s in
      Bytes.set_int64_le ctx.K.h.R.private_mem (staging + (s * row_bytes)) (Int64.of_int r);
      Bytes.set_int64_le ctx.K.h.R.private_mem
        (staging + (s * row_bytes) + 8)
        (Int64.of_int (balance0 r))
    done;
    ignore (K.write ctx fd ~buf:staging ~len:page_bytes)
  done;
  K.close ctx fd;
  (* Initialise SGA control words. *)
  R.store_int ctx.K.h db.logctl 0;
  R.store_int ctx.K.h (db.logctl + 8) 0;
  R.store_int ctx.K.h (db.stats_addr + off_req) 0;
  R.store_int ctx.K.h (db.stats_addr + off_done) 0;
  R.store_int ctx.K.h (db.stats_addr + off_seq) 0;
  db

(* --- daemons --- *)

(** Log writer: waits in [pid_block]; on wakeup flushes the unwritten
    part of the (shared) log buffer to the log file — a [write] syscall
    whose source buffer is validated. *)
let lgwr_loop db (ctx : K.ctx) =
  let h = ctx.K.h in
  let fd = K.open_file ctx "redo.log" in
  let rec loop () =
    let killed = K.pid_block ctx in
    if not killed then begin
      R.lock h db.log_latch;
      let head = R.load_int h db.logctl in
      let flushed = R.load_int h (db.logctl + 8) in
      if head > flushed then begin
        let len = min (head - flushed) db.logbuf_bytes in
        ignore (K.write ctx fd ~buf:(db.logbuf + (flushed mod db.logbuf_bytes)) ~len);
        R.store_int h (db.logctl + 8) head
      end;
      R.unlock h db.log_latch;
      loop ()
    end
  in
  loop ();
  K.close ctx fd

(** Stats daemon (the "db writer"): waits in [pid_block]; on wakeup
    writes a statistics record and touches the shared stats page —
    leaving those lines exclusive at the daemon's node, to be downgraded
    when the next server reads them. *)
let dbwr_loop db (ctx : K.ctx) =
  let h = ctx.K.h in
  let fd = K.open_file ctx "stats.dat" in
  let rec loop () =
    let killed = K.pid_block ctx in
    if not killed then begin
      let requester = R.load_int h (db.stats_addr + off_req) in
      let seq = R.load_int h (db.stats_addr + off_seq) in
      (* Touch the stats counters (shared stores; one cache line). *)
      for c = 0 to 7 do
        let a = db.stats_addr + off_counter + (c * 8) in
        R.store_int h a (R.load_int h a + 1)
      done;
      ignore (K.write ctx fd ~buf:(db.stats_addr + off_counter) ~len:64);
      R.store_int h (db.stats_addr + off_done) seq;
      (* Make the completion word globally visible before the wakeup
         message, or the requester can read a stale copy and re-block. *)
      R.mb h;
      if requester > 0 then K.pid_unblock ctx requester;
      loop ()
    end
  in
  loop ();
  K.close ctx fd

(** [start_daemons ctx db ~cpu_hint] — fork LGWR and DBWR (plus two
    short-lived startup processes, as the paper observes Oracle doing). *)
let start_daemons ctx db ~cpu_hint =
  let transient = K.fork ctx ?cpu_hint (fun _ -> ()) in
  db.lgwr <- K.fork ctx ?cpu_hint (lgwr_loop db);
  db.dbwr <- K.fork ctx ?cpu_hint (dbwr_loop db);
  let transient2 = K.fork ctx ?cpu_hint (fun _ -> ()) in
  ignore (K.wait ctx);
  ignore (K.wait ctx);
  ignore transient;
  ignore transient2

let stop_daemons ctx db =
  K.kill ctx db.lgwr;
  K.kill ctx db.dbwr;
  ignore (K.wait ctx);
  ignore (K.wait ctx)

(* --- server-side operations --- *)

(** [stats_exchange ctx db] — the server-daemon interaction of
    Section 6.5: ask the stats daemon for work and block until it is
    done.  Blocking here is what the EQ runs of Figure 5 pay for. *)
let stats_exchange (ctx : K.ctx) db =
  let h = ctx.K.h in
  R.lock h db.stats_latch;
  let seq = R.load_int h (db.stats_addr + off_seq) + 1 in
  R.store_int h (db.stats_addr + off_seq) seq;
  R.store_int h (db.stats_addr + off_req) (K.getpid ctx);
  R.mb h;
  db.daemon_wakeups <- db.daemon_wakeups + 1;
  K.pid_unblock ctx db.dbwr;
  let rec wait () =
    if R.load_int h (db.stats_addr + off_done) < seq then begin
      ignore (K.pid_block ctx);
      wait ()
    end
  in
  wait ();
  R.unlock h db.stats_latch

(** [account_update ctx db ~account ~delta] — one TPC-B-style
    transaction: update a balance in the buffer cache and append a redo
    record; every eighth transaction nudges the log writer. *)
let account_update (ctx : K.ctx) db ~account ~delta =
  let h = ctx.K.h in
  let page = account / db.rows_per_page in
  let slot = account mod db.rows_per_page in
  Buffer.pin ctx db.buf ~page (fun frame ->
      let a = frame + (slot * row_bytes) + 8 in
      (* Row/metadata evaluation: access-heavy, like the real engine. *)
      for k = 0 to 499 do
        ignore (R.load_int h (frame + ((slot * row_bytes) + (k * 8)) mod db.page_bytes));
        R.work_cycles h 5
      done;
      R.store_int h a (R.load_int h a + delta));
  (* Redo record. *)
  R.lock h db.log_latch;
  let head = R.load_int h db.logctl in
  let rec_addr = db.logbuf + (head mod db.logbuf_bytes) in
  R.store_int h rec_addr account;
  R.store_int h (rec_addr + 8) delta;
  R.store_int h db.logctl (head + row_bytes);
  R.unlock h db.log_latch;
  if (head / row_bytes) mod 8 = 7 then K.pid_unblock ctx db.lgwr

(** [scan ctx db ~lo_page ~hi_page ~meta_loads ~row_compute] —
    sequential scan summing balances.  Row evaluation is dominated by
    shared-memory accesses ([meta_loads] pointer-chasing loads per row
    with [row_compute] cycles of work between them) — like the paper's
    DSS-1, which "has fairly good locality ... but does not have any
    simple inner loop whose accesses can be batched", which is what makes
    its checking overhead the highest of Table 3.  Every 16 pages the
    server exchanges statistics with the daemon. *)
let scan (ctx : K.ctx) db ~lo_page ~hi_page ~meta_loads ~row_compute =
  let h = ctx.K.h in
  let sum = ref 0 in
  for page = lo_page to hi_page - 1 do
    Buffer.pin ctx db.buf ~page (fun frame ->
        for s = 0 to db.rows_per_page - 1 do
          sum := !sum + R.load_int h (frame + (s * row_bytes) + 8);
          for k = 0 to meta_loads - 1 do
            let off = (s * row_bytes) + (k * 8) in
            ignore (R.load_int h (frame + (off mod db.page_bytes)));
            R.work_cycles h row_compute
          done
        done);
    if (page - lo_page) mod 16 = 15 then stats_exchange ctx db
  done;
  !sum

(** Expected scan sum over a page range (for validation). *)
let expected_sum db ~lo_page ~hi_page =
  let s = ref 0 in
  for r = lo_page * db.rows_per_page to (hi_page * db.rows_per_page) - 1 do
    s := !s + balance0 r
  done;
  !s
