(** Raytrace: ray tracing with a task queue and — crucially — "a custom
    memory allocator protected by a single lock which is highly
    contended" (Section 6.4).  With the queue-based MP locks the
    allocator lock hands off efficiently; through the transparent LL/SC
    path the contention collapses 16-processor runs (-78% in Figure 3).

    The scene is read-only shared data (cached everywhere after first
    touch); each ray grabs a tile from the shared work queue, performs
    several allocations from the global allocator, traces (compute), and
    writes its own pixels. *)

open Harness

let allocs_per_ray = 2
let trace_rounds = 6000 (* BVH-traversal loads per ray *)
let per_load_cycles = 10

let scene_value i = float_of_int ((i * 31) mod 97) /. 97.0

(* Pixel values depend only on the ray index and the scene: the dynamic
   tile assignment does not affect the image. *)
let reference ~scene_size n =
  Array.init n (fun ray ->
      let s = ref 0.0 in
      for k = 0 to trace_rounds - 1 do
        s := !s +. scene_value ((ray + (k * 17)) mod scene_size)
      done;
      !s)

let make t ~size:n =
  let scene_size = 4096 in
  let scene = alloc_farray ~granularity:512 t scene_size in
  let image = alloc_farray ~granularity:512 t n in
  (* Task-queue words are hammered by every process: fine blocks. *)
  let next_ray = Shasta.Cluster.alloc ~granularity:64 t.cluster 64 in
  let alloc_ptr = Shasta.Cluster.alloc ~granularity:64 t.cluster 64 in
  let queue_lock = make_lock t in
  let alloc_lock = make_lock t in
  let bar = make_barrier t in
  let body p h =
    if p = 0 then begin
      for i = 0 to scene_size - 1 do
        fset h scene i (scene_value i)
      done;
      R.store_int h next_ray 0;
      R.store_int h alloc_ptr 0
    end;
    barrier t h bar;
    start_timing t;
    let continue_ = ref true in
    while !continue_ do
      (* Grab the next ray from the shared queue. *)
      lock h queue_lock;
      let ray = R.load_int h next_ray in
      if ray < n then R.store_int h next_ray (ray + 1);
      unlock h queue_lock;
      if ray >= n then continue_ := false
      else begin
        (* The contended global allocator: every ray takes the single
           lock several times. *)
        for _ = 1 to allocs_per_ray do
          lock h alloc_lock;
          R.store_int h alloc_ptr (R.load_int h alloc_ptr + 64);
          unlock h alloc_lock
        done;
        (* Trace: walk the (read-only, shared) scene structure — a long
           pointer-chasing load sequence — then write the pixel. *)
        let s = ref 0.0 in
        for k = 0 to trace_rounds - 1 do
          s := !s +. fget h scene ((ray + (k * 17)) mod scene_size);
          R.work_cycles h per_load_cycles
        done;
        fset h image ray !s
      end
    done
  in
  let validate () =
    let r = reference ~scene_size n in
    List.for_all
      (fun i ->
        match read_valid t.cluster (image.base + (8 * i)) with
        | Some bits -> Float.abs (Int64.float_of_bits bits -. r.(i)) < 1e-12
        | None -> false)
      [ 0; n / 2; n - 1 ]
  in
  (body, validate)

let spec =
  {
    name = "Raytrace";
    paper_seq = 11.5;
    paper_overhead = 0.25;
    paper_growth = 0.59;
    default_size = 768;
    make;
  }
