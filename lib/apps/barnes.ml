(** Barnes: hierarchical N-body, reduced to its sharing pattern.

    Each iteration builds spatial cells (lock-protected insertions — the
    tree-build phase) and then computes forces: every processor reads all
    body positions (widely shared, read-mostly) and writes only its own
    bodies.  Communication is modest and speedups are good (Figure 3). *)

open Harness

let iterations = 4
let n_cells = 64
let dt = 0.01

let init_pos n i = float_of_int ((i * 37) mod n) /. float_of_int n

(* Pure reference: forces depend only on positions, so the lock-ordered
   cell lists do not affect the result. *)
let reference n =
  let pos = Array.init n (init_pos n) in
  let vel = Array.make n 0.0 in
  for _ = 1 to iterations do
    let force = Array.make n 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let d = pos.(j) -. pos.(i) in
          let r2 = (d *. d) +. 0.01 in
          force.(i) <- force.(i) +. (d /. r2)
        end
      done
    done;
    for i = 0 to n - 1 do
      vel.(i) <- vel.(i) +. (dt *. force.(i));
      pos.(i) <- pos.(i) +. (dt *. vel.(i))
    done
  done;
  pos

let make t ~size:n =
  let pos = alloc_farray ~granularity:512 t n in
  let vel = alloc_farray ~granularity:512 t n in
  let cells = alloc_farray ~granularity:512 t n_cells in
  let cell_locks = Array.init n_cells (fun _ -> make_lock t) in
  let bar = make_barrier t in
  let body p h =
    let lo, hi = chunk ~n ~nprocs:t.nprocs p in
    if p = 0 then
      for i = 0 to n - 1 do
        fset h pos i (init_pos n i);
        fset h vel i 0.0
      done;
    barrier t h bar;
    start_timing t;
    for _ = 1 to iterations do
      (* Tree build: insert own bodies into cells under per-cell locks;
         consecutive bodies of one cell are inserted under one hold. *)
      let held = ref (-1) in
      for i = lo to hi - 1 do
        let c = i * n_cells / n in
        if c <> !held then begin
          if !held >= 0 then unlock h cell_locks.(!held);
          lock h cell_locks.(c);
          held := c
        end;
        iset h cells c (iget h cells c + 1)
      done;
      if !held >= 0 then unlock h cell_locks.(!held);
      barrier t h bar;
      (* Force computation: read everyone, write own.  Positions were
         invalidated by the last update phase; batch-fetch them first. *)
      batch_read h pos 0 n;
      for i = lo to hi - 1 do
        let xi = fget h pos i in
        let f = ref 0.0 in
        for j = 0 to n - 1 do
          if i <> j then begin
            let d = fget h pos j -. xi in
            let r2 = (d *. d) +. 0.01 in
            f := !f +. (d /. r2);
            R.work_cycles h 60
          end
        done;
        let v = fget h vel i +. (dt *. !f) in
        fset h vel i v;
        R.work_cycles h 8
      done;
      barrier t h bar;
      (* Position update (uses the just-written velocity). *)
      for i = lo to hi - 1 do
        fset h pos i (fget h pos i +. (dt *. fget h vel i))
      done;
      barrier t h bar
    done
  in
  let validate () =
    let r = reference n in
    List.for_all
      (fun i ->
        match read_valid t.cluster (pos.base + (8 * i)) with
        | Some bits -> Float.abs (Int64.float_of_bits bits -. r.(i)) < 1e-9
        | None -> false)
      [ 0; n / 3; n / 2; n - 1 ]
  in
  (body, validate)

let spec =
  {
    name = "Barnes";
    paper_seq = 9.19;
    paper_overhead = 0.096;
    paper_growth = 0.59;
    default_size = 640;
    make;
  }
