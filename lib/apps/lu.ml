(** LU and LU-Contiguous: blocked dense LU factorisation (no pivoting),
    the SPLASH-2 kernels of Table 3 / Figure 3.

    The n x n matrix of doubles lives in shared memory; B x B blocks are
    assigned to processors in a 2D scatter.  Each step factorises the
    diagonal block, updates the perimeter row/column blocks against it,
    then updates the interior blocks — three barriers per step.

    The two variants differ only in layout: plain LU stores the matrix
    row-major, so a block's columns straddle coherence lines shared with
    neighbouring blocks; LU-Contiguous allocates each block contiguously
    ("improves spatial locality"), which is why it communicates less. *)

open Harness

type layout = Row_major | Block_major

let block_size = 8

(* Deterministic diagonally-dominant initial matrix. *)
let init_value n i j = if i = j then float_of_int (n * 4) else 1.0 /. float_of_int (i + j + 1)

(* Pure-OCaml reference of the same factorisation for validation. *)
let reference n =
  let a = Array.init n (fun i -> Array.init n (fun j -> init_value n i j)) in
  for k = 0 to n - 1 do
    for i = k + 1 to n - 1 do
      a.(i).(k) <- a.(i).(k) /. a.(k).(k);
      for j = k + 1 to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(k).(j))
      done
    done
  done;
  a

(* Processor grid for the 2D scatter decomposition. *)
let proc_grid nprocs =
  let rec best p = if nprocs mod p = 0 then p else best (p - 1) in
  let pr = best (int_of_float (sqrt (float_of_int nprocs))) in
  (pr, nprocs / pr)

let make_variant ~layout t ~size:n =
  let b = block_size in
  if n mod b <> 0 then invalid_arg "LU: size must be a multiple of the block size";
  let nb = n / b in
  let m = alloc_farray ~granularity:512 t (n * n) in
  let idx =
    match layout with
    | Row_major -> fun i j -> (i * n) + j
    | Block_major ->
        fun i j ->
          let bi = i / b and bj = j / b in
          (((bi * nb) + bj) * b * b) + ((i mod b) * b) + (j mod b)
  in
  let pr, pc = proc_grid t.nprocs in
  let owner bi bj = ((bi mod pr) * pc) + (bj mod pc) in
  let bar = make_barrier t in
  let flop_cycles = 4 in
  let get h i j = fget h m (idx i j) in
  (* Fetch a whole B x B source block as one batched sequence before
     using it (the rewriter batches these consecutive accesses). *)
  let batch_block h bi bj =
    let entries =
      List.init b (fun r ->
          (m.base + (8 * idx ((bi * b) + r) (bj * b)), Alpha.Insn.W64, Alpha.Insn.Load_acc))
    in
    R.batch h entries
  in
  (* Streaming reads inside the daxpy-like inner loops are batched by the
     rewriter; their checks are amortised. *)
  let getb h i j = fget_b h m (idx i j) in
  let set h i j v = fset h m (idx i j) v in
  let setb h i j v = fset_b h m (idx i j) v in
  let factor_diag h k0 =
    for kk = k0 to k0 + b - 1 do
      let pivot = get h kk kk in
      for i = kk + 1 to k0 + b - 1 do
        set h i kk (get h i kk /. pivot);
        R.work_cycles h flop_cycles;
        for j = kk + 1 to k0 + b - 1 do
          setb h i j (getb h i j -. (get h i kk *. getb h kk j));
          R.work_cycles h (2 * flop_cycles)
        done
      done
    done
  in
  (* Row-perimeter block (k, bj): A <- L^-1 A. *)
  let update_row h k0 j0 =
    for kk = k0 to k0 + b - 1 do
      for i = kk + 1 to k0 + b - 1 do
        let l = get h i kk in
        for j = j0 to j0 + b - 1 do
          setb h i j (getb h i j -. (l *. getb h kk j));
          R.work_cycles h (2 * flop_cycles)
        done
      done
    done
  in
  (* Column-perimeter block (bi, k): A <- A U^-1. *)
  let update_col h i0 k0 =
    for kk = k0 to k0 + b - 1 do
      let pivot = get h kk kk in
      for i = i0 to i0 + b - 1 do
        set h i kk (get h i kk /. pivot);
        R.work_cycles h flop_cycles;
        for j = kk + 1 to k0 + b - 1 do
          setb h i j (getb h i j -. (get h i kk *. getb h kk j));
          R.work_cycles h (2 * flop_cycles)
        done
      done
    done
  in
  (* Interior block (bi, bj) -= col(bi,k) x row(k,bj). *)
  let update_interior h i0 j0 k0 =
    for i = i0 to i0 + b - 1 do
      for kk = k0 to k0 + b - 1 do
        let l = get h i kk in
        for j = j0 to j0 + b - 1 do
          setb h i j (getb h i j -. (l *. getb h kk j));
          R.work_cycles h (2 * flop_cycles)
        done
      done
    done
  in
  (* Home placement (the standard optimisation used for LU-Contiguous):
     in the block-major layout each block is contiguous, so it can be
     homed at its owner.  Row-major blocks are not contiguous; homing per
     block row still helps. *)
  (match layout with
  | Block_major ->
      for bi = 0 to nb - 1 do
        for bj = 0 to nb - 1 do
          place_home t
            ~addr:(m.base + (8 * idx (bi * b) (bj * b)))
            ~len:(8 * b * b)
            ~owner:(owner bi bj)
        done
      done
  | Row_major -> ());
  let body p h =
    if p = 0 then
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          set h i j (init_value n i j)
        done
      done;
    barrier t h bar;
    start_timing t;
    for k = 0 to nb - 1 do
      let k0 = k * b in
      if owner k k = p then factor_diag h k0;
      barrier t h bar;
      for bj = k + 1 to nb - 1 do
        if owner k bj = p then begin
          batch_block h k k;
          update_row h k0 (bj * b)
        end
      done;
      for bi = k + 1 to nb - 1 do
        if owner bi k = p then begin
          batch_block h k k;
          update_col h (bi * b) k0
        end
      done;
      barrier t h bar;
      (* Interior blocks are owner-computed, and step k+1's diagonal
         factor and perimeter reads are already ordered by the first two
         barriers, so no third barrier is needed (as in SPLASH-2). *)
      for bi = k + 1 to nb - 1 do
        for bj = k + 1 to nb - 1 do
          if owner bi bj = p then begin
            batch_block h bi k;
            batch_block h k bj;
            update_interior h (bi * b) (bj * b) (k * b)
          end
        done
      done
    done;
    barrier t h bar
  in
  let validate () =
    let r = reference n in
    let probes = [ (0, 0); (n / 2, n / 2); (n - 1, n - 1); (n - 1, 0); (0, n - 1) ] in
    List.for_all
      (fun (i, j) ->
        match read_valid t.cluster (m.base + (8 * idx i j)) with
        | Some bits ->
            let v = Int64.float_of_bits bits in
            Float.abs (v -. r.(i).(j)) <= 1e-9 *. Float.max 1.0 (Float.abs r.(i).(j))
        | None -> false)
      probes
  in
  (body, validate)

let spec =
  {
    name = "LU";
    paper_seq = 4.61;
    paper_overhead = 0.249;
    paper_growth = 0.56;
    default_size = 192;
    make = make_variant ~layout:Row_major;
  }

let spec_contig =
  {
    name = "LU-Contig";
    paper_seq = 3.65;
    paper_overhead = 0.335;
    paper_growth = 0.57;
    default_size = 192;
    make = make_variant ~layout:Block_major;
  }
