(** FMM: adaptive fast multipole, reduced to its sharing pattern.

    Bodies are binned into a c x c grid of cells; each cell accumulates a
    multipole-like aggregate, then cells interact with their 8 neighbours
    (structured nearest-neighbour communication) and bodies receive the
    far-field contribution of their own cell.  Like the paper's runs, the
    cell data benefits from home placement. *)

open Harness

let iterations = 3

let init_mass (_ : int) i = 1.0 +. (float_of_int (i mod 7) /. 7.0)
(* Bodies are locality-sorted (as SPLASH-2's FMM does after its ORB
   decomposition), so a processor's bodies fall in its own cells. *)
let init_pos n i = float_of_int i /. float_of_int n

let cell_of_body ~cells n i = init_pos n i *. float_of_int cells |> int_of_float |> min (cells - 1)

let reference n ~cells =
  let agg = Array.make cells 0.0 in
  let acc = Array.make n 0.0 in
  for _ = 1 to iterations do
    Array.fill agg 0 cells 0.0;
    for i = 0 to n - 1 do
      let c = cell_of_body ~cells n i in
      agg.(c) <- agg.(c) +. init_mass n i
    done;
    let field = Array.make cells 0.0 in
    for c = 0 to cells - 1 do
      let f = ref agg.(c) in
      for d = -1 to 1 do
        let c' = c + d in
        if d <> 0 && c' >= 0 && c' < cells then f := !f +. (0.5 *. agg.(c'))
      done;
      field.(c) <- !f
    done;
    for i = 0 to n - 1 do
      acc.(i) <- acc.(i) +. field.(cell_of_body ~cells n i)
    done
  done;
  acc

let make t ~size:n =
  let cells = 128 in
  let agg = alloc_farray ~granularity:512 t cells in
  let field = alloc_farray ~granularity:512 t cells in
  let acc = alloc_farray ~granularity:512 t n in
  let cell_locks = Array.init cells (fun _ -> make_lock t) in
  let bar = make_barrier t in
  (* Home placement: cell aggregates, fields and body accumulators are
     homed at their owning processor's domain. *)
  for p = 0 to t.nprocs - 1 do
    let clo, chi = chunk ~n:cells ~nprocs:t.nprocs p in
    if chi > clo then begin
      place_home t ~addr:(agg.base + (8 * clo)) ~len:(8 * (chi - clo)) ~owner:p;
      place_home t ~addr:(field.base + (8 * clo)) ~len:(8 * (chi - clo)) ~owner:p
    end;
    let lo, hi = chunk ~n ~nprocs:t.nprocs p in
    if hi > lo then place_home t ~addr:(acc.base + (8 * lo)) ~len:(8 * (hi - lo)) ~owner:p
  done;
  let body p h =
    let lo, hi = chunk ~n ~nprocs:t.nprocs p in
    let clo, chi = chunk ~n:cells ~nprocs:t.nprocs p in
    if p = 0 then
      for i = 0 to n - 1 do
        fset h acc i 0.0
      done;
    barrier t h bar;
    start_timing t;
    for _ = 1 to iterations do
      (* Zero own cells, then aggregate own bodies under cell locks. *)
      for c = clo to chi - 1 do
        fset h agg c 0.0
      done;
      barrier t h bar;
      (* Bodies are sorted by cell, so consecutive insertions share one
         lock hold (the SPLASH tree-build structure). *)
      let held = ref (-1) in
      for i = lo to hi - 1 do
        let c = cell_of_body ~cells n i in
        if c <> !held then begin
          if !held >= 0 then unlock h cell_locks.(!held);
          lock h cell_locks.(c);
          held := c
        end;
        fset h agg c (fget h agg c +. init_mass n i);
        R.work_cycles h 10
      done;
      if !held >= 0 then unlock h cell_locks.(!held);
      barrier t h bar;
      (* Neighbour interactions: read adjacent cells' aggregates. *)
      for c = clo to chi - 1 do
        let f = ref (fget h agg c) in
        for d = -1 to 1 do
          let c' = c + d in
          if d <> 0 && c' >= 0 && c' < cells then f := !f +. (0.5 *. fget h agg c')
        done;
        fset h field c !f;
        R.work_cycles h 20
      done;
      barrier t h bar;
      (* Far-field contribution to own bodies: evaluate the multipole
         expansion (several coefficient loads per body). *)
      for i = lo to hi - 1 do
        let c = cell_of_body ~cells n i in
        for k = 0 to 39 do
          ignore (fget_b h field ((c + k) mod cells));
          R.work_cycles h 20
        done;
        fset h acc i (fget h acc i +. fget h field c);
        R.work_cycles h 40
      done;
      barrier t h bar
    done
  in
  let validate () =
    let r = reference n ~cells in
    List.for_all
      (fun i ->
        match read_valid t.cluster (acc.base + (8 * i)) with
        | Some bits -> Float.abs (Int64.float_of_bits bits -. r.(i)) < 1e-9
        | None -> false)
      [ 0; n / 2; n - 1 ]
  in
  (body, validate)

let spec =
  {
    name = "FMM";
    paper_seq = 6.23;
    paper_overhead = 0.17;
    paper_growth = 0.59;
    default_size = 8192;
    make;
  }
