(** Common harness for the SPLASH-2-style workloads.

    Every application is expressed against this small layer so that it
    can run with either synchronisation flavour of Figure 3:

    - [Mp] — Shasta's message-passing locks and barriers (left graph);
    - [Sm] — the transparent path: binaries compiled for an Alpha
      multiprocessor synchronise through LL/SC and MB instructions
      executed through the inline-check machinery (right graph).

    Applications are scaled-down kernels: the paper's inputs run for
    seconds on 300 MHz hardware, which is out of reach for an
    instruction-cost simulator, so each app exposes a [size] knob and
    per-element compute costs chosen to preserve the published
    computation-to-communication shape. *)

module R = Shasta.Runtime
module C = Shasta.Cluster

type sync_kind = Mp | Sm

type t = {
  cluster : C.t;
  sync : sync_kind;
  nprocs : int;
  home_placement : bool;  (** apply the apps' home placement hints *)
  mutable next_lock_id : int;
  mutable next_barrier_id : int;
  mutable parallel_start : float;
      (** set by the workload once sequential initialisation is done; the
          reported time covers only the parallel phase, as in the paper *)
  timing_mu : Mutex.t;
      (** [start_timing] is called from every process — from different
          lanes in parallel mode, so the max-accumulate is locked *)
}

type lock = Mp_lock of int | Sm_lock of int (* shared address *)
type barrier = Mp_barrier of int | Sm_barrier of int (* shared address *)

let create ?(home_placement = true) cluster ~sync ~nprocs =
  {
    cluster;
    sync;
    nprocs;
    home_placement;
    next_lock_id = 0;
    next_barrier_id = 1000;
    parallel_start = 0.0;
    timing_mu = Mutex.create ();
  }

(** [start_timing t] — called by each process after the initialisation
    barrier; the latest call marks the start of the timed phase. *)
let start_timing t =
  let now = C.now t.cluster in
  Mutex.lock t.timing_mu;
  t.parallel_start <- Float.max t.parallel_start now;
  Mutex.unlock t.timing_mu

let make_lock t =
  match t.sync with
  | Mp ->
      let id = t.next_lock_id in
      t.next_lock_id <- id + 1;
      Mp_lock id
  | Sm -> Sm_lock (C.alloc ~granularity:64 t.cluster 64)

let make_barrier t =
  match t.sync with
  | Mp ->
      let id = t.next_barrier_id in
      t.next_barrier_id <- id + 1;
      Mp_barrier id
  | Sm -> Sm_barrier (C.alloc ~granularity:64 t.cluster 64)

let lock h = function Mp_lock id -> R.lock h id | Sm_lock a -> R.sm_lock h a
let unlock h = function Mp_lock id -> R.unlock h id | Sm_lock a -> R.sm_unlock h a

let barrier t h = function
  | Mp_barrier id -> R.barrier h ~id ~parties:t.nprocs
  | Sm_barrier a -> R.sm_barrier h ~addr:a ~parties:t.nprocs

(* Shared arrays of 8-byte elements. *)

type farray = { base : int; len : int }

(** [alloc_farray t ?granularity len] — shared array of [len] 8-byte
    elements.  [granularity] places it in the layout region with the
    closest block size: bulk arrays want coarse blocks (fewer misses on
    streaming scans), contended per-element arrays want fine ones. *)
let alloc_farray ?granularity t len = { base = C.alloc ?granularity t.cluster (8 * len); len }

let fget h a i = R.load_float h (a.base + (8 * i))

(** Batched-sequence load: the rewriter would have covered this access
    with a combined check (streaming inner loops). *)
let fget_b h a i = Int64.float_of_bits (R.load64_batched h (a.base + (8 * i)))

let fset_b h a i v = R.store64_batched h (a.base + (8 * i)) (Int64.bits_of_float v)
let fset h a i v = R.store_float h (a.base + (8 * i)) v
let iget h a i = R.load_int h (a.base + (8 * i))
let iset h a i v = R.store_int h (a.base + (8 * i)) v

(** [batch_read h a lo hi] — bring elements [lo..hi) of a shared array
    into readable state with batched (overlapping) fetches, the way the
    rewriter batches an inner loop's accesses (Section 2.2).  Issued in
    windows of 16 lines, the practical size of a batched sequence. *)
let batch_read h (a : farray) lo hi =
  let layout = R.layout h in
  let start = a.base + (8 * lo) in
  let stop = a.base + (8 * hi) in
  let rec go addr acc n =
    if addr >= stop then (if acc <> [] then R.batch h (List.rev acc))
    else if n = 16 then begin
      R.batch h (List.rev acc);
      go addr [] 0
    end
    else
      (* Step a whole coherence block at a time: extents vary by region. *)
      let b = Protocol.Layout.block_of_addr layout addr in
      let base = Protocol.Layout.block_base layout b in
      go
        (base + Protocol.Layout.block_len layout b)
        ((base, Alpha.Insn.W64, Alpha.Insn.Load_acc) :: acc)
        (n + 1)
  in
  go start [] 0

(** [place_home t ~addr ~len ~owner] — home the given range at the
    domain of processor [owner] (the paper's home placement optimisation,
    used by FMM, LU-Contiguous and Ocean).  Relies on the node-major
    placement of [run_spec]: processor p of an SMP cluster lives on node
    p / cpus_per_node; under Base-Shasta each process is its own domain
    and pids follow spawn order. *)
let place_home t ~addr ~len ~owner =
  if t.home_placement && len > 0 then begin
    let cfg = t.cluster.C.cfg in
    let domain =
      match cfg.Shasta.Config.protocol.Protocol.Config.variant with
      | Protocol.Config.Smp -> owner / cfg.Shasta.Config.net.Mchan.Net.cpus_per_node
      | Protocol.Config.Base -> owner
    in
    Protocol.Engine.set_home (C.protocol_engine t.cluster) ~addr ~len ~domain
  end

(** [read_valid cluster addr] — the value every domain with a valid copy
    agrees on (post-run validation helper); [None] if copies disagree or
    none is valid. *)
let read_valid cluster addr =
  let values =
    List.filter_map
      (fun h ->
        match Protocol.Engine.block_state h.R.pcb addr with
        | _, (Protocol.Ptypes.Shared | Protocol.Ptypes.Exclusive) ->
            Some (Protocol.Engine.raw_read h.R.pcb addr Alpha.Insn.W64)
        | _, (Protocol.Ptypes.Invalid | Protocol.Ptypes.Pending) -> None)
      (C.runtimes cluster)
  in
  match values with
  | [] -> None
  | v :: rest -> if List.for_all (fun x -> x = v) rest then Some v else None

(** Per-application interface: [make] allocates the shared structures
    and returns the per-process body plus a post-run validator. *)
type spec = {
  name : string;
  paper_seq : float;  (** sequential seconds from Table 3 *)
  paper_overhead : float;  (** checking-overhead fraction from Table 3 *)
  paper_growth : float;  (** code-size growth fraction from Table 3 *)
  default_size : int;
  make : t -> size:int -> (int -> R.t -> unit) * (unit -> bool);
}

(** [run_spec cluster spec ~nprocs ~sync ~size] — instantiate and run one
    application; returns (elapsed seconds, validated). *)
let run_spec ?home_placement cluster spec ~nprocs ~sync ?size () =
  let size = Option.value size ~default:spec.default_size in
  let t = create ?home_placement cluster ~sync ~nprocs in
  let body, validate = spec.make t ~size in
  for p = 0 to nprocs - 1 do
    ignore (C.spawn cluster ~cpu:p (Printf.sprintf "%s%d" spec.name p) (fun h -> body p h))
  done;
  let total = C.run cluster in
  let elapsed = if t.parallel_start > 0.0 then total -. t.parallel_start else total in
  (elapsed, validate ())

(** Work partitioning helper: the half-open range of [p]'s share of
    [0..n). *)
let chunk ~n ~nprocs p =
  let per = (n + nprocs - 1) / nprocs in
  let lo = p * per in
  let hi = min n (lo + per) in
  (lo, max lo hi)
