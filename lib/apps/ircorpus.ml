(** An IR corpus: one representative Alpha kernel per SPLASH-2 registry
    application plus minidb, for exercising the rewriter end to end.

    The registry apps ({!Registry}) drive the protocol through the
    runtime API; these kernels express the same access shapes as real
    instruction streams so the static passes ({!Rewrite.Verify},
    {!Rewrite.Optimize}) have something faithful to chew on: pointer
    chases through shared memory, procedure calls inside loops,
    branch diamonds that re-touch the same lines (inter-block
    redundancy), float sweeps, LL/SC locks with MBs, and private stack
    traffic that the dataflow analysis must leave unchecked.

    Every kernel is deterministic and self-contained: called as
    [main(a0 = shared array, a1 = shared aux/lock, a2 = iterations)],
    it initialises its own memory, loops [a2] times, and leaves a
    checksum in [r0] — so an instrumented and an optimized run can be
    compared bit for bit over [r0] and the final memory image. *)

module C = Shasta.Cluster
module R = Shasta.Runtime

type entry = {
  e_name : string;
  e_descr : string;
  e_program : Alpha.Program.t;  (** uninstrumented *)
  e_mem_words : int;  (** 8-byte words of [a0] the kernel uses *)
  e_iters : int;  (** default [a2] *)
}

let k name descr ~mem ~iters procs =
  { e_name = name; e_descr = descr; e_program = Alpha.Asm.program procs; e_mem_words = mem; e_iters = iters }

(* Float "registers" by number; the Asm DSL takes plain ints. *)
let f0 = 0
let f1 = 1
let f2 = 2
let f3 = 3
let f4 = 4

let all =
  [
    (* Pointer chase with a helper call in the loop: the call clobbers
       register classes, so the chased pointer is re-checked each
       iteration. *)
    k "barnes" "pointer chase through a shared node array, helper call per step" ~mem:10 ~iters:40
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li s1 0L;
              label "init";
              slli s1 3 t0;
              add s0 t0 t0;
              muli s1 3 t1;
              addi t1 1 t1;
              stq t1 0 t0;
              addi s1 1 s1;
              cmplti s1 8 t2;
              bne t2 "init";
              stq s0 64 s0 (* arr[8] = &arr: a pointer living in shared memory *);
              li v0 0L;
              label "outer";
              ldq t3 64 s0 (* reload the chased pointer *);
              ldq t4 0 t3;
              add v0 t4 v0;
              call "accum";
              subi a2 1 a2;
              bgt a2 "outer";
              stq v0 72 s0;
              halt;
            ];
          proc "accum" [ ldq t6 8 a0; add v0 t6 v0; ret ];
        ]);
    (* Float sweep with a threshold diamond; the in-block load+store of
       the same cell is a batch-dedup opportunity. *)
    k "fmm" "float sweep, per-cell load+store, threshold diamond" ~mem:10 ~iters:30
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li s1 0L;
              label "init";
              slli s1 3 t0;
              add s0 t0 t0;
              cvt_if s1 f0;
              lif f1 1.5;
              fmul f0 f1 f2;
              stt f2 0 t0;
              addi s1 1 s1;
              cmplti s1 8 t1;
              bne t1 "init";
              li v0 0L;
              label "sweep";
              andi a2 7 t2;
              slli t2 3 t2;
              add s0 t2 t2;
              ldt f0 0 t2;
              lif f1 1.125;
              fmul f0 f1 f3;
              stt f3 0 t2 (* same cell as the load: dedups in the batch *);
              lif f4 40.0;
              fcmp Gt f3 f4 t3;
              beq t3 "small";
              ldq t4 0 t2 (* covered by the store fact above *);
              add v0 t4 v0;
              label "small";
              subi a2 1 a2;
              bgt a2 "sweep";
              stq v0 72 s0;
              halt;
            ];
        ]);
    (* Row elimination over a 4x4 matrix: nested loops, row pointers by
       arithmetic off the shared base. *)
    k "lu" "4x4 row elimination, nested loops" ~mem:16 ~iters:3
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li s1 0L;
              label "init";
              slli s1 3 t0;
              add s0 t0 t0;
              addi s1 1 t1;
              stq t1 0 t0;
              addi s1 1 s1;
              cmplti s1 16 t2;
              bne t2 "init";
              label "pass";
              li s2 1L (* row i *);
              label "rows";
              slli s2 5 t0;
              add s0 t0 s3 (* s3 = &a[i][0] *);
              li s4 0L (* col j *);
              label "cols";
              slli s4 3 t1;
              add s0 t1 t2 (* &a[0][j] *);
              ldq t3 0 t2;
              add s3 t1 t4 (* &a[i][j] *);
              ldq t5 0 t4;
              add t5 t3 t5;
              stq t5 0 t4;
              addi s4 1 s4;
              cmplti s4 4 t6;
              bne t6 "cols";
              addi s2 1 s2;
              cmplti s2 4 t6;
              bne t6 "rows";
              subi a2 1 a2;
              bgt a2 "pass";
              ldq v0 120 s0;
              halt;
            ];
        ]);
    (* Streaming over a fixed window: long in-block runs that batch,
       with a load and store to the same slot (dedup) and consecutive
       slots (one batch, many entries). *)
    k "lu-contig" "streaming window: one batch covers a run of slots" ~mem:8 ~iters:50
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li t0 3L;
              stq t0 0 s0;
              li t0 5L;
              stq t0 8 s0;
              li t0 7L;
              stq t0 16 s0;
              li v0 0L;
              label "loop";
              ldq t0 0 s0;
              ldq t1 8 s0;
              ldq t2 16 s0;
              add t0 t1 t3;
              add t3 t2 t3;
              stq t3 24 s0;
              stq t3 0 s0 (* same slot as the first load: dedups *);
              add v0 t3 v0;
              subi a2 1 a2;
              bgt a2 "loop";
              halt;
            ];
        ]);
    (* Red-black relaxation: a parity diamond whose both arms store the
       same centre cell, so the fact survives the join — inter-block
       elimination territory. *)
    k "ocean" "red-black parity diamond over a small grid" ~mem:8 ~iters:40
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li s1 0L;
              label "init";
              slli s1 3 t0;
              add s0 t0 t0;
              addi s1 2 t1;
              stq t1 0 t0;
              addi s1 1 s1;
              cmplti s1 8 t2;
              bne t2 "init";
              li v0 0L;
              label "step";
              andi a2 1 t0;
              beq t0 "red";
              ldq t1 8 s0;
              ldq t2 24 s0;
              add t1 t2 t3;
              stq t3 40 s0;
              br "join";
              label "red";
              ldq t1 0 s0;
              ldq t2 16 s0;
              add t1 t2 t3;
              stq t3 40 s0;
              label "join";
              ldq t4 40 s0 (* both arms proved the store: check is redundant *);
              add v0 t4 v0;
              subi a2 1 a2;
              bgt a2 "step";
              stq v0 56 s0;
              halt;
            ];
        ]);
    (* The designed inter-block redundancy case: an entry-block batch
       establishes load+store facts, both diamond arms and the join
       re-touch the same slots. *)
    k "raytrace" "diamond whose arms and join re-touch pre-checked slots" ~mem:4 ~iters:60
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li t0 9L;
              stq t0 0 s0;
              li v0 0L;
              label "loop";
              ldq t0 0 s0;
              stq t0 8 s0;
              andi t0 1 t1;
              bne t1 "bright";
              stq v0 8 s0 (* redundant: store fact from the batch above *);
              br "join";
              label "bright";
              addi t0 1 t2;
              stq t2 8 s0 (* redundant on this arm too *);
              label "join";
              ldq t3 8 s0 (* redundant at the join *);
              add v0 t3 v0;
              addi t3 1 t3;
              stq t3 0 s0;
              subi a2 1 a2;
              bgt a2 "loop";
              halt;
            ];
        ]);
    (* A pointer laundered through the float file: Cvt_if/Fmov/Cvt_fi
       must preserve its shared class, and the W32 accesses through it
       must be checked. *)
    k "volrend" "address round-trip through float registers, 32-bit cells" ~mem:4 ~iters:30
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li t0 11L;
              stl t0 0 s0;
              li t0 13L;
              stl t0 4 s0;
              li v0 0L;
              label "loop";
              cvt_if s0 f0;
              fmov f0 f1;
              cvt_fi f1 t0 (* t0 is still a shared pointer *);
              ldl t1 0 t0;
              ldl t2 4 t0;
              add t1 t2 t3;
              stl t3 4 t0;
              add v0 t3 v0;
              subi a2 1 a2;
              bgt a2 "loop";
              stl v0 8 s0;
              halt;
            ];
        ]);
    (* The paper's Figure 1 shape: LL/SC lock, MBs around a critical
       section that bumps a shared counter. *)
    k "water-nsq" "LL/SC lock acquire around a counter update" ~mem:2 ~iters:25
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              stq zero 0 s0;
              li v0 0L;
              label "outer";
              label "try";
              ll W32 t0 0 a1;
              bne t0 "try";
              li t0 1L;
              sc W32 t0 0 a1;
              beq t0 "try";
              mb;
              ldq t1 0 s0;
              addi t1 5 t1;
              stq t1 0 s0;
              mb;
              stl zero 0 a1;
              subi a2 1 a2;
              bgt a2 "outer";
              ldq v0 0 s0;
              halt;
            ];
        ]);
    (* Mixed private/shared traffic with a helper call: stack slots stay
       unchecked, the shared cell is re-checked after every call. *)
    k "water-sp" "helper call per iteration, private stack spills" ~mem:2 ~iters:35
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li t0 1L;
              stq t0 0 s0;
              li v0 0L;
              label "loop";
              stq v0 0 sp (* private: never checked *);
              call "cell";
              ldq t0 0 s0 (* the call may have moved the line *);
              add v0 t0 v0;
              ldq t1 0 sp;
              add v0 t1 v0;
              subi a2 1 a2;
              bgt a2 "loop";
              stq v0 8 s0;
              halt;
            ];
          proc "cell" [ ldq t6 0 a0; addi t6 2 t6; stq t6 0 a0; ret ];
        ]);
    (* minidb's shape: lock-protected record update through a pointer
       read from a shared directory slot. *)
    k "minidb" "lock-protected record update via a shared directory" ~mem:6 ~iters:25
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              li t0 100L;
              stq t0 0 s0;
              li t0 200L;
              stq t0 8 s0;
              stq s0 32 s0 (* directory slot points at record 0 *);
              li v0 0L;
              label "outer";
              label "try";
              ll W32 t0 0 a1;
              bne t0 "try";
              li t0 1L;
              sc W32 t0 0 a1;
              beq t0 "try";
              mb;
              ldq t3 32 s0 (* record pointer *);
              ldq t4 0 t3;
              addi t4 1 t4;
              stq t4 0 t3 (* same slot: dedups *);
              add v0 t4 v0;
              mb;
              stl zero 0 a1;
              subi a2 1 a2;
              bgt a2 "outer";
              stq v0 40 s0;
              halt;
            ];
        ]);
  ]

let find name = List.find (fun e -> e.e_name = name) all

(* --- SPMD sync corpus --- *)

(** Kernels in {!sync} are SPMD: every thread runs [main(a0 = shared
    array, a1 = shared aux, a2 = iterations, a3 = tid, a4 = nprocs)]
    and synchronises through the [sync_lock]/[sync_unlock]/
    [sync_barrier] system procedures ({!Alpha.Runtime}).  They are the
    ground truth for the static race detector: correctly synchronised
    as written (zero races at any [nprocs]), racy under every seeded
    sync mutation ({!Check.Mutation}).  They live in a separate list
    because [all]'s kernels back bit-exact goldens keyed by name.

    By convention [a0] points at a fine-grained region (per-thread hot
    slots) and [a1] at a bulk region (read-mostly data), mirroring the
    two-region layout {!run_spmd} allocates from. *)
let sync =
  [
    (* False-sharing twin of the granularity micro: tid 0 initialises a
       64-word bulk array and publishes a flag, one barrier, then every
       thread hammers its own hot slot (stride 64) and sums the bulk
       data plus its own slot.  The single barrier separates the
       tid-0 writes from everyone's reads; the hot slots are disjoint
       by tid arithmetic.  r0 = 2081 + iters on every thread. *)
    k "fs-twin" "tid-0 publish + barrier, then per-thread hot slots at stride 64" ~mem:64
      ~iters:40
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              mov a1 s1;
              mov a2 s2;
              mov a3 s3;
              mov a4 s4;
              li v0 0L;
              bne s3 "wait" (* only tid 0 initialises *);
              li s5 0L;
              label "init";
              slli s5 3 t0;
              add s1 t0 t0;
              addi s5 1 t1;
              stq t1 0 t0 (* bulk[i] = i + 1 *);
              addi s5 1 s5;
              cmplti s5 64 t2;
              bne t2 "init";
              li t3 1L;
              stq t3 512 s1 (* publish flag *);
              label "wait";
              li a0 10L;
              mov s4 a1;
              call "sync_barrier";
              muli s3 64 t0;
              add s0 t0 s5 (* s5 = &hot[tid], stride 64 bytes *);
              label "loop";
              ldq t1 0 s5;
              addi t1 1 t1;
              stq t1 0 s5;
              subi s2 1 s2;
              bgt s2 "loop";
              li t4 0L;
              label "rd";
              slli t4 3 t5;
              add s1 t5 t5;
              ldq t6 0 t5;
              add v0 t6 v0;
              addi t4 1 t4;
              cmplti t4 64 t7;
              bne t7 "rd";
              ldq t5 512 s1;
              add v0 t5 v0 (* + flag *);
              ldq t6 0 s5;
              add v0 t6 v0 (* + own hot slot = iters *);
              halt;
            ];
        ]);
    (* Nearest-neighbour relaxation: each round every thread bumps its
       own strip word, barriers, reads its right neighbour's word,
       barriers again.  Writes land in even barrier phases, reads in
       odd ones — the congruence part of the phase lattice is what
       proves this race-free.  r0 = iters*(iters+1)/2, except 0 on the
       last thread (its neighbour is the untouched guard word). *)
    k "stencil-sync" "strip writes and neighbour reads split by two barriers per round"
      ~mem:16 ~iters:12
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              mov a2 s2;
              mov a3 s3;
              mov a4 s4;
              slli s3 3 t0;
              add s0 t0 s5 (* own strip word *);
              addi s5 8 s1 (* right neighbour *);
              li v0 0L;
              label "round";
              ldq t1 0 s5;
              addi t1 1 t1;
              stq t1 0 s5;
              li a0 20L;
              mov s4 a1;
              call "sync_barrier";
              ldq t2 0 s1;
              add v0 t2 v0;
              li a0 21L;
              mov s4 a1;
              call "sync_barrier";
              subi s2 1 s2;
              bgt s2 "round";
              halt;
            ];
        ]);
    (* minidb's SPMD shape: a lock-protected record bumped through a
       helper procedure (the lockset must survive the call edge), plus
       a locked read-back, bracketed by barriers around the tid-0
       initialisation and the final read.  r0 = 100 + nprocs*iters on
       every thread, deterministically. *)
    k "mdb-sync" "lock-protected record update via a helper call, barriers around init/readout"
      ~mem:2 ~iters:10
      Alpha.Asm.(
        [
          proc "main"
            [
              mov a0 s0;
              mov a2 s2;
              mov a3 s3;
              mov a4 s4;
              li s5 0L;
              bne s3 "start";
              li t0 100L;
              stq t0 0 s0 (* record := 100 *);
              label "start";
              li a0 30L;
              mov s4 a1;
              call "sync_barrier";
              label "outer";
              li a0 1L;
              call "sync_lock";
              call "bump";
              li a0 1L;
              call "sync_unlock";
              li a0 1L;
              call "sync_lock";
              ldq t2 0 s0;
              add s5 t2 s5;
              li a0 1L;
              call "sync_unlock";
              subi s2 1 s2;
              bgt s2 "outer";
              li a0 31L;
              mov s4 a1;
              call "sync_barrier";
              ldq v0 0 s0;
              halt;
            ];
          proc "bump" [ ldq t6 0 s0; addi t6 1 t6; stq t6 0 s0; ret ];
        ]);
  ]

let find_sync name = List.find (fun e -> e.e_name = name) sync

(* --- deterministic single-process runner --- *)

type run_result = {
  r0 : int64;
  image : int64 array;  (** final contents of the [e_mem_words] shared words *)
  steps : int;
  check_slots : int;  (** executed miss-check slots ({!Alpha.Interp.stats}) *)
  elapsed : float;  (** simulated seconds *)
}

(** [run instrumented entry] — execute an instrumented version of
    [entry]'s program on a 1-node, 1-processor cluster and capture
    [r0], the final shared image, and the executed-check-slot count.
    Deterministic, so two instrumentations of the same kernel must
    produce bit-identical [r0]/[image]. *)
let run ?(max_steps = 20_000_000) ?iters (instrumented : Alpha.Program.t) (e : entry) =
  let cl =
    C.create
      {
        Shasta.Config.default with
        Shasta.Config.net =
          { Mchan.Net.default_config with Mchan.Net.nodes = 1; cpus_per_node = 1 };
        protocol = { Protocol.Config.default with Protocol.Config.shared_size = 1 lsl 20 };
      }
  in
  let arr = C.alloc cl (8 * e.e_mem_words) in
  let aux = C.alloc cl 64 in
  let iters = Option.value iters ~default:e.e_iters in
  let result = ref None in
  ignore
    (C.spawn cl ~cpu:0 e.e_name (fun h ->
         let o =
           R.run_program ~max_steps h instrumented ~entry:"main"
             ~args:[ Int64.of_int arr; Int64.of_int aux; Int64.of_int iters ]
             ()
         in
         let image =
           Array.init e.e_mem_words (fun i ->
               Protocol.Engine.raw_read h.R.pcb (arr + (8 * i)) Alpha.Insn.W64)
         in
         result := Some (o, image)));
  ignore (C.run cl);
  match !result with
  | None -> failwith (e.e_name ^ ": kernel did not complete")
  | Some (o, image) ->
      {
        r0 = o.Alpha.Interp.r0;
        image;
        steps = o.Alpha.Interp.stats.Alpha.Interp.steps;
        check_slots = o.Alpha.Interp.stats.Alpha.Interp.check_slots;
        elapsed = C.now cl;
      }

(* --- SPMD multi-thread runner --- *)

type spmd_result = {
  s_r0s : int64 array;  (** per-thread final [r0], indexed by tid *)
  s_elapsed : float;  (** simulated seconds *)
  s_regions : (string * Protocol.Engine.rstat) list;
      (** cluster-wide per-region coherence counters, in layout order *)
  s_migrations : int;  (** home-map entries migrated (0 under [Static]) *)
}

(** [run_spmd instrumented entry] — execute an instrumented sync-corpus
    kernel on [nprocs] Shasta processes (thread [tid] on global
    processor [tid]), with [a0] pointing at a fine "hot" allocation of
    [8 * e_mem_words] bytes and [a1] at a coarse "bulk" allocation just
    past it.  [regions]/[homing] parameterise the layout under test —
    the affinity lint's suggestions are fed back through exactly these
    two knobs — and the granularity hints place hot/bulk into the
    finest/coarsest region the layout offers.  Deterministic for a
    fixed configuration, so per-thread [r0]s double as a correctness
    oracle for the sync kernels. *)
let run_spmd ?(max_steps = 20_000_000) ?(nodes = 1) ?(cpus_per_node = 8) ?(nprocs = 4)
    ?iters ?(regions = []) ?(homing = Protocol.Config.Static) ?migration_threshold
    ?(check_invariants = false) (instrumented : Alpha.Program.t) (e : entry) =
  if nprocs > nodes * cpus_per_node then
    invalid_arg "run_spmd: nprocs exceeds the cluster's processors";
  let cl =
    C.create
      {
        Shasta.Config.default with
        Shasta.Config.net =
          { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node };
        protocol =
          {
            Protocol.Config.default with
            Protocol.Config.regions;
            homing;
            check_invariants;
            shared_size = 1 lsl 20;
            migration_threshold =
              Option.value migration_threshold
                ~default:Protocol.Config.default.Protocol.Config.migration_threshold;
          };
      }
  in
  let block_hints =
    match regions with
    | [] -> (64, 64)
    | rs ->
        let blocks = List.map (fun r -> r.Protocol.Layout.rs_block) rs in
        (List.fold_left min max_int blocks, List.fold_left max 0 blocks)
  in
  let hot = C.alloc ~granularity:(fst block_hints) cl (8 * e.e_mem_words) in
  let bulk = C.alloc ~granularity:(snd block_hints) cl ((8 * e.e_mem_words) + 64) in
  let iters = Option.value iters ~default:e.e_iters in
  let r0s = Array.make nprocs None in
  for tid = 0 to nprocs - 1 do
    ignore
      (C.spawn cl ~cpu:tid (Printf.sprintf "%s.%d" e.e_name tid) (fun h ->
           let o =
             R.run_program ~max_steps h instrumented ~entry:"main"
               ~args:
                 [
                   Int64.of_int hot;
                   Int64.of_int bulk;
                   Int64.of_int iters;
                   Int64.of_int tid;
                   Int64.of_int nprocs;
                 ]
               ()
           in
           r0s.(tid) <- Some o.Alpha.Interp.r0))
  done;
  let elapsed = C.run cl in
  let r0s =
    Array.mapi
      (fun tid r ->
        match r with
        | Some v -> v
        | None -> failwith (Printf.sprintf "%s: thread %d did not complete" e.e_name tid))
      r0s
  in
  let peng = C.protocol_engine cl in
  let layout = Protocol.Engine.layout peng in
  let regions =
    Array.to_list
      (Array.mapi
         (fun ri st -> (Protocol.Layout.region_name layout ri, st))
         (Protocol.Engine.region_stats peng))
  in
  let migrations, _, _ = C.migration_stats cl in
  { s_r0s = r0s; s_elapsed = elapsed; s_regions = regions; s_migrations = migrations }
