(** Water-Nsquared and Water-Spatial: molecular dynamics.

    Water-Nsquared computes all O(n^2/2) pairwise interactions; a
    processor owns a contiguous chunk of molecules and updates {e both}
    molecules of each pair under per-molecule locks — heavy lock traffic
    and scattered writes.  Water-Spatial bins molecules into cells and
    only interacts neighbouring cells, so communication is structured and
    lighter.  Both match the paper's sharing behaviour (Table 3 reports
    ~24-27% checking overhead; Figure 3 shows good speedups). *)

open Harness

let iterations = 2
let dt = 0.002
let fields_per_molecule = 8 (* atom coordinates etc., read per interaction *)
let pair_compute = 700 (* cycles: the real Water evaluates O(100) flops per pair *)

let init_pos n i = float_of_int ((i * 53) mod (4 * n)) /. float_of_int (4 * n)

let pair_force xi xj =
  let d = xj -. xi in
  let r2 = (d *. d) +. 0.05 in
  d /. (r2 *. r2)

(* Reference shared by both variants: the spatial cutoff version zeroes
   far-pair forces. *)
let reference ?(cutoff = None) n =
  let pos = Array.init n (init_pos n) in
  let acc = Array.make n 0.0 in
  for _ = 1 to iterations do
    let f = Array.make n 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let interacting =
          match cutoff with None -> true | Some c -> Float.abs (pos.(j) -. pos.(i)) <= c
        in
        if interacting then begin
          let g = pair_force pos.(i) pos.(j) in
          f.(i) <- f.(i) +. g;
          f.(j) <- f.(j) -. g
        end
      done
    done;
    for i = 0 to n - 1 do
      acc.(i) <- acc.(i) +. (dt *. f.(i));
      pos.(i) <- pos.(i) +. (dt *. acc.(i))
    done
  done;
  pos

let make_nsq t ~size:n =
  let pos = alloc_farray ~granularity:512 t n in
  let acc = alloc_farray ~granularity:64 t n in
  let force = alloc_farray ~granularity:64 t n in
  let fields = alloc_farray ~granularity:512 t (n * fields_per_molecule) in
  let locks = Array.init (min n 128) (fun _ -> make_lock t) in
  let lock_of i = locks.(i mod Array.length locks) in
  let bar = make_barrier t in
  let body p h =
    let lo, hi = chunk ~n ~nprocs:t.nprocs p in
    if p = 0 then
      for i = 0 to n - 1 do
        fset h pos i (init_pos n i);
        fset h acc i 0.0;
        for k = 0 to fields_per_molecule - 1 do
          fset h fields ((i * fields_per_molecule) + k) 1.0
        done
      done;
    barrier t h bar;
    start_timing t;
    for _ = 1 to iterations do
      for i = lo to hi - 1 do
        fset h force i 0.0
      done;
      barrier t h bar;
      (* All pairs (i, j) with i in my chunk: accumulate partial forces
         privately, then merge each touched molecule's contribution under
         its lock (the SPLASH-2 structure). *)
      batch_read h pos 0 n;
      let partial = Array.make n 0.0 in
      for i = lo to hi - 1 do
        let xi = fget h pos i in
        for j = i + 1 to n - 1 do
          (* Each interaction reads both molecules' atom fields (shared,
             read-mostly) and does the O(100)-flop potential evaluation. *)
          for k = 0 to (2 * fields_per_molecule) - 1 do
            let m = if k land 1 = 0 then i else j in
            ignore (fget_b h fields ((m * fields_per_molecule) + (k / 2)));
            R.work_cycles h 8
          done;
          let g = pair_force xi (fget h pos j) in
          R.work_cycles h pair_compute;
          partial.(i) <- partial.(i) +. g;
          partial.(j) <- partial.(j) -. g
        done
      done;
      for i = 0 to n - 1 do
        if partial.(i) <> 0.0 then begin
          lock h (lock_of i);
          fset h force i (fget h force i +. partial.(i));
          unlock h (lock_of i)
        end
      done;
      barrier t h bar;
      for i = lo to hi - 1 do
        let a = fget h acc i +. (dt *. fget h force i) in
        fset h acc i a;
        fset h pos i (fget h pos i +. (dt *. a))
      done;
      barrier t h bar
    done
  in
  let validate () =
    let r = reference n in
    List.for_all
      (fun i ->
        match read_valid t.cluster (pos.base + (8 * i)) with
        | Some bits -> Float.abs (Int64.float_of_bits bits -. r.(i)) < 1e-8
        | None -> false)
      [ 0; n / 2; n - 1 ]
  in
  (body, validate)

let cutoff = 0.25

let make_spatial t ~size:n =
  let pos = alloc_farray ~granularity:512 t n in
  let acc = alloc_farray ~granularity:64 t n in
  let force = alloc_farray ~granularity:64 t n in
  let fields = alloc_farray ~granularity:512 t (n * fields_per_molecule) in
  let locks = Array.init (min n 128) (fun _ -> make_lock t) in
  let lock_of i = locks.(i mod Array.length locks) in
  let bar = make_barrier t in
  let body p h =
    let lo, hi = chunk ~n ~nprocs:t.nprocs p in
    if p = 0 then
      for i = 0 to n - 1 do
        fset h pos i (init_pos n i);
        fset h acc i 0.0;
        for k = 0 to fields_per_molecule - 1 do
          fset h fields ((i * fields_per_molecule) + k) 1.0
        done
      done;
    barrier t h bar;
    start_timing t;
    for _ = 1 to iterations do
      for i = lo to hi - 1 do
        fset h force i 0.0
      done;
      barrier t h bar;
      batch_read h pos 0 n;
      let partial = Array.make n 0.0 in
      for i = lo to hi - 1 do
        let xi = fget h pos i in
        for j = i + 1 to n - 1 do
          (* The cell structure means only nearby molecules interact;
             the distance test stands in for the cell-list walk. *)
          let xj = fget h pos j in
          if Float.abs (xj -. xi) <= cutoff then begin
            for k = 0 to (2 * fields_per_molecule) - 1 do
              let m = if k land 1 = 0 then i else j in
              ignore (fget_b h fields ((m * fields_per_molecule) + (k / 2)));
              R.work_cycles h 8
            done;
            let g = pair_force xi xj in
            R.work_cycles h pair_compute;
            partial.(i) <- partial.(i) +. g;
            partial.(j) <- partial.(j) -. g
          end
          else R.work_cycles h 2
        done
      done;
      for i = 0 to n - 1 do
        if partial.(i) <> 0.0 then begin
          lock h (lock_of i);
          fset h force i (fget h force i +. partial.(i));
          unlock h (lock_of i)
        end
      done;
      barrier t h bar;
      for i = lo to hi - 1 do
        let a = fget h acc i +. (dt *. fget h force i) in
        fset h acc i a;
        fset h pos i (fget h pos i +. (dt *. a))
      done;
      barrier t h bar
    done
  in
  let validate () =
    let r = reference ~cutoff:(Some cutoff) n in
    List.for_all
      (fun i ->
        match read_valid t.cluster (pos.base + (8 * i)) with
        | Some bits -> Float.abs (Int64.float_of_bits bits -. r.(i)) < 1e-8
        | None -> false)
      [ 0; n / 2; n - 1 ]
  in
  (body, validate)

let spec_nsq =
  {
    name = "Water-Nsq";
    paper_seq = 8.30;
    paper_overhead = 0.236;
    paper_growth = 0.59;
    default_size = 448;
    make = make_nsq;
  }

let spec_spatial =
  {
    name = "Water-Sp";
    paper_seq = 6.37;
    paper_overhead = 0.265;
    paper_growth = 0.60;
    default_size = 512;
    make = make_spatial;
  }
