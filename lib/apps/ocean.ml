(** Ocean: red-black Gauss-Seidel relaxation over an n x n grid.

    Rows are partitioned contiguously across processors; each half-sweep
    ends with a barrier, so Ocean executes barriers at a high rate — the
    reason its transparent (LL/SC-based) runs slow down markedly in
    Figure 3: every barrier atomically increments a shared counter. *)

open Harness

let iterations = 8
let omega = 0.8

let init_value n i j =
  if i = 0 || j = 0 || i = n - 1 || j = n - 1 then 10.0
  else float_of_int ((i * 7) + (j * 3) mod 11) /. 11.0

let reference n =
  let g = Array.init n (fun i -> Array.init n (fun j -> init_value n i j)) in
  for _ = 1 to iterations do
    for color = 0 to 1 do
      for i = 1 to n - 2 do
        for j = 1 to n - 2 do
          if (i + j) land 1 = color then
            g.(i).(j) <-
              ((1.0 -. omega) *. g.(i).(j))
              +. (omega *. 0.25 *. (g.(i - 1).(j) +. g.(i + 1).(j) +. g.(i).(j - 1) +. g.(i).(j + 1)))
        done
      done
    done
  done;
  g

let make t ~size:n =
  (* Pad rows to a whole number of coherence lines (as SPLASH-2 does), so
     that neighbouring processors' rows never share a line: the remaining
     communication is the true boundary-row sharing. *)
  let stride = (n + 7) / 8 * 8 in
  let g = alloc_farray ~granularity:512 t (stride * n) in
  let bar = make_barrier t in
  let idx i j = (i * stride) + j in
  (* Home placement: each processor's rows live at its own domain. *)
  for p = 0 to t.nprocs - 1 do
    let lo, hi = chunk ~n:(n - 2) ~nprocs:t.nprocs p in
    if hi > lo then
      place_home t
        ~addr:(g.base + (8 * idx (lo + 1) 0))
        ~len:(8 * (hi - lo) * stride)
        ~owner:p
  done;
  let body p h =
    if p = 0 then
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          fset h g (idx i j) (init_value n i j)
        done
      done;
    barrier t h bar;
    start_timing t;
    let lo, hi = chunk ~n:(n - 2) ~nprocs:t.nprocs p in
    let lo = lo + 1 and hi = hi + 1 in
    for _ = 1 to iterations do
      for color = 0 to 1 do
        (* The neighbours' boundary rows were invalidated by their last
           sweep; fetch them as one batched sequence rather than a chain
           of serial misses. *)
        if lo > 1 then batch_read h g (idx (lo - 1) 0) (idx (lo - 1) (n - 1));
        if hi < n - 1 then batch_read h g (idx hi 0) (idx hi (n - 1));
        for i = lo to hi - 1 do
          for j = 1 to n - 2 do
            if (i + j) land 1 = color then begin
              let v =
                ((1.0 -. omega) *. fget h g (idx i j))
                +. omega *. 0.25
                   *. (fget h g (idx (i - 1) j)
                      +. fget h g (idx (i + 1) j)
                      +. fget h g (idx i (j - 1))
                      +. fget h g (idx i (j + 1)))
              in
              fset h g (idx i j) v;
              (* The real Ocean's per-point work spans several grids of
                 the multigrid solver; ~60 cycles/point is its scale. *)
              R.work_cycles h 60
            end
          done
        done;
        barrier t h bar
      done
    done
  in
  let validate () =
    let r = reference n in
    let probes = [ (1, 1); (n / 2, n / 2); (n - 2, n - 2); (1, n - 2) ] in
    List.for_all
      (fun (i, j) ->
        match read_valid t.cluster (g.base + (8 * idx i j)) with
        | Some bits -> Float.abs (Int64.float_of_bits bits -. r.(i).(j)) < 1e-9
        | None -> false)
      probes
  in
  (body, validate)

let spec =
  {
    name = "Ocean";
    paper_seq = 4.29;
    paper_overhead = 0.23;
    paper_growth = 0.58;
    default_size = 66;
    make;
  }
