(** Volrend: volume rendering.  Work is distributed in tiles through a
    small number of shared counters, each behind its own lock — "a few
    highly contended locks" (Section 6.4), which cost the transparent
    LL/SC runs about half their 16-processor performance in Figure 3,
    though less catastrophically than Raytrace's single allocator lock. *)

open Harness

let n_queues = 4
let sample_loads = 4000 (* voxels sampled along a tile's rays *)
let render_cycles = 0

let voxel i = float_of_int ((i * 13) mod 251) /. 251.0

let reference ~volume_size n =
  Array.init n (fun tile ->
      let s = ref 0.0 in
      for k = 0 to sample_loads - 1 do
        s := !s +. voxel ((tile + (k * 29)) mod volume_size)
      done;
      !s)

let make t ~size:n =
  let volume_size = 8192 in
  let volume = alloc_farray ~granularity:512 t volume_size in
  let image = alloc_farray ~granularity:512 t n in
  let counters =
    Array.init n_queues (fun _ -> Shasta.Cluster.alloc ~granularity:64 t.cluster 64)
  in
  let locks = Array.init n_queues (fun _ -> make_lock t) in
  let bar = make_barrier t in
  let per_queue = (n + n_queues - 1) / n_queues in
  let body p h =
    if p = 0 then begin
      for i = 0 to volume_size - 1 do
        fset h volume i (voxel i)
      done;
      Array.iteri (fun q a -> R.store_int h a (q * per_queue)) counters
    end;
    barrier t h bar;
    start_timing t;
    (* Each processor starts on its preferred queue and steals from the
       others when it runs dry. *)
    for dq = 0 to n_queues - 1 do
      let q = (p + dq) mod n_queues in
      let limit = min n ((q + 1) * per_queue) in
      let continue_ = ref true in
      while !continue_ do
        lock h locks.(q);
        let tile = R.load_int h counters.(q) in
        if tile < limit then R.store_int h counters.(q) (tile + 1);
        unlock h locks.(q);
        if tile >= limit then continue_ := false
        else begin
          let s = ref 0.0 in
          for k = 0 to sample_loads - 1 do
            s := !s +. fget h volume ((tile + (k * 29)) mod volume_size);
            R.work_cycles h 9
          done;
          ignore render_cycles;
          fset h image tile !s
        end
      done
    done
  in
  let validate () =
    let r = reference ~volume_size n in
    List.for_all
      (fun i ->
        match read_valid t.cluster (image.base + (8 * i)) with
        | Some bits -> Float.abs (Int64.float_of_bits bits -. r.(i)) < 1e-12
        | None -> false)
      [ 0; n / 3; n - 1 ]
  in
  (body, validate)

let spec =
  {
    name = "Volrend";
    paper_seq = 5.8;
    paper_overhead = 0.20;
    paper_growth = 0.58;
    default_size = 512;
    make;
  }
