(** The interface between interpreted code and the machine it runs on.

    The interpreter is pure control flow + ALU; every memory access and
    every rewriter-inserted pseudo-instruction is delegated to this record
    of closures.  Two implementations matter:

    - a {e native} runtime (hardware shared-memory multiprocessor):
      [load]/[store] touch the one true memory image, checks are absent
      (original binaries have no pseudo-instructions);
    - the {e Shasta} runtime: [load]/[store] are still raw hardware
      accesses to the local node's memory image — possibly observing the
      protocol's invalid-flag value — and only the [_check] callbacks
      enter the protocol, possibly stalling the simulated process.

    This split mirrors the real system: the original load/store
    instructions are untouched by the rewriter; correctness comes from
    the inserted code. *)

type sc_outcome =
  | Run_in_hardware  (** line was exclusive at the LL; execute the real SC *)
  | Handled of bool  (** protocol performed (or failed) the conditional store *)

type t = {
  hz : float;  (** processor frequency, for converting cycles to seconds *)
  load : int -> Insn.width -> int64;  (** raw load *)
  store : int -> Insn.width -> int64 -> unit;  (** raw store *)
  load_check : int64 -> int -> Insn.width -> int64;
      (** [load_check value addr w]: inline flag comparison after a shared
          load; on a flag match, distinguishes a real miss (enter protocol,
          fetch, return the true value) from a false miss. *)
  store_check : int -> Insn.width -> unit;
      (** ensure the line is exclusive before the following store *)
  batch_check : (int * Insn.width * Insn.access_kind) list -> unit;
      (** combined check for a run of nearby accesses (Section 2.2/4.1) *)
  ll : int -> Insn.width -> int64;  (** raw load-locked (sets the lock flag) *)
  sc : int -> Insn.width -> int64 -> bool;  (** raw store-conditional *)
  ll_check : int -> unit;
      (** before LL: fetch the line if invalid/pending; remember its state *)
  sc_check : int -> Insn.width -> int64 -> sc_outcome;
      (** before SC: decide hardware vs protocol path (Section 3.1.2) *)
  mb : unit -> unit;  (** raw hardware memory barrier *)
  mb_check : unit -> unit;  (** protocol fence inserted after MB *)
  poll : unit -> unit;  (** service incoming protocol messages *)
  prefetch_excl : int -> unit;  (** non-binding exclusive prefetch *)
  charge : int -> unit;  (** consume [n] cycles of simulated CPU time *)
  syscall : string -> int64 array -> bool;
      (** [syscall name regs]: a [Call] to a procedure the program does
          not define is routed here with the live integer register file;
          [true] means the runtime handled it (a system call — by
          convention it reads its arguments from [a0..a5] and leaves
          every register unchanged), [false] traps as an unknown
          procedure.  The recognised names are the MP synchronisation
          entry points below. *)
}

(* Synchronisation system calls: SPMD kernels reach the MP lock and
   barrier manager ({!Shasta.Sync}) through plain [Call]s to these
   reserved names — the IR-level twin of the API mode's
   [lock]/[unlock]/[barrier].  Argument convention:
   [sync_lock]/[sync_unlock] take the lock id in [a0];
   [sync_barrier] takes the barrier id in [a0] and the party count in
   [a1].  The static race detector ({!Rewrite.Races}) keys its lockset
   and barrier-phase analyses on the same names. *)
let sync_lock_proc = "sync_lock"
let sync_unlock_proc = "sync_unlock"
let sync_barrier_proc = "sync_barrier"

let is_sync_proc n =
  n = sync_lock_proc || n = sync_unlock_proc || n = sync_barrier_proc

(** An in-process runtime with one flat memory image and no coherence;
    useful for unit-testing the interpreter and for "standard SMP"
    baseline measurements.  [size] bytes of zeroed memory. *)
let flat ?(hz = Sim.Units.default_cpu_hz) ?(charge = fun _ -> ()) ~size () =
  let mem = Bytes.make size '\000' in
  let load addr (w : Insn.width) =
    match w with
    | Insn.W32 -> Int64.of_int32 (Bytes.get_int32_le mem addr)
    | Insn.W64 -> Bytes.get_int64_le mem addr
  in
  let store addr (w : Insn.width) v =
    match w with
    | Insn.W32 -> Bytes.set_int32_le mem addr (Int64.to_int32 v)
    | Insn.W64 -> Bytes.set_int64_le mem addr v
  in
  (* Uniprocessor LL/SC: succeeds unless an intervening SC cleared it. *)
  let lock_flag = ref false in
  {
    hz;
    load;
    store;
    load_check = (fun value _addr _w -> value);
    store_check = (fun _ _ -> ());
    batch_check = (fun _ -> ());
    ll =
      (fun addr w ->
        lock_flag := true;
        load addr w);
    sc =
      (fun addr w v ->
        let ok = !lock_flag in
        lock_flag := false;
        if ok then store addr w v;
        ok);
    ll_check = (fun _ -> ());
    sc_check = (fun _ _ _ -> Run_in_hardware);
    mb = (fun () -> ());
    mb_check = (fun () -> ());
    poll = (fun () -> ());
    prefetch_excl = (fun _ -> ());
    charge;
    (* Uniprocessor synchronisation: a lock is always free, a barrier
       has nobody to wait for. *)
    syscall = (fun name _regs -> is_sync_proc name);
  }
