(** The Alpha-like instruction set.

    A compact RISC subset sufficient to express the paper's workloads:
    integer and double-float arithmetic, loads/stores with base+offset
    addressing, load-locked/store-conditional, the MB memory barrier, and
    control flow.  The "pseudo" instructions at the bottom do not exist in
    original binaries — they are inserted by the {!Rewrite} pipeline and
    give the inline Shasta code (miss checks, polls, protocol calls) an
    explicit representation whose execution cost the interpreter charges.

    Register conventions (loosely the Alpha calling standard):
    - [r0]  return value ([v0])
    - [r16]..[r21] arguments ([a0]-[a5])
    - [r26] return address (implicit; calls use a stack in the interpreter)
    - [r29] global pointer ([gp], points at private static data)
    - [r30] stack pointer ([sp], private)
    - [r31] always zero *)

type reg = int (* 0..31; r31 reads as zero and ignores writes *)
type freg = int (* 0..31; f31 reads as 0.0 *)
type label = string

type width = W32 | W64

let bytes_of_width = function W32 -> 4 | W64 -> 8

type operand = Reg of reg | Imm of int

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Cmpeq
  | Cmplt
  | Cmple
  | Cmpult

type fbinop = Fadd | Fsub | Fmul | Fdiv

type cond = Eq | Ne | Lt | Le | Gt | Ge

type access_kind = Load_acc | Store_acc

(** One address range of a batched check: [(width, kind, offset, base)].
    The batch covers, for each entry, the line(s) touched by the access
    at [base + offset]. *)
type batch_entry = { b_width : width; b_kind : access_kind; b_off : int; b_base : reg }

type t =
  (* Original ISA *)
  | Binop of binop * reg * operand * reg  (** [Binop (op, src1, src2, dst)] *)
  | Li of reg * int64  (** load immediate / address *)
  | Lif of freg * float  (** load float immediate *)
  | Ld of width * reg * int * reg  (** [Ld (w, dst, off, base)] *)
  | St of width * reg * int * reg  (** [St (w, src, off, base)] *)
  | Ldf of freg * int * reg  (** 64-bit float load *)
  | Stf of freg * int * reg
  | Fbinop of fbinop * freg * freg * freg  (** [Fbinop (op, src1, src2, dst)] *)
  | Fcmp of cond * freg * freg * reg  (** integer 0/1 result *)
  | Cvt_if of reg * freg  (** int -> float *)
  | Cvt_fi of freg * reg  (** float -> int (truncate) *)
  | Fmov of freg * freg
  | Ll of width * reg * int * reg  (** load-locked *)
  | Sc of width * reg * int * reg  (** store-conditional; success flag overwrites [reg] *)
  | Mb  (** memory barrier *)
  | Br of label
  | Bcond of cond * reg * label  (** compare register against zero *)
  | Call of string
  | Ret
  | Halt
  (* Pseudo-instructions inserted by the binary rewriter *)
  | Load_check of width * reg * int * reg
      (** after a shared load: compare loaded value with the flag value *)
  | Store_check of width * int * reg
      (** before a shared store: check the private state table for exclusive *)
  | Batch_check of batch_entry list
      (** one combined check for a run of nearby loads/stores *)
  | Ll_check of int * reg  (** before LL: ensure line readable, remember its state *)
  | Sc_check of width * reg * int * reg
      (** before SC: run in hardware if exclusive, else protocol *)
  | Gran_lookup of int * reg
      (** variable-granularity block-number table lookup: shift the
          address by the chunk size, load the block id (Section 2.1);
          emitted before state-table checks when regions have mixed
          block sizes *)
  | Mb_check  (** after MB: protocol fence (wait for stores, service invals) *)
  | Poll  (** loop-backedge poll of the incoming-message flag *)
  | Prefetch_excl of int * reg  (** non-binding exclusive prefetch before LL/SC loops *)
  | Label of label  (** no-op marker; assembled away into indices *)

(** [is_pseudo i] is true for rewriter-inserted instructions; used to
    check that original binaries contain none and to compute code-size
    growth. *)
let is_pseudo = function
  | Load_check _ | Store_check _ | Batch_check _ | Ll_check _ | Sc_check _ | Gran_lookup _
  | Mb_check | Poll | Prefetch_excl _ ->
      true
  | Binop _ | Li _ | Lif _ | Ld _ | St _ | Ldf _ | Stf _ | Fbinop _ | Fcmp _ | Cvt_if _
  | Cvt_fi _ | Fmov _ | Ll _ | Sc _ | Mb | Br _ | Bcond _ | Call _ | Ret | Halt | Label _ ->
      false

(** Static size of an instruction in equivalent 32-bit Alpha instruction
    slots.  Pseudo-instructions expand to the inline code sequences the
    paper describes: ~3 slots for a flag-technique load check, ~7 for a
    store check, 3 for a poll, etc.  [Label] occupies no space. *)
let size_in_slots = function
  | Label _ -> 0
  | Load_check _ -> 3
  | Store_check _ -> 7
  | Batch_check entries -> 2 + (2 * List.length entries)
  | Ll_check _ -> 3
  | Sc_check _ -> 4
  | Gran_lookup _ -> 2
  | Mb_check -> 2
  | Poll -> 3
  | Prefetch_excl _ -> 2
  | Li _ | Lif _ -> 2 (* wide immediates need two slots on a real Alpha *)
  | Binop _ | Ld _ | St _ | Ldf _ | Stf _ | Fbinop _ | Fcmp _ | Cvt_if _ | Cvt_fi _ | Fmov _
  | Ll _ | Sc _ | Mb | Br _ | Bcond _ | Call _ | Ret | Halt ->
      1

let pp_width ppf = function W32 -> Format.fprintf ppf "l" | W64 -> Format.fprintf ppf "q"

let pp_cond ppf c =
  Format.pp_print_string ppf
    (match c with Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge")

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Sll -> "sll"
    | Srl -> "srl"
    | Sra -> "sra"
    | Cmpeq -> "cmpeq"
    | Cmplt -> "cmplt"
    | Cmple -> "cmple"
    | Cmpult -> "cmpult")

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm i -> Format.fprintf ppf "#%d" i

let pp ppf = function
  | Binop (op, a, b, d) ->
      Format.fprintf ppf "%a r%d, %a -> r%d" pp_binop op a pp_operand b d
  | Li (r, v) -> Format.fprintf ppf "li r%d, %Ld" r v
  | Lif (f, v) -> Format.fprintf ppf "lif f%d, %g" f v
  | Ld (w, d, off, b) -> Format.fprintf ppf "ld%a r%d, %d(r%d)" pp_width w d off b
  | St (w, s, off, b) -> Format.fprintf ppf "st%a r%d, %d(r%d)" pp_width w s off b
  | Ldf (d, off, b) -> Format.fprintf ppf "ldt f%d, %d(r%d)" d off b
  | Stf (s, off, b) -> Format.fprintf ppf "stt f%d, %d(r%d)" s off b
  | Fbinop (op, a, b, d) ->
      let name = match op with Fadd -> "addt" | Fsub -> "subt" | Fmul -> "mult" | Fdiv -> "divt" in
      Format.fprintf ppf "%s f%d, f%d -> f%d" name a b d
  | Fcmp (c, a, b, d) -> Format.fprintf ppf "fcmp%a f%d, f%d -> r%d" pp_cond c a b d
  | Cvt_if (r, f) -> Format.fprintf ppf "cvtqt r%d -> f%d" r f
  | Cvt_fi (f, r) -> Format.fprintf ppf "cvttq f%d -> r%d" f r
  | Fmov (a, d) -> Format.fprintf ppf "fmov f%d -> f%d" a d
  | Ll (w, d, off, b) -> Format.fprintf ppf "ld%a_l r%d, %d(r%d)" pp_width w d off b
  | Sc (w, s, off, b) -> Format.fprintf ppf "st%a_c r%d, %d(r%d)" pp_width w s off b
  | Mb -> Format.fprintf ppf "mb"
  | Br l -> Format.fprintf ppf "br %s" l
  | Bcond (c, r, l) -> Format.fprintf ppf "b%a r%d, %s" pp_cond c r l
  | Call p -> Format.fprintf ppf "jsr %s" p
  | Ret -> Format.fprintf ppf "ret"
  | Halt -> Format.fprintf ppf "halt"
  | Load_check (w, r, off, b) ->
      Format.fprintf ppf "<load_check%a r%d, %d(r%d)>" pp_width w r off b
  | Store_check (w, off, b) -> Format.fprintf ppf "<store_check%a %d(r%d)>" pp_width w off b
  | Batch_check es -> Format.fprintf ppf "<batch_check x%d>" (List.length es)
  | Ll_check (off, b) -> Format.fprintf ppf "<ll_check %d(r%d)>" off b
  | Sc_check (w, r, off, b) -> Format.fprintf ppf "<sc_check%a r%d, %d(r%d)>" pp_width w r off b
  | Gran_lookup (off, b) -> Format.fprintf ppf "<gran_lookup %d(r%d)>" off b
  | Mb_check -> Format.fprintf ppf "<mb_check>"
  | Poll -> Format.fprintf ppf "<poll>"
  | Prefetch_excl (off, b) -> Format.fprintf ppf "<prefetch_excl %d(r%d)>" off b
  | Label l -> Format.fprintf ppf "%s:" l
