(** Per-instruction cycle costs charged by the interpreter.

    The values model a 300 MHz Alpha 21164 with warm caches: simple
    integer operations issue in one cycle, multiplies and float operations
    take a few, a hardware MB costs ~9 cycles (0.03 us, the "standard SMP
    application" number of Section 6.2).  Pseudo-instruction costs are the
    *inline fast-path* costs of the inserted Shasta code — roughly one
    cycle per equivalent instruction slot; the slow paths (protocol entry,
    remote misses) are charged separately by the runtime. *)

let cycles : Insn.t -> int = function
  | Insn.Binop (Insn.Mul, _, _, _) -> 4
  | Insn.Binop (_, _, _, _) -> 1
  | Insn.Li _ | Insn.Lif _ -> 1
  | Insn.Ld _ | Insn.St _ | Insn.Ldf _ | Insn.Stf _ -> 2
  | Insn.Ll _ | Insn.Sc _ -> 2
  | Insn.Fbinop (Insn.Fdiv, _, _, _) -> 16
  | Insn.Fbinop (_, _, _, _) -> 4
  | Insn.Fcmp _ -> 2
  | Insn.Cvt_if _ | Insn.Cvt_fi _ -> 2
  | Insn.Fmov _ -> 1
  | Insn.Mb -> 9
  | Insn.Br _ | Insn.Bcond _ -> 1
  | Insn.Call _ | Insn.Ret -> 2
  | Insn.Halt -> 1
  | Insn.Load_check _ -> 3
  | Insn.Store_check _ -> 7
  | Insn.Gran_lookup _ -> 2
  | Insn.Batch_check entries -> 2 + (2 * List.length entries)
  | Insn.Ll_check _ -> 3
  | Insn.Sc_check _ -> 4
  | Insn.Mb_check -> 2
  | Insn.Poll -> 3
  | Insn.Prefetch_excl _ -> 2
  | Insn.Label _ -> 0
