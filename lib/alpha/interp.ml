(** The instruction interpreter.

    Executes an assembled {!Program} against a {!Runtime}.  The
    interpreter is deliberately ignorant of Shasta: it charges the cycle
    cost of each instruction (batched, then flushed through
    [runtime.charge] before any callback that could suspend the simulated
    process) and delegates all memory traffic to the runtime closures. *)

exception Trap of string

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

type stats = {
  mutable steps : int;
  mutable loads : int;
  mutable stores : int;
  mutable polls : int;
  mutable mbs : int;
  mutable ll_sc : int;
  mutable check_slots : int;
      (** instruction slots spent in executed miss checks (load/store/
          batch/LL/SC checks and granularity lookups) — the dynamic
          checking-overhead axis of Tables 2/3 *)
}

type outcome = { r0 : int64; stats : stats }

(* Per-procedure dispatch metadata, built once per [run] on first entry:
   table-driven cycle costs and check-slot sizes (no per-instruction
   [Cost.cycles] re-match), branch targets resolved to indices (no label
   hashtable lookup per taken branch), call targets memoized per site,
   and [m_pure.(pc)] = the length of the straight-line run of pure
   register-only instructions starting at [pc], which the main loop
   executes as one batch without touching the dispatch machinery. *)
(* A memoized [Call] target: a procedure of the program, or a runtime
   system call (a name the program does not define, accepted by
   [Runtime.syscall] on first dispatch). *)
type callee = Proc of Program.procedure | Sys

type meta = {
  m_cost : int array;
  m_slots : int array;  (** check-slot size, 0 for non-check instructions *)
  m_target : int array;  (** resolved branch target, -1 otherwise *)
  m_pure : int array;
  m_callee : callee option array;  (** memoized [Call] targets *)
}

(* Pure = touches only the register files: no memory, control, traps or
   runtime callbacks, so a run of these can execute between two dispatch
   points with the cycle charges summed (nothing can observe simulated
   time inside the run — the next runtime callback still flushes first). *)
let is_pure = function
  | Insn.Binop _ | Insn.Li _ | Insn.Lif _ | Insn.Fbinop _ | Insn.Fcmp _
  | Insn.Cvt_if _ | Insn.Cvt_fi _ | Insn.Fmov _ ->
      true
  | _ -> false

let build_meta (proc : Program.procedure) =
  let code = proc.Program.code in
  let n = Array.length code in
  let m_cost = Array.make n 0 in
  let m_slots = Array.make n 0 in
  let m_target = Array.make n (-1) in
  let m_pure = Array.make n 0 in
  for i = n - 1 downto 0 do
    let insn = code.(i) in
    m_cost.(i) <- Cost.cycles insn;
    (match insn with
    | Insn.Load_check _ | Insn.Store_check _ | Insn.Batch_check _ | Insn.Ll_check _
    | Insn.Sc_check _ | Insn.Gran_lookup _ ->
        m_slots.(i) <- Insn.size_in_slots insn
    | _ -> ());
    (match insn with
    | Insn.Br l | Insn.Bcond (_, _, l) -> m_target.(i) <- Program.label_index proc l
    | _ -> ());
    if is_pure insn then m_pure.(i) <- 1 + (if i + 1 < n then m_pure.(i + 1) else 0)
  done;
  { m_cost; m_slots; m_target; m_pure; m_callee = Array.make n None }

type frame = { proc : Program.procedure; meta : meta; mutable pc : int }

let flush_threshold = 512

let check_alignment addr w =
  let b = Insn.bytes_of_width w in
  if addr land (b - 1) <> 0 then trap "unaligned %d-byte access at 0x%x" b addr

let run ?(max_steps = 1_000_000_000) (program : Program.t) (rt : Runtime.t) ~entry
    ?(args = []) () =
  let regs = Array.make 32 0L in
  let fregs = Array.make 32 0.0 in
  List.iteri
    (fun i v ->
      if i > 5 then invalid_arg "Interp.run: more than 6 arguments";
      regs.(16 + i) <- v)
    args;
  let rget r = if r = 31 then 0L else regs.(r) in
  let rset r v = if r <> 31 then regs.(r) <- v in
  let fget f = if f = 31 then 0.0 else fregs.(f) in
  let fset f v = if f <> 31 then fregs.(f) <- v in
  let stats =
    { steps = 0; loads = 0; stores = 0; polls = 0; mbs = 0; ll_sc = 0; check_slots = 0 }
  in
  let acc_cycles = ref 0 in
  let flush () =
    if !acc_cycles > 0 then begin
      rt.Runtime.charge !acc_cycles;
      acc_cycles := 0
    end
  in
  let metas : (string, meta) Hashtbl.t = Hashtbl.create 16 in
  let meta_of (proc : Program.procedure) =
    match Hashtbl.find_opt metas proc.Program.name with
    | Some m -> m
    | None ->
        let m = build_meta proc in
        Hashtbl.add metas proc.Program.name m;
        m
  in
  let addr_of off base = Int64.to_int (rget base) + off in
  let eval_operand = function
    | Insn.Reg r -> rget r
    | Insn.Imm i -> Int64.of_int i
  in
  let eval_binop op a b =
    let open Int64 in
    match (op : Insn.binop) with
    | Insn.Add -> add a b
    | Insn.Sub -> sub a b
    | Insn.Mul -> mul a b
    | Insn.And -> logand a b
    | Insn.Or -> logor a b
    | Insn.Xor -> logxor a b
    | Insn.Sll -> shift_left a (to_int b land 63)
    | Insn.Srl -> shift_right_logical a (to_int b land 63)
    | Insn.Sra -> shift_right a (to_int b land 63)
    | Insn.Cmpeq -> if equal a b then 1L else 0L
    | Insn.Cmplt -> if compare a b < 0 then 1L else 0L
    | Insn.Cmple -> if compare a b <= 0 then 1L else 0L
    | Insn.Cmpult -> if unsigned_compare a b < 0 then 1L else 0L
  in
  let eval_cond c (v : int64) =
    match (c : Insn.cond) with
    | Insn.Eq -> v = 0L
    | Insn.Ne -> v <> 0L
    | Insn.Lt -> Int64.compare v 0L < 0
    | Insn.Le -> Int64.compare v 0L <= 0
    | Insn.Gt -> Int64.compare v 0L > 0
    | Insn.Ge -> Int64.compare v 0L >= 0
  in
  let eval_fcond c (a : float) (b : float) =
    match (c : Insn.cond) with
    | Insn.Eq -> a = b
    | Insn.Ne -> a <> b
    | Insn.Lt -> a < b
    | Insn.Le -> a <= b
    | Insn.Gt -> a > b
    | Insn.Ge -> a >= b
  in
  let entry_proc = Program.find program entry in
  let call_stack : frame list ref = ref [] in
  let frame = ref { proc = entry_proc; meta = meta_of entry_proc; pc = 0 } in
  let sc_override : bool option ref = ref None in
  let running = ref true in
  while !running do
    let f = !frame in
    let code = f.proc.Program.code in
    if f.pc < 0 || f.pc >= Array.length code then begin
      (* Fall off the end of a procedure: treat as return. *)
      match !call_stack with
      | [] -> running := false
      | caller :: rest ->
          call_stack := rest;
          frame := caller
    end
    else begin
      let pc = f.pc in
      let m = f.meta in
      let n = m.m_pure.(pc) in
      if n > 0 && stats.steps + n <= max_steps then begin
        (* Batched dispatch: a straight-line run of pure instructions
           executes back-to-back, summing its cycle charge, with one
           flush check at the end.  [steps], [check_slots] (always 0
           here) and register effects are identical to the one-at-a-time
           path. *)
        stats.steps <- stats.steps + n;
        let cyc = ref 0 in
        for i = pc to pc + n - 1 do
          cyc := !cyc + m.m_cost.(i);
          match code.(i) with
          | Insn.Binop (op, a, b, d) -> rset d (eval_binop op (rget a) (eval_operand b))
          | Insn.Li (r, v) -> rset r v
          | Insn.Lif (fr, v) -> fset fr v
          | Insn.Fbinop (op, a, b, d) ->
              let x = fget a and y = fget b in
              let v =
                match op with
                | Insn.Fadd -> x +. y
                | Insn.Fsub -> x -. y
                | Insn.Fmul -> x *. y
                | Insn.Fdiv -> x /. y
              in
              fset d v
          | Insn.Fcmp (c, a, b, d) ->
              rset d (if eval_fcond c (fget a) (fget b) then 1L else 0L)
          | Insn.Cvt_if (r, fr) -> fset fr (Int64.to_float (rget r))
          | Insn.Cvt_fi (fr, r) -> rset r (Int64.of_float (fget fr))
          | Insn.Fmov (a, d) -> fset d (fget a)
          | _ -> assert false
        done;
        acc_cycles := !acc_cycles + !cyc;
        if !acc_cycles >= flush_threshold then flush ();
        f.pc <- pc + n
      end
      else begin
      let insn = code.(pc) in
      stats.steps <- stats.steps + 1;
      if stats.steps > max_steps then trap "step budget exceeded (%d)" max_steps;
      stats.check_slots <- stats.check_slots + m.m_slots.(pc);
      acc_cycles := !acc_cycles + m.m_cost.(pc);
      if !acc_cycles >= flush_threshold then flush ();
      f.pc <- pc + 1;
      match insn with
      | Insn.Binop (op, a, b, d) -> rset d (eval_binop op (rget a) (eval_operand b))
      | Insn.Li (r, v) -> rset r v
      | Insn.Lif (fr, v) -> fset fr v
      | Insn.Ld (w, d, off, b) ->
          stats.loads <- stats.loads + 1;
          let addr = addr_of off b in
          check_alignment addr w;
          rset d (rt.Runtime.load addr w)
      | Insn.St (w, s, off, b) ->
          stats.stores <- stats.stores + 1;
          let addr = addr_of off b in
          check_alignment addr w;
          rt.Runtime.store addr w (rget s)
      | Insn.Ldf (d, off, b) ->
          stats.loads <- stats.loads + 1;
          let addr = addr_of off b in
          check_alignment addr Insn.W64;
          fset d (Int64.float_of_bits (rt.Runtime.load addr Insn.W64))
      | Insn.Stf (s, off, b) ->
          stats.stores <- stats.stores + 1;
          let addr = addr_of off b in
          check_alignment addr Insn.W64;
          rt.Runtime.store addr Insn.W64 (Int64.bits_of_float (fget s))
      | Insn.Fbinop (op, a, b, d) ->
          let x = fget a and y = fget b in
          let v =
            match op with
            | Insn.Fadd -> x +. y
            | Insn.Fsub -> x -. y
            | Insn.Fmul -> x *. y
            | Insn.Fdiv -> x /. y
          in
          fset d v
      | Insn.Fcmp (c, a, b, d) -> rset d (if eval_fcond c (fget a) (fget b) then 1L else 0L)
      | Insn.Cvt_if (r, fr) -> fset fr (Int64.to_float (rget r))
      | Insn.Cvt_fi (fr, r) -> rset r (Int64.of_float (fget fr))
      | Insn.Fmov (a, d) -> fset d (fget a)
      | Insn.Ll (w, d, off, b) ->
          stats.ll_sc <- stats.ll_sc + 1;
          let addr = addr_of off b in
          check_alignment addr w;
          rset d (rt.Runtime.ll addr w)
      | Insn.Sc (w, s, off, b) -> (
          stats.ll_sc <- stats.ll_sc + 1;
          let addr = addr_of off b in
          check_alignment addr w;
          match !sc_override with
          | Some ok ->
              sc_override := None;
              rset s (if ok then 1L else 0L)
          | None ->
              let ok = rt.Runtime.sc addr w (rget s) in
              rset s (if ok then 1L else 0L))
      | Insn.Mb ->
          stats.mbs <- stats.mbs + 1;
          rt.Runtime.mb ()
      | Insn.Br _ -> f.pc <- m.m_target.(pc)
      | Insn.Bcond (c, r, _) -> if eval_cond c (rget r) then f.pc <- m.m_target.(pc)
      | Insn.Call name -> (
          let callee =
            match m.m_callee.(pc) with
            | Some c -> c
            | None ->
                let c =
                  match Program.find_opt program name with
                  | Some p -> Proc p
                  | None -> Sys
                in
                m.m_callee.(pc) <- Some c;
                c
          in
          match callee with
          | Proc p ->
              call_stack := f :: !call_stack;
              frame := { proc = p; meta = meta_of p; pc = 0 }
          | Sys ->
              (* A name the program does not define: a system call if
                 the runtime accepts it (it may suspend the process, so
                 flush accumulated cycles first), else a trap. *)
              flush ();
              if not (rt.Runtime.syscall name regs) then
                raise (Program.Unknown_procedure name))
      | Insn.Ret -> (
          match !call_stack with
          | [] -> running := false
          | caller :: rest ->
              call_stack := rest;
              frame := caller)
      | Insn.Halt -> running := false
      | Insn.Load_check (w, r, off, b) ->
          flush ();
          let addr = addr_of off b in
          rset r (rt.Runtime.load_check (rget r) addr w)
      | Insn.Store_check (w, off, b) ->
          flush ();
          rt.Runtime.store_check (addr_of off b) w
      | Insn.Batch_check entries ->
          flush ();
          let resolved =
            List.map
              (fun e ->
                (addr_of e.Insn.b_off e.Insn.b_base, e.Insn.b_width, e.Insn.b_kind))
              entries
          in
          rt.Runtime.batch_check resolved
      | Insn.Ll_check (off, b) ->
          flush ();
          rt.Runtime.ll_check (addr_of off b)
      | Insn.Sc_check (w, r, off, b) -> (
          flush ();
          match rt.Runtime.sc_check (addr_of off b) w (rget r) with
          | Runtime.Run_in_hardware -> sc_override := None
          | Runtime.Handled ok -> sc_override := Some ok)
      | Insn.Gran_lookup _ ->
          (* Cost-only model of the block-number table load: the checks
             that follow do the real lookup through the engine's layout. *)
          flush ()
      | Insn.Mb_check ->
          flush ();
          rt.Runtime.mb_check ()
      | Insn.Poll ->
          stats.polls <- stats.polls + 1;
          flush ();
          rt.Runtime.poll ()
      | Insn.Prefetch_excl (off, b) ->
          flush ();
          rt.Runtime.prefetch_excl (addr_of off b)
      | Insn.Label _ -> trap "label survived assembly"
      end
    end
  done;
  flush ();
  { r0 = rget 0; stats }
