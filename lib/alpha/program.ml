(** Programs: named procedures of assembled instructions.

    [Label] markers in the source instruction list are resolved to
    instruction indices at assembly time and removed from the executable
    stream (they occupy no code space). *)

type procedure = {
  name : string;
  code : Insn.t array;  (** labels removed *)
  labels : (string, int) Hashtbl.t;  (** label -> index into [code] *)
}

type t = { procedures : (string, procedure) Hashtbl.t; mutable order : string list }

(** [Unknown_label (procedure, label)] *)
exception Unknown_label of string * string
exception Unknown_procedure of string
exception Duplicate_label of string * string

let assemble_procedure ~name insns =
  let labels = Hashtbl.create 16 in
  let code = ref [] in
  let idx = ref 0 in
  List.iter
    (fun insn ->
      match insn with
      | Insn.Label l ->
          if Hashtbl.mem labels l then raise (Duplicate_label (name, l));
          Hashtbl.replace labels l !idx
      | _ ->
          code := insn :: !code;
          incr idx)
    insns;
  let code = Array.of_list (List.rev !code) in
  (* Validate branch targets eagerly so that bad programs fail at build
     time, not mid-simulation. *)
  Array.iter
    (fun insn ->
      match insn with
      | Insn.Br l | Insn.Bcond (_, _, l) ->
          if not (Hashtbl.mem labels l) then raise (Unknown_label (name, l))
      | _ -> ())
    code;
  { name; code; labels }

let create () = { procedures = Hashtbl.create 16; order = [] }

let add_procedure t ~name insns =
  let p = assemble_procedure ~name insns in
  if not (Hashtbl.mem t.procedures name) then t.order <- name :: t.order;
  Hashtbl.replace t.procedures name p;
  p

let find t name =
  match Hashtbl.find_opt t.procedures name with
  | Some p -> p
  | None -> raise (Unknown_procedure name)

let find_opt t name = Hashtbl.find_opt t.procedures name

let procedures t = List.rev_map (fun n -> Hashtbl.find t.procedures n) t.order

let label_index p l =
  match Hashtbl.find_opt p.labels l with
  | Some i -> i
  | None -> raise (Unknown_label (p.name, l))

(** Total static size in 32-bit instruction slots (Section 6.3 reports
    code-size increase in these terms). *)
let size_in_slots t =
  List.fold_left
    (fun acc p -> acc + Array.fold_left (fun a i -> a + Insn.size_in_slots i) 0 p.code)
    0 (procedures t)

(** [map_procedures t f] builds a new program by transforming each
    procedure's instruction stream (used by the rewriter). *)
let map_procedures t f =
  let t' = create () in
  List.iter
    (fun p ->
      let insns = f p in
      ignore (add_procedure t' ~name:p.name insns))
    (procedures t);
  t'

(** [to_insn_list p] reconstitutes a label-bearing instruction list from
    an assembled procedure (inverse of assembly, modulo label positions). *)
let to_insn_list p =
  let at = Hashtbl.create 16 in
  Hashtbl.iter
    (fun l i ->
      let existing = Option.value (Hashtbl.find_opt at i) ~default:[] in
      Hashtbl.replace at i (l :: existing))
    p.labels;
  let out = ref [] in
  Array.iteri
    (fun i insn ->
      (match Hashtbl.find_opt at i with
      | Some ls -> List.iter (fun l -> out := Insn.Label l :: !out) (List.sort compare ls)
      | None -> ());
      out := insn :: !out)
    p.code;
  (* Labels pointing one past the end (e.g. a loop exit at the tail). *)
  (match Hashtbl.find_opt at (Array.length p.code) with
  | Some ls -> List.iter (fun l -> out := Insn.Label l :: !out) (List.sort compare ls)
  | None -> ());
  List.rev !out
