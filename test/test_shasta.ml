(* Tests for the Shasta runtime: API-mode accesses, MP and transparent
   synchronisation, and end-to-end execution of instrumented binaries. *)

module C = Shasta.Cluster
module R = Shasta.Runtime
module Cfg = Shasta.Config

(* Read a shared word from whichever domain holds a valid copy. *)
let read_valid cl addr =
  let values =
    List.filter_map
      (fun h ->
        match Protocol.Engine.block_state h.R.pcb addr with
        | _, (Protocol.Ptypes.Shared | Protocol.Ptypes.Exclusive) ->
            Some (Protocol.Engine.raw_read h.R.pcb addr Alpha.Insn.W64)
        | _, (Protocol.Ptypes.Invalid | Protocol.Ptypes.Pending) -> None)
      (C.runtimes cl)
  in
  match values with
  | v :: rest when List.for_all (fun x -> x = v) rest -> v
  | _ -> -1L

let small_cfg ?(nodes = 2) ?(cpus = 2) ?(variant = Protocol.Config.Smp)
    ?(model = Protocol.Config.Rc) () =
  {
    Cfg.default with
    Cfg.net = { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node = cpus };
    protocol =
      { Protocol.Config.default with Protocol.Config.variant; model; shared_size = 256 * 1024 };
  }

let test_cross_node_store_load () =
  let cl = C.create (small_cfg ()) in
  let a = C.alloc cl 64 in
  let got = ref 0 in
  let _ = C.spawn cl ~cpu:0 "writer" (fun h -> R.store_int h a 1234) in
  let _ =
    C.spawn cl ~cpu:2 "reader" (fun h ->
        Sim.Proc.sleep 0.001;
        got := R.load_int h a)
  in
  ignore (C.run cl);
  Alcotest.(check int) "value crossed nodes" 1234 !got

let test_mp_lock_mutual_exclusion () =
  let cl = C.create (small_cfg ()) in
  let counter = C.alloc cl 64 in
  let iters = 50 in
  for c = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:c "worker" (fun h ->
           for _ = 1 to iters do
             R.lock h 0;
             let v = R.load_int h counter in
             R.work_cycles h 50;
             R.store_int h counter (v + 1);
             R.unlock h 0
           done))
  done;
  let check = ref 0 in
  let _ =
    C.spawn cl ~cpu:0 "checker" (fun h ->
        (* Runs after being spawned last on cpu 0's run queue; just wait
           until everyone is done incrementing. *)
        let rec wait () =
          if R.load_int h counter < 4 * iters then begin
            Sim.Proc.sleep 0.001;
            wait ()
          end
        in
        wait ();
        check := R.load_int h counter)
  in
  ignore (C.run cl);
  Alcotest.(check int) "lock protected all increments" (4 * iters) !check

let test_mp_barrier_phases () =
  let cl = C.create (small_cfg ()) in
  let slots = C.alloc cl (4 * 64) in
  let violations = ref 0 in
  for c = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:c "worker" (fun h ->
           for phase = 1 to 5 do
             R.store_int h (slots + (c * 64)) phase;
             R.barrier h ~id:9 ~parties:4;
             (* After the barrier every peer must have reached this
                phase. *)
             for peer = 0 to 3 do
               if R.load_int h (slots + (peer * 64)) < phase then incr violations
             done;
             R.barrier h ~id:9 ~parties:4
           done))
  done;
  ignore (C.run cl);
  Alcotest.(check int) "no barrier violations" 0 !violations

let test_atomic_add () =
  let cl = C.create (small_cfg ()) in
  let counter = C.alloc cl 64 in
  let finals = ref [] in
  for c = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:c "worker" (fun h ->
           for _ = 1 to 50 do
             let old = R.atomic_add h counter 1 in
             finals := old :: !finals
           done))
  done;
  ignore (C.run cl);
  (* Fetch-and-add returns every value 0..199 exactly once. *)
  let sorted = List.sort compare !finals in
  Alcotest.(check (list int)) "all intermediate values seen" (List.init 200 Fun.id) sorted

let test_sm_lock_mutual_exclusion () =
  let cl = C.create (small_cfg ()) in
  let lockw = C.alloc cl 64 in
  let counter = C.alloc cl 64 in
  let iters = 30 in
  for c = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:c "worker" (fun h ->
           for _ = 1 to iters do
             R.sm_lock h lockw;
             let v = R.load_int h counter in
             R.work_cycles h 50;
             R.store_int h counter (v + 1);
             R.sm_unlock h lockw
           done))
  done;
  ignore (C.run cl);
  (* Check from outside the simulation: all valid copies agree. *)
  Alcotest.(check int) "LL/SC lock protected all increments" (4 * iters)
    (Int64.to_int (read_valid cl counter))

let test_sm_barrier () =
  let cl = C.create (small_cfg ()) in
  let bar = C.alloc cl 64 in
  let slots = C.alloc cl (4 * 64) in
  let violations = ref 0 in
  for c = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:c "worker" (fun h ->
           for phase = 1 to 4 do
             R.store_int h (slots + (c * 64)) phase;
             R.mb h;
             R.sm_barrier h ~addr:bar ~parties:4;
             for peer = 0 to 3 do
               if R.load_int h (slots + (peer * 64)) < phase then incr violations
             done;
             R.sm_barrier h ~addr:bar ~parties:4
           done))
  done;
  ignore (C.run cl);
  Alcotest.(check int) "no sm-barrier violations" 0 !violations

let test_checking_overhead () =
  (* Single processor, same access pattern, checks on vs off: the
     checked run must be slower by a small factor (Table 3 machinery). *)
  let run ~checks =
    let cfg = { (small_cfg ~nodes:1 ~cpus:1 ()) with Cfg.checks_enabled = checks } in
    let cl = C.create cfg in
    let a = C.alloc cl 65536 in
    let elapsed = ref 0.0 in
    let _ =
      C.spawn cl ~cpu:0 "app" (fun h ->
          let t0 = C.now cl in
          for i = 0 to 20000 do
            let addr = a + (i mod 1024 * 8) in
            R.store_int h addr i;
            ignore (R.load_int h addr)
          done;
          R.flush h;
          elapsed := C.now cl -. t0)
    in
    ignore (C.run cl);
    !elapsed
  in
  let base = run ~checks:false in
  let checked = run ~checks:true in
  let overhead = (checked -. base) /. base in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.1f%% in plausible range" (100.0 *. overhead))
    true
    (overhead > 0.2 && overhead < 3.0)

let test_breakdown_sane () =
  let cl = C.create (small_cfg ()) in
  let a = C.alloc cl 4096 in
  for c = 0 to 1 do
    ignore
      (C.spawn cl ~cpu:(c * 2) "worker" (fun h ->
           for i = 0 to 200 do
             R.store_int h (a + (i mod 32 * 64)) i;
             R.work_cycles h 100
           done;
           R.mb h))
  done;
  ignore (C.run cl);
  let b = C.total_breakdown cl in
  Alcotest.(check bool) "task time positive" true (b.Shasta.Breakdown.task > 0.0);
  Alcotest.(check bool) "write stall occurred" true (b.Shasta.Breakdown.write >= 0.0);
  Alcotest.(check bool) "total positive" true (Shasta.Breakdown.total b > 0.0)

(* --- IR mode: transparent execution of instrumented binaries --- *)

let lock_counter_program =
  (* main(a0 = lock, a1 = counter, a2 = iterations): the paper's Figure 1
     acquire loop around a read-modify-write of the counter. *)
  Alpha.Asm.(
    program
      [
        proc "main"
          [
            label "outer";
            (* acquire *)
            label "try_again";
            ll W32 t0 0 a0;
            bne t0 "try_again";
            li t0 1L;
            sc W32 t0 0 a0;
            beq t0 "try_again";
            mb;
            (* critical section *)
            ldq t1 0 a1;
            addi t1 1 t1;
            stq t1 0 a1;
            (* release *)
            mb;
            stl zero 0 a0;
            subi a2 1 a2;
            bgt a2 "outer";
            halt;
          ];
      ])

let test_instrumented_binary_runs_transparently () =
  let instrumented, stats = Rewrite.Instrument.instrument lock_counter_program in
  Alcotest.(check bool) "LL/SC pair recognised" true
    (stats.Rewrite.Instrument.llsc_pairs >= 1);
  let cl = C.create (small_cfg ()) in
  let lockw = C.alloc cl 64 in
  let counter = C.alloc cl 64 in
  let iters = 15 in
  for c = 0 to 3 do
    ignore
      (C.spawn cl ~cpu:c "cpu" (fun h ->
           ignore
             (R.run_program h instrumented ~entry:"main"
                ~args:[ Int64.of_int lockw; Int64.of_int counter; Int64.of_int iters ]
                ())))
  done;
  ignore (C.run cl);
  Alcotest.(check int) "shared counter fully incremented" (4 * iters)
    (Int64.to_int (read_valid cl counter))

let test_uninstrumented_binary_reads_flags () =
  (* Without the inserted checks, a binary that loads remote shared data
     observes the invalid-flag value: transparency genuinely depends on
     the rewriter. *)
  let prog =
    Alpha.Asm.(program [ proc "main" [ ldq v0 0 a0; halt ] ])
  in
  let cl = C.create (small_cfg ()) in
  let a = C.alloc cl 64 in
  let seen = ref 0L in
  let _ = C.spawn cl ~cpu:0 "writer" (fun h -> R.store_int h a 77) in
  let _ =
    C.spawn cl ~cpu:2 "reader" (fun h ->
        Sim.Proc.sleep 0.001;
        let outcome = R.run_program h prog ~entry:"main" ~args:[ Int64.of_int a ] () in
        seen := outcome.Alpha.Interp.r0)
  in
  (* Make node 1's copy invalid: home everything at node 0. *)
  C.init ~homes:[ 0 ] cl;
  ignore (C.run cl);
  Alcotest.(check int64) "flag value observed" (Cfg.flag64 Cfg.default) !seen

let test_instrumented_same_program_reads_correctly () =
  let prog =
    Alpha.Asm.(program [ proc "main" [ ldq v0 0 a0; halt ] ])
  in
  let instrumented, _ = Rewrite.Instrument.instrument prog in
  let cl = C.create (small_cfg ()) in
  let a = C.alloc cl 64 in
  let seen = ref 0L in
  let _ = C.spawn cl ~cpu:0 "writer" (fun h -> R.store_int h a 77) in
  let _ =
    C.spawn cl ~cpu:2 "reader" (fun h ->
        Sim.Proc.sleep 0.001;
        let outcome = R.run_program h instrumented ~entry:"main" ~args:[ Int64.of_int a ] () in
        seen := outcome.Alpha.Interp.r0)
  in
  C.init ~homes:[ 0 ] cl;
  ignore (C.run cl);
  Alcotest.(check int64) "instrumented binary sees the real value" 77L !seen

let suite =
  [
    Alcotest.test_case "cross-node store/load" `Quick test_cross_node_store_load;
    Alcotest.test_case "MP lock mutual exclusion" `Quick test_mp_lock_mutual_exclusion;
    Alcotest.test_case "MP barrier phases" `Quick test_mp_barrier_phases;
    Alcotest.test_case "atomic add" `Quick test_atomic_add;
    Alcotest.test_case "SM lock mutual exclusion" `Quick test_sm_lock_mutual_exclusion;
    Alcotest.test_case "SM barrier" `Quick test_sm_barrier;
    Alcotest.test_case "checking overhead" `Quick test_checking_overhead;
    Alcotest.test_case "breakdown sane" `Quick test_breakdown_sane;
    Alcotest.test_case "instrumented binary transparent" `Quick
      test_instrumented_binary_runs_transparently;
    Alcotest.test_case "uninstrumented binary reads flags" `Quick
      test_uninstrumented_binary_reads_flags;
    Alcotest.test_case "instrumented read correct" `Quick
      test_instrumented_same_program_reads_correctly;
  ]
