(* Test runner: aggregates the per-module suites. *)

let () = Alcotest.run "shasta" [ ("sim", Test_sim.suite); ("mchan", Test_mchan.suite); ("alpha", Test_alpha.suite); ("rewrite", Test_rewrite.suite); ("verify", Test_verify.suite); ("layout", Test_layout.suite); ("protocol", Test_protocol.suite); ("shasta", Test_shasta.suite); ("apps", Test_apps.suite); ("osim", Test_osim.suite); ("minidb", Test_minidb.suite); ("consistency", Test_consistency.suite); ("ir_kernel", Test_ir_kernel.suite); ("fault", Test_fault.suite); ("litmus", Test_litmus.suite); ("load", Test_load.suite) ]
