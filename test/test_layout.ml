(* Property tests for the region layout layer (Section 2.1).

   A random layout is an ordered list of 1-5 regions with power-of-two
   block sizes in 32..4096 and sizes that are small multiples of the
   block; the properties pin down the address map the whole protocol
   depends on:

   - block_of_addr / block_base / block_len round-trip: every address
     falls inside the extent of the block it maps to;
   - the blocks tile the segment exactly — no gaps, no overlap;
   - a region boundary never splits a block;
   - with a single uniform 64-byte region, block_of_addr is
     bit-identical to the historical fixed-line map (addr - base) / 64. *)

module L = Protocol.Layout

let base = 0x40000000

let spec_gen =
  QCheck.Gen.(
    let region =
      let* shift = int_range 5 12 in
      let block = 1 lsl shift in
      let* mult = int_range 1 8 in
      return { L.rs_name = "r"; rs_size = mult * block; rs_block = block }
    in
    let* n = int_range 1 5 in
    let* specs = list_size (return n) region in
    return (List.mapi (fun i s -> { s with L.rs_name = Printf.sprintf "r%d" i }) specs))

let print_specs specs =
  String.concat ","
    (List.map (fun s -> Printf.sprintf "%s=%d:%d" s.L.rs_name s.L.rs_size s.L.rs_block) specs)

let arb_specs = QCheck.make ~print:print_specs spec_gen

let layout_of specs =
  let size = List.fold_left (fun a s -> a + s.L.rs_size) 0 specs in
  L.create ~base ~size specs

let qcheck_roundtrip =
  QCheck.Test.make ~name:"block_of_addr round-trips through the block extent" ~count:300
    arb_specs (fun specs ->
      let t = layout_of specs in
      let ok = ref true in
      for addr = base to base + L.size t - 1 do
        let b = L.block_of_addr t addr in
        let lo = L.block_base t b and len = L.block_len t b in
        if not (L.valid_block t b && addr >= lo && addr < lo + len) then ok := false
      done;
      !ok)

let qcheck_exact_tiling =
  QCheck.Test.make ~name:"blocks tile the segment exactly" ~count:300 arb_specs (fun specs ->
      let t = layout_of specs in
      (* Walking block extents from [base] must visit every block id
         once, in order, and land exactly on the end of the segment. *)
      let addr = ref base and b = ref 0 in
      let ok = ref true in
      while !addr < base + L.size t do
        if L.block_of_addr t !addr <> !b || L.block_base t !b <> !addr then ok := false;
        addr := !addr + L.block_len t !b;
        incr b
      done;
      !ok && !b = L.n_blocks t && !addr = base + L.size t)

let qcheck_no_boundary_split =
  QCheck.Test.make ~name:"region boundaries never split a block" ~count:300 arb_specs
    (fun specs ->
      let t = layout_of specs in
      let ok = ref true in
      for ri = 0 to L.n_regions t - 1 do
        let r_base, r_size = L.region_bounds t ri in
        (* First and last byte of the region must map to blocks wholly
           inside it. *)
        let b0 = L.block_of_addr t r_base and b1 = L.block_of_addr t (r_base + r_size - 1) in
        if L.block_base t b0 <> r_base then ok := false;
        if L.block_base t b1 + L.block_len t b1 <> r_base + r_size then ok := false;
        if L.block_region t b0 <> ri || L.block_region t b1 <> ri then ok := false
      done;
      !ok)

let qcheck_uniform64_pin =
  QCheck.Test.make ~name:"uniform 64B layout matches the fixed-line map" ~count:300
    QCheck.(pair (int_range 1 64) small_nat)
    (fun (lines, off) ->
      let size = 64 * lines in
      let t = L.uniform ~base ~size ~block:64 () in
      let addr = base + (off mod size) in
      let b = L.block_of_addr t addr in
      b = (addr - base) / 64
      && L.block_base t b = base + (64 * b)
      && L.block_len t b = 64
      && L.n_blocks t = lines)

(* Spec-string parser: the CLI syntax round-trips into the same layout. *)
let test_spec_parse () =
  let size = 1024 * 1024 in
  let specs = L.specs_of_spec ~size "fine=64k:64,bulk=*:512" in
  (match specs with
  | [ a; b ] ->
      Alcotest.(check string) "name" "fine" a.L.rs_name;
      Alcotest.(check int) "fine size" (64 * 1024) a.L.rs_size;
      Alcotest.(check int) "fine block" 64 a.L.rs_block;
      Alcotest.(check string) "name" "bulk" b.L.rs_name;
      Alcotest.(check int) "star takes remainder" (size - (64 * 1024)) b.L.rs_size;
      Alcotest.(check int) "bulk block" 512 b.L.rs_block
  | l -> Alcotest.failf "expected 2 regions, got %d" (List.length l));
  let uni = L.specs_of_spec ~size "256" in
  (match uni with
  | [ r ] ->
      Alcotest.(check int) "uniform covers segment" size r.L.rs_size;
      Alcotest.(check int) "uniform block" 256 r.L.rs_block
  | l -> Alcotest.failf "expected 1 region, got %d" (List.length l));
  Alcotest.check_raises "bad block size rejected"
    (Invalid_argument "Layout: region 0 (shared): block size 48 is not a power of two")
    (fun () -> ignore (L.of_spec ~base ~size "48"))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_exact_tiling;
    QCheck_alcotest.to_alcotest qcheck_no_boundary_split;
    QCheck_alcotest.to_alcotest qcheck_uniform64_pin;
    Alcotest.test_case "spec string parsing" `Quick test_spec_parse;
  ]
