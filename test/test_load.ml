(* lib/load: arrival processes, admission control, and the open-loop
   serving harness over minidb. *)

module A = Load.Arrival
module Adm = Load.Admission
module Rec = Load.Recorder
module S = Load.Serve
module J = Load.Json

(* --- arrival processes --- *)

let draw_gaps proc ~seed n =
  let t = A.create ~seed proc in
  List.init n (fun _ -> A.next t)

let test_arrival_deterministic () =
  List.iter
    (fun proc ->
      let a = draw_gaps proc ~seed:11 1000 and b = draw_gaps proc ~seed:11 1000 in
      Alcotest.(check bool) "same seed, same stream" true (a = b);
      let c = draw_gaps proc ~seed:12 1000 in
      Alcotest.(check bool) "different seed, different stream" true (a <> c))
    [
      A.Poisson { rate = 5000.0 };
      A.Mmpp { rate0 = 1000.0; dwell0 = 0.01; rate1 = 20000.0; dwell1 = 0.002 };
    ]

let test_poisson_rate_converges () =
  let rate = 1000.0 in
  let n = 50_000 in
  let total = List.fold_left ( +. ) 0.0 (draw_gaps (A.Poisson { rate }) ~seed:3 n) in
  let measured = float_of_int n /. total in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.1f req/s vs %.1f" measured rate)
    true
    (abs_float (measured -. rate) /. rate < 0.02)

let test_mmpp_rate_converges () =
  let proc = A.Mmpp { rate0 = 1000.0; dwell0 = 0.01; rate1 = 20000.0; dwell1 = 0.002 } in
  let expected = A.mean_rate proc in
  (* Dwell-time-weighted average of the two state rates. *)
  Alcotest.(check (float 1e-6))
    "analytic mean rate"
    ((1000.0 *. 0.01 +. 20000.0 *. 0.002) /. (0.01 +. 0.002))
    expected;
  let n = 100_000 in
  let total = List.fold_left ( +. ) 0.0 (draw_gaps proc ~seed:5 n) in
  let measured = float_of_int n /. total in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.1f req/s vs %.1f" measured expected)
    true
    (abs_float (measured -. expected) /. expected < 0.05)

let test_arrival_scale_and_specs () =
  let p = A.Mmpp { rate0 = 1000.0; dwell0 = 0.01; rate1 = 20000.0; dwell1 = 0.002 } in
  let scaled = A.scale_to p 10_000.0 in
  Alcotest.(check (float 1e-6)) "scale_to hits the target" 10_000.0 (A.mean_rate scaled);
  (match scaled with
  | A.Mmpp { rate0; rate1; _ } ->
      Alcotest.(check (float 1e-9)) "burst ratio preserved" 20.0 (rate1 /. rate0)
  | A.Poisson _ -> Alcotest.fail "scale_to changed the process shape");
  List.iter
    (fun spec ->
      Alcotest.(check string) "spec round trip" spec (A.to_spec (A.of_spec spec)))
    [ "poisson:50000"; "mmpp:10000,0.01,200000,0.002" ];
  Alcotest.check_raises "bad spec"
    (Invalid_argument
       (Printf.sprintf "Arrival.of_spec %S; expected %s" "poison:10" A.spec_help))
    (fun () -> ignore (A.of_spec "poison:10"))

(* --- admission control --- *)

let test_admission_policies () =
  (* drop: silent discard beyond cap *)
  let d = Adm.create (Adm.drop ~cap:2) in
  Alcotest.(check bool) "admit 1" true (Adm.offer d ~now:0.0 1 = `Admitted);
  Alcotest.(check bool) "admit 2" true (Adm.offer d ~now:0.0 2 = `Admitted);
  Alcotest.(check bool) "drop 3" true (Adm.offer d ~now:0.0 3 = `Dropped);
  (* reject: fail fast beyond cap *)
  let r = Adm.create (Adm.reject_fast ~cap:1) in
  ignore (Adm.offer r ~now:0.0 1);
  Alcotest.(check bool) "reject 2" true (Adm.offer r ~now:0.0 2 = `Rejected);
  (* queue: shed at dequeue once the wait exceeds the timeout *)
  let q = Adm.create (Adm.queue ~cap:4 ~timeout:0.01) in
  ignore (Adm.offer q ~now:0.0 1);
  ignore (Adm.offer q ~now:0.0 2);
  (match Adm.take q ~now:0.005 with
  | Some (1, `Serve) -> ()
  | _ -> Alcotest.fail "expected to serve request 1");
  (match Adm.take q ~now:0.05 with
  | Some (2, `Shed) -> ()
  | _ -> Alcotest.fail "expected to shed request 2");
  Alcotest.(check bool) "empty" true (Adm.take q ~now:0.06 = None);
  Alcotest.(check string) "queue spec round trip" "queue:256:0.02"
    (Adm.to_spec (Adm.of_spec "queue:256:0.02"))

(* --- end-to-end serving --- *)

let small_cfg =
  {
    S.default_config with
    S.arrival = A.Poisson { rate = 3000.0 };
    clients = 32;
    duration = 0.01;
    server_cpus = [ 1; 2; 5 ];
  }

let report o = J.to_string (Rec.to_json o.S.recorder)

let check_accounting (r : Rec.t) =
  Alcotest.(check int) "every request resolved" r.Rec.offered (Rec.resolved r)

let test_serve_deterministic () =
  let a = S.run small_cfg and b = S.run small_cfg in
  Alcotest.(check bool) "validated" true (a.S.ok && a.S.drained);
  check_accounting a.S.recorder;
  Alcotest.(check bool) "offered some load" true (a.S.recorder.Rec.offered > 0);
  Alcotest.(check string) "bit-identical reports" (report a) (report b);
  let c = S.run { small_cfg with S.seed = 43 } in
  Alcotest.(check bool) "seed changes the report" true (report a <> report c)

let test_serve_under_faults () =
  (* 5% frame drops: the reliable transport retransmits, the run still
     validates and drains, and no response is silently lost. *)
  let cluster_cfg =
    S.cluster_config ~fault_plan:(Fault.Plan.of_spec "seed=7,drop=0.05") ()
  in
  let o = S.run ~cluster_cfg small_cfg in
  Alcotest.(check bool) "validated under faults" true (o.S.ok && o.S.drained);
  check_accounting o.S.recorder;
  match Shasta.Cluster.reliable o.S.cluster with
  | None -> Alcotest.fail "fault plan should install the reliable transport"
  | Some rel ->
      let t = Mchan.Reliable.totals rel in
      Alcotest.(check bool) "faults actually injected" true (t.Mchan.Reliable.inj_dropped > 0);
      Alcotest.(check bool) "retransmits recovered them" true
        (t.Mchan.Reliable.retransmits > 0)

let test_serve_overload_sheds () =
  (* Far past the knee with a tiny accept queue: admission must reject
     or shed, goodput must stay bounded, and accounting must still
     balance. *)
  let cfg =
    {
      small_cfg with
      S.arrival = A.Poisson { rate = 120_000.0 };
      clients = 256;
      admission = Adm.queue ~cap:16 ~timeout:0.005;
    }
  in
  let o = S.run cfg in
  let r = o.S.recorder in
  Alcotest.(check bool) "validated" true (o.S.ok && o.S.drained);
  check_accounting r;
  Alcotest.(check bool) "overload is refused, not absorbed" true
    (r.Rec.rejected + r.Rec.shed > 0);
  Alcotest.(check bool) "goodput bounded by capacity" true
    (Rec.goodput r < 0.8 *. Rec.offered_rate r)

let test_serve_drop_policy_times_out () =
  (* Silent drops: the client window frees via timeout, so the run still
     drains with every fate accounted. *)
  let cfg =
    {
      small_cfg with
      S.arrival = A.Poisson { rate = 80_000.0 };
      clients = 64;
      admission = Adm.drop ~cap:8;
      client_timeout = 0.004;
    }
  in
  let o = S.run cfg in
  let r = o.S.recorder in
  Alcotest.(check bool) "validated" true (o.S.ok && o.S.drained);
  check_accounting r;
  Alcotest.(check bool) "drops happened" true (r.Rec.dropped > 0)

let suite =
  [
    Alcotest.test_case "arrival determinism" `Quick test_arrival_deterministic;
    Alcotest.test_case "poisson rate converges" `Quick test_poisson_rate_converges;
    Alcotest.test_case "mmpp rate converges" `Quick test_mmpp_rate_converges;
    Alcotest.test_case "arrival scale and specs" `Quick test_arrival_scale_and_specs;
    Alcotest.test_case "admission policies" `Quick test_admission_policies;
    Alcotest.test_case "serve determinism" `Quick test_serve_deterministic;
    Alcotest.test_case "serve under 5% drops" `Quick test_serve_under_faults;
    Alcotest.test_case "serve overload sheds" `Quick test_serve_overload_sheds;
    Alcotest.test_case "serve drop policy drains" `Quick test_serve_drop_policy_times_out;
  ]
