(* Tests for the static-analysis trio: the translation validator
   (Rewrite.Verify), the redundant-check optimizer (Rewrite.Optimize),
   and their interaction with every instrumenter pass across the IR
   corpus. *)

open Alpha

module V = Rewrite.Verify
module Inst = Rewrite.Instrument

let instrument ?options prog = Inst.instrument ?options prog

let is_ok prog = V.ok (V.verify prog)

let n_diags prog = List.length (V.diags (V.verify prog))

let run_flat ?args prog entry =
  let rt = Runtime.flat ~size:(1 lsl 16) () in
  Interp.run prog rt ~entry ?args ()

(* --- the validator accepts correct code --- *)

let test_corpus_clean () =
  List.iter
    (fun (e : Apps.Ircorpus.entry) ->
      let prog, _ = instrument e.Apps.Ircorpus.e_program in
      let reports = V.verify prog in
      Alcotest.(check bool) (e.Apps.Ircorpus.e_name ^ " validator-clean") true (V.ok reports);
      let accesses = List.fold_left (fun a r -> a + r.V.r_accesses) 0 reports in
      Alcotest.(check bool)
        (e.Apps.Ircorpus.e_name ^ " verified some accesses")
        true (accesses > 0))
    Apps.Ircorpus.all

let test_manual_coverage_accepted () =
  (* A hand-placed store check dominating its store passes, including
     through a poll placed BEFORE the check (the corrected pass-3
     ordering). *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [ Insn.Poll; Insn.Store_check (W64, 0, a0); stq t0 0 a0; halt ];
        ])
  in
  Alcotest.(check bool) "poll-then-check covers" true (is_ok prog)

(* --- hand-built uncovered programs: each must draw a diagnostic --- *)

let test_uncovered_no_check () =
  let prog = Asm.(program [ proc "main" [ stq t0 0 a0; halt ] ]) in
  Alcotest.(check int) "one diagnostic" 1 (n_diags prog)

let test_uncovered_wrong_width () =
  (* A 32-bit check does not cover a 64-bit store. *)
  let prog =
    Asm.(program [ proc "main" [ Insn.Store_check (W32, 0, a0); stq t0 0 a0; halt ] ])
  in
  Alcotest.(check int) "one diagnostic" 1 (n_diags prog)

let test_uncovered_wrong_kind () =
  (* A load fact (flag check) does not license a store to the same
     line. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [ ldq t0 0 a0; Insn.Load_check (W64, t0, 0, a0); stq t1 0 a0; halt ];
        ])
  in
  Alcotest.(check int) "one diagnostic" 1 (n_diags prog)

let test_uncovered_check_before_poll () =
  (* The pre-fix pass-3 ordering: a check issued BEFORE the backedge
     poll is killed by it (the poll may run protocol code that changes
     line states), so the access after the poll is uncovered. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [ Insn.Store_check (W64, 0, a0); Insn.Poll; stq t0 0 a0; halt ];
        ])
  in
  Alcotest.(check int) "poll kills the fact" 1 (n_diags prog)

let test_uncovered_killed_by_call () =
  let prog =
    Asm.(
      program
        [
          proc "main" [ Insn.Store_check (W64, 0, a0); call "f"; stq t0 0 a0; halt ];
          proc "f" [ ret ];
        ])
  in
  Alcotest.(check int) "call kills the fact" 1 (n_diags prog)

let test_uncovered_non_dominating () =
  (* Diamond with the check on only one arm: the intersection at the
     join has no fact. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              beq t9 "skip";
              Insn.Store_check (W64, 0, a0);
              label "skip";
              stq t0 0 a0;
              halt;
            ];
        ])
  in
  Alcotest.(check int) "check does not dominate" 1 (n_diags prog)

let test_uncovered_flag_not_adjacent () =
  (* The flag technique only works when the check directly follows its
     load (it inspects the just-loaded value); an intervening
     instruction voids it. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [ ldq t0 0 a0; add t1 t1 t1; Insn.Load_check (W64, t0, 0, a0); halt ];
        ])
  in
  Alcotest.(check int) "one diagnostic" 1 (n_diags prog)

let test_uncovered_llsc () =
  let prog = Asm.(program [ proc "main" [ ll W32 t0 0 a0; halt ] ]) in
  Alcotest.(check int) "raw LL flagged" 1 (n_diags prog);
  (* ... unless the caller says LL/SC transformation was off. *)
  Alcotest.(check bool) "accepted with require_llsc:false" true
    (V.ok (V.verify ~require_llsc:false prog))

(* --- seeded instrumenter mutations: the validator convicts all --- *)

let test_instrumenter_mutations_caught () =
  let reports = Check.Mutation.hunt_instrumenter () in
  Alcotest.(check int) "four families" 4 (List.length reports);
  List.iter
    (fun (r : Check.Mutation.ireport) ->
      Alcotest.(check bool) (r.Check.Mutation.i_label ^ " fired") true r.Check.Mutation.i_fired;
      Alcotest.(check bool)
        (r.Check.Mutation.i_label ^ " caught")
        true
        (r.Check.Mutation.i_caught <> None))
    reports;
  Alcotest.(check bool) "all caught" true (Check.Mutation.all_icaught reports)

(* --- the optimizer --- *)

let opt_options = { Inst.default_options with Inst.redundant_elim = true }

let test_eliminates_diamond_redundancy () =
  (* Both arms of the diamond store to the same line, so the load at the
     join is covered on every path and its check is eliminable. *)
  let body =
    Asm.
      [
        ldq t0 0 a0;
        beq t0 "else";
        stq t0 8 a0;
        br "join";
        label "else";
        stq zero 8 a0;
        label "join";
        ldq t1 8 a0;
        add t1 t0 v0;
        halt;
      ]
  in
  let prog = Asm.(program [ proc "main" body ]) in
  let base, _ = instrument prog in
  let opt, stats = instrument ~options:opt_options prog in
  Alcotest.(check bool) "eliminated >= 1" true (stats.Inst.checks_eliminated >= 1);
  Alcotest.(check bool) "optimized code validator-clean" true (is_ok opt);
  Alcotest.(check int64) "same result on flat runtime" (run_flat base "main").Interp.r0
    (run_flat opt "main").Interp.r0

let test_hoists_loop_invariant_checks () =
  (* With polls off, the loop body has no barrier and the base is never
     written, so the batch check is hoistable to the preheader. *)
  let options = { opt_options with Inst.polls = false } in
  let body =
    Asm.
      [
        li t9 4L;
        label "loop";
        ldq t0 0 a0;
        stq t0 8 a0;
        subi t9 1 t9;
        bgt t9 "loop";
        ldq v0 8 a0;
        halt;
      ]
  in
  let prog = Asm.(program [ proc "main" body ]) in
  let base, _ = instrument ~options:{ options with Inst.redundant_elim = false } prog in
  let opt, stats = instrument ~options prog in
  Alcotest.(check bool) "hoisted >= 1" true (stats.Inst.checks_hoisted >= 1);
  Alcotest.(check bool) "optimized code validator-clean" true (is_ok opt);
  Alcotest.(check int64) "same result on flat runtime" (run_flat base "main").Interp.r0
    (run_flat opt "main").Interp.r0

let test_polls_block_hoisting () =
  (* Default options put a poll on every backedge; the poll is a
     protocol entry point, so nothing may be hoisted across it. *)
  List.iter
    (fun (e : Apps.Ircorpus.entry) ->
      let _, stats = instrument ~options:opt_options e.Apps.Ircorpus.e_program in
      Alcotest.(check int) (e.Apps.Ircorpus.e_name ^ " nothing hoisted") 0
        stats.Inst.checks_hoisted)
    Apps.Ircorpus.all

let test_corpus_bit_identical_with_fewer_check_slots () =
  (* The acceptance bar: with redundant_elim on, every kernel's result
     and final memory image are bit-identical while the executed
     check-slot count never rises — and drops overall. *)
  let total_base = ref 0 and total_opt = ref 0 in
  List.iter
    (fun (e : Apps.Ircorpus.entry) ->
      let base, _ = instrument e.Apps.Ircorpus.e_program in
      let opt, _ = instrument ~options:opt_options e.Apps.Ircorpus.e_program in
      let rb = Apps.Ircorpus.run base e in
      let ro = Apps.Ircorpus.run opt e in
      Alcotest.(check int64) (e.Apps.Ircorpus.e_name ^ " r0") rb.Apps.Ircorpus.r0 ro.Apps.Ircorpus.r0;
      Alcotest.(check bool)
        (e.Apps.Ircorpus.e_name ^ " image")
        true
        (rb.Apps.Ircorpus.image = ro.Apps.Ircorpus.image);
      Alcotest.(check bool)
        (e.Apps.Ircorpus.e_name ^ " check slots never rise")
        true
        (ro.Apps.Ircorpus.check_slots <= rb.Apps.Ircorpus.check_slots);
      total_base := !total_base + rb.Apps.Ircorpus.check_slots;
      total_opt := !total_opt + ro.Apps.Ircorpus.check_slots)
    Apps.Ircorpus.all;
  Alcotest.(check bool) "check slots drop overall" true (!total_opt < !total_base)

(* --- pass interaction: batching x granularity x polls x LL/SC --- *)

let test_pass_interaction_16_combos () =
  List.iter
    (fun batching ->
      List.iter
        (fun granularity_table ->
          List.iter
            (fun polls ->
              List.iter
                (fun transform_ll_sc ->
                  let options =
                    {
                      Inst.default_options with
                      Inst.batching;
                      granularity_table;
                      polls;
                      transform_ll_sc;
                    }
                  in
                  List.iter
                    (fun (e : Apps.Ircorpus.entry) ->
                      let prog, _ = instrument ~options e.Apps.Ircorpus.e_program in
                      let label =
                        Printf.sprintf "%s batching=%b gran=%b polls=%b llsc=%b"
                          e.Apps.Ircorpus.e_name batching granularity_table polls transform_ll_sc
                      in
                      Alcotest.(check bool)
                        label true
                        (V.ok (V.verify ~require_llsc:transform_ll_sc prog)))
                    Apps.Ircorpus.all)
                [ true; false ])
            [ true; false ])
        [ true; false ])
    [ true; false ]

let test_corpus_code_growth_band () =
  (* Default options must keep every kernel's static growth inside the
     band Table 3 reports for checking code (tens of percent to ~2-3x,
     never shrinkage or pathological blowup). *)
  List.iter
    (fun (e : Apps.Ircorpus.entry) ->
      let _, stats = instrument e.Apps.Ircorpus.e_program in
      let growth = Inst.code_growth stats in
      Alcotest.(check bool)
        (Printf.sprintf "%s growth %.2f in band" e.Apps.Ircorpus.e_name growth)
        true
        (growth > 0.1 && growth < 3.0))
    Apps.Ircorpus.all

(* --- per-pass statistics printing --- *)

let test_pp_stats_golden () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t9 100L;
              label "loop";
              ldq t0 0 a0;
              ldq t1 8 a0;
              ldq t2 16 a0;
              add t0 t1 t3;
              add t3 t2 t3;
              stq t3 24 a0;
              stq t3 32 a0;
              addi a0 64 a0;
              subi t9 1 t9;
              bgt t9 "loop";
              halt;
            ];
        ])
  in
  let _, stats = instrument prog in
  let expected =
    String.concat "\n"
      [
        "procedures          1";
        "code slots          13 -> 28 (+115%)";
        "load checks         3";
        "store checks        2";
        "private accesses    0 (no check)";
        "batches             1 covering 5 accesses";
        "polls               1";
        "mb checks           0";
        "ll/sc pairs         0";
        "prefetches          0";
        "gran lookups        0";
        "checks eliminated   0";
        "checks hoisted      0";
      ]
  in
  Alcotest.(check string) "stats text" expected (Format.asprintf "%a" Inst.pp_stats stats)

let suite =
  [
    Alcotest.test_case "corpus validator-clean" `Quick test_corpus_clean;
    Alcotest.test_case "manual coverage accepted" `Quick test_manual_coverage_accepted;
    Alcotest.test_case "uncovered: no check" `Quick test_uncovered_no_check;
    Alcotest.test_case "uncovered: wrong width" `Quick test_uncovered_wrong_width;
    Alcotest.test_case "uncovered: wrong kind" `Quick test_uncovered_wrong_kind;
    Alcotest.test_case "uncovered: check before poll" `Quick test_uncovered_check_before_poll;
    Alcotest.test_case "uncovered: killed by call" `Quick test_uncovered_killed_by_call;
    Alcotest.test_case "uncovered: non-dominating" `Quick test_uncovered_non_dominating;
    Alcotest.test_case "uncovered: flag not adjacent" `Quick test_uncovered_flag_not_adjacent;
    Alcotest.test_case "uncovered: raw LL/SC" `Quick test_uncovered_llsc;
    Alcotest.test_case "instrumenter mutations caught" `Quick test_instrumenter_mutations_caught;
    Alcotest.test_case "eliminates diamond redundancy" `Quick test_eliminates_diamond_redundancy;
    Alcotest.test_case "hoists loop-invariant checks" `Quick test_hoists_loop_invariant_checks;
    Alcotest.test_case "polls block hoisting" `Quick test_polls_block_hoisting;
    Alcotest.test_case "corpus bit-identical, fewer check slots" `Quick
      test_corpus_bit_identical_with_fewer_check_slots;
    Alcotest.test_case "pass interaction: 16 combos" `Quick test_pass_interaction_16_combos;
    Alcotest.test_case "corpus code growth band" `Quick test_corpus_code_growth_band;
    Alcotest.test_case "pp_stats golden" `Quick test_pp_stats_golden;
  ]
