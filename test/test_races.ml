(* Tests for the whole-program static analyzer (PR 10): the Eraser-style
   race detector, the batch-safety validator, the affinity lint, and the
   interprocedural callgraph layer — plus the SPMD sync corpus they are
   calibrated against.

   Structure mirrors the analyzer's claims:
   - the sync kernels really are correctly synchronised (they run to
     the predicted per-thread results on a real cluster, at several
     thread counts, through the sync_* system calls);
   - the race detector exonerates all of them (and the whole IR corpus,
     and the LL/SC lock idiom) with zero false positives;
   - every seeded sync mutation is convicted statically;
   - the batch validator passes every meta table the interpreter builds
     and convicts a seeded batch-boundary corruption;
   - the affinity lint classifies the three sync kernels the way the
     granularity/migration benches measure them. *)

module I = Apps.Ircorpus

let instrument prog = fst (Rewrite.Instrument.instrument prog)

(* --- the sync kernels are correct as written --- *)

let expected_r0s name ~nprocs ~iters =
  match name with
  | "fs-twin" -> Array.make nprocs (Int64.of_int (2081 + iters))
  | "stencil-sync" ->
      Array.init nprocs (fun tid ->
          if tid = nprocs - 1 then 0L else Int64.of_int (iters * (iters + 1) / 2))
  | "mdb-sync" -> Array.make nprocs (Int64.of_int (100 + (nprocs * iters)))
  | _ -> Alcotest.fail ("no oracle for sync kernel " ^ name)

let test_sync_kernels_run () =
  List.iter
    (fun (e : I.entry) ->
      List.iter
        (fun nprocs ->
          let r = I.run_spmd ~nprocs (instrument e.I.e_program) e in
          Alcotest.(check (array int64))
            (Printf.sprintf "%s r0s at %d threads" e.I.e_name nprocs)
            (expected_r0s e.I.e_name ~nprocs ~iters:e.I.e_iters)
            r.I.s_r0s)
        [ 2; 4 ])
    I.sync

let test_sync_kernels_deterministic () =
  let e = I.find_sync "mdb-sync" in
  let p = instrument e.I.e_program in
  let a = I.run_spmd ~nprocs:4 p e in
  let b = I.run_spmd ~nprocs:4 p e in
  Alcotest.(check (array int64)) "r0s repeat" a.I.s_r0s b.I.s_r0s;
  Alcotest.(check (float 0.0)) "elapsed repeats" a.I.s_elapsed b.I.s_elapsed

(* --- exoneration: zero false positives --- *)

let analyze ?(nprocs = 4) (e : I.entry) =
  Rewrite.Races.analyze ~nprocs ~name:e.I.e_name e.I.e_program

let test_sync_exonerated () =
  List.iter
    (fun (e : I.entry) ->
      List.iter
        (fun nprocs ->
          let r = analyze ~nprocs e in
          Alcotest.(check int)
            (Printf.sprintf "%s unresolved at %d threads" e.I.e_name nprocs)
            0 r.Rewrite.Races.rep_unresolved;
          Alcotest.(check bool)
            (Printf.sprintf "%s found shared accesses" e.I.e_name)
            true
            (r.Rewrite.Races.rep_atoms <> []);
          Alcotest.(check int)
            (Printf.sprintf "%s races at %d threads" e.I.e_name nprocs)
            0
            (List.length r.Rewrite.Races.rep_races))
        [ 2; 4; 8 ])
    I.sync

let test_corpus_exonerated () =
  (* The single-process corpus kernels are deployed on one processor;
     at their deployment concurrency the detector proves them trivially
     race-free, but still resolves and collects their shared atoms. *)
  List.iter
    (fun (e : I.entry) ->
      let r = analyze ~nprocs:1 e in
      Alcotest.(check int)
        (e.I.e_name ^ " races")
        0
        (List.length r.Rewrite.Races.rep_races))
    I.all

let test_llsc_lock_exonerated () =
  (* The paper's Figure-1 spin lock: the detector must recover the lock
     from the LL/SC idiom itself — acquire on the successful-Sc branch
     edge, release at the store of zero — and credit it to the
     critical-section accesses on a1. *)
  let prog =
    Alpha.Asm.(
      program
        [
          proc "main"
            [
              label "outer";
              label "try_again";
              ll W32 t0 0 a0;
              bne t0 "try_again";
              li t0 1L;
              sc W32 t0 0 a0;
              beq t0 "try_again";
              mb;
              ldq t1 0 a1;
              addi t1 1 t1;
              stq t1 0 a1;
              mb;
              stl zero 0 a0;
              subi a2 1 a2;
              bgt a2 "outer";
              halt;
            ];
        ])
  in
  let r = Rewrite.Races.analyze ~nprocs:4 ~name:"llsc-lock" prog in
  Alcotest.(check bool) "counter atoms collected" true (r.Rewrite.Races.rep_atoms <> []);
  Alcotest.(check int) "no races" 0 (List.length r.Rewrite.Races.rep_races)

let test_unprotected_counter_convicted () =
  (* The same counter without the lock: the detector must convict. *)
  let prog =
    Alpha.Asm.(
      program
        [
          proc "main"
            [ label "outer"; ldq t1 0 a1; addi t1 1 t1; stq t1 0 a1; subi a2 1 a2; bgt a2 "outer"; halt ];
        ])
  in
  let r = Rewrite.Races.analyze ~nprocs:2 ~name:"unlocked" prog in
  Alcotest.(check bool) "race reported" true (r.Rewrite.Races.rep_races <> [])

(* --- conviction: every seeded sync mutation draws a race report --- *)

let test_sync_mutations_convicted () =
  let reports = Check.Mutation.hunt_sync () in
  List.iter
    (fun (r : Check.Mutation.sreport) ->
      Alcotest.(check bool)
        (r.Check.Mutation.s_label ^ " fired")
        true r.Check.Mutation.s_fired;
      Alcotest.(check bool)
        (r.Check.Mutation.s_label ^ " convicted")
        true
        (r.Check.Mutation.s_caught <> None))
    reports;
  Alcotest.(check int) "four families" 4 (List.length reports)

let test_every_drop_lock_site_convicted () =
  (* Not just the first site: dropping ANY lock acquisition in the
     mdb-sync kernel must convict — the lockset analysis has no lucky
     site to hide behind. *)
  let e = I.find_sync "mdb-sync" in
  let _, _, nsites = Check.Mutation.apply_smutation Check.Mutation.Drop_lock ~site:(-1) e.I.e_program in
  Alcotest.(check bool) "kernel has lock sites" true (nsites >= 2);
  for site = 0 to nsites - 1 do
    let prog', fired, _ = Check.Mutation.apply_smutation Check.Mutation.Drop_lock ~site e.I.e_program in
    Alcotest.(check bool) "site fired" true fired;
    let r = Rewrite.Races.analyze ~nprocs:4 ~name:"mdb-sync" prog' in
    Alcotest.(check bool)
      (Printf.sprintf "drop-lock site %d convicted" site)
      true
      (r.Rewrite.Races.rep_races <> [])
  done

(* --- batch-safety validator --- *)

let test_batch_validator_clean () =
  (* Every meta table the interpreter builds for every corpus program —
     uninstrumented, instrumented, and instrumented+optimized — must
     validate: no batch swallows a dispatch point, every derived table
     agrees with the program text. *)
  let optimized prog =
    let options =
      { Rewrite.Instrument.default_options with Rewrite.Instrument.redundant_elim = true }
    in
    fst (Rewrite.Instrument.instrument ~options prog)
  in
  List.iter
    (fun (e : I.entry) ->
      List.iter
        (fun (tag, prog) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s (%s) violations" e.I.e_name tag)
            []
            (List.map
               (fun v -> Format.asprintf "%a" Rewrite.Batch.pp_violation v)
               (Rewrite.Batch.validate_program prog)))
        [
          ("raw", e.I.e_program);
          ("instrumented", instrument e.I.e_program);
          ("optimized", optimized e.I.e_program);
        ])
    (I.all @ I.sync)

let test_batch_mutation_convicted () =
  (* A pure run lengthened by one must draw a "swallowed" (or, at the
     procedure edge, "overrun") violation, plus the length disagreement
     with the validator's own re-derivation. *)
  let e = I.find "water-nsq" in
  let prog = instrument e.I.e_program in
  let convicted = ref 0 in
  List.iter
    (fun (p : Alpha.Program.procedure) ->
      match Check.Mutation.swallow_dispatch p with
      | None -> ()
      | Some (pc, meta) ->
          let vs = Rewrite.Batch.validate_meta p meta in
          Alcotest.(check bool)
            (Printf.sprintf "%s pure run at %d convicted" p.Alpha.Program.name pc)
            true (vs <> []);
          Alcotest.(check bool)
            "a swallow/overrun violation names the run"
            true
            (List.exists
               (fun v ->
                 v.Rewrite.Batch.v_kind = "swallowed" || v.Rewrite.Batch.v_kind = "overrun")
               vs);
          incr convicted)
    (Alpha.Program.procedures prog);
  Alcotest.(check bool) "at least one procedure mutated" true (!convicted > 0)

(* --- affinity lint --- *)

let bindings ~block =
  [
    { Rewrite.Affinity.bd_arg = 0; bd_region = "hot"; bd_block = block; bd_size = 64 * 1024 };
    { Rewrite.Affinity.bd_arg = 1; bd_region = "bulk"; bd_block = block; bd_size = 64 * 1024 };
  ]

let hints ?(block = 512) name =
  let e = I.find_sync name in
  let r = analyze ~nprocs:8 e in
  Rewrite.Affinity.report ~bindings:(bindings ~block) r

let hint_for hints region = List.find (fun h -> h.Rewrite.Affinity.h_region = region) hints

let test_affinity_false_sharing () =
  (* fs-twin under a coarse 512B layout: the hot slots are 64B-strided
     per-thread words — false sharing, fix = 64B blocks; the bulk array
     is written only by the pinned tid-0 initialiser — read-mostly,
     keep it coarse. *)
  let hs = hints "fs-twin" in
  let hot = hint_for hs "hot" in
  Alcotest.(check string) "hot kind" "false-sharing" (Rewrite.Affinity.kind_name hot.Rewrite.Affinity.h_kind);
  Alcotest.(check int) "hot stride" 64 hot.Rewrite.Affinity.h_stride;
  Alcotest.(check int) "hot suggested block" 64 hot.Rewrite.Affinity.h_suggest;
  let bulk = hint_for hs "bulk" in
  Alcotest.(check string) "bulk kind" "read-mostly" (Rewrite.Affinity.kind_name bulk.Rewrite.Affinity.h_kind);
  Alcotest.(check bool) "bulk stays coarse" true (bulk.Rewrite.Affinity.h_suggest >= 512);
  (* Under the suggested 64B layout the same kernel is clean: partitioned. *)
  let hot64 = hint_for (hints ~block:64 "fs-twin") "hot" in
  Alcotest.(check string) "hot kind at 64B" "partitioned" (Rewrite.Affinity.kind_name hot64.Rewrite.Affinity.h_kind)

let test_affinity_migratory () =
  (* mdb-sync: every thread writes the same record under the same
     cross-thread lock — the migratory pattern; the hint carries the
     homing policy the scale bench measures. *)
  let hot = hint_for (hints "mdb-sync") "hot" in
  Alcotest.(check string) "kind" "migratory" (Rewrite.Affinity.kind_name hot.Rewrite.Affinity.h_kind);
  Alcotest.(check bool) "locked writes seen" true (hot.Rewrite.Affinity.h_locked_writes > 0);
  (match hot.Rewrite.Affinity.h_homing with
  | Some Protocol.Config.Migratory -> ()
  | _ -> Alcotest.fail "expected a Migratory homing hint");
  let bulk = hint_for (hints "mdb-sync") "bulk" in
  Alcotest.(check string) "unused region" "untouched" (Rewrite.Affinity.kind_name bulk.Rewrite.Affinity.h_kind)

let test_affinity_fine_stencil () =
  (* stencil-sync: 8B-strided strips under 64B blocks — false sharing
     with the finest legal block suggested (min_block = 32 > stride). *)
  let hot = hint_for (hints ~block:64 "stencil-sync") "hot" in
  Alcotest.(check string) "kind" "false-sharing" (Rewrite.Affinity.kind_name hot.Rewrite.Affinity.h_kind);
  Alcotest.(check int) "stride" 8 hot.Rewrite.Affinity.h_stride;
  Alcotest.(check int) "suggest clamps to min block" Protocol.Layout.min_block hot.Rewrite.Affinity.h_suggest

let test_affinity_specs_feed_config () =
  (* The suggested specs must be a legal layout: build one. *)
  let hs = hints "fs-twin" in
  let specs = Rewrite.Affinity.suggested_specs hs in
  let layout = Protocol.Layout.create ~base:0x4000_0000 ~size:(128 * 1024) specs in
  Alcotest.(check int) "two regions" 2 (Protocol.Layout.n_regions layout)

(* --- interprocedural callgraph --- *)

let test_callgraph_shape () =
  let e = I.find_sync "mdb-sync" in
  let cg = Rewrite.Callgraph.build e.I.e_program in
  Alcotest.(check (list string)) "roots" [ "main" ] cg.Rewrite.Callgraph.roots;
  Alcotest.(check bool)
    "bump is an internal callee"
    true
    (List.exists
       (fun s -> s.Rewrite.Callgraph.cs_callee = "bump" && not s.Rewrite.Callgraph.cs_external)
       cg.Rewrite.Callgraph.sites);
  Alcotest.(check bool)
    "sync calls are external"
    true
    (List.for_all
       (fun s -> s.Rewrite.Callgraph.cs_external)
       (Rewrite.Callgraph.sites_of cg Alpha.Runtime.sync_lock_proc));
  Alcotest.(check (list string)) "main's callees include bump" [ "bump" ]
    (List.sort_uniq compare
       (List.filter (fun c -> c = "bump") (Rewrite.Callgraph.callees_of cg "main")))

let test_callgraph_classes_cross_call () =
  (* A shared pointer handed to a helper that dereferences it: the
     interprocedural analysis must class the helper's base register
     Shared at its entry (the per-procedure analysis cannot). *)
  let shared_base = Rewrite.Instrument.default_options.Rewrite.Instrument.shared_base in
  let prog =
    Alpha.Asm.(
      program
        [
          proc "main" [ li s0 (Int64.of_int shared_base); call "deref"; halt ];
          proc "deref" [ ldq t0 0 s0; ret ];
        ])
  in
  let c = Rewrite.Callgraph.analyze_classes prog in
  (match Rewrite.Callgraph.class_before c ~proc:"deref" ~idx:0 Alpha.Asm.s0 with
  | Rewrite.Dataflow.Shared -> ()
  | _ -> Alcotest.fail "s0 should be Shared at deref entry")

let test_callgraph_escapes () =
  (* barnes' arr[8] = &arr pattern: a shared pointer stored to memory
     must appear in the escape report. *)
  let e = I.find "barnes" in
  let c = Rewrite.Callgraph.analyze_classes e.I.e_program in
  let escs = Rewrite.Callgraph.escapes c in
  Alcotest.(check bool) "barnes has a pointer escape" true (escs <> [])

let suite =
  [
    Alcotest.test_case "sync kernels run to predicted r0s" `Slow test_sync_kernels_run;
    Alcotest.test_case "sync runner deterministic" `Quick test_sync_kernels_deterministic;
    Alcotest.test_case "sync kernels exonerated" `Quick test_sync_exonerated;
    Alcotest.test_case "IR corpus exonerated" `Quick test_corpus_exonerated;
    Alcotest.test_case "LL/SC lock idiom exonerated" `Quick test_llsc_lock_exonerated;
    Alcotest.test_case "unprotected counter convicted" `Quick test_unprotected_counter_convicted;
    Alcotest.test_case "sync mutations convicted" `Quick test_sync_mutations_convicted;
    Alcotest.test_case "every drop-lock site convicted" `Quick test_every_drop_lock_site_convicted;
    Alcotest.test_case "batch validator clean on corpus" `Quick test_batch_validator_clean;
    Alcotest.test_case "batch mutation convicted" `Quick test_batch_mutation_convicted;
    Alcotest.test_case "affinity: false sharing" `Quick test_affinity_false_sharing;
    Alcotest.test_case "affinity: migratory" `Quick test_affinity_migratory;
    Alcotest.test_case "affinity: stencil fine stride" `Quick test_affinity_fine_stencil;
    Alcotest.test_case "affinity: specs feed a layout" `Quick test_affinity_specs_feed_config;
    Alcotest.test_case "callgraph shape" `Quick test_callgraph_shape;
    Alcotest.test_case "callgraph classes cross calls" `Quick test_callgraph_classes_cross_call;
    Alcotest.test_case "callgraph escape report" `Quick test_callgraph_escapes;
  ]
