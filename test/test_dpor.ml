(* Tests for the DPOR explorer stack: the vector-clock/happens-before
   module (property-tested against a naive oracle), the reduction itself
   (complete fixed points on every litmus scenario, with run counts an
   order of magnitude under the bounded-exhaustive driver's), preemption
   bounding on the minidb two-transaction scenario the exhaustive driver
   cannot finish, the documented legal transient rediscovered-but-exempt
   under jittered DPOR, the exhaustive driver's truncation flag, and
   mutation conviction run counts under DPOR vs exhaustive. *)

module SE = Sim.Engine
module V = Check.Vclock
module E = Check.Explore
module D = Check.Dpor
module L = Check.Litmus
module M = Check.Mutation

(* --- vector-clock properties -------------------------------------- *)

let arb_clock =
  QCheck.(array_of_size (Gen.return 5) small_nat)

let test_join_commutative =
  QCheck.Test.make ~name:"vclock join commutative" ~count:200
    QCheck.(pair arb_clock arb_clock)
    (fun (a, b) -> V.join a b = V.join b a)

let test_join_associative =
  QCheck.Test.make ~name:"vclock join associative" ~count:200
    QCheck.(triple arb_clock arb_clock arb_clock)
    (fun (a, b, c) -> V.join (V.join a b) c = V.join a (V.join b c))

let test_join_upper_bound =
  QCheck.Test.make ~name:"vclock join is an upper bound" ~count:200
    QCheck.(pair arb_clock arb_clock)
    (fun (a, b) ->
      let j = V.join a b in
      V.leq a j && V.leq b j)

(* --- random label traces ------------------------------------------ *)

let gen_kind =
  QCheck.Gen.oneofl [ SE.Generic; SE.Proc_step; SE.Message; SE.Wakeup; SE.Timer ]

let gen_label =
  QCheck.Gen.map3
    (fun n b k -> { SE.lbl_node = n; lbl_block = b; lbl_kind = k })
    (QCheck.Gen.int_range (-1) 2)
    (QCheck.Gen.int_range (-1) 2)
    gen_kind

let print_label (l : SE.label) =
  Printf.sprintf "{n%d/b%d}" l.SE.lbl_node l.SE.lbl_block

let print_trace ls = String.concat ";" (List.map print_label ls)

let arb_trace ?(max_len = 24) () =
  QCheck.make ~print:print_trace
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 max_len) gen_label)

(* The naive oracle: happens-before is the transitive closure of trace
   order restricted to dependent pairs, computed in O(n³). *)
let naive_hb (labels : SE.label array) =
  let n = Array.length labels in
  let r = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if SE.dependent labels.(i) labels.(j) then r.(i).(j) <- true
    done
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if r.(i).(k) then
        for j = 0 to n - 1 do
          if r.(k).(j) then r.(i).(j) <- true
        done
    done
  done;
  r

let test_hb_matches_oracle =
  QCheck.Test.make ~name:"vclock hb agrees with the O(n^2) closure oracle"
    ~count:300 (arb_trace ())
    (fun ls ->
      let labels = Array.of_list ls in
      let n = Array.length labels in
      let tr = V.of_trace labels in
      let oracle = naive_hb labels in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if V.hb tr i j <> oracle.(i).(j) then ok := false
        done
      done;
      !ok)

(* Appending events to a trace never rewrites history: happens-before
   among the existing events is unchanged (clock monotonicity under
   append). *)
let test_hb_monotone_under_append =
  QCheck.Test.make ~name:"hb among prefix events stable under append"
    ~count:200
    QCheck.(pair (arb_trace ~max_len:16 ()) (arb_trace ~max_len:8 ()))
    (fun (prefix, suffix) ->
      let p = Array.of_list prefix in
      let full = Array.of_list (prefix @ suffix) in
      let tp = V.of_trace p and tf = V.of_trace full in
      let n = Array.length p in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if V.hb tp i j <> V.hb tf i j then ok := false
        done
      done;
      !ok)

(* --- DPOR vs bounded-exhaustive on the litmus suite --------------- *)

(* Tentpole acceptance: on every litmus scenario, DPOR runs to a
   complete (unbounded) fixed point, reports the same violation set as
   the exhaustive driver (none), and spends at least 10x fewer runs. *)
let test_dpor_litmus_fixed_point () =
  List.iter
    (fun (sc : L.scenario) ->
      let d = D.explore ~max_runs:1000 (L.as_scenario sc) in
      Alcotest.(check bool) (sc.L.name ^ " dpor complete") true d.E.stats.E.s_complete;
      Alcotest.(check bool) (sc.L.name ^ " dpor unbounded") false d.E.stats.E.s_truncated;
      (match d.E.failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%s under %s: %s" sc.L.name f.E.f_schedule
            (String.concat "; " f.E.f_violations));
      let x = E.exhaustive ~max_runs:400 (L.as_scenario sc) in
      Alcotest.(check (list string))
        (sc.L.name ^ " identical violation sets")
        (List.concat_map (fun f -> f.E.f_violations) x.E.failures)
        (List.concat_map (fun f -> f.E.f_violations) d.E.failures);
      (* A budget-capped exhaustive run count lower-bounds the true tree
         size, so the 10x claim is sound even when the cap bites. *)
      if 10 * d.E.stats.E.s_runs > x.E.stats.E.s_runs then
        Alcotest.failf "%s: dpor took %d runs, exhaustive only %d (< 10x)"
          sc.L.name d.E.stats.E.s_runs x.E.stats.E.s_runs;
      (* Every run of a complete reduction should land in a distinct
         Mazurkiewicz class — no redundant exploration. *)
      Alcotest.(check int)
        (sc.L.name ^ " one class per run")
        d.E.stats.E.s_runs d.E.stats.E.s_classes)
    L.all

(* --- preemption bounding: the minidb two-transaction scenario ------ *)

(* Acceptance: under a preemption bound of 1 (<= the required 2), DPOR
   completes the bounded fixed point on a scenario whose tie-break tree
   the exhaustive driver cannot finish within its run budget. *)
let test_dpor_minidb_bounded () =
  let d =
    D.explore ~max_runs:500 ~preemption_bound:1 (L.as_scenario Check.Txn.scenario)
  in
  Alcotest.(check bool) "bounded fixed point reached" true d.E.stats.E.s_complete;
  Alcotest.(check bool) "the bound actually cut branches" true
    d.E.stats.E.s_truncated;
  (match d.E.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "minidb-txn2 under %s: %s" f.E.f_schedule
        (String.concat "; " f.E.f_violations));
  let x = E.exhaustive ~max_runs:60 (L.as_scenario Check.Txn.scenario) in
  Alcotest.(check bool) "exhaustive cannot finish in its budget" false
    x.E.stats.E.s_complete

(* --- the documented legal transient under jittered DPOR ------------ *)

(* Regression pin for the exemption: a directory owner may transiently
   sit in S/I while its upgrade grant is still in flight.  The window
   only opens under message delay, so plain tie-break DPOR never sees
   it; composed with jitter, DPOR must rediscover the transient within a
   few delay seeds and must NOT report it as a violation. *)
let test_dpor_rediscovers_legal_transient () =
  let found = ref 0 in
  let seed = ref 1 in
  while !found = 0 && !seed <= 16 do
    let transients = ref 0 in
    let scenario schedule =
      let o = L.run L.atomic_increment schedule in
      transients := !transients + o.L.legal_transients;
      o.L.violations
    in
    let r =
      D.explore ~max_runs:64 ~preemption_bound:1
        ~jitter:(!seed, 0.25, 2.0e-6) scenario
    in
    (match r.E.failures with
    | [] -> ()
    | f :: _ ->
        Alcotest.failf
          "legal transient misreported as a violation (jitter seed %d): %s"
          !seed
          (String.concat "; " f.E.f_violations));
    found := !transients;
    incr seed
  done;
  Alcotest.(check bool) "transient rediscovered within 16 jitter seeds" true
    (!found > 0)

(* --- exhaustive truncation flag (the fixed silent cut) ------------- *)

(* n same-time events: choice points of width n, n-1, ..., 2. *)
let synthetic_ties n schedule =
  let eng = SE.create ~schedule () in
  for _ = 1 to n do
    SE.at eng 1.0 (fun () -> ())
  done;
  ignore (SE.run eng);
  []

let test_exhaustive_truncation_flag () =
  (* 4 events -> 3 choice points; a depth-2 tree is silently cut and
     must say so, a depth-6 tree covers everything. *)
  let cut = E.exhaustive ~max_runs:100 ~max_depth:2 (synthetic_ties 4) in
  Alcotest.(check bool) "depth-2 tree truncated" true cut.E.stats.E.s_truncated;
  Alcotest.(check bool) "truncated is not complete" false cut.E.stats.E.s_complete;
  let full = E.exhaustive ~max_runs:100 ~max_depth:6 (synthetic_ties 4) in
  Alcotest.(check bool) "depth-6 tree untruncated" false full.E.stats.E.s_truncated;
  Alcotest.(check bool) "and complete" true full.E.stats.E.s_complete;
  Alcotest.(check int) "all 4! interleavings" 24 full.E.stats.E.s_runs

(* --- mutation conviction under DPOR -------------------------------- *)

(* Satellite: every seeded protocol bug is convicted under the DPOR
   driver, spending no more runs than the bounded-exhaustive driver. *)
let test_mutations_convicted_under_dpor () =
  let d = M.hunt_dpor ~max_runs:50 () in
  List.iter
    (fun (r : M.report) ->
      Alcotest.(check bool) (r.M.m_label ^ " fired") true r.M.m_fired;
      if r.M.m_caught = None then
        Alcotest.failf "mutation %s escaped DPOR after %d runs" r.M.m_label
          r.M.m_runs)
    d;
  Alcotest.(check bool) "all mutations convicted under DPOR" true (M.all_caught d);
  let x = M.hunt_exhaustive ~max_runs:50 () in
  List.iter2
    (fun (dr : M.report) (xr : M.report) ->
      if dr.M.m_runs > xr.M.m_runs then
        Alcotest.failf "%s: DPOR needed %d runs, exhaustive %d" dr.M.m_label
          dr.M.m_runs xr.M.m_runs)
    d x

(* --- decision-vector replay ---------------------------------------- *)

(* A `Dpor [...]` failure line must be replayable: the decision vector
   alone reproduces the run.  Pin it on the synthetic reverse-order
   scenario from the exhaustive tests. *)
let synthetic_racy schedule =
  let eng = SE.create ~schedule () in
  let log = ref [] in
  for i = 0 to 2 do
    SE.at eng 1.0 (fun () -> log := i :: !log)
  done;
  ignore (SE.run eng);
  if List.rev !log = [ 2; 1; 0 ] then [ "reverse order reached" ] else []

let test_dpor_finds_and_replays () =
  let r = D.explore ~max_runs:20 synthetic_racy in
  Alcotest.(check bool) "complete" true r.E.stats.E.s_complete;
  match r.E.failures with
  | [] -> Alcotest.fail "DPOR missed the reverse interleaving"
  | f :: _ ->
      (* "Dpor [i;j;...]" -> decision vector -> replay *)
      let body = String.sub f.E.f_schedule 6 (String.length f.E.f_schedule - 7) in
      let ds =
        if body = "" then []
        else List.map int_of_string (String.split_on_char ';' body)
      in
      Alcotest.(check (list string)) "decision vector reproduces the run"
        f.E.f_violations
        (synthetic_racy (D.schedule_of_decisions ds))

let suite =
  [
    QCheck_alcotest.to_alcotest test_join_commutative;
    QCheck_alcotest.to_alcotest test_join_associative;
    QCheck_alcotest.to_alcotest test_join_upper_bound;
    QCheck_alcotest.to_alcotest test_hb_matches_oracle;
    QCheck_alcotest.to_alcotest test_hb_monotone_under_append;
    Alcotest.test_case "dpor litmus fixed points, 10x under exhaustive" `Slow
      test_dpor_litmus_fixed_point;
    Alcotest.test_case "dpor completes minidb-txn2 under preemption bound"
      `Slow test_dpor_minidb_bounded;
    Alcotest.test_case "dpor+jitter rediscovers the legal transient" `Quick
      test_dpor_rediscovers_legal_transient;
    Alcotest.test_case "exhaustive surfaces truncation" `Quick
      test_exhaustive_truncation_flag;
    Alcotest.test_case "mutations convicted under dpor" `Slow
      test_mutations_convicted_under_dpor;
    Alcotest.test_case "dpor finds and replays by decision vector" `Quick
      test_dpor_finds_and_replays;
  ]
