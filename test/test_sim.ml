(* Unit tests for the discrete-event engine, heap, signals, processes. *)

open Sim

let check_f = Alcotest.(check (float 1e-12))

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:0 "c";
  Heap.push h ~time:1.0 ~seq:1 "a";
  Heap.push h ~time:2.0 ~seq:2 "b";
  Heap.push h ~time:1.0 ~seq:3 "a2";
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some e ->
        popped := e.Heap.value :: !popped;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b"; "c" ] (List.rev !popped)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h ~time:1.0 ~seq:i i
  done;
  for i = 0 to 99 do
    match Heap.pop h with
    | None -> Alcotest.fail "heap empty too early"
    | Some e -> Alcotest.(check int) "fifo" i e.Heap.value
  done

let test_engine_run () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.at eng 2.0 (fun () -> log := 2 :: !log);
  Engine.at eng 1.0 (fun () ->
      log := 1 :: !log;
      Engine.after eng 0.5 (fun () -> log := 15 :: !log));
  let reason = Engine.run eng in
  Alcotest.(check (list int)) "events in order" [ 1; 15; 2 ] (List.rev !log);
  check_f "clock at last event" 2.0 (Engine.now eng);
  (match reason with
  | Engine.Quiescent -> ()
  | Engine.Deadline | Engine.Event_budget -> Alcotest.fail "expected quiescence")

let test_engine_deadline () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.at eng 10.0 (fun () -> fired := true);
  (match Engine.run ~until:5.0 eng with
  | Engine.Deadline -> ()
  | Engine.Quiescent | Engine.Event_budget -> Alcotest.fail "expected deadline");
  Alcotest.(check bool) "late event did not fire" false !fired;
  check_f "clock advanced to deadline" 5.0 (Engine.now eng)

let test_engine_past_rejected () =
  let eng = Engine.create () in
  let caught = ref false in
  Engine.at eng 1.0 (fun () ->
      Engine.at eng 2.0 ignore;
      try Engine.at eng 0.5 ignore
      with Engine.Past_event { requested; now; fired; pending } ->
        caught := true;
        check_f "requested" 0.5 requested;
        check_f "now" 1.0 now;
        Alcotest.(check int) "events fired so far" 1 fired;
        Alcotest.(check int) "pending events" 1 pending);
  ignore (Engine.run eng);
  Alcotest.(check bool) "raised Past_event with provenance" true !caught

(* Six handlers tied at t=1.0; the firing order is the schedule's
   tie-break permutation. *)
let firing_order schedule =
  let eng = Engine.create ~schedule () in
  let log = ref [] in
  for i = 0 to 5 do
    Engine.at eng 1.0 (fun () -> log := i :: !log)
  done;
  ignore (Engine.run eng);
  List.rev !log

let test_engine_fifo_ties_default () =
  Alcotest.(check (list int)) "fifo fires in insertion order" [ 0; 1; 2; 3; 4; 5 ]
    (firing_order Engine.Fifo);
  Alcotest.(check (list int)) "default schedule is fifo" [ 0; 1; 2; 3; 4; 5 ]
    (let eng = Engine.create () in
     let log = ref [] in
     for i = 0 to 5 do
       Engine.at eng 1.0 (fun () -> log := i :: !log)
     done;
     ignore (Engine.run eng);
     List.rev !log)

let test_engine_seeded_deterministic () =
  let a = firing_order (Engine.Seeded 11) in
  Alcotest.(check (list int)) "same seed, same order" a (firing_order (Engine.Seeded 11));
  Alcotest.(check (list int)) "a permutation of the tie set" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare a);
  Alcotest.(check bool) "some seed deviates from fifo" true
    (List.exists
       (fun s -> firing_order (Engine.Seeded s) <> [ 0; 1; 2; 3; 4; 5 ])
       [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_engine_choose_ties () =
  Alcotest.(check (list int)) "always-last reverses the tie set" [ 5; 4; 3; 2; 1; 0 ]
    (firing_order (Engine.Choose (fun n -> n - 1)));
  Alcotest.(check (list int)) "out-of-range choice falls back to fifo"
    [ 0; 1; 2; 3; 4; 5 ]
    (firing_order (Engine.Choose (fun _ -> 99)))

let test_engine_jittered_bounds () =
  let schedule = Engine.Jittered { seed = 5; prob = 1.0; max_delay = 0.5 } in
  let times schedule =
    let eng = Engine.create ~schedule () in
    let log = ref [] in
    for _ = 1 to 20 do
      Engine.at eng 1.0 (fun () -> log := Engine.now eng :: !log)
    done;
    ignore (Engine.run eng);
    List.rev !log
  in
  let ts = times schedule in
  Alcotest.(check int) "all events fired" 20 (List.length ts);
  List.iter
    (fun t ->
      Alcotest.(check bool) "delayed, never hastened, within max_delay" true
        (t >= 1.0 && t <= 1.5))
    ts;
  Alcotest.(check (list (float 0.0))) "same seed, same jitter" ts (times schedule)

let make_cpu ?(quantum = 0.010) ?(switch_cost = 0.0) eng =
  Proc.make_cpu ~engine:eng ~node_id:0 ~cpu_global_id:0 ~quantum ~switch_cost (ref 0)

let test_proc_work_advances_time () =
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let t_end = ref 0.0 in
  let p =
    Proc.spawn cpu (fun () ->
        Proc.work 0.001;
        t_end := Engine.now eng)
  in
  ignore (Engine.run eng);
  Alcotest.(check bool) "finished" true (Proc.finished p);
  check_f "time consumed" 0.001 !t_end

let test_proc_round_robin () =
  (* Two processes each needing 30 ms of CPU on one processor with a 10 ms
     quantum: both should finish at ~60 ms, interleaved. *)
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let done_a = ref 0.0 and done_b = ref 0.0 in
  let _a = Proc.spawn cpu (fun () -> Proc.work 0.030; done_a := Engine.now eng) in
  let _b = Proc.spawn cpu (fun () -> Proc.work 0.030; done_b := Engine.now eng) in
  ignore (Engine.run eng);
  Alcotest.(check bool) "a finished near 50-60ms" true (!done_a > 0.045 && !done_a <= 0.0601);
  Alcotest.(check bool) "b finished near 60ms" true (!done_b > 0.055 && !done_b <= 0.0601)

let test_proc_block_wakeup () =
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let woke = ref 0.0 in
  let p =
    Proc.spawn cpu (fun () ->
        Proc.block ();
        woke := Engine.now eng)
  in
  Engine.at eng 0.5 (fun () -> Proc.wakeup p);
  ignore (Engine.run eng);
  check_f "woken at 0.5" 0.5 !woke

let test_proc_sleep () =
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let woke = ref 0.0 in
  let _ = Proc.spawn cpu (fun () -> Proc.sleep 0.25; woke := Engine.now eng) in
  ignore (Engine.run eng);
  check_f "slept" 0.25 !woke

let test_proc_sleep_releases_cpu () =
  (* While one process sleeps, the other gets the CPU immediately. *)
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let b_done = ref 0.0 in
  let _a = Proc.spawn cpu (fun () -> Proc.sleep 1.0) in
  let _b = Proc.spawn cpu (fun () -> Proc.work 0.005; b_done := Engine.now eng) in
  ignore (Engine.run eng);
  Alcotest.(check bool) "b ran during a's sleep" true (!b_done < 0.01)

let test_proc_stall_signal () =
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let s = Signal.create eng in
  let flag = ref false in
  let resumed = ref 0.0 in
  let p =
    Proc.spawn cpu (fun () ->
        Proc.stall (fun () -> !flag);
        resumed := Engine.now eng)
  in
  p.Proc.stall_signal <- Some s;
  Engine.at eng 0.1 (fun () ->
      flag := true;
      Signal.pulse s);
  ignore (Engine.run eng);
  check_f "resumed at pulse" 0.1 !resumed

let test_proc_stall_services_messages () =
  (* The poll hook reports service time; the stalling process should charge
     it to msg_time and keep re-checking the predicate. *)
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let s = Signal.create eng in
  let pending = ref 0 in
  let flag = ref false in
  let p =
    Proc.spawn cpu (fun () ->
        Proc.stall (fun () -> !flag))
  in
  p.Proc.stall_signal <- Some s;
  p.Proc.on_poll <-
    (fun _ ->
      if !pending > 0 then begin
        decr pending;
        if !pending = 0 then flag := true;
        0.00001
      end
      else 0.0);
  Engine.at eng 0.05 (fun () ->
      pending := 3;
      Signal.pulse s);
  ignore (Engine.run eng);
  Alcotest.(check bool) "finished" true (Proc.finished p);
  Alcotest.(check bool) "service time charged" true (p.Proc.msg_time > 0.000029)

let test_proc_priority_preemption () =
  (* A low-priority (protocol) process is preempted as soon as an
     application process becomes runnable. *)
  let eng = Engine.create () in
  let cpu = make_cpu ~quantum:1.0 eng in
  let app_done = ref 0.0 in
  let _proto =
    Proc.spawn ~priority:1 cpu (fun () -> Proc.work 10.0)
  in
  Engine.at eng 0.001 (fun () ->
      ignore
        (Proc.spawn ~priority:0 cpu (fun () ->
             Proc.work 0.002;
             app_done := Engine.now eng)));
  ignore (Engine.run ~until:20.0 eng);
  Alcotest.(check bool) "app ran promptly despite busy protocol proc" true
    (!app_done > 0.0 && !app_done < 0.005)

let test_proc_join () =
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let order = ref [] in
  let a = Proc.spawn cpu (fun () -> Proc.work 0.002; order := "a" :: !order) in
  let _b =
    Proc.spawn cpu (fun () ->
        Proc.join a;
        order := "b" :: !order)
  in
  ignore (Engine.run eng);
  Alcotest.(check (list string)) "join ordering" [ "a"; "b" ] (List.rev !order)

let test_proc_join_propagates_failure () =
  let eng = Engine.create () in
  let cpu = make_cpu eng in
  let a = Proc.spawn cpu (fun () -> failwith "boom") in
  let caught = ref false in
  let _b =
    Proc.spawn cpu (fun () ->
        try Proc.join a with Failure m -> caught := m = "boom")
  in
  ignore (Engine.run eng);
  Alcotest.(check bool) "failure propagated via join" true !caught

let test_quantum_wait_preemption () =
  (* A process waiting on a signal that never fires must lose the CPU to a
     runnable process at its quantum boundary. *)
  let eng = Engine.create () in
  let cpu = make_cpu ~quantum:0.010 eng in
  let s = Signal.create eng in
  let other_done = ref 0.0 in
  let flag = ref false in
  let p = Proc.spawn cpu (fun () -> Proc.stall (fun () -> !flag)) in
  p.Proc.stall_signal <- Some s;
  Engine.at eng 0.001 (fun () ->
      ignore
        (Proc.spawn cpu (fun () ->
             Proc.work 0.001;
             other_done := Engine.now eng)));
  Engine.at eng 1.0 (fun () ->
      flag := true;
      Signal.pulse s);
  ignore (Engine.run eng);
  Alcotest.(check bool) "other ran after quantum expiry" true
    (!other_done > 0.009 && !other_done < 0.10)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let xs = Array.init 50 (fun _ -> Rng.int a 1000) in
  let ys = Array.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

(* Per-link fault streams are seeded with exactly this key in
   Fault.Plan.stream; determinism and pairwise distinctness here keep
   that derivation honest. *)
let link_stream_key seed src dst = (seed * 0x1000003) lxor ((src * 0x7F4A7C15) + dst + 1)

let take n rng = Array.init n (fun _ -> Rng.int rng 1_000_000)

let test_rng_keyed_link_streams () =
  Alcotest.(check bool) "same (seed,src,dst), same stream" true
    (take 64 (Rng.create (link_stream_key 42 0 1))
    = take 64 (Rng.create (link_stream_key 42 0 1)));
  let links = [ (0, 1); (1, 0); (0, 2); (2, 0); (1, 2); (2, 1) ] in
  let streams =
    List.map (fun (s, d) -> take 64 (Rng.create (link_stream_key 42 s d))) links
  in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i < j then
            Alcotest.(check bool) "distinct links, distinct streams" true (si <> sj))
        streams)
    streams;
  Alcotest.(check bool) "distinct seeds, distinct streams" true
    (take 64 (Rng.create (link_stream_key 42 0 1))
    <> take 64 (Rng.create (link_stream_key 43 0 1)))

let test_stats_summary () =
  let s = Stats.summary () in
  List.iter (Stats.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_f "mean" 2.5 (Stats.mean s);
  check_f "min" 1.0 (Stats.minimum s);
  check_f "max" 4.0 (Stats.maximum s);
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_histogram () =
  let h = Stats.histogram ~lo:0.0 ~hi:10.0 ~buckets:10 in
  for i = 0 to 99 do
    Stats.record h (float_of_int (i mod 10) +. 0.5)
  done;
  Alcotest.(check int) "observations" 100 (Stats.observations h);
  Alcotest.(check bool) "median near 5" true (abs_float (Stats.percentile h 50.0 -. 4.5) < 1.0)

(* Exact quantile of a sample, for checking the log histogram against:
   the smallest element with rank >= ceil(n * p / 100). *)
let exact_quantile xs p =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (float_of_int n *. p /. 100.0)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let test_log_histogram_tail () =
  (* A latency-shaped sample: a tight body plus a 1% tail three decades
     out.  The linear histogram's percentile lumps the tail into one
     bucket; the log histogram must resolve it to ~5%. *)
  let xs =
    List.init 1000 (fun i ->
        if i mod 100 = 99 then 0.05 +. (0.001 *. float_of_int i) else 1.0e-4 +. (1.0e-7 *. float_of_int i))
  in
  let h = Stats.log_histogram ~lo:1.0e-7 ~hi:100.0 () in
  List.iter (Stats.log_record h) xs;
  Alcotest.(check int) "observations" 1000 (Stats.log_observations h);
  let bucket_ratio = 10.0 ** (1.0 /. 50.0) in
  List.iter
    (fun p ->
      let est = Stats.log_percentile h p and ex = exact_quantile xs p in
      let ratio = if est > ex then est /. ex else ex /. est in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within one bucket (est %g exact %g)" p est ex)
        true
        (ratio <= bucket_ratio *. (1.0 +. 1e-9)))
    [ 50.0; 90.0; 99.0; 99.9 ];
  (* Extremes are exact, not bucket midpoints. *)
  Alcotest.(check (float 0.0)) "p0 = min" (exact_quantile xs 0.0) (Stats.log_percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 = max" (exact_quantile xs 100.0) (Stats.log_percentile h 100.0)

let test_log_histogram_merge () =
  let mk xs =
    let h = Stats.log_histogram ~lo:1.0e-7 ~hi:100.0 () in
    List.iter (Stats.log_record h) xs;
    h
  in
  let a = List.init 100 (fun i -> 1.0e-4 *. float_of_int (i + 1)) in
  let b = List.init 100 (fun i -> 1.0e-2 *. float_of_int (i + 1)) in
  let merged = mk a in
  Stats.log_merge merged (mk b);
  let whole = mk (a @ b) in
  Alcotest.(check int) "count" (Stats.log_observations whole) (Stats.log_observations merged);
  Alcotest.(check (float 1e-12)) "min" (Stats.log_min whole) (Stats.log_min merged);
  Alcotest.(check (float 1e-12)) "max" (Stats.log_max whole) (Stats.log_max merged);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%g" p)
        (Stats.log_percentile whole p) (Stats.log_percentile merged p))
    [ 50.0; 99.0; 99.9 ];
  Alcotest.(check bool)
    "sparse bins equal" true
    (Stats.log_nonzero whole = Stats.log_nonzero merged)

let qcheck_log_quantiles_within_bucket =
  QCheck.Test.make ~name:"log histogram quantiles within one bucket of exact" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 400) (float_range 1e-6 10.0))
    (fun xs ->
      let h = Stats.log_histogram ~lo:1.0e-7 ~hi:100.0 () in
      List.iter (Stats.log_record h) xs;
      let bucket_ratio = 10.0 ** (1.0 /. 50.0) in
      List.for_all
        (fun p ->
          let est = Stats.log_percentile h p and ex = exact_quantile xs p in
          let ratio = if est > ex then est /. ex else ex /. est in
          ratio <= bucket_ratio *. (1.0 +. 1e-9))
        [ 25.0; 50.0; 90.0; 99.0; 99.9 ])

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_nat))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (t, v) -> Heap.push h ~time:t ~seq:i v) entries;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some e -> drain (e.Heap.time :: acc)
      in
      let times = drain [] in
      List.sort compare times = times)

(* With times drawn from a tiny set, most pops resolve ties; the heap
   must agree with a stable sort by time over (time, payload) pairs. *)
let qcheck_heap_stable_reference =
  QCheck.Test.make ~name:"heap matches stable sort by time" ~count:200
    QCheck.(list (pair (int_bound 5) small_nat))
    (fun entries ->
      let entries = List.map (fun (t, v) -> (float_of_int t, v)) entries in
      let h = Heap.create () in
      List.iteri (fun i (t, v) -> Heap.push h ~time:t ~seq:i v) entries;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some e -> drain ((e.Heap.time, e.Heap.value) :: acc)
      in
      drain []
      = List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) entries)

(* Arbitrary push/pop interleavings against a sorted-list reference
   model: every pop mid-stream must return exactly what a stable
   (time, seq) sort of the live entries would — this catches sift
   bugs that only manifest after interior deletions, which the
   push-all-then-drain properties above never exercise. *)
let qcheck_heap_interleaved =
  QCheck.Test.make ~name:"heap push/pop interleavings match reference model" ~count:300
    QCheck.(list (option (pair (int_bound 5) small_nat)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some (t, v) ->
              let time = float_of_int t in
              Heap.push h ~time ~seq:!seq v;
              model := (time, !seq, v) :: !model;
              incr seq;
              true
          | None -> (
              let next =
                List.fold_left
                  (fun best ((t, s, _) as e) ->
                    match best with
                    | Some (bt, bs, _) when (bt, bs) <= (t, s) -> best
                    | _ -> Some e)
                  None !model
              in
              match (Heap.pop h, next) with
              | None, None -> true
              | Some e, Some (t, s, v) ->
                  model := List.filter (fun (_, s', _) -> s' <> s) !model;
                  e.Heap.time = t && e.Heap.value = v
              | _ -> false))
        ops)

let qcheck_summary_mean =
  QCheck.Test.make ~name:"summary mean matches direct mean" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let s = Stats.summary () in
      List.iter (Stats.observe s) xs;
      let direct = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      abs_float (Stats.mean s -. direct) < 1e-9)

let suite =
  [
    Alcotest.test_case "heap order" `Quick test_heap_order;
    Alcotest.test_case "heap FIFO ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "engine run" `Quick test_engine_run;
    Alcotest.test_case "engine deadline" `Quick test_engine_deadline;
    Alcotest.test_case "engine rejects past events" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine fifo ties (default)" `Quick test_engine_fifo_ties_default;
    Alcotest.test_case "engine seeded tie-break" `Quick test_engine_seeded_deterministic;
    Alcotest.test_case "engine choose tie-break" `Quick test_engine_choose_ties;
    Alcotest.test_case "engine jittered delays" `Quick test_engine_jittered_bounds;
    Alcotest.test_case "work advances time" `Quick test_proc_work_advances_time;
    Alcotest.test_case "round robin" `Quick test_proc_round_robin;
    Alcotest.test_case "block/wakeup" `Quick test_proc_block_wakeup;
    Alcotest.test_case "sleep" `Quick test_proc_sleep;
    Alcotest.test_case "sleep releases cpu" `Quick test_proc_sleep_releases_cpu;
    Alcotest.test_case "stall wakes on signal" `Quick test_proc_stall_signal;
    Alcotest.test_case "stall services messages" `Quick test_proc_stall_services_messages;
    Alcotest.test_case "priority preemption" `Quick test_proc_priority_preemption;
    Alcotest.test_case "join" `Quick test_proc_join;
    Alcotest.test_case "join propagates failure" `Quick test_proc_join_propagates_failure;
    Alcotest.test_case "quantum preempts waiting proc" `Quick test_quantum_wait_preemption;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng keyed link streams" `Quick test_rng_keyed_link_streams;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "log histogram tail accuracy" `Quick test_log_histogram_tail;
    Alcotest.test_case "log histogram merge" `Quick test_log_histogram_merge;
    QCheck_alcotest.to_alcotest qcheck_log_quantiles_within_bucket;
    QCheck_alcotest.to_alcotest qcheck_heap_sorted;
    QCheck_alcotest.to_alcotest qcheck_heap_stable_reference;
    QCheck_alcotest.to_alcotest qcheck_heap_interleaved;
    QCheck_alcotest.to_alcotest qcheck_summary_mean;
  ]
