(* End-to-end tests for lib/check: the litmus suite under schedule
   exploration, the explorer drivers on a synthetic racy scenario, the
   trace oracle on hand-built traces, the mutation harness, and the
   zero-cost guarantees of the checking layers. *)

module L = Check.Litmus
module E = Check.Explore
module M = Check.Mutation
module T = Check.Trace

let fail_sweep fails =
  let (name, seed, vs) = List.hd fails in
  Alcotest.failf "%s seed %d: %s (%d failing runs total)" name seed
    (String.concat "; " vs) (List.length fails)

(* Satellite (a): each litmus scenario stays clean across the FIFO
   default plus 16 seeded tie-break schedules, with the per-message
   invariant checker, quiescence sweep, outcome check and trace oracle
   all armed. *)
let test_scenario_seeds (sc : L.scenario) () =
  match L.sweep ~seeds:16 [ sc ] with [] -> () | fails -> fail_sweep fails

let test_litmus_jittered () =
  List.iter
    (fun (sc : L.scenario) ->
      match (E.jittered ~n:8 (L.as_scenario sc)).E.failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%s under %s: %s" sc.L.name f.E.f_schedule
            (String.concat "; " f.E.f_violations))
    L.all

(* Bounded exhaustive exploration over the first tie-sets; the small
   scenarios exhaust their trees and must stay clean. *)
let test_litmus_exhaustive () =
  List.iter
    (fun (sc : L.scenario) ->
      let r = E.exhaustive ~max_runs:40 ~max_depth:5 (L.as_scenario sc) in
      Alcotest.(check bool) (sc.L.name ^ " explored") true (r.E.stats.E.s_runs > 0);
      match r.E.failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%s under %s: %s" sc.L.name f.E.f_schedule
            (String.concat "; " f.E.f_violations))
    [ L.message_passing; L.dekker ]

(* --- explorer drivers on a synthetic scenario --------------------- *)

(* Three tied events; only the fully reversed firing order is "buggy".
   The exhaustive driver must enumerate all 3! interleavings and find
   exactly that one; the seeded driver must find it within 64 seeds and
   the reported seed must reproduce it. *)
let synthetic_scenario schedule =
  let eng = Sim.Engine.create ~schedule () in
  let log = ref [] in
  for i = 0 to 2 do
    Sim.Engine.at eng 1.0 (fun () -> log := i :: !log)
  done;
  ignore (Sim.Engine.run eng);
  if List.rev !log = [ 2; 1; 0 ] then [ "reverse order reached" ] else []

let test_explore_exhaustive_finds () =
  let r = E.exhaustive ~max_runs:20 ~max_depth:4 synthetic_scenario in
  Alcotest.(check bool) "tree exhausted" true r.E.stats.E.s_complete;
  Alcotest.(check int) "all 3! interleavings enumerated" 6 r.E.stats.E.s_runs;
  Alcotest.(check int) "exactly one bad schedule" 1 (List.length r.E.failures)

let test_explore_seeds_find_and_reproduce () =
  match (E.seeds ~n:64 synthetic_scenario).E.failures with
  | [] -> Alcotest.fail "no seed in 1..64 reached the reverse interleaving"
  | f :: _ ->
      let seed = Option.get f.E.f_seed in
      Alcotest.(check (list string)) "replaying the seed reproduces it"
        f.E.f_violations
        (synthetic_scenario (Sim.Engine.Seeded seed))

(* --- trace oracle on hand-built traces ---------------------------- *)

let mk_trace evs =
  let t = T.create () in
  t.T.rev_events <- List.rev evs;
  t.T.n <- List.length evs;
  t

let ev pid addr store value =
  { T.ev_pid = pid; ev_addr = addr; ev_store = store; ev_value = value; ev_time = 0.0 }

let test_oracle_accepts_coherent () =
  (* Wx1 ; Rx1 interleaves fine, and so does a read of the initial 0. *)
  let t = mk_trace [ ev 0 16 true 1L; ev 1 16 false 1L; ev 2 16 false 0L ] in
  Alcotest.(check (list string)) "coherent trace accepted" [] (T.check ~full:true t)

let test_oracle_rejects_thin_air () =
  (* A load of a value nobody ever stored has no witness. *)
  let t = mk_trace [ ev 0 16 true 1L; ev 1 16 false 2L ] in
  Alcotest.(check bool) "thin-air read rejected" true (T.check t <> [])

let test_oracle_store_buffering () =
  (* Classic SB: Wx1;Ry0 || Wy1;Rx0 is per-location coherent but has no
     global SC witness — exactly the distinction full:true must draw. *)
  let sb = [ ev 0 16 true 1L; ev 0 32 false 0L; ev 1 32 true 1L; ev 1 16 false 0L ] in
  Alcotest.(check (list string)) "per-location view accepts SB" [] (T.check (mk_trace sb));
  match T.check ~full:true (mk_trace sb) with
  | [ v ] ->
      Alcotest.(check bool) "the one violation is the global witness" true
        (String.length v > 0)
  | l -> Alcotest.failf "expected exactly one global-SC violation, got %d" (List.length l)

(* --- mutation harness --------------------------------------------- *)

(* Satellite: every seeded protocol bug must fire and be caught, well
   within the 64-seed CI budget. *)
let test_mutations_caught () =
  let reports = M.hunt ~seeds:8 () in
  List.iter
    (fun (r : M.report) ->
      Alcotest.(check bool) (r.M.m_label ^ " fired") true r.M.m_fired;
      if r.M.m_caught = None then
        Alcotest.failf "mutation %s escaped %d runs" r.M.m_label r.M.m_runs)
    reports;
  Alcotest.(check bool) "all mutations caught" true (M.all_caught reports);
  Alcotest.(check int) "all five mutations exercised" 5 (List.length reports)

(* --- the checking layers must not perturb the simulation ---------- *)

let run_figure2 ~check ~schedule =
  let cfg = L.config ~model:Protocol.Config.Rc ~schedule () in
  let cfg =
    {
      cfg with
      Shasta.Config.protocol =
        { cfg.Shasta.Config.protocol with Protocol.Config.check_invariants = check };
    }
  in
  let cl = Shasta.Cluster.create cfg in
  let tr = T.create () in
  let outcome = L.figure2.L.body cl tr in
  let elapsed = Shasta.Cluster.run cl in
  Alcotest.(check (list string)) "clean run" [] (outcome ());
  (elapsed, Sim.Engine.events_fired (Shasta.Cluster.sim cl),
   Protocol.Engine.invariant_checks (Shasta.Cluster.protocol_engine cl))

let test_checker_zero_sim_cost () =
  let t_off, ev_off, n_off = run_figure2 ~check:false ~schedule:Sim.Engine.Fifo in
  let t_on, ev_on, n_on = run_figure2 ~check:true ~schedule:Sim.Engine.Fifo in
  Alcotest.(check int) "checker off runs no checks" 0 n_off;
  Alcotest.(check bool) "checker on runs checks" true (n_on > 0);
  Alcotest.(check (float 0.0)) "identical simulated time" t_off t_on;
  Alcotest.(check int) "identical event count" ev_off ev_on

(* The FIFO default is bit-identical run to run (the seed sweep covers
   Seeded determinism; this pins the default path). *)
let test_default_schedule_deterministic () =
  let t_a, ev_a, _ = run_figure2 ~check:true ~schedule:Sim.Engine.Fifo in
  let t_b, ev_b, _ = run_figure2 ~check:true ~schedule:Sim.Engine.Fifo in
  Alcotest.(check (float 0.0)) "identical simulated time" t_a t_b;
  Alcotest.(check int) "identical event count" ev_a ev_b

let suite =
  List.map
    (fun (sc : L.scenario) ->
      Alcotest.test_case (sc.L.name ^ " x17 schedules") `Quick (test_scenario_seeds sc))
    L.all
  @ [
      Alcotest.test_case "litmus under jittered schedules" `Quick test_litmus_jittered;
      Alcotest.test_case "litmus exhaustive exploration" `Quick test_litmus_exhaustive;
      Alcotest.test_case "exhaustive finds the racy interleaving" `Quick
        test_explore_exhaustive_finds;
      Alcotest.test_case "seeded explorer finds and reproduces" `Quick
        test_explore_seeds_find_and_reproduce;
      Alcotest.test_case "oracle accepts coherent trace" `Quick test_oracle_accepts_coherent;
      Alcotest.test_case "oracle rejects thin-air read" `Quick test_oracle_rejects_thin_air;
      Alcotest.test_case "oracle separates SB from coherence" `Quick
        test_oracle_store_buffering;
      Alcotest.test_case "mutations are caught" `Quick test_mutations_caught;
      Alcotest.test_case "checker has zero simulation cost" `Quick test_checker_zero_sim_cost;
      Alcotest.test_case "default schedule deterministic" `Quick
        test_default_schedule_deterministic;
    ]
